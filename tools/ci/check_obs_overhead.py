#!/usr/bin/env python3
"""Non-gating perf-smoke check for the observability/profiler overhead.

usage: check_obs_overhead.py FRESH_JSON BASELINE_JSON [--threshold PCT]

FRESH_JSON is the single-line document bench_obs_overhead prints
(events_per_sec_median for the disabled path, plus
profiled_events_per_sec_median / profiled_overhead_pct for a run under a
metrics scope). BASELINE_JSON is the committed BENCH_obs.json, whose
"after" block holds the accepted disabled-path median for the current
tree.

The acceptance bar is the one BENCH_obs.json documents: the *disabled*
path — what every default campaign runs — must stay within the threshold
(default 2%) of the baseline. Shared CI runners are too noisy to gate on,
so this script always exits 0 and emits a GitHub `::warning::` annotation
on a regression. The profiled-path overhead is reported informationally.
"""
import json
import sys


def main(argv):
    if len(argv) < 3:
        print("usage: check_obs_overhead.py FRESH_JSON BASELINE_JSON"
              " [--threshold PCT]")
        return 0
    threshold = 2.0
    if "--threshold" in argv:
        threshold = float(argv[argv.index("--threshold") + 1])

    try:
        with open(argv[1]) as f:
            fresh = json.load(f)
        with open(argv[2]) as f:
            baseline = json.load(f)["after"]["median_of_runs"]
    except (OSError, ValueError, KeyError) as e:
        print(f"::warning::obs-overhead comparison skipped: {e}")
        return 0

    now = fresh.get("events_per_sec_median")
    if not baseline or now is None:
        print("::warning::obs-overhead: missing events_per_sec_median")
        return 0

    delta_pct = 100.0 * (now - baseline) / baseline
    line = (f"disabled-path events/s: {now:,.0f} vs baseline "
            f"{baseline:,} ({delta_pct:+.1f}%)")
    if delta_pct < -threshold:
        print(f"::warning::obs-overhead regression >{threshold:.0f}%: "
              f"{line}")
    else:
        print(f"obs-overhead ok: {line}")

    profiled = fresh.get("profiled_events_per_sec_median")
    overhead = fresh.get("profiled_overhead_pct")
    if profiled is not None and overhead is not None:
        print(f"profiled-path events/s: {profiled:,.0f} "
              f"({overhead:+.1f}% vs disabled; informational)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Non-gating perf-smoke check: compare a fresh bench_hotpath run against
the committed baseline medians in BENCH_hotpath.json.

usage: check_bench_regression.py FRESH_JSON BASELINE_JSON [--threshold PCT]

FRESH_JSON is the single-line document bench_hotpath prints
(geometry_qps_median, sinr_sweep_qps_median, event_churn_eps_median plus
the two checksums). BASELINE_JSON is the committed BENCH_hotpath.json,
whose "after" block holds the accepted medians for the current tree.

Shared CI runners are too noisy to gate on, so this script always exits 0.
It emits a GitHub `::warning::` annotation for every metric that regresses
more than the threshold (default 15%), and a plain error line if a
checksum diverges (that one signals a correctness change, not noise).
"""
import json
import sys


METRICS = [
    # (fresh-run key, baseline "after" key)
    ("geometry_qps_median", "geometry_qps"),
    ("sinr_sweep_qps_median", "sinr_sweep_qps"),
    ("event_churn_eps_median", "event_churn_eps"),
]
CHECKSUMS = ["geometry_checksum", "sinr_checksum"]


def main(argv):
    if len(argv) < 3:
        print("usage: check_bench_regression.py FRESH_JSON BASELINE_JSON"
              " [--threshold PCT]")
        return 0
    threshold = 15.0
    if "--threshold" in argv:
        threshold = float(argv[argv.index("--threshold") + 1])

    try:
        with open(argv[1]) as f:
            fresh = json.load(f)
        with open(argv[2]) as f:
            after = json.load(f)["after"]
    except (OSError, ValueError, KeyError) as e:
        print(f"::warning::perf-smoke comparison skipped: {e}")
        return 0

    regressed = 0
    for fresh_key, base_key in METRICS:
        base = after.get(base_key, {}).get("median_of_runs")
        now = fresh.get(fresh_key)
        if not base or now is None:
            print(f"::warning::perf-smoke: missing metric {base_key}")
            continue
        delta_pct = 100.0 * (now - base) / base
        line = (f"{base_key}: {now:,} vs baseline {base:,} "
                f"({delta_pct:+.1f}%)")
        if delta_pct < -threshold:
            print(f"::warning::perf-smoke regression >{threshold:.0f}%: "
                  f"{line}")
            regressed += 1
        else:
            print(line)

    for key in CHECKSUMS:
        base, now = after.get(key), fresh.get(key)
        if base is not None and now is not None and base != now:
            print(f"::warning::perf-smoke checksum drift in {key}: "
                  f"{now} vs {base} — output changed, not just speed")

    print(f"perf-smoke: {regressed} metric(s) past the {threshold:.0f}% "
          "threshold (informational only; see BENCH_hotpath.json)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Non-gating perf-smoke check: compare a fresh benchmark run against the
committed baseline medians in a BENCH_*.json document.

usage: check_bench_regression.py FRESH_JSON BASELINE_JSON [--threshold PCT]

FRESH_JSON is the single-line document the benchmark binary prints.
BASELINE_JSON is the committed BENCH_*.json, whose "after" block holds the
accepted numbers for the current tree.

Which metrics to compare comes from the baseline itself: its "compare"
list maps fresh-run keys to "after" keys, optionally with
{"direction": "lower"} for metrics where smaller is better (size ratios).
A baseline without a "compare" list falls back to the bench_hotpath metric
set, keeping the original BENCH_hotpath.json working unchanged. An "after"
entry may be a bare number or a {"median_of_runs": N} object.

Shared CI runners are too noisy to gate on, so this script always exits 0.
It emits a GitHub `::warning::` annotation for every metric that regresses
more than the threshold (default 15%), and a plain error line if a
checksum diverges (that one signals a correctness change, not noise).
"""
import json
import sys


# Fallback for baselines predating the "compare" list (BENCH_hotpath.json).
DEFAULT_COMPARE = [
    {"fresh": "geometry_qps_median", "baseline": "geometry_qps"},
    {"fresh": "sinr_sweep_qps_median", "baseline": "sinr_sweep_qps"},
    {"fresh": "event_churn_eps_median", "baseline": "event_churn_eps"},
]
CHECKSUM_SUFFIX = "_checksum"


def baseline_value(after, key):
    entry = after.get(key)
    if isinstance(entry, dict):
        return entry.get("median_of_runs")
    return entry


def main(argv):
    if len(argv) < 3:
        print("usage: check_bench_regression.py FRESH_JSON BASELINE_JSON"
              " [--threshold PCT]")
        return 0
    threshold = 15.0
    if "--threshold" in argv:
        threshold = float(argv[argv.index("--threshold") + 1])

    try:
        with open(argv[1]) as f:
            fresh = json.load(f)
        with open(argv[2]) as f:
            baseline = json.load(f)
        after = baseline["after"]
    except (OSError, ValueError, KeyError) as e:
        print(f"::warning::perf-smoke comparison skipped: {e}")
        return 0

    compare = baseline.get("compare", DEFAULT_COMPARE)
    regressed = 0
    for entry in compare:
        fresh_key = entry.get("fresh")
        base_key = entry.get("baseline", fresh_key)
        lower_is_better = entry.get("direction") == "lower"
        base = baseline_value(after, base_key)
        now = fresh.get(fresh_key)
        if not base or now is None:
            print(f"::warning::perf-smoke: missing metric {base_key}")
            continue
        delta_pct = 100.0 * (now - base) / base
        # Normalise so a positive worse_pct always means "got worse".
        worse_pct = delta_pct if lower_is_better else -delta_pct
        line = (f"{base_key}: {now:,} vs baseline {base:,} "
                f"({delta_pct:+.1f}%)")
        if worse_pct > threshold:
            print(f"::warning::perf-smoke regression >{threshold:.0f}%: "
                  f"{line}")
            regressed += 1
        else:
            print(line)

    # Any *_checksum field present in both documents must agree exactly:
    # checksum drift signals changed output, not noise.
    for key, base in after.items():
        if not key.endswith(CHECKSUM_SUFFIX):
            continue
        now = fresh.get(key)
        if now is not None and base != now:
            print(f"::warning::perf-smoke checksum drift in {key}: "
                  f"{now} vs {base} — output changed, not just speed")

    print(f"perf-smoke: {regressed} metric(s) past the {threshold:.0f}% "
          "threshold (informational only)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

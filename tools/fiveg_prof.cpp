// Campaign profile viewer: aggregates one or more fiveg-ledger/v1 files
// (fiveg_runall --ledger) into the tables an operator actually wants after
// a large sweep — where the wall time went (slowest runs, per-phase split,
// per-event-label attribution) and which experiments are flaky (mixed
// statuses, or ok runs at the same seed whose deterministic checksum
// disagrees, i.e. a determinism violation).
//
// With --store DIR the fiveg-rs/v1 columnar store written by the same
// campaign is loaded alongside and cross-checked against the ledger:
// every ledgered run must have exactly one store record at the same
// (experiment, seed), and every store record must be backed by a ledger
// run. Any missing, duplicated or orphaned record is listed and the exit
// status is non-zero — this is the cheap end-of-campaign audit that the
// durable artifacts actually agree.
//
// usage: fiveg_prof LEDGER... [--store DIR] [--top N] [--json]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/ledger.h"
#include "core/store.h"
#include "measure/json.h"
#include "measure/table.h"
#include "obs/prof.h"

namespace {

using fiveg::core::ExperimentResult;
using fiveg::core::RunStatus;

constexpr const char* kUsage = R"(usage: fiveg_prof LEDGER... [options]

Aggregates campaign run ledgers (fiveg_runall --ledger) into wall-time and
flakiness tables.

options:
  --store DIR  also load the fiveg-rs/v1 store the campaign wrote with
               --store and cross-check it against the ledger: every
               ledgered run must have exactly one store record and vice
               versa (mismatches are listed; exit status is non-zero)
  --top N   rows in the slowest-runs and label tables (default 10)
  --json    emit a machine-readable fiveg-prof/v1 document instead of text
  -h, --help  this message
)";

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", ms);
  return buf;
}

std::string fmt_us(double us) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", us);
  return buf;
}

// One ledger record plus its recomputed deterministic checksum (the loader
// already verified it matches the stored one).
struct Run {
  ExperimentResult result;
  std::string checksum;
  fiveg::obs::prof::Summary prof;
};

struct PerExperiment {
  std::size_t runs = 0;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t timed_out = 0;
  // Distinct deterministic checksums among ok runs, per seed: more than
  // one for any seed means the experiment is not deterministic.
  std::map<std::uint64_t, std::set<std::string>> ok_checksums_by_seed;

  [[nodiscard]] bool mixed_status() const {
    return (ok > 0) + (failed > 0) + (timed_out > 0) > 1;
  }
  [[nodiscard]] bool nondeterministic() const {
    for (const auto& [seed, sums] : ok_checksums_by_seed) {
      (void)seed;
      if (sums.size() > 1) return true;
    }
    return false;
  }
};

struct LabelAgg {
  std::uint64_t events = 0;
  double total_ms = 0.0;
};

// Ledger <-> store audit result. Entries are "name seed=N" keys.
struct StoreAudit {
  std::size_t files = 0;
  std::size_t records = 0;
  std::vector<std::string> missing;     // in ledger, absent from store
  std::vector<std::string> duplicated;  // >1 store record for one run
  std::vector<std::string> orphaned;    // store record with no ledger run
  [[nodiscard]] bool ok() const {
    return missing.empty() && duplicated.empty() && orphaned.empty();
  }
};

std::string run_key(const std::string& name, std::uint64_t seed) {
  return name + " seed=" + std::to_string(seed);
}

// Cross-checks the canonical store view against the ledger: every
// ledgered run — the store keeps failed runs too, their error string is
// part of the deterministic payload — must have exactly one store record
// at its (experiment, seed), and every store record must be backed by a
// ledgered run. Duplicate ledger lines for one key (a crash re-run) are
// one logical run.
StoreAudit audit_store(const std::string& store_dir,
                       const std::vector<Run>& runs, bool* load_failed) {
  StoreAudit audit;
  fiveg::core::StoreDirLoad load = fiveg::core::load_store_dir(store_dir);
  if (!load.ok()) {
    std::cerr << "fiveg_prof: " << load.error << "\n";
    *load_failed = true;
    return audit;
  }
  const std::vector<fiveg::core::StoreRecord> records =
      fiveg::core::canonical_view(std::move(load.records));
  audit.files = load.files.size();
  audit.records = records.size();

  std::map<std::string, std::size_t> store_count;
  for (const fiveg::core::StoreRecord& rec : records) {
    ++store_count[run_key(rec.result.name, rec.result.seed)];
  }
  std::set<std::string> ledgered;
  for (const Run& run : runs) {
    ledgered.insert(run_key(run.result.name, run.result.seed));
  }
  for (const std::string& key : ledgered) {
    const auto it = store_count.find(key);
    if (it == store_count.end()) {
      audit.missing.push_back(key);
    } else if (it->second > 1) {
      audit.duplicated.push_back(key);
    }
  }
  for (const auto& [key, n] : store_count) {
    (void)n;
    if (ledgered.find(key) == ledgered.end()) {
      audit.orphaned.push_back(key);
    }
  }
  return audit;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string store_dir;
  std::size_t top = 10;
  bool as_json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--store" && i + 1 < argc) {
      store_dir = argv[++i];
    } else if (arg == "--top" && i + 1 < argc) {
      char* end = nullptr;
      top = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || top == 0) {
        std::cerr << "bad --top value\n";
        return 2;
      }
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n" << kUsage;
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "fiveg_prof: no ledger files\n" << kUsage;
    return 2;
  }

  std::vector<Run> runs;
  std::size_t dropped = 0;
  std::size_t corrupt = 0;
  bool truncated = false;
  for (const std::string& path : paths) {
    fiveg::core::LedgerLoad load = fiveg::core::load_ledger(path);
    if (!load.ok()) {
      std::cerr << "fiveg_prof: " << load.error << "\n";
      return 2;
    }
    dropped += load.dropped_lines;
    corrupt += load.corrupt_records;
    truncated |= load.truncated_tail;
    for (ExperimentResult& r : load.records) {
      Run run;
      run.checksum = fiveg::core::ledger_checksum(r);
      run.prof = fiveg::obs::prof::summarize(r.profile);
      run.result = std::move(r);
      runs.push_back(std::move(run));
    }
  }
  if (dropped > 0 || corrupt > 0 || truncated) {
    std::cerr << "fiveg_prof: skipped " << dropped << " unparseable line(s), "
              << corrupt << " corrupt record(s)"
              << (truncated ? ", torn final line" : "") << "\n";
  }

  // Aggregate.
  std::map<std::string, PerExperiment> per_exp;
  std::map<std::string, LabelAgg> labels;
  double total_wall_ms = 0;
  std::uint64_t peak_rss_kb = 0;
  for (const Run& run : runs) {
    const ExperimentResult& r = run.result;
    PerExperiment& e = per_exp[r.name];
    ++e.runs;
    switch (r.status) {
      case RunStatus::kOk:
        ++e.ok;
        e.ok_checksums_by_seed[r.seed].insert(run.checksum);
        break;
      case RunStatus::kFailed:
        ++e.failed;
        break;
      case RunStatus::kTimedOut:
        ++e.timed_out;
        break;
    }
    total_wall_ms += r.wall_ms;
    peak_rss_kb = std::max(peak_rss_kb, r.peak_rss_kb);
    for (const fiveg::obs::prof::LabelRow& row :
         fiveg::obs::prof::label_rows(r.profile)) {
      LabelAgg& agg = labels[row.label];
      agg.events += row.events;
      agg.total_ms += row.total_ms;
    }
  }

  std::vector<const Run*> slowest;
  slowest.reserve(runs.size());
  for (const Run& run : runs) slowest.push_back(&run);
  std::sort(slowest.begin(), slowest.end(), [](const Run* a, const Run* b) {
    if (a->result.wall_ms != b->result.wall_ms) {
      return a->result.wall_ms > b->result.wall_ms;
    }
    return a->result.name < b->result.name;
  });
  if (slowest.size() > top) slowest.resize(top);

  std::vector<std::pair<std::string, LabelAgg>> label_rows(labels.begin(),
                                                           labels.end());
  std::sort(label_rows.begin(), label_rows.end(),
            [](const auto& a, const auto& b) {
              if (a.second.total_ms != b.second.total_ms) {
                return a.second.total_ms > b.second.total_ms;
              }
              return a.first < b.first;
            });
  if (label_rows.size() > top) label_rows.resize(top);

  std::vector<std::pair<std::string, const PerExperiment*>> flaky;
  for (const auto& [name, e] : per_exp) {
    if (e.mixed_status() || e.nondeterministic()) flaky.emplace_back(name, &e);
  }

  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t timed_out = 0;
  for (const auto& [name, e] : per_exp) {
    (void)name;
    ok += e.ok;
    failed += e.failed;
    timed_out += e.timed_out;
  }

  StoreAudit audit;
  const bool have_store = !store_dir.empty();
  if (have_store) {
    bool load_failed = false;
    audit = audit_store(store_dir, runs, &load_failed);
    if (load_failed) return 2;
  }
  const bool audit_failed = have_store && !audit.ok();

  if (as_json) {
    fiveg::measure::JsonWriter w(std::cout);
    w.begin_object();
    w.kv("schema", "fiveg-prof/v1");
    w.key("summary");
    w.begin_object();
    w.kv("records", static_cast<std::uint64_t>(runs.size()));
    w.kv("experiments", static_cast<std::uint64_t>(per_exp.size()));
    w.kv("ok", static_cast<std::uint64_t>(ok));
    w.kv("failed", static_cast<std::uint64_t>(failed));
    w.kv("timed_out", static_cast<std::uint64_t>(timed_out));
    w.kv("total_wall_ms", total_wall_ms);
    w.kv("peak_rss_kb", peak_rss_kb);
    w.kv("dropped_lines", static_cast<std::uint64_t>(dropped));
    w.kv("corrupt_records", static_cast<std::uint64_t>(corrupt));
    w.kv("truncated_tail", truncated);
    w.end_object();
    w.key("slowest");
    w.begin_array();
    for (const Run* run : slowest) {
      const ExperimentResult& r = run->result;
      w.begin_object();
      w.kv("name", r.name);
      w.kv("status", to_string(r.status));
      w.kv("wall_ms", r.wall_ms);
      w.kv("peak_rss_kb", r.peak_rss_kb);
      w.kv("construct_ms", run->prof.construct_ms);
      w.kv("simulate_ms", run->prof.simulate_ms);
      w.kv("report_ms", run->prof.report_ms);
      w.kv("events_scheduled", run->prof.events_scheduled);
      w.kv("top_label", run->prof.top_label);
      w.end_object();
    }
    w.end_array();
    w.key("labels");
    w.begin_array();
    for (const auto& [label, agg] : label_rows) {
      w.begin_object();
      w.kv("label", label);
      w.kv("events", agg.events);
      w.kv("total_ms", agg.total_ms);
      w.kv("mean_us",
           agg.events > 0
               ? agg.total_ms * 1000.0 / static_cast<double>(agg.events)
               : 0.0);
      w.end_object();
    }
    w.end_array();
    w.key("flaky");
    w.begin_array();
    for (const auto& [name, e] : flaky) {
      w.begin_object();
      w.kv("name", name);
      w.kv("runs", static_cast<std::uint64_t>(e->runs));
      w.kv("ok", static_cast<std::uint64_t>(e->ok));
      w.kv("failed", static_cast<std::uint64_t>(e->failed));
      w.kv("timed_out", static_cast<std::uint64_t>(e->timed_out));
      w.kv("nondeterministic", e->nondeterministic());
      w.end_object();
    }
    w.end_array();
    if (have_store) {
      w.key("store");
      w.begin_object();
      w.kv("files", static_cast<std::uint64_t>(audit.files));
      w.kv("records", static_cast<std::uint64_t>(audit.records));
      const auto string_array = [&w](const char* key,
                                     const std::vector<std::string>& keys) {
        w.key(key);
        w.begin_array();
        for (const std::string& k : keys) w.value(k);
        w.end_array();
      };
      string_array("missing", audit.missing);
      string_array("duplicated", audit.duplicated);
      string_array("orphaned", audit.orphaned);
      w.kv("consistent", audit.ok());
      w.end_object();
    }
    w.end_object();
    std::cout << "\n";
    return flaky.empty() && !audit_failed ? 0 : 1;
  }

  std::cout << "campaign: " << runs.size() << " record(s), " << per_exp.size()
            << " experiment(s): " << ok << " ok, " << failed << " failed, "
            << timed_out << " timed out; total wall "
            << fmt_ms(total_wall_ms) << " ms, peak RSS " << peak_rss_kb
            << " kB\n\n";

  {
    fiveg::measure::TextTable table(
        "slowest runs",
        {"experiment", "status", "wall ms", "construct", "simulate",
         "report", "peak kB", "top label"});
    for (const Run* run : slowest) {
      const ExperimentResult& r = run->result;
      table.add_row({r.name, std::string(to_string(r.status)),
                     fmt_ms(r.wall_ms), fmt_ms(run->prof.construct_ms),
                     fmt_ms(run->prof.simulate_ms),
                     fmt_ms(run->prof.report_ms),
                     std::to_string(r.peak_rss_kb), run->prof.top_label});
    }
    table.print(std::cout);
  }

  if (!label_rows.empty()) {
    fiveg::measure::TextTable table(
        "event labels by wall time",
        {"label", "events", "total ms", "mean us"});
    for (const auto& [label, agg] : label_rows) {
      table.add_row(
          {label, std::to_string(agg.events), fmt_ms(agg.total_ms),
           fmt_us(agg.events > 0 ? agg.total_ms * 1000.0 /
                                       static_cast<double>(agg.events)
                                 : 0.0)});
    }
    table.print(std::cout);
  }

  if (!flaky.empty()) {
    fiveg::measure::TextTable table(
        "flaky experiments",
        {"experiment", "runs", "ok", "failed", "timed out", "verdict"});
    for (const auto& [name, e] : flaky) {
      table.add_row({name, std::to_string(e->runs), std::to_string(e->ok),
                     std::to_string(e->failed), std::to_string(e->timed_out),
                     e->nondeterministic() ? "nondeterministic"
                                           : "mixed status"});
    }
    table.print(std::cout);
  } else {
    std::cout << "no flaky experiments\n";
  }

  if (have_store) {
    std::cout << "\nstore: " << audit.records << " record(s) across "
              << audit.files << " shard(s)\n";
    const auto report = [](const char* what,
                           const std::vector<std::string>& keys) {
      for (const std::string& key : keys) {
        std::cout << "  " << what << ": " << key << "\n";
      }
    };
    report("MISSING from store (in ledger)", audit.missing);
    report("DUPLICATED in store", audit.duplicated);
    report("ORPHANED in store (no ledger run)", audit.orphaned);
    std::cout << (audit.ok() ? "ledger and store agree\n"
                             : "ledger/store MISMATCH\n");
  }
  return flaky.empty() && !audit_failed ? 0 : 1;
}

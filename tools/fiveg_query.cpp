// fiveg_query: merge and query fiveg-rs/v1 columnar result stores
// (fiveg_runall --store). Streams every shard file in a store directory,
// deduplicates and sorts into the canonical merged view — which is
// byte-identical for any shard count, completion order or --jobs value,
// because record identity is (experiment, seed, labels) and the metric
// state being merged is commutative (counter sums, digest bins) — and
// answers queries against it:
//
//   --list                 one line per record (name, seed, labels, status)
//   --list-metrics         distinct metric names across selected records
//   --filter SPEC          restrict to records matching "name{k=v,...}"
//                          (substring on the experiment name, exact label
//                          equality; either part optional)
//   --percentiles METRIC   merge METRIC's digests across selected records
//                          and print the percentile ladder
//   --export-runall-json PATH
//                          reconstruct a fiveg-runall/v4 document (timing
//                          off) from the selected records; for a store
//                          written by an unsharded campaign this is
//                          byte-identical to `fiveg_runall --json
//                          --no-timing`
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/runner.h"
#include "core/store.h"
#include "measure/json.h"
#include "obs/digest.h"
#include "obs/metrics.h"

namespace {

constexpr const char* kUsage = R"(usage: fiveg_query STORE_DIR [options]

Merges every fiveg-rs/v1 shard file under STORE_DIR into the canonical
campaign view (order-independent: any shard layout or --jobs value yields
the same bytes) and answers queries against it.

options:
  --list                one line per record: name, seed, labels, status
  --list-metrics        distinct metric names across the selected records
  --filter SPEC         restrict records to SPEC = "name{k=v,...}":
                        substring match on the experiment name, exact match
                        on each given label; both parts optional
  --percentiles METRIC  merge METRIC's digest across the selected records
                        (commutative bin-wise merge) and print
                        count/mean/min/max plus p05..p99
  --export-runall-json PATH
                        write a reconstructed fiveg-runall/v4 document
                        (timing fields off) to PATH ('-' = stdout)
  -h, --help            this message
)";

struct Filter {
  std::string name;  // substring; empty = all
  std::vector<std::pair<std::string, std::string>> labels;  // exact
};

// "name{k=v,k2=v2}" — either part may be absent.
bool parse_filter(std::string_view spec, Filter* out) {
  const std::size_t brace = spec.find('{');
  if (brace == std::string_view::npos) {
    out->name = std::string(spec);
    return true;
  }
  if (spec.back() != '}') return false;
  out->name = std::string(spec.substr(0, brace));
  std::string_view body = spec.substr(brace + 1, spec.size() - brace - 2);
  while (!body.empty()) {
    std::size_t comma = body.find(',');
    const std::string_view item =
        comma == std::string_view::npos ? body : body.substr(0, comma);
    body = comma == std::string_view::npos ? std::string_view()
                                           : body.substr(comma + 1);
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) return false;
    out->labels.emplace_back(std::string(item.substr(0, eq)),
                             std::string(item.substr(eq + 1)));
  }
  return true;
}

bool matches(const fiveg::core::StoreRecord& rec, const Filter& f) {
  if (!f.name.empty() &&
      rec.result.name.find(f.name) == std::string::npos) {
    return false;
  }
  for (const auto& [key, value] : f.labels) {
    bool found = false;
    for (const auto& [k, v] : rec.labels) {
      if (k == key) {
        found = v == value;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

std::string label_string(
    const std::vector<std::pair<std::string, std::string>>& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += '=';
    out += v;
  }
  out += '}';
  return out;
}

std::string num(double v) { return fiveg::measure::JsonWriter::number(v); }

// Merges METRIC's digest state across the selected records, in canonical
// record order. Bin counts merge exactly (integer sums, commutative);
// the FP sum is made deterministic by the fixed merge order.
int print_percentiles(const std::vector<fiveg::core::StoreRecord>& records,
                      const std::string& metric) {
  fiveg::obs::Digest merged;
  std::size_t found = 0;
  for (const fiveg::core::StoreRecord& rec : records) {
    for (const fiveg::obs::MetricSnapshot& s : rec.result.counters) {
      if (s.name != metric ||
          s.kind != fiveg::obs::MetricSnapshot::Kind::kDigest) {
        continue;
      }
      std::map<std::int32_t, std::uint64_t> pos(s.bins.begin(),
                                                s.bins.end());
      std::map<std::int32_t, std::uint64_t> neg(s.neg_bins.begin(),
                                                s.neg_bins.end());
      merged.merge(fiveg::obs::Digest::restore(s.zero_count, s.sum, s.min,
                                               s.max, std::move(pos),
                                               std::move(neg)));
      ++found;
    }
  }
  if (found == 0) {
    std::cerr << "fiveg_query: no digest metric named \"" << metric
              << "\" in the selected records\n";
    return 1;
  }
  std::cout << metric << ": merged " << found << " digest(s)\n"
            << "  count " << merged.count() << "\n"
            << "  mean  " << num(merged.mean()) << "\n"
            << "  min   " << num(merged.min()) << "\n"
            << "  max   " << num(merged.max()) << "\n";
  for (const double q : {0.05, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    char buf[8];
    std::snprintf(buf, sizeof buf, "p%02d", static_cast<int>(q * 100));
    std::cout << "  " << buf << "   " << num(merged.quantile(q)) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string store_dir;
  Filter filter;
  bool list = false;
  bool list_metrics = false;
  std::string percentiles_metric;
  bool have_percentiles = false;
  std::string export_path;
  bool have_export = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      list = true;
    } else if (arg == "--list-metrics") {
      list_metrics = true;
    } else if (arg == "--filter") {
      if (!parse_filter(need_value(), &filter)) {
        std::cerr << "bad --filter value (want name{k=v,...})\n";
        return 2;
      }
    } else if (arg == "--percentiles") {
      percentiles_metric = need_value();
      have_percentiles = true;
    } else if (arg == "--export-runall-json") {
      export_path = need_value();
      have_export = true;
    } else if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n" << kUsage;
      return 2;
    } else if (store_dir.empty()) {
      store_dir = arg;
    } else {
      std::cerr << "unexpected argument: " << arg << "\n" << kUsage;
      return 2;
    }
  }
  if (store_dir.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  if (!list && !list_metrics && !have_percentiles && !have_export) {
    std::cerr << "nothing to do (pass --list, --list-metrics, "
                 "--percentiles or --export-runall-json)\n";
    return 2;
  }

  fiveg::core::StoreDirLoad load = fiveg::core::load_store_dir(store_dir);
  if (!load.ok()) {
    std::cerr << load.error << "\n";
    return 2;
  }
  const std::size_t raw = load.records.size();
  std::vector<fiveg::core::StoreRecord> records =
      fiveg::core::canonical_view(std::move(load.records));
  std::cerr << "fiveg_query: " << load.files.size() << " shard(s), " << raw
            << " record(s), " << records.size() << " after merge";
  if (load.torn_files > 0) {
    std::cerr << "; " << load.torn_files << " shard(s) with a torn tail";
  }
  if (load.dropped_records > 0) {
    std::cerr << "; " << load.dropped_records << " undecodable record(s)";
  }
  std::cerr << "\n";

  if (!filter.name.empty() || !filter.labels.empty()) {
    std::vector<fiveg::core::StoreRecord> kept;
    for (fiveg::core::StoreRecord& rec : records) {
      if (matches(rec, filter)) kept.push_back(std::move(rec));
    }
    records = std::move(kept);
  }

  if (list) {
    for (const fiveg::core::StoreRecord& rec : records) {
      std::cout << rec.result.name << " seed=" << rec.result.seed << " "
                << label_string(rec.labels) << " "
                << fiveg::core::to_string(rec.result.status) << "\n";
    }
  }
  if (list_metrics) {
    std::set<std::string> names;
    for (const fiveg::core::StoreRecord& rec : records) {
      for (const fiveg::obs::MetricSnapshot& s : rec.result.counters) {
        const char* kind = "counter";
        switch (s.kind) {
          case fiveg::obs::MetricSnapshot::Kind::kCounter:
            break;
          case fiveg::obs::MetricSnapshot::Kind::kGauge:
            kind = "gauge";
            break;
          case fiveg::obs::MetricSnapshot::Kind::kHistogram:
            kind = "histogram";
            break;
          case fiveg::obs::MetricSnapshot::Kind::kDigest:
            kind = "digest";
            break;
        }
        names.insert(s.name + " (" + kind + ")");
      }
    }
    for (const std::string& n : names) std::cout << n << "\n";
  }
  if (have_percentiles) {
    const int rc = print_percentiles(records, percentiles_metric);
    if (rc != 0) return rc;
  }
  if (have_export) {
    fiveg::core::RunSummary summary;
    summary.results.reserve(records.size());
    for (const fiveg::core::StoreRecord& rec : records) {
      summary.results.push_back(rec.result);
    }
    if (export_path == "-") {
      fiveg::core::write_json(summary, std::cout, /*include_timing=*/false);
    } else {
      std::ofstream f(export_path);
      if (!f) {
        std::cerr << "cannot open " << export_path << " for writing\n";
        return 2;
      }
      fiveg::core::write_json(summary, f, /*include_timing=*/false);
    }
  }
  return 0;
}

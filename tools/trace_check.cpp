// CI gate for trace artifacts: parses a Chrome trace_event JSON file with
// the strict obs parser and enforces minimum structure. Exit 0 on success.
//
// usage: fiveg_trace_check FILE [--min-events N] [--require-cats a,b,c]
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_check.h"

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string part;
  while (std::getline(is, part, ',')) {
    if (!part.empty()) out.push_back(part);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::uint64_t min_events = 1;
  std::vector<std::string> required_cats;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--min-events" && i + 1 < argc) {
      min_events = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--require-cats" && i + 1 < argc) {
      required_cats = split_csv(argv[++i]);
    } else if (arg == "-h" || arg == "--help" || arg[0] == '-') {
      std::cerr << "usage: fiveg_trace_check FILE [--min-events N] "
                   "[--require-cats a,b,c]\n";
      return arg[0] == '-' && arg != "-h" && arg != "--help" ? 2 : 0;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::cerr << "fiveg_trace_check: no input file\n";
    return 2;
  }

  std::ifstream f(path);
  if (!f) {
    std::cerr << "fiveg_trace_check: cannot open " << path << "\n";
    return 2;
  }
  const fiveg::obs::TraceCheck check = fiveg::obs::check_chrome_trace(f);
  if (!check.ok) {
    std::cerr << "fiveg_trace_check: " << path << ": " << check.error << "\n";
    return 1;
  }
  if (check.event_count < min_events) {
    std::cerr << "fiveg_trace_check: " << path << ": only "
              << check.event_count << " events (need >= " << min_events
              << ")\n";
    return 1;
  }
  for (const std::string& cat : required_cats) {
    bool found = false;
    for (const std::string& have : check.categories) found |= have == cat;
    if (!found) {
      std::cerr << "fiveg_trace_check: " << path << ": missing category '"
                << cat << "' (have:";
      for (const std::string& have : check.categories) {
        std::cerr << " " << have;
      }
      std::cerr << ")\n";
      return 1;
    }
  }

  std::cout << path << ": ok, " << check.event_count << " events, "
            << check.categories.size() << " categories, "
            << check.processes.size() << " processes\n";
  // Ring-buffer truncation is reported, not gated on: a wrapped ring means
  // the capacity bound kicked in, not that the trace is malformed.
  if (check.dropped_events > 0) {
    std::cerr << "fiveg_trace_check: note: " << check.dropped_events
              << " events were dropped to ring-buffer wraparound "
                 "(raise --trace-capacity to keep them)\n";
  }
  return 0;
}

// Per-figure KPI report generator and golden-baseline drift detector.
//
// Consumes a fiveg-runall/v3 JSON document (fiveg_runall --json) and emits
// one machine-readable artifact pair per paper figure/table:
//   <out-dir>/<figure>.json   (schema fiveg-report/v1)
//   <out-dir>/<figure>.csv    (figure,metric,value rows)
//
// With --check, each figure is also compared against its committed golden
// baseline (<golden-dir>/<figure>.json, schema fiveg-golden/v1); any
// out-of-tolerance metric, missing/new metric, status change or missing
// golden prints a per-metric diff and exits non-zero. --update-golden
// rewrites the baselines from the current run instead.
//
// Instead of a JSON document, --from-store DIR builds the same reports
// incrementally from a fiveg-rs/v1 columnar store (fiveg_runall --store):
// shards are merged into the canonical view and reconstructed into a
// byte-identical v4 document, so a sharded campaign's figures — and its
// golden --check verdict — match the unsharded run exactly.
//
// usage: fiveg_report --in results.json | --from-store DIR
//                     [--out-dir DIR] [--check | --update-golden]
//                     [--golden-dir DIR] [--quiet]
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/runner.h"
#include "core/store.h"
#include "obs/json_check.h"
#include "report/report.h"

namespace {

namespace fs = std::filesystem;
using fiveg::report::Drift;
using fiveg::report::FigureReport;
using fiveg::report::GoldenFigure;

int usage(int code) {
  std::cerr << "usage: fiveg_report --in results.json | --from-store DIR\n"
               "                    [--out-dir DIR] [--check | "
               "--update-golden] [--golden-dir DIR] [--quiet]\n";
  return code;
}

bool read_file(const fs::path& path, std::string* out, std::string* error) {
  std::ifstream f(path);
  if (!f) {
    *error = "cannot open " + path.string();
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  *out = ss.str();
  return true;
}

bool write_file(const fs::path& path, const std::string& content,
                std::string* error) {
  std::ofstream f(path);
  if (!f) {
    *error = "cannot write " + path.string();
    return false;
  }
  f << content;
  f.close();
  if (!f) {
    *error = "write failed for " + path.string();
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_path;
  std::string store_dir;
  std::string out_dir;
  std::string golden_dir;
  bool check = false;
  bool update_golden = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--in" && i + 1 < argc) {
      in_path = argv[++i];
    } else if (arg == "--from-store" && i + 1 < argc) {
      store_dir = argv[++i];
    } else if (arg == "--out-dir" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--golden-dir" && i + 1 < argc) {
      golden_dir = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--update-golden") {
      update_golden = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "-h" || arg == "--help") {
      return usage(0);
    } else {
      std::cerr << "fiveg_report: unknown argument '" << arg << "'\n";
      return usage(2);
    }
  }
  if (in_path.empty() == store_dir.empty()) {
    std::cerr << "fiveg_report: exactly one of --in / --from-store is "
                 "required\n";
    return usage(2);
  }
  if (check && update_golden) {
    std::cerr << "fiveg_report: --check and --update-golden are exclusive\n";
    return usage(2);
  }
  if ((check || update_golden) && golden_dir.empty()) {
    std::cerr << "fiveg_report: --golden-dir is required with --check / "
                 "--update-golden\n";
    return usage(2);
  }

  std::string text;
  std::string error;
  if (!store_dir.empty()) {
    // Incremental path: merge the store shards and reconstruct the same
    // v4 document fiveg_runall would have written with timing off, then
    // feed it through the identical parse path — one report pipeline,
    // two byte-equivalent inputs.
    fiveg::core::StoreDirLoad load = fiveg::core::load_store_dir(store_dir);
    if (!load.ok()) {
      std::cerr << "fiveg_report: " << load.error << "\n";
      return 2;
    }
    const std::vector<fiveg::core::StoreRecord> records =
        fiveg::core::canonical_view(std::move(load.records));
    if (!quiet) {
      std::cout << "fiveg_report: " << load.files.size() << " shard(s), "
                << records.size() << " record(s) after merge\n";
    }
    fiveg::core::RunSummary summary;
    summary.results.reserve(records.size());
    for (const fiveg::core::StoreRecord& rec : records) {
      summary.results.push_back(rec.result);
    }
    std::ostringstream reconstructed;
    fiveg::core::write_json(summary, reconstructed,
                            /*include_timing=*/false);
    text = reconstructed.str();
    in_path = store_dir;
  } else if (!read_file(in_path, &text, &error)) {
    std::cerr << "fiveg_report: " << error << "\n";
    return 2;
  }
  const auto doc = fiveg::obs::json_parse(text, &error);
  if (doc == nullptr) {
    std::cerr << "fiveg_report: " << in_path << ": " << error << "\n";
    return 2;
  }
  const fiveg::report::BuildResult built = fiveg::report::build_reports(*doc);
  if (!built.ok()) {
    std::cerr << "fiveg_report: " << in_path << ": " << built.error << "\n";
    return 2;
  }

  if (!out_dir.empty()) {
    std::error_code ec;
    fs::create_directories(out_dir, ec);
    if (ec) {
      std::cerr << "fiveg_report: cannot create " << out_dir << ": "
                << ec.message() << "\n";
      return 2;
    }
    for (const FigureReport& fig : built.figures) {
      std::ostringstream json;
      fiveg::report::write_figure_json(fig, json);
      std::ostringstream csv;
      fiveg::report::write_figure_csv(fig, csv);
      if (!write_file(fs::path(out_dir) / (fig.id + ".json"), json.str(),
                      &error) ||
          !write_file(fs::path(out_dir) / (fig.id + ".csv"), csv.str(),
                      &error)) {
        std::cerr << "fiveg_report: " << error << "\n";
        return 2;
      }
    }
    if (!quiet) {
      std::cout << "fiveg_report: wrote " << built.figures.size()
                << " figure artifact pairs to " << out_dir << "\n";
    }
  }

  if (update_golden) {
    std::error_code ec;
    fs::create_directories(golden_dir, ec);
    if (ec) {
      std::cerr << "fiveg_report: cannot create " << golden_dir << ": "
                << ec.message() << "\n";
      return 2;
    }
    for (const FigureReport& fig : built.figures) {
      std::ostringstream golden;
      fiveg::report::write_golden_json(fig, golden);
      if (!write_file(fs::path(golden_dir) / (fig.id + ".json"),
                      golden.str(), &error)) {
        std::cerr << "fiveg_report: " << error << "\n";
        return 2;
      }
    }
    if (!quiet) {
      std::cout << "fiveg_report: updated " << built.figures.size()
                << " goldens in " << golden_dir << "\n";
    }
    return 0;
  }

  if (!check) return 0;

  std::vector<Drift> drifts;
  std::size_t missing_goldens = 0;
  for (const FigureReport& fig : built.figures) {
    const fs::path golden_path = fs::path(golden_dir) / (fig.id + ".json");
    std::string golden_text;
    if (!read_file(golden_path, &golden_text, &error)) {
      std::cerr << "fiveg_report: no golden for " << fig.id << " ("
                << golden_path.string()
                << " missing; seed it with --update-golden)\n";
      ++missing_goldens;
      continue;
    }
    const auto golden_doc = fiveg::obs::json_parse(golden_text, &error);
    if (golden_doc == nullptr) {
      std::cerr << "fiveg_report: " << golden_path.string() << ": " << error
                << "\n";
      ++missing_goldens;
      continue;
    }
    GoldenFigure golden;
    if (!fiveg::report::parse_golden(*golden_doc, &golden, &error)) {
      std::cerr << "fiveg_report: " << golden_path.string() << ": " << error
                << "\n";
      ++missing_goldens;
      continue;
    }
    const std::vector<Drift> figure_drifts =
        fiveg::report::check_figure(fig, golden);
    for (const Drift& d : figure_drifts) {
      std::cerr << "fiveg_report: DRIFT " << d.describe() << "\n";
    }
    drifts.insert(drifts.end(), figure_drifts.begin(), figure_drifts.end());
  }

  if (!drifts.empty() || missing_goldens > 0) {
    std::cerr << "fiveg_report: " << drifts.size() << " drifting metric(s), "
              << missing_goldens << " unreadable/missing golden(s) across "
              << built.figures.size() << " figures\n";
    return 1;
  }
  if (!quiet) {
    std::cout << "fiveg_report: " << built.figures.size()
              << " figures match golden baselines\n";
  }
  return 0;
}

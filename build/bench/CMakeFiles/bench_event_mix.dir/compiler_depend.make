# Empty compiler generated dependencies file for bench_event_mix.
# This may be replaced when dependencies are built.

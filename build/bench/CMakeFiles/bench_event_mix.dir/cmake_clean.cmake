file(REMOVE_RECURSE
  "CMakeFiles/bench_event_mix.dir/bench_event_mix.cpp.o"
  "CMakeFiles/bench_event_mix.dir/bench_event_mix.cpp.o.d"
  "bench_event_mix"
  "bench_event_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_event_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

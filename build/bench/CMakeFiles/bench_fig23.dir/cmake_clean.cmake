file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23.dir/bench_fig23.cpp.o"
  "CMakeFiles/bench_fig23.dir/bench_fig23.cpp.o.d"
  "bench_fig23"
  "bench_fig23.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

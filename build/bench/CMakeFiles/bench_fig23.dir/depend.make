# Empty dependencies file for bench_fig23.
# This may be replaced when dependencies are built.

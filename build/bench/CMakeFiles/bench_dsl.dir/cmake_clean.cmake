file(REMOVE_RECURSE
  "CMakeFiles/bench_dsl.dir/bench_dsl.cpp.o"
  "CMakeFiles/bench_dsl.dir/bench_dsl.cpp.o.d"
  "bench_dsl"
  "bench_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_dsl.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig18_19.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_19.dir/bench_fig18_19.cpp.o"
  "CMakeFiles/bench_fig18_19.dir/bench_fig18_19.cpp.o.d"
  "bench_fig18_19"
  "bench_fig18_19.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_19.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

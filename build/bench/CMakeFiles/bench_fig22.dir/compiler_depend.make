# Empty compiler generated dependencies file for bench_fig22.
# This may be replaced when dependencies are built.

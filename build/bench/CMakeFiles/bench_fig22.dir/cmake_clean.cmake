file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22.dir/bench_fig22.cpp.o"
  "CMakeFiles/bench_fig22.dir/bench_fig22.cpp.o.d"
  "bench_fig22"
  "bench_fig22.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_video_call.
# This may be replaced when dependencies are built.

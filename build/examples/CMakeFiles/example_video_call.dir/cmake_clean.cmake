file(REMOVE_RECURSE
  "CMakeFiles/example_video_call.dir/video_call.cpp.o"
  "CMakeFiles/example_video_call.dir/video_call.cpp.o.d"
  "example_video_call"
  "example_video_call.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_video_call.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

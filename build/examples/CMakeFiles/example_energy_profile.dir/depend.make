# Empty dependencies file for example_energy_profile.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_energy_profile.dir/energy_profile.cpp.o"
  "CMakeFiles/example_energy_profile.dir/energy_profile.cpp.o.d"
  "example_energy_profile"
  "example_energy_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_energy_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_speedtest.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_speedtest.dir/speedtest.cpp.o"
  "CMakeFiles/example_speedtest.dir/speedtest.cpp.o.d"
  "example_speedtest"
  "example_speedtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_speedtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

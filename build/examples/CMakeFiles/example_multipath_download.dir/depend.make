# Empty dependencies file for example_multipath_download.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_multipath_download.dir/multipath_download.cpp.o"
  "CMakeFiles/example_multipath_download.dir/multipath_download.cpp.o.d"
  "example_multipath_download"
  "example_multipath_download.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multipath_download.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

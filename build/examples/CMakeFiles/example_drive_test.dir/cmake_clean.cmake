file(REMOVE_RECURSE
  "CMakeFiles/example_drive_test.dir/drive_test.cpp.o"
  "CMakeFiles/example_drive_test.dir/drive_test.cpp.o.d"
  "example_drive_test"
  "example_drive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_drive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_drive_test.
# This may be replaced when dependencies are built.

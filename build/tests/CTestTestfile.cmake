# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(app_test "/root/repo/build/tests/app_test")
set_tests_properties(app_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(energy_test "/root/repo/build/tests/energy_test")
set_tests_properties(energy_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(extension_test "/root/repo/build/tests/extension_test")
set_tests_properties(extension_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(geo_test "/root/repo/build/tests/geo_test")
set_tests_properties(geo_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(measure_test "/root/repo/build/tests/measure_test")
set_tests_properties(measure_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(net_test "/root/repo/build/tests/net_test")
set_tests_properties(net_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(radio_test "/root/repo/build/tests/radio_test")
set_tests_properties(radio_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ran_test "/root/repo/build/tests/ran_test")
set_tests_properties(ran_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tcp_test "/root/repo/build/tests/tcp_test")
set_tests_properties(tcp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;0;")

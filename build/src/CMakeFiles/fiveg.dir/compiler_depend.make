# Empty compiler generated dependencies file for fiveg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libfiveg.a"
)

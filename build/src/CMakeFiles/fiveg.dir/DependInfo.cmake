
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/iperf.cpp" "src/CMakeFiles/fiveg.dir/app/iperf.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/app/iperf.cpp.o.d"
  "/root/repo/src/app/multipath.cpp" "src/CMakeFiles/fiveg.dir/app/multipath.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/app/multipath.cpp.o.d"
  "/root/repo/src/app/video.cpp" "src/CMakeFiles/fiveg.dir/app/video.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/app/video.cpp.o.d"
  "/root/repo/src/app/web.cpp" "src/CMakeFiles/fiveg.dir/app/web.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/app/web.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/fiveg.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/experiments/ablation_experiments.cpp" "src/CMakeFiles/fiveg.dir/core/experiments/ablation_experiments.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/core/experiments/ablation_experiments.cpp.o.d"
  "/root/repo/src/core/experiments/app_experiments.cpp" "src/CMakeFiles/fiveg.dir/core/experiments/app_experiments.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/core/experiments/app_experiments.cpp.o.d"
  "/root/repo/src/core/experiments/coverage_experiments.cpp" "src/CMakeFiles/fiveg.dir/core/experiments/coverage_experiments.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/core/experiments/coverage_experiments.cpp.o.d"
  "/root/repo/src/core/experiments/energy_experiments.cpp" "src/CMakeFiles/fiveg.dir/core/experiments/energy_experiments.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/core/experiments/energy_experiments.cpp.o.d"
  "/root/repo/src/core/experiments/extension_experiments.cpp" "src/CMakeFiles/fiveg.dir/core/experiments/extension_experiments.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/core/experiments/extension_experiments.cpp.o.d"
  "/root/repo/src/core/experiments/handoff_experiments.cpp" "src/CMakeFiles/fiveg.dir/core/experiments/handoff_experiments.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/core/experiments/handoff_experiments.cpp.o.d"
  "/root/repo/src/core/experiments/latency_experiments.cpp" "src/CMakeFiles/fiveg.dir/core/experiments/latency_experiments.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/core/experiments/latency_experiments.cpp.o.d"
  "/root/repo/src/core/experiments/throughput_experiments.cpp" "src/CMakeFiles/fiveg.dir/core/experiments/throughput_experiments.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/core/experiments/throughput_experiments.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/CMakeFiles/fiveg.dir/core/scenario.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/core/scenario.cpp.o.d"
  "/root/repo/src/energy/policies.cpp" "src/CMakeFiles/fiveg.dir/energy/policies.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/energy/policies.cpp.o.d"
  "/root/repo/src/energy/power_model.cpp" "src/CMakeFiles/fiveg.dir/energy/power_model.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/energy/power_model.cpp.o.d"
  "/root/repo/src/energy/power_strip.cpp" "src/CMakeFiles/fiveg.dir/energy/power_strip.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/energy/power_strip.cpp.o.d"
  "/root/repo/src/energy/rrc_power_machine.cpp" "src/CMakeFiles/fiveg.dir/energy/rrc_power_machine.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/energy/rrc_power_machine.cpp.o.d"
  "/root/repo/src/energy/traffic_trace.cpp" "src/CMakeFiles/fiveg.dir/energy/traffic_trace.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/energy/traffic_trace.cpp.o.d"
  "/root/repo/src/geo/building.cpp" "src/CMakeFiles/fiveg.dir/geo/building.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/geo/building.cpp.o.d"
  "/root/repo/src/geo/campus.cpp" "src/CMakeFiles/fiveg.dir/geo/campus.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/geo/campus.cpp.o.d"
  "/root/repo/src/geo/geometry.cpp" "src/CMakeFiles/fiveg.dir/geo/geometry.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/geo/geometry.cpp.o.d"
  "/root/repo/src/geo/route.cpp" "src/CMakeFiles/fiveg.dir/geo/route.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/geo/route.cpp.o.d"
  "/root/repo/src/measure/cdf.cpp" "src/CMakeFiles/fiveg.dir/measure/cdf.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/measure/cdf.cpp.o.d"
  "/root/repo/src/measure/csv.cpp" "src/CMakeFiles/fiveg.dir/measure/csv.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/measure/csv.cpp.o.d"
  "/root/repo/src/measure/histogram.cpp" "src/CMakeFiles/fiveg.dir/measure/histogram.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/measure/histogram.cpp.o.d"
  "/root/repo/src/measure/kpi_logger.cpp" "src/CMakeFiles/fiveg.dir/measure/kpi_logger.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/measure/kpi_logger.cpp.o.d"
  "/root/repo/src/measure/plot.cpp" "src/CMakeFiles/fiveg.dir/measure/plot.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/measure/plot.cpp.o.d"
  "/root/repo/src/measure/stats.cpp" "src/CMakeFiles/fiveg.dir/measure/stats.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/measure/stats.cpp.o.d"
  "/root/repo/src/measure/table.cpp" "src/CMakeFiles/fiveg.dir/measure/table.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/measure/table.cpp.o.d"
  "/root/repo/src/measure/timeseries.cpp" "src/CMakeFiles/fiveg.dir/measure/timeseries.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/measure/timeseries.cpp.o.d"
  "/root/repo/src/net/aqm.cpp" "src/CMakeFiles/fiveg.dir/net/aqm.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/net/aqm.cpp.o.d"
  "/root/repo/src/net/cross_traffic.cpp" "src/CMakeFiles/fiveg.dir/net/cross_traffic.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/net/cross_traffic.cpp.o.d"
  "/root/repo/src/net/epc.cpp" "src/CMakeFiles/fiveg.dir/net/epc.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/net/epc.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/fiveg.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/net/link.cpp.o.d"
  "/root/repo/src/net/path.cpp" "src/CMakeFiles/fiveg.dir/net/path.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/net/path.cpp.o.d"
  "/root/repo/src/net/queue.cpp" "src/CMakeFiles/fiveg.dir/net/queue.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/net/queue.cpp.o.d"
  "/root/repo/src/net/ran_link.cpp" "src/CMakeFiles/fiveg.dir/net/ran_link.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/net/ran_link.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/fiveg.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/net/topology.cpp.o.d"
  "/root/repo/src/net/traceroute.cpp" "src/CMakeFiles/fiveg.dir/net/traceroute.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/net/traceroute.cpp.o.d"
  "/root/repo/src/net/udp.cpp" "src/CMakeFiles/fiveg.dir/net/udp.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/net/udp.cpp.o.d"
  "/root/repo/src/radio/antenna.cpp" "src/CMakeFiles/fiveg.dir/radio/antenna.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/radio/antenna.cpp.o.d"
  "/root/repo/src/radio/carrier.cpp" "src/CMakeFiles/fiveg.dir/radio/carrier.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/radio/carrier.cpp.o.d"
  "/root/repo/src/radio/link_budget.cpp" "src/CMakeFiles/fiveg.dir/radio/link_budget.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/radio/link_budget.cpp.o.d"
  "/root/repo/src/radio/mcs.cpp" "src/CMakeFiles/fiveg.dir/radio/mcs.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/radio/mcs.cpp.o.d"
  "/root/repo/src/radio/pathloss.cpp" "src/CMakeFiles/fiveg.dir/radio/pathloss.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/radio/pathloss.cpp.o.d"
  "/root/repo/src/radio/shadowing.cpp" "src/CMakeFiles/fiveg.dir/radio/shadowing.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/radio/shadowing.cpp.o.d"
  "/root/repo/src/ran/cell.cpp" "src/CMakeFiles/fiveg.dir/ran/cell.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/ran/cell.cpp.o.d"
  "/root/repo/src/ran/deployment.cpp" "src/CMakeFiles/fiveg.dir/ran/deployment.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/ran/deployment.cpp.o.d"
  "/root/repo/src/ran/drx.cpp" "src/CMakeFiles/fiveg.dir/ran/drx.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/ran/drx.cpp.o.d"
  "/root/repo/src/ran/handoff.cpp" "src/CMakeFiles/fiveg.dir/ran/handoff.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/ran/handoff.cpp.o.d"
  "/root/repo/src/ran/harq.cpp" "src/CMakeFiles/fiveg.dir/ran/harq.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/ran/harq.cpp.o.d"
  "/root/repo/src/ran/measurement_events.cpp" "src/CMakeFiles/fiveg.dir/ran/measurement_events.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/ran/measurement_events.cpp.o.d"
  "/root/repo/src/ran/nsa_signaling.cpp" "src/CMakeFiles/fiveg.dir/ran/nsa_signaling.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/ran/nsa_signaling.cpp.o.d"
  "/root/repo/src/ran/prb_scheduler.cpp" "src/CMakeFiles/fiveg.dir/ran/prb_scheduler.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/ran/prb_scheduler.cpp.o.d"
  "/root/repo/src/ran/rrc.cpp" "src/CMakeFiles/fiveg.dir/ran/rrc.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/ran/rrc.cpp.o.d"
  "/root/repo/src/ran/ue.cpp" "src/CMakeFiles/fiveg.dir/ran/ue.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/ran/ue.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/fiveg.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/fiveg.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/sim/rng.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/fiveg.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/tcp/cc_bbr.cpp" "src/CMakeFiles/fiveg.dir/tcp/cc_bbr.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/tcp/cc_bbr.cpp.o.d"
  "/root/repo/src/tcp/cc_cubic.cpp" "src/CMakeFiles/fiveg.dir/tcp/cc_cubic.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/tcp/cc_cubic.cpp.o.d"
  "/root/repo/src/tcp/cc_reno.cpp" "src/CMakeFiles/fiveg.dir/tcp/cc_reno.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/tcp/cc_reno.cpp.o.d"
  "/root/repo/src/tcp/cc_vegas.cpp" "src/CMakeFiles/fiveg.dir/tcp/cc_vegas.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/tcp/cc_vegas.cpp.o.d"
  "/root/repo/src/tcp/cc_veno.cpp" "src/CMakeFiles/fiveg.dir/tcp/cc_veno.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/tcp/cc_veno.cpp.o.d"
  "/root/repo/src/tcp/congestion_control.cpp" "src/CMakeFiles/fiveg.dir/tcp/congestion_control.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/tcp/congestion_control.cpp.o.d"
  "/root/repo/src/tcp/rtt_estimator.cpp" "src/CMakeFiles/fiveg.dir/tcp/rtt_estimator.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/tcp/rtt_estimator.cpp.o.d"
  "/root/repo/src/tcp/tcp_receiver.cpp" "src/CMakeFiles/fiveg.dir/tcp/tcp_receiver.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/tcp/tcp_receiver.cpp.o.d"
  "/root/repo/src/tcp/tcp_sender.cpp" "src/CMakeFiles/fiveg.dir/tcp/tcp_sender.cpp.o" "gcc" "src/CMakeFiles/fiveg.dir/tcp/tcp_sender.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

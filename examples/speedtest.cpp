// SPEEDTEST-style active probe: pick one of the paper's 20 wide-area
// servers (Table 6), then measure UDP baseline, TCP goodput and traceroute
// RTTs over 4G and 5G.
//
//   ./example_speedtest [server_index 0..19]
#include <cstdlib>
#include <iostream>

#include "app/iperf.h"
#include "core/scenario.h"
#include "measure/table.h"
#include "net/topology.h"
#include "net/traceroute.h"

int main(int argc, char** argv) {
  using namespace fiveg;
  const std::size_t idx =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;  // Qingdao
  const auto& servers = net::speedtest_servers();
  const net::ServerInfo& server = servers.at(idx % servers.size());
  std::cout << "Server: " << server.name << " (" << server.city << ", "
            << server.distance_km << " km away)\n\n";

  measure::TextTable t("Active measurement results",
                       {"network", "UDP (Mbps)", "TCP BBR (Mbps)",
                        "RTT p50 (ms)", "hops"});
  for (const radio::Rat rat : {radio::Rat::kNr, radio::Rat::kLte}) {
    sim::Simulator simr;
    core::TestbedOptions opt;
    opt.rat = rat;
    opt.server_distance_km = server.distance_km;
    core::Testbed bed(&simr, opt, /*seed=*/42);
    bed.start_cross_traffic(60 * sim::kSecond);

    // UDP baseline at the radio rate.
    app::UdpTest udp(&simr, &bed.path(), &bed.fanout(), bed.ran_rate_bps());
    udp.start(10 * sim::kSecond);

    // TCP bulk with BBR.
    app::TcpSession tcp_session(&simr, &bed.path(), &bed.fanout(),
                                tcp::TcpConfig{.algo = tcp::CcAlgo::kBbr},
                                /*flow_id=*/2);
    tcp_session.sender().start_bulk();

    // Traceroute alongside.
    net::Traceroute tr(&simr, &bed.path(), 10, 500 * sim::kMillisecond);
    std::vector<net::HopRtt> hops;
    tr.run([&](std::vector<net::HopRtt> r) { hops = std::move(r); });

    simr.run_until(15 * sim::kSecond);
    const auto udp_result = udp.result(sim::kSecond, 10 * sim::kSecond);
    const double tcp_goodput = tcp_session.receiver().mean_goodput_bps(
        5 * sim::kSecond, 15 * sim::kSecond);
    const double rtt =
        hops.empty() ? 0.0 : hops.back().rtt_ms.mean();
    t.add_row({rat == radio::Rat::kNr ? "5G" : "4G",
               measure::TextTable::num(udp_result.mean_throughput_bps / 1e6, 0),
               measure::TextTable::num(tcp_goodput / 1e6, 0),
               measure::TextTable::num(rtt, 1),
               std::to_string(bed.hop_count())});
  }
  t.print(std::cout);
  return 0;
}

// Quickstart: build the campus scenario, peek at the radio environment,
// and push a TCP flow through a full 5G NSA path — the library's public
// API in ~60 lines.
//
//   ./example_quickstart
#include <iostream>

#include "app/iperf.h"
#include "core/scenario.h"
#include "measure/table.h"

int main() {
  using namespace fiveg;

  // 1. The measured world: a 500 x 920 m campus with 13 eNBs + 6 gNBs.
  const core::Scenario scenario(/*seed=*/42);
  const auto& dep = scenario.deployment();
  const geo::Point ue = scenario.campus().bounds().center();

  const auto nr = dep.best(radio::Rat::kNr, ue);
  const auto lte = dep.best(radio::Rat::kLte, ue);
  std::cout << "UE at campus centre:\n"
            << "  5G: PCI " << nr.cell->pci << ", RSRP " << nr.rsrp_dbm
            << " dBm, SINR " << nr.sinr_db << " dB, DL "
            << dep.dl_bitrate_bps(radio::Rat::kNr, ue) / 1e6 << " Mbps\n"
            << "  4G: PCI " << lte.cell->pci << ", RSRP " << lte.rsrp_dbm
            << " dBm, DL " << dep.dl_bitrate_bps(radio::Rat::kLte, ue) / 1e6
            << " Mbps\n\n";

  // 2. An end-to-end 5G downlink with ambient metro cross traffic.
  sim::Simulator simr;
  core::TestbedOptions opt;  // 5G, daytime, downlink
  core::Testbed bed(&simr, opt, /*seed=*/42);
  bed.start_cross_traffic(20 * sim::kSecond);

  // 3. A BBR bulk flow, cloud -> UE.
  app::TcpSession session(&simr, &bed.path(), &bed.fanout(),
                          tcp::TcpConfig{.algo = tcp::CcAlgo::kBbr});
  session.sender().start_bulk();
  simr.run_until(15 * sim::kSecond);

  const double goodput =
      session.receiver().mean_goodput_bps(5 * sim::kSecond,
                                          15 * sim::kSecond);
  std::cout << "15 s BBR bulk transfer over 5G NSA:\n"
            << "  steady goodput  " << goodput / 1e6 << " Mbps ("
            << measure::TextTable::pct(goodput / bed.ran_rate_bps())
            << " of the radio baseline)\n"
            << "  retransmissions " << session.sender().retransmissions()
            << "\n  smoothed RTT    "
            << sim::to_millis(session.sender().rtt().smoothed_rtt())
            << " ms\n";
  return 0;
}

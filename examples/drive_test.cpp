// Drive test: replicate the paper's measurement campaign — walk the whole
// campus with an XCAL-style logger attached, then print the RSRP/RSRQ
// summary, the hand-off log and per-type latency statistics.
//
//   ./example_drive_test [seed] [speed_kmh] [csv_prefix]
//
// With a csv_prefix, the raw KPI series and the signalling-event log are
// exported as <prefix>_kpis.csv / <prefix>_events.csv (the simulated
// equivalent of the paper's released dataset).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>

#include "core/scenario.h"
#include "geo/route.h"
#include "measure/csv.h"
#include "measure/kpi_logger.h"
#include "measure/stats.h"
#include "measure/table.h"
#include "ran/handoff.h"

int main(int argc, char** argv) {
  using namespace fiveg;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const double speed_kmh = argc > 2 ? std::atof(argv[2]) : 5.0;

  const core::Scenario scenario(seed);
  sim::Simulator simr;
  measure::KpiLogger xcal;

  ran::MobilityConfig cfg;
  cfg.speed_mps = speed_kmh / 3.6;
  ran::HandoffEngine engine(&simr, &scenario.deployment(), cfg,
                            sim::Rng(seed).fork("walk"), &xcal);

  const geo::Route route = geo::make_survey_route(scenario.campus());
  std::cout << "Walking " << route.length_m() / 1000.0 << " km at "
            << speed_kmh << " km/h (paper: 6.019 km at 4-5 km/h)\n\n";
  engine.start(route);
  simr.run_until(sim::from_seconds(route.length_m() / cfg.speed_mps) +
                 sim::kSecond);

  // Physical-layer summary, XCAL style.
  measure::TextTable kpis("PHY KPIs along the walk",
                          {"KPI", "mean", "min", "max", "samples"});
  for (const char* kpi : {"nr_serving_rsrp_dbm", "nr_serving_rsrq_db",
                          "lte_serving_rsrp_dbm", "lte_serving_rsrq_db"}) {
    const auto series = xcal.find(kpi);
    if (!series) continue;  // e.g. no NR attach on a short walk
    const auto s = series->get().summarize();
    kpis.add_row({kpi, measure::TextTable::num(s.mean(), 1),
                  measure::TextTable::num(s.min(), 1),
                  measure::TextTable::num(s.max(), 1),
                  std::to_string(s.count())});
  }
  kpis.print(std::cout);

  // Hand-off log (first ten events) and per-type latency.
  measure::TextTable log("Hand-off log (first 10)",
                         {"t (s)", "type", "from", "to", "latency (ms)"});
  std::map<ran::HandoffType, measure::RunningStats> latency;
  std::size_t shown = 0;
  for (const ran::HandoffRecord& r : engine.records()) {
    latency[r.type].add(sim::to_millis(r.latency));
    if (shown++ < 10) {
      log.add_row({measure::TextTable::num(sim::to_seconds(r.trigger_at), 1),
                   ran::to_string(r.type), std::to_string(r.from_pci),
                   std::to_string(r.to_pci),
                   measure::TextTable::num(sim::to_millis(r.latency), 1)});
    }
  }
  log.print(std::cout);

  measure::TextTable lat("Hand-off latency by type",
                         {"type", "count", "mean (ms)"});
  for (const auto& [type, stats] : latency) {
    lat.add_row({ran::to_string(type), std::to_string(stats.count()),
                 measure::TextTable::num(stats.mean(), 1)});
  }
  lat.print(std::cout);

  if (argc > 3) {
    const std::string prefix = argv[3];
    std::ofstream kpis(prefix + "_kpis.csv");
    measure::write_csv(kpis, xcal);
    std::ofstream events(prefix + "_events.csv");
    measure::write_events_csv(events, xcal);
    std::cout << "exported " << prefix << "_kpis.csv and " << prefix
              << "_events.csv\n";
  }
  return 0;
}

// Battery profiling demo (pwrStrip): how much of a phone's power budget
// each component takes while running daily apps on 4G vs 5G, and what the
// Table-4 power-management policies would save.
//
//   ./example_energy_profile
#include <iostream>

#include "energy/power_strip.h"
#include "energy/rrc_power_machine.h"
#include "energy/traffic_trace.h"
#include "measure/table.h"

int main() {
  using namespace fiveg;
  using energy::RadioModel;

  const energy::RrcPowerMachine machine;
  const energy::ComponentPower components;

  int n_apps = 0;
  const energy::AppProfile* apps = energy::daily_apps(&n_apps);
  measure::TextTable t("One minute of app usage — mean power (mW)",
                       {"app", "4G total", "5G total", "5G radio share"});
  for (int i = 0; i < n_apps; ++i) {
    const auto lte = energy::measure_app_session(
        machine, RadioModel::kLteOnly, apps[i], components,
        60 * sim::kSecond);
    const auto nr = energy::measure_app_session(
        machine, RadioModel::kNrNsa, apps[i], components, 60 * sim::kSecond);
    t.add_row({apps[i].name,
               measure::TextTable::num(lte.mean_power_mw(60 * sim::kSecond), 0),
               measure::TextTable::num(nr.mean_power_mw(60 * sim::kSecond), 0),
               measure::TextTable::pct(nr.radio_share())});
  }
  t.print(std::cout);

  measure::TextTable p("Policy comparison on a web-browsing trace (J)",
                       {"policy", "radio energy", "completion (s)"});
  const energy::TrafficTrace web = energy::web_browsing_trace(sim::Rng(1));
  for (const RadioModel m :
       {RadioModel::kLteOnly, RadioModel::kNrNsa, RadioModel::kNrOracle,
        RadioModel::kDynamicSwitch}) {
    const auto r = machine.replay(web, m);
    p.add_row({energy::to_string(m),
               measure::TextTable::num(r.radio_joules, 1),
               measure::TextTable::num(sim::to_seconds(r.completion), 1)});
  }
  p.print(std::cout);
  std::cout << "paper: the 5G radio takes ~55% of the budget; dynamic "
               "4G/5G switching recovers ~25% on bursty traffic\n";
  return 0;
}

// ATSSS/MPTCP-style striped download: fetch one file over the 5G and 4G
// paths simultaneously, with an optional mid-transfer 5G outage to show
// the reinjection logic riding it out.
//
//   ./example_multipath_download [megabytes] [--outage]
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "app/multipath.h"
#include "core/scenario.h"
#include "measure/table.h"

int main(int argc, char** argv) {
  using namespace fiveg;
  const std::uint64_t megabytes =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100;
  const bool outage =
      argc > 2 && std::strcmp(argv[2], "--outage") == 0;

  sim::Simulator simr;
  bool blocked = false;

  core::TestbedOptions nr_opt;
  nr_opt.cross_traffic = false;
  nr_opt.ran_blocked_fn = [&blocked] { return blocked; };
  core::Testbed nr_bed(&simr, nr_opt, /*seed=*/42);

  core::TestbedOptions lte_opt;
  lte_opt.rat = radio::Rat::kLte;
  lte_opt.cross_traffic = false;
  core::Testbed lte_bed(&simr, lte_opt, /*seed=*/43);

  app::MultipathTransfer::Config cfg;
  cfg.transport.algo = tcp::CcAlgo::kBbr;
  app::MultipathTransfer mp(&simr, &nr_bed.path(), &nr_bed.fanout(),
                            &lte_bed.path(), &lte_bed.fanout(), cfg);

  sim::Time done_at = 0;
  mp.transfer(megabytes << 20, [&] { done_at = simr.now(); });
  if (outage) {
    simr.schedule_at(sim::kSecond, [&blocked] { blocked = true; });
    simr.schedule_at(4 * sim::kSecond, [&blocked] { blocked = false; });
    std::cout << "(injecting a 3 s 5G outage at t=1 s)\n";
  }
  simr.run_until(10 * sim::kMinute);

  measure::TextTable t("Striped 4G+5G download of " +
                           std::to_string(megabytes) + " MB",
                       {"metric", "value"});
  t.add_row({"completion (s)",
             measure::TextTable::num(sim::to_seconds(done_at), 2)});
  t.add_row({"via 5G (MB)",
             measure::TextTable::num(mp.bytes_via_a() / double(1 << 20), 1)});
  t.add_row({"via 4G (MB)",
             measure::TextTable::num(mp.bytes_via_b() / double(1 << 20), 1)});
  t.add_row({"aggregate (Mbps)",
             measure::TextTable::num(
                 megabytes * 8.0 / sim::to_seconds(done_at), 0)});
  t.print(std::cout);
  std::cout << "paper Sec. 6.3: dynamic 4G/5G switching \"may also be a use "
               "case for MPTCP ... an interesting topic\" — this is that "
               "topic, simulated.\n";
  return mp.finished() ? 0 : 1;
}

// 360TEL demo: a 30-second UHD panoramic video call pushed uplink over 5G
// and over 4G, with the paper's codec pipeline. Prints QoE: throughput,
// frame delay percentiles and freeze events.
//
//   ./example_video_call [resolution: 720p|1080p|4k|5.7k] [--dynamic]
#include <cstring>
#include <iostream>
#include <string>

#include "app/video.h"
#include "core/scenario.h"
#include "measure/table.h"

int main(int argc, char** argv) {
  using namespace fiveg;

  app::Resolution res = app::Resolution::k4K;
  bool dynamic = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "720p") res = app::Resolution::k720p;
    if (arg == "1080p") res = app::Resolution::k1080p;
    if (arg == "4k") res = app::Resolution::k4K;
    if (arg == "5.7k") res = app::Resolution::k5p7K;
    if (arg == "--dynamic") dynamic = true;
  }

  measure::TextTable t(
      "360TEL: 30 s " + app::to_string(res) +
          (dynamic ? " (dynamic scene)" : " (static scene)") + " call",
      {"network", "recv Mbps", "median delay (s)", "p90 delay (s)",
       "freezes", "frames"});
  for (const radio::Rat rat : {radio::Rat::kNr, radio::Rat::kLte}) {
    sim::Simulator simr;
    core::TestbedOptions opt;
    opt.rat = rat;
    opt.direction = core::Direction::kUplink;
    opt.cross_traffic = false;
    core::Testbed bed(&simr, opt, /*seed=*/42);

    app::VideoConfig cfg;
    cfg.resolution = res;
    cfg.dynamic_scene = dynamic;
    cfg.transport.algo = tcp::CcAlgo::kBbr;
    app::VideoTelephony call(&simr, &bed.path(), &bed.fanout(), cfg,
                             sim::Rng(7).fork("call"));
    call.start(30 * sim::kSecond);
    simr.run_until(90 * sim::kSecond);

    const app::VideoStats s = call.stats();
    t.add_row({rat == radio::Rat::kNr ? "5G" : "4G",
               measure::TextTable::num(s.mean_received_throughput_bps / 1e6, 1),
               measure::TextTable::num(
                   s.frame_delay_s.empty() ? 0 : s.frame_delay_s.quantile(0.5),
                   2),
               measure::TextTable::num(
                   s.frame_delay_s.empty() ? 0 : s.frame_delay_s.quantile(0.9),
                   2),
               std::to_string(s.freeze_events),
               std::to_string(s.frames_delivered) + "/" +
                   std::to_string(s.frames_captured)});
  }
  t.print(std::cout);
  std::cout << "paper: 4K runs ~0.95 s end-to-end on 5G — processing "
               "(~650 ms) is 10x the network time; 4G chokes above 1080p\n";
  return 0;
}

// City-scale UE-core benchmark guarding the SoA cohort's batched
// measurement path: a 1k-UE mixed cohort (85% stationary, 10% walkers,
// 5% drivers) on the 19-site hex grid, swept for several sample periods.
// The scalar baseline advances the same positions and calls the per-UE
// measure_cells() loop; the batch path runs UeCohort::measure_batch with
// its SectorPlan hoisting, spatial visit order and exact row cache.
//
// Both paths print a checksum summed in UE-index order over every
// (ue, cell) rsrp/sinr value. The batch optimizations are exact (plan
// hoisting keeps the scalar expression association; cached rows are pure
// functions of their keys), so the two checksums must be bit-identical —
// any divergence means the fast path changed physics.
//
// Prints one JSON document on stdout:
//   {"reps": ..., "ues": ..., "cells_per_rat": ..., "sweeps_per_rep": ...,
//    "scalar_evals_per_s_median": ..., "batch_evals_per_s_median": ...,
//    "speedup_median": ..., "scalar_checksum": ..., "batch_checksum": ...}
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "geo/campus.h"
#include "geo/route.h"
#include "ran/cell.h"
#include "ran/deployment.h"
#include "ran/ue_cohort.h"
#include "sim/rng.h"

namespace {

using namespace fiveg;  // NOLINT: benchmark file brevity
using Clock = std::chrono::steady_clock;

constexpr int kReps = 5;
constexpr int kUes = 1000;
constexpr int kSweeps = 10;
constexpr sim::Time kPeriod = sim::from_millis(200);

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// Populates the cohort exactly like the city_grid_1k experiment: walkers
// and drivers first, then the stationary majority.
void populate(ran::UeCohort& cohort, const geo::CampusMap& campus,
              sim::Rng& place) {
  const int n_walk = kUes / 10, n_drive = kUes / 20;
  for (int i = 0; i < n_walk; ++i) {
    cohort.add_route(geo::make_waypoint_route(campus, place, 6), 1.4);
  }
  for (int i = 0; i < n_drive; ++i) {
    cohort.add_route(geo::make_waypoint_route(campus, place, 4), 11.0);
  }
  for (int i = n_walk + n_drive; i < kUes; ++i) {
    cohort.add_stationary(campus.random_point(place));
  }
}

struct RepResult {
  double evals_per_s = 0;
  double checksum = 0;
};

// Scalar baseline: the pre-cohort per-UE loop (scratch overload, so the
// comparison is measurement structure, not allocator churn).
RepResult scalar_rep(ran::UeCohort& cohort, const ran::Deployment& dep) {
  std::vector<ran::CellMeasurement> scratch;
  std::uint64_t evals = 0;
  double checksum = 0;
  const auto start = Clock::now();
  for (int s = 0; s < kSweeps; ++s) {
    cohort.advance_positions(s * kPeriod);
    for (const radio::Rat rat : {radio::Rat::kLte, radio::Rat::kNr}) {
      for (std::size_t u = 0; u < cohort.size(); ++u) {
        measure_cells(dep.env(), dep.carrier(rat), dep.cells(rat),
                      cohort.position(u), 0.5, scratch);
        evals += scratch.size();
        for (const ran::CellMeasurement& m : scratch) {
          checksum += m.rsrp_dbm + m.sinr_db;
        }
      }
    }
  }
  const double secs = seconds_since(start);
  return {static_cast<double>(evals) / secs, checksum};
}

// Batch path: the cohort sweep's measurement half. `evals` counts the
// same requested (ue, cell) values as the scalar loop — reused rows are
// answered, not skipped — so the two rates compare sweep throughput.
RepResult batch_rep(ran::UeCohort& cohort) {
  std::uint64_t evals = 0;
  double checksum = 0;
  const auto start = Clock::now();
  for (int s = 0; s < kSweeps; ++s) {
    cohort.advance_positions(s * kPeriod);
    for (const radio::Rat rat : {radio::Rat::kLte, radio::Rat::kNr}) {
      const ran::UeCohort::MeasBlock& block = cohort.measure_batch(rat);
      const std::size_t n = block.n_cells;
      evals += cohort.size() * n;
      for (std::size_t u = 0; u < cohort.size(); ++u) {
        for (std::size_t i = 0; i < n; ++i) {
          checksum += block.rsrp_dbm[u * n + i] + block.sinr_db[u * n + i];
        }
      }
    }
  }
  const double secs = seconds_since(start);
  return {static_cast<double>(evals) / secs, checksum};
}

}  // namespace

int main() {
  const geo::CampusMap campus =
      geo::make_city_campus(sim::Rng(42).fork("city_campus"), 1280.0, 1280.0,
                            0.35);
  const ran::Deployment dep =
      ran::make_city_deployment(&campus, sim::Rng(42).fork("city_deployment"));

  ran::CohortConfig cfg;
  cfg.name = "bench";
  ran::UeCohort cohort(&dep, cfg, sim::Rng(42).fork("cohort"));
  sim::Rng place = sim::Rng(42).fork("city_ues");
  populate(cohort, campus, place);

  std::vector<double> scalar_rate, batch_rate, speedup;
  double scalar_sum = 0, batch_sum = 0;
  for (int r = 0; r < kReps; ++r) {
    const RepResult s = scalar_rep(cohort, dep);
    scalar_rate.push_back(s.evals_per_s);
    scalar_sum = s.checksum;  // identical every rep: pure functions
    const RepResult b = batch_rep(cohort);
    batch_rate.push_back(b.evals_per_s);
    batch_sum = b.checksum;
    speedup.push_back(b.evals_per_s / s.evals_per_s);
  }

  const std::size_t cells = dep.cells(radio::Rat::kNr).size();
  std::printf(
      "{\"reps\": %d, \"ues\": %d, \"cells_per_rat\": %zu, "
      "\"sweeps_per_rep\": %d, \"scalar_evals_per_s_median\": %.0f, "
      "\"batch_evals_per_s_median\": %.0f, \"speedup_median\": %.2f, "
      "\"scalar_checksum\": %.6f, \"batch_checksum\": %.6f}\n",
      kReps, kUes, cells, kSweeps, median(scalar_rate), median(batch_rate),
      median(speedup), scalar_sum, batch_sum);
  return 0;
}

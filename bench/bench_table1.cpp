// Regenerates the paper's Table 1 (experiment id: table1_phy_info).
// Usage: bench_table1 [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("table1_phy_info", argc, argv);
}

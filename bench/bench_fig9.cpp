// Regenerates the paper's Figure 9 (experiment id: fig9_loss_vs_load).
// Usage: bench_fig9 [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("fig9_loss_vs_load", argc, argv);
}

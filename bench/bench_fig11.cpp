// Regenerates the paper's Figure 11 (experiment id: fig11_bursty_loss).
// Usage: bench_fig11 [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("fig11_bursty_loss", argc, argv);
}

// Guard-rail benchmark for the observability layer: measures raw
// Simulator::run event throughput with no tracer/metrics installed (the
// disabled path every experiment takes by default), then again with a
// MetricsRegistry scope installed (the path a profiled campaign takes).
// The disabled number is committed as BENCH_obs.json; the acceptance bar
// is <2% regression versus the baseline recorded there
// (tools/ci/check_obs_overhead.py compares, non-gating).
//
// Prints a small JSON document on stdout so the driver can diff runs:
//   {"events": ..., "reps": ..., "events_per_sec_median": ...,
//    "profiled_events_per_sec_median": ..., "profiled_overhead_pct": ...}
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include <functional>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "sim/simulator.h"

namespace {

using Clock = std::chrono::steady_clock;

// One rep: a self-rescheduling event chain plus a fan of one-shot timers,
// roughly the schedule/pop mix of a TCP experiment's hot loop. The chain
// events are labeled so the profiled variant exercises the per-label
// attribution path, not just the bare counters.
double events_per_sec(std::uint64_t chain_events) {
  fiveg::sim::Simulator simr;
  std::uint64_t fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < chain_events) {
      simr.schedule_in(fiveg::sim::kMicrosecond, "bench.chain", chain);
    }
  };
  simr.schedule_in(0, "bench.chain", chain);
  for (int i = 0; i < 1024; ++i) {
    simr.schedule_in((i + 1) * fiveg::sim::kMillisecond, [&] { ++fired; });
  }
  const auto start = Clock::now();
  simr.run();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(simr.executed_events()) / secs;
}

double median_rate(std::uint64_t chain_events, int reps) {
  std::vector<double> rates;
  rates.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) rates.push_back(events_per_sec(chain_events));
  std::sort(rates.begin(), rates.end());
  return rates[static_cast<std::size_t>(reps) / 2];
}

}  // namespace

int main() {
  constexpr std::uint64_t kEvents = 2'000'000;
  constexpr int kReps = 7;

  // Disabled path first (the BENCH_obs.json guard-rail number).
  const double disabled = median_rate(kEvents, kReps);

  // Profiled path: same workload under a metrics scope, as installed by
  // the Runner when a campaign collects metrics / writes a ledger.
  double profiled = 0;
  {
    fiveg::obs::MetricsRegistry registry;
    const fiveg::obs::ScopedObs scope(nullptr, &registry);
    profiled = median_rate(kEvents, kReps);
  }

  const double overhead_pct =
      disabled > 0 ? (disabled - profiled) / disabled * 100.0 : 0.0;
  std::printf(
      "{\"events\": %llu, \"reps\": %d, \"events_per_sec_median\": %.0f, "
      "\"profiled_events_per_sec_median\": %.0f, "
      "\"profiled_overhead_pct\": %.1f}\n",
      static_cast<unsigned long long>(kEvents), kReps, disabled, profiled,
      overhead_pct);
  return 0;
}

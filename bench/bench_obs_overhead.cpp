// Guard-rail benchmark for the observability layer: measures raw
// Simulator::run event throughput with no tracer/metrics installed (the
// disabled path every experiment takes by default). The numbers are
// committed as BENCH_obs.json; the acceptance bar is <2% regression versus
// the pre-obs baseline recorded there.
//
// Prints a small JSON document on stdout so the driver can diff runs:
//   {"events": ..., "reps": ..., "events_per_sec_median": ...}
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include <functional>

#include "sim/simulator.h"

namespace {

using Clock = std::chrono::steady_clock;

// One rep: a self-rescheduling event chain plus a fan of one-shot timers,
// roughly the schedule/pop mix of a TCP experiment's hot loop.
double events_per_sec(std::uint64_t chain_events) {
  fiveg::sim::Simulator simr;
  std::uint64_t fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < chain_events) {
      simr.schedule_in(fiveg::sim::kMicrosecond, chain);
    }
  };
  simr.schedule_in(0, chain);
  for (int i = 0; i < 1024; ++i) {
    simr.schedule_in((i + 1) * fiveg::sim::kMillisecond, [&] { ++fired; });
  }
  const auto start = Clock::now();
  simr.run();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(simr.executed_events()) / secs;
}

}  // namespace

int main() {
  constexpr std::uint64_t kEvents = 2'000'000;
  constexpr int kReps = 7;
  std::vector<double> rates;
  rates.reserve(kReps);
  for (int r = 0; r < kReps; ++r) rates.push_back(events_per_sec(kEvents));
  std::sort(rates.begin(), rates.end());
  std::printf(
      "{\"events\": %llu, \"reps\": %d, \"events_per_sec_median\": %.0f}\n",
      static_cast<unsigned long long>(kEvents), kReps, rates[kReps / 2]);
  return 0;
}

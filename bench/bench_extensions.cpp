// Runs the extension studies: the paper's discussion/future-work
// directions built out (CoDel AQM, MEC placement, deterministic-start
// transport, SA energy, indoor micro-cells, hand-off trigger tuning).
// Usage: bench_extensions [seed]
#include <cstdlib>
#include <iostream>

#include "core/experiment.h"

int main(int argc, char** argv) {
  fiveg::core::ExperimentContext ctx;
  ctx.out = &std::cout;
  if (argc > 1) ctx.seed = std::strtoull(argv[1], nullptr, 10);
  auto& registry = fiveg::core::ExperimentRegistry::instance();
  int rc = 0;
  for (const char* name :
       {"ext_codel_aqm", "ext_mec", "ext_faststart_web", "ext_sa_energy",
        "ext_indoor_microcell", "ext_ho_tuning", "ext_multipath",
        "ext_abr_video", "ext_densification", "ext_cell_load"}) {
    if (!registry.run(name, ctx)) rc = 1;
  }
  return rc;
}

// Regenerates the paper's Figure 10 (experiment id: fig10_harq_retx).
// Usage: bench_fig10 [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("fig10_harq_retx", argc, argv);
}

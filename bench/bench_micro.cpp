// Micro-benchmarks of the simulator's hot paths (google-benchmark): event
// queue churn, path-loss evaluation, cell sweeps, HARQ sampling and an
// end-to-end TCP step. These guard the experiment suite's runtime.
#include <benchmark/benchmark.h>

#include "app/iperf.h"
#include "core/scenario.h"
#include "geo/campus.h"
#include "net/path.h"
#include "radio/pathloss.h"
#include "ran/deployment.h"
#include "ran/harq.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace {

using namespace fiveg;  // NOLINT: benchmark file brevity

void BM_EventQueueChurn(benchmark::State& state) {
  sim::EventQueue q;
  sim::Time t = 0;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) q.schedule(++t, [&] { ++fired; });
  for (auto _ : state) {
    q.schedule(++t, [&] { ++fired; });
    q.pop_and_run();
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventQueueChurn);

void BM_PathLoss(benchmark::State& state) {
  double d = 10.0;
  for (auto _ : state) {
    d = d > 500 ? 10.0 : d + 1.0;
    benchmark::DoNotOptimize(radio::campus_pathloss_db(d, 3.5, false));
  }
}
BENCHMARK(BM_PathLoss);

void BM_CellSweep(benchmark::State& state) {
  const geo::CampusMap campus = geo::make_campus(sim::Rng(42));
  const ran::Deployment dep = ran::make_deployment(&campus, sim::Rng(7));
  sim::Rng rng(3);
  for (auto _ : state) {
    const geo::Point p = campus.random_point(rng);
    benchmark::DoNotOptimize(dep.measure(radio::Rat::kNr, p));
  }
}
BENCHMARK(BM_CellSweep);

void BM_HarqSample(benchmark::State& state) {
  const ran::HarqProcess harq(ran::lte_harq());
  sim::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(harq.sample_attempts(rng));
  }
}
BENCHMARK(BM_HarqSample);

void BM_TcpSimSecond(benchmark::State& state) {
  // Cost of simulating one second of a 100 Mbps TCP flow.
  for (auto _ : state) {
    sim::Simulator simr;
    std::vector<net::Link::Config> hops(2);
    hops[0].rate_bps = 100e6;
    hops[0].prop_delay = sim::from_millis(10);
    hops[1].rate_bps = 10e9;
    hops[1].prop_delay = sim::from_millis(10);
    net::PathNetwork path(&simr, hops);
    app::PathFanout fanout(&path);
    app::TcpSession session(&simr, &path, &fanout,
                            tcp::TcpConfig{.algo = tcp::CcAlgo::kBbr});
    session.sender().start_bulk();
    simr.run_until(sim::kSecond);
    benchmark::DoNotOptimize(session.receiver().bytes_received());
  }
}
BENCHMARK(BM_TcpSimSecond)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

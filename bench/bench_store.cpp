// Microbenchmarks for the fiveg-rs/v1 columnar result store: append
// throughput through StoreWriter (the per-run cost a campaign pays),
// load+merge throughput across shards (what fiveg_query pays), and the
// on-disk size of the store relative to the equivalent fiveg-runall/v4
// JSON document — the store's reason to exist. Medians are committed as
// BENCH_store.json.
//
// The workload is shaped like a real campaign record: one KPI series,
// a handful of counters/gauges and two distributions with a few hundred
// observations each, so dictionary reuse and bin-column encoding dominate
// exactly as they do in production shards.
//
// Prints one JSON document on stdout:
//   {"reps": ..., "records": ..., "write_records_per_s_median": ...,
//    "merge_records_per_s_median": ..., "store_bytes": ...,
//    "json_bytes": ..., "store_to_json_ratio": ...}
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/runner.h"
#include "core/store.h"
#include "obs/metrics.h"
#include "sim/rng.h"

namespace {

using namespace fiveg;  // NOLINT: benchmark file brevity
using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

constexpr int kReps = 5;
constexpr int kRecords = 400;
constexpr int kShards = 4;

// A record shaped like one experiment run of a figure sweep.
core::StoreRecord make_record(int i) {
  core::StoreRecord rec;
  rec.result.name = "fig" + std::to_string(i % 23) + "_bench";
  rec.result.seed = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(i + 1);
  rec.result.status = core::RunStatus::kOk;
  rec.result.paper_ref = "Figure " + std::to_string(i % 23);
  rec.result.description = "store benchmark synthetic run";
  rec.result.text = "== fig" + std::to_string(i % 23) + " ==\nrow\n";
  sim::Rng rng(rec.result.seed);
  core::MetricSeries series;
  series.name = "tput_mbps";
  series.unit = "Mbps";
  for (int p = 0; p < 16; ++p) {
    series.points.push_back(
        {static_cast<double>(p), rng.uniform(0.0, 1200.0)});
  }
  rec.result.metrics.push_back(std::move(series));
  obs::MetricsRegistry reg;
  reg.counter("sim.events").add(rng.uniform_int(1000, 100000));
  reg.counter("pkts.delivered").add(rng.uniform_int(100, 10000));
  reg.counter("pkts.dropped").add(rng.uniform_int(0, 50));
  reg.gauge("queue_depth_hwm").set(static_cast<double>(
      rng.uniform_int(1, 64)));
  for (int s = 0; s < 400; ++s) {
    reg.histogram("lat_us").observe(rng.lognormal(4.0, 1.2));
    reg.digest("owd_ms").observe(rng.normal(25.0, 8.0));
    reg.digest("tput_mbps").observe(rng.lognormal(3.0, 0.8));
  }
  rec.result.counters = reg.snapshot(obs::MetricClock::kSim);
  rec.labels = {{"faults", ""},
                {"qdisc", (i % 2) != 0 ? "codel" : "droptail"}};
  return rec;
}

}  // namespace

int main() {
  const fs::path dir =
      fs::temp_directory_path() / "fiveg_bench_store";
  fs::remove_all(dir);
  fs::create_directories(dir);

  std::vector<core::StoreRecord> records;
  records.reserve(kRecords);
  for (int i = 0; i < kRecords; ++i) records.push_back(make_record(i));

  // The JSON the same results would occupy in a fiveg-runall/v4 document.
  core::RunSummary summary;
  for (const core::StoreRecord& rec : records) {
    summary.results.push_back(rec.result);
  }
  std::ostringstream json;
  core::write_json(summary, json, /*include_timing=*/false);
  const std::size_t json_bytes = json.str().size();

  std::vector<double> write_rps;
  std::vector<double> merge_rps;
  std::size_t store_bytes = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const fs::path rep_dir = dir / ("rep" + std::to_string(rep));
    fs::create_directories(rep_dir);
    const auto wstart = Clock::now();
    {
      std::vector<std::unique_ptr<core::StoreWriter>> writers;
      for (int s = 0; s < kShards; ++s) {
        writers.push_back(std::make_unique<core::StoreWriter>(
            (rep_dir / ("shard-" + std::to_string(s) + "-of-" +
                        std::to_string(kShards) + ".fgrs"))
                .string()));
      }
      for (int i = 0; i < kRecords; ++i) {
        if (!writers[i % kShards]->append(records[i])) return 1;
      }
    }
    write_rps.push_back(kRecords / seconds_since(wstart));

    const auto mstart = Clock::now();
    core::StoreDirLoad load = core::load_store_dir(rep_dir.string());
    if (!load.ok() || load.records.size() != kRecords) return 1;
    const std::vector<core::StoreRecord> view =
        core::canonical_view(std::move(load.records));
    if (view.size() != kRecords) return 1;
    merge_rps.push_back(kRecords / seconds_since(mstart));

    if (rep == 0) {
      for (const auto& entry : fs::directory_iterator(rep_dir)) {
        store_bytes += fs::file_size(entry.path());
      }
    }
  }
  fs::remove_all(dir);

  std::printf(
      "{\"reps\": %d, \"records\": %d, "
      "\"write_records_per_s_median\": %.0f, "
      "\"merge_records_per_s_median\": %.0f, \"store_bytes\": %zu, "
      "\"json_bytes\": %zu, \"store_to_json_ratio\": %.4f}\n",
      kReps, kRecords, median(write_rps), median(merge_rps), store_bytes,
      json_bytes, static_cast<double>(store_bytes) /
                      static_cast<double>(json_bytes));
  return 0;
}

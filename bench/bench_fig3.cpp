// Regenerates the paper's Figure 3 (experiment id: fig3_indoor_outdoor).
// Usage: bench_fig3 [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("fig3_indoor_outdoor", argc, argv);
}

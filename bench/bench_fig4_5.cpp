// Regenerates the paper's Figures 4 and 5 (experiment id: fig4_5_ho_quality).
// Usage: bench_fig4_5 [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("fig4_5_ho_quality", argc, argv);
}

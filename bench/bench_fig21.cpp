// Regenerates the paper's Figure 21 (experiment id: fig21_energy_apps).
// Usage: bench_fig21 [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("fig21_energy_apps", argc, argv);
}

// Regenerates the paper's Figure 8 (experiment id: fig8_cwnd).
// Usage: bench_fig8 [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("fig8_cwnd", argc, argv);
}

// Parallel event-core benchmark guarding sim::ParSim's lock-step window
// scheduler: a 4-district partitioned city (2.5k UEs per district on the
// 19-site hex grid — the city_grid_10k population split across lanes),
// swept for 10 sample periods. The serial side runs the identical ParSim
// window schedule inline (threads = 1); the parallel side runs it across
// hardware_concurrency workers. Determinism is the contract: both sides
// print a checksum summed in district-index order over every final
// (ue, cell) rsrp/sinr value plus the cohort stat totals, and the two
// checksums must be bit-identical — the thread count may only change
// wall-clock, never one bit of simulation state.
//
// Prints one JSON document on stdout:
//   {"reps": ..., "districts": ..., "ues": ..., "sweeps_per_rep": ...,
//    "hardware_concurrency": ..., "parallel_threads": ...,
//    "serial_events_per_s_median": ..., "parallel_events_per_s_median":
//    ..., "speedup_median": ..., "serial_checksum": ...,
//    "parallel_checksum": ...}
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.h"
#include "geo/route.h"
#include "ran/ue_cohort.h"
#include "sim/parsim.h"
#include "sim/rng.h"

namespace {

using namespace fiveg;  // NOLINT: benchmark file brevity
using Clock = std::chrono::steady_clock;

constexpr int kReps = 5;
constexpr int kDistricts = 4;
constexpr int kUesPerDistrict = 2500;
constexpr sim::Time kDuration = 2 * sim::kSecond;  // 10 sweeps at 200 ms

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct District {
  std::unique_ptr<core::CityScenario> sc;
  std::unique_ptr<ran::UeCohort> cohort;
};

struct RepResult {
  double events_per_s = 0;
  double checksum = 0;
};

// One full partitioned-city run at the given worker count. Construction
// is outside the timed region; the measured rate is the event core alone.
RepResult run_rep(int threads) {
  core::PartitionedCityConfig part;
  part.districts = kDistricts;

  sim::ParSimConfig cfg;
  cfg.lanes = part.districts;
  cfg.threads = threads;
  cfg.lookahead = core::city_partition_lookahead(part);
  sim::ParSim par(cfg);

  std::vector<District> districts(static_cast<std::size_t>(part.districts));
  for (int k = 0; k < part.districts; ++k) {
    par.with_lane(k, [&, k] {
      District& d = districts[static_cast<std::size_t>(k)];
      const std::string tag = "district" + std::to_string(k);
      d.sc = std::make_unique<core::CityScenario>(
          sim::Rng(42).fork(tag).seed(), part.district);
      ran::CohortConfig ccfg;
      ccfg.name = "bench.d" + std::to_string(k);
      ccfg.domain = k;
      d.cohort = std::make_unique<ran::UeCohort>(
          &d.sc->deployment(), ccfg, sim::Rng(42).fork(tag + ".cohort"));
      sim::Rng place = sim::Rng(42).fork(tag + ".ues");
      const int n_walk = kUesPerDistrict * 35 / 1000;
      const int n_drive = kUesPerDistrict * 15 / 1000;
      for (int i = 0; i < n_walk; ++i) {
        d.cohort->add_route(geo::make_waypoint_route(d.sc->campus(), place, 6),
                            1.4);
      }
      for (int i = 0; i < n_drive; ++i) {
        d.cohort->add_route(geo::make_waypoint_route(d.sc->campus(), place, 4),
                            11.0);
      }
      for (int i = n_walk + n_drive; i < kUesPerDistrict; ++i) {
        d.cohort->add_stationary(d.sc->campus().random_point(place));
      }
      d.cohort->start(&par.lane(k), kDuration);
    });
  }

  const auto start = Clock::now();
  par.run_until(kDuration);
  const double secs = seconds_since(start);
  par.finish();

  double checksum = 0;
  for (const District& d : districts) {
    const ran::UeCohort& cohort = *d.cohort;
    const ran::UeCohort::Stats& st = cohort.stats();
    checksum += static_cast<double>(st.sweeps) +
                static_cast<double>(st.handoffs) * 1e3 +
                static_cast<double>(st.a3_triggers) * 1e6;
    for (const radio::Rat rat : {radio::Rat::kLte, radio::Rat::kNr}) {
      const auto& block = cohort.block(rat);
      const std::size_t n =
          d.sc->deployment().cells(rat).size() * cohort.size();
      for (std::size_t i = 0; i < n; ++i) {
        checksum += block.rsrp_dbm[i] + block.sinr_db[i];
      }
    }
  }
  return {static_cast<double>(par.executed_events()) / secs, checksum};
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  // One worker per lane, regardless of the host (mirroring an explicit
  // --sim-threads value): on a small host this honestly measures the
  // pool + barrier overhead instead of silently falling back to the
  // inline schedule. hardware_concurrency is reported alongside so the
  // recorded speedup can be read in context.
  const int par_threads = kDistricts;

  std::vector<double> serial_rate, parallel_rate, speedup;
  double serial_sum = 0, parallel_sum = 0;
  for (int r = 0; r < kReps; ++r) {
    const RepResult s = run_rep(1);
    serial_rate.push_back(s.events_per_s);
    serial_sum = s.checksum;  // identical every rep: pure functions
    const RepResult p = run_rep(par_threads);
    parallel_rate.push_back(p.events_per_s);
    parallel_sum = p.checksum;
    speedup.push_back(p.events_per_s / s.events_per_s);
  }

  std::printf(
      "{\"reps\": %d, \"districts\": %d, \"ues\": %d, "
      "\"sweeps_per_rep\": %d, \"hardware_concurrency\": %u, "
      "\"parallel_threads\": %d, "
      "\"serial_events_per_s_median\": %.0f, "
      "\"parallel_events_per_s_median\": %.0f, "
      "\"speedup_median\": %.2f, "
      "\"serial_checksum\": %.6f, \"parallel_checksum\": %.6f}\n",
      kReps, kDistricts, kDistricts * kUesPerDistrict,
      static_cast<int>(kDuration / sim::from_millis(200)), hw, par_threads,
      median(serial_rate), median(parallel_rate), median(speedup), serial_sum,
      parallel_sum);
  return serial_sum == parallel_sum ? 0 : 1;
}

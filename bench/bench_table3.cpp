// Regenerates the paper's Table 3 (experiment id: table3_buffer_sizing).
// Usage: bench_table3 [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("table3_buffer_sizing", argc, argv);
}

// Regenerates the paper's Figure 14 (experiment id: fig14_hop_breakdown).
// Usage: bench_fig14 [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("fig14_hop_breakdown", argc, argv);
}

// Regenerates the paper's Table 2 (experiment id: table2_rsrp_distribution).
// Usage: bench_table2 [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("table2_rsrp_distribution", argc, argv);
}

// Regenerates the paper's Figure 12 (experiment id: fig12_ho_throughput).
// Usage: bench_fig12 [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("fig12_ho_throughput", argc, argv);
}

// Regenerates the paper's Section 8 DSL comparison (experiment id: dsl_replacement).
// Usage: bench_dsl [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("dsl_replacement", argc, argv);
}

// Regenerates the paper's Figures 16 and 17 (experiment id: fig16_17_web).
// Usage: bench_fig16_17 [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("fig16_17_web", argc, argv);
}

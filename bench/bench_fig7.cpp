// Regenerates the paper's Figure 7 (experiment id: fig7_throughput).
// Usage: bench_fig7 [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("fig7_throughput", argc, argv);
}

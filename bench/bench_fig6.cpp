// Regenerates the paper's Figure 6 (experiment id: fig6_ho_latency).
// Usage: bench_fig6 [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("fig6_ho_latency", argc, argv);
}

// Runs the ablation studies of DESIGN.md Sec. 4: wireline buffer sizing,
// NSA-vs-SA hand-off signalling, DRX tail length, and congestion-control
// robustness under ambient burst loss.
// Usage: bench_ablation [seed]
#include <cstdlib>
#include <iostream>

#include "core/experiment.h"

int main(int argc, char** argv) {
  fiveg::core::ExperimentContext ctx;
  ctx.out = &std::cout;
  if (argc > 1) ctx.seed = std::strtoull(argv[1], nullptr, 10);
  auto& registry = fiveg::core::ExperimentRegistry::instance();
  int rc = 0;
  for (const char* name :
       {"ablation_buffer_sizing", "ablation_sa_handoff",
        "ablation_tail_timer", "ablation_cc_robustness"}) {
    if (!registry.run(name, ctx)) rc = 1;
  }
  return rc;
}

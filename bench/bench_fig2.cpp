// Regenerates the paper's Figure 2 (experiment id: fig2_coverage_map).
// Usage: bench_fig2 [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("fig2_coverage_map", argc, argv);
}

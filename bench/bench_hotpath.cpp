// Hot-path microbenchmarks guarding the three paths every figure sweep
// leans on: campus geometry queries (LoS / penetration / indoor / O2I),
// full-interference SINR sweeps over the deployment, and event-queue churn
// with cancellations. Medians are committed as BENCH_hotpath.json with
// before/after numbers for the spatial-index + link-budget-memo + event-core
// overhaul.
//
// Every radio/geometry benchmark also prints a checksum over the computed
// values: the optimizations are exact (indexing and memoization, no
// fast-math), so the checksums must be bit-identical across the rewrite —
// a cheap exactness probe on top of the golden-based drift detector.
//
// Prints one JSON document on stdout:
//   {"reps": ..., "geometry_qps_median": ..., "geometry_checksum": ...,
//    "sinr_sweep_qps_median": ..., "sinr_checksum": ...,
//    "event_churn_eps_median": ...}
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <vector>

#include "geo/campus.h"
#include "geo/geometry.h"
#include "ran/cell.h"
#include "ran/deployment.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace {

using namespace fiveg;  // NOLINT: benchmark file brevity
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct GeoResult {
  double qps = 0;
  double checksum = 0;
};

// One rep: a geometry workload shaped like the product's coverage sweep.
// One coverage-grid worth of UE points (the Fig.2 sweep is 50x46 = 2300);
// per point the sweep asks indoor/O2I (both carrier bands, like the
// LTE-1.8 + NR-3.5 link budgets) and LoS toward every *sector*. Sectors
// are co-sited three to a mast, exactly as in the deployment (34 LTE
// sectors on 13 masts), so most LoS queries repeat a mast->UE segment the
// sweep just answered. One penetration query per point keeps that API in
// the checksum. Eight passes model the several KPI sweeps per figure.
GeoResult geometry_rep(const geo::CampusMap& campus) {
  sim::Rng rng(1234);
  std::vector<geo::Point> masts;
  for (int i = 0; i < 8; ++i) masts.push_back(campus.random_point(rng));
  std::vector<geo::Point> sectors;  // 3 co-sited sectors per mast
  for (const geo::Point& m : masts) {
    for (int s = 0; s < 3; ++s) sectors.push_back(m);
  }
  std::vector<geo::Point> points;
  points.reserve(2300);
  for (int i = 0; i < 2300; ++i) points.push_back(campus.random_point(rng));

  std::uint64_t queries = 0;
  double checksum = 0;
  const auto start = Clock::now();
  for (int pass = 0; pass < 8; ++pass) {
    for (const geo::Point& p : points) {
      checksum += campus.is_indoor(p) ? 1.0 : 0.0;
      checksum += campus.o2i_loss_db(p, 1.8);
      checksum += campus.o2i_loss_db(p, 3.5);
      queries += 3;
      for (const geo::Point& o : sectors) {
        checksum += campus.has_los({o, p}) ? 1.0 : 0.0;
        ++queries;
      }
      checksum += campus.penetration_db({masts.front(), p}, 3.5);
      ++queries;
    }
  }
  const double secs = seconds_since(start);
  return {static_cast<double>(queries) / secs, checksum};
}

// One rep: the Fig.2-style grid sweep, both RATs, revisiting the same grid
// twice (coverage experiments evaluate several KPIs per location).
GeoResult sinr_rep(const geo::CampusMap& campus, const ran::Deployment& dep) {
  const geo::Rect& b = campus.bounds();
  const int cols = 50, rows = 46;
  std::uint64_t cell_evals = 0;
  double checksum = 0;
  const auto start = Clock::now();
  for (int pass = 0; pass < 2; ++pass) {
    for (const radio::Rat rat : {radio::Rat::kLte, radio::Rat::kNr}) {
      const auto& cells = dep.cells(rat);
      for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
          const geo::Point p{b.min.x + (c + 0.5) * b.width() / cols,
                             b.min.y + (r + 0.5) * b.height() / rows};
          const auto ms =
              ran::measure_cells(dep.env(), dep.carrier(rat), cells, p);
          cell_evals += ms.size();
          checksum += ms.front().sinr_db + ms.back().rsrp_dbm;
        }
      }
    }
  }
  const double secs = seconds_since(start);
  return {static_cast<double>(cell_evals) / secs, checksum};
}

// One rep: protocol-timer churn — every fired event schedules a successor
// and two guard timers; one guard is cancelled while pending (the usual
// timer race) and one after it already fired (the DRX/HARQ/RTO pattern that
// leaked per-id state in the lazy-cancellation design).
double event_churn_rep(std::uint64_t target_events) {
  sim::EventQueue q;
  sim::Time t = 0;
  std::uint64_t fired = 0;
  sim::EventId last_fired = 0;
  std::function<void()> tick = [&] { ++fired; };
  for (int i = 0; i < 512; ++i) q.schedule(++t, tick);
  const auto start = Clock::now();
  while (fired < target_events) {
    const sim::EventId pending = q.schedule(t + 100, tick);
    q.schedule(++t, tick);
    q.cancel(pending);     // cancel while pending
    q.cancel(last_fired);  // cancel an id that already fired
    last_fired = q.schedule(++t, tick);
    q.pop_and_run();
    q.pop_and_run();
  }
  const double secs = seconds_since(start);
  return static_cast<double>(fired) / secs;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main() {
  constexpr int kReps = 5;
  const geo::CampusMap campus = geo::make_campus(sim::Rng(42));
  const ran::Deployment dep = ran::make_deployment(&campus, sim::Rng(7));

  std::vector<double> geo_qps, sinr_qps, churn_eps;
  double geo_sum = 0, sinr_sum = 0;
  for (int r = 0; r < kReps; ++r) {
    const GeoResult g = geometry_rep(campus);
    geo_qps.push_back(g.qps);
    geo_sum = g.checksum;  // identical every rep: pure functions, fixed seed
    const GeoResult s = sinr_rep(campus, dep);
    sinr_qps.push_back(s.qps);
    sinr_sum = s.checksum;
    churn_eps.push_back(event_churn_rep(400'000));
  }

  std::printf(
      "{\"reps\": %d, \"geometry_qps_median\": %.0f, "
      "\"geometry_checksum\": %.6f, \"sinr_sweep_qps_median\": %.0f, "
      "\"sinr_checksum\": %.6f, \"event_churn_eps_median\": %.0f}\n",
      kReps, median(geo_qps), geo_sum, median(sinr_qps), sinr_sum,
      median(churn_eps));
  return 0;
}

// Regenerates the paper's Figure 20 (experiment id: fig20_frame_delay).
// Usage: bench_fig20 [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("fig20_frame_delay", argc, argv);
}

// Regenerates the measurement-report event mix of Sec. 3.4 / Table 5
// (experiment id: ho_event_mix).
// Usage: bench_event_mix [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("ho_event_mix", argc, argv);
}

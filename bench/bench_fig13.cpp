// Regenerates the paper's Figure 13 (experiment id: fig13_rtt_scatter).
// Usage: bench_fig13 [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("fig13_rtt_scatter", argc, argv);
}

// Regenerates the paper's Table 4 (experiment id: table4_power_policies).
// Usage: bench_table4 [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("table4_power_policies", argc, argv);
}

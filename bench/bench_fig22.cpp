// Regenerates the paper's Figure 22 (experiment id: fig22_energy_per_bit).
// Usage: bench_fig22 [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("fig22_energy_per_bit", argc, argv);
}

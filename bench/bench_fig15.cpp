// Regenerates the paper's Figure 15 (experiment id: fig15_rtt_distance).
// Usage: bench_fig15 [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("fig15_rtt_distance", argc, argv);
}

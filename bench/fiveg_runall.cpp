// The one entry point CI and humans share: runs the whole experiment
// registry (or a filtered/smoke subset) across a thread pool and emits the
// text tables on stdout plus an optional machine-readable JSON document.
//
// stdout is byte-identical for any --jobs value at the same seed; timing
// goes to stderr.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "core/ledger.h"
#include "core/runner.h"
#include "core/scenario.h"
#include "fault/fault.h"
#include "net/aqm.h"

namespace {

constexpr const char* kUsage = R"(usage: fiveg_runall [options]

Runs the full experiment registry (every reproduced table/figure) across a
thread pool. Output on stdout is byte-identical for any --jobs value at the
same seed; per-experiment timing is printed to stderr.

options:
  --jobs N      worker threads (default: hardware concurrency; 1 = serial)
  --seed N      base seed; every experiment runs on its own fork (default 42)
  --filter S    only experiments whose name contains the substring S
  --smoke       only the fast smoke-tier experiments (CI per-commit tier)
  --timeout S   per-experiment wall-clock cap in seconds, 0 = off
                (default 600); a hung experiment is reported, not fatal
  --json PATH   also write machine-readable results to PATH ('-' = stdout,
                which suppresses the text tables)
  --trace PATH  write a merged Chrome trace_event JSON document to PATH
                (load in chrome://tracing or ui.perfetto.dev); one process
                per experiment, one thread per layer (sim/ran/tcp/net/energy)
  --trace-capacity N
                per-experiment trace ring capacity in events
                (default 262144; oldest events drop first)
  --faults PATH run every experiment under the fault plan at PATH (JSON,
                schema "fiveg-faults/v1"); deterministic per-experiment
                fault seeds, byte-identical at any --jobs
  --qdisc SPEC  queue discipline at every testbed's wireline bottleneck:
                droptail (default), codel, fq_codel or red, with an
                optional +ecn suffix (e.g. codel+ecn). Experiments that
                pin their own qdisc (the AQM sweeps) are unaffected.
  --ledger PATH append one fiveg-ledger/v1 JSONL record per completed run
                (crash-safe; feeds --resume and tools/fiveg_prof)
  --resume PATH reload the ledger at PATH, skip every run it already has at
                the current seed, and keep appending to it; the merged
                output is byte-identical to an uninterrupted campaign.
                Incompatible with --trace (ledgers carry no event traces)
  --progress    heartbeat line on stderr every few seconds with
                done/failed/running counts and an ETA from ledger history
  --progress-period S
                heartbeat period in seconds (default 2)
  --metrics     print each experiment's counters/profile to stderr
  --no-timing   omit wall-clock fields from the JSON and the trace
                (byte-stable output)
  --quiet       suppress the text tables on stdout
  --list        list the selected experiment names and exit
  -h, --help    this message
)";

bool parse_u64(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(s, &end, 10);
  return end != s && *end == '\0';
}

bool parse_int(const char* s, int* out) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  *out = static_cast<int>(v);
  return end != s && *end == '\0';
}

bool parse_double(const char* s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s, &end);
  return end != s && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  fiveg::core::RunnerOptions opt;
  opt.jobs = 0;  // hardware concurrency
  opt.timeout_s = 600;
  std::string json_path;
  std::string trace_path;
  std::string resume_path;
  bool print_metrics = false;
  bool include_timing = true;
  bool quiet = false;
  bool list_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--jobs") {
      if (!parse_int(need_value(), &opt.jobs)) {
        std::cerr << "bad --jobs value\n";
        return 2;
      }
    } else if (arg == "--seed") {
      std::uint64_t seed = 0;
      if (!parse_u64(need_value(), &seed)) {
        std::cerr << "bad --seed value\n";
        return 2;
      }
      opt.seed = seed;
    } else if (arg == "--filter") {
      opt.filter = need_value();
    } else if (arg == "--smoke") {
      opt.smoke_only = true;
    } else if (arg == "--timeout") {
      if (!parse_double(need_value(), &opt.timeout_s) || opt.timeout_s < 0) {
        std::cerr << "bad --timeout value\n";
        return 2;
      }
    } else if (arg == "--json") {
      json_path = need_value();
    } else if (arg == "--trace") {
      trace_path = need_value();
      opt.trace = true;
    } else if (arg == "--trace-capacity") {
      std::uint64_t cap = 0;
      if (!parse_u64(need_value(), &cap) || cap == 0) {
        std::cerr << "bad --trace-capacity value\n";
        return 2;
      }
      opt.trace_capacity = static_cast<std::size_t>(cap);
    } else if (arg == "--faults") {
      const char* path = need_value();
      try {
        opt.faults = std::make_shared<fiveg::fault::FaultPlan>(
            fiveg::fault::FaultPlan::load(path));
      } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
      }
    } else if (arg == "--qdisc") {
      fiveg::net::QdiscConfig qdisc;
      const char* spec = need_value();
      if (!fiveg::net::parse_qdisc_spec(spec, &qdisc)) {
        std::cerr << "bad --qdisc value: " << spec
                  << " (want droptail|codel|fq_codel|red, optionally +ecn)\n";
        return 2;
      }
      fiveg::core::set_campaign_bottleneck_qdisc(qdisc);
    } else if (arg == "--ledger") {
      opt.ledger_path = need_value();
    } else if (arg == "--resume") {
      resume_path = need_value();
    } else if (arg == "--progress") {
      opt.progress = true;
    } else if (arg == "--progress-period") {
      if (!parse_double(need_value(), &opt.progress_period_s) ||
          opt.progress_period_s <= 0) {
        std::cerr << "bad --progress-period value\n";
        return 2;
      }
    } else if (arg == "--metrics") {
      print_metrics = true;
    } else if (arg == "--no-timing") {
      include_timing = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n" << kUsage;
      return 2;
    }
  }

  if (!resume_path.empty()) {
    if (opt.trace) {
      // Ledger records carry the full result but not the event trace, so a
      // resumed campaign cannot reconstruct a complete merged trace.
      std::cerr << "--resume cannot be combined with --trace\n";
      return 2;
    }
    const fiveg::core::LedgerLoad load =
        fiveg::core::load_ledger(resume_path);
    if (!load.ok()) {
      std::cerr << load.error << "\n";
      return 2;
    }
    if (load.dropped_lines > 0 || load.corrupt_records > 0 ||
        load.truncated_tail) {
      std::cerr << "fiveg_runall: ledger " << resume_path << ": skipped "
                << load.dropped_lines << " unparseable line(s), "
                << load.corrupt_records << " corrupt record(s)"
                << (load.truncated_tail ? ", torn final line" : "")
                << "; those runs will re-run\n";
    }
    auto completed = std::make_shared<
        const std::map<std::string, fiveg::core::ExperimentResult>>(
        fiveg::core::completed_runs(load, opt.seed));
    std::cerr << "fiveg_runall: resuming from " << resume_path << ": "
              << completed->size() << " run(s) already complete\n";
    opt.resume = std::move(completed);
    // Keep appending to the same ledger so a second interruption resumes
    // from the union.
    if (opt.ledger_path.empty()) opt.ledger_path = resume_path;
  }

  const fiveg::core::Runner runner(opt);
  if (list_only) {
    for (const std::string& name : runner.selected()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  if (runner.selected().empty()) {
    std::cerr << "no experiments match\n";
    return 2;
  }

  const fiveg::core::RunSummary summary = runner.run();

  if (json_path == "-") {
    fiveg::core::write_json(summary, std::cout, include_timing);
  } else {
    if (!json_path.empty()) {
      std::ofstream f(json_path);
      if (!f) {
        std::cerr << "cannot open " << json_path << " for writing\n";
        return 2;
      }
      fiveg::core::write_json(summary, f, include_timing);
    }
    if (!quiet) fiveg::core::write_text(summary, std::cout);
  }
  if (!trace_path.empty()) {
    std::ofstream f(trace_path);
    if (!f) {
      std::cerr << "cannot open " << trace_path << " for writing\n";
      return 2;
    }
    fiveg::core::write_chrome_trace(summary, f, include_timing);
  }
  if (print_metrics) {
    fiveg::core::write_metrics(summary, std::cerr, include_timing);
  }
  fiveg::core::write_timing(summary, std::cerr);
  return summary.all_ok() ? 0 : 1;
}

// The one entry point CI and humans share: runs the whole experiment
// registry (or a filtered/smoke subset) across a thread pool and emits the
// text tables on stdout plus an optional machine-readable JSON document.
//
// stdout is byte-identical for any --jobs value at the same seed; timing
// goes to stderr.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/campaign.h"
#include "core/ledger.h"
#include "core/runner.h"
#include "core/scenario.h"
#include "core/store.h"
#include "fault/fault.h"
#include "net/aqm.h"

namespace {

constexpr const char* kUsage = R"(usage: fiveg_runall [options]

Runs the full experiment registry (every reproduced table/figure) across a
thread pool. Output on stdout is byte-identical for any --jobs value at the
same seed; per-experiment timing is printed to stderr.

options:
  --jobs N      worker threads (default: hardware concurrency; 1 = serial)
  --sim-threads N
                intra-experiment lane workers for the parallel event core
                (sim::ParSim); 1 = serial core (default), 0 = auto
                (hardware concurrency split across --jobs). Output is
                byte-identical for every value
  --seed N      base seed; every experiment runs on its own fork (default 42)
  --filter S    only experiments whose name contains the substring S
  --smoke       only the fast smoke-tier experiments (CI per-commit tier)
  --timeout S   per-experiment wall-clock cap in seconds, 0 = off
                (default 600); a hung experiment is reported, not fatal
  --json PATH   also write machine-readable results to PATH ('-' = stdout,
                which suppresses the text tables)
  --trace PATH  write a merged Chrome trace_event JSON document to PATH
                (load in chrome://tracing or ui.perfetto.dev); one process
                per experiment, one thread per layer (sim/ran/tcp/net/energy)
  --trace-capacity N
                per-experiment trace ring capacity in events
                (default 262144; oldest events drop first)
  --faults PATH run every experiment under the fault plan at PATH (JSON,
                schema "fiveg-faults/v1"); deterministic per-experiment
                fault seeds, byte-identical at any --jobs
  --qdisc SPEC  queue discipline at every testbed's wireline bottleneck:
                droptail (default), codel, fq_codel or red, with an
                optional +ecn suffix (e.g. codel+ecn). Experiments that
                pin their own qdisc (the AQM sweeps) are unaffected.
  --ledger PATH append one fiveg-ledger/v1 JSONL record per completed run
                (crash-safe; feeds --resume and tools/fiveg_prof)
  --resume PATH reload the ledger at PATH, skip every run it already has at
                the current seed, and keep appending to it; the merged
                output is byte-identical to an uninterrupted campaign.
                Incompatible with --trace (ledgers carry no event traces)
  --progress    heartbeat line on stderr every few seconds with
                done/failed/running counts and an ETA from ledger history
  --progress-period S
                heartbeat period in seconds (default 2)
  --store DIR   append one fiveg-rs/v1 columnar record per completed run to
                DIR/shard-<k>-of-<n>.fgrs (compact binary; merge and query
                with tools/fiveg_query). Composes with --ledger/--resume:
                resumed runs backfill their store records idempotently
  --manifest PATH
                run the fiveg-campaign/v1 parameter grid at PATH (seeds x
                qdisc x fault plans), cells sequentially at their own
                derived seeds. The manifest supplies seed/filter/smoke;
                incompatible with --seed/--filter/--smoke/--json/--trace
                (export merged JSON with fiveg_query instead)
  --shard K/N   run only this invocation's share of the campaign: work
                unit i (cell-major, experiment-name order) belongs to
                shard K iff i mod N == K. The union of shards 0..N-1 is
                exactly the full campaign (default 0/1)
  --metrics     print each experiment's counters/profile to stderr
  --no-timing   omit wall-clock fields from the JSON and the trace
                (byte-stable output)
  --quiet       suppress the text tables on stdout
  --list        list the selected experiment names and exit
  -h, --help    this message
)";

bool parse_u64(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(s, &end, 10);
  return end != s && *end == '\0';
}

bool parse_int(const char* s, int* out) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  *out = static_cast<int>(v);
  return end != s && *end == '\0';
}

bool parse_double(const char* s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s, &end);
  return end != s && *end == '\0';
}

// Opens (creating the directory if needed) this invocation's shard file
// inside the store directory. Null on failure, with the error printed.
std::shared_ptr<fiveg::core::StoreWriter> open_store(
    const std::string& store_dir, std::size_t shard_k, std::size_t shard_n) {
  std::error_code ec;
  std::filesystem::create_directories(store_dir, ec);
  if (ec) {
    std::cerr << "cannot create store directory " << store_dir << ": "
              << ec.message() << "\n";
    return nullptr;
  }
  std::string path = store_dir;
  path += "/shard-";
  path += std::to_string(shard_k);
  path += "-of-";
  path += std::to_string(shard_n);
  path += fiveg::core::kStoreFileSuffix;
  auto store = std::make_shared<fiveg::core::StoreWriter>(path);
  if (!store->ok()) {
    std::cerr << store->error() << "\n";
    return nullptr;
  }
  return store;
}

// Manifest mode: expand the parameter grid, take this shard's units, and
// run cell by cell (sequentially — the qdisc default and fault plan are
// campaign-wide globals within one cell). Cells share one ledger and one
// store shard file; each runs at its own derived base seed, so resume
// records never cross cells.
int run_manifest(const std::string& manifest_path,
                 const fiveg::core::RunnerOptions& base_opt,
                 const std::string& resume_path, const std::string& store_dir,
                 std::size_t shard_k, std::size_t shard_n, bool quiet,
                 bool print_metrics, bool include_timing, bool list_only) {
  fiveg::core::CampaignManifest manifest;
  std::string error;
  if (!fiveg::core::load_manifest(manifest_path, &manifest, &error)) {
    std::cerr << error << "\n";
    return 2;
  }
  const std::vector<fiveg::core::CampaignCell> cells = manifest.cells();

  // Experiment selection is cell-independent: the manifest's filter/smoke
  // applied to the registry.
  fiveg::core::RunnerOptions probe;
  probe.filter = manifest.filter;
  probe.smoke_only = manifest.smoke;
  const std::vector<std::string> names =
      fiveg::core::Runner(probe).selected();
  if (names.empty()) {
    std::cerr << "no experiments match the manifest selection\n";
    return 2;
  }
  const std::vector<fiveg::core::CampaignUnit> mine = fiveg::core::shard_units(
      fiveg::core::campaign_units(cells.size(), names), shard_k, shard_n);

  if (list_only) {
    for (const fiveg::core::CampaignUnit& u : mine) {
      std::cout << "seed=" << cells[u.cell].axis_seed << ";"
                << cells[u.cell].tag() << " " << u.experiment << "\n";
    }
    return 0;
  }
  if (mine.empty()) {
    std::cerr << "fiveg_runall: shard " << shard_k << "/" << shard_n
              << " has no work units\n";
    return 0;
  }

  std::vector<std::vector<std::string>> per_cell(cells.size());
  for (const fiveg::core::CampaignUnit& u : mine) {
    per_cell[u.cell].push_back(u.experiment);
  }

  fiveg::core::RunnerOptions base = base_opt;
  std::unique_ptr<fiveg::core::LedgerLoad> resume_load;
  if (!resume_path.empty()) {
    fiveg::core::LedgerLoad load = fiveg::core::load_ledger(resume_path);
    if (!load.ok()) {
      std::cerr << load.error << "\n";
      return 2;
    }
    if (load.dropped_lines > 0 || load.corrupt_records > 0 ||
        load.truncated_tail) {
      std::cerr << "fiveg_runall: ledger " << resume_path << ": skipped "
                << load.dropped_lines << " unparseable line(s), "
                << load.corrupt_records << " corrupt record(s)"
                << (load.truncated_tail ? ", torn final line" : "")
                << "; those runs will re-run\n";
    }
    resume_load =
        std::make_unique<fiveg::core::LedgerLoad>(std::move(load));
    if (base.ledger_path.empty()) base.ledger_path = resume_path;
  }

  if (!store_dir.empty()) {
    base.store = open_store(store_dir, shard_k, shard_n);
    if (base.store == nullptr) return 2;
  }

  fiveg::core::RunSummary merged;
  bool all_ok = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (per_cell[i].empty()) continue;
    const fiveg::core::CampaignCell& cell = cells[i];
    fiveg::core::RunnerOptions opt = base;
    opt.seed = cell.base_seed();
    opt.only_names = per_cell[i];
    opt.filter.clear();
    opt.smoke_only = false;
    opt.store_labels = cell.labels();
    if (!cell.faults.empty()) {
      try {
        opt.faults = std::make_shared<fiveg::fault::FaultPlan>(
            fiveg::fault::FaultPlan::load(cell.faults));
      } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
      }
    }
    fiveg::net::QdiscConfig qdisc;
    if (!fiveg::net::parse_qdisc_spec(cell.qdisc, &qdisc)) {
      std::cerr << "bad qdisc spec in manifest: " << cell.qdisc << "\n";
      return 2;
    }
    fiveg::core::set_campaign_bottleneck_qdisc(qdisc);
    if (resume_load != nullptr) {
      opt.resume = std::make_shared<
          const std::map<std::string, fiveg::core::ExperimentResult>>(
          fiveg::core::completed_runs(*resume_load, opt.seed));
    }
    std::cerr << "fiveg_runall: cell seed=" << cell.axis_seed << ";"
              << cell.tag() << ": " << per_cell[i].size() << " run(s)\n";
    const fiveg::core::RunSummary summary = fiveg::core::Runner(opt).run();
    all_ok = all_ok && summary.all_ok();
    merged.wall_ms += summary.wall_ms;
    for (const fiveg::core::ExperimentResult& r : summary.results) {
      merged.results.push_back(r);
    }
  }

  if (!quiet) fiveg::core::write_text(merged, std::cout);
  if (print_metrics) {
    fiveg::core::write_metrics(merged, std::cerr, include_timing);
  }
  fiveg::core::write_timing(merged, std::cerr);
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  fiveg::core::RunnerOptions opt;
  opt.jobs = 0;  // hardware concurrency
  opt.timeout_s = 600;
  std::string json_path;
  std::string trace_path;
  std::string resume_path;
  std::string store_dir;
  std::string manifest_path;
  std::size_t shard_k = 0;
  std::size_t shard_n = 1;
  bool seed_set = false;
  bool filter_set = false;
  bool smoke_set = false;
  bool print_metrics = false;
  bool include_timing = true;
  bool quiet = false;
  bool list_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--jobs") {
      if (!parse_int(need_value(), &opt.jobs)) {
        std::cerr << "bad --jobs value\n";
        return 2;
      }
    } else if (arg == "--sim-threads") {
      if (!parse_int(need_value(), &opt.sim_threads)) {
        std::cerr << "bad --sim-threads value\n";
        return 2;
      }
    } else if (arg == "--seed") {
      std::uint64_t seed = 0;
      if (!parse_u64(need_value(), &seed)) {
        std::cerr << "bad --seed value\n";
        return 2;
      }
      opt.seed = seed;
      seed_set = true;
    } else if (arg == "--filter") {
      opt.filter = need_value();
      filter_set = true;
    } else if (arg == "--smoke") {
      opt.smoke_only = true;
      smoke_set = true;
    } else if (arg == "--timeout") {
      if (!parse_double(need_value(), &opt.timeout_s) || opt.timeout_s < 0) {
        std::cerr << "bad --timeout value\n";
        return 2;
      }
    } else if (arg == "--json") {
      json_path = need_value();
    } else if (arg == "--trace") {
      trace_path = need_value();
      opt.trace = true;
    } else if (arg == "--trace-capacity") {
      std::uint64_t cap = 0;
      if (!parse_u64(need_value(), &cap) || cap == 0) {
        std::cerr << "bad --trace-capacity value\n";
        return 2;
      }
      opt.trace_capacity = static_cast<std::size_t>(cap);
    } else if (arg == "--faults") {
      const char* path = need_value();
      try {
        opt.faults = std::make_shared<fiveg::fault::FaultPlan>(
            fiveg::fault::FaultPlan::load(path));
      } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
      }
    } else if (arg == "--qdisc") {
      fiveg::net::QdiscConfig qdisc;
      const char* spec = need_value();
      if (!fiveg::net::parse_qdisc_spec(spec, &qdisc)) {
        std::cerr << "bad --qdisc value: " << spec
                  << " (want droptail|codel|fq_codel|red, optionally +ecn)\n";
        return 2;
      }
      fiveg::core::set_campaign_bottleneck_qdisc(qdisc);
    } else if (arg == "--ledger") {
      opt.ledger_path = need_value();
    } else if (arg == "--resume") {
      resume_path = need_value();
    } else if (arg == "--store") {
      store_dir = need_value();
    } else if (arg == "--manifest") {
      manifest_path = need_value();
    } else if (arg == "--shard") {
      const char* spec = need_value();
      if (!fiveg::core::parse_shard_spec(spec, &shard_k, &shard_n)) {
        std::cerr << "bad --shard value: " << spec
                  << " (want K/N with K < N)\n";
        return 2;
      }
    } else if (arg == "--progress") {
      opt.progress = true;
    } else if (arg == "--progress-period") {
      if (!parse_double(need_value(), &opt.progress_period_s) ||
          opt.progress_period_s <= 0) {
        std::cerr << "bad --progress-period value\n";
        return 2;
      }
    } else if (arg == "--metrics") {
      print_metrics = true;
    } else if (arg == "--no-timing") {
      include_timing = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n" << kUsage;
      return 2;
    }
  }

  if (!manifest_path.empty()) {
    if (seed_set || filter_set || smoke_set) {
      std::cerr << "--manifest supplies seed/filter/smoke; drop the "
                   "conflicting flags\n";
      return 2;
    }
    if (!json_path.empty() || opt.trace) {
      std::cerr << "--manifest cannot be combined with --json/--trace; "
                   "export merged JSON with fiveg_query\n";
      return 2;
    }
    return run_manifest(manifest_path, opt, resume_path, store_dir, shard_k,
                        shard_n, quiet, print_metrics, include_timing,
                        list_only);
  }

  if (shard_n > 1) {
    // Plain-mode sharding: the single implicit cell's experiments, split
    // by the same unit rule manifests use.
    const std::vector<fiveg::core::CampaignUnit> mine =
        fiveg::core::shard_units(
            fiveg::core::campaign_units(
                1, fiveg::core::Runner(opt).selected()),
            shard_k, shard_n);
    if (mine.empty()) {
      std::cerr << "fiveg_runall: shard " << shard_k << "/" << shard_n
                << " has no work units\n";
      return 0;
    }
    for (const fiveg::core::CampaignUnit& u : mine) {
      opt.only_names.push_back(u.experiment);
    }
  }

  if (!resume_path.empty()) {
    if (opt.trace) {
      // Ledger records carry the full result but not the event trace, so a
      // resumed campaign cannot reconstruct a complete merged trace.
      std::cerr << "--resume cannot be combined with --trace\n";
      return 2;
    }
    const fiveg::core::LedgerLoad load =
        fiveg::core::load_ledger(resume_path);
    if (!load.ok()) {
      std::cerr << load.error << "\n";
      return 2;
    }
    if (load.dropped_lines > 0 || load.corrupt_records > 0 ||
        load.truncated_tail) {
      std::cerr << "fiveg_runall: ledger " << resume_path << ": skipped "
                << load.dropped_lines << " unparseable line(s), "
                << load.corrupt_records << " corrupt record(s)"
                << (load.truncated_tail ? ", torn final line" : "")
                << "; those runs will re-run\n";
    }
    auto completed = std::make_shared<
        const std::map<std::string, fiveg::core::ExperimentResult>>(
        fiveg::core::completed_runs(load, opt.seed));
    std::cerr << "fiveg_runall: resuming from " << resume_path << ": "
              << completed->size() << " run(s) already complete\n";
    opt.resume = std::move(completed);
    // Keep appending to the same ledger so a second interruption resumes
    // from the union.
    if (opt.ledger_path.empty()) opt.ledger_path = resume_path;
  }

  if (!store_dir.empty() && !list_only) {
    opt.store = open_store(store_dir, shard_k, shard_n);
    if (opt.store == nullptr) return 2;
  }

  const fiveg::core::Runner runner(opt);
  if (list_only) {
    for (const std::string& name : runner.selected()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  if (runner.selected().empty()) {
    std::cerr << "no experiments match\n";
    return 2;
  }

  const fiveg::core::RunSummary summary = runner.run();

  if (json_path == "-") {
    fiveg::core::write_json(summary, std::cout, include_timing);
  } else {
    if (!json_path.empty()) {
      std::ofstream f(json_path);
      if (!f) {
        std::cerr << "cannot open " << json_path << " for writing\n";
        return 2;
      }
      fiveg::core::write_json(summary, f, include_timing);
    }
    if (!quiet) fiveg::core::write_text(summary, std::cout);
  }
  if (!trace_path.empty()) {
    std::ofstream f(trace_path);
    if (!f) {
      std::cerr << "cannot open " << trace_path << " for writing\n";
      return 2;
    }
    fiveg::core::write_chrome_trace(summary, f, include_timing);
  }
  if (print_metrics) {
    fiveg::core::write_metrics(summary, std::cerr, include_timing);
  }
  fiveg::core::write_timing(summary, std::cerr);
  return summary.all_ok() ? 0 : 1;
}

// Regenerates the paper's Figure 23 (experiment id: fig23_power_trace).
// Usage: bench_fig23 [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("fig23_power_trace", argc, argv);
}

// Regenerates the paper's Figures 18 and 19 (experiment id: fig18_19_video_tput).
// Usage: bench_fig18_19 [seed]
#include "core/experiment.h"

int main(int argc, char** argv) {
  return fiveg::core::run_experiment_main("fig18_19_video_tput", argc, argv);
}

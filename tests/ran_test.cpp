// Unit tests for the RAN: cells, deployment, measurement events, NSA
// signalling, HARQ, RRC/DRX, PRB scheduling, the NSA UE controller and the
// hand-off engine.
#include <gtest/gtest.h>

#include <set>

#include "geo/campus.h"
#include "measure/cdf.h"
#include "measure/stats.h"
#include "ran/cell.h"
#include "ran/deployment.h"
#include "ran/drx.h"
#include "ran/handoff.h"
#include "ran/harq.h"
#include "ran/measurement_events.h"
#include "ran/nsa_signaling.h"
#include "ran/prb_scheduler.h"
#include "ran/rrc.h"
#include "ran/ue.h"
#include "sim/simulator.h"

namespace fiveg::ran {
namespace {

using sim::from_millis;
using sim::to_millis;

class DeploymentFixture : public ::testing::Test {
 protected:
  DeploymentFixture()
      : campus_(geo::make_campus(sim::Rng(42))),
        dep_(make_deployment(&campus_, sim::Rng(7))) {}

  geo::CampusMap campus_;
  Deployment dep_;
};

TEST_F(DeploymentFixture, MatchesPaperTable1Counts) {
  EXPECT_EQ(dep_.cells(radio::Rat::kLte).size(), 34u);  // 34 LTE cells
  EXPECT_EQ(dep_.cells(radio::Rat::kNr).size(), 13u);   // 13 NR cells
  EXPECT_EQ(dep_.site_count(radio::Rat::kLte), 13);     // 13 eNBs
  EXPECT_EQ(dep_.site_count(radio::Rat::kNr), 6);       // 6 gNBs
}

TEST_F(DeploymentFixture, EveryGnbIsCosited) {
  std::set<int> lte_sites;
  for (const Cell& c : dep_.cells(radio::Rat::kLte)) lte_sites.insert(c.site_id);
  for (const Cell& c : dep_.cells(radio::Rat::kNr)) {
    EXPECT_TRUE(lte_sites.count(c.site_id)) << "gNB without 4G master";
  }
  // But not every eNB hosts a gNB (the paper's deployment asymmetry).
  std::set<int> nr_sites;
  for (const Cell& c : dep_.cells(radio::Rat::kNr)) nr_sites.insert(c.site_id);
  EXPECT_LT(nr_sites.size(), lte_sites.size());
}

TEST_F(DeploymentFixture, CositedSubsetHas6Sites) {
  const auto cosited = dep_.lte_cells_cosited_with_nr();
  std::set<int> sites;
  for (const Cell& c : cosited) sites.insert(c.site_id);
  EXPECT_EQ(sites.size(), 6u);
  EXPECT_LT(cosited.size(), dep_.cells(radio::Rat::kLte).size());
}

TEST_F(DeploymentFixture, NrPcisMatchPaperRange) {
  for (const Cell& c : dep_.cells(radio::Rat::kNr)) {
    EXPECT_GE(c.pci, 60);
    EXPECT_LE(c.pci, 80);
  }
}

TEST_F(DeploymentFixture, MeasureReturnsAllCells) {
  const geo::Point center = campus_.bounds().center();
  const auto meas = dep_.measure(radio::Rat::kNr, center);
  EXPECT_EQ(meas.size(), 13u);
  const CellMeasurement best = dep_.best(radio::Rat::kNr, center);
  for (const CellMeasurement& m : meas) {
    EXPECT_LE(m.rsrp_dbm, best.rsrp_dbm);
  }
}

TEST_F(DeploymentFixture, BitrateZeroOutsideCoverage) {
  // Far outside the campus there is no service.
  EXPECT_DOUBLE_EQ(
      dep_.dl_bitrate_bps(radio::Rat::kNr, {50000.0, 50000.0}), 0.0);
}

TEST_F(DeploymentFixture, BitrateReasonableNearSite) {
  const Cell& c = dep_.cells(radio::Rat::kNr).front();
  // 40 m out on boresight.
  const double az = c.site.antenna.azimuth_deg() * M_PI / 180.0;
  const geo::Point p{c.site.pos.x + 40 * std::cos(az),
                     c.site.pos.y + 40 * std::sin(az)};
  const double rate = dep_.dl_bitrate_bps(radio::Rat::kNr, p);
  EXPECT_GT(rate, 100e6);
  EXPECT_LE(rate, radio::nr3500().peak_dl_bitrate_bps() + 1);
}

TEST(MeasurementEventTest, DescriptionsCoverTable5) {
  for (const MeasEventType t :
       {MeasEventType::kA1, MeasEventType::kA2, MeasEventType::kA3,
        MeasEventType::kA4, MeasEventType::kA5, MeasEventType::kB1,
        MeasEventType::kB2}) {
    EXPECT_FALSE(describe(t).empty());
  }
}

TEST(A3DetectorTest, FiresOnlyAfterSustainedGap) {
  A3Detector d(A3Config{3.0, 0.0, from_millis(324)});
  // Gap of 4 dB, but only for 200 ms: no fire.
  EXPECT_FALSE(d.update(0, -10.0, -6.0));
  EXPECT_FALSE(d.update(from_millis(200), -10.0, -6.0));
  // Dip below the hysteresis resets the dwell.
  EXPECT_FALSE(d.update(from_millis(300), -10.0, -8.0));
  // Now a sustained gap >= 324 ms fires.
  EXPECT_FALSE(d.update(from_millis(400), -10.0, -6.0));
  EXPECT_FALSE(d.update(from_millis(700), -10.0, -6.0));
  EXPECT_TRUE(d.update(from_millis(724 + 1), -10.0, -6.0));
  // And needs a fresh dwell to fire again.
  EXPECT_FALSE(d.update(from_millis(800), -10.0, -6.0));
}

TEST(A3DetectorTest, ExactHysteresisDoesNotFire) {
  A3Detector d(A3Config{3.0, 0.0, from_millis(100)});
  // Gap exactly 3 dB fails the strict inequality of Eq. (1).
  EXPECT_FALSE(d.update(0, -10.0, -7.0));
  EXPECT_FALSE(d.update(from_millis(500), -10.0, -7.0));
}

TEST(A3DetectorTest, ResetClearsDwell) {
  A3Detector d(A3Config{3.0, 0.0, from_millis(100)});
  EXPECT_FALSE(d.update(0, -10.0, -5.0));
  d.reset();
  EXPECT_FALSE(d.update(from_millis(150), -10.0, -5.0));  // dwell restarted
  EXPECT_TRUE(d.update(from_millis(300), -10.0, -5.0));
}

TEST(NsaSignalingTest, LatencyMeansMatchPaper) {
  EXPECT_NEAR(to_millis(expected_handoff_latency(HandoffType::k4G4G)), 30.10,
              0.2);
  EXPECT_NEAR(to_millis(expected_handoff_latency(HandoffType::k5G5G)), 108.40,
              0.2);
  EXPECT_NEAR(to_millis(expected_handoff_latency(HandoffType::k4G5G)), 80.23,
              0.2);
  // 5G-4G (not reported in the paper) sits between 4G-4G and 4G-5G.
  const double t54 = to_millis(expected_handoff_latency(HandoffType::k5G4G));
  EXPECT_GT(t54, 30.1);
  EXPECT_LT(t54, 80.2);
}

TEST(NsaSignalingTest, FiveGHandoffGoesThroughLteLegs) {
  // The NSA 5G-5G sequence must contain the release, the LTE RACH and the
  // NR re-addition — the paper's Appendix A choreography.
  const auto& seq = handoff_sequence(HandoffType::k5G5G);
  const auto has = [&](const std::string& needle) {
    for (const SignalingStep& s : seq) {
      if (s.name.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("NR resource release"));
  EXPECT_TRUE(has("LTE MAC RACH"));
  EXPECT_TRUE(has("NR MAC RACH"));
  EXPECT_TRUE(has("Addition Request"));
  // A plain 4G-4G hand-off touches no NR leg.
  for (const SignalingStep& s : handoff_sequence(HandoffType::k4G4G)) {
    EXPECT_EQ(s.name.find("NR"), std::string::npos) << s.name;
  }
}

TEST(NsaSignalingTest, SampledLatencySpreadAroundMean) {
  sim::Rng rng(3);
  measure::RunningStats s;
  for (int i = 0; i < 2000; ++i) {
    s.add(to_millis(sample_handoff_latency(HandoffType::k5G5G, rng)));
  }
  EXPECT_NEAR(s.mean(), 108.4, 2.0);
  EXPECT_GT(s.stddev(), 1.0);
  EXPECT_GT(s.min(), 50.0);
}

TEST(HarqTest, AttemptProbabilitiesMatchFig10Shape) {
  const HarqProcess lte(lte_harq());
  const HarqProcess nr(nr_harq());
  // Fig. 10 bars: 4G ~16%, 4%, 1%; 5G ~8%, 1%.
  EXPECT_NEAR(lte.attempt_probability(2), 0.16, 0.005);
  EXPECT_NEAR(lte.attempt_probability(3), 0.04, 0.005);
  EXPECT_NEAR(lte.attempt_probability(4), 0.01, 0.003);
  EXPECT_NEAR(nr.attempt_probability(2), 0.08, 0.005);
  EXPECT_NEAR(nr.attempt_probability(3), 0.01, 0.003);
  // 5G retransmissions are effectively done after 2 trials.
  EXPECT_LT(nr.attempt_probability(4), 0.002);
  // Monotone decreasing.
  for (int n = 2; n < 6; ++n) {
    EXPECT_GT(lte.attempt_probability(n), lte.attempt_probability(n + 1));
  }
}

TEST(HarqTest, ResidualLossNegligible) {
  EXPECT_LT(HarqProcess(lte_harq()).residual_loss(), 1e-12);
  EXPECT_LT(HarqProcess(nr_harq()).residual_loss(), 1e-12);
}

TEST(HarqTest, SampledAttemptsMatchPmf) {
  const HarqProcess lte(lte_harq());
  sim::Rng rng(11);
  int retx = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const int attempts = lte.sample_attempts(rng);
    EXPECT_GE(attempts, 1);
    EXPECT_LE(attempts, 32);
    retx += (attempts >= 2);
  }
  EXPECT_NEAR(static_cast<double>(retx) / n, 0.16, 0.01);
}

TEST(HarqTest, LatencyPerAttempt) {
  const HarqProcess nr(nr_harq());
  EXPECT_EQ(nr.latency_for(1), 0);
  EXPECT_EQ(nr.latency_for(3), 2 * from_millis(2.5));
}

TEST(RrcTest, TimerSetsMatchTable7) {
  const DrxConfig lte = lte_drx();
  const DrxConfig nr = nr_nsa_drx();
  EXPECT_EQ(lte.paging_cycle, from_millis(1280));
  EXPECT_EQ(lte.on_duration, from_millis(10));
  EXPECT_EQ(lte.lte_promotion, from_millis(623));
  EXPECT_EQ(nr.lte_to_nr, from_millis(1238));
  EXPECT_EQ(nr.nr_promotion, from_millis(1681));
  EXPECT_EQ(lte.tail, from_millis(10720));
  EXPECT_EQ(nr.tail, from_millis(21440));  // 2x: the compounded NSA tail
  EXPECT_EQ(lte.long_drx_cycle, from_millis(320));
}

TEST(RrcTest, StateNames) {
  EXPECT_EQ(to_string(RrcState::kIdle), "RRC_IDLE");
  EXPECT_EQ(to_string(RrcState::kConnectedNr), "RRC_CONNECTED(NR)");
}

TEST(DrxTest, ConnectedActivityPhases) {
  const DrxConfig c = nr_nsa_drx();  // inactivity 100 ms, cycle 320, on 10
  EXPECT_EQ(connected_activity(c, from_millis(50)), RadioActivity::kTailAwake);
  // Just after inactivity: start of a DRX cycle -> on-duration.
  EXPECT_EQ(connected_activity(c, from_millis(105)), RadioActivity::kTailAwake);
  // Mid-cycle: sleeping.
  EXPECT_EQ(connected_activity(c, from_millis(100 + 200)),
            RadioActivity::kTailSleep);
  // Next cycle's on-duration.
  EXPECT_EQ(connected_activity(c, from_millis(100 + 320 + 5)),
            RadioActivity::kTailAwake);
  // After the tail: effectively idle.
  EXPECT_EQ(connected_activity(c, c.tail + from_millis(1)),
            RadioActivity::kPagingSleep);
}

TEST(DrxTest, IdleActivityPaging) {
  const DrxConfig c = lte_drx();
  EXPECT_EQ(idle_activity(c, from_millis(5)), RadioActivity::kPagingAwake);
  EXPECT_EQ(idle_activity(c, from_millis(700)), RadioActivity::kPagingSleep);
  EXPECT_EQ(idle_activity(c, from_millis(1285)), RadioActivity::kPagingAwake);
}

TEST(DrxTest, TailDutyCycle) {
  EXPECT_NEAR(tail_duty_cycle(lte_drx()), 10.0 / 320.0, 1e-12);
}

TEST(PrbSchedulerTest, SoloUserGetsAlmostEverything) {
  PrbScheduler sched(radio::nr3500(), 0);
  sim::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const double f = sched.grant_fraction(rng);
    EXPECT_GE(f, 0.98);
    EXPECT_LE(f, 1.0);
  }
}

TEST(PrbSchedulerTest, FairShareWithContention) {
  PrbScheduler sched(radio::lte1800(), 3);
  sim::Rng rng(2);
  measure::RunningStats s;
  for (int i = 0; i < 2000; ++i) s.add(sched.grant_fraction(rng));
  EXPECT_NEAR(s.mean(), 0.25, 0.02);
}

TEST(PrbSchedulerTest, ObservedFractionsMatchPaper) {
  sim::Rng rng(3);
  measure::RunningStats nr_day, lte_day, lte_night;
  for (int i = 0; i < 2000; ++i) {
    nr_day.add(observed_prb_fraction(radio::Rat::kNr, LoadRegime::kDay, rng));
    lte_day.add(observed_prb_fraction(radio::Rat::kLte, LoadRegime::kDay, rng));
    lte_night.add(
        observed_prb_fraction(radio::Rat::kLte, LoadRegime::kNight, rng));
  }
  EXPECT_GT(nr_day.min(), 0.98);            // 260/264
  EXPECT_NEAR(lte_day.mean(), 0.625, 0.02);  // 40-85 PRBs
  EXPECT_GT(lte_night.min(), 0.94);          // 95-100 PRBs
  EXPECT_GT(lte_night.mean(), lte_day.mean());
}

TEST(NsaUeTest, AddsAndDropsNrLegWithDwell) {
  NsaUe ue;
  EXPECT_FALSE(ue.nr_attached());
  // Strong NR: add after 200 ms dwell.
  EXPECT_FALSE(ue.update(0, -80.0).has_value());
  const auto add = ue.update(from_millis(250), -80.0);
  ASSERT_TRUE(add.has_value());
  EXPECT_EQ(*add, HandoffType::k4G5G);
  ue.complete(*add);
  EXPECT_TRUE(ue.nr_attached());
  // NR lost: drop after dwell.
  EXPECT_FALSE(ue.update(from_millis(300), -120.0).has_value());
  const auto drop = ue.update(from_millis(600), -120.0);
  ASSERT_TRUE(drop.has_value());
  EXPECT_EQ(*drop, HandoffType::k5G4G);
  ue.complete(*drop);
  EXPECT_FALSE(ue.nr_attached());
}

TEST(NsaUeTest, MarginPreventsEdgeFlapping) {
  NsaUe ue;
  // RSRP between floor and floor+margin: neither adds nor (once attached)
  // drops.
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(ue.update(from_millis(100 * i), -103.0).has_value());
  }
}

class HandoffEngineFixture : public ::testing::Test {
 protected:
  HandoffEngineFixture()
      : campus_(geo::make_campus(sim::Rng(42))),
        dep_(make_deployment(&campus_, sim::Rng(7))) {}

  geo::CampusMap campus_;
  Deployment dep_;
  sim::Simulator simr_;
};

TEST_F(HandoffEngineFixture, WalkProducesHandoffs) {
  MobilityConfig cfg;
  cfg.speed_mps = 2.5;  // brisk cycling, more cells per minute
  measure::KpiLogger log;
  HandoffEngine engine(&simr_, &dep_, cfg, sim::Rng(5), &log);
  engine.start(geo::make_survey_route(campus_, 90.0));
  simr_.run_until(40 * sim::kMinute);
  EXPECT_GT(engine.records().size(), 3u);
  // Interruption windows align with records.
  ASSERT_EQ(engine.interruptions().size(), engine.records().size());
  for (std::size_t i = 0; i < engine.records().size(); ++i) {
    const auto& r = engine.records()[i];
    const auto& w = engine.interruptions()[i];
    EXPECT_EQ(w.begin, r.trigger_at);
    EXPECT_EQ(w.end - w.begin, r.latency);
    EXPECT_TRUE(engine.data_interrupted(w.begin));
    EXPECT_TRUE(engine.data_interrupted(w.end - 1));
    EXPECT_FALSE(engine.data_interrupted(w.end));
  }
}

TEST_F(HandoffEngineFixture, FiveGHandoffsSlowerThanFourG) {
  MobilityConfig cfg;
  cfg.speed_mps = 2.5;
  HandoffEngine engine(&simr_, &dep_, cfg, sim::Rng(6));
  engine.start(geo::make_survey_route(campus_, 70.0));
  simr_.run_until(60 * sim::kMinute);

  measure::RunningStats lat55, lat44;
  for (const HandoffRecord& r : engine.records()) {
    if (r.type == HandoffType::k5G5G) lat55.add(to_millis(r.latency));
    if (r.type == HandoffType::k4G4G) lat44.add(to_millis(r.latency));
  }
  if (lat55.count() > 2 && lat44.count() > 2) {
    EXPECT_GT(lat55.mean(), 2.5 * lat44.mean());
  }
  // At minimum, some 5G-5G hand-offs happened on a full survey.
  EXPECT_GT(lat55.count() + lat44.count(), 0u);
}

TEST_F(HandoffEngineFixture, QualityAfterRecordedForMostHandoffs) {
  MobilityConfig cfg;
  HandoffEngine engine(&simr_, &dep_, cfg, sim::Rng(8));
  engine.start(geo::make_survey_route(campus_, 100.0));
  simr_.run_until(90 * sim::kMinute);
  ASSERT_GT(engine.records().size(), 0u);
  std::size_t recorded = 0;
  for (const HandoffRecord& r : engine.records()) {
    recorded += r.after_recorded;
  }
  EXPECT_GT(recorded, engine.records().size() / 2);
}

}  // namespace
}  // namespace fiveg::ran

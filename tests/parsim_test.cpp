// Tests for the conservative-lookahead parallel simulation core
// (sim::ParSim). The contract under test is bit-exact determinism: for
// any partition count, lookahead window and worker-thread count, the
// merged event order, KPIs, metrics, traces and self-profiler accounting
// must equal the serial (threads = 1) schedule exactly — EXPECT_EQ on
// everything, no tolerances.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/link.h"
#include "net/packet.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "sim/lane.h"
#include "sim/parsim.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace fiveg::sim {
namespace {

// A lookahead comfortably above the parallel-fallback floor.
constexpr Time kLook = 200 * kMicrosecond;

// Splitmix-style step: deterministic per-lane randomness with no global
// state, so the workload itself is identical for every thread count.
std::uint64_t lcg_next(std::uint64_t* s) {
  *s += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = *s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Canonical transcript of one randomized multi-lane run: per-lane event
// logs (lane-local, so no cross-thread interleaving ambiguity), the
// merged deterministic metrics, the merged trace and the window/event
// totals. Two transcripts compare with ==.
struct Transcript {
  std::vector<std::vector<std::string>> lane_log;
  std::string metrics;  // parent-registry kSim snapshot, flattened
  std::string profile;  // parent-registry kWall churn counters
  std::vector<std::string> trace;
  std::uint64_t windows = 0;
  std::uint64_t executed = 0;
  std::uint64_t trace_dropped = 0;

  bool operator==(const Transcript& o) const {
    return lane_log == o.lane_log && metrics == o.metrics &&
           profile == o.profile && trace == o.trace && windows == o.windows &&
           executed == o.executed && trace_dropped == o.trace_dropped;
  }
};

std::string flatten(const std::vector<obs::MetricSnapshot>& snaps) {
  std::ostringstream os;
  for (const auto& s : snaps) {
    os << s.name << '=' << s.value << ",max=" << s.max << ",n=" << s.count
       << ",sum=" << s.sum << ';';
  }
  return os.str();
}

// The self-profiler churn counters whose totals must not depend on which
// thread ran which lane window (the satellite-4 regression surface).
std::string churn_of(const obs::MetricsRegistry& reg) {
  std::ostringstream os;
  for (const auto& s : reg.snapshot(obs::MetricClock::kWall)) {
    if (s.name == obs::prof::kScheduledMetric ||
        s.name == obs::prof::kCancelledMetric ||
        s.name == obs::prof::kHeapAllocMetric ||
        s.name == "obs.trace.dropped_events") {
      os << s.name << '=' << s.value << ';';
    }
  }
  return os.str();
}

// Runs the reference randomized workload: `lanes` self-rescheduling event
// chains with jittered spacing, cross-lane sends at the lookahead horizon
// (a fraction of them cancelled from a third lane), per-lane metric
// emissions that collide on shared names, and a deliberately tiny parent
// trace ring so drop accounting is exercised too.
Transcript run_workload(int lanes, int threads, std::uint64_t seed,
                        std::size_t trace_capacity = 1 << 12) {
  obs::MetricsRegistry parent_reg;
  obs::Tracer parent_trace(trace_capacity);
  obs::ScopedObs scope(&parent_trace, &parent_reg);

  Transcript out;
  out.lane_log.resize(static_cast<std::size_t>(lanes));

  ParSimConfig cfg;
  cfg.lanes = lanes;
  cfg.threads = threads;
  cfg.lookahead = kLook;
  ParSim par(cfg);

  struct LaneState {
    std::uint64_t rng = 0;
    std::uint64_t ticks = 0;
  };
  std::vector<LaneState> state(static_cast<std::size_t>(lanes));
  // Per-lane cancel pools: lane events run concurrently, so each lane
  // may only touch its own slot (shared state would be a data race AND
  // a determinism leak).
  std::vector<std::vector<CrossEventId>> cancellable(
      static_cast<std::size_t>(lanes));
  // The chains must outlive the loop body: scheduled copies re-schedule
  // by reference to these slots.
  std::vector<std::function<void()>> chains(static_cast<std::size_t>(lanes));

  const Time deadline = 20 * kMillisecond;
  for (int k = 0; k < lanes; ++k) {
    state[static_cast<std::size_t>(k)].rng = seed + 1000ull * (k + 1);
    // Each lane's chain: log, emit metrics/trace, reschedule with jitter,
    // occasionally send across (target >= now + lookahead always).
    chains[static_cast<std::size_t>(k)] = [&, k] {
      auto& st = state[static_cast<std::size_t>(k)];
      auto& log = out.lane_log[static_cast<std::size_t>(k)];
      Simulator& self = par.lane(k);
      const std::uint64_t draw = lcg_next(&st.rng);
      ++st.ticks;
      log.push_back("t=" + std::to_string(self.now()) +
                    " n=" + std::to_string(st.ticks));
      obs::metrics()->counter("work.ticks").add(1);
      obs::metrics()->counter("work.lane", {{"k", std::to_string(k)}}).add(1);
      obs::metrics()->gauge("work.last_draw").set(
          static_cast<double>(draw % 1024));
      obs::tracer()->instant(self.now(), "work.tick", "sim");
      if (lanes > 1 && draw % 7 == 0) {
        const int to = static_cast<int>(draw / 7 % static_cast<unsigned>(lanes));
        const Time at = self.now() + kLook + Time(100 + draw % 5000);
        const CrossEventId id =
            par.send(to, at, "x.ping", [&out, to, at] {
              out.lane_log[static_cast<std::size_t>(to)].push_back(
                  "x@" + std::to_string(at));
            });
        if (draw % 3 == 0) {
          cancellable[static_cast<std::size_t>(k)].push_back(id);
        }
      }
      auto& own_cancels = cancellable[static_cast<std::size_t>(k)];
      if (!own_cancels.empty() && draw % 11 == 0) {
        // Cross-partition cancel: may be too late (then a deterministic
        // no-op) or in time (then the ping never fires) — either way the
        // outcome is a pure function of the timeline.
        par.cancel(own_cancels.back());
        own_cancels.pop_back();
      }
      const Time next = self.now() + 5 * kMicrosecond + Time(draw % 40000);
      if (next <= deadline) {
        self.schedule_at(next, "work.chain",
                         [&chains, k] { chains[static_cast<std::size_t>(k)](); });
      }
    };
    par.with_lane(k, [&, k] {
      par.lane(k).schedule_at(Time(1000) * (k + 1), "work.chain", [&chains, k] {
        chains[static_cast<std::size_t>(k)]();
      });
    });
  }

  par.run_until(deadline);
  out.windows = par.windows();
  out.executed = par.executed_events();
  par.finish();

  out.metrics = flatten(parent_reg.snapshot(obs::MetricClock::kSim));
  out.profile = churn_of(parent_reg);
  parent_trace.for_each([&](const obs::TraceEvent& e) {
    out.trace.push_back(std::to_string(e.at) + ":" + e.name);
  });
  out.trace_dropped = parent_trace.dropped();
  return out;
}

TEST(ParSimTest, FallsBackToSerialWhenStructureIsTooTight) {
  ParSimConfig cfg;
  cfg.lanes = 4;
  cfg.threads = 8;
  cfg.lookahead = 10 * kMicrosecond;  // below min_parallel_lookahead
  ParSim tight(cfg);
  EXPECT_FALSE(tight.parallel_active());
  EXPECT_EQ(tight.effective_threads(), 1);

  cfg.lookahead = kLook;
  cfg.lanes = 1;  // a single lane never parallelises
  ParSim single(cfg);
  EXPECT_FALSE(single.parallel_active());

  cfg.lanes = 4;
  ParSim par(cfg);
  EXPECT_TRUE(par.parallel_active());
  EXPECT_EQ(par.effective_threads(), 4);
  EXPECT_EQ(par.lanes(), 4);
}

TEST(ParSimTest, SameTimeEventsKeepFifoOrderWithinLane) {
  ParSimConfig cfg;
  cfg.lanes = 2;
  cfg.threads = 4;
  cfg.lookahead = kLook;
  ParSim par(cfg);
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    par.lane(0).schedule_at(5 * kMicrosecond, [&order, i] {
      order.push_back(i);
    });
  }
  par.run_until(kMillisecond);
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ParSimTest, ControlRunsBeforeLaneEventsAtEqualTimestamps) {
  ParSimConfig cfg;
  cfg.lanes = 2;
  cfg.threads = 2;
  cfg.lookahead = kLook;
  ParSim par(cfg);
  const Time t = 300 * kMicrosecond;
  bool lane_ran = false;
  bool control_saw_lane = true;
  par.lane(1).schedule_at(t, [&] { lane_ran = true; });
  par.control().schedule_at(t, [&] { control_saw_lane = lane_ran; });
  par.run_until(kMillisecond);
  EXPECT_TRUE(lane_ran);
  EXPECT_FALSE(control_saw_lane)
      << "control events at time T must run before lane events at T";
}

TEST(ParSimTest, CrossLaneSendLandsAtRequestedTime) {
  ParSimConfig cfg;
  cfg.lanes = 2;
  cfg.threads = 2;
  cfg.lookahead = kLook;
  ParSim par(cfg);
  Time landed_at = 0;
  Time sent_from = 0;
  par.lane(0).schedule_at(50 * kMicrosecond, [&] {
    sent_from = par.lane(0).now();
    par.send(1, sent_from + kLook + 10, "x.hop", [&] {
      landed_at = par.lane(1).now();
    });
  });
  par.run_until(kMillisecond);
  EXPECT_EQ(sent_from, 50 * kMicrosecond);
  EXPECT_EQ(landed_at, 50 * kMicrosecond + kLook + 10);
}

TEST(ParSimTest, SendBelowLookaheadHorizonThrows) {
  ParSimConfig cfg;
  cfg.lanes = 2;
  cfg.threads = 2;
  cfg.lookahead = kLook;
  ParSim par(cfg);
  par.lane(0).schedule_at(10 * kMicrosecond, [&] {
    par.send(1, par.lane(0).now() + kLook - 1, "x.early", [] {});
  });
  EXPECT_THROW(par.run_until(kMillisecond), std::logic_error);
}

TEST(ParSimTest, CancelAcrossPartitionInTimeStopsTheEvent) {
  ParSimConfig cfg;
  cfg.lanes = 3;
  cfg.threads = 4;
  cfg.lookahead = kLook;
  ParSim par(cfg);
  bool fired = false;
  CrossEventId id;
  par.lane(0).schedule_at(10 * kMicrosecond, [&] {
    id = par.send(1, kMillisecond, "x.victim", [&] { fired = true; });
  });
  // Lane 2 cancels well before the victim's timestamp; both the send and
  // the cancel cross a partition boundary.
  par.lane(2).schedule_at(400 * kMicrosecond, [&] { par.cancel(id); });
  par.run_until(2 * kMillisecond);
  EXPECT_FALSE(fired);
}

TEST(ParSimTest, CancelArrivingAfterFireIsDeterministicNoop) {
  ParSimConfig cfg;
  cfg.lanes = 2;
  cfg.threads = 2;
  cfg.lookahead = kLook;
  ParSim par(cfg);
  bool fired = false;
  CrossEventId id;
  par.lane(0).schedule_at(10 * kMicrosecond, [&] {
    id = par.send(1, 10 * kMicrosecond + kLook + 5, "x.victim",
                  [&] { fired = true; });
  });
  // By the time this cancel reaches a barrier the victim has fired:
  // events inside the lookahead horizon cannot be recalled.
  par.lane(0).schedule_at(kMillisecond, [&] { par.cancel(id); });
  par.run_until(2 * kMillisecond);
  EXPECT_TRUE(fired);
}

TEST(ParSimTest, SameTimeCrossSendsApplyInSourceLaneTicketOrder) {
  ParSimConfig cfg;
  cfg.lanes = 3;
  cfg.threads = 4;
  cfg.lookahead = kLook;
  ParSim par(cfg);
  std::vector<int> order;
  const Time at = kMillisecond;
  // Two lanes target lane 2 at the identical timestamp: the canonical
  // merge applies (at, src_lane, ticket) order, so lane 0's sends land
  // before lane 1's, and a lane's own sends keep ticket order.
  par.lane(1).schedule_at(10 * kMicrosecond, [&] {
    par.send(2, at, "x.b1", [&] { order.push_back(10); });
    par.send(2, at, "x.b2", [&] { order.push_back(11); });
  });
  par.lane(0).schedule_at(20 * kMicrosecond, [&] {
    par.send(2, at, "x.a1", [&] { order.push_back(0); });
  });
  par.run_until(2 * kMillisecond);
  EXPECT_EQ(order, (std::vector<int>{0, 10, 11}));
}

TEST(ParSimTest, RandomizedWorkloadBitIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : {7ull, 42ull, 9001ull}) {
    for (const int lanes : {2, 3, 5}) {
      const Transcript ref = run_workload(lanes, 1, seed);
      for (const int threads : {2, 4, 8}) {
        const Transcript got = run_workload(lanes, threads, seed);
        EXPECT_TRUE(ref == got)
            << "lanes=" << lanes << " threads=" << threads << " seed=" << seed;
      }
    }
  }
}

TEST(ParSimTest, FallbackLookaheadStillBitIdentical) {
  // A lookahead below the parallel floor forces the inline schedule; the
  // transcript must still match a nominally-threaded run bit for bit.
  const std::uint64_t seed = 1234;
  const Transcript ref = run_workload(3, 1, seed);
  const Transcript got = run_workload(3, 8, seed);
  EXPECT_TRUE(ref == got);
}

TEST(ParSimTest, ChurnAndDropAccountingIsThreadCountInvariant) {
  // Tiny trace ring forces drops; the kWall churn counters
  // (prof.events_scheduled / cancelled / callable_heap_allocs) and
  // obs.trace.dropped_events must aggregate to the same totals whether
  // the lanes ran inline or across 4 workers.
  const Transcript serial = run_workload(4, 1, 77, /*trace_capacity=*/64);
  const Transcript threaded = run_workload(4, 4, 77, /*trace_capacity=*/64);
  EXPECT_GT(serial.trace_dropped, 0u) << "workload must overflow the ring";
  EXPECT_EQ(serial.trace_dropped, threaded.trace_dropped);
  EXPECT_EQ(serial.profile, threaded.profile);
  EXPECT_FALSE(serial.profile.empty());
}

TEST(ParSimTest, WindowAndEventTotalsAreStructural) {
  const Transcript a = run_workload(3, 1, 5);
  const Transcript b = run_workload(3, 4, 5);
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_GT(a.windows, 0u);
  EXPECT_GT(a.executed, 0u);
}

TEST(ParSimTest, MergedMetricsIncludeParsimCounters) {
  obs::MetricsRegistry reg;
  obs::ScopedObs scope(nullptr, &reg);
  {
    ParSimConfig cfg;
    cfg.lanes = 2;
    cfg.threads = 2;
    cfg.lookahead = kLook;
    ParSim par(cfg);
    par.lane(0).schedule_at(10 * kMicrosecond, [] {});
    par.run_until(kMillisecond);
    par.finish();
  }
  double windows = -1;
  for (const auto& s : reg.snapshot(obs::MetricClock::kSim)) {
    if (s.name == "sim.parsim.windows") windows = s.value;
  }
  EXPECT_GE(windows, 1.0);
}

TEST(ParSimTest, DomainPinnedLinkRejectsForeignLaneSend) {
  ParSimConfig cfg;
  cfg.lanes = 2;
  cfg.threads = 2;
  cfg.lookahead = kLook;
  ParSim par(cfg);

  std::unique_ptr<net::Link> link;
  par.with_lane(1, [&] {
    net::Link::Config lcfg;
    lcfg.name = "pinned";
    lcfg.domain = 1;
    link = std::make_unique<net::Link>(&par.lane(1), lcfg);
  });

  // Same-lane traffic is fine...
  par.lane(1).schedule_at(10 * kMicrosecond, [&] { link->send(net::Packet{}); });
  par.run_until(100 * kMicrosecond);
  EXPECT_EQ(link->delivered_packets() + link->queue_packets() +
                link->dropped_packets(),
            0u + 1u);

  // ...but a direct call from lane 0 is a partition-affinity violation:
  // cross-lane packets must go through ParSim::send.
  par.lane(0).schedule_at(300 * kMicrosecond, [&] { link->send(net::Packet{}); });
  EXPECT_THROW(par.run_until(kMillisecond), std::logic_error);
}

TEST(ParSimTest, CurrentLaneTracksScope) {
  EXPECT_EQ(current_lane(), kNoLane);
  ParSimConfig cfg;
  cfg.lanes = 2;
  cfg.threads = 2;
  cfg.lookahead = kLook;
  ParSim par(cfg);
  int in_lane = kNoLane;
  int in_with_lane = kNoLane;
  int in_control = kNoLane;
  par.with_lane(1, [&] { in_with_lane = current_lane(); });
  par.lane(0).schedule_at(10 * kMicrosecond, [&] { in_lane = current_lane(); });
  par.control().schedule_at(20 * kMicrosecond,
                            [&] { in_control = current_lane(); });
  par.run_until(kMillisecond);
  EXPECT_EQ(in_with_lane, 1);
  EXPECT_EQ(in_lane, 0);
  EXPECT_EQ(in_control, kControlLane);
  EXPECT_EQ(current_lane(), kNoLane);
}

TEST(ParSimTest, LaneExceptionsRethrowDeterministically) {
  // Both lanes fail in the same window; the lowest lane index wins no
  // matter which worker thread finished first.
  for (int attempt = 0; attempt < 4; ++attempt) {
    ParSimConfig cfg;
    cfg.lanes = 2;
    cfg.threads = 2;
    cfg.lookahead = kLook;
    ParSim par(cfg);
    par.lane(0).schedule_at(10 * kMicrosecond,
                            [] { throw std::runtime_error("lane0"); });
    par.lane(1).schedule_at(10 * kMicrosecond,
                            [] { throw std::runtime_error("lane1"); });
    try {
      par.run_until(kMillisecond);
      FAIL() << "expected a lane exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "lane0");
    }
  }
}

}  // namespace
}  // namespace fiveg::sim

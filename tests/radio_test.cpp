// Unit tests for the radio layer: carriers, path loss, shadowing, antennas,
// MCS/CQI mapping and the link budget.
#include <gtest/gtest.h>

#include <cmath>

#include "geo/campus.h"
#include "measure/stats.h"
#include "radio/antenna.h"
#include "radio/carrier.h"
#include "radio/link_budget.h"
#include "radio/mcs.h"
#include "radio/pathloss.h"
#include "radio/shadowing.h"
#include "sim/rng.h"

namespace fiveg::radio {
namespace {

TEST(CarrierTest, PaperPeakRates) {
  const CarrierConfig nr = nr3500();
  // Paper: maximum PHY bit-rate 1200.98 Mbps for 5G DL with a 3:1 TDD split.
  EXPECT_NEAR(nr.peak_dl_bitrate_bps() / 1e6, 1200.98, 25.0);
  // Paper: 5G UL peak ~130 Mbps.
  EXPECT_NEAR(nr.peak_ul_bitrate_bps() / 1e6, 130.0, 10.0);

  const CarrierConfig lte = lte1800();
  // Paper: 4G DL reaches ~200 Mbps at night (single user).
  EXPECT_NEAR(lte.peak_dl_bitrate_bps() / 1e6, 200.0, 15.0);
  EXPECT_NEAR(lte.peak_ul_bitrate_bps() / 1e6, 100.0, 10.0);
}

TEST(CarrierTest, BandsMatchPaperTable1) {
  EXPECT_EQ(lte1800().rat, Rat::kLte);
  EXPECT_NEAR(lte1800().freq_ghz, 1.85, 0.05);
  EXPECT_EQ(lte1800().duplex, Duplex::kFdd);
  EXPECT_EQ(nr3500().rat, Rat::kNr);
  EXPECT_DOUBLE_EQ(nr3500().freq_ghz, 3.5);
  EXPECT_EQ(nr3500().duplex, Duplex::kTdd);
  EXPECT_DOUBLE_EQ(nr3500().dl_fraction, 0.75);
}

TEST(CarrierTest, NoisePerRe) {
  // 30 kHz SCS: -174 + 44.8 + 7 = -122.2 dBm.
  EXPECT_NEAR(nr3500().noise_per_re_dbm(), -122.2, 0.1);
  EXPECT_NEAR(lte1800().noise_per_re_dbm(), -125.2, 0.1);
}

TEST(PathlossTest, MonotoneInDistanceAndFrequency) {
  double last = 0;
  for (double d = 10; d <= 1000; d *= 2) {
    const double pl = uma_nlos_db(d, 3.5);
    EXPECT_GT(pl, last);
    last = pl;
  }
  EXPECT_GT(uma_los_db(100, 3.5), uma_los_db(100, 1.85));
  EXPECT_GT(uma_nlos_db(100, 3.5), uma_los_db(100, 3.5));
  EXPECT_GT(fspl_db(200, 3.5), fspl_db(100, 3.5));
}

TEST(PathlossTest, KnownValues) {
  // UMa LoS at 100 m, 3.5 GHz: 28 + 44 + 10.88 = 82.88 dB.
  EXPECT_NEAR(uma_los_db(100, 3.5), 82.88, 0.05);
  // FSPL at 1 km, 1 GHz: 32.45 + 60 = 92.45 dB.
  EXPECT_NEAR(fspl_db(1000, 1.0), 92.45, 0.05);
}

TEST(PathlossTest, ClampsTinyDistances) {
  EXPECT_DOUBLE_EQ(uma_los_db(0.0, 3.5), uma_los_db(1.0, 3.5));
  EXPECT_DOUBLE_EQ(uma_nlos_db(-5.0, 3.5), uma_nlos_db(1.0, 3.5));
}

TEST(PathlossTest, CampusLosBlendsTowardNlos) {
  const double near_los = campus_pathloss_db(30, 3.5, true);
  EXPECT_NEAR(near_los, uma_los_db(30, 3.5), 1e-9);
  const double mid = campus_pathloss_db(120, 3.5, true);
  EXPECT_GT(mid, uma_los_db(120, 3.5));
  EXPECT_LT(mid, uma_nlos_db(120, 3.5));
  // Far out, the blend saturates at its 45% cap: clutter raises loss but
  // a LoS street never reaches the full NLoS fit.
  const double far = campus_pathloss_db(800, 3.5, true);
  const double expect = 0.55 * uma_los_db(800, 3.5) +
                        0.45 * uma_nlos_db(800, 3.5);
  EXPECT_NEAR(far, expect, 1e-9);
  EXPECT_LT(far, uma_nlos_db(800, 3.5));
  EXPECT_DOUBLE_EQ(campus_pathloss_db(400, 3.5, false), uma_nlos_db(400, 3.5));
}

TEST(ShadowingTest, DeterministicAndZeroMean) {
  const ShadowingField f(123, 6.0, 50.0);
  const ShadowingField g(123, 6.0, 50.0);
  measure::RunningStats stats;
  for (int i = 0; i < 4000; ++i) {
    const geo::Point p{std::fmod(i * 37.7, 5000.0), std::fmod(i * 91.3, 5000.0)};
    EXPECT_DOUBLE_EQ(f.at(p), g.at(p));
    stats.add(f.at(p));
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.5);
  EXPECT_NEAR(stats.stddev(), 6.0, 1.2);
}

TEST(ShadowingTest, NearbyPointsCorrelated) {
  const ShadowingField f(7, 6.0, 50.0);
  // Points 1 m apart should differ far less than sigma; points 500 m apart
  // should be essentially independent.
  measure::RunningStats near_diff, far_diff;
  for (int i = 0; i < 500; ++i) {
    const geo::Point p{i * 13.1, i * 17.9};
    near_diff.add(std::fabs(f.at(p) - f.at({p.x + 1.0, p.y})));
    far_diff.add(std::fabs(f.at(p) - f.at({p.x + 500.0, p.y})));
  }
  EXPECT_LT(near_diff.mean(), 0.35 * far_diff.mean());
}

TEST(ShadowingTest, DifferentSeedsDiffer) {
  const ShadowingField a(1, 6.0, 50.0), b(2, 6.0, 50.0);
  double diff = 0;
  for (int i = 0; i < 100; ++i) {
    diff += std::fabs(a.at({i * 10.0, 0}) - b.at({i * 10.0, 0}));
  }
  EXPECT_GT(diff / 100.0, 1.0);
}

TEST(AntennaTest, BoresightAndRolloff) {
  const SectorAntenna a(90.0);
  EXPECT_DOUBLE_EQ(a.gain_dbi(90.0), 17.0);
  // At the 3 dB point (half the beamwidth off boresight): -3 dB.
  EXPECT_NEAR(a.gain_dbi(90.0 + 32.5), 17.0 - 3.0, 0.01);
  // Behind the antenna: floor at max_gain - front_back (18 dB default).
  EXPECT_NEAR(a.gain_dbi(270.0), 17.0 - 18.0, 0.01);
}

TEST(AntennaTest, GainTowardUsesGeometry) {
  const SectorAntenna east(0.0);
  EXPECT_DOUBLE_EQ(east.gain_toward({0, 0}, {100, 0}), 17.0);
  EXPECT_LT(east.gain_toward({0, 0}, {-100, 0}), 0.0);
}

TEST(McsTest, TableIsSaneAndMonotone) {
  int n = 0;
  const McsEntry* t = mcs_table(&n);
  ASSERT_EQ(n, 28);
  for (int i = 1; i < n; ++i) {
    EXPECT_GT(t[i].efficiency(), t[i - 1].efficiency());
    EXPECT_GT(t[i].min_sinr_db, t[i - 1].min_sinr_db);
  }
  EXPECT_NEAR(t[n - 1].efficiency(), 7.4, 0.01);  // 256-QAM, rate 0.925
}

TEST(McsTest, SelectionByThreshold) {
  EXPECT_EQ(select_mcs(30.0).index, 27);  // the paper's observed MCS
  EXPECT_EQ(select_mcs(-20.0).index, 0);
  const McsEntry mid = select_mcs(10.0);
  EXPECT_GT(mid.index, 5);
  EXPECT_LT(mid.index, 20);
}

TEST(McsTest, CqiRange) {
  EXPECT_EQ(cqi_from_sinr(-10.0), 0);
  EXPECT_EQ(cqi_from_sinr(-5.9), 1);
  EXPECT_EQ(cqi_from_sinr(40.0), 15);
  int last = 0;
  for (double s = -6; s <= 24; s += 0.5) {
    const int cqi = cqi_from_sinr(s);
    EXPECT_GE(cqi, last);
    last = cqi;
  }
}

TEST(McsTest, BitrateMatchesPeakAtHighSinr) {
  const CarrierConfig nr = nr3500();
  EXPECT_NEAR(dl_bitrate_bps(nr, 30.0, 1.0), nr.peak_dl_bitrate_bps(), 1.0);
  EXPECT_NEAR(ul_bitrate_bps(nr, 30.0, 1.0), nr.peak_ul_bitrate_bps(), 1.0);
  // Below the MCS floor the link is unusable.
  EXPECT_DOUBLE_EQ(dl_bitrate_bps(nr, -10.0, 1.0), 0.0);
}

TEST(McsTest, BitrateScalesWithPrbShare) {
  const CarrierConfig nr = nr3500();
  const double full = dl_bitrate_bps(nr, 30.0, 1.0);
  EXPECT_NEAR(dl_bitrate_bps(nr, 30.0, 0.5), full / 2, 1.0);
  EXPECT_DOUBLE_EQ(dl_bitrate_bps(nr, 30.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(dl_bitrate_bps(nr, 30.0, 2.0), full);  // clamped
}

TEST(McsTest, RankAdaptsToSinr) {
  const CarrierConfig nr = nr3500();
  // At mid SINR, rank caps at 2 layers, so rate is well under half peak.
  EXPECT_LT(dl_bitrate_bps(nr, 15.0, 1.0), 0.5 * nr.peak_dl_bitrate_bps());
  EXPECT_GT(dl_bitrate_bps(nr, 15.0, 1.0), 0.1 * nr.peak_dl_bitrate_bps());
}

TEST(McsTest, RsrqMapMonotone) {
  double last = -100;
  for (double s = -15; s <= 35; s += 1) {
    const double q = rsrq_db_from_sinr(s);
    EXPECT_GE(q, last);
    EXPECT_GE(q, -25.0);
    EXPECT_LE(q, -3.0);
    last = q;
  }
}

class LinkBudgetTest : public ::testing::Test {
 protected:
  LinkBudgetTest()
      : campus_(geo::make_campus(sim::Rng(42))), env_(&campus_, 1) {}

  geo::CampusMap campus_;
  RadioEnvironment env_;
};

TEST_F(LinkBudgetTest, RsrpDecaysWithDistance) {
  const CarrierConfig nr = nr3500();
  const TxSite tx{{250, 460}, SectorAntenna(0.0)};
  measure::RunningStats near_stats, far_stats;
  for (int i = 0; i < 30; ++i) {
    near_stats.add(env_.rsrp_dbm(nr, tx, {250 + 50 + i * 0.5, 460}));
    far_stats.add(env_.rsrp_dbm(nr, tx, {250 + 200 + i * 0.5, 460}));
  }
  EXPECT_GT(near_stats.mean(), far_stats.mean() + 10.0);
}

TEST_F(LinkBudgetTest, FiveGCoverageShorterThanFourGAtEqualPower) {
  // Walk a clear (building-free) street away from the site and find where
  // mean RSRP crosses the service floor. At equal transmit power the
  // 3.5 GHz link must die well before the 1.8 GHz one (the paper measures
  // 230 m vs 520 m; our Table-2-first calibration stretches absolute
  // ranges, so this asserts the ratio, not the metres).
  const geo::CampusMap open(geo::Rect{{0, 0}, {3000, 900}}, {});
  const RadioEnvironment env(&open, 5);
  const TxSite tx{{10, 450}, SectorAntenna(0.0)};
  const auto range_of = [&](const CarrierConfig& c) {
    for (double d = 30; d < 2900; d += 10) {
      measure::RunningStats s;
      for (int k = -3; k <= 3; ++k) {
        s.add(env.rsrp_dbm(c, tx, {10 + d, 450 + k * 17.0}));
      }
      if (s.mean() < kServiceRsrpFloorDbm) return d;
    }
    return 2900.0;
  };
  CarrierConfig nr = nr3500();
  CarrierConfig lte = lte1800();
  nr.tx_re_power_dbm = lte.tx_re_power_dbm;  // equalise
  const double nr_range = range_of(nr);
  const double lte_range = range_of(lte);
  EXPECT_LT(nr_range, 0.75 * lte_range);
  // The paper's ratio: 230/520 ~ 0.44.
  EXPECT_NEAR(nr_range / lte_range, 0.44, 0.25);
}

TEST_F(LinkBudgetTest, SinrDropsWithInterference) {
  const CarrierConfig nr = nr3500();
  const TxSite serving{{250, 460}, SectorAntenna(0.0)};
  const geo::Point ue{320, 460};
  const double clean = env_.sinr_db(nr, serving, ue, {});
  const std::vector<TxSite> interferers{{{250, 520}, SectorAntenna(180.0)}};
  const double interfered = env_.sinr_db(nr, serving, ue, interferers, 1.0);
  EXPECT_LT(interfered, clean);
}

TEST_F(LinkBudgetTest, IndoorWeakerThanOutdoor) {
  const CarrierConfig nr = nr3500();
  const geo::Building& b = campus_.buildings().front();
  const geo::Point indoor = b.footprint.center();
  const geo::Point outdoor{indoor.x, b.footprint.min.y - 3.0};
  const TxSite tx{{indoor.x, b.footprint.min.y - 100.0}, SectorAntenna(90.0)};
  EXPECT_GT(env_.rsrp_dbm(nr, tx, outdoor), env_.rsrp_dbm(nr, tx, indoor));
}

// Property sweep: for any position, 3.5 GHz RSRP from the same site never
// beats 1.8 GHz by more than the shadowing decorrelation allows.
class BandGapPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BandGapPropertyTest, HigherBandHasHigherLoss) {
  const geo::CampusMap campus = geo::make_campus(sim::Rng(42));
  const RadioEnvironment env(&campus, 99);
  sim::Rng rng(GetParam());
  const TxSite tx{{250, 460}, SectorAntenna(rng.uniform(0, 360))};
  CarrierConfig lte = lte1800();
  CarrierConfig nr = nr3500();
  // Equalise the calibration constants so only propagation differs.
  nr.tx_re_power_dbm = lte.tx_re_power_dbm;
  measure::RunningStats gap;
  for (int i = 0; i < 200; ++i) {
    const geo::Point p = campus.random_point(rng);
    gap.add(env.rsrp_dbm(lte, tx, p) - env.rsrp_dbm(nr, tx, p));
  }
  // On average the 3.5 GHz link is weaker (more path + penetration loss).
  EXPECT_GT(gap.mean(), 3.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BandGapPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace fiveg::radio

// Cross-module property tests: invariants that must hold for any seed or
// parameter draw — congestion-window sanity under chaotic loss, packet
// conservation with outages, monotonicity of the radio maps, energy
// monotonicity, and hand-off legality.
#include <gtest/gtest.h>

#include <cmath>

#include "app/iperf.h"
#include "energy/rrc_power_machine.h"
#include "energy/traffic_trace.h"
#include "geo/campus.h"
#include "geo/route.h"
#include "net/path.h"
#include "net/udp.h"
#include "radio/mcs.h"
#include "ran/deployment.h"
#include "ran/handoff.h"
#include "sim/simulator.h"
#include "tcp/congestion_control.h"
#include "tcp/tcp_receiver.h"
#include "tcp/tcp_sender.h"

namespace fiveg {
namespace {

// ---------- Geometry: spatial index vs the brute-force scans ----------

// The spatial index (and the memos in front of it) must reproduce the
// original O(n) scans bit-for-bit on every query, for any campus. These
// are the reference scans the index replaced.
bool brute_has_los(const std::vector<geo::Building>& bs,
                   const geo::Segment& s) {
  for (const geo::Building& b : bs) {
    if (b.footprint.intersects(s)) return false;
  }
  return true;
}

double brute_penetration_db(const std::vector<geo::Building>& bs,
                            const geo::Segment& s, double freq_ghz) {
  double total = 0.0;
  for (const geo::Building& b : bs) total += b.penetration_db(s, freq_ghz);
  return total;
}

const geo::Building* brute_containing(const std::vector<geo::Building>& bs,
                                      const geo::Point& p) {
  for (const geo::Building& b : bs) {
    if (b.contains(p)) return &b;
  }
  return nullptr;
}

double brute_o2i_db(const std::vector<geo::Building>& bs, const geo::Point& p,
                    double freq_ghz) {
  const geo::Building* b = brute_containing(bs, p);
  if (b == nullptr) return 0.0;
  const geo::Rect& f = b->footprint;
  const double depth = std::min(std::min(p.x - f.min.x, f.max.x - p.x),
                                std::min(p.y - f.min.y, f.max.y - p.y));
  return geo::wall_loss_db(b->material, freq_ghz) + 0.3 * depth;
}

std::vector<geo::Building> random_buildings(sim::Rng& rng, int count,
                                            const geo::Rect& bounds) {
  std::vector<geo::Building> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double w = rng.uniform(4.0, 120.0);
    const double h = rng.uniform(4.0, 120.0);
    // Some footprints extend past the bounds: the grid must widen for them.
    const double x = rng.uniform(bounds.min.x - 30.0, bounds.max.x - w + 30.0);
    const double y = rng.uniform(bounds.min.y - 30.0, bounds.max.y - h + 30.0);
    geo::Building b;
    b.footprint = {{x, y}, {x + w, y + h}};
    b.material = static_cast<geo::Material>(rng.uniform_int(0, 3));
    out.push_back(std::move(b));
  }
  return out;
}

// One campus size per mask regime: small maps use per-cell bitmasks, maps
// with more than 64 buildings fall back to the CSR item lists.
class CampusIndexProperty : public ::testing::TestWithParam<int> {};

TEST_P(CampusIndexProperty, MatchesBruteForceBitForBit) {
  const geo::Rect bounds{{0.0, 0.0}, {500.0, 920.0}};
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::Rng rng(seed * 7919);
    auto buildings = random_buildings(rng, GetParam(), bounds);
    const geo::CampusMap campus(bounds, std::vector<geo::Building>(buildings));

    std::vector<geo::Point> pts;
    for (int i = 0; i < 60; ++i) {
      pts.push_back({rng.uniform(bounds.min.x - 40.0, bounds.max.x + 40.0),
                     rng.uniform(bounds.min.y - 40.0, bounds.max.y + 40.0)});
    }
    // Boundary-touching points: footprint corners and edge midpoints are
    // exactly representable, so queries land precisely on the boundary.
    for (std::size_t i = 0; i < buildings.size(); i += 7) {
      const geo::Rect& f = buildings[i].footprint;
      pts.push_back(f.min);
      pts.push_back(f.max);
      pts.push_back({f.min.x, f.max.y});
      pts.push_back({(f.min.x + f.max.x) / 2.0, f.min.y});
    }

    std::vector<geo::Segment> segs;
    for (int i = 0; i + 1 < static_cast<int>(pts.size()); ++i) {
      segs.push_back({pts[static_cast<std::size_t>(i)],
                      pts[static_cast<std::size_t>(i + 1)]});
    }
    for (std::size_t i = 0; i < pts.size(); i += 5) {
      segs.push_back({pts[i], pts[i]});  // zero-length paths
    }

    // Two rounds: the first may miss the memos, the second must hit them —
    // both must agree with the brute-force scan exactly.
    for (int round = 0; round < 2; ++round) {
      for (const geo::Point& p : pts) {
        EXPECT_EQ(campus.is_indoor(p), brute_containing(buildings, p) != nullptr);
        const geo::Building* mine = campus.containing_building(p);
        const geo::Building* ref = brute_containing(buildings, p);
        ASSERT_EQ(mine == nullptr, ref == nullptr);
        if (mine != nullptr) {
          // Same building, by construction order (first match wins).
          EXPECT_EQ(mine->footprint.min.x, ref->footprint.min.x);
          EXPECT_EQ(mine->footprint.min.y, ref->footprint.min.y);
        }
        for (const double f : {1.8, 3.5}) {
          EXPECT_EQ(campus.o2i_loss_db(p, f), brute_o2i_db(buildings, p, f));
        }
      }
      for (const geo::Segment& s : segs) {
        EXPECT_EQ(campus.has_los(s), brute_has_los(buildings, s));
        for (const double f : {1.8, 3.5}) {
          EXPECT_EQ(campus.penetration_db(s, f),
                    brute_penetration_db(buildings, s, f));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MaskAndCsrRegimes, CampusIndexProperty,
                         ::testing::Values(1, 12, 64, 150));


using sim::from_millis;
using sim::kSecond;

// ---------- TCP: cwnd sanity under chaotic ACK/loss sequences ----------

struct CcChaosParam {
  tcp::CcAlgo algo;
  std::uint64_t seed;
};

class CcChaosTest : public ::testing::TestWithParam<CcChaosParam> {};

TEST_P(CcChaosTest, CwndStaysFiniteAndPositive) {
  const auto cc = tcp::make_congestion_control(GetParam().algo, 1460);
  sim::Rng rng(GetParam().seed);
  sim::Time now = 0;
  std::uint64_t delivered = 0;
  for (int i = 0; i < 5000; ++i) {
    now += from_millis(rng.uniform(0.1, 30));
    const double roll = rng.uniform(0, 1);
    if (roll < 0.75) {
      tcp::AckEvent e;
      e.now = now;
      e.rtt = from_millis(rng.uniform(5, 200));
      e.min_rtt = from_millis(5);
      e.acked_bytes = static_cast<std::uint64_t>(rng.uniform_int(1, 4 * 1460));
      delivered += e.acked_bytes;
      e.delivered_bytes = delivered;
      e.bytes_in_flight =
          static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 22));
      e.delivery_rate_bps = rng.uniform(1e5, 1e9);
      e.app_limited = rng.bernoulli(0.2);
      cc->on_ack(e);
    } else if (roll < 0.92) {
      cc->on_loss(now, static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 22)));
    } else {
      cc->on_timeout(now);
    }
    const double cwnd = cc->cwnd_bytes();
    ASSERT_TRUE(std::isfinite(cwnd)) << cc->name() << " step " << i;
    ASSERT_GE(cwnd, 1460.0) << cc->name() << " step " << i;
    ASSERT_LT(cwnd, 1e12) << cc->name() << " step " << i;
    const double pacing = cc->pacing_rate_bps();
    ASSERT_TRUE(std::isfinite(pacing)) << cc->name();
    ASSERT_GE(pacing, 0.0) << cc->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgosAndSeeds, CcChaosTest,
    ::testing::Values(CcChaosParam{tcp::CcAlgo::kReno, 1},
                      CcChaosParam{tcp::CcAlgo::kCubic, 2},
                      CcChaosParam{tcp::CcAlgo::kVegas, 3},
                      CcChaosParam{tcp::CcAlgo::kVeno, 4},
                      CcChaosParam{tcp::CcAlgo::kBbr, 5},
                      CcChaosParam{tcp::CcAlgo::kCubic, 6},
                      CcChaosParam{tcp::CcAlgo::kBbr, 7}),
    [](const auto& info) {
      return tcp::to_string(info.param.algo) + "_" +
             std::to_string(info.param.seed);
    });

// ---------- TCP over flapping links: no data corruption, ever ----------

class FlappyLinkTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlappyLinkTest, TransferCompletesExactly) {
  sim::Simulator simr;
  sim::Rng rng(GetParam());
  bool blocked = false;
  std::vector<net::Link::Config> hops(2);
  hops[0].rate_bps = 40e6;
  hops[0].prop_delay = from_millis(10);
  hops[0].queue_bytes = 30 * 1500;
  hops[0].blocked_fn = [&] { return blocked; };
  hops[1].rate_bps = 1e9;
  hops[1].prop_delay = from_millis(5);
  net::PathNetwork path(&simr, hops);
  app::PathFanout fanout(&path);
  app::TcpSession s(&simr, &path, &fanout,
                    tcp::TcpConfig{.algo = tcp::CcAlgo::kCubic});

  bool completed = false;
  const std::uint64_t kBytes = 3'000'000;
  s.sender().send_bytes(kBytes, [&] { completed = true; });
  // Random outages.
  for (int i = 0; i < 12; ++i) {
    simr.schedule_at(from_millis(rng.uniform(0, 20000)),
                     [&blocked] { blocked = !blocked; });
  }
  simr.schedule_at(21 * kSecond, [&blocked] { blocked = false; });
  simr.run_until(120 * kSecond);
  EXPECT_TRUE(completed);
  EXPECT_EQ(s.receiver().bytes_received(), kBytes);
  EXPECT_EQ(s.sender().bytes_in_flight(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlappyLinkTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

// ---------- Radio: monotone maps ----------

class SinrSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SinrSweepTest, BitrateMonotoneInSinr) {
  const radio::CarrierConfig c =
      GetParam() == 0 ? radio::nr3500() : radio::lte1800();
  double last = -1;
  for (double sinr = -12; sinr <= 35; sinr += 0.25) {
    const double rate = radio::dl_bitrate_bps(c, sinr);
    EXPECT_GE(rate, last) << "sinr " << sinr;
    last = rate;
  }
  EXPECT_DOUBLE_EQ(last, c.peak_dl_bitrate_bps());
}

INSTANTIATE_TEST_SUITE_P(Rats, SinrSweepTest, ::testing::Values(0, 1));

// ---------- RAN: hand-off records are always legal ----------

class HandoffLegalityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HandoffLegalityTest, RecordsAreWellFormed) {
  const geo::CampusMap campus =
      geo::make_campus(sim::Rng(GetParam()).fork("campus"));
  const ran::Deployment dep =
      ran::make_deployment(&campus, sim::Rng(GetParam()).fork("dep"));
  sim::Simulator simr;
  ran::MobilityConfig cfg;
  cfg.speed_mps = 2.0;
  ran::HandoffEngine engine(&simr, &dep, cfg, sim::Rng(GetParam()));
  engine.start(geo::make_survey_route(campus, 110.0));
  simr.run_until(25 * sim::kMinute);

  sim::Time last_end = 0;
  for (const ran::HandoffRecord& r : engine.records()) {
    // Latency within physical bounds of the signalling model.
    EXPECT_GT(r.latency, from_millis(10));
    EXPECT_LT(r.latency, from_millis(250));
    // No overlapping hand-offs.
    EXPECT_GE(r.trigger_at, last_end);
    last_end = r.trigger_at + r.latency;
    // PCIs belong to the right RATs for the type.
    const bool to_nr = r.type == ran::HandoffType::k5G5G ||
                       r.type == ran::HandoffType::k4G5G;
    if (to_nr) {
      EXPECT_GE(r.to_pci, 60);
      EXPECT_LE(r.to_pci, 80);
    } else {
      EXPECT_GE(r.to_pci, 200);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HandoffLegalityTest,
                         ::testing::Values(42u, 43u, 44u));

// ---------- Energy: monotonicity ----------

class EnergyMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(EnergyMonotoneTest, MoreBytesNeverCostLess) {
  const energy::RrcPowerMachine machine;
  const auto model = static_cast<energy::RadioModel>(GetParam());
  double last = 0;
  for (const std::uint64_t mb : {10ull, 50ull, 200ull, 800ull}) {
    const auto r =
        machine.replay(energy::file_transfer_trace(mb * 1'000'000), model);
    EXPECT_GT(r.radio_joules, last);
    last = r.radio_joules;
  }
}

INSTANTIATE_TEST_SUITE_P(Models, EnergyMonotoneTest,
                         ::testing::Values(0, 1, 2, 3));

// ---------- Geo: route samples lie on the route ----------

class RouteSampleTest : public ::testing::TestWithParam<double> {};

TEST_P(RouteSampleTest, SamplesAreOnSegments) {
  const geo::CampusMap campus = geo::make_campus(sim::Rng(42));
  const geo::Route route = geo::make_survey_route(campus, GetParam());
  double walked = 0.0;
  geo::Point prev = route.position_at(0);
  for (const geo::Point& p : route.samples(25.0)) {
    EXPECT_TRUE(campus.bounds().contains(p));
    walked += geo::distance(prev, p);
    prev = p;
  }
  // Walking sample-to-sample cannot exceed the route length (+ rounding).
  EXPECT_LE(walked, route.length_m() + 1.0);
  EXPECT_GT(walked, 0.9 * route.length_m());
}

INSTANTIATE_TEST_SUITE_P(LaneSpacings, RouteSampleTest,
                         ::testing::Values(40.0, 60.0, 90.0, 140.0));

// ---------- Net: conservation with cross traffic and outages ----------

class ChaosConservationTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ChaosConservationTest, NoPacketIsCreatedOrLostSilently) {
  sim::Simulator simr;
  sim::Rng rng(GetParam());
  bool blocked = false;
  std::vector<net::Link::Config> hops(3);
  for (auto& h : hops) {
    h.rate_bps = rng.uniform(20e6, 200e6);
    h.prop_delay = from_millis(rng.uniform(0.5, 10));
    h.queue_bytes = static_cast<std::uint64_t>(rng.uniform_int(8, 64)) * 1500;
  }
  hops[1].blocked_fn = [&] { return blocked; };
  net::PathNetwork path(&simr, hops);
  net::UdpSink sink(&simr, 1);
  path.attach_b(&sink);
  net::UdpSource src(&simr, {1, 80e6, 1500},
                     [&](net::Packet p) { path.send_a_to_b(std::move(p)); });
  src.start(3 * kSecond);
  for (int i = 0; i < 6; ++i) {
    simr.schedule_at(from_millis(rng.uniform(0, 3000)),
                     [&blocked] { blocked = !blocked; });
  }
  simr.schedule_at(3 * kSecond + 1, [&blocked] { blocked = false; });
  simr.run();
  EXPECT_EQ(src.packets_sent(),
            sink.packets_received() + path.total_drops());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosConservationTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace fiveg

// Tests for the columnar campaign result store (core/store.h): frame
// parsing and checksum rejection, torn-tail semantics (valid prefix kept,
// tail sealed on writer reopen), record round-trips including metric
// columns, key-based dedup in canonical_view, writer idempotence across
// reopen, and directory loads.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/runner.h"
#include "core/store.h"
#include "obs/metrics.h"
#include "sim/rng.h"

namespace fiveg::core {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fiveg_store_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string shard(const std::string& stem) const {
    return (dir_ / (stem + std::string(kStoreFileSuffix))).string();
  }

  fs::path dir_;
};

// A result with every column kind populated, varying by (name, seed).
StoreRecord make_record(const std::string& name, std::uint64_t seed,
                        std::vector<std::pair<std::string, std::string>>
                            labels = {}) {
  StoreRecord rec;
  rec.result.name = name;
  rec.result.seed = seed;
  rec.result.status = RunStatus::kOk;
  rec.result.paper_ref = "Figure 7";
  rec.result.description = "store test fixture";
  rec.result.text = "text for " + name + "\n";
  MetricSeries series;
  series.name = "tput_mbps";
  series.unit = "Mbps";
  sim::Rng rng(seed);
  for (int i = 0; i < 8; ++i) {
    series.points.push_back(
        {static_cast<double>(i), rng.uniform(0.0, 1000.0)});
  }
  rec.result.metrics.push_back(std::move(series));
  obs::MetricsRegistry reg;
  reg.counter("pkts").add(seed % 1000 + 1);
  reg.gauge("depth").set(static_cast<double>(seed % 7));
  for (int i = 0; i < 100; ++i) {
    reg.histogram("lat_us").observe(rng.lognormal(3.0, 1.0));
    reg.digest("owd_ms").observe(rng.normal(20.0, 5.0));
  }
  rec.result.counters = reg.snapshot(obs::MetricClock::kSim);
  rec.labels = std::move(labels);
  return rec;
}

// Byte-level equality proxy: two records are identical iff their v4 JSON
// projections are (write_json is the exhaustive serializer of the
// deterministic core).
std::string json_of(const StoreRecord& rec) {
  RunSummary s;
  s.results.push_back(rec.result);
  std::ostringstream os;
  write_json(s, os, /*include_timing=*/false);
  return os.str();
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST_F(StoreTest, WriteThenLoadRoundTripsEveryColumn) {
  const std::string path = shard("s");
  {
    StoreWriter w(path);
    ASSERT_TRUE(w.ok()) << w.error();
    ASSERT_TRUE(w.append(make_record("fig7_throughput", 42)));
    ASSERT_TRUE(w.append(
        make_record("fig9_latency", 43, {{"qdisc", "codel"}})));
    EXPECT_EQ(w.appended(), 2u);
  }
  StoreLoad load = load_store_file(path);
  ASSERT_TRUE(load.ok()) << load.error;
  EXPECT_FALSE(load.truncated_tail);
  EXPECT_EQ(load.dropped_records, 0u);
  ASSERT_EQ(load.records.size(), 2u);
  EXPECT_EQ(json_of(load.records[0]),
            json_of(make_record("fig7_throughput", 42)));
  EXPECT_EQ(load.records[1].labels,
            (std::vector<std::pair<std::string, std::string>>{
                {"qdisc", "codel"}}));
  EXPECT_EQ(json_of(load.records[1]),
            json_of(make_record("fig9_latency", 43, {{"qdisc", "codel"}})));
}

TEST_F(StoreTest, AppendDeduplicatesByKey) {
  const std::string path = shard("s");
  StoreWriter w(path);
  ASSERT_TRUE(w.append(make_record("fig7", 42)));
  ASSERT_TRUE(w.append(make_record("fig7", 42)));  // same key: skipped
  ASSERT_TRUE(w.append(make_record("fig7", 43)));  // new seed: kept
  ASSERT_TRUE(w.append(make_record("fig7", 42, {{"qdisc", "red"}})));
  EXPECT_EQ(w.appended(), 3u);
  EXPECT_TRUE(w.contains(make_record("fig7", 42).key()));
  EXPECT_FALSE(w.contains(make_record("fig8", 42).key()));
}

TEST_F(StoreTest, ReopenSkipsPresentKeysAndReusesDictionary) {
  const std::string path = shard("s");
  std::size_t size_after_first = 0;
  {
    StoreWriter w(path);
    ASSERT_TRUE(w.append(make_record("fig7", 42)));
    size_after_first = read_file(path).size();
  }
  {
    StoreWriter w(path);  // reopen: present set rebuilt from disk
    ASSERT_TRUE(w.ok()) << w.error();
    ASSERT_TRUE(w.append(make_record("fig7", 42)));  // dup: no bytes
    EXPECT_EQ(w.appended(), 0u);
    EXPECT_EQ(read_file(path).size(), size_after_first);
    // A second record reuses already-interned strings: its dictionary
    // delta must be smaller than the first record's full vocabulary.
    ASSERT_TRUE(w.append(make_record("fig7", 43)));
  }
  const std::size_t grown = read_file(path).size();
  EXPECT_LT(grown - size_after_first, size_after_first);
  StoreLoad load = load_store_file(path);
  ASSERT_TRUE(load.ok());
  ASSERT_EQ(load.records.size(), 2u);
  EXPECT_EQ(json_of(load.records[1]), json_of(make_record("fig7", 43)));
}

TEST_F(StoreTest, TornTailKeepsValidPrefixAndIsSealedOnReopen) {
  const std::string path = shard("s");
  {
    StoreWriter w(path);
    ASSERT_TRUE(w.append(make_record("fig7", 42)));
    ASSERT_TRUE(w.append(make_record("fig8", 42)));
  }
  const std::string intact = read_file(path);
  // Simulate a mid-append SIGKILL: a torn half-frame after the prefix.
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f << "FGRS\x01R\xff\xff";  // plausible header start, then nothing
  }
  StoreLoad load = load_store_file(path);
  ASSERT_TRUE(load.ok());
  EXPECT_TRUE(load.truncated_tail);
  EXPECT_EQ(load.valid_bytes, intact.size());
  ASSERT_EQ(load.records.size(), 2u);

  // Reopening the writer seals the tail (ftruncate to the valid prefix);
  // appends continue from there.
  {
    StoreWriter w(path);
    ASSERT_TRUE(w.ok()) << w.error();
    EXPECT_EQ(read_file(path).size(), intact.size());
    ASSERT_TRUE(w.append(make_record("fig9", 42)));
  }
  StoreLoad again = load_store_file(path);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.truncated_tail);
  EXPECT_EQ(again.records.size(), 3u);
}

TEST_F(StoreTest, CorruptedPayloadStopsParseAtChecksum) {
  const std::string path = shard("s");
  {
    StoreWriter w(path);
    ASSERT_TRUE(w.append(make_record("fig7", 42)));
    ASSERT_TRUE(w.append(make_record("fig8", 42)));
  }
  std::string bytes = read_file(path);
  // Flip one byte in the middle: the enclosing frame's checksum fails,
  // so that frame and everything after it is a torn tail — the valid
  // prefix before it survives.
  bytes[bytes.size() / 2] ^= 0x40;
  StoreLoad load = parse_store(bytes);
  ASSERT_TRUE(load.ok());
  EXPECT_TRUE(load.truncated_tail);
  EXPECT_LT(load.records.size(), 2u);
  EXPECT_LT(load.valid_bytes, bytes.size());
}

TEST_F(StoreTest, CanonicalViewDeduplicatesLastWinsAndSorts) {
  StoreRecord a = make_record("fig7", 42);
  StoreRecord a2 = make_record("fig7", 42);
  a2.result.text = "superseding re-run\n";
  StoreRecord b = make_record("fig2", 42);
  StoreRecord c = make_record("fig7", 41);
  // Deliberately unsorted, duplicate key (a, a2) with a2 later.
  std::vector<StoreRecord> records;
  records.push_back(a);
  records.push_back(c);
  records.push_back(b);
  records.push_back(a2);
  const std::vector<StoreRecord> view = canonical_view(std::move(records));
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0].result.name, "fig2");
  EXPECT_EQ(view[1].result.seed, 41u);
  EXPECT_EQ(view[2].result.seed, 42u);
  EXPECT_EQ(view[2].result.text, "superseding re-run\n");  // last wins
}

TEST_F(StoreTest, DirectoryLoadMergesShardsAndIgnoresOtherFiles) {
  {
    StoreWriter w0(shard("shard-0-of-2"));
    ASSERT_TRUE(w0.append(make_record("fig7", 42)));
    StoreWriter w1(shard("shard-1-of-2"));
    ASSERT_TRUE(w1.append(make_record("fig8", 42)));
  }
  {
    std::ofstream junk(dir_ / "notes.txt");
    junk << "not a shard\n";
  }
  StoreDirLoad load = load_store_dir(dir_.string());
  ASSERT_TRUE(load.ok()) << load.error;
  EXPECT_EQ(load.files.size(), 2u);
  EXPECT_EQ(load.torn_files, 0u);
  ASSERT_EQ(load.records.size(), 2u);

  // An empty directory is a valid empty store; a missing one is an error.
  const fs::path empty = dir_ / "empty";
  fs::create_directories(empty);
  StoreDirLoad none = load_store_dir(empty.string());
  EXPECT_TRUE(none.ok());
  EXPECT_TRUE(none.records.empty());
  StoreDirLoad missing = load_store_dir((dir_ / "nope").string());
  EXPECT_FALSE(missing.ok());
}

TEST_F(StoreTest, GarbageFileParsesToEmptyTornStore) {
  const std::string path = shard("s");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a store file at all";
  }
  StoreLoad load = load_store_file(path);
  ASSERT_TRUE(load.ok());
  EXPECT_TRUE(load.truncated_tail);
  EXPECT_EQ(load.valid_bytes, 0u);
  EXPECT_TRUE(load.records.empty());
}

}  // namespace
}  // namespace fiveg::core

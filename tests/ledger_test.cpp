// Tests for the campaign run ledger (fiveg-ledger/v1): full-fidelity
// round-trips (including >2^53 seeds and awkward doubles), torn-tail and
// corrupt-record recovery, the resume set's seed/status filtering, the
// writer's torn-tail sealing, and the Runner-level guarantee that resumed
// experiments are spliced in without re-executing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "core/ledger.h"
#include "core/runner.h"
#include "sim/rng.h"

namespace fiveg::core {
namespace {

// A richly-populated synthetic result exercising every serialized field:
// a full-range seed, non-representable-in-float doubles, histogram bins,
// digest neg_bins/zero, multi-point series and multi-line text.
ExperimentResult make_result(const std::string& name) {
  ExperimentResult r;
  r.name = name;
  r.paper_ref = "Figure 9";
  r.description = "synthetic \"quoted\" result\nwith control bytes\t";
  r.status = RunStatus::kOk;
  r.seed = 0xfedcba9876543210ULL;  // far beyond 2^53
  r.wall_ms = 123.456;
  r.peak_rss_kb = 54321;
  r.text = "== table ==\na | b\n0.1 | 2\n\n";

  MetricSeries series;
  series.name = "sweep";
  series.unit = "Mbps";
  series.points.push_back({0.1, 1.0 / 3.0});
  series.points.push_back({-2.5, 1e-17});
  r.metrics.push_back(series);

  obs::MetricSnapshot counter;
  counter.name = "sim.events";
  counter.kind = obs::MetricSnapshot::Kind::kCounter;
  counter.value = 1234567.0;
  r.counters.push_back(counter);

  obs::MetricSnapshot hist;
  hist.name = "tcp.rtt_ms";
  hist.kind = obs::MetricSnapshot::Kind::kHistogram;
  hist.count = 42;
  hist.sum = 123.0625;
  hist.min = 0.5;
  hist.max = 30.0;
  hist.value = hist.sum / 42.0;
  hist.p50 = 2.0;
  hist.p99 = 16.0;
  hist.bins = {{-3, 7}, {0, 30}, {4, 5}};
  r.counters.push_back(hist);

  obs::MetricSnapshot digest;
  digest.name = "energy.mw";
  digest.kind = obs::MetricSnapshot::Kind::kDigest;
  digest.count = 9;
  digest.sum = -4.5;
  digest.min = -2.0;
  digest.max = 1.0;
  digest.value = -0.5;
  digest.p05 = -1.9;
  digest.p95 = 0.9;
  digest.bins = {{10, 4}};
  digest.neg_bins = {{8, 4}};
  digest.zero_count = 1;
  r.counters.push_back(digest);

  obs::MetricSnapshot wall;
  wall.name = "prof.phase_ms.simulate";
  wall.kind = obs::MetricSnapshot::Kind::kHistogram;
  wall.clock = obs::MetricClock::kWall;
  wall.count = 1;
  wall.sum = 98.25;
  wall.min = 98.25;
  wall.max = 98.25;
  wall.value = 98.25;
  r.profile.push_back(wall);
  return r;
}

std::string temp_path(const char* name) {
  return testing::TempDir() + "fiveg_ledger_test_" + name;
}

TEST(LedgerTest, LineRoundTripsByteIdentically) {
  const ExperimentResult original = make_result("round_trip");
  const std::string line = ledger_line(original);
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1) << "record must be one line";

  const LedgerLoad load = parse_ledger(line);
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.dropped_lines, 0u);
  EXPECT_EQ(load.corrupt_records, 0u);
  EXPECT_FALSE(load.truncated_tail);

  const ExperimentResult& restored = load.records[0];
  EXPECT_EQ(restored.seed, original.seed);  // full 64-bit fidelity
  EXPECT_EQ(restored.peak_rss_kb, original.peak_rss_kb);
  // The re-serialized line is byte-identical: print -> parse -> print is a
  // fixed point, which is what makes resume output deterministic.
  EXPECT_EQ(ledger_line(restored), line);

  // And the campaign JSON built from the restored result matches the one
  // built from the original, with and without timing.
  RunSummary a;
  a.results.push_back(original);
  RunSummary b;
  b.results.push_back(restored);
  for (const bool timing : {false, true}) {
    std::ostringstream ja, jb;
    write_json(a, ja, timing);
    write_json(b, jb, timing);
    EXPECT_EQ(ja.str(), jb.str()) << "include_timing=" << timing;
  }
}

TEST(LedgerTest, FailedRunRoundTripsStatusAndError) {
  ExperimentResult r = make_result("exploded");
  r.status = RunStatus::kFailed;
  r.error = "deliberate failure";
  const LedgerLoad load = parse_ledger(ledger_line(r));
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.records[0].status, RunStatus::kFailed);
  EXPECT_EQ(load.records[0].error, "deliberate failure");
}

TEST(LedgerTest, TornFinalLineIsToleratedNotCounted) {
  const std::string a = ledger_line(make_result("a"));
  const std::string b = ledger_line(make_result("b"));
  const std::string torn = a + b + a.substr(0, a.size() / 2);
  const LedgerLoad load = parse_ledger(torn);
  EXPECT_EQ(load.records.size(), 2u);
  EXPECT_TRUE(load.truncated_tail);
  EXPECT_EQ(load.dropped_lines, 0u);
  EXPECT_EQ(load.corrupt_records, 0u);
}

TEST(LedgerTest, CorruptRecordIsDroppedByChecksum) {
  std::string line = ledger_line(make_result("tampered"));
  // Flip payload bytes without breaking JSON: the checksum, not the
  // parser, must catch this.
  const std::size_t at = line.find("== table ==");
  ASSERT_NE(at, std::string::npos);
  line[at] = '#';
  const LedgerLoad load = parse_ledger(line + ledger_line(make_result("ok")));
  EXPECT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.records[0].name, "ok");
  EXPECT_EQ(load.corrupt_records, 1u);
}

TEST(LedgerTest, ForeignLinesAreDroppedNotFatal) {
  const std::string text = "not json at all\n" +
                           std::string("{\"schema\":\"something-else/v9\"}\n") +
                           ledger_line(make_result("good"));
  const LedgerLoad load = parse_ledger(text);
  EXPECT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.dropped_lines, 2u);
}

TEST(LedgerTest, CompletedRunsFiltersStatusAndSeed) {
  const std::uint64_t base = 42;
  ExperimentResult ok = make_result("alpha");
  ok.seed = Runner::fork_seed(base, "alpha");
  ExperimentResult failed = make_result("beta");
  failed.seed = Runner::fork_seed(base, "beta");
  failed.status = RunStatus::kFailed;
  failed.error = "boom";
  ExperimentResult stale = make_result("gamma");
  stale.seed = Runner::fork_seed(base + 1, "gamma");  // other campaign seed
  // A re-run of alpha with different text: the later record must win.
  ExperimentResult rerun = ok;
  rerun.text = "== fresher table ==\n";

  const std::string text = ledger_line(ok) + ledger_line(failed) +
                           ledger_line(stale) + ledger_line(rerun);
  const LedgerLoad load = parse_ledger(text);
  ASSERT_EQ(load.records.size(), 4u);
  const auto completed = completed_runs(load, base);
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed.count("alpha"), 1u);
  EXPECT_EQ(completed.at("alpha").text, "== fresher table ==\n");
}

TEST(LedgerTest, WriterAppendsAndSealsTornTail) {
  const std::string path = temp_path("writer.jsonl");
  std::remove(path.c_str());
  // Pre-seed the file with a complete record and a torn tail.
  {
    std::ofstream f(path, std::ios::binary);
    const std::string line = ledger_line(make_result("pre"));
    f << line << line.substr(0, line.size() / 3);
  }
  {
    LedgerWriter writer(path);
    ASSERT_TRUE(writer.ok()) << writer.error();
    EXPECT_TRUE(writer.append(make_result("post")));
  }
  const LedgerLoad load = load_ledger(path);
  ASSERT_EQ(load.records.size(), 2u);
  EXPECT_EQ(load.records[0].name, "pre");
  EXPECT_EQ(load.records[1].name, "post");
  // The sealed torn line now ends in '\n', so it counts as a dropped
  // interior line rather than a truncated tail.
  EXPECT_EQ(load.dropped_lines, 1u);
  EXPECT_FALSE(load.truncated_tail);
  std::remove(path.c_str());
}

// Side-effect counter proving resumed experiments never re-execute.
std::atomic<int> g_executions{0};

class CountingExperiment final : public Experiment {
 public:
  explicit CountingExperiment(int index) : index_(index) {}
  std::string name() const override {
    return "counting_" + std::to_string(index_);
  }
  std::string paper_ref() const override { return "Figure 0"; }
  std::string description() const override { return "counts executions"; }
  void run(const ExperimentContext& ctx) override {
    g_executions.fetch_add(1);
    sim::Rng rng = sim::Rng(ctx.seed).fork("counting");
    *ctx.out << "counting " << index_ << ": " << rng.uniform(0, 1) << "\n\n";
    ctx.metric("draw", rng.uniform(0, 1));
  }

 private:
  int index_;
};

ExperimentRegistry make_counting_registry(int n) {
  ExperimentRegistry reg;
  for (int i = 0; i < n; ++i) {
    reg.add([i] { return std::make_unique<CountingExperiment>(i); });
  }
  return reg;
}

TEST(LedgerTest, RunnerResumeSplicesWithoutReExecuting) {
  const std::string path = temp_path("resume.jsonl");
  std::remove(path.c_str());
  ExperimentRegistry reg = make_counting_registry(6);

  RunnerOptions opt;
  opt.jobs = 2;
  opt.seed = 42;
  opt.ledger_path = path;
  g_executions = 0;
  const RunSummary full = Runner(opt, &reg).run();
  EXPECT_EQ(g_executions.load(), 6);
  ASSERT_TRUE(full.all_ok());

  // Keep only half the ledger, as after a kill.
  const LedgerLoad all = load_ledger(path);
  ASSERT_EQ(all.records.size(), 6u);
  std::remove(path.c_str());
  {
    LedgerWriter writer(path);
    for (std::size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(writer.append(all.records[i]));
    }
  }

  RunnerOptions resume_opt = opt;
  resume_opt.resume = std::make_shared<
      const std::map<std::string, ExperimentResult>>(
      completed_runs(load_ledger(path), opt.seed));
  ASSERT_EQ(resume_opt.resume->size(), 3u);
  g_executions = 0;
  const RunSummary resumed = Runner(resume_opt, &reg).run();
  EXPECT_EQ(g_executions.load(), 3);  // only the missing half ran

  std::ostringstream ja, jb;
  write_json(full, ja, /*include_timing=*/false);
  write_json(resumed, jb, /*include_timing=*/false);
  EXPECT_EQ(ja.str(), jb.str());

  // The resumed campaign appended only the re-run half to the ledger —
  // everything now present and valid.
  const LedgerLoad after = load_ledger(path);
  EXPECT_EQ(after.records.size(), 6u);
  EXPECT_EQ(completed_runs(after, opt.seed).size(), 6u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fiveg::core

// Tests for the parallel campaign runner: parallel/serial byte-identity,
// deterministic seed forking, timeout abandonment and failure capture.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/runner.h"
#include "obs/json_check.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "sim/rng.h"

namespace fiveg::core {
namespace {

// A deterministic synthetic experiment: draws from the forked seed, prints
// a small table and records metrics. `index` varies the name/work.
class FakeExperiment final : public Experiment {
 public:
  explicit FakeExperiment(int index) : index_(index) {}

  std::string name() const override {
    return "fake_" + std::to_string(index_);
  }
  std::string paper_ref() const override { return "Figure 0"; }
  std::string description() const override { return "synthetic workload"; }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    sim::Rng rng = sim::Rng(ctx.seed).fork("fake");
    double acc = 0;
    for (int i = 0; i < 1000 + 100 * index_; ++i) acc += rng.uniform(0, 1);
    *ctx.out << "fake table " << index_ << ": acc=" << acc
             << " seed=" << ctx.seed << "\n\n";
    ctx.metric("acc", acc, "units");
    ctx.metric_point("sweep", index_, acc / 2);
    // Exercise the runner-installed obs scope like a real experiment would.
    if (auto* m = obs::metrics()) m->counter("fake.runs").add();
    if (auto* t = obs::tracer()) {
      t->instant(1000 * index_, "fake.tick", "sim");
    }
  }

 private:
  int index_;
};

class ThrowingExperiment final : public Experiment {
 public:
  std::string name() const override { return "always_throws"; }
  std::string paper_ref() const override { return "n/a"; }
  std::string description() const override { return "throws"; }
  void run(const ExperimentContext&) override {
    throw std::runtime_error("deliberate failure");
  }
};

class HangingExperiment final : public Experiment {
 public:
  std::string name() const override { return "hangs"; }
  std::string paper_ref() const override { return "n/a"; }
  std::string description() const override { return "sleeps past timeout"; }
  void run(const ExperimentContext&) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
  }
};

ExperimentRegistry make_fake_registry(int n) {
  ExperimentRegistry reg;
  for (int i = 0; i < n; ++i) {
    reg.add([i] { return std::make_unique<FakeExperiment>(i); });
  }
  return reg;
}

TEST(RunnerTest, ParallelIsByteIdenticalToSerial) {
  ExperimentRegistry reg = make_fake_registry(12);
  RunnerOptions serial;
  serial.jobs = 1;
  serial.seed = 42;
  RunnerOptions parallel = serial;
  parallel.jobs = 8;

  const RunSummary a = Runner(serial, &reg).run();
  const RunSummary b = Runner(parallel, &reg).run();

  std::ostringstream text_a, text_b, json_a, json_b;
  write_text(a, text_a);
  write_text(b, text_b);
  write_json(a, json_a, /*include_timing=*/false);
  write_json(b, json_b, /*include_timing=*/false);
  EXPECT_EQ(text_a.str(), text_b.str());
  EXPECT_EQ(json_a.str(), json_b.str());
  EXPECT_TRUE(a.all_ok());
}

TEST(RunnerTest, ForkSeedMatchesRngForkSemantics) {
  EXPECT_EQ(Runner::fork_seed(42, "fig7_throughput"),
            sim::Rng(42).fork("fig7_throughput").seed());
  // Stable across calls, distinct across names and base seeds.
  EXPECT_EQ(Runner::fork_seed(42, "a"), Runner::fork_seed(42, "a"));
  EXPECT_NE(Runner::fork_seed(42, "a"), Runner::fork_seed(42, "b"));
  EXPECT_NE(Runner::fork_seed(42, "a"), Runner::fork_seed(43, "a"));
}

TEST(RunnerTest, EachExperimentRunsOnItsOwnForkedSeed) {
  ExperimentRegistry reg = make_fake_registry(3);
  RunnerOptions opt;
  opt.seed = 7;
  const RunSummary s = Runner(opt, &reg).run();
  ASSERT_EQ(s.results.size(), 3u);
  for (const ExperimentResult& r : s.results) {
    EXPECT_EQ(r.seed, Runner::fork_seed(7, r.name));
  }
  EXPECT_NE(s.results[0].seed, s.results[1].seed);
}

TEST(RunnerTest, ResultsAreSortedByNameAndCarryMetrics) {
  ExperimentRegistry reg = make_fake_registry(11);
  RunnerOptions opt;
  opt.jobs = 4;
  const RunSummary s = Runner(opt, &reg).run();
  ASSERT_EQ(s.results.size(), 11u);
  for (std::size_t i = 1; i < s.results.size(); ++i) {
    EXPECT_LT(s.results[i - 1].name, s.results[i].name);
  }
  const ExperimentResult& r = s.results.front();
  ASSERT_EQ(r.metrics.size(), 2u);
  EXPECT_EQ(r.metrics[0].name, "acc");
  EXPECT_EQ(r.metrics[0].unit, "units");
  ASSERT_EQ(r.metrics[0].points.size(), 1u);
  EXPECT_GT(r.metrics[0].points[0].y, 0);
  EXPECT_EQ(r.metrics[1].name, "sweep");
  EXPECT_NE(r.text.find("fake table"), std::string::npos);
}

TEST(RunnerTest, FilterSelectsSubstring) {
  ExperimentRegistry reg = make_fake_registry(12);
  RunnerOptions opt;
  opt.filter = "fake_1";  // fake_1, fake_10, fake_11
  EXPECT_EQ(Runner(opt, &reg).selected().size(), 3u);
}

TEST(RunnerTest, ThrowingExperimentIsReportedNotFatal) {
  ExperimentRegistry reg = make_fake_registry(2);
  reg.add([] { return std::make_unique<ThrowingExperiment>(); });
  const RunSummary s = Runner(RunnerOptions{}, &reg).run();
  ASSERT_EQ(s.results.size(), 3u);
  EXPECT_EQ(s.count(RunStatus::kFailed), 1);
  EXPECT_EQ(s.count(RunStatus::kOk), 2);
  EXPECT_FALSE(s.all_ok());
  EXPECT_EQ(s.results.front().name, "always_throws");
  EXPECT_EQ(s.results.front().error, "deliberate failure");
  std::ostringstream os;
  write_text(s, os);
  EXPECT_NE(os.str().find("always_throws — failed: deliberate failure"),
            std::string::npos);
  EXPECT_NE(os.str().find("3 experiments: 2 ok, 1 failed, 0 timed out"),
            std::string::npos);
}

TEST(RunnerTest, HungExperimentTimesOutGracefully) {
  ExperimentRegistry reg = make_fake_registry(1);
  reg.add([] { return std::make_unique<HangingExperiment>(); });
  RunnerOptions opt;
  opt.timeout_s = 0.05;
  const auto start = std::chrono::steady_clock::now();
  const RunSummary s = Runner(opt, &reg).run();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::milliseconds(450));  // not the full sleep
  EXPECT_EQ(s.count(RunStatus::kTimedOut), 1);
  EXPECT_EQ(s.count(RunStatus::kOk), 1);  // the fast sibling still runs
  const ExperimentResult* hung = nullptr;
  for (const ExperimentResult& r : s.results) {
    if (r.name == "hangs") hung = &r;
  }
  ASSERT_NE(hung, nullptr);
  EXPECT_EQ(hung->status, RunStatus::kTimedOut);
  EXPECT_NE(hung->error.find("timeout"), std::string::npos);
  // Give the abandoned thread time to drain before the test exits.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
}

TEST(RunnerTest, SmokeTierOfRealRegistryIsNonEmpty) {
  RunnerOptions opt;
  opt.smoke_only = true;
  const Runner runner(opt);  // global registry
  const auto smoke = runner.selected();
  EXPECT_GE(smoke.size(), 5u);
  // The smoke tier is a strict subset of the full registry.
  RunnerOptions all;
  EXPECT_LT(smoke.size(), Runner(all).selected().size());
}

TEST(RunnerTest, JsonOutputIsWellFormedScaffold) {
  ExperimentRegistry reg = make_fake_registry(2);
  const RunSummary s = Runner(RunnerOptions{}, &reg).run();
  std::ostringstream os;
  write_json(s, os, /*include_timing=*/true);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"schema\": \"fiveg-runall/v4\""), std::string::npos);
  EXPECT_NE(j.find("\"experiments\""), std::string::npos);
  EXPECT_NE(j.find("\"wall_ms\""), std::string::npos);
  EXPECT_NE(j.find("\"summary\""), std::string::npos);
  // The v2 delta: a flat counters object per experiment.
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"fake.runs\": 1"), std::string::npos);
  // The v4 delta: per-run and summary peak RSS (timing-gated).
  EXPECT_NE(j.find("\"peak_rss_kb\""), std::string::npos);
  // Timing off really drops the non-deterministic fields — wall_ms,
  // peak_rss_kb AND the kWall profile object.
  std::ostringstream os2;
  write_json(s, os2, /*include_timing=*/false);
  EXPECT_EQ(os2.str().find("wall_ms"), std::string::npos);
  EXPECT_EQ(os2.str().find("peak_rss_kb"), std::string::npos);
  EXPECT_EQ(os2.str().find("\"profile\""), std::string::npos);
}

TEST(RunnerTest, CapturesCountersAndOptionalTrace) {
  ExperimentRegistry reg = make_fake_registry(2);
  RunnerOptions opt;
  opt.trace = true;
  opt.trace_capacity = 64;
  const RunSummary s = Runner(opt, &reg).run();
  ASSERT_EQ(s.results.size(), 2u);
  for (const ExperimentResult& r : s.results) {
    ASSERT_NE(r.trace, nullptr);
    EXPECT_EQ(r.trace->emitted(), 1u);
    bool saw = false;
    for (const obs::MetricSnapshot& m : r.counters) {
      saw |= (m.name == "fake.runs" && m.value == 1.0);
    }
    EXPECT_TRUE(saw);
  }

  // Tracing off: no tracer is allocated at all.
  RunnerOptions plain;
  const RunSummary s2 = Runner(plain, &reg).run();
  for (const ExperimentResult& r : s2.results) {
    EXPECT_EQ(r.trace, nullptr);
    EXPECT_FALSE(r.counters.empty());
  }

  // Metrics off: counters stay empty (opt-out for overhead-sensitive runs).
  RunnerOptions bare;
  bare.collect_metrics = false;
  const RunSummary s3 = Runner(bare, &reg).run();
  for (const ExperimentResult& r : s3.results) {
    EXPECT_TRUE(r.counters.empty());
    EXPECT_TRUE(r.profile.empty());
  }
}

TEST(RunnerTest, MergedChromeTraceIsValid) {
  ExperimentRegistry reg = make_fake_registry(3);
  RunnerOptions opt;
  opt.trace = true;
  const RunSummary s = Runner(opt, &reg).run();
  std::ostringstream os;
  write_chrome_trace(s, os, /*include_wall=*/false);
  const obs::TraceCheck check = obs::check_chrome_trace(os.str());
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.event_count, 3u);  // one instant per fake experiment
  ASSERT_EQ(check.processes.size(), 3u);
  EXPECT_EQ(check.processes[0], "fake_0");  // pid order = sorted names
}

TEST(RunnerTest, TracedParallelRunIsByteIdenticalToSerial) {
  ExperimentRegistry reg = make_fake_registry(8);
  RunnerOptions serial;
  serial.jobs = 1;
  serial.trace = true;
  RunnerOptions parallel = serial;
  parallel.jobs = 8;
  const RunSummary a = Runner(serial, &reg).run();
  const RunSummary b = Runner(parallel, &reg).run();
  std::ostringstream ja, jb, ta, tb;
  write_json(a, ja, /*include_timing=*/false);
  write_json(b, jb, /*include_timing=*/false);
  write_chrome_trace(a, ta, /*include_wall=*/false);
  write_chrome_trace(b, tb, /*include_wall=*/false);
  EXPECT_EQ(ja.str(), jb.str());
  EXPECT_EQ(ta.str(), tb.str());
}

}  // namespace
}  // namespace fiveg::core

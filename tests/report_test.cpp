// Tests for the per-figure report builder and golden-baseline drift
// detector: build_reports from a real Runner round trip, golden
// write/parse/check round trips, each Drift kind, tolerance semantics,
// artifact formats — and an end-to-end proof that the detector fires when
// the simulated radio environment is perturbed (+3 dB shadowing sigma)
// while leaving radio-independent figures quiet.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/runner.h"
#include "obs/json_check.h"
#include "obs/obs.h"
#include "radio/shadowing.h"
#include "report/report.h"
#include "sim/rng.h"

namespace fiveg::report {
namespace {

// Deterministic synthetic experiment mirroring runner_test's fake: a
// metric series plus obs counters, enough to exercise every report path.
class FakeExperiment final : public core::Experiment {
 public:
  explicit FakeExperiment(int index) : index_(index) {}
  std::string name() const override {
    return "fake_" + std::to_string(index_);
  }
  std::string paper_ref() const override { return "Figure 0"; }
  std::string description() const override { return "synthetic workload"; }
  bool smoke() const override { return true; }
  void run(const core::ExperimentContext& ctx) override {
    sim::Rng rng = sim::Rng(ctx.seed).fork("fake");
    double acc = 0;
    for (int i = 0; i < 100 + 10 * index_; ++i) acc += rng.uniform(0, 1);
    *ctx.out << "fake table " << index_ << "\n";
    ctx.metric("acc", acc, "units");
    ctx.metric_point("sweep", index_, acc / 2);
    ctx.metric_point("sweep", index_ + 1, acc);
    if (auto* m = obs::metrics()) {
      m->counter("fake.runs").add();
      m->digest("fake.lat_ms").observe(1.0 + index_);
    }
  }

 private:
  int index_;
};

BuildResult build_from_summary(const core::RunSummary& s) {
  std::ostringstream os;
  core::write_json(s, os, /*include_timing=*/false);
  std::string error;
  const auto doc = obs::json_parse(os.str(), &error);
  EXPECT_NE(doc, nullptr) << error;
  return build_reports(*doc);
}

core::RunSummary run_fakes(int n) {
  core::ExperimentRegistry reg;
  for (int i = 0; i < n; ++i) {
    reg.add([i] { return std::make_unique<FakeExperiment>(i); });
  }
  core::RunnerOptions opt;
  opt.seed = 42;
  return core::Runner(opt, &reg).run();
}

TEST(ReportBuildTest, BuildsOneFigurePerExperiment) {
  const BuildResult built = build_from_summary(run_fakes(3));
  ASSERT_TRUE(built.ok()) << built.error;
  ASSERT_EQ(built.figures.size(), 3u);
  const FigureReport& f = built.figures.front();
  EXPECT_EQ(f.id, "fake_0");
  EXPECT_EQ(f.paper_ref, "Figure 0");
  EXPECT_EQ(f.status, "ok");
  // Counters flow through, including the digest percentile ladder.
  EXPECT_EQ(f.metrics.at("fake.runs"), 1.0);
  EXPECT_EQ(f.metrics.at("fake.lat_ms.count"), 1.0);
  EXPECT_DOUBLE_EQ(f.metrics.at("fake.lat_ms.p50"),
                   f.metrics.at("fake.lat_ms.p95"));
  // Series summaries: count/mean/min/max/last per KPI series.
  EXPECT_EQ(f.metrics.at("series.sweep.count"), 2.0);
  EXPECT_DOUBLE_EQ(f.metrics.at("series.sweep.max"),
                   f.metrics.at("series.sweep.last"));
  EXPECT_GT(f.metrics.at("series.acc.mean"), 0.0);
  // Figures sorted by id.
  EXPECT_LT(built.figures[0].id, built.figures[1].id);
}

TEST(ReportBuildTest, RejectsWrongSchema) {
  std::string error;
  const auto doc =
      obs::json_parse(R"({"schema": "fiveg-runall/v2", "experiments": {}})",
                      &error);
  ASSERT_NE(doc, nullptr) << error;
  const BuildResult built = build_reports(*doc);
  EXPECT_FALSE(built.ok());
  EXPECT_NE(built.error.find("fiveg-runall/v3"), std::string::npos);
}

TEST(ReportGoldenTest, WriteParseCheckRoundTripIsDriftFree) {
  const BuildResult built = build_from_summary(run_fakes(2));
  ASSERT_TRUE(built.ok()) << built.error;
  for (const FigureReport& f : built.figures) {
    std::ostringstream os;
    write_golden_json(f, os);
    std::string error;
    const auto doc = obs::json_parse(os.str(), &error);
    ASSERT_NE(doc, nullptr) << error;
    GoldenFigure golden;
    ASSERT_TRUE(parse_golden(*doc, &golden, &error)) << error;
    EXPECT_EQ(golden.id, f.id);
    EXPECT_EQ(golden.metrics.size(), f.metrics.size());
    EXPECT_TRUE(check_figure(f, golden).empty());
  }
}

TEST(ReportGoldenTest, ParseRejectsMalformedDocuments) {
  std::string error;
  GoldenFigure golden;
  const auto wrong_schema = obs::json_parse(
      R"({"schema": "fiveg-golden/v2", "figure": "x", "metrics": {}})",
      &error);
  ASSERT_NE(wrong_schema, nullptr);
  EXPECT_FALSE(parse_golden(*wrong_schema, &golden, &error));
  EXPECT_NE(error.find("fiveg-golden/v1"), std::string::npos);

  const auto no_value = obs::json_parse(
      R"({"schema": "fiveg-golden/v1", "figure": "x",
          "metrics": {"m": {"rel_tol": 0.1}}})",
      &error);
  ASSERT_NE(no_value, nullptr);
  EXPECT_FALSE(parse_golden(*no_value, &golden, &error));
}

TEST(ReportDriftTest, DetectsEveryDriftKind) {
  FigureReport report;
  report.id = "fig";
  report.status = "ok";
  report.metrics = {{"stable", 10.0}, {"moved", 20.0}, {"new", 1.0}};

  GoldenFigure golden;
  golden.id = "fig";
  golden.status = "ok";
  golden.metrics["stable"] = {10.2, {0.05, 1e-9}};   // within 5%
  golden.metrics["moved"] = {10.0, {0.05, 1e-9}};    // 2x off
  golden.metrics["gone"] = {5.0, {0.05, 1e-9}};      // absent from report

  std::map<Drift::Kind, int> kinds;
  for (const Drift& d : check_figure(report, golden)) {
    ++kinds[d.kind];
    EXPECT_EQ(d.figure, "fig");
    EXPECT_FALSE(d.describe().empty());
  }
  EXPECT_EQ(kinds[Drift::Kind::kValue], 1);
  EXPECT_EQ(kinds[Drift::Kind::kMissingMetric], 1);
  EXPECT_EQ(kinds[Drift::Kind::kNewMetric], 1);
  EXPECT_EQ(kinds[Drift::Kind::kStatus], 0);

  golden.metrics.clear();
  report.metrics.clear();
  report.status = "failed";
  const auto drifts = check_figure(report, golden);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_EQ(drifts[0].kind, Drift::Kind::kStatus);
}

TEST(ReportDriftTest, ToleranceIsRelPlusAbs) {
  FigureReport report;
  report.id = "fig";
  report.status = "ok";
  GoldenFigure golden;
  golden.id = "fig";
  golden.metrics["m"] = {100.0, {0.05, 0.5}};
  report.metrics["m"] = 105.5;  // |diff| = 5.5 <= 0.05*100 + 0.5
  EXPECT_TRUE(check_figure(report, golden).empty());
  report.metrics["m"] = 105.6;
  EXPECT_EQ(check_figure(report, golden).size(), 1u);
  // NaN never passes a tolerance check.
  report.metrics["m"] = std::nan("");
  EXPECT_EQ(check_figure(report, golden).size(), 1u);
}

TEST(ReportDriftTest, DefaultToleranceTreatsIntegersAsCounts) {
  EXPECT_DOUBLE_EQ(default_tolerance(12.0).abs_tol, 1.5);
  EXPECT_DOUBLE_EQ(default_tolerance(0.0).abs_tol, 1.5);
  EXPECT_DOUBLE_EQ(default_tolerance(12.5).abs_tol, 1e-9);
  EXPECT_DOUBLE_EQ(default_tolerance(12.5).rel_tol, 0.05);
  // Beyond exact-integer range doubles don't get the count treatment.
  EXPECT_DOUBLE_EQ(default_tolerance(1e18).abs_tol, 1e-9);
}

TEST(ReportArtifactTest, CsvAndJsonFormats) {
  FigureReport f;
  f.id = "fig7";
  f.paper_ref = "Figure 7";
  f.description = "throughput";
  f.status = "ok";
  f.metrics = {{"a", 1.5}, {"b", 2.0}};

  std::ostringstream csv;
  write_figure_csv(f, csv);
  EXPECT_EQ(csv.str(), "figure,metric,value\nfig7,a,1.5\nfig7,b,2\n");

  std::ostringstream js;
  write_figure_json(f, js);
  std::string error;
  const auto doc = obs::json_parse(js.str(), &error);
  ASSERT_NE(doc, nullptr) << error;
  EXPECT_EQ(doc->get("schema")->string, "fiveg-report/v1");
  EXPECT_EQ(doc->get("figure")->string, "fig7");
  EXPECT_EQ(doc->get("metrics")->get("a")->number, 1.5);
}

// --- End-to-end drift detection ---
//
// Runs two real experiments from the global registry at a fixed seed,
// snapshots goldens, perturbs the radio environment (+3 dB shadowing
// sigma via the test-only hook) and re-runs: the radio-dependent figure
// must drift, the radio-independent control must not.

core::RunSummary run_real(const std::string& filter) {
  core::RunnerOptions opt;
  opt.seed = 42;
  opt.jobs = 1;
  opt.filter = filter;
  return core::Runner(opt).run();  // global registry
}

TEST(ReportDriftTest, ShadowingPerturbationFlagsOnlyRadioFigures) {
  const std::string radio_fig = "table2_rsrp_distribution";
  const std::string control_fig = "smoke_tcp_bulk";

  // Baseline goldens.
  std::map<std::string, GoldenFigure> goldens;
  for (const std::string& f : {radio_fig, control_fig}) {
    const BuildResult built = build_from_summary(run_real(f));
    ASSERT_TRUE(built.ok()) << built.error;
    ASSERT_EQ(built.figures.size(), 1u) << f;
    std::ostringstream os;
    write_golden_json(built.figures[0], os);
    std::string error;
    const auto doc = obs::json_parse(os.str(), &error);
    ASSERT_NE(doc, nullptr) << error;
    ASSERT_TRUE(parse_golden(*doc, &goldens[f], &error)) << error;
  }

  // Perturbed re-run: +3 dB shadowing sigma on every ShadowingField
  // constructed from here on. Restore before asserting so a failure
  // can't leak the offset into other tests.
  radio::set_shadowing_sigma_offset_db(3.0);
  std::set<std::string> drifted;
  std::vector<Drift> control_drifts;
  for (const std::string& f : {radio_fig, control_fig}) {
    const BuildResult built = build_from_summary(run_real(f));
    ASSERT_TRUE(built.ok()) << built.error;
    const auto drifts = check_figure(built.figures.at(0), goldens.at(f));
    if (!drifts.empty()) drifted.insert(f);
    if (f == control_fig) control_drifts = drifts;
  }
  radio::set_shadowing_sigma_offset_db(0.0);

  EXPECT_EQ(drifted.count(radio_fig), 1u)
      << "+3 dB shadowing sigma must move the RSRP distribution";
  std::string control_report;
  for (const Drift& d : control_drifts) control_report += d.describe() + "\n";
  EXPECT_EQ(drifted.count(control_fig), 0u) << control_report;

  // Sanity: un-perturbed re-runs are drift-free (the detector isn't
  // just firing on everything).
  for (const std::string& f : {radio_fig, control_fig}) {
    const BuildResult built = build_from_summary(run_real(f));
    ASSERT_TRUE(built.ok()) << built.error;
    EXPECT_TRUE(check_figure(built.figures.at(0), goldens.at(f)).empty())
        << f;
  }
}

}  // namespace
}  // namespace fiveg::report

// Integration tests for the experiment framework: registry completeness,
// scenario/testbed wiring, and smoke runs of the fast experiments.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "app/iperf.h"
#include "core/experiment.h"
#include "core/paper.h"
#include "core/scenario.h"

namespace fiveg::core {
namespace {

TEST(RegistryTest, AllExperimentsRegistered) {
  const auto names = ExperimentRegistry::instance().names();
  const std::vector<std::string> expected = {
      "ablation_buffer_sizing", "ablation_cc_robustness",
      "ablation_sa_handoff",    "ablation_tail_timer",
      "aqm_bufferbloat",        "aqm_incast",
      "aqm_rtt_fairness",       "aqm_table3_mitigation",
      "city_grid_10k",          "city_grid_1k",
      "city_grid_smoke",        "city_par_100k",
      "city_par_smoke",
      "dsl_replacement",        "ext_abr_video",
      "ext_cell_load",          "ext_codel_aqm",
      "ext_densification",      "ext_faststart_web",
      "ext_ho_tuning",          "ext_indoor_microcell",
      "ext_mec",                "ext_multipath",
      "ext_sa_energy",          "fig10_harq_retx",
      "ho_event_mix",
      "fig11_bursty_loss",      "fig12_ho_throughput",
      "fig13_rtt_scatter",      "fig14_hop_breakdown",
      "fig15_rtt_distance",     "fig16_17_web",
      "fig18_19_video_tput",    "fig20_frame_delay",
      "fig21_energy_apps",      "fig22_energy_per_bit",
      "fig23_power_trace",      "fig2_coverage_map",
      "fig3_indoor_outdoor",    "fig4_5_ho_quality",
      "fig6_ho_latency",        "fig7_throughput",
      "fig8_cwnd",              "fig9_loss_vs_load",
      "smoke_tcp_bulk",
      "table1_phy_info",        "table2_rsrp_distribution",
      "table3_buffer_sizing",   "table4_power_policies",
  };
  for (const std::string& e : expected) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), e) != names.end())
        << "missing experiment " << e;
  }
  EXPECT_EQ(names.size(), expected.size());
}

TEST(RegistryTest, UnknownExperimentRejected) {
  std::ostringstream os;
  ExperimentContext ctx;
  ctx.out = &os;
  EXPECT_FALSE(ExperimentRegistry::instance().run("nope", ctx));
}

TEST(RegistryTest, DuplicateNameRejectedAtRegistration) {
  class Dummy final : public Experiment {
   public:
    std::string name() const override { return "dup_experiment"; }
    std::string paper_ref() const override { return "n/a"; }
    std::string description() const override { return "dup"; }
    void run(const ExperimentContext&) override {}
  };
  ExperimentRegistry reg;  // local registry, not the global instance
  reg.add([] { return std::make_unique<Dummy>(); });
  EXPECT_THROW(reg.add([] { return std::make_unique<Dummy>(); }),
               std::invalid_argument);
  // The first registration survives the rejected duplicate.
  EXPECT_NE(reg.create("dup_experiment"), nullptr);
}

TEST(RegistryTest, CreateInstantiatesByName) {
  auto exp = ExperimentRegistry::instance().create("table1_phy_info");
  ASSERT_NE(exp, nullptr);
  EXPECT_EQ(exp->paper_ref(), "Table 1");
  EXPECT_EQ(ExperimentRegistry::instance().create("nope"), nullptr);
}

TEST(ExperimentContextTest, MetricsAccumulateIntoResult) {
  ExperimentResult res;
  ExperimentContext ctx;
  ctx.result = &res;
  ctx.metric("tput", 1.5, "Mbps");
  ctx.metric("tput", 2.5);
  ctx.metric_point("sweep", 10, 0.1, "%");
  ASSERT_EQ(res.metrics.size(), 2u);
  EXPECT_EQ(res.metrics[0].name, "tput");
  EXPECT_EQ(res.metrics[0].unit, "Mbps");
  ASSERT_EQ(res.metrics[0].points.size(), 2u);
  EXPECT_DOUBLE_EQ(res.metrics[0].points[0].x, 0);
  EXPECT_DOUBLE_EQ(res.metrics[0].points[1].x, 1);
  EXPECT_DOUBLE_EQ(res.metrics[0].points[1].y, 2.5);
  EXPECT_DOUBLE_EQ(res.metrics[1].points[0].x, 10);
  // A null result sink makes metric() a no-op, not a crash.
  ExperimentContext no_sink;
  no_sink.metric("ignored", 1.0);
}

TEST(RegistryTest, FastExperimentsProduceTables) {
  for (const char* name :
       {"table1_phy_info", "fig10_harq_retx", "fig22_energy_per_bit",
        "table4_power_policies", "ablation_sa_handoff"}) {
    std::ostringstream os;
    ExperimentContext ctx;
    ctx.seed = 42;
    ctx.out = &os;
    ASSERT_TRUE(ExperimentRegistry::instance().run(name, ctx)) << name;
    EXPECT_NE(os.str().find("=="), std::string::npos) << name;
    EXPECT_NE(os.str().find("reproduces"), std::string::npos) << name;
  }
}

TEST(ScenarioTest, DeterministicPerSeed) {
  const Scenario a(7), b(7), c(8);
  EXPECT_EQ(a.campus().buildings().size(), b.campus().buildings().size());
  const geo::Point p = a.campus().bounds().center();
  EXPECT_DOUBLE_EQ(a.deployment().best(radio::Rat::kNr, p).rsrp_dbm,
                   b.deployment().best(radio::Rat::kNr, p).rsrp_dbm);
  // A different seed moves the deployment.
  EXPECT_NE(a.deployment().best(radio::Rat::kNr, p).rsrp_dbm,
            c.deployment().best(radio::Rat::kNr, p).rsrp_dbm);
}

TEST(ScenarioTest, Table1CalibrationHolds) {
  // Guard the Table 2 calibration: coverage-hole fractions must stay near
  // the paper across seeds.
  const Scenario sc(42);
  sim::Rng rng(9);
  int holes_nr = 0, holes_lte = 0;
  const int n = 1200;
  for (int i = 0; i < n; ++i) {
    const geo::Point p = sc.campus().random_outdoor_point(rng);
    holes_nr += !sc.deployment().best(radio::Rat::kNr, p).in_coverage();
    holes_lte += !sc.deployment().best(radio::Rat::kLte, p).in_coverage();
  }
  const double nr_frac = static_cast<double>(holes_nr) / n;
  const double lte_frac = static_cast<double>(holes_lte) / n;
  EXPECT_NEAR(nr_frac, paper::kNrRsrpDist[5], 0.05);   // ~8%
  EXPECT_LT(lte_frac, 0.05);                           // ~1.8%
  EXPECT_GT(nr_frac, 2.0 * lte_frac);                  // the paper's story
}

TEST(TestbedTest, BaselineRatesMatchPaper) {
  using ran::LoadRegime;
  EXPECT_DOUBLE_EQ(
      baseline_rate_bps(radio::Rat::kNr, LoadRegime::kDay,
                        Direction::kDownlink),
      880e6);
  EXPECT_DOUBLE_EQ(
      baseline_rate_bps(radio::Rat::kLte, LoadRegime::kNight,
                        Direction::kDownlink),
      200e6);
  EXPECT_DOUBLE_EQ(
      baseline_rate_bps(radio::Rat::kNr, LoadRegime::kDay,
                        Direction::kUplink),
      130e6);
  EXPECT_DOUBLE_EQ(
      baseline_rate_bps(radio::Rat::kLte, LoadRegime::kDay,
                        Direction::kUplink),
      50e6);
}

TEST(TestbedTest, DownlinkOrientationPutsRanLast) {
  sim::Simulator simr;
  TestbedOptions opt;  // downlink default
  Testbed dl(&simr, opt, 42);
  EXPECT_EQ(dl.path().forward_link(dl.hop_count() - 1).config().name.find(
                "ran"),
            0u);
  EXPECT_EQ(dl.bottleneck().config().name, "metro-bottleneck");

  opt.direction = Direction::kUplink;
  Testbed ul(&simr, opt, 42);
  EXPECT_EQ(ul.path().forward_link(0).config().name.find("ran"), 0u);
  EXPECT_EQ(ul.bottleneck().config().name, "metro-bottleneck");
}

TEST(TestbedTest, UdpAtBaselineIsNearLossless) {
  sim::Simulator simr;
  TestbedOptions opt;
  opt.cross_traffic = false;
  Testbed bed(&simr, opt, 42);
  app::UdpTest test(&simr, &bed.path(), &bed.fanout(),
                    0.95 * bed.ran_rate_bps());
  test.start(3 * sim::kSecond);
  simr.run_until(5 * sim::kSecond);
  EXPECT_LT(test.result(0, 3 * sim::kSecond).loss_ratio, 0.001);
}

}  // namespace
}  // namespace fiveg::core

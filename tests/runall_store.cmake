# ctest script: a sharded manifest campaign's columnar store must merge to
# the byte-identical fiveg_query export of the unsharded reference run —
# including after a mid-campaign kill. Three crash artifacts are simulated
# (one per worker count): a deleted shard file (every record backfilled
# from the ledger splice on resume), a torn trailing frame (sealed by the
# writer on reopen), and an intact store (pure key-dedup resume). In every
# case the resumed shard plus its sibling must export the same bytes as
# the uninterrupted reference, and fiveg_prof's ledger<->store audit must
# pass.
#
# Invoked as:
#   cmake -DRUNALL=<fiveg_runall> -DQUERY=<fiveg_query> -DPROF=<fiveg_prof>
#         -DMANIFEST=<campaign.json> -DWORK_DIR=<dir> -P runall_store.cmake
if(NOT RUNALL OR NOT QUERY OR NOT PROF OR NOT MANIFEST OR NOT WORK_DIR)
  message(FATAL_ERROR "RUNALL, QUERY, PROF, MANIFEST and WORK_DIR must be set")
endif()
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

set(common --manifest ${MANIFEST} --timeout 300 --quiet)

function(run_shard out_prefix shard jobs ledger store)
  execute_process(
    COMMAND ${RUNALL} ${common} --shard ${shard} --jobs ${jobs}
            --ledger ${ledger} --store ${store}
    OUTPUT_QUIET
    ERROR_VARIABLE run_err
    RESULT_VARIABLE run_rc)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
            "${out_prefix} shard ${shard} failed (rc=${run_rc}): ${run_err}")
  endif()
endfunction()

function(export_store store out)
  execute_process(
    COMMAND ${QUERY} ${store} --export-runall-json ${out}
    OUTPUT_QUIET
    ERROR_VARIABLE query_err
    RESULT_VARIABLE query_rc)
  if(NOT query_rc EQUAL 0)
    message(FATAL_ERROR
            "fiveg_query failed on ${store} (rc=${query_rc}): ${query_err}")
  endif()
endfunction()

# Truncates a ledger to half its lines plus a torn partial line — the
# exact artifact a mid-append SIGKILL leaves behind.
function(tear_ledger ledger)
  file(READ ${ledger} content)
  string(REGEX MATCHALL "\n" newlines "${content}")
  list(LENGTH newlines total_lines)
  if(total_lines LESS 2)
    message(FATAL_ERROR "ledger ${ledger} has only ${total_lines} records")
  endif()
  math(EXPR keep "${total_lines} / 2")
  set(offset 0)
  set(kept_lines 0)
  while(kept_lines LESS keep)
    string(SUBSTRING "${content}" ${offset} -1 rest)
    string(FIND "${rest}" "\n" nl)
    if(nl EQUAL -1)
      message(FATAL_ERROR "ran out of newlines at line ${kept_lines}")
    endif()
    math(EXPR offset "${offset} + ${nl} + 1")
    math(EXPR kept_lines "${kept_lines} + 1")
  endwhile()
  string(SUBSTRING "${content}" 0 ${offset} kept)
  file(WRITE ${ledger}
       "${kept}{\"schema\":\"fiveg-ledger/v1\",\"checksum\":\"torn-mid-app")
endfunction()

# --- Reference: the whole campaign as one shard. --------------------------
run_shard(ref 0/1 2 ${WORK_DIR}/ref.jsonl ${WORK_DIR}/ref_store)
export_store(${WORK_DIR}/ref_store ${WORK_DIR}/ref.json)

# --- Clean 2-way shard split must merge to the reference bytes. -----------
run_shard(clean 0/2 2 ${WORK_DIR}/clean_0.jsonl ${WORK_DIR}/clean_store)
run_shard(clean 1/2 2 ${WORK_DIR}/clean_1.jsonl ${WORK_DIR}/clean_store)
export_store(${WORK_DIR}/clean_store ${WORK_DIR}/clean.json)
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/ref.json ${WORK_DIR}/clean.json
  RESULT_VARIABLE clean_diff)
if(NOT clean_diff EQUAL 0)
  message(FATAL_ERROR "2-shard store export differs from the unsharded one")
endif()

# --- Kill + resume at several worker counts. ------------------------------
# crash mode per jobs value: delete (backfill everything from the splice),
# tear (torn trailing frame sealed on reopen), keep (pure dedup).
set(modes_1 delete)
set(modes_2 tear)
set(modes_8 keep)
foreach(jobs 1 2 8)
  set(work ${WORK_DIR}/resume_j${jobs})
  set(store ${work}_store)
  set(ledger0 ${work}_0.jsonl)

  # Shard 0 runs to completion, then the "kill" mangles its artifacts.
  run_shard(resume_j${jobs} 0/2 ${jobs} ${ledger0} ${store})
  tear_ledger(${ledger0})
  set(mode ${modes_${jobs}})
  if(mode STREQUAL delete)
    file(REMOVE ${store}/shard-0-of-2.fgrs)
  elseif(mode STREQUAL tear)
    file(APPEND ${store}/shard-0-of-2.fgrs "FGRSxRtorn-frame-garbage")
  endif()

  # Resume shard 0 from the torn ledger (appends land back in it), then
  # run shard 1 cleanly into the same store directory.
  execute_process(
    COMMAND ${RUNALL} ${common} --shard 0/2 --jobs ${jobs}
            --resume ${ledger0} --store ${store}
    OUTPUT_QUIET
    ERROR_VARIABLE resume_err
    RESULT_VARIABLE resume_rc)
  if(NOT resume_rc EQUAL 0)
    message(FATAL_ERROR
            "resume (jobs ${jobs}, mode ${mode}) failed (rc=${resume_rc}): "
            "${resume_err}")
  endif()
  run_shard(resume_j${jobs} 1/2 ${jobs} ${work}_1.jsonl ${store})

  export_store(${store} ${work}.json)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/ref.json ${work}.json
    RESULT_VARIABLE resume_diff)
  if(NOT resume_diff EQUAL 0)
    message(FATAL_ERROR
            "resumed store export (jobs ${jobs}, mode ${mode}) differs "
            "from the reference")
  endif()

  # The audit must agree: one store record per ledgered run, no orphans.
  execute_process(
    COMMAND ${PROF} ${ledger0} ${work}_1.jsonl --store ${store} --json
    OUTPUT_QUIET
    ERROR_VARIABLE prof_err
    RESULT_VARIABLE prof_rc)
  if(NOT prof_rc EQUAL 0)
    message(FATAL_ERROR
            "fiveg_prof audit failed (jobs ${jobs}, mode ${mode}, "
            "rc=${prof_rc}): ${prof_err}")
  endif()
endforeach()

message(STATUS "runall store: sharded + killed-and-resumed campaigns merge "
               "to byte-identical exports at jobs 1/2/8")

// Tests for the application layer: iperf sessions, web page loading and
// panoramic video telephony over simulated cellular paths.
#include <gtest/gtest.h>

#include "app/iperf.h"
#include "app/video.h"
#include "app/web.h"
#include "net/epc.h"
#include "net/path.h"
#include "sim/simulator.h"

namespace fiveg::app {
namespace {

using sim::from_millis;
using sim::kSecond;

std::vector<net::Link::Config> simple_path(double rate_bps, sim::Time one_way) {
  std::vector<net::Link::Config> hops(2);
  hops[0].rate_bps = rate_bps;
  hops[0].prop_delay = one_way / 2;
  hops[0].queue_bytes = 1 << 20;
  hops[1].rate_bps = 10e9;
  hops[1].prop_delay = one_way / 2;
  hops[1].queue_bytes = 8 << 20;
  return hops;
}

TEST(UdpTestTest, MeasuresThroughputAndLoss) {
  sim::Simulator simr;
  net::PathNetwork path(&simr, simple_path(100e6, from_millis(10)));
  PathFanout fanout(&path);
  UdpTest test(&simr, &path, &fanout, 60e6);
  test.start(3 * kSecond);
  simr.run();
  const UdpTestResult r = test.result(0, 3 * kSecond);
  EXPECT_GT(r.packets_sent, 10000u);
  EXPECT_EQ(r.packets_received, r.packets_sent);
  EXPECT_DOUBLE_EQ(r.loss_ratio, 0.0);
  EXPECT_NEAR(r.mean_throughput_bps, 60e6, 3e6);
}

TEST(TcpSessionTest, TwoSessionsShareAPath) {
  sim::Simulator simr;
  net::PathNetwork path(&simr, simple_path(100e6, from_millis(20)));
  PathFanout fanout(&path);
  tcp::TcpConfig cfg;
  cfg.algo = tcp::CcAlgo::kCubic;
  TcpSession s1(&simr, &path, &fanout, cfg, 1);
  TcpSession s2(&simr, &path, &fanout, cfg, 2);
  s1.sender().start_bulk();
  s2.sender().start_bulk();
  simr.run_until(10 * kSecond);
  const double g1 = s1.receiver().mean_goodput_bps(3 * kSecond, 10 * kSecond);
  const double g2 = s2.receiver().mean_goodput_bps(3 * kSecond, 10 * kSecond);
  // Both flows make progress and together fill most of the link.
  EXPECT_GT(g1, 15e6);
  EXPECT_GT(g2, 15e6);
  EXPECT_GT(g1 + g2, 70e6);
  EXPECT_LT(g1 + g2, 101e6);
}

TEST(WebBrowserTest, PaperPagesAreOrderedBySize) {
  const auto pages = paper_pages();
  ASSERT_EQ(pages.size(), 5u);
  EXPECT_EQ(pages.front().category, "Search");
  for (const WebPage& p : pages) {
    EXPECT_GT(p.bytes, 0u);
    EXPECT_GT(p.render_time, 0);
  }
  const WebPage img = image_page(16.0);
  EXPECT_EQ(img.bytes, 16u << 20);
  EXPECT_GT(img.render_time, image_page(1.0).render_time);
}

TEST(WebBrowserTest, PltSplitsDownloadAndRender) {
  sim::Simulator simr;
  net::PathNetwork path(&simr, simple_path(100e6, from_millis(20)));
  PathFanout fanout(&path);
  tcp::TcpConfig cfg;
  cfg.algo = tcp::CcAlgo::kBbr;
  WebBrowser browser(&simr, &path, &fanout, cfg);

  PltResult result;
  bool done = false;
  browser.load(image_page(2.0), [&](PltResult r) {
    result = r;
    done = true;
  });
  simr.run_until(30 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_GT(result.download_s, 0.05);   // at least a few RTTs
  EXPECT_LT(result.download_s, 5.0);
  EXPECT_NEAR(result.render_s, 0.25, 0.01);  // 100 + 75*2 ms
  EXPECT_NEAR(result.total_s(), result.download_s + result.render_s, 1e-9);
}

TEST(WebBrowserTest, FasterLinkShortensOnlyDownload) {
  const auto plt_on = [](double rate_bps) {
    sim::Simulator simr;
    net::PathNetwork path(&simr, simple_path(rate_bps, from_millis(20)));
    PathFanout fanout(&path);
    tcp::TcpConfig cfg;
    cfg.algo = tcp::CcAlgo::kBbr;
    WebBrowser browser(&simr, &path, &fanout, cfg);
    PltResult result;
    browser.load(image_page(8.0), [&](PltResult r) { result = r; });
    simr.run_until(60 * kSecond);
    return result;
  };
  const PltResult slow = plt_on(20e6);
  const PltResult fast = plt_on(800e6);
  EXPECT_GT(slow.download_s, fast.download_s);
  EXPECT_DOUBLE_EQ(slow.render_s, fast.render_s);
  // The paper's point: rendering limits the gain from a faster RAT.
  EXPECT_LT(fast.total_s() / slow.total_s(), 1.0);
  EXPECT_GT(fast.total_s() / slow.total_s(), 0.2);
}

TEST(VideoTest, ResolutionsAndBitrates) {
  EXPECT_LT(nominal_bitrate_bps(Resolution::k720p),
            nominal_bitrate_bps(Resolution::k1080p));
  EXPECT_LT(nominal_bitrate_bps(Resolution::k1080p),
            nominal_bitrate_bps(Resolution::k4K));
  EXPECT_LT(nominal_bitrate_bps(Resolution::k4K),
            nominal_bitrate_bps(Resolution::k5p7K));
  EXPECT_EQ(to_string(Resolution::k5p7K), "5.7K");
}

TEST(VideoTest, FourKOverFiveGDeliversSmoothly) {
  sim::Simulator simr;
  // 5G uplink: ~100 Mbps capacity.
  net::PathNetwork path(&simr, simple_path(100e6, from_millis(15)));
  PathFanout fanout(&path);
  VideoConfig cfg;
  cfg.resolution = Resolution::k4K;
  cfg.transport.algo = tcp::CcAlgo::kBbr;
  VideoTelephony video(&simr, &path, &fanout, cfg, sim::Rng(3));
  video.start(10 * kSecond);
  simr.run_until(20 * kSecond);
  const VideoStats s = video.stats();
  EXPECT_NEAR(s.frames_captured, 300u, 2u);
  EXPECT_GT(s.frames_delivered, s.frames_captured - 10);
  EXPECT_LE(s.freeze_events, 1);
  // Frame delay ~= processing (650 ms) + relay (230 ms) + transport.
  EXPECT_GT(s.frame_delay_s.quantile(0.5), 0.8);
  EXPECT_LT(s.frame_delay_s.quantile(0.5), 1.3);
  EXPECT_NEAR(s.mean_received_throughput_bps, 45e6, 10e6);
}

TEST(VideoTest, FiveSevenKOverFourGCongests) {
  sim::Simulator simr;
  // 4G daytime uplink: ~50 Mbps, below the 5.7K nominal 80 Mbps.
  net::PathNetwork path(&simr, simple_path(50e6, from_millis(15)));
  PathFanout fanout(&path);
  VideoConfig cfg;
  cfg.resolution = Resolution::k5p7K;
  cfg.dynamic_scene = true;
  cfg.transport.algo = tcp::CcAlgo::kBbr;
  VideoTelephony video(&simr, &path, &fanout, cfg, sim::Rng(4));
  video.start(15 * kSecond);
  simr.run_until(40 * kSecond);
  const VideoStats s = video.stats();
  // Receiver throughput saturates near link capacity, well under nominal.
  EXPECT_LT(s.mean_received_throughput_bps, 60e6);
  // Delay balloons as the send queue grows.
  EXPECT_GT(s.frame_delay_s.quantile(0.9), 1.5);
}

TEST(VideoTest, DynamicScenesFluctuateMore) {
  const auto run = [](bool dynamic) {
    sim::Simulator simr;
    net::PathNetwork path(&simr, simple_path(200e6, from_millis(10)));
    PathFanout fanout(&path);
    VideoConfig cfg;
    cfg.resolution = Resolution::k5p7K;
    cfg.dynamic_scene = dynamic;
    cfg.transport.algo = tcp::CcAlgo::kBbr;
    VideoTelephony video(&simr, &path, &fanout, cfg, sim::Rng(5));
    video.start(10 * kSecond);
    simr.run_until(25 * kSecond);
    return video.stats();
  };
  const VideoStats st = run(false);
  const VideoStats dy = run(true);
  const auto spread = [](const measure::Cdf& c) {
    return (c.quantile(0.95) - c.quantile(0.05)) / c.mean();
  };
  EXPECT_GT(spread(dy.frame_bytes), 1.5 * spread(st.frame_bytes));
  EXPECT_GT(dy.frame_bytes.mean(), st.frame_bytes.mean());
}

}  // namespace
}  // namespace fiveg::app

# ctest script: `fiveg_runall --jobs N` must be byte-identical to
# `--jobs 1` at the same seed — for the text output, the JSON document
# (which includes the deterministic per-experiment `counters` object) and
# the Chrome trace (timing fields excluded via --no-timing). Tracing is ON
# for both runs, so this also proves instrumentation itself is
# deterministic and does not perturb the simulation.
#
# Invoked as:
#   cmake -DRUNALL=<path-to-fiveg_runall> -DWORK_DIR=<dir>
#         -P runall_determinism.cmake
if(NOT RUNALL OR NOT WORK_DIR)
  message(FATAL_ERROR "RUNALL and WORK_DIR must be set")
endif()
file(MAKE_DIRECTORY ${WORK_DIR})

set(common --smoke --seed 42 --timeout 300 --no-timing)

execute_process(
  COMMAND ${RUNALL} ${common} --jobs 1 --json ${WORK_DIR}/serial.json
          --trace ${WORK_DIR}/serial.trace.json
  OUTPUT_FILE ${WORK_DIR}/serial.txt
  ERROR_VARIABLE serial_err
  RESULT_VARIABLE serial_rc)
if(NOT serial_rc EQUAL 0)
  message(FATAL_ERROR "serial run failed (rc=${serial_rc}): ${serial_err}")
endif()

execute_process(
  COMMAND ${RUNALL} ${common} --jobs 8 --json ${WORK_DIR}/parallel.json
          --trace ${WORK_DIR}/parallel.trace.json
  OUTPUT_FILE ${WORK_DIR}/parallel.txt
  ERROR_VARIABLE parallel_err
  RESULT_VARIABLE parallel_rc)
if(NOT parallel_rc EQUAL 0)
  message(FATAL_ERROR "parallel run failed (rc=${parallel_rc}): ${parallel_err}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/serial.txt ${WORK_DIR}/parallel.txt
  RESULT_VARIABLE text_diff)
if(NOT text_diff EQUAL 0)
  message(FATAL_ERROR "--jobs 8 text output differs from --jobs 1")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/serial.json ${WORK_DIR}/parallel.json
  RESULT_VARIABLE json_diff)
if(NOT json_diff EQUAL 0)
  message(FATAL_ERROR "--jobs 8 JSON output differs from --jobs 1")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/serial.trace.json ${WORK_DIR}/parallel.trace.json
  RESULT_VARIABLE trace_diff)
if(NOT trace_diff EQUAL 0)
  message(FATAL_ERROR "--jobs 8 trace output differs from --jobs 1")
endif()

message(STATUS "runall determinism: text, JSON and trace byte-identical")

# ctest script: `fiveg_runall --jobs N` must be byte-identical to
# `--jobs 1` at the same seed — for the text output, the JSON document
# (which includes the deterministic per-experiment `counters` object) and
# the Chrome trace (timing fields excluded via --no-timing). Tracing is ON
# for both runs, so this also proves instrumentation itself is
# deterministic and does not perturb the simulation. When REPORT is given
# (path to fiveg_report), every per-figure report artifact derived from
# the two JSON documents must be byte-identical too.
#
# Invoked as:
#   cmake -DRUNALL=<path-to-fiveg_runall> [-DREPORT=<path-to-fiveg_report>]
#         -DWORK_DIR=<dir> -P runall_determinism.cmake
if(NOT RUNALL OR NOT WORK_DIR)
  message(FATAL_ERROR "RUNALL and WORK_DIR must be set")
endif()
file(MAKE_DIRECTORY ${WORK_DIR})

set(common --smoke --seed 42 --timeout 300 --no-timing)

execute_process(
  COMMAND ${RUNALL} ${common} --jobs 1 --json ${WORK_DIR}/serial.json
          --trace ${WORK_DIR}/serial.trace.json
  OUTPUT_FILE ${WORK_DIR}/serial.txt
  ERROR_VARIABLE serial_err
  RESULT_VARIABLE serial_rc)
if(NOT serial_rc EQUAL 0)
  message(FATAL_ERROR "serial run failed (rc=${serial_rc}): ${serial_err}")
endif()

execute_process(
  COMMAND ${RUNALL} ${common} --jobs 8 --json ${WORK_DIR}/parallel.json
          --trace ${WORK_DIR}/parallel.trace.json
  OUTPUT_FILE ${WORK_DIR}/parallel.txt
  ERROR_VARIABLE parallel_err
  RESULT_VARIABLE parallel_rc)
if(NOT parallel_rc EQUAL 0)
  message(FATAL_ERROR "parallel run failed (rc=${parallel_rc}): ${parallel_err}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/serial.txt ${WORK_DIR}/parallel.txt
  RESULT_VARIABLE text_diff)
if(NOT text_diff EQUAL 0)
  message(FATAL_ERROR "--jobs 8 text output differs from --jobs 1")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/serial.json ${WORK_DIR}/parallel.json
  RESULT_VARIABLE json_diff)
if(NOT json_diff EQUAL 0)
  message(FATAL_ERROR "--jobs 8 JSON output differs from --jobs 1")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/serial.trace.json ${WORK_DIR}/parallel.trace.json
  RESULT_VARIABLE trace_diff)
if(NOT trace_diff EQUAL 0)
  message(FATAL_ERROR "--jobs 8 trace output differs from --jobs 1")
endif()

if(REPORT)
  foreach(side serial parallel)
    execute_process(
      COMMAND ${REPORT} --in ${WORK_DIR}/${side}.json
              --out-dir ${WORK_DIR}/${side}_report
      OUTPUT_QUIET
      ERROR_VARIABLE report_err
      RESULT_VARIABLE report_rc)
    if(NOT report_rc EQUAL 0)
      message(FATAL_ERROR
              "fiveg_report failed on ${side}.json (rc=${report_rc}): "
              "${report_err}")
    endif()
  endforeach()
  file(GLOB report_files RELATIVE ${WORK_DIR}/serial_report
       ${WORK_DIR}/serial_report/*)
  if(NOT report_files)
    message(FATAL_ERROR "fiveg_report produced no artifacts")
  endif()
  foreach(f ${report_files})
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
              ${WORK_DIR}/serial_report/${f} ${WORK_DIR}/parallel_report/${f}
      RESULT_VARIABLE report_diff)
    if(NOT report_diff EQUAL 0)
      message(FATAL_ERROR
              "report artifact ${f} differs between --jobs 1 and --jobs 8")
    endif()
  endforeach()
  list(LENGTH report_files report_count)
  message(STATUS "runall determinism: text, JSON, trace and "
                 "${report_count} report artifacts byte-identical")
else()
  message(STATUS "runall determinism: text, JSON and trace byte-identical")
endif()

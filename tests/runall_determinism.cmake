# ctest script: `fiveg_runall --jobs N` must be byte-identical to
# `--jobs 1` at the same seed — for the text output, the JSON document
# (which includes the deterministic per-experiment `counters` object) and
# the Chrome trace (timing fields excluded via --no-timing). Tracing is ON
# for both runs, so this also proves instrumentation itself is
# deterministic and does not perturb the simulation. When REPORT is given
# (path to fiveg_report), every per-figure report artifact derived from
# the two JSON documents must be byte-identical too.
#
# Invoked as:
#   cmake -DRUNALL=<path-to-fiveg_runall> [-DREPORT=<path-to-fiveg_report>]
#         [-DQUERY=<path-to-fiveg_query>]
#         [-DFAULTS=<path-to-fault-plan.json>] [-DJOBS=<N;N;...>]
#         [-DSIM_THREADS=<N;N;...>]
#         -DWORK_DIR=<dir> -P runall_determinism.cmake
#
# FAULTS runs the whole campaign under the given fault plan; injected
# faults may legitimately fail an experiment's in-run assertions, so under
# FAULTS a nonzero exit is tolerated as long as every run exits
# identically (determinism is the contract under test, not KPI health).
# JOBS lists the parallel worker counts compared against the serial run
# (default: 8).
# SIM_THREADS lists intra-experiment sim::ParSim worker counts: the leg
# matrix becomes JOBS x SIM_THREADS, each leg passing --sim-threads
# explicitly (explicit values are honored as given, so the threaded path
# genuinely runs even on small hosts). Unset = the flag is omitted
# everywhere, byte-compatible with older invocations. The serial baseline
# always omits the flag, so a SIM_THREADS=1 leg additionally proves
# explicit `--sim-threads 1` matches the default.
# QUERY additionally gives every run its own --store directory and checks
# that each store's fiveg_query JSON export is byte-identical to the run's
# own --json document — i.e. the columnar round-trip is exact at every
# worker count, so store exports from --jobs 1/2/8 all merge to the same
# bytes.
if(NOT RUNALL OR NOT WORK_DIR)
  message(FATAL_ERROR "RUNALL and WORK_DIR must be set")
endif()
if(NOT JOBS)
  set(JOBS 8)
endif()
file(MAKE_DIRECTORY ${WORK_DIR})

set(common --smoke --seed 42 --timeout 300 --no-timing)
if(FAULTS)
  list(APPEND common --faults ${FAULTS})
endif()

# Extra args beyond (side, jobs): an optional --sim-threads value.
function(run_campaign side jobs)
  set(st_args)
  if(ARGN)
    list(GET ARGN 0 st)
    set(st_args --sim-threads ${st})
  endif()
  set(store_args)
  if(QUERY)
    file(REMOVE_RECURSE ${WORK_DIR}/${side}_store)
    set(store_args --store ${WORK_DIR}/${side}_store)
  endif()
  execute_process(
    COMMAND ${RUNALL} ${common} --jobs ${jobs} ${st_args}
            --json ${WORK_DIR}/${side}.json
            --trace ${WORK_DIR}/${side}.trace.json ${store_args}
    OUTPUT_FILE ${WORK_DIR}/${side}.txt
    ERROR_VARIABLE run_err
    RESULT_VARIABLE run_rc)
  if(NOT run_rc EQUAL 0 AND NOT FAULTS)
    message(FATAL_ERROR "${side} run failed (rc=${run_rc}): ${run_err}")
  endif()
  set(${side}_rc ${run_rc} PARENT_SCOPE)
endfunction()

# Exports `side`'s store through fiveg_query and requires the result to be
# byte-identical to the run's own JSON document (--no-timing keeps the
# document free of wall-clock fields, which the store never holds).
function(check_store_export side)
  execute_process(
    COMMAND ${QUERY} ${WORK_DIR}/${side}_store
            --export-runall-json ${WORK_DIR}/${side}.store.json
    OUTPUT_QUIET ERROR_VARIABLE query_err
    RESULT_VARIABLE query_rc)
  if(NOT query_rc EQUAL 0)
    message(FATAL_ERROR
            "fiveg_query failed on ${side}_store (rc=${query_rc}): "
            "${query_err}")
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/${side}.json ${WORK_DIR}/${side}.store.json
    RESULT_VARIABLE store_diff)
  if(NOT store_diff EQUAL 0)
    message(FATAL_ERROR
            "${side} store export differs from the run's own JSON")
  endif()
endfunction()

run_campaign(serial 1)
if(QUERY)
  check_store_export(serial)
endif()

# Leg matrix: JOBS x SIM_THREADS, encoded "jobs:st" ("" st = flag omitted).
set(legs)
foreach(jobs ${JOBS})
  if(SIM_THREADS)
    foreach(st ${SIM_THREADS})
      list(APPEND legs "${jobs}:${st}")
    endforeach()
  else()
    list(APPEND legs "${jobs}:")
  endif()
endforeach()

foreach(leg ${legs})
  string(REPLACE ":" ";" leg_parts "${leg}")
  list(GET leg_parts 0 jobs)
  set(st_args)
  set(side parallel${jobs})
  list(LENGTH leg_parts leg_len)
  if(leg_len GREATER 1)
    list(GET leg_parts 1 st)
    set(st_args ${st})
    set(side parallel${jobs}st${st})
  endif()
  run_campaign(${side} ${jobs} ${st_args})
  if(NOT ${side}_rc EQUAL ${serial_rc})
    message(FATAL_ERROR
            "--jobs ${jobs} exit code ${${side}_rc} differs from "
            "--jobs 1 exit code ${serial_rc}")
  endif()
  foreach(artifact txt json trace.json)
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
              ${WORK_DIR}/serial.${artifact} ${WORK_DIR}/${side}.${artifact}
      RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
      message(FATAL_ERROR
              "--jobs ${jobs} ${artifact} output differs from --jobs 1")
    endif()
  endforeach()
  # The run's own JSON already matched serial.json byte-for-byte, so a
  # matching store export here proves store exports agree across all
  # worker counts too.
  if(QUERY)
    check_store_export(${side})
  endif()
endforeach()

if(REPORT)
  list(GET legs 0 first_leg)
  string(REPLACE ":" ";" first_parts "${first_leg}")
  list(GET first_parts 0 first_jobs)
  set(first_side parallel${first_jobs})
  list(LENGTH first_parts first_len)
  if(first_len GREATER 1)
    list(GET first_parts 1 first_st)
    set(first_side parallel${first_jobs}st${first_st})
  endif()
  set(sides serial ${first_side})
  foreach(side ${sides})
    execute_process(
      COMMAND ${REPORT} --in ${WORK_DIR}/${side}.json
              --out-dir ${WORK_DIR}/${side}_report
      OUTPUT_QUIET
      ERROR_VARIABLE report_err
      RESULT_VARIABLE report_rc)
    if(NOT report_rc EQUAL 0)
      message(FATAL_ERROR
              "fiveg_report failed on ${side}.json (rc=${report_rc}): "
              "${report_err}")
    endif()
  endforeach()
  file(GLOB report_files RELATIVE ${WORK_DIR}/serial_report
       ${WORK_DIR}/serial_report/*)
  if(NOT report_files)
    message(FATAL_ERROR "fiveg_report produced no artifacts")
  endif()
  foreach(f ${report_files})
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
              ${WORK_DIR}/serial_report/${f}
              ${WORK_DIR}/${first_side}_report/${f}
      RESULT_VARIABLE report_diff)
    if(NOT report_diff EQUAL 0)
      message(FATAL_ERROR
              "report artifact ${f} differs between --jobs 1 and "
              "--jobs ${first_jobs}")
    endif()
  endforeach()
  list(LENGTH report_files report_count)
  message(STATUS "runall determinism: text, JSON, trace and "
                 "${report_count} report artifacts byte-identical")
else()
  message(STATUS "runall determinism: text, JSON and trace byte-identical")
endif()

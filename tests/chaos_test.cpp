// The chaos tier: cross-stack runs under injected faults, judged by
// fault::InvariantChecker against structural truths (conservation, TCP
// sanity, RRC legality, bounded serving gaps, physical energy accounting)
// instead of golden KPI values. Every test installs its fault runtime
// BEFORE constructing the simulator and the components under test — the
// injection points cache the runtime handle at construction.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/runner.h"
#include "core/scenario.h"
#include "energy/rrc_power_machine.h"
#include "fault/fault.h"
#include "fault/invariants.h"
#include "geo/campus.h"
#include "geo/route.h"
#include "net/aqm.h"
#include "net/link.h"
#include "net/packet.h"
#include "net/path.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "ran/deployment.h"
#include "ran/handoff.h"
#include "ran/ue_cohort.h"
#include "sim/parsim.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "tcp/cc_algorithms.h"
#include "tcp/tcp_receiver.h"
#include "tcp/tcp_sender.h"

namespace fiveg {
namespace {

using sim::from_millis;
using sim::kSecond;

net::Packet make_packet(std::uint64_t seq, std::uint32_t bytes = 1500) {
  net::Packet p;
  p.flow_id = 1;
  p.seq = seq;
  p.size_bytes = bytes;
  return p;
}

fault::FaultSpec link_loss(sim::Time begin, sim::Time end, double loss) {
  fault::FaultSpec s;
  s.kind = fault::FaultKind::kLinkLoss;
  s.begin = begin;
  s.end = end;
  s.loss = loss;
  return s;
}

// --- net: packet conservation and delay spikes ---

TEST(LinkChaosTest, BurstLossConservesEveryPacket) {
  fault::FaultPlan plan;
  plan.add(link_loss(kSecond, 3 * kSecond, 0.35));
  fault::Runtime rt(&plan, sim::Rng(42).fork("fault").seed());
  const fault::ScopedFaults scope(&rt);

  sim::Simulator simr;
  net::Link::Config cfg;
  cfg.rate_bps = 12e6;
  cfg.queue_bytes = 8 * 1500;  // small enough for queue drops too
  net::CountingSink sink;
  net::Link link(&simr, cfg, &sink);
  const int kOffered = 500;
  for (int i = 0; i < kOffered; ++i) {
    simr.schedule_at(i * from_millis(10), [&link, i] {
      link.send(make_packet(i));
    });
  }
  simr.run();

  EXPECT_GT(link.fault_dropped_packets(), 0u);   // the burst really dropped
  EXPECT_LT(link.fault_dropped_packets(), 200u);  // only inside the window
  EXPECT_EQ(link.offered_packets(), static_cast<std::uint64_t>(kOffered));
  EXPECT_EQ(sink.packets(), link.delivered_packets());
  fault::InvariantChecker checker;
  checker.check_link_conservation(link);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(LinkChaosTest, AqmUnderBurstLossKeepsExtendedLedger) {
  // CoDel+ECN under a lossy burst: fault drops, AQM marks and deliveries
  // all land in one ledger, and the extended conservation invariant
  // (including the marked <= surviving bound) must hold throughout.
  fault::FaultPlan plan;
  plan.add(link_loss(kSecond, 3 * kSecond, 0.30));
  fault::Runtime rt(&plan, sim::Rng(42).fork("fault").seed());
  const fault::ScopedFaults scope(&rt);

  sim::Simulator simr;
  net::Link::Config cfg;
  cfg.rate_bps = 12e6;
  cfg.queue_bytes = 16 << 20;  // deep buffer: sheds come from CoDel, not tail
  cfg.qdisc.kind = net::QdiscKind::kCoDel;
  cfg.qdisc.ecn = true;
  cfg.name = "aqm-chaos";
  net::CountingSink sink;
  net::Link link(&simr, cfg, &sink);
  // 2x overload of ECT traffic for 5 s, straddling the loss window.
  const int kOffered = 10000;
  for (int i = 0; i < kOffered; ++i) {
    simr.schedule_at(i * (from_millis(1) / 2), [&link, i] {
      net::Packet p = make_packet(i);
      p.ect = true;
      link.send(std::move(p));
    });
  }
  simr.run();

  EXPECT_GT(link.fault_dropped_packets(), 0u);  // the burst fired
  EXPECT_GT(link.marked_packets(), 0u);         // the AQM kept policing
  EXPECT_EQ(link.dropped_packets(), 0u);        // ...by marking, not dropping
  EXPECT_EQ(link.offered_packets(), static_cast<std::uint64_t>(kOffered));
  fault::InvariantChecker checker;
  checker.check_link_conservation(link);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(TcpChaosAqmTest, CodelBottleneckSurvivesBurstLoss) {
  // A full transport loop over a CoDel bottleneck while the link bleeds:
  // the AQM and the fault layer drop from the same queue and the flow must
  // recover once the window closes.
  fault::FaultPlan plan;
  plan.add(link_loss(2 * kSecond, 4 * kSecond, 0.35));
  fault::Runtime rt(&plan, sim::Rng(21).fork("fault").seed());
  const fault::ScopedFaults scope(&rt);

  sim::Simulator simr;
  std::vector<net::Link::Config> hops(2);
  hops[0].rate_bps = 50e6;
  hops[0].prop_delay = from_millis(10);
  hops[0].queue_bytes = 400 * 1500;
  hops[0].qdisc.kind = net::QdiscKind::kCoDel;
  hops[0].name = "aqm-bottleneck";
  hops[1].rate_bps = 1e9;
  hops[1].prop_delay = from_millis(5);
  hops[1].queue_bytes = 8 << 20;
  hops[1].name = "wired";

  tcp::TcpConfig cfg;
  cfg.algo = tcp::CcAlgo::kCubic;
  net::PathNetwork path(&simr, std::move(hops));
  auto sender = std::make_unique<tcp::TcpSender>(
      &simr, cfg, 1, [&path](net::Packet p) { path.send_a_to_b(std::move(p)); });
  auto receiver = std::make_unique<tcp::TcpReceiver>(
      &simr, cfg, 1, [&path](net::Packet p) { path.send_b_to_a(std::move(p)); });
  path.attach_b(receiver.get());
  path.attach_a(sender.get());
  sender->start_bulk();
  simr.run_until(12 * kSecond);

  EXPECT_GT(path.forward_link(0).fault_dropped_packets(), 0u);
  EXPECT_GT(sender->retransmissions(), 0u);
  EXPECT_GT(receiver->mean_goodput_bps(8 * kSecond, 12 * kSecond), 5e6);
  fault::InvariantChecker checker;
  checker.check_tcp(*sender, *receiver);
  for (std::size_t i = 0; i < path.hop_count(); ++i) {
    checker.check_link_conservation(path.forward_link(i));
    checker.check_link_conservation(path.reverse_link(i));
  }
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(LinkChaosTest, DelaySpikeAddsExactlyTheConfiguredDelay) {
  fault::FaultPlan plan;
  fault::FaultSpec spike;
  spike.kind = fault::FaultKind::kLinkDelay;
  spike.begin = kSecond;
  spike.end = 2 * kSecond;
  spike.extra_delay = from_millis(40);
  plan.add(spike);
  fault::Runtime rt(&plan, 1);
  const fault::ScopedFaults scope(&rt);

  sim::Simulator simr;
  net::Link::Config cfg;
  cfg.rate_bps = 12e6;  // 1500 B = 1 ms serialisation
  cfg.prop_delay = from_millis(5);
  std::vector<sim::Time> latencies;
  sim::Time sent_at = 0;
  net::LambdaSink sink([&](net::Packet) {
    latencies.push_back(simr.now() - sent_at);
  });
  net::Link link(&simr, cfg, &sink);
  simr.schedule_at(from_millis(500), [&] {
    sent_at = simr.now();
    link.send(make_packet(0));
  });
  simr.schedule_at(from_millis(1500), [&] {
    sent_at = simr.now();
    link.send(make_packet(1));
  });
  simr.run();

  ASSERT_EQ(latencies.size(), 2u);
  EXPECT_EQ(latencies[1] - latencies[0], from_millis(40));
  fault::InvariantChecker checker;
  checker.check_link_conservation(link);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

// --- tcp: loss recovery across every congestion controller ---

struct TcpSession {
  TcpSession(sim::Simulator* simr, std::vector<net::Link::Config> hops,
             tcp::CcAlgo algo)
      : path(simr, std::move(hops)) {
    tcp::TcpConfig cfg;
    cfg.algo = algo;
    sender = std::make_unique<tcp::TcpSender>(
        simr, cfg, 1, [this](net::Packet p) { path.send_a_to_b(std::move(p)); });
    receiver = std::make_unique<tcp::TcpReceiver>(
        simr, cfg, 1, [this](net::Packet p) { path.send_b_to_a(std::move(p)); });
    path.attach_b(receiver.get());
    path.attach_a(sender.get());
  }

  net::PathNetwork path;
  std::unique_ptr<tcp::TcpSender> sender;
  std::unique_ptr<tcp::TcpReceiver> receiver;
};

std::vector<net::Link::Config> tcp_path() {
  std::vector<net::Link::Config> hops(2);
  hops[0].rate_bps = 50e6;
  hops[0].prop_delay = from_millis(10);
  hops[0].queue_bytes = 100 * 1500;
  hops[0].name = "bottleneck";
  hops[1].rate_bps = 1e9;
  hops[1].prop_delay = from_millis(5);
  hops[1].queue_bytes = 8 << 20;
  hops[1].name = "wired";
  return hops;
}

class TcpChaosTest : public ::testing::TestWithParam<tcp::CcAlgo> {};

TEST_P(TcpChaosTest, SurvivesBurstLossBlackoutAndDelaySpike) {
  // A gauntlet of transport faults on every link: a lossy burst, a total
  // 1-second blackout (forces an RTO storm) and a delay spike. Every
  // controller must keep the books straight and resume after the faults.
  fault::FaultPlan plan;
  plan.add(link_loss(2 * kSecond, 4 * kSecond, 0.35));
  plan.add(link_loss(6 * kSecond, 7 * kSecond, 1.0));
  fault::FaultSpec spike;
  spike.kind = fault::FaultKind::kLinkDelay;
  spike.begin = 8 * kSecond;
  spike.end = 9 * kSecond;
  spike.extra_delay = from_millis(30);
  plan.add(spike);
  fault::Runtime rt(&plan, sim::Rng(7).fork("fault").seed());
  const fault::ScopedFaults scope(&rt);

  sim::Simulator simr;
  TcpSession s(&simr, tcp_path(), GetParam());
  s.sender->start_bulk();
  simr.run_until(15 * kSecond);

  const std::string algo = to_string(GetParam());
  // The flow recovers: data keeps arriving after the last fault window.
  EXPECT_GT(s.receiver->mean_goodput_bps(10 * kSecond, 15 * kSecond), 1e6)
      << algo;
  // The blackout guarantees at least one RTO; the burst guarantees
  // retransmissions.
  EXPECT_GE(s.sender->timeouts(), 1u) << algo;
  EXPECT_GT(s.sender->retransmissions(), 0u) << algo;

  fault::InvariantChecker checker;
  checker.check_tcp(*s.sender, *s.receiver);
  for (std::size_t i = 0; i < s.path.hop_count(); ++i) {
    checker.check_link_conservation(s.path.forward_link(i));
    checker.check_link_conservation(s.path.reverse_link(i));
    EXPECT_GT(s.path.forward_link(i).fault_dropped_packets() +
                  s.path.reverse_link(i).fault_dropped_packets(),
              0u)
        << algo << " hop " << i;
  }
  EXPECT_TRUE(checker.ok()) << algo << "\n" << checker.report();
}

INSTANTIATE_TEST_SUITE_P(Algos, TcpChaosTest,
                         ::testing::Values(tcp::CcAlgo::kReno,
                                           tcp::CcAlgo::kCubic,
                                           tcp::CcAlgo::kVegas,
                                           tcp::CcAlgo::kVeno,
                                           tcp::CcAlgo::kBbr),
                         [](const auto& info) { return to_string(info.param); });

TEST(ServerStallChaosTest, StallBlocksOnlyNewData) {
  fault::FaultPlan plan;
  fault::FaultSpec stall;
  stall.kind = fault::FaultKind::kServerStall;
  stall.begin = 2 * kSecond;
  stall.end = 4 * kSecond;
  plan.add(stall);
  fault::Runtime rt(&plan, 3);
  const fault::ScopedFaults scope(&rt);

  sim::Simulator simr;
  TcpSession s(&simr, tcp_path(), tcp::CcAlgo::kCubic);
  s.sender->start_bulk();

  std::uint64_t rcvd_early = 0, rcvd_late = 0, rcvd_at_end_of_stall = 0;
  // In-flight data drains within an RTT of the stall onset; after that the
  // receiver sees nothing new until the window closes.
  simr.schedule_at(from_millis(2500), [&] {
    rcvd_early = s.receiver->bytes_received();
  });
  simr.schedule_at(from_millis(3900), [&] {
    rcvd_late = s.receiver->bytes_received();
  });
  simr.schedule_at(from_millis(4500), [&] {
    rcvd_at_end_of_stall = s.receiver->bytes_received();
  });
  simr.run_until(8 * kSecond);

  EXPECT_GT(rcvd_early, 0u);
  EXPECT_EQ(rcvd_early, rcvd_late);  // fully stalled mid-window
  EXPECT_GT(rcvd_at_end_of_stall, rcvd_late);  // resumes promptly
  EXPECT_GT(s.receiver->mean_goodput_bps(5 * kSecond, 8 * kSecond), 10e6);
  fault::InvariantChecker checker;
  checker.check_tcp(*s.sender, *s.receiver);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

// --- ran/radio: sector outage, RRC re-establishment, coverage holes ---

// A quasi-stationary UE parked on the boresight of the first NR sector: the
// serving pair never changes on its own, so every transition in the test is
// caused by the injected fault.
class RanChaosFixture : public ::testing::Test {
 protected:
  RanChaosFixture()
      : campus_(geo::make_campus(sim::Rng(42))),
        dep_(ran::make_deployment(&campus_, sim::Rng(7))) {}

  geo::Route parked_route() const {
    const ran::Cell& c = dep_.cells(radio::Rat::kNr).front();
    const double az = c.site.antenna.azimuth_deg() * M_PI / 180.0;
    const geo::Point p{c.site.pos.x + 40 * std::cos(az),
                       c.site.pos.y + 40 * std::sin(az)};
    return geo::Route({p, {p.x + 2.0, p.y}});
  }

  ran::MobilityConfig parked_config() const {
    ran::MobilityConfig cfg;
    cfg.speed_mps = 0.01;  // 2 m route: stays "parked" for 200 s
    return cfg;
  }

  geo::CampusMap campus_;
  ran::Deployment dep_;
};

TEST_F(RanChaosFixture, AnchorOutageReestablishesWithinBound) {
  // Find the anchor the parked UE camps on (fault-free dry run).
  int anchor_pci = -1;
  {
    sim::Simulator simr;
    ran::HandoffEngine probe(&simr, &dep_, parked_config(), sim::Rng(5));
    probe.start(parked_route());
    simr.run_until(kSecond);
    ASSERT_NE(probe.serving_lte(), nullptr);
    anchor_pci = probe.serving_lte()->pci;
  }

  fault::FaultPlan plan;
  fault::FaultSpec outage;
  outage.kind = fault::FaultKind::kSectorOutage;
  outage.begin = 5 * kSecond;
  outage.end = 8 * kSecond;
  outage.pci = anchor_pci;
  plan.add(outage);
  fault::Runtime rt(&plan, 11);
  const fault::ScopedFaults scope(&rt);

  sim::Simulator simr;
  const ran::MobilityConfig cfg = parked_config();
  ran::HandoffEngine engine(&simr, &dep_, cfg, sim::Rng(5));
  engine.start(parked_route());
  const ran::Cell* serving_during_outage = nullptr;
  simr.schedule_at(7 * kSecond, [&] {
    serving_during_outage = engine.serving_lte();
  });
  simr.run_until(20 * kSecond);

  // Exactly one radio-link failure, recovered onto a live cell in exactly
  // the detection + procedure bound.
  ASSERT_EQ(engine.serving_gaps().size(), 1u);
  const auto& gap = engine.serving_gaps().front();
  EXPECT_EQ(gap.end - gap.begin, cfg.reestablish.bound());
  ASSERT_NE(serving_during_outage, nullptr);
  EXPECT_NE(serving_during_outage->pci, anchor_pci);
  EXPECT_TRUE(engine.data_interrupted(gap.begin));
  EXPECT_FALSE(engine.data_interrupted(gap.end));

  fault::InvariantChecker checker;
  checker.check_serving_continuity(engine, cfg.reestablish.bound());
  checker.check_rrc_legality(engine.rrc_trajectory());
  EXPECT_TRUE(checker.ok()) << checker.report();
  // The trajectory passed through Idle (RLF) and back to connected.
  bool saw_idle = false;
  for (const auto& [t, state] : engine.rrc_trajectory()) {
    saw_idle |= (state == ran::RrcState::kIdle && t > 0);
  }
  EXPECT_TRUE(saw_idle);
}

TEST_F(RanChaosFixture, NrOutageAbortsHandoffsAndNeverAttaches) {
  // Every NR sector is dark for the whole run, but measurements still show
  // strong NR signal — the NSA controller keeps triggering 4G→5G adds and
  // every one of them must abort mid-hand-off (the target is in outage),
  // with the UE riding out the run on its LTE anchor.
  fault::FaultPlan plan;
  for (const ran::Cell& c : dep_.cells(radio::Rat::kNr)) {
    fault::FaultSpec outage;
    outage.kind = fault::FaultKind::kSectorOutage;
    outage.begin = 0;
    outage.end = 60 * kSecond;
    outage.pci = c.pci;
    plan.add(outage);
  }
  fault::Runtime rt(&plan, 13);
  const fault::ScopedFaults scope(&rt);

  sim::Simulator simr;
  ran::HandoffEngine engine(&simr, &dep_, parked_config(), sim::Rng(5));
  engine.start(parked_route());
  bool nr_ever_attached = false;
  for (int t = 1; t <= 9; ++t) {
    simr.schedule_at(t * kSecond, [&] {
      nr_ever_attached |= engine.nr_attached();
    });
  }
  simr.run_until(10 * kSecond);

  EXPECT_FALSE(nr_ever_attached);
  EXPECT_NE(engine.serving_lte(), nullptr);
  ASSERT_FALSE(engine.records().empty());  // adds kept triggering...
  for (const ran::HandoffRecord& r : engine.records()) {
    EXPECT_EQ(r.type, ran::HandoffType::k4G5G);
    EXPECT_TRUE(r.aborted);  // ...and every one aborted legally
  }
  fault::InvariantChecker checker;
  checker.check_rrc_legality(engine.rrc_trajectory());
  checker.check_serving_continuity(engine, sim::Time{0});  // no gaps at all
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_EQ(engine.serving_gaps().size(), 0u);
}

TEST_F(RanChaosFixture, CoverageHoleShiftsRsrpByExactlyTheOffset) {
  fault::FaultPlan plan;
  fault::FaultSpec hole;
  hole.kind = fault::FaultKind::kCoverageHole;
  hole.begin = kSecond;
  hole.end = 2 * kSecond;
  hole.offset_db = 50.0;
  plan.add(hole);
  fault::Runtime rt(&plan, 17);
  const fault::ScopedFaults scope(&rt);

  sim::Simulator simr;
  // The environment captures the fault runtime at construction: build a
  // fresh deployment under the installed scope.
  const ran::Deployment dep = ran::make_deployment(&campus_, sim::Rng(7));
  const geo::Point pos = campus_.bounds().center();
  double before = 0, during = 0, after = 0;
  simr.schedule_at(from_millis(500), [&] {
    before = dep.best(radio::Rat::kNr, pos).rsrp_dbm;
  });
  simr.schedule_at(from_millis(1500), [&] {
    during = dep.best(radio::Rat::kNr, pos).rsrp_dbm;
  });
  simr.schedule_at(from_millis(2500), [&] {
    after = dep.best(radio::Rat::kNr, pos).rsrp_dbm;
  });
  simr.run();
  EXPECT_NEAR(before - during, 50.0, 1e-9);
  EXPECT_NEAR(before, after, 1e-9);  // fully restored after the window
}

TEST_F(RanChaosFixture, CoverageHoleDropsTheNrLeg) {
  fault::FaultPlan plan;
  fault::FaultSpec hole;
  hole.kind = fault::FaultKind::kCoverageHole;
  hole.begin = 10 * kSecond;
  hole.end = 30 * kSecond;
  hole.offset_db = 50.0;
  plan.add(hole);
  fault::Runtime rt(&plan, 19);
  const fault::ScopedFaults scope(&rt);

  sim::Simulator simr;
  const ran::Deployment dep = ran::make_deployment(&campus_, sim::Rng(7));
  ran::HandoffEngine engine(&simr, &dep, parked_config(), sim::Rng(5));
  engine.start(parked_route());
  bool attached_before_hole = false;
  bool attached_in_hole = true;
  simr.schedule_at(9 * kSecond, [&] {
    attached_before_hole = engine.nr_attached();
  });
  simr.schedule_at(25 * kSecond, [&] {
    attached_in_hole = engine.nr_attached();
  });
  simr.run_until(26 * kSecond);

  // Parked on an NR boresight the leg comes up quickly; a 50 dB shadowing
  // hole pushes RSRP far below the NSA service floor, so the UE falls back
  // to LTE — the paper's coverage-hole behaviour.
  EXPECT_TRUE(attached_before_hole);
  EXPECT_FALSE(attached_in_hole);
  EXPECT_NE(engine.serving_lte(), nullptr);
  fault::InvariantChecker checker;
  checker.check_rrc_legality(engine.rrc_trajectory());
  EXPECT_TRUE(checker.ok()) << checker.report();
  bool saw_fallback = false;
  for (const ran::HandoffRecord& r : engine.records()) {
    saw_fallback |= (r.type == ran::HandoffType::k5G4G && !r.aborted);
  }
  EXPECT_TRUE(saw_fallback);
}

// --- energy: physical accounting under every model ---

TEST(EnergyChaosTest, ReplayResidenciesCoverEveryModel) {
  const energy::RrcPowerMachine machine;
  fault::InvariantChecker checker;
  for (const energy::RadioModel model :
       {energy::RadioModel::kLteOnly, energy::RadioModel::kNrNsa,
        energy::RadioModel::kNrOracle, energy::RadioModel::kDynamicSwitch}) {
    checker.check_energy(
        machine.replay(energy::web_browsing_trace(sim::Rng(4)), model),
        machine.config().step);
    checker.check_energy(
        machine.replay(energy::file_transfer_trace(300'000'000), model),
        machine.config().step);
  }
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GE(checker.checks_run(), 8u * 3u);
}

// --- parsim: the fault campaign on the parallel lock-step core ---

// Three domain-pinned link worlds, one per sim::ParSim lane, offered
// packets through a burst-loss window. Returns a canonical transcript
// (per-lane ledgers + merged deterministic metrics); every partition must
// keep packet conservation and the transcript must not depend on the
// worker-thread count.
std::string run_partitioned_fault_links(int threads) {
  fault::FaultPlan plan;
  plan.add(link_loss(kSecond, 3 * kSecond, 0.35));
  fault::Runtime rt(&plan, sim::Rng(42).fork("fault").seed());
  const fault::ScopedFaults fscope(&rt);
  obs::MetricsRegistry reg;
  const obs::ScopedObs oscope(nullptr, &reg);

  sim::ParSimConfig cfg;
  cfg.lanes = 3;
  cfg.threads = threads;
  cfg.lookahead = 200 * sim::kMicrosecond;
  sim::ParSim par(cfg);

  struct World {
    std::unique_ptr<net::CountingSink> sink;
    std::unique_ptr<net::Link> link;
  };
  std::vector<World> worlds(3);
  for (int k = 0; k < 3; ++k) {
    par.with_lane(k, [&, k] {
      World& w = worlds[static_cast<std::size_t>(k)];
      w.sink = std::make_unique<net::CountingSink>();
      net::Link::Config lcfg;
      lcfg.rate_bps = 12e6;
      lcfg.queue_bytes = 8 * 1500;
      lcfg.name = "chaos-lane" + std::to_string(k);
      lcfg.domain = k;
      w.link = std::make_unique<net::Link>(&par.lane(k), lcfg, w.sink.get());
      net::Link* link = w.link.get();
      for (int i = 0; i < 400; ++i) {
        par.lane(k).schedule_at(i * from_millis(10), [link, i] {
          link->send(make_packet(i));
        });
      }
    });
  }
  par.run_until(5 * kSecond);
  par.finish();

  std::ostringstream os;
  std::uint64_t fault_drops = 0;
  for (int k = 0; k < 3; ++k) {
    const World& w = worlds[static_cast<std::size_t>(k)];
    fault::InvariantChecker checker;
    checker.check_link_conservation(*w.link);
    EXPECT_TRUE(checker.ok()) << "lane " << k << ": " << checker.report();
    fault_drops += w.link->fault_dropped_packets();
    os << "lane" << k << ": offered=" << w.link->offered_packets()
       << " delivered=" << w.link->delivered_packets()
       << " fault_dropped=" << w.link->fault_dropped_packets()
       << " sink=" << w.sink->packets() << "\n";
  }
  EXPECT_GT(fault_drops, 0u) << "the burst never fired";
  for (const auto& s : reg.snapshot(obs::MetricClock::kSim)) {
    os << s.name << '=' << s.value << ";";
  }
  return os.str();
}

TEST(ParSimChaosTest, FaultedPartitionsConserveAndStayThreadInvariant) {
  const std::string serial = run_partitioned_fault_links(1);
  EXPECT_EQ(serial, run_partitioned_fault_links(2));
  EXPECT_EQ(serial, run_partitioned_fault_links(4));
}

// A 2-district partitioned city on the parallel core: the Runner installs
// the fault plan (sector outage + burst loss + coverage hole) and the
// campaign output must be byte-identical across every --jobs x
// --sim-threads cell.
class PartitionedCityChaosExperiment final : public core::Experiment {
 public:
  std::string name() const override { return "par_city_chaos"; }
  std::string paper_ref() const override { return "chaos"; }
  std::string description() const override {
    return "partitioned city under sector outage + coverage hole";
  }
  bool smoke() const override { return true; }

  void run(const core::ExperimentContext& ctx) override {
    core::PartitionedCityConfig part;
    part.districts = 2;
    part.district.width_m = 640.0;
    part.district.height_m = 640.0;
    part.district.grid.rings = 1;

    sim::ParSimConfig pcfg;
    pcfg.lanes = part.districts;
    pcfg.threads = ctx.sim_threads;
    pcfg.lookahead = core::city_partition_lookahead(part);
    sim::ParSim par(pcfg);

    struct District {
      std::unique_ptr<core::CityScenario> sc;
      std::unique_ptr<ran::UeCohort> cohort;
    };
    const sim::Time duration = 10 * kSecond;
    std::vector<District> districts(static_cast<std::size_t>(part.districts));
    for (int k = 0; k < part.districts; ++k) {
      par.with_lane(k, [&, k] {
        District& d = districts[static_cast<std::size_t>(k)];
        const std::string tag = "district" + std::to_string(k);
        d.sc = std::make_unique<core::CityScenario>(
            sim::Rng(ctx.seed).fork(tag).seed(), part.district);
        ran::CohortConfig ccfg;
        ccfg.name = "chaos.d" + std::to_string(k);
        ccfg.domain = k;
        d.cohort = std::make_unique<ran::UeCohort>(
            &d.sc->deployment(), ccfg, sim::Rng(ctx.seed).fork(tag + ".cohort"));
        sim::Rng place = sim::Rng(ctx.seed).fork(tag + ".ues");
        for (int i = 0; i < 4; ++i) {
          d.cohort->add_route(
              geo::make_waypoint_route(d.sc->campus(), place, 4), 1.4);
        }
        for (int i = 4; i < 30; ++i) {
          d.cohort->add_stationary(d.sc->campus().random_point(place));
        }
        d.cohort->start(&par.lane(k), duration);
      });
    }
    par.run_until(duration);
    par.finish();

    std::uint64_t sweeps = 0, handoffs = 0, a3 = 0;
    for (const District& d : districts) {
      sweeps += d.cohort->stats().sweeps;
      handoffs += d.cohort->stats().handoffs;
      a3 += d.cohort->stats().a3_triggers;
    }
    EXPECT_GT(sweeps, 0u);
    *ctx.out << name() << ": sweeps=" << sweeps << " handoffs=" << handoffs
             << " a3=" << a3 << " windows=" << par.windows() << "\n\n";
    ctx.metric("sweeps", static_cast<double>(sweeps), "count");
    ctx.metric("handoffs_total", static_cast<double>(handoffs), "count");
    ctx.metric("a3_triggers", static_cast<double>(a3), "count");
    ctx.metric("parsim_windows", static_cast<double>(par.windows()), "count");
  }
};

TEST(ParSimChaosTest, FaultedPartitionedCityIsJobsAndSimThreadsDeterministic) {
  core::ExperimentRegistry reg;
  reg.add([] { return std::make_unique<PartitionedCityChaosExperiment>(); });

  // Harvest a PCI that really exists in district 0 (same seed forks the
  // experiment will draw), so the sector outage genuinely fires.
  const std::uint64_t exp_seed = core::Runner::fork_seed(42, "par_city_chaos");
  core::PartitionedCityConfig part;
  part.district.width_m = 640.0;
  part.district.height_m = 640.0;
  part.district.grid.rings = 1;
  const core::CityScenario probe(sim::Rng(exp_seed).fork("district0").seed(),
                                 part.district);
  ASSERT_FALSE(probe.deployment().cells(radio::Rat::kNr).empty());
  const int pci = probe.deployment().cells(radio::Rat::kNr).front().pci;

  auto plan = std::make_shared<fault::FaultPlan>();
  plan->add(link_loss(kSecond, 3 * kSecond, 0.35));
  fault::FaultSpec outage;
  outage.kind = fault::FaultKind::kSectorOutage;
  outage.begin = 3 * kSecond;
  outage.end = 7 * kSecond;
  outage.pci = pci;
  plan->add(outage);
  fault::FaultSpec hole;
  hole.kind = fault::FaultKind::kCoverageHole;
  hole.begin = 2 * kSecond;
  hole.end = 8 * kSecond;
  hole.offset_db = 30.0;
  plan->add(hole);

  core::RunnerOptions serial;
  serial.jobs = 1;
  serial.sim_threads = 1;
  serial.seed = 42;
  serial.faults = plan;
  std::ostringstream ref;
  core::write_json(core::Runner(serial, &reg).run(), ref,
                   /*include_timing=*/false);

  for (const auto& [jobs, st] : {std::pair{2, 2}, {1, 4}, {2, 1}}) {
    core::RunnerOptions leg = serial;
    leg.jobs = jobs;
    leg.sim_threads = st;
    std::ostringstream got;
    core::write_json(core::Runner(leg, &reg).run(), got,
                     /*include_timing=*/false);
    EXPECT_EQ(ref.str(), got.str()) << "jobs=" << jobs << " st=" << st;
  }

  // The plan really changed the campaign: a fault-free run differs.
  core::RunnerOptions clean = serial;
  clean.faults = nullptr;
  std::ostringstream jc;
  core::write_json(core::Runner(clean, &reg).run(), jc,
                   /*include_timing=*/false);
  EXPECT_NE(ref.str(), jc.str());
}

// --- core: a faulted campaign is --jobs-deterministic ---

// An experiment whose outcome depends on the ambient fault runtime the
// Runner installs: packets through a lossy-window link.
class FaultedLinkExperiment final : public core::Experiment {
 public:
  explicit FaultedLinkExperiment(int index) : index_(index) {}

  std::string name() const override {
    return "faulted_link_" + std::to_string(index_);
  }
  std::string paper_ref() const override { return "chaos"; }
  std::string description() const override { return "lossy window probe"; }
  bool smoke() const override { return true; }

  void run(const core::ExperimentContext& ctx) override {
    sim::Simulator simr;
    net::Link::Config cfg;
    cfg.rate_bps = 12e6;
    cfg.name = "chaos-wired";
    net::CountingSink sink;
    net::Link link(&simr, cfg, &sink);
    for (int i = 0; i < 400; ++i) {
      simr.schedule_at(i * from_millis(10), [&link, i] {
        link.send(make_packet(i));
      });
    }
    simr.run();
    fault::InvariantChecker checker;
    checker.check_link_conservation(link);
    *ctx.out << name() << ": delivered=" << link.delivered_packets()
             << " fault_dropped=" << link.fault_dropped_packets()
             << " invariants=" << (checker.ok() ? "ok" : checker.report())
             << " seed=" << ctx.seed << "\n\n";
  }

 private:
  int index_;
};

TEST(RunnerChaosTest, FaultedCampaignIsJobsDeterministic) {
  core::ExperimentRegistry reg;
  for (int i = 0; i < 6; ++i) {
    reg.add([i] { return std::make_unique<FaultedLinkExperiment>(i); });
  }
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->add(link_loss(kSecond, 3 * kSecond, 0.5));

  core::RunnerOptions serial;
  serial.jobs = 1;
  serial.seed = 42;
  serial.faults = plan;
  core::RunnerOptions parallel = serial;
  parallel.jobs = 2;

  const core::RunSummary a = core::Runner(serial, &reg).run();
  const core::RunSummary b = core::Runner(parallel, &reg).run();
  std::ostringstream ja, jb;
  core::write_json(a, ja, /*include_timing=*/false);
  core::write_json(b, jb, /*include_timing=*/false);
  EXPECT_EQ(ja.str(), jb.str());
  EXPECT_TRUE(a.all_ok());

  // The plan really fired (every experiment lost packets, books stayed
  // straight), and a fault-free campaign reads differently.
  for (const core::ExperimentResult& r : a.results) {
    EXPECT_EQ(r.text.find("fault_dropped=0 "), std::string::npos) << r.name;
    EXPECT_NE(r.text.find("invariants=ok"), std::string::npos) << r.name;
  }
  core::RunnerOptions clean = serial;
  clean.faults = nullptr;
  const core::RunSummary c = core::Runner(clean, &reg).run();
  std::ostringstream jc;
  core::write_json(c, jc, /*include_timing=*/false);
  EXPECT_NE(ja.str(), jc.str());
  for (const core::ExperimentResult& r : c.results) {
    EXPECT_NE(r.text.find("fault_dropped=0 "), std::string::npos) << r.name;
  }
}

}  // namespace
}  // namespace fiveg

// Unit/integration tests for the packet network: queues, links, paths,
// traceroute, UDP, cross traffic and the cellular path factories.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "net/aqm.h"
#include "net/cross_traffic.h"
#include "net/epc.h"
#include "net/link.h"
#include "net/packet.h"
#include "net/path.h"
#include "net/queue.h"
#include "net/ran_link.h"
#include "net/topology.h"
#include "net/traceroute.h"
#include "net/udp.h"
#include "sim/simulator.h"

namespace fiveg::net {
namespace {

using sim::from_millis;
using sim::kMillisecond;
using sim::kSecond;
using sim::to_millis;

Packet make_packet(std::uint32_t flow, std::uint64_t seq, std::uint32_t bytes) {
  Packet p;
  p.flow_id = flow;
  p.seq = seq;
  p.size_bytes = bytes;
  return p;
}

TEST(DropTailQueueTest, DropsWhenFull) {
  DropTailQueue q(3000);
  EXPECT_TRUE(q.push(make_packet(1, 0, 1500)));
  EXPECT_TRUE(q.push(make_packet(1, 1, 1500)));
  EXPECT_FALSE(q.push(make_packet(1, 2, 1500)));  // 4500 > 3000
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.size_packets(), 2u);
  EXPECT_EQ(q.pop().seq, 0u);  // FIFO
  EXPECT_TRUE(q.push(make_packet(1, 3, 1500)));
  EXPECT_EQ(q.max_depth_bytes(), 3000u);
}

TEST(LinkTest, SerializationAndPropagation) {
  sim::Simulator simr;
  Link::Config cfg;
  cfg.rate_bps = 12e6;  // 1500 B = 1 ms serialisation
  cfg.prop_delay = from_millis(5);
  sim::Time delivered_at = -1;
  LambdaSink sink([&](Packet) { delivered_at = simr.now(); });
  Link link(&simr, cfg, &sink);
  link.send(make_packet(1, 0, 1500));
  simr.run();
  EXPECT_EQ(delivered_at, from_millis(6));
  EXPECT_EQ(link.delivered_packets(), 1u);
  EXPECT_EQ(link.delivered_bytes(), 1500u);
}

TEST(LinkTest, BackToBackPacketsQueue) {
  sim::Simulator simr;
  Link::Config cfg;
  cfg.rate_bps = 12e6;
  cfg.prop_delay = 0;
  std::vector<sim::Time> deliveries;
  LambdaSink sink([&](Packet) { deliveries.push_back(simr.now()); });
  Link link(&simr, cfg, &sink);
  for (int i = 0; i < 3; ++i) link.send(make_packet(1, i, 1500));
  simr.run();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0], from_millis(1));
  EXPECT_EQ(deliveries[1], from_millis(2));
  EXPECT_EQ(deliveries[2], from_millis(3));
}

TEST(LinkTest, QueueOverflowDrops) {
  sim::Simulator simr;
  Link::Config cfg;
  cfg.rate_bps = 12e6;
  cfg.queue_bytes = 4500;  // 3 packets
  CountingSink sink;
  Link link(&simr, cfg, &sink);
  for (int i = 0; i < 10; ++i) link.send(make_packet(1, i, 1500));
  simr.run();
  // One transmits immediately; 3 queue; 6 dropped... the head-of-line one
  // leaves the queue as soon as transmission starts.
  EXPECT_GT(link.dropped_packets(), 0u);
  EXPECT_EQ(sink.packets() + link.dropped_packets(), 10u);
}

TEST(LinkTest, BlockedLinkHoldsTraffic) {
  sim::Simulator simr;
  bool blocked = true;
  Link::Config cfg;
  cfg.rate_bps = 1e9;
  cfg.prop_delay = 0;
  cfg.blocked_fn = [&] { return blocked; };
  CountingSink sink;
  Link link(&simr, cfg, &sink);
  link.send(make_packet(1, 0, 1500));
  simr.run_until(from_millis(50));
  EXPECT_EQ(sink.packets(), 0u);
  blocked = false;
  simr.run_until(from_millis(60));
  EXPECT_EQ(sink.packets(), 1u);
}

TEST(LinkTest, DynamicRateFollowsCallback) {
  sim::Simulator simr;
  double rate = 12e6;
  Link::Config cfg;
  cfg.rate_fn = [&] { return rate; };
  cfg.prop_delay = 0;
  std::vector<sim::Time> deliveries;
  LambdaSink sink([&](Packet) { deliveries.push_back(simr.now()); });
  Link link(&simr, cfg, &sink);
  link.send(make_packet(1, 0, 1500));
  simr.run();
  rate = 120e6;
  link.send(make_packet(1, 1, 1500));
  simr.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], from_millis(1));
  EXPECT_EQ(deliveries[1] - deliveries[0], from_millis(0.1));
}

TEST(PathNetworkTest, EndToEndDelivery) {
  sim::Simulator simr;
  std::vector<Link::Config> hops(3);
  for (auto& h : hops) {
    h.rate_bps = 1e9;
    h.prop_delay = from_millis(1);
  }
  PathNetwork path(&simr, hops);
  CountingSink at_b, at_a;
  path.attach_b(&at_b);
  path.attach_a(&at_a);
  path.send_a_to_b(make_packet(1, 0, 1500));
  path.send_b_to_a(make_packet(2, 0, 40));
  simr.run();
  EXPECT_EQ(at_b.packets(), 1u);
  EXPECT_EQ(at_a.packets(), 1u);
}

TEST(PathNetworkTest, ProbeRttGrowsWithHopCount) {
  sim::Simulator simr;
  std::vector<Link::Config> hops(4);
  for (auto& h : hops) {
    h.rate_bps = 1e9;
    h.prop_delay = from_millis(2);
  }
  PathNetwork path(&simr, hops);
  std::vector<double> rtts(5, -1.0);
  for (std::size_t h = 1; h <= 4; ++h) {
    path.probe(h, [&rtts, h](sim::Time rtt) { rtts[h] = to_millis(rtt); });
  }
  simr.run();
  for (std::size_t h = 1; h <= 4; ++h) {
    EXPECT_NEAR(rtts[h], 4.0 * static_cast<double>(h), 0.1) << "hop " << h;
  }
  EXPECT_THROW(path.probe(0, [](sim::Time) {}), std::invalid_argument);
  EXPECT_THROW(path.probe(5, [](sim::Time) {}), std::invalid_argument);
}

TEST(TracerouteTest, CollectsPerHopStats) {
  sim::Simulator simr;
  std::vector<Link::Config> hops(3);
  for (auto& h : hops) {
    h.rate_bps = 1e9;
    h.prop_delay = from_millis(3);
  }
  PathNetwork path(&simr, hops);
  Traceroute tr(&simr, &path, /*reps=*/10, /*gap=*/from_millis(50));
  std::vector<HopRtt> out;
  tr.run([&](std::vector<HopRtt> r) { out = std::move(r); });
  simr.run();
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t h = 0; h < 3; ++h) {
    EXPECT_EQ(out[h].rtt_ms.count(), 10u);
    EXPECT_EQ(out[h].lost, 0);
    EXPECT_NEAR(out[h].rtt_ms.mean(), 6.0 * (h + 1), 0.2);
  }
  // Hop RTTs are monotone along the path.
  EXPECT_LT(out[0].rtt_ms.mean(), out[2].rtt_ms.mean());
}

TEST(TracerouteTest, CountsLostProbes) {
  sim::Simulator simr;
  bool blocked = false;
  std::vector<net::Link::Config> hops(3);
  for (auto& h : hops) {
    h.rate_bps = 1e9;
    h.prop_delay = from_millis(2);
  }
  hops[2].blocked_fn = [&] { return blocked; };
  PathNetwork path(&simr, hops);
  blocked = true;  // the last hop is dark: hop-3 probes never answer
  Traceroute tr(&simr, &path, /*reps=*/5, /*gap=*/from_millis(100));
  std::vector<HopRtt> out;
  tr.run([&](std::vector<HopRtt> r) { out = std::move(r); });
  simr.run_until(10 * kSecond);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].lost, 0);
  EXPECT_EQ(out[1].lost, 0);
  EXPECT_EQ(out[2].lost, 5);  // all timed out
  EXPECT_EQ(out[2].rtt_ms.count(), 0u);
}

TEST(TracerouteTest, BufferEstimatorMaxMin) {
  measure::RunningStats rtt;
  rtt.add(10.0);
  rtt.add(14.8);  // 4.8 ms spread at 1 Gbps = 4.8e6 bits / 480 bits = 10000 pkts
  EXPECT_NEAR(estimate_buffer_packets(rtt, 1e9, 60), 10000.0, 1.0);
  measure::RunningStats single;
  single.add(5.0);
  EXPECT_DOUBLE_EQ(estimate_buffer_packets(single), 0.0);
}

TEST(UdpTest, ConstantRateAndLoss) {
  sim::Simulator simr;
  std::vector<Link::Config> hops(1);
  hops[0].rate_bps = 50e6;
  hops[0].prop_delay = from_millis(1);
  hops[0].queue_bytes = 64 * 1024;
  PathNetwork path(&simr, hops);
  UdpSink sink(&simr, /*flow_id=*/7);
  path.attach_b(&sink);
  UdpSource src(&simr, {7, 40e6, 1500}, [&](Packet p) {
    path.send_a_to_b(std::move(p));
  });
  src.start(2 * kSecond);
  simr.run();
  // 40 Mbps under a 50 Mbps link: everything arrives.
  EXPECT_EQ(sink.packets_received(), src.packets_sent());
  EXPECT_DOUBLE_EQ(sink.loss_ratio(src.packets_sent()), 0.0);
  EXPECT_NEAR(sink.mean_throughput_bps(0, 2 * kSecond), 40e6, 2e6);
  // Sequence numbers arrive in order on a FIFO path.
  for (std::size_t i = 1; i < sink.arrival_seqs().size(); ++i) {
    EXPECT_EQ(sink.arrival_seqs()[i], sink.arrival_seqs()[i - 1] + 1);
  }
}

TEST(UdpTest, OverloadLosesPackets) {
  sim::Simulator simr;
  std::vector<Link::Config> hops(1);
  hops[0].rate_bps = 50e6;
  hops[0].queue_bytes = 32 * 1024;
  PathNetwork path(&simr, hops);
  UdpSink sink(&simr, 7);
  path.attach_b(&sink);
  UdpSource src(&simr, {7, 100e6, 1500}, [&](Packet p) {
    path.send_a_to_b(std::move(p));
  });
  src.start(kSecond);
  simr.run();
  EXPECT_NEAR(sink.loss_ratio(src.packets_sent()), 0.5, 0.05);
}

TEST(CrossTrafficTest, MeanLoadInRange) {
  sim::Simulator simr;
  Link::Config cfg;
  cfg.rate_bps = 10e9;  // no self-congestion
  CountingSink sink;
  Link link(&simr, cfg, &sink);
  CrossTraffic::Config xcfg;
  CrossTraffic x(&simr, &link, xcfg, sim::Rng(3));
  x.start(20 * kSecond);
  simr.run();
  const double measured_bps = 8.0 * sink.bytes() / 20.0;
  EXPECT_NEAR(measured_bps, x.mean_offered_bps(), 0.4 * x.mean_offered_bps());
  EXPECT_GT(x.packets_sent(), 1000u);
}

TEST(RanLinkTest, ProbeRttMatchesPaperHop1) {
  for (const radio::Rat rat : {radio::Rat::kNr, radio::Rat::kLte}) {
    sim::Simulator simr;
    RanLinkOptions opt;
    opt.rat = rat;
    opt.bitrate_bps = rat == radio::Rat::kNr ? 880e6 : 130e6;
    PathNetwork path(&simr, {make_ran_link_config(opt, sim::Rng(5))});
    measure::RunningStats rtt;
    for (int i = 0; i < 400; ++i) {
      simr.schedule_in(i * from_millis(10), [&] {
        path.probe(1, [&](sim::Time t) { rtt.add(to_millis(t)); });
      });
    }
    simr.run();
    const double expect = rat == radio::Rat::kNr ? 2.19 : 2.6;
    EXPECT_NEAR(rtt.mean(), expect, 0.35) << to_millis(ran_base_delay(rat));
  }
}

TEST(RanLinkTest, DataPacketsSeeHarqDelays) {
  sim::Simulator simr;
  RanLinkOptions opt;
  opt.rat = radio::Rat::kLte;
  opt.bitrate_bps = 130e6;
  PathNetwork path(&simr, {make_ran_link_config(opt, sim::Rng(6))});
  measure::RunningStats delays;
  LambdaSink sink([&](Packet p) { delays.add(to_millis(simr.now() - p.sent_at)); });
  path.attach_b(&sink);
  for (int i = 0; i < 3000; ++i) {
    simr.schedule_in(i * from_millis(1), [&, i] {
      Packet p = make_packet(1, i, 1500);
      p.sent_at = simr.now();
      path.send_a_to_b(std::move(p));
    });
  }
  simr.run();
  // ~16% of full-size packets retransmit at 8 ms a pop, and in-order
  // delivery (RLC reordering buffer) makes followers wait out each stall,
  // so the mean one-way delay sits well above the base + serialisation.
  EXPECT_GT(delays.mean(), 2.0);
  EXPECT_LT(delays.mean(), 14.0);
  EXPECT_GT(delays.max(), 9.0);  // at least one retransmission burst
}

TEST(EpcPathTest, FlatCoreSavesTwentyMs) {
  // Identical wired segment; hop-2 differs by ~10 ms one-way.
  EXPECT_NEAR(to_millis(epc_delay(radio::Rat::kLte)) -
                  to_millis(epc_delay(radio::Rat::kNr)),
              10.0, 0.1);

  for (const radio::Rat rat : {radio::Rat::kNr, radio::Rat::kLte}) {
    sim::Simulator simr;
    CellularPathOptions opt;
    opt.rat = rat;
    opt.ran.rat = rat;
    opt.ran.bitrate_bps = rat == radio::Rat::kNr ? 880e6 : 130e6;
    auto hops = make_cellular_path(opt, sim::Rng(8));
    EXPECT_EQ(hops.size(), static_cast<std::size_t>(2 + opt.wired_hops));
    EXPECT_EQ(hops[0].name.find("ran"), 0u);
    EXPECT_EQ(hops[1].name, "epc");
    EXPECT_EQ(hops[kBottleneckHopIndex].name, "metro-bottleneck");
  }
}

TEST(EpcPathTest, EndToEndRttReasonable) {
  sim::Simulator simr;
  CellularPathOptions opt;  // NR defaults, 30 km
  auto hops = make_cellular_path(opt, sim::Rng(9));
  PathNetwork path(&simr, std::move(hops));
  measure::RunningStats rtt;
  for (int i = 0; i < 30; ++i) {
    simr.schedule_in(i * from_millis(20), [&] {
      path.probe(path.hop_count(), [&](sim::Time t) { rtt.add(to_millis(t)); });
    });
  }
  simr.run();
  // Unloaded metro path: well under the paper's loaded 43.6 ms average,
  // well above the bare RAN RTT.
  EXPECT_GT(rtt.mean(), 5.0);
  EXPECT_LT(rtt.mean(), 25.0);
}

TEST(TopologyTest, Table6Servers) {
  const auto& servers = speedtest_servers();
  ASSERT_EQ(servers.size(), 20u);
  EXPECT_EQ(servers.front().city, "Beijing");
  EXPECT_NEAR(servers.front().distance_km, 1.67, 0.01);
  EXPECT_EQ(servers.back().city, "Kashi");
  EXPECT_NEAR(servers.back().distance_km, 3426.37, 0.01);
  for (std::size_t i = 1; i < servers.size(); ++i) {
    EXPECT_GT(servers[i].distance_km, servers[i - 1].distance_km);
  }
}

TEST(TopologyTest, PathOptionsScaleWithDistance) {
  const auto& servers = speedtest_servers();
  const auto near = make_server_path_options(radio::Rat::kNr, servers.front());
  const auto far = make_server_path_options(radio::Rat::kNr, servers.back());
  EXPECT_LT(near.wired_hops, far.wired_hops);
  EXPECT_GE(near.wired_hops, 5);
  EXPECT_LE(far.wired_hops, 11);
}

// Property sweep: packet conservation on a congested path — everything
// sent is either delivered or accounted as a drop, across load levels.
class ConservationTest : public ::testing::TestWithParam<double> {};

TEST_P(ConservationTest, SentEqualsDeliveredPlusDropped) {
  sim::Simulator simr;
  std::vector<Link::Config> hops(2);
  hops[0].rate_bps = 100e6;
  hops[0].queue_bytes = 30 * 1500;
  hops[1].rate_bps = 50e6;
  hops[1].queue_bytes = 10 * 1500;
  PathNetwork path(&simr, hops);
  UdpSink sink(&simr, 1);
  path.attach_b(&sink);
  UdpSource src(&simr, {1, GetParam(), 1500}, [&](Packet p) {
    path.send_a_to_b(std::move(p));
  });
  src.start(kSecond);
  simr.run();
  EXPECT_EQ(src.packets_sent(), sink.packets_received() + path.total_drops());
}

INSTANTIATE_TEST_SUITE_P(Loads, ConservationTest,
                         ::testing::Values(10e6, 40e6, 60e6, 120e6, 400e6));

// --- queue disciplines (aqm.h) ---

TEST(DropTailQdiscTest, MatchesDropTailQueueSemantics) {
  DropTailQdisc q(3000);
  EXPECT_TRUE(q.push(make_packet(1, 0, 1500), 0));
  EXPECT_TRUE(q.push(make_packet(1, 1, 1500), 0));
  EXPECT_FALSE(q.push(make_packet(1, 2, 1500), 0));  // 4500 > 3000
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.marks(), 0u);
  EXPECT_EQ(q.size_packets(), 2u);
  const auto p = q.pop(from_millis(7));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->seq, 0u);  // FIFO
  EXPECT_EQ(q.last_sojourn(), from_millis(7));
  EXPECT_EQ(q.max_depth_bytes(), 3000u);
}

TEST(CoDelControlLawTest, DropSpacingShrinksAsSqrtOfCount) {
  // Keep the sojourn pinned far above target and record when each drop
  // happens: the control law schedules drop n at interval/sqrt(n) after
  // its predecessor, so the gaps must shrink.
  CoDelQueue::Config cfg;
  cfg.capacity_bytes = 64 * 1024 * 1024;
  CoDelQueue q(cfg);
  sim::Time now = 0;
  std::uint64_t pushed = 0;
  std::vector<sim::Time> drop_times;
  std::uint64_t last_drops = 0;
  for (int i = 0; i < 3000; ++i) {
    now += from_millis(1);
    // Overload 3:1 -> the standing queue (and sojourn) only grows.
    for (int k = 0; k < 3; ++k) q.push(make_packet(1, pushed++, 1500), now);
    (void)q.pop(now);
    if (q.drops() != last_drops) {
      drop_times.push_back(now);
      last_drops = q.drops();
    }
  }
  ASSERT_GE(drop_times.size(), 8u);
  // No drop before one full interval (100 ms) of above-target sojourn.
  EXPECT_GE(drop_times.front(), from_millis(100));
  // Gaps shrink: the 2nd gap ~ interval/sqrt(2), the 7th ~ interval/sqrt(7).
  const sim::Time gap_early = drop_times[2] - drop_times[1];
  const sim::Time gap_late = drop_times[7] - drop_times[6];
  EXPECT_LT(gap_late, gap_early);
  EXPECT_LE(gap_early, from_millis(100));
}

TEST(CoDelEcnTest, MarksEctInsteadOfDropping) {
  CoDelQueue::Config cfg;
  cfg.capacity_bytes = 64 * 1024 * 1024;
  cfg.ecn = true;
  CoDelQueue q(cfg);
  sim::Time now = 0;
  std::uint64_t pushed = 0, popped = 0, ce = 0;
  for (int i = 0; i < 2000; ++i) {
    now += from_millis(1);
    for (int k = 0; k < 3; ++k) {
      Packet p = make_packet(1, pushed++, 1500);
      p.ect = true;
      q.push(std::move(p), now);
    }
    if (const auto out = q.pop(now)) {
      ++popped;
      ce += out->ce;
    }
  }
  EXPECT_EQ(q.drops(), 0u);  // every shed became a mark
  EXPECT_GT(q.marks(), 8u);
  EXPECT_EQ(ce, q.marks());  // every mark was delivered, CE set
  EXPECT_EQ(popped + q.size_packets(), pushed);
}

TEST(RedQueueTest, ThresholdsGateEarlyDrops) {
  RedQueue::Config cfg;
  cfg.capacity_bytes = 200 * 1500;
  cfg.min_bytes = 15 * 1500;
  cfg.max_bytes = 45 * 1500;
  cfg.weight = 0.5;  // fast EWMA so the test tracks the true depth
  RedQueue q(cfg);
  // Below min: every arrival accepted, count stays reset.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(q.push(make_packet(1, i, 1500), 0));
  }
  EXPECT_EQ(q.drops(), 0u);
  EXPECT_LT(q.avg_bytes(), static_cast<double>(cfg.min_bytes));
  // Keep filling without draining: between min and max some arrivals are
  // shed early; past max every arrival is dropped.
  std::uint64_t accepted = 10;
  for (int i = 10; i < 120; ++i) {
    accepted += q.push(make_packet(1, i, 1500), 0);
  }
  EXPECT_GT(q.drops(), 0u);
  EXPECT_LT(accepted, 120u);
  EXPECT_GT(q.avg_bytes(), static_cast<double>(cfg.max_bytes));
  const std::uint64_t drops_at_max = q.drops();
  for (int i = 120; i < 140; ++i) {
    EXPECT_FALSE(q.push(make_packet(1, i, 1500), 0));  // forced region
  }
  EXPECT_EQ(q.drops(), drops_at_max + 20);
}

TEST(RedQueueTest, EcnMarksEarlyButStillDropsAtMax) {
  RedQueue::Config cfg;
  cfg.capacity_bytes = 200 * 1500;
  cfg.min_bytes = 15 * 1500;
  cfg.max_bytes = 45 * 1500;
  cfg.weight = 0.5;
  cfg.ecn = true;
  RedQueue q(cfg);
  for (int i = 0; i < 140; ++i) {
    Packet p = make_packet(1, i, 1500);
    p.ect = true;
    q.push(std::move(p), 0);
  }
  EXPECT_GT(q.marks(), 0u);   // early sheds became CE marks
  EXPECT_GT(q.drops(), 0u);   // forced drops above max still drop
  // Every early mark was enqueued: marks live in the queue, not the void.
  EXPECT_EQ(q.size_packets() + q.drops(), 140u);
}

TEST(FqCoDelTest, IsolatesSparseFlowFromBulkFlow) {
  FqCoDelQueue::Config cfg;
  cfg.capacity_bytes = 64 * 1024 * 1024;
  FqCoDelQueue q(cfg);
  // Two flow ids in distinct buckets.
  const std::uint32_t bulk = 1;
  std::uint32_t sparse = 2;
  while (q.bucket_of(sparse) == q.bucket_of(bulk)) ++sparse;

  sim::Time now = 0;
  std::uint64_t bulk_seq = 0, sparse_seq = 0;
  std::uint64_t sparse_delivered = 0;
  sim::Time worst_sparse_sojourn = 0;
  for (int i = 0; i < 2000; ++i) {
    now += from_millis(1);
    // Bulk floods 3:1; the sparse flow sends one small packet every 10 ms.
    for (int k = 0; k < 3; ++k) {
      q.push(make_packet(bulk, bulk_seq++, 1500), now);
    }
    if (i % 10 == 0) q.push(make_packet(sparse, sparse_seq++, 200), now);
    if (const auto out = q.pop(now)) {
      if (out->flow_id == sparse) {
        ++sparse_delivered;
        worst_sparse_sojourn = std::max(worst_sparse_sojourn,
                                        q.last_sojourn());
      }
    }
  }
  // The sparse flow rides the new-flow priority list: everything it sent
  // is delivered (or still briefly queued), nothing dropped, and its
  // worst sojourn stays an order of magnitude under the bulk backlog.
  EXPECT_GE(sparse_delivered + q.size_packets(), sparse_seq);
  EXPECT_GT(q.drops(), 0u);              // the bulk flow is being policed
  EXPECT_EQ(sparse_delivered, sparse_seq);
  EXPECT_LT(worst_sparse_sojourn, from_millis(20));
}

TEST(QdiscSpecTest, ParsesKindsAndEcnSuffix) {
  QdiscConfig c;
  ASSERT_TRUE(parse_qdisc_spec("codel+ecn", &c));
  EXPECT_EQ(c.kind, QdiscKind::kCoDel);
  EXPECT_TRUE(c.ecn);
  ASSERT_TRUE(parse_qdisc_spec("fq_codel", &c));
  EXPECT_EQ(c.kind, QdiscKind::kFqCoDel);
  EXPECT_FALSE(c.ecn);
  ASSERT_TRUE(parse_qdisc_spec("red", &c));
  EXPECT_EQ(c.kind, QdiscKind::kRed);
  ASSERT_TRUE(parse_qdisc_spec("droptail", &c));
  EXPECT_EQ(c.kind, QdiscKind::kDropTail);
  EXPECT_FALSE(parse_qdisc_spec("codel+foo", &c));
  EXPECT_FALSE(parse_qdisc_spec("pie", &c));
}

TEST(LinkQdiscTest, EcnMarksSurfaceInLinkLedger) {
  sim::Simulator simr;
  Link::Config cfg;
  cfg.rate_bps = 12e6;
  // Deep buffer: ECN marking is open-loop here (nothing slows down), so
  // the backlog keeps growing — the buffer must outlast the run.
  cfg.queue_bytes = 16 << 20;
  cfg.qdisc.kind = QdiscKind::kCoDel;
  cfg.qdisc.ecn = true;
  CountingSink sink;
  Link link(&simr, cfg, &sink);
  // 2x overload of ECT traffic for 4 s: CoDel sheds, ECN converts every
  // shed into a delivered CE mark.
  for (int i = 0; i < 8000; ++i) {
    simr.schedule_at(i * (kMillisecond / 2), [&link, i] {
      Packet p = make_packet(1, i, 1500);
      p.ect = true;
      link.send(std::move(p));
    });
  }
  simr.run();
  EXPECT_GT(link.marked_packets(), 0u);
  EXPECT_EQ(link.dropped_packets(), 0u);
  // Conservation with marks: marked packets are delivered, not lost.
  EXPECT_EQ(link.offered_packets(),
            link.dropped_packets() + link.delivered_packets() +
                link.queue_packets() + link.in_transit_packets());
  EXPECT_LE(link.marked_packets(), link.delivered_packets());
}

}  // namespace
}  // namespace fiveg::net

// Tests for the execution-domain self-profiler (obs::prof): RSS readers,
// ScopedPhase timing, per-label wall-time attribution through the labeled
// scheduling seam, event-churn counters, the summarize() rollup, and the
// tracer ring-buffer drop accounting (counter + chrome-trace round trip).
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/chrome_trace.h"
#include "obs/json_check.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace fiveg::obs::prof {
namespace {

TEST(ProfTest, RssReadersReportPlausibleValues) {
  const std::uint64_t peak = peak_rss_kb();
  const std::uint64_t current = current_rss_kb();
  // A running gtest binary occupies at least a megabyte and the peak can
  // never be below the instantaneous value.
  EXPECT_GT(peak, 1024u);
  EXPECT_GT(current, 1024u);
  EXPECT_GE(peak, current / 2);  // slack: sampled at slightly different times
}

TEST(ProfTest, ScopedPhaseRecordsWallHistogram) {
  MetricsRegistry registry;
  const ScopedObs scope(nullptr, &registry);
  {
    const ScopedPhase phase("unit_test");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  {
    const ScopedPhase phase("unit_test");  // second entry, same histogram
  }
  const auto wall = registry.snapshot(MetricClock::kWall);
  const auto rows = phase_rows(wall);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].phase, "unit_test");
  EXPECT_EQ(rows[0].count, 2u);
  EXPECT_GE(rows[0].total_ms, 2.0);
  // Nothing leaked into the deterministic kSim domain.
  EXPECT_TRUE(registry.snapshot(MetricClock::kSim).empty());
}

TEST(ProfTest, ScopedPhaseWithoutScopeIsANoop) {
  const ScopedPhase phase("nobody_listening");  // must not crash
}

TEST(ProfTest, SimulatorFeedsLabelAttributionAndChurn) {
  MetricsRegistry registry;
  const ScopedObs scope(nullptr, &registry);
  sim::Simulator simr;
  int fired = 0;
  for (int i = 0; i < 50; ++i) {
    simr.schedule_in(i * sim::kMillisecond, "test.fast", [&] { ++fired; });
  }
  for (int i = 0; i < 10; ++i) {
    simr.schedule_in(i * sim::kMillisecond, "test.slow", [&] {
      ++fired;
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    });
  }
  const sim::EventId doomed =
      simr.schedule_in(sim::kSecond, "test.fast", [&] { ++fired; });
  simr.cancel(doomed);
  simr.run();
  EXPECT_EQ(fired, 60);

  const auto wall = registry.snapshot(MetricClock::kWall);

  // Per-label attribution via the labeled schedule seam.
  const auto labels = label_rows(wall);
  ASSERT_EQ(labels.size(), 2u);
  // test.slow sleeps, so it must dominate total wall time despite fewer
  // events; rows are sorted by total time descending.
  EXPECT_EQ(labels[0].label, "test.slow");
  EXPECT_EQ(labels[0].events, 10u);
  EXPECT_GE(labels[0].total_ms, 3.0);
  EXPECT_EQ(labels[1].label, "test.fast");
  EXPECT_EQ(labels[1].events, 50u);
  EXPECT_GT(labels[0].mean_us, labels[1].mean_us);

  // The simulate phase and the churn counters land in the summary.
  const Summary summary = summarize(wall);
  EXPECT_GT(summary.simulate_ms, 0.0);
  EXPECT_EQ(summary.events_scheduled, 61u);
  EXPECT_EQ(summary.events_cancelled, 1u);
  EXPECT_EQ(summary.top_label, "test.slow");
  EXPECT_GT(summary.top_label_ms, 0.0);

  // Churn is execution-domain data: none of it may appear among the kSim
  // counters that goldens compare (per-label event counts do, by design).
  for (const MetricSnapshot& s : registry.snapshot(MetricClock::kSim)) {
    EXPECT_EQ(s.name.find("prof."), std::string::npos) << s.name;
  }
}

TEST(ProfTest, HeapFallbackBaselineIsPerSimulator) {
  MetricsRegistry registry;
  const ScopedObs scope(nullptr, &registry);
  // Force some heap fallbacks *before* the measured simulator exists: a
  // capture too large for the 48-byte SBO.
  {
    sim::Simulator warmup;
    struct Fat {
      char bytes[128] = {};
    } fat;
    warmup.schedule_in(0, [fat] { (void)fat; });
    warmup.run();
  }
  sim::Simulator simr;
  int fired = 0;
  simr.schedule_in(0, "test.small", [&fired] { ++fired; });
  simr.run();
  const Summary summary = summarize(registry.snapshot(MetricClock::kWall));
  // The warmup's fallback happened before the measured simulator was
  // constructed, but record_run accumulates into a shared per-registry
  // counter — the measured run itself must add nothing new beyond the
  // warmup's own recorded allocation.
  EXPECT_LE(summary.heap_allocs, 1u);
}

TEST(ProfTest, TracerWrapFeedsDropCounterAndChromeTrace) {
  MetricsRegistry registry;
  Tracer tracer(4);
  const ScopedObs scope(&tracer, &registry);
  for (int i = 0; i < 7; ++i) {
    tracer.instant(i * sim::kMillisecond, "tick", "sim");
  }
  EXPECT_EQ(tracer.emitted(), 7u);
  EXPECT_EQ(tracer.dropped(), 3u);

  // The kWall counter mirrors the ring accounting.
  bool saw = false;
  for (const MetricSnapshot& s : registry.snapshot(MetricClock::kWall)) {
    if (s.name == "obs.trace.dropped_events") {
      saw = true;
      EXPECT_EQ(s.value, 3.0);
    }
  }
  EXPECT_TRUE(saw);

  // And the Chrome exporter carries the count into otherData, where
  // fiveg_trace_check reads it back.
  std::vector<ChromeProcess> processes(1);
  processes[0].name = "wrap_test";
  processes[0].tracer = &tracer;
  std::ostringstream os;
  ChromeTraceOptions options;
  options.include_wall = false;
  write_chrome_trace(processes, os, options);
  const TraceCheck check = check_chrome_trace(os.str());
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.event_count, 4u);  // ring capacity survived
  EXPECT_EQ(check.dropped_events, 3u);
}

TEST(ProfTest, SummarizeOfEmptySnapshotIsZero) {
  const Summary summary = summarize({});
  EXPECT_EQ(summary.construct_ms, 0.0);
  EXPECT_EQ(summary.events_scheduled, 0u);
  EXPECT_TRUE(summary.top_label.empty());
  EXPECT_TRUE(phase_rows({}).empty());
  EXPECT_TRUE(label_rows({}).empty());
}

}  // namespace
}  // namespace fiveg::obs::prof

// Unit tests for the discrete-event kernel: ordering, cancellation,
// determinism of the clock, and the RNG substream contract.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace fiveg::sim {
namespace {

TEST(TimeTest, ConversionsRoundTrip) {
  EXPECT_EQ(from_seconds(1.5), 1500 * kMillisecond);
  EXPECT_DOUBLE_EQ(to_seconds(250 * kMillisecond), 0.25);
  EXPECT_DOUBLE_EQ(to_millis(3 * kSecond), 3000.0);
  EXPECT_EQ(from_millis(12.5), 12'500'000);
}

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimeFiresInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, CancelledEventsDoNotRun) {
  EventQueue q;
  int ran = 0;
  const EventId a = q.schedule(10, [&] { ++ran; });
  q.schedule(20, [&] { ++ran; });
  q.cancel(a);
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(ran, 1);
}

TEST(EventQueueTest, CancelUnknownOrFiredIsNoop) {
  EventQueue q;
  const EventId a = q.schedule(1, [] {});
  q.pop_and_run();
  q.cancel(a);           // already fired
  q.cancel(9999);        // never existed
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelHeadThenEmpty) {
  EventQueue q;
  const EventId a = q.schedule(10, [] {});
  q.cancel(a);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelDuringCallbackAffectsPendingOnly) {
  EventQueue q;
  int ran = 0;
  EventId self = 0;
  EventId victim = 0;
  victim = q.schedule(20, [&] { ++ran; });
  self = q.schedule(10, [&] {
    q.cancel(victim);  // still pending: must not run
    q.cancel(self);    // the running event's own id: harmless no-op
    ++ran;
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(ran, 1);
}

TEST(EventQueueTest, CancellingFiredIdsKeepsInternalStateBounded) {
  // Regression: the lazy-cancellation design kept every cancelled id in a
  // hash set, so cancelling ids that had already fired (the DRX/HARQ/RTO
  // timer pattern) grew internal state without bound.
  EventQueue q;
  Time t = 0;
  std::uint64_t fired = 0;
  EventId last = q.schedule(++t, [&] { ++fired; });
  for (int i = 0; i < 20'000; ++i) {
    q.pop_and_run();
    q.cancel(last);  // already fired: must be a stateless no-op
    last = q.schedule(++t, [&] { ++fired; });
  }
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(fired, 20'001U);
  // Only one event is ever pending, so the slot arena must stay at O(1)
  // however many stale cancels arrived.
  EXPECT_LE(q.slot_capacity(), 2U);
  EXPECT_EQ(q.size(), 0U);
}

TEST(EventQueueTest, StaleIdCannotCancelRecycledSlot) {
  EventQueue q;
  int ran = 0;
  const EventId a = q.schedule(1, [&] { ++ran; });
  q.pop_and_run();
  // The new event may reuse a's slot; the fired id must not touch it.
  q.schedule(2, [&] { ++ran; });
  q.cancel(a);
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(ran, 2);
}

TEST(CallableTest, MoveOnlyAndLargeCapturesSurviveMoves) {
  auto owned = std::make_unique<int>(7);
  int got = 0;
  Callable small([&got, p = std::move(owned)] { got = *p; });
  Callable small_moved = std::move(small);
  small_moved();
  EXPECT_EQ(got, 7);

  std::array<double, 16> big{};  // 128 bytes: exceeds the inline buffer
  big[15] = 3.5;
  double out = 0;
  Callable large([big, &out] { out = big[15]; });
  Callable large_moved = std::move(large);
  large_moved();
  EXPECT_DOUBLE_EQ(out, 3.5);
}

TEST(SimulatorTest, ClockFollowsEvents) {
  Simulator s;
  Time seen = -1;
  s.schedule_at(42 * kMillisecond, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 42 * kMillisecond);
  EXPECT_EQ(s.now(), 42 * kMillisecond);
}

TEST(SimulatorTest, ScheduleInIsRelative) {
  Simulator s;
  std::vector<Time> stamps;
  s.schedule_in(10, [&] {
    stamps.push_back(s.now());
    s.schedule_in(5, [&] { stamps.push_back(s.now()); });
  });
  s.run();
  EXPECT_EQ(stamps, (std::vector<Time>{10, 15}));
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenIdle) {
  Simulator s;
  s.run_until(kSecond);
  EXPECT_EQ(s.now(), kSecond);
}

TEST(SimulatorTest, RunUntilDoesNotRunLaterEvents) {
  Simulator s;
  bool late = false;
  s.schedule_at(2 * kSecond, [&] { late = true; });
  s.run_until(kSecond);
  EXPECT_FALSE(late);
  s.run_until(3 * kSecond);
  EXPECT_TRUE(late);
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_at(i, [&, i] {
      ++count;
      if (i == 3) s.stop();
    });
  }
  s.run();
  EXPECT_EQ(count, 3);
  s.run();  // resumes
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, PastScheduleClampsToNow) {
  Simulator s;
  Time seen = -1;
  s.schedule_at(100, [&] {
    s.schedule_at(5, [&] { seen = s.now(); });  // "in the past"
  });
  s.run();
  EXPECT_EQ(seen, 100);
}

TEST(EventQueueTest, PoppedCarriesLabel) {
  EventQueue q;
  q.schedule(5, "my.label", [] {});
  q.schedule(6, [] {});
  const EventQueue::Popped a = q.pop();
  ASSERT_NE(a.label, nullptr);
  EXPECT_STREQ(a.label, "my.label");
  const EventQueue::Popped b = q.pop();
  EXPECT_EQ(b.label, nullptr);  // unlabelled overload stays label-free
}

TEST(EventQueueTest, SizeIsUpperBoundOnPending) {
  EventQueue q;
  q.schedule(1, [] {});
  const EventId b = q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(b);
  // Lazily-cancelled entries may still be counted until skipped over.
  EXPECT_GE(q.size(), 1u);
  q.pop_and_run();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(SimulatorTest, LabelledSchedulingBehavesLikeUnlabelled) {
  Simulator s;
  std::vector<Time> stamps;
  s.schedule_in(10, "test.step", [&] {
    stamps.push_back(s.now());
    s.schedule_at(15, "test.step", [&] { stamps.push_back(s.now()); });
  });
  s.run();
  EXPECT_EQ(stamps, (std::vector<Time>{10, 15}));
  EXPECT_EQ(s.executed_events(), 2u);
}

TEST(SimulatorTest, QueueDepthHighWaterZeroWithoutScope) {
  Simulator s;
  for (int i = 0; i < 8; ++i) s.schedule_in(i, [] {});
  s.run();
  // No obs scope installed: profiling is off, HWM stays untouched.
  EXPECT_EQ(s.queue_depth_high_water(), 0u);
  EXPECT_EQ(s.queue_depth(), 0u);
}

TEST(EventQueueTest, ScheduledCountIsDiagnosticTotal) {
  EventQueue q;
  q.schedule(1, [] {});
  const EventId b = q.schedule(2, [] {});
  q.cancel(b);
  q.pop_and_run();
  EXPECT_EQ(q.scheduled_count(), 2u);  // counts ever-scheduled, not pending
  EXPECT_TRUE(q.empty());
}

TEST(SimulatorTest, ExecutedEventsCountsOnlyRunEvents) {
  Simulator s;
  const EventId a = s.schedule_in(5, [] {});
  (void)a;
  const EventId b = s.schedule_in(6, [] {});
  s.cancel(b);
  s.run();
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 4);
}

TEST(RngTest, ForkIsStableRegardlessOfParentDraws) {
  Rng a(99);
  Rng fork_before = a.fork("radio");
  (void)a.next_u64();
  (void)a.uniform(0, 1);
  Rng fork_after = a.fork("radio");
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(fork_before.next_u64(), fork_after.next_u64());
  }
}

TEST(RngTest, ForksWithDifferentNamesAreIndependent) {
  Rng a(99);
  Rng x = a.fork("x");
  Rng y = a.fork("y");
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (x.next_u64() == y.next_u64());
  EXPECT_LT(same, 4);
}

TEST(RngTest, ForkSubstreamsAreUncorrelated) {
  // Direct independence check: paired uniforms from two named substreams
  // of the same parent show no linear correlation.
  Rng parent(42);
  Rng x = parent.fork("substream-a");
  Rng y = parent.fork("substream-b");
  const int n = 4000;
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (int i = 0; i < n; ++i) {
    const double u = x.uniform(0, 1), v = y.uniform(0, 1);
    sx += u;
    sy += v;
    sxx += u * u;
    syy += v * v;
    sxy += u * v;
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double var_x = sxx / n - (sx / n) * (sx / n);
  const double var_y = syy / n - (sy / n) * (sy / n);
  const double corr = cov / std::sqrt(var_x * var_y);
  EXPECT_LT(std::fabs(corr), 0.05);
  // Both streams are individually well-behaved uniforms.
  EXPECT_NEAR(sx / n, 0.5, 0.03);
  EXPECT_NEAR(sy / n, 0.5, 0.03);
}

TEST(RngTest, NestedForksDependOnFullPath) {
  // fork("a").fork("b") and fork("b").fork("a") are distinct streams: the
  // derivation is path-dependent, not an order-insensitive xor of names.
  Rng parent(7);
  Rng ab = parent.fork("a").fork("b");
  Rng ba = parent.fork("b").fork("a");
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (ab.next_u64() == ba.next_u64());
  EXPECT_LT(same, 4);
  // And a nested fork re-derived from scratch is bit-identical.
  Rng again = Rng(7).fork("a").fork("b");
  Rng ab2 = Rng(7).fork("a").fork("b");
  for (int i = 0; i < 32; ++i) EXPECT_EQ(again.next_u64(), ab2.next_u64());
}

TEST(RngTest, UniformInRange) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng r(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsApproximate) {
  Rng r(5);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(10.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(RngTest, BernoulliProbability) {
  Rng r(6);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, BernoulliClampsOutOfRange) {
  Rng r(8);
  EXPECT_FALSE(r.bernoulli(-0.5));
  EXPECT_TRUE(r.bernoulli(1.5));
}

// Property sweep: event-driven clocks never move backwards for any workload
// pattern generated from different seeds.
class SimulatorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorPropertyTest, TimeNeverGoesBackwards) {
  Simulator s;
  Rng r(GetParam());
  Time last_seen = 0;
  bool violated = false;
  // A self-perpetuating stochastic workload with fan-out.
  std::function<void(int)> spawn = [&](int depth) {
    if (depth > 4) return;
    const int kids = static_cast<int>(r.uniform_int(0, 3));
    for (int k = 0; k < kids; ++k) {
      s.schedule_in(r.uniform_int(0, 1000), [&, depth] {
        violated = violated || (s.now() < last_seen);
        last_seen = s.now();
        spawn(depth + 1);
      });
    }
  };
  spawn(0);
  s.run();
  EXPECT_FALSE(violated);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 1234u, 99999u));

}  // namespace
}  // namespace fiveg::sim

// Tests for the observability subsystem: metrics registry semantics, the
// ring-buffered tracer (wraparound, span nesting, clock ownership), the
// Chrome trace_event exporter (escaping, structure — validated by parsing
// the output back), the thread-local scope, and the Simulator's profiling
// hooks including trace determinism across identical runs.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/chrome_trace.h"
#include "obs/codec.h"
#include "obs/digest.h"
#include "obs/json_check.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace fiveg::obs {
namespace {

// --- MetricsRegistry ---

TEST(MetricsTest, CounterAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(&reg.counter("x"), &c);  // same handle on re-lookup
}

TEST(MetricsTest, GaugeTracksValueAndHighWater) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("depth");
  g.set(3.0);
  g.set(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
  EXPECT_DOUBLE_EQ(g.max(), 3.0);
  g.update_max(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);  // update_max leaves the value alone
  EXPECT_DOUBLE_EQ(g.max(), 10.0);
}

TEST(MetricsTest, HistogramMomentsAndQuantiles) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat");
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Log2 buckets: quantiles are approximate but must be ordered and within
  // the observed range.
  const double p50 = h.quantile(0.5);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  EXPECT_LE(p50, p99);
}

TEST(MetricsTest, EmptyHistogramIsZeroed) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("empty");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(MetricsTest, SnapshotSplitsByClockAndSorts) {
  MetricsRegistry reg;
  reg.counter("b.sim").add(2);
  reg.counter("a.sim").add(1);
  reg.histogram("c.wall", MetricClock::kWall).observe(7.0);
  reg.gauge("d.sim").set(9.0);

  const std::vector<MetricSnapshot> sim = reg.snapshot(MetricClock::kSim);
  ASSERT_EQ(sim.size(), 3u);
  EXPECT_EQ(sim[0].name, "a.sim");
  EXPECT_EQ(sim[1].name, "b.sim");
  EXPECT_EQ(sim[2].name, "d.sim");
  EXPECT_EQ(sim[0].kind, MetricSnapshot::Kind::kCounter);
  EXPECT_DOUBLE_EQ(sim[1].value, 2.0);
  EXPECT_EQ(sim[2].kind, MetricSnapshot::Kind::kGauge);

  const std::vector<MetricSnapshot> wall = reg.snapshot(MetricClock::kWall);
  ASSERT_EQ(wall.size(), 1u);
  EXPECT_EQ(wall[0].name, "c.wall");
  EXPECT_EQ(wall[0].count, 1u);
}

TEST(MetricsTest, ClockDomainIsFixedByFirstUse) {
  MetricsRegistry reg;
  reg.counter("x", MetricClock::kWall).add();
  reg.counter("x", MetricClock::kSim).add();  // clock arg ignored: same slot
  EXPECT_EQ(reg.snapshot(MetricClock::kWall).size(), 1u);
  EXPECT_EQ(reg.snapshot(MetricClock::kSim).size(), 0u);
  EXPECT_EQ(reg.counter("x").value(), 2u);
}

// --- Digest (DDSketch-style quantile sketch) ---

TEST(DigestTest, QuantilesWithinRelativeErrorBound) {
  Digest d;
  // Uniform 1..10000: the true q-quantile (rank convention
  // floor(q*(n-1))) is 1 + floor(q*9999).
  for (int i = 1; i <= 10000; ++i) d.observe(static_cast<double>(i));
  EXPECT_EQ(d.count(), 10000u);
  for (double q : {0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99}) {
    const double truth = 1.0 + std::floor(q * 9999.0);
    const double got = d.quantile(q);
    EXPECT_LE(std::abs(got - truth), Digest::kAlpha * truth + 1e-9)
        << "q=" << q << " got=" << got << " truth=" << truth;
  }
  // Endpoints clamp to the exact extremes, not bucket midpoints.
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 10000.0);
}

TEST(DigestTest, HandlesNegativeZeroAndNan) {
  Digest d;
  d.observe(-50.0);
  d.observe(-100.0);
  d.observe(0.0);
  d.observe(1e-15);  // below kZeroEpsilon: zero bucket
  d.observe(25.0);
  d.observe(std::numeric_limits<double>::quiet_NaN());  // ignored
  EXPECT_EQ(d.count(), 5u);
  EXPECT_EQ(d.zero_count(), 2u);
  EXPECT_EQ(d.negative_bins().size(), 2u);
  EXPECT_EQ(d.positive_bins().size(), 1u);
  EXPECT_DOUBLE_EQ(d.min(), -100.0);
  EXPECT_DOUBLE_EQ(d.max(), 25.0);
  // Ordering across sign: q=0 hits the most negative value, the median
  // lands in the zero bucket, high quantiles reach the positive side.
  EXPECT_DOUBLE_EQ(d.quantile(0.0), -100.0);
  EXPECT_LE(std::abs(d.quantile(0.25) - (-50.0)), 0.5 + 1e-9);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 0.0);
  EXPECT_LE(std::abs(d.quantile(1.0) - 25.0), 1e-9);
}

TEST(DigestTest, EmptyDigestIsZeroed) {
  const Digest d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_DOUBLE_EQ(d.min(), 0.0);
  EXPECT_DOUBLE_EQ(d.max(), 0.0);
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 0.0);
}

TEST(DigestTest, InsertionOrderDoesNotChangeState) {
  std::vector<double> values;
  for (int i = 0; i < 500; ++i)
    values.push_back(std::pow(1.13, static_cast<double>(i % 67)) -
                     (i % 3 == 0 ? 30.0 : 0.0));
  Digest forward;
  for (double v : values) forward.observe(v);
  Digest backward;
  for (auto it = values.rbegin(); it != values.rend(); ++it)
    backward.observe(*it);
  EXPECT_EQ(forward.positive_bins(), backward.positive_bins());
  EXPECT_EQ(forward.negative_bins(), backward.negative_bins());
  EXPECT_EQ(forward.zero_count(), backward.zero_count());
  EXPECT_DOUBLE_EQ(forward.sum(), backward.sum());
}

TEST(DigestTest, MergeMatchesSingleStreamExactly) {
  Digest a;
  Digest b;
  Digest whole;
  for (int i = 0; i < 1000; ++i) {
    const double v = 0.1 * static_cast<double>(i) - 20.0;
    (i % 2 == 0 ? a : b).observe(v);
    whole.observe(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_EQ(a.positive_bins(), whole.positive_bins());
  EXPECT_EQ(a.negative_bins(), whole.negative_bins());
  EXPECT_EQ(a.zero_count(), whole.zero_count());
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
  for (double q : {0.0, 0.1, 0.5, 0.9, 1.0})
    EXPECT_DOUBLE_EQ(a.quantile(q), whole.quantile(q));
}

TEST(MetricsTest, DigestSnapshotCarriesPercentilesAndBins) {
  MetricsRegistry reg;
  Digest& d = reg.digest("lat_ms");
  for (int i = 1; i <= 100; ++i) d.observe(static_cast<double>(i));
  const auto snaps = reg.snapshot(MetricClock::kSim);
  ASSERT_EQ(snaps.size(), 1u);
  const MetricSnapshot& s = snaps[0];
  EXPECT_EQ(s.kind, MetricSnapshot::Kind::kDigest);
  EXPECT_EQ(s.count, 100u);
  EXPECT_LE(std::abs(s.p50 - 50.0), Digest::kAlpha * 50.0 + 1.0);
  EXPECT_LE(std::abs(s.p95 - 95.0), Digest::kAlpha * 95.0 + 1.0);
  EXPECT_FALSE(s.bins.empty());
}

TEST(MetricsTest, LabeledNamesAreCanonical) {
  // Keys are sorted, so label order at the call site cannot fork series.
  EXPECT_EQ(labeled("x", {{"b", "2"}, {"a", "1"}}), "x{a=1,b=2}");
  EXPECT_EQ(labeled("x", {}), "x");
  MetricsRegistry reg;
  reg.counter("hits", {{"rat", "nr"}}).add();
  reg.counter(labeled("hits", {{"rat", "nr"}})).add();
  EXPECT_EQ(reg.counter("hits{rat=nr}").value(), 2u);
}

// --- Tracer ring buffer ---

TEST(TracerTest, RingKeepsMostRecentAndCountsDrops) {
  Tracer t(4);
  for (int i = 0; i < 10; ++i) {
    t.instant(i, "e" + std::to_string(i), "cat");
  }
  EXPECT_EQ(t.capacity(), 4u);
  EXPECT_EQ(t.buffered(), 4u);
  EXPECT_EQ(t.emitted(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  const std::vector<TraceEvent> events = t.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, and the survivors are exactly the last four emissions.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<size_t>(i)].name,
              "e" + std::to_string(i + 6));
    EXPECT_EQ(events[static_cast<size_t>(i)].at, i + 6);
  }
}

TEST(TracerTest, NoDropsBelowCapacity) {
  Tracer t(8);
  t.instant(1, "a", "c");
  t.instant(2, "b", "c");
  EXPECT_EQ(t.buffered(), 2u);
  EXPECT_EQ(t.dropped(), 0u);
  const std::vector<TraceEvent> events = t.snapshot();
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].name, "b");
}

TEST(TracerTest, SpansNestViaRaii) {
  Tracer t;
  sim::Time fake_now = 0;
  t.set_clock([&fake_now] { return fake_now; });
  {
    const Tracer::Span outer = t.span("outer", "cat");
    fake_now = 10;
    {
      const Tracer::Span inner = t.span("inner", "cat");
      fake_now = 20;
    }
    fake_now = 30;
  }
  const std::vector<TraceEvent> events = t.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::kBegin);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].at, 0);
  EXPECT_EQ(events[1].phase, TraceEvent::Phase::kBegin);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].at, 10);
  EXPECT_EQ(events[2].phase, TraceEvent::Phase::kEnd);  // inner closes first
  EXPECT_EQ(events[2].name, "inner");
  EXPECT_EQ(events[2].at, 20);
  EXPECT_EQ(events[3].phase, TraceEvent::Phase::kEnd);
  EXPECT_EQ(events[3].name, "outer");
  EXPECT_EQ(events[3].at, 30);
}

TEST(TracerTest, ClearClockOnlyReleasesOwner) {
  Tracer t;
  int owner_a = 0, owner_b = 0;
  t.set_clock([] { return sim::Time{1}; }, &owner_a);
  t.set_clock([] { return sim::Time{2}; }, &owner_b);
  t.clear_clock(&owner_a);  // stale owner: must not clobber b's clock
  EXPECT_EQ(t.clock_now(), 2);
  t.clear_clock(&owner_b);
  EXPECT_EQ(t.clock_now(), 0);  // clockless default
}

// --- Chrome exporter + parse-back validation ---

TEST(ChromeTraceTest, EscapesHostileStringsAndParsesBack) {
  Tracer t;
  t.instant(1000, "quote\" backslash\\ control\x01\n", "c\"at",
            {{"key \"k\"", "value\twith\\escapes"}});
  t.begin(2000, "span", "c\"at");
  t.end(3000, "span", "c\"at");
  t.counter(4000, "track", "c\"at", 1.5);

  std::ostringstream os;
  write_chrome_trace(t, os);
  const std::string doc = os.str();

  std::string err;
  EXPECT_TRUE(json_valid(doc, &err)) << err << "\n" << doc;

  const TraceCheck check = check_chrome_trace(doc);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.event_count, 4u);
  ASSERT_EQ(check.categories.size(), 1u);
  EXPECT_EQ(check.categories[0], "c\"at");
}

TEST(ChromeTraceTest, StructureMatchesTraceEventFormat) {
  Tracer t;
  t.begin(1'000'000, "work", "sim");   // 1 ms simulated
  t.end(2'000'000, "work", "sim");
  t.instant(1'500'000, "tick", "ran");

  std::ostringstream os;
  write_chrome_trace(t, os);
  const std::unique_ptr<JsonValue> doc = json_parse(os.str());
  ASSERT_NE(doc, nullptr);
  const JsonValue* events = doc->get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is(JsonValue::Type::kArray));

  int begins = 0, ends = 0, instants = 0, meta = 0;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.get("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "M") {
      ++meta;
      continue;
    }
    const JsonValue* ts = e.get("ts");
    ASSERT_NE(ts, nullptr);
    if (ph->string == "B") {
      ++begins;
      EXPECT_DOUBLE_EQ(ts->number, 1000.0);  // ns -> us
    } else if (ph->string == "E") {
      ++ends;
    } else if (ph->string == "i") {
      ++instants;
      // Instants carry the scope field Perfetto expects.
      const JsonValue* s = e.get("s");
      ASSERT_NE(s, nullptr);
      EXPECT_EQ(s->string, "t");
    }
  }
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
  EXPECT_EQ(instants, 1);
  EXPECT_GE(meta, 3);  // process_name + two thread_name records
}

TEST(ChromeTraceTest, MultiProcessMergeNamesProcesses) {
  Tracer a, b;
  a.instant(1, "x", "sim");
  b.instant(2, "y", "tcp");

  std::vector<ChromeProcess> procs;
  procs.push_back({"exp_a", &a, 1.0});
  procs.push_back({"exp_b", &b, 2.0});
  std::ostringstream os;
  write_chrome_trace(procs, os);

  const TraceCheck check = check_chrome_trace(os.str());
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.event_count, 2u);
  ASSERT_EQ(check.processes.size(), 2u);
  EXPECT_EQ(check.processes[0], "exp_a");
  EXPECT_EQ(check.processes[1], "exp_b");
}

TEST(ChromeTraceTest, NoTimingOutputIsByteStable) {
  // Two identical tracers must export byte-identically with include_wall
  // off, even when the wall_ms side data differs.
  const auto make = [](Tracer& t) {
    t.begin(10, "s", "sim");
    t.instant(20, "i", "ran", {{"k", "v"}});
    t.end(30, "s", "sim");
  };
  Tracer a, b;
  make(a);
  make(b);
  ChromeTraceOptions no_wall;
  no_wall.include_wall = false;
  std::ostringstream osa, osb;
  write_chrome_trace({{"e", &a, 123.0}}, osa, no_wall);
  write_chrome_trace({{"e", &b, 456.0}}, osb, no_wall);
  EXPECT_EQ(osa.str(), osb.str());
  EXPECT_EQ(osa.str().find("wall_ms"), std::string::npos);
}

// --- JSON checker itself ---

TEST(JsonCheckTest, AcceptsValidRejectsInvalid) {
  EXPECT_TRUE(json_valid(R"({"a": [1, 2.5, -3e4], "b": "xé", "c": null})"));
  EXPECT_TRUE(json_valid(R"("😀")"));  // surrogate pair
  std::string err;
  EXPECT_FALSE(json_valid(R"({"a": 01})", &err));     // leading zero
  EXPECT_FALSE(json_valid(R"({"a": 1,})", &err));     // trailing comma
  EXPECT_FALSE(json_valid("{\"a\": \"\x01\"}", &err));  // raw control char
  EXPECT_FALSE(json_valid(R"({"a": 1} extra)", &err));  // trailing data
  EXPECT_FALSE(json_valid(R"({"a")", &err));          // truncated
}

TEST(JsonCheckTest, TraceCheckRejectsMissingFields) {
  EXPECT_FALSE(check_chrome_trace(R"({"notTraceEvents": []})").ok);
  EXPECT_FALSE(check_chrome_trace(R"({"traceEvents": [{"name": "x"}]})").ok);
  const TraceCheck ok = check_chrome_trace(
      R"({"traceEvents": [{"name": "x", "ph": "i", "ts": 1, "pid": 0,)"
      R"( "tid": 1, "cat": "sim", "s": "t"}]})");
  EXPECT_TRUE(ok.ok) << ok.error;
  EXPECT_EQ(ok.event_count, 1u);
}

TEST(JsonCheckTest, TraceCheckRejectsNonMonotonicCounterTrack) {
  // Second sample on the same (pid, tid, name) counter track steps back in
  // time — Perfetto would silently reorder or drop it.
  const TraceCheck broken = check_chrome_trace(
      R"({"traceEvents": [)"
      R"({"name": "cwnd", "ph": "C", "ts": 10, "pid": 0, "tid": 1,)"
      R"( "cat": "tcp", "args": {"value": 1.0}},)"
      R"({"name": "cwnd", "ph": "C", "ts": 5, "pid": 0, "tid": 1,)"
      R"( "cat": "tcp", "args": {"value": 2.0}}]})");
  EXPECT_FALSE(broken.ok);
  EXPECT_NE(broken.error.find("not time-monotonic"), std::string::npos)
      << broken.error;

  // Same timestamps on DIFFERENT tracks (distinct name / tid) are fine, as
  // are repeated timestamps on one track.
  const TraceCheck ok = check_chrome_trace(
      R"({"traceEvents": [)"
      R"({"name": "cwnd", "ph": "C", "ts": 10, "pid": 0, "tid": 1,)"
      R"( "cat": "tcp", "args": {"value": 1.0}},)"
      R"({"name": "rtt", "ph": "C", "ts": 5, "pid": 0, "tid": 1,)"
      R"( "cat": "tcp", "args": {"value": 2.0}},)"
      R"({"name": "cwnd", "ph": "C", "ts": 5, "pid": 0, "tid": 2,)"
      R"( "cat": "tcp", "args": {"value": 3.0}},)"
      R"({"name": "cwnd", "ph": "C", "ts": 10, "pid": 0, "tid": 1,)"
      R"( "cat": "tcp", "args": {"value": 4.0}}]})");
  EXPECT_TRUE(ok.ok) << ok.error;
  EXPECT_EQ(ok.event_count, 4u);
}

TEST(JsonCheckTest, TraceCheckRejectsDuplicateMetadata) {
  const TraceCheck dup_proc = check_chrome_trace(
      R"({"traceEvents": [)"
      R"({"name": "process_name", "ph": "M", "pid": 7,)"
      R"( "args": {"name": "exp_a"}},)"
      R"({"name": "process_name", "ph": "M", "pid": 7,)"
      R"( "args": {"name": "exp_b"}}]})");
  EXPECT_FALSE(dup_proc.ok);
  EXPECT_NE(dup_proc.error.find("duplicate process_name"), std::string::npos)
      << dup_proc.error;

  const TraceCheck dup_thread = check_chrome_trace(
      R"({"traceEvents": [)"
      R"({"name": "thread_name", "ph": "M", "pid": 7, "tid": 1,)"
      R"( "args": {"name": "sim"}},)"
      R"({"name": "thread_name", "ph": "M", "pid": 7, "tid": 1,)"
      R"( "args": {"name": "ran"}}]})");
  EXPECT_FALSE(dup_thread.ok);
  EXPECT_NE(dup_thread.error.find("duplicate thread_name"), std::string::npos)
      << dup_thread.error;

  // Same tid under different pids is two distinct threads.
  const TraceCheck ok = check_chrome_trace(
      R"({"traceEvents": [)"
      R"({"name": "thread_name", "ph": "M", "pid": 7, "tid": 1,)"
      R"( "args": {"name": "sim"}},)"
      R"({"name": "thread_name", "ph": "M", "pid": 8, "tid": 1,)"
      R"( "args": {"name": "sim"}}]})");
  EXPECT_TRUE(ok.ok) << ok.error;
}

// --- Thread-local scope ---

TEST(ScopedObsTest, InstallsAndRestoresNested) {
  EXPECT_EQ(tracer(), nullptr);
  EXPECT_EQ(metrics(), nullptr);
  Tracer t1, t2;
  MetricsRegistry m1;
  {
    const ScopedObs outer(&t1, &m1);
    EXPECT_EQ(tracer(), &t1);
    EXPECT_EQ(metrics(), &m1);
    {
      const ScopedObs inner(&t2, nullptr);
      EXPECT_EQ(tracer(), &t2);
      EXPECT_EQ(metrics(), nullptr);
    }
    EXPECT_EQ(tracer(), &t1);
    EXPECT_EQ(metrics(), &m1);
  }
  EXPECT_EQ(tracer(), nullptr);
  EXPECT_EQ(metrics(), nullptr);
}

// --- Simulator profiling hooks ---

TEST(SimulatorObsTest, CountsEventsPerLabelAndTracksDepth) {
  MetricsRegistry reg;
  Tracer trace;
  const ScopedObs scope(&trace, &reg);

  sim::Simulator s;
  for (int i = 0; i < 5; ++i) s.schedule_in(i, "test.tick", [] {});
  s.schedule_in(10, [] {});  // unlabelled
  s.run();

  EXPECT_EQ(reg.counter("sim.events").value(), 6u);
  EXPECT_EQ(reg.counter("sim.events.test.tick").value(), 5u);
  EXPECT_EQ(reg.counter("sim.events.(unlabeled)").value(), 1u);
  EXPECT_EQ(s.queue_depth_high_water(), 6u);
  EXPECT_DOUBLE_EQ(reg.gauge("sim.queue_depth_hwm").max(), 6.0);
  // Wall-clock timing landed in the kWall domain, not the kSim counters.
  bool saw_wall_hist = false;
  for (const MetricSnapshot& m : reg.snapshot(MetricClock::kWall)) {
    saw_wall_hist |= m.name == "sim.callback_wall_us.test.tick";
  }
  EXPECT_TRUE(saw_wall_hist);
  for (const MetricSnapshot& m : reg.snapshot(MetricClock::kSim)) {
    EXPECT_EQ(m.name.find("wall"), std::string::npos) << m.name;
  }

  // Labelled events appear as instants on the sim track.
  int label_instants = 0;
  trace.for_each([&](const TraceEvent& e) {
    label_instants += (e.phase == TraceEvent::Phase::kInstant &&
                       e.name == "test.tick");
  });
  EXPECT_EQ(label_instants, 5);
}

TEST(SimulatorObsTest, SimulatorInstallsTracerClock) {
  Tracer trace;
  const ScopedObs scope(&trace, nullptr);
  {
    sim::Simulator s;
    s.schedule_in(42, [&] {
      EXPECT_EQ(trace.clock_now(), 42);  // spans stamp simulated time
    });
    s.run();
  }
  // Destroying the simulator releases the clock instead of dangling.
  EXPECT_EQ(trace.clock_now(), 0);
}

TEST(SimulatorObsTest, IdenticalRunsYieldIdenticalTraces) {
  const auto run_once = [](std::string* out) {
    Tracer trace;
    MetricsRegistry reg;
    const ScopedObs scope(&trace, &reg);
    sim::Simulator s;
    // A little self-rescheduling workload with spans and counters.
    int remaining = 50;
    std::function<void()> tick = [&] {
      trace.instant(s.now(), "tick", "sim");
      trace.counter(s.now(), "remaining", "sim",
                    static_cast<double>(remaining));
      if (--remaining > 0) s.schedule_in(100, "loop", tick);
    };
    s.schedule_in(0, "loop", tick);
    s.run();
    ChromeTraceOptions no_wall;
    no_wall.include_wall = false;
    std::ostringstream os;
    write_chrome_trace({{"det", &trace, 0.0}}, os, no_wall);
    *out = os.str();
  };
  std::string first, second;
  run_once(&first);
  run_once(&second);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"traceEvents\""), std::string::npos);
}

// --- binary codec (obs/codec.h) ---

// Serializes a digest through the store codec, no dictionary involved.
std::string digest_bytes(const Digest& d) {
  std::string out;
  codec::encode_digest(&out, d);
  return out;
}

Digest decode_digest_or_die(const std::string& bytes) {
  codec::Reader r(bytes);
  Digest d;
  EXPECT_TRUE(codec::decode_digest(&r, &d));
  EXPECT_TRUE(r.done());
  return d;
}

TEST(CodecTest, PrimitiveRoundTrips) {
  std::string buf;
  codec::put_varint(&buf, 0);
  codec::put_varint(&buf, 127);
  codec::put_varint(&buf, 128);
  codec::put_varint(&buf, std::numeric_limits<std::uint64_t>::max());
  codec::put_svarint(&buf, 0);
  codec::put_svarint(&buf, -1);
  codec::put_svarint(&buf, std::numeric_limits<std::int64_t>::min());
  codec::put_f64(&buf, -0.0);
  codec::put_f64(&buf, std::numeric_limits<double>::quiet_NaN());
  codec::put_string(&buf, "hello");
  codec::put_string(&buf, std::string("a\0b", 3));  // embedded NUL

  codec::Reader r(buf);
  std::uint64_t u = 1;
  std::int64_t s = 1;
  double f = 0;
  std::string str;
  EXPECT_TRUE(r.get_varint(&u));
  EXPECT_EQ(u, 0u);
  EXPECT_TRUE(r.get_varint(&u));
  EXPECT_EQ(u, 127u);
  EXPECT_TRUE(r.get_varint(&u));
  EXPECT_EQ(u, 128u);
  EXPECT_TRUE(r.get_varint(&u));
  EXPECT_EQ(u, std::numeric_limits<std::uint64_t>::max());
  EXPECT_TRUE(r.get_svarint(&s));
  EXPECT_EQ(s, 0);
  EXPECT_TRUE(r.get_svarint(&s));
  EXPECT_EQ(s, -1);
  EXPECT_TRUE(r.get_svarint(&s));
  EXPECT_EQ(s, std::numeric_limits<std::int64_t>::min());
  EXPECT_TRUE(r.get_f64(&f));
  EXPECT_TRUE(std::signbit(f));  // -0.0 keeps its sign bit
  EXPECT_TRUE(r.get_f64(&f));
  EXPECT_TRUE(std::isnan(f));
  EXPECT_TRUE(r.get_string(&str));
  EXPECT_EQ(str, "hello");
  EXPECT_TRUE(r.get_string(&str));
  EXPECT_EQ(str, std::string("a\0b", 3));
  EXPECT_TRUE(r.done());
}

TEST(CodecTest, ReaderPoisonsOnTruncationAndOverflow) {
  std::string buf;
  codec::put_varint(&buf, 1u << 20);
  buf.resize(buf.size() - 1);  // truncate mid-varint
  codec::Reader r(buf);
  std::uint64_t u = 0;
  EXPECT_FALSE(r.get_varint(&u));
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.get_varint(&u));  // stays poisoned

  // A 10-byte varint encoding more than 64 bits is non-canonical.
  const std::string over(10, '\xff');
  codec::Reader r2(over);
  EXPECT_FALSE(r2.get_varint(&u));
  EXPECT_FALSE(r2.ok());
}

TEST(CodecTest, DigestEncodeDecodeEncodeIsFixedPoint) {
  sim::Rng rng(20260808);
  Digest original;
  for (int i = 0; i < 5000; ++i) {
    // Mixed regimes: positive heavy tail, negatives, exact zeros and
    // sub-epsilon values that collapse into the zero bucket.
    switch (rng.uniform_int(0, 3)) {
      case 0:
        original.observe(rng.lognormal(2.0, 1.5));
        break;
      case 1:
        original.observe(-rng.exponential(0.1));
        break;
      case 2:
        original.observe(0.0);
        break;
      default:
        original.observe(rng.uniform(-1e-13, 1e-13));
        break;
    }
  }
  const std::string once = digest_bytes(original);
  const Digest decoded = decode_digest_or_die(once);
  // encode(decode(x)) == encode(x) byte-for-byte...
  EXPECT_EQ(digest_bytes(decoded), once);
  // ...and every derived statistic matches bit-for-bit.
  EXPECT_EQ(decoded.count(), original.count());
  EXPECT_EQ(decoded.sum(), original.sum());
  EXPECT_EQ(decoded.min(), original.min());
  EXPECT_EQ(decoded.max(), original.max());
  for (const double q : {0.0, 0.05, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(decoded.quantile(q), original.quantile(q)) << "q=" << q;
  }
}

TEST(CodecTest, DigestEmptySingleSampleAndNegativeOnly) {
  const Digest empty;
  const Digest empty2 = decode_digest_or_die(digest_bytes(empty));
  EXPECT_EQ(empty2.count(), 0u);
  EXPECT_EQ(digest_bytes(empty2), digest_bytes(empty));

  Digest single;
  single.observe(-273.15);
  const Digest single2 = decode_digest_or_die(digest_bytes(single));
  EXPECT_EQ(single2.count(), 1u);
  EXPECT_EQ(single2.min(), single.min());
  EXPECT_EQ(single2.quantile(0.5), single.quantile(0.5));

  Digest negatives;  // exercises the neg_bins column alone
  for (int i = 1; i <= 100; ++i) negatives.observe(-static_cast<double>(i));
  const Digest negatives2 = decode_digest_or_die(digest_bytes(negatives));
  EXPECT_EQ(digest_bytes(negatives2), digest_bytes(negatives));
  EXPECT_EQ(negatives2.quantile(0.9), negatives.quantile(0.9));
}

TEST(CodecTest, MergedDecodedDigestsMatchMergedOriginals) {
  sim::Rng rng(7);
  Digest a;
  Digest b;
  for (int i = 0; i < 2000; ++i) {
    a.observe(rng.normal(10.0, 3.0));
    b.observe(-rng.lognormal(0.0, 2.0));
  }
  Digest merged_originals = a;  // merge order fixed: a then b
  merged_originals.merge(b);

  Digest merged_decoded = decode_digest_or_die(digest_bytes(a));
  merged_decoded.merge(decode_digest_or_die(digest_bytes(b)));

  EXPECT_EQ(digest_bytes(merged_decoded), digest_bytes(merged_originals));
  EXPECT_EQ(merged_decoded.sum(), merged_originals.sum());
  for (const double q : {0.05, 0.5, 0.95}) {
    EXPECT_EQ(merged_decoded.quantile(q), merged_originals.quantile(q));
  }
}

TEST(CodecTest, DigestDecodeRejectsZeroCountBin) {
  // A live digest never exports a zero-count bin; rejecting it on decode
  // keeps encode∘decode a fixed point. Craft the malformed payload by
  // hand: zero=0, sum/min/max, one positive bin (key 3, count 0).
  std::string buf;
  codec::put_varint(&buf, 0);    // zero_count
  codec::put_f64(&buf, 1.0);     // sum
  codec::put_f64(&buf, 1.0);     // min
  codec::put_f64(&buf, 1.0);     // max
  codec::put_varint(&buf, 1);    // one positive bin
  codec::put_svarint(&buf, 3);   // key
  codec::put_varint(&buf, 0);    // count 0 — invalid
  codec::put_varint(&buf, 0);    // no negative bins
  codec::Reader r(buf);
  Digest d;
  EXPECT_FALSE(codec::decode_digest(&r, &d));
}

TEST(CodecTest, HistogramRoundTripsBitForBit) {
  sim::Rng rng(99);
  Histogram h;
  for (int i = 0; i < 3000; ++i) h.observe(rng.exponential(0.001));
  std::string bytes;
  codec::encode_histogram(&bytes, h);
  codec::Reader r(bytes);
  Histogram back;
  ASSERT_TRUE(codec::decode_histogram(&r, &back));
  EXPECT_TRUE(r.done());
  std::string again;
  codec::encode_histogram(&again, back);
  EXPECT_EQ(again, bytes);
  EXPECT_EQ(back.count(), h.count());
  EXPECT_EQ(back.quantile(0.5), h.quantile(0.5));
  EXPECT_EQ(back.quantile(0.99), h.quantile(0.99));
}

TEST(CodecTest, SnapshotSetRoundTripsThroughDictionary) {
  MetricsRegistry reg;
  reg.counter("pkts").add(12345);
  reg.counter("drops").add(1);
  reg.gauge("queue").set(3.5);
  reg.gauge("queue").set(1.0);  // max stays 3.5
  sim::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    reg.histogram("lat_us").observe(rng.lognormal(3.0, 1.0));
    reg.digest("tput").observe(rng.normal(100.0, 25.0));
  }
  const std::vector<MetricSnapshot> snaps = reg.snapshot(MetricClock::kSim);
  ASSERT_FALSE(snaps.empty());

  // Self-contained dictionary: intern assigns ids in first-use order.
  std::vector<std::string> dict;
  const auto intern = [&dict](std::string_view s) -> std::uint64_t {
    for (std::size_t i = 0; i < dict.size(); ++i) {
      if (dict[i] == s) return i;
    }
    dict.emplace_back(s);
    return dict.size() - 1;
  };
  const auto resolve = [&dict](std::uint64_t id, std::string* out) {
    if (id >= dict.size()) return false;
    *out = dict[id];
    return true;
  };
  std::string bytes;
  codec::encode_snapshots(&bytes, snaps, intern);
  codec::Reader r(bytes);
  std::vector<MetricSnapshot> back;
  ASSERT_TRUE(codec::decode_snapshots(&r, MetricClock::kSim, resolve, &back));
  EXPECT_TRUE(r.done());

  ASSERT_EQ(back.size(), snaps.size());
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    const MetricSnapshot& want = snaps[i];
    const MetricSnapshot& got = back[i];
    EXPECT_EQ(got.name, want.name);
    EXPECT_EQ(got.kind, want.kind);
    EXPECT_EQ(got.clock, want.clock);
    // Derived fields are recomputed on decode through the same
    // snapshot_of path — bit-for-bit, not approximately.
    EXPECT_EQ(got.value, want.value) << want.name;
    EXPECT_EQ(got.max, want.max) << want.name;
    EXPECT_EQ(got.count, want.count) << want.name;
    EXPECT_EQ(got.sum, want.sum) << want.name;
    EXPECT_EQ(got.min, want.min) << want.name;
    EXPECT_EQ(got.p05, want.p05) << want.name;
    EXPECT_EQ(got.p25, want.p25) << want.name;
    EXPECT_EQ(got.p50, want.p50) << want.name;
    EXPECT_EQ(got.p75, want.p75) << want.name;
    EXPECT_EQ(got.p90, want.p90) << want.name;
    EXPECT_EQ(got.p95, want.p95) << want.name;
    EXPECT_EQ(got.p99, want.p99) << want.name;
    EXPECT_EQ(got.bins, want.bins) << want.name;
    EXPECT_EQ(got.neg_bins, want.neg_bins) << want.name;
    EXPECT_EQ(got.zero_count, want.zero_count) << want.name;
  }
}

}  // namespace
}  // namespace fiveg::obs

// Tests for the extension features: the CoDel AQM, the deterministic-start
// (seeded) BBR, and the SA energy model with RRC_INACTIVE.
#include <gtest/gtest.h>

#include "app/iperf.h"
#include "app/multipath.h"
#include "app/video.h"
#include "energy/rrc_power_machine.h"
#include "energy/traffic_trace.h"
#include "geo/campus.h"
#include "net/aqm.h"
#include "net/link.h"
#include "net/path.h"
#include "ran/deployment.h"
#include "sim/simulator.h"
#include "tcp/cc_algorithms.h"
#include "tcp/tcp_receiver.h"
#include "tcp/tcp_sender.h"

namespace fiveg {
namespace {

using sim::from_millis;
using sim::kSecond;

net::Packet packet(std::uint32_t bytes = 1500) {
  net::Packet p;
  p.size_bytes = bytes;
  return p;
}

TEST(CoDelTest, PassesThroughWhenUncongested) {
  net::CoDelQueue q;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.push(packet(), i * from_millis(1)));
    // Dequeued almost immediately: sojourn < target, no drops.
    const auto p = q.pop(i * from_millis(1) + from_millis(1));
    ASSERT_TRUE(p.has_value());
  }
  EXPECT_EQ(q.drops(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(CoDelTest, DropsWhenSojournExceedsTargetForAnInterval) {
  net::CoDelQueue q;
  // Fill, then drain slowly so sojourn stays far above the 5 ms target.
  sim::Time now = 0;
  for (int i = 0; i < 200; ++i) q.push(packet(), now);
  std::uint64_t delivered = 0;
  for (int i = 0; i < 200; ++i) {
    now += from_millis(20);  // sojourn grows to seconds
    if (q.pop(now)) ++delivered;
  }
  EXPECT_GT(q.drops(), 5u);
  EXPECT_LT(delivered, 200u);
}

TEST(CoDelTest, RespectsByteCapacity) {
  net::CoDelQueue::Config cfg;
  cfg.capacity_bytes = 3000;
  net::CoDelQueue q(cfg);
  EXPECT_TRUE(q.push(packet(), 0));
  EXPECT_TRUE(q.push(packet(), 0));
  EXPECT_FALSE(q.push(packet(), 0));
  EXPECT_EQ(q.drops(), 1u);
}

TEST(CoDelTest, RecoversAfterCongestionClears) {
  net::CoDelQueue q;
  sim::Time now = 0;
  for (int i = 0; i < 100; ++i) q.push(packet(), now);
  for (int i = 0; i < 100; ++i) {
    now += from_millis(15);
    (void)q.pop(now);
  }
  const auto drops_during = q.drops();
  EXPECT_GT(drops_during, 0u);
  // Fresh, uncongested traffic flows without further drops.
  now += kSecond;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(q.push(packet(), now));
    ASSERT_TRUE(q.pop(now + from_millis(1)).has_value());
    now += from_millis(10);
  }
  EXPECT_EQ(q.drops(), drops_during);
}

TEST(CoDelLinkTest, BoundsQueueingDelayUnderOverload) {
  // Same overload through drop-tail vs CoDel: CoDel keeps the standing
  // queue (and so the delay) an order of magnitude smaller.
  // A sustained 1.1x overload: CoDel's drop rate ramps until the standing
  // queue hovers near the 5 ms target; drop-tail just fills up. (CoDel
  // needs seconds to throttle non-reactive traffic — that is by design.)
  const auto standing_queue = [](bool use_codel) {
    sim::Simulator simr;
    net::Link::Config cfg;
    cfg.rate_bps = 50e6;
    cfg.queue_bytes = 2 << 20;
    cfg.qdisc.kind =
        use_codel ? net::QdiscKind::kCoDel : net::QdiscKind::kDropTail;
    net::CountingSink sink;
    net::Link link(&simr, cfg, &sink);
    const sim::Time gap = from_millis(1500.0 * 8 / 55e6 * 1000);  // 55 Mbps
    for (int i = 0; i < 140000; ++i) {
      simr.schedule_in(i * gap, [&] { link.send(packet()); });
    }
    simr.run_until(30 * kSecond);
    return link.queue_bytes();
  };
  const auto droptail = standing_queue(false);
  const auto codel = standing_queue(true);
  EXPECT_GT(droptail, std::uint64_t{1} << 20);  // filled to capacity
  EXPECT_LT(codel, droptail / 4);
}

TEST(SeededBbrTest, StartsAtFullRateInstantly) {
  tcp::CcSeed seed;
  seed.rate_bps = 500e6;
  seed.rtt = from_millis(20);
  tcp::BbrCc cc(1460, seed);
  EXPECT_FALSE(cc.in_slow_start());
  EXPECT_NEAR(cc.btl_bw_bps(), 500e6, 1.0);
  // cwnd = 2 * BDP = 2 * 500e6/8 * 0.02 = 2.5 MB.
  EXPECT_NEAR(cc.cwnd_bytes(), 2.5e6, 0.1e6);
  EXPECT_GT(cc.pacing_rate_bps(), 400e6);
}

TEST(SeededBbrTest, UnseededStillProbes) {
  tcp::BbrCc cc(1460);
  EXPECT_TRUE(cc.in_slow_start());
  EXPECT_DOUBLE_EQ(cc.btl_bw_bps(), 0.0);
}

TEST(SeededBbrTest, SeededTransferFinishesFasterOnCleanPath) {
  const auto fetch_time = [](bool seeded) {
    sim::Simulator simr;
    std::vector<net::Link::Config> hops(2);
    hops[0].rate_bps = 400e6;
    hops[0].prop_delay = from_millis(15);
    hops[0].queue_bytes = 2 << 20;
    hops[1].rate_bps = 10e9;
    hops[1].prop_delay = from_millis(15);
    net::PathNetwork path(&simr, hops);
    app::PathFanout fanout(&path);
    tcp::TcpConfig cfg;
    cfg.algo = tcp::CcAlgo::kBbr;
    if (seeded) {
      cfg.seed.rate_bps = 400e6;
      cfg.seed.rtt = from_millis(30);
    }
    app::TcpSession s(&simr, &path, &fanout, cfg);
    sim::Time done = 0;
    s.sender().send_bytes(8 << 20, [&] { done = simr.now(); });
    simr.run_until(60 * kSecond);
    return sim::to_seconds(done);
  };
  const double stock = fetch_time(false);
  const double seeded = fetch_time(true);
  EXPECT_LT(seeded, 0.75 * stock);
}

TEST(SaEnergyTest, SaBeatsNsaOnEveryWorkload) {
  const energy::RrcPowerMachine machine;
  for (const auto& trace :
       {energy::web_browsing_trace(sim::Rng(1)),
        energy::video_telephony_trace(sim::Rng(2)),
        energy::file_transfer_trace(500'000'000)}) {
    const double nsa =
        machine.replay(trace, energy::RadioModel::kNrNsa).radio_joules;
    const double sa =
        machine.replay(trace, energy::RadioModel::kNrSa).radio_joules;
    EXPECT_LT(sa, nsa);
    EXPECT_GT(sa, 0.3 * nsa);  // it is not magic, just a shorter ladder
  }
}

TEST(SaEnergyTest, SaTailIsHalfTheNsaTail) {
  const energy::RrcPowerMachine machine;
  const auto trace = energy::file_transfer_trace(10'000'000);
  const auto nsa = machine.replay(trace, energy::RadioModel::kNrNsa);
  const auto sa = machine.replay(trace, energy::RadioModel::kNrSa);
  const double nsa_tail = sim::to_seconds(nsa.duration - nsa.completion);
  const double sa_tail = sim::to_seconds(sa.duration - sa.completion);
  EXPECT_NEAR(sa_tail / nsa_tail, 0.5, 0.12);
}

TEST(SaEnergyTest, InactiveResumeMakesBurstsCheap) {
  // Bursts 5 s apart: NSA re-promotes through the full NSA ladder after
  // its tail; SA resumes from RRC_INACTIVE almost for free.
  energy::TrafficTrace bursts;
  for (int i = 0; i < 8; ++i) {
    bursts.push_back({i * 40 * kSecond, 2'000'000});
  }
  const energy::RrcPowerMachine machine;
  const auto nsa = machine.replay(bursts, energy::RadioModel::kNrNsa);
  const auto sa = machine.replay(bursts, energy::RadioModel::kNrSa);
  EXPECT_LT(sa.radio_joules, 0.8 * nsa.radio_joules);
  // SA also finishes each burst sooner (no 1.68 s promotion).
  EXPECT_LT(sa.completion, nsa.completion);
}

TEST(MultipathTest, SplitsProportionallyToPathRates) {
  sim::Simulator simr;
  const auto make = [&](double rate) {
    std::vector<net::Link::Config> hops(2);
    hops[0].rate_bps = rate;
    hops[0].prop_delay = from_millis(10);
    hops[0].queue_bytes = 1 << 20;
    hops[1].rate_bps = 10e9;
    hops[1].prop_delay = from_millis(10);
    return hops;
  };
  net::PathNetwork fast(&simr, make(160e6));
  net::PathNetwork slow(&simr, make(40e6));
  app::PathFanout fa(&fast), fb(&slow);
  app::MultipathTransfer::Config cfg;
  cfg.transport.algo = tcp::CcAlgo::kBbr;
  app::MultipathTransfer mp(&simr, &fast, &fa, &slow, &fb, cfg);
  bool done = false;
  mp.transfer(50 << 20, [&] { done = true; });
  simr.run_until(60 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_TRUE(mp.finished());
  EXPECT_EQ(mp.bytes_via_a() + mp.bytes_via_b(),
            std::uint64_t{50} << 20);
  // 4:1 rate ratio -> roughly 4:1 byte split (pull scheduling).
  const double ratio = static_cast<double>(mp.bytes_via_a()) /
                       static_cast<double>(mp.bytes_via_b());
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 7.0);
}

TEST(MultipathTest, SurvivesSinglePathOutage) {
  sim::Simulator simr;
  bool blocked = false;
  std::vector<net::Link::Config> hops_a(2), hops_b(2);
  for (auto* hops : {&hops_a, &hops_b}) {
    (*hops)[0].rate_bps = 80e6;
    (*hops)[0].prop_delay = from_millis(10);
    (*hops)[0].queue_bytes = 1 << 20;
    (*hops)[1].rate_bps = 10e9;
    (*hops)[1].prop_delay = from_millis(10);
  }
  hops_a[0].blocked_fn = [&] { return blocked; };
  net::PathNetwork a(&simr, hops_a), b(&simr, hops_b);
  app::PathFanout fa(&a), fb(&b);
  app::MultipathTransfer::Config cfg;
  cfg.transport.algo = tcp::CcAlgo::kBbr;
  app::MultipathTransfer mp(&simr, &a, &fa, &b, &fb, cfg);
  bool done = false;
  mp.transfer(30 << 20, [&] { done = true; });
  // Path A dies for good after 1 s; the transfer must still finish via B.
  simr.schedule_at(kSecond, [&] { blocked = true; });
  simr.run_until(90 * kSecond);
  EXPECT_TRUE(done);
  EXPECT_GT(mp.bytes_via_b(), mp.bytes_via_a());
}

TEST(AbrVideoTest, AdaptationPreventsBacklogCollapse) {
  const auto run = [](bool abr) {
    sim::Simulator simr;
    std::vector<net::Link::Config> hops(2);
    hops[0].rate_bps = 40e6;  // cannot carry 5.7K (80 Mbps)
    hops[0].prop_delay = from_millis(15);
    hops[0].queue_bytes = 1 << 20;
    hops[1].rate_bps = 10e9;
    hops[1].prop_delay = from_millis(5);
    net::PathNetwork path(&simr, hops);
    app::PathFanout fanout(&path);
    app::VideoConfig cfg;
    cfg.resolution = app::Resolution::k5p7K;
    cfg.adaptive_bitrate = abr;
    cfg.transport.algo = tcp::CcAlgo::kBbr;
    app::VideoTelephony call(&simr, &path, &fanout, cfg, sim::Rng(3));
    call.start(20 * kSecond);
    simr.run_until(80 * kSecond);
    return call.stats();
  };
  const app::VideoStats fixed = run(false);
  const app::VideoStats abr = run(true);
  EXPECT_GT(abr.downshifts, 0);
  EXPECT_GT(abr.frames_at_reduced_res, 0u);
  // Adaptation keeps tail latency an order of magnitude lower.
  EXPECT_LT(abr.frame_delay_s.quantile(0.9),
            0.5 * fixed.frame_delay_s.quantile(0.9));
  EXPECT_EQ(fixed.downshifts, 0);
}

TEST(DensificationTest, MoreSitesMeanFewerHoles) {
  const geo::CampusMap campus = geo::make_campus(sim::Rng(42).fork("campus"));
  double last_holes = 1.0;
  for (const int sites : {3, 6, 13}) {
    const ran::Deployment dep =
        ran::make_deployment(&campus, sim::Rng(42).fork("d"), sites);
    EXPECT_EQ(dep.site_count(radio::Rat::kNr), sites);
    sim::Rng rng(5);
    int holes = 0;
    const int n = 800;
    for (int i = 0; i < n; ++i) {
      holes += !dep.best(radio::Rat::kNr,
                         campus.random_outdoor_point(rng))
                    .in_coverage();
    }
    const double frac = static_cast<double>(holes) / n;
    EXPECT_LT(frac, last_holes + 0.02) << sites;  // monotone-ish
    last_holes = frac;
  }
  EXPECT_LT(last_holes, 0.06);  // 13 sites nearly close the holes
}

}  // namespace
}  // namespace fiveg

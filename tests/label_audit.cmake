# Audits the ctest inventory: every registered test must carry exactly one
# tier label (tier1 or chaos), so `ctest -L tier1` and `ctest -L chaos`
# partition the suite with nothing silently unlabelled and nothing gated
# twice. Runs as a ctest test itself:
#   cmake -DCTEST=<ctest> -DBUILD_DIR=<build> -P label_audit.cmake
cmake_minimum_required(VERSION 3.25)

if(NOT DEFINED CTEST OR NOT DEFINED BUILD_DIR)
  message(FATAL_ERROR
    "usage: cmake -DCTEST=<ctest> -DBUILD_DIR=<build> -P label_audit.cmake")
endif()

execute_process(
  COMMAND ${CTEST} --show-only=json-v1 --test-dir ${BUILD_DIR}
  OUTPUT_VARIABLE doc
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ctest --show-only=json-v1 failed (${rc}): ${err}")
endif()

string(JSON ntests LENGTH "${doc}" tests)
if(ntests LESS 2)
  message(FATAL_ERROR "label audit found only ${ntests} test(s) — wrong "
    "BUILD_DIR?")
endif()

set(bad "")
math(EXPR last "${ntests} - 1")
foreach(i RANGE ${last})
  string(JSON tname GET "${doc}" tests ${i} name)
  set(tier_labels "")
  string(JSON nprops ERROR_VARIABLE perr LENGTH "${doc}" tests ${i} properties)
  if(NOT perr AND nprops GREATER 0)
    math(EXPR plast "${nprops} - 1")
    foreach(p RANGE ${plast})
      string(JSON pname GET "${doc}" tests ${i} properties ${p} name)
      if(pname STREQUAL "LABELS")
        string(JSON nlabels LENGTH "${doc}" tests ${i} properties ${p} value)
        math(EXPR llast "${nlabels} - 1")
        foreach(l RANGE ${llast})
          string(JSON label GET "${doc}" tests ${i} properties ${p} value ${l})
          if(label STREQUAL "tier1" OR label STREQUAL "chaos")
            list(APPEND tier_labels "${label}")
          endif()
        endforeach()
      endif()
    endforeach()
  endif()
  list(LENGTH tier_labels count)
  if(NOT count EQUAL 1)
    list(APPEND bad "${tname}: [${tier_labels}]")
  endif()
endforeach()

if(bad)
  list(JOIN bad "\n  " bad_lines)
  message(FATAL_ERROR "every test needs exactly one tier label "
    "(tier1 | chaos); offenders:\n  ${bad_lines}")
endif()
message(STATUS "label audit: ${ntests} tests, all carry exactly one tier "
  "label")

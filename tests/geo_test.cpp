// Unit tests for the geometry, building and campus models.
#include <gtest/gtest.h>

#include <cmath>

#include "geo/building.h"
#include "geo/campus.h"
#include "geo/geometry.h"
#include "geo/route.h"
#include "sim/rng.h"

namespace fiveg::geo {
namespace {

TEST(GeometryTest, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(GeometryTest, Azimuth) {
  EXPECT_DOUBLE_EQ(azimuth_deg({0, 0}, {1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(azimuth_deg({0, 0}, {0, 1}), 90.0);
  EXPECT_DOUBLE_EQ(azimuth_deg({0, 0}, {-1, 0}), 180.0);
  EXPECT_DOUBLE_EQ(azimuth_deg({0, 0}, {0, -1}), 270.0);
}

TEST(GeometryTest, AngleDiffWrapsAround) {
  EXPECT_DOUBLE_EQ(angle_diff_deg(10, 350), 20.0);
  EXPECT_DOUBLE_EQ(angle_diff_deg(0, 180), 180.0);
  EXPECT_DOUBLE_EQ(angle_diff_deg(90, 90), 0.0);
  EXPECT_DOUBLE_EQ(angle_diff_deg(720, 0), 0.0);
}

TEST(GeometryTest, SegmentInterpolation) {
  const Segment s{{0, 0}, {10, 20}};
  EXPECT_EQ(s.at(0.5), (Point{5, 10}));
  EXPECT_DOUBLE_EQ(s.length(), std::sqrt(500.0));
}

TEST(RectTest, Contains) {
  const Rect r{{0, 0}, {10, 10}};
  EXPECT_TRUE(r.contains({5, 5}));
  EXPECT_TRUE(r.contains({0, 0}));    // boundary inclusive
  EXPECT_TRUE(r.contains({10, 10}));
  EXPECT_FALSE(r.contains({10.1, 5}));
  EXPECT_FALSE(r.contains({-0.1, 5}));
}

TEST(RectTest, SegmentCrossings) {
  const Rect r{{0, 0}, {10, 10}};
  // Passes straight through: 2 walls.
  EXPECT_EQ(r.crossings({{-5, 5}, {15, 5}}), 2);
  // From outside to inside: 1 wall.
  EXPECT_EQ(r.crossings({{-5, 5}, {5, 5}}), 1);
  // Fully inside: 0 walls.
  EXPECT_EQ(r.crossings({{2, 2}, {8, 8}}), 0);
  // Misses entirely: 0.
  EXPECT_EQ(r.crossings({{-5, 20}, {15, 20}}), 0);
  // Diagonal through a corner region.
  EXPECT_EQ(r.crossings({{-1, -1}, {11, 11}}), 2);
}

TEST(RectTest, Intersects) {
  const Rect r{{0, 0}, {10, 10}};
  EXPECT_TRUE(r.intersects({{-5, 5}, {15, 5}}));
  EXPECT_TRUE(r.intersects({{2, 2}, {3, 3}}));
  EXPECT_FALSE(r.intersects({{-5, -5}, {-1, 20}}));
  // Vertical segment just outside the right edge.
  EXPECT_FALSE(r.intersects({{10.5, -5}, {10.5, 15}}));
  // Vertical segment exactly on the edge counts as touching.
  EXPECT_TRUE(r.intersects({{10.0, -5}, {10.0, 15}}));
}

TEST(BuildingTest, WallLossGrowsWithFrequency) {
  const double lte = wall_loss_db(Material::kConcrete, 1.85);
  const double nr = wall_loss_db(Material::kConcrete, 3.5);
  EXPECT_GT(nr, lte);
  EXPECT_GT(lte, 5.0);
  // Drywall is much lighter than concrete at either band.
  EXPECT_LT(wall_loss_db(Material::kDrywall, 3.5),
            0.5 * wall_loss_db(Material::kConcrete, 3.5));
}

TEST(BuildingTest, PenetrationCountsWalls) {
  const Building b{Rect{{0, 0}, {10, 10}}, Material::kConcrete, "b"};
  const double one_wall = b.penetration_db({{-5, 5}, {5, 5}}, 3.5);
  const double two_walls = b.penetration_db({{-5, 5}, {15, 5}}, 3.5);
  EXPECT_NEAR(two_walls, 2.0 * one_wall, 1e-9);
  EXPECT_DOUBLE_EQ(b.penetration_db({{-5, 20}, {15, 20}}, 3.5), 0.0);
}

TEST(CampusTest, GeneratedCampusMatchesPaperDims) {
  const CampusMap campus = make_campus(sim::Rng(42));
  EXPECT_DOUBLE_EQ(campus.bounds().width(), 500.0);
  EXPECT_DOUBLE_EQ(campus.bounds().height(), 920.0);
  EXPECT_GT(campus.buildings().size(), 10u);
}

TEST(CampusTest, DeterministicForSeed) {
  const CampusMap a = make_campus(sim::Rng(42));
  const CampusMap b = make_campus(sim::Rng(42));
  ASSERT_EQ(a.buildings().size(), b.buildings().size());
  for (std::size_t i = 0; i < a.buildings().size(); ++i) {
    EXPECT_EQ(a.buildings()[i].footprint.min, b.buildings()[i].footprint.min);
  }
}

TEST(CampusTest, IndoorOutdoorAndLos) {
  const CampusMap campus = make_campus(sim::Rng(42));
  const Building& b = campus.buildings().front();
  const Point inside = b.footprint.center();
  EXPECT_TRUE(campus.is_indoor(inside));
  sim::Rng rng(7);
  const Point outside = campus.random_outdoor_point(rng);
  EXPECT_FALSE(campus.is_indoor(outside));
  // A path into a building cannot be LoS.
  EXPECT_FALSE(campus.has_los({outside, inside}));
}

TEST(CampusTest, PenetrationZeroForOpenPath) {
  const CampusMap campus = make_campus(sim::Rng(42));
  // Walk along the outer boundary: streets are building-free by construction.
  const Segment edge{{1.0, 1.0}, {1.0, 919.0}};
  EXPECT_DOUBLE_EQ(campus.penetration_db(edge, 3.5), 0.0);
  EXPECT_TRUE(campus.has_los(edge));
}

TEST(RouteTest, LengthAndInterpolation) {
  const Route r({{0, 0}, {0, 100}, {50, 100}});
  EXPECT_DOUBLE_EQ(r.length_m(), 150.0);
  EXPECT_EQ(r.position_at(50), (Point{0, 50}));
  EXPECT_EQ(r.position_at(125), (Point{25, 100}));
  EXPECT_EQ(r.position_at(-10), (Point{0, 0}));
  EXPECT_EQ(r.position_at(1e9), (Point{50, 100}));
}

TEST(RouteTest, SamplesCoverRoute) {
  const Route r({{0, 0}, {0, 90}});
  const auto pts = r.samples(30.0);
  ASSERT_EQ(pts.size(), 4u);  // 0, 30, 60 + endpoint
  EXPECT_EQ(pts.back(), (Point{0, 90}));
}

TEST(RouteTest, RejectsDegenerateInputs) {
  EXPECT_THROW(Route({{0, 0}}), std::invalid_argument);
  const Route r({{0, 0}, {1, 0}});
  EXPECT_THROW((void)r.samples(0.0), std::invalid_argument);
}

TEST(RouteTest, SurveyRouteSpansCampus) {
  const CampusMap campus = make_campus(sim::Rng(42));
  const Route survey = make_survey_route(campus);
  // The paper's survey walks 6.019 km; ours should be the same order.
  EXPECT_GT(survey.length_m(), 4000.0);
  EXPECT_LT(survey.length_m(), 12000.0);
  for (const Point& p : survey.waypoints()) {
    EXPECT_TRUE(campus.bounds().contains(p));
  }
}

}  // namespace
}  // namespace fiveg::geo

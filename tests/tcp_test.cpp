// Tests for the transport layer: congestion controllers in isolation, the
// RTT estimator, and full sender/receiver sessions over simulated paths.
#include <gtest/gtest.h>

#include <memory>

#include "net/aqm.h"
#include "net/link.h"
#include "net/path.h"
#include "sim/simulator.h"
#include "tcp/cc_algorithms.h"
#include "tcp/congestion_control.h"
#include "tcp/rtt_estimator.h"
#include "tcp/tcp_receiver.h"
#include "tcp/tcp_sender.h"

namespace fiveg::tcp {
namespace {

using sim::from_millis;
using sim::kMillisecond;
using sim::kSecond;

constexpr std::uint32_t kMss = 1460;

AckEvent make_ack(sim::Time now, sim::Time rtt, std::uint64_t acked,
                  std::uint64_t delivered = 0, double rate = 0.0,
                  std::uint64_t inflight = 0) {
  AckEvent e;
  e.now = now;
  e.rtt = rtt;
  e.min_rtt = rtt;
  e.acked_bytes = acked;
  e.delivered_bytes = delivered;
  e.delivery_rate_bps = rate;
  e.bytes_in_flight = inflight;
  return e;
}

TEST(CcFactoryTest, CreatesAllAlgorithms) {
  for (const CcAlgo a : {CcAlgo::kReno, CcAlgo::kCubic, CcAlgo::kVegas,
                         CcAlgo::kVeno, CcAlgo::kBbr}) {
    const auto cc = make_congestion_control(a, kMss);
    ASSERT_NE(cc, nullptr);
    EXPECT_GT(cc->cwnd_bytes(), 0.0);
    EXPECT_FALSE(to_string(a).empty());
    EXPECT_FALSE(cc->name().empty());
  }
}

TEST(RenoTest, SlowStartDoublesPerRtt) {
  RenoCc cc(kMss);
  const double w0 = cc.cwnd_bytes();
  EXPECT_TRUE(cc.in_slow_start());
  // One RTT worth of ACKs: every byte acked adds a byte.
  cc.on_ack(make_ack(0, from_millis(20), static_cast<std::uint64_t>(w0)));
  EXPECT_DOUBLE_EQ(cc.cwnd_bytes(), 2 * w0);
}

TEST(RenoTest, LossHalvesTimeoutResets) {
  RenoCc cc(kMss);
  for (int i = 0; i < 100; ++i) {
    cc.on_ack(make_ack(i, from_millis(20), kMss));
  }
  const double before = cc.cwnd_bytes();
  cc.on_loss(0, 0);
  EXPECT_NEAR(cc.cwnd_bytes(), before / 2, 1.0);
  EXPECT_FALSE(cc.in_slow_start());
  cc.on_timeout(0);
  EXPECT_DOUBLE_EQ(cc.cwnd_bytes(), kMss);
}

TEST(RenoTest, CongestionAvoidanceLinear) {
  RenoCc cc(kMss);
  cc.on_loss(0, 0);  // exit slow start
  const double w = cc.cwnd_bytes();
  // A full window of ACKs adds ~1 MSS.
  double acked = 0;
  while (acked < w) {
    cc.on_ack(make_ack(0, from_millis(20), kMss));
    acked += kMss;
  }
  EXPECT_NEAR(cc.cwnd_bytes(), w + kMss, kMss * 0.25);
}

TEST(CubicTest, ConcaveGrowthTowardWmax) {
  CubicCc cc(kMss);
  // Grow, lose, then regrow: cwnd should approach (not wildly overshoot)
  // the pre-loss window within ~K seconds.
  for (int i = 0; i < 200; ++i) cc.on_ack(make_ack(i, from_millis(20), kMss));
  const double w_max = cc.cwnd_bytes();
  cc.on_loss(kSecond, 0);
  EXPECT_NEAR(cc.cwnd_bytes(), 0.7 * w_max, 2.0);

  sim::Time t = kSecond;
  double last = cc.cwnd_bytes();
  bool overshoot = false;
  for (int i = 0; i < 2000 && !overshoot; ++i) {
    t += from_millis(5);
    cc.on_ack(make_ack(t, from_millis(20), kMss));
    EXPECT_GE(cc.cwnd_bytes() + 1e-6, last);  // monotone regrowth
    last = cc.cwnd_bytes();
    overshoot = cc.cwnd_bytes() > 1.5 * w_max;
  }
  EXPECT_GE(last, 0.95 * w_max);  // recovered to the old plateau
}

TEST(CubicTest, TimeoutCollapsesWindow) {
  CubicCc cc(kMss);
  for (int i = 0; i < 50; ++i) cc.on_ack(make_ack(i, from_millis(20), kMss));
  cc.on_timeout(kSecond);
  EXPECT_DOUBLE_EQ(cc.cwnd_bytes(), kMss);
}

TEST(VegasTest, BacklogKeepsWindowFlat) {
  VegasCc cc(kMss);
  // Feed RTT inflated well above base -> diff > beta -> shrink after
  // leaving slow start.
  sim::Time t = 0;
  cc.on_ack(make_ack(t, from_millis(20), kMss));  // base RTT 20 ms
  for (int i = 0; i < 50; ++i) {
    t += from_millis(40);
    cc.on_ack(make_ack(t, from_millis(40), kMss));  // queueing delay
  }
  EXPECT_FALSE(cc.in_slow_start());
  EXPECT_GT(cc.backlog_packets(), VegasCc{kMss}.backlog_packets());
  const double w = cc.cwnd_bytes();
  t += from_millis(40);
  cc.on_ack(make_ack(t, from_millis(40), kMss));
  EXPECT_LE(cc.cwnd_bytes(), w);  // shrinking or holding, never growing
}

TEST(VegasTest, GrowsWhenPathIsEmpty) {
  VegasCc cc(kMss);
  cc.on_loss(0, 0);  // leave slow start
  const double w0 = cc.cwnd_bytes();
  sim::Time t = 0;
  for (int i = 0; i < 20; ++i) {
    t += from_millis(25);
    cc.on_ack(make_ack(t, from_millis(20), kMss));  // rtt == base: diff ~ 0
  }
  EXPECT_GT(cc.cwnd_bytes(), w0);
}

TEST(VenoTest, RandomLossBacksOffGently) {
  VenoCc congestive(kMss), random_loss(kMss);
  // random_loss: RTT stays at base -> diff ~ 0 -> 0.8x on loss.
  sim::Time t = 0;
  for (int i = 0; i < 100; ++i) {
    t += from_millis(20);
    random_loss.on_ack(make_ack(t, from_millis(20), kMss));
    congestive.on_ack(make_ack(t, i < 5 ? from_millis(20) : from_millis(60),
                               kMss));
  }
  const double wr = random_loss.cwnd_bytes();
  const double wc = congestive.cwnd_bytes();
  random_loss.on_loss(t, 0);
  congestive.on_loss(t, 0);
  EXPECT_NEAR(random_loss.cwnd_bytes(), 0.8 * wr, 2.0);
  EXPECT_NEAR(congestive.cwnd_bytes(), 0.5 * wc, 2.0);
}

TEST(BbrTest, LearnsBottleneckBandwidth) {
  BbrCc cc(kMss);
  sim::Time t = 0;
  std::uint64_t delivered = 0;
  for (int i = 0; i < 200; ++i) {
    t += from_millis(10);
    delivered += kMss;
    cc.on_ack(make_ack(t, from_millis(20), kMss, delivered, 500e6,
                       20 * kMss));
  }
  EXPECT_NEAR(cc.btl_bw_bps(), 500e6, 1e6);
  // cwnd ~ gain * BDP = 2 * 500e6/8 * 0.02 = 2.5 MB.
  EXPECT_GT(cc.cwnd_bytes(), 1.5e6);
  EXPECT_GT(cc.pacing_rate_bps(), 300e6);
}

TEST(BbrTest, ExitsStartupOnPlateau) {
  BbrCc cc(kMss);
  sim::Time t = 0;
  std::uint64_t delivered = 0;
  EXPECT_TRUE(cc.in_slow_start());
  // Constant rate samples -> plateau -> drain -> probe_bw.
  for (int i = 0; i < 400; ++i) {
    t += from_millis(10);
    delivered += kMss;
    cc.on_ack(make_ack(t, from_millis(20), kMss, delivered, 100e6, kMss));
  }
  EXPECT_FALSE(cc.in_slow_start());
}

TEST(BbrTest, LossDoesNotShrinkWindow) {
  BbrCc cc(kMss);
  sim::Time t = 0;
  std::uint64_t delivered = 0;
  for (int i = 0; i < 100; ++i) {
    t += from_millis(10);
    delivered += kMss;
    cc.on_ack(make_ack(t, from_millis(20), kMss, delivered, 300e6, kMss));
  }
  const double w = cc.cwnd_bytes();
  cc.on_loss(t, 10 * kMss);
  EXPECT_DOUBLE_EQ(cc.cwnd_bytes(), w);
}

TEST(RttEstimatorTest, Rfc6298Basics) {
  RttEstimator est;
  EXPECT_FALSE(est.has_sample());
  EXPECT_EQ(est.rto(), kSecond);  // initial RTO
  est.add_sample(0, from_millis(100));
  EXPECT_EQ(est.smoothed_rtt(), from_millis(100));
  EXPECT_EQ(est.rtt_var(), from_millis(50));
  // RTO = srtt + 4*var = 300 ms.
  EXPECT_EQ(est.rto(), from_millis(300));
  est.add_sample(0, from_millis(100));
  EXPECT_EQ(est.smoothed_rtt(), from_millis(100));
  EXPECT_LT(est.rtt_var(), from_millis(50));
}

TEST(RttEstimatorTest, MinRttWindowExpires) {
  RttEstimator est(from_millis(200), kSecond, /*min_window=*/kSecond);
  est.add_sample(0, from_millis(10));
  est.add_sample(from_millis(100), from_millis(30));
  EXPECT_EQ(est.min_rtt(), from_millis(10));
  // The 10 ms sample ages out of the window.
  est.add_sample(2 * kSecond, from_millis(30));
  EXPECT_EQ(est.min_rtt(), from_millis(30));
}

TEST(RttEstimatorTest, BackoffDoublesRto) {
  RttEstimator est;
  est.add_sample(0, from_millis(100));
  const sim::Time rto = est.rto();
  est.backoff();
  EXPECT_EQ(est.rto(), 2 * rto);
  est.backoff();
  EXPECT_EQ(est.rto(), 4 * rto);
  est.reset_backoff();
  EXPECT_EQ(est.rto(), rto);
}

TEST(RttEstimatorTest, MinRtoFloor) {
  RttEstimator est(from_millis(200));
  est.add_sample(0, from_millis(5));
  EXPECT_GE(est.rto(), from_millis(200));
}

// --- End-to-end sessions over a simulated path ---

struct Session {
  Session(sim::Simulator* simr, std::vector<net::Link::Config> hops,
          CcAlgo algo)
      : path(simr, std::move(hops)) {
    TcpConfig cfg;
    cfg.algo = algo;
    sender = std::make_unique<TcpSender>(simr, cfg, 1, [this](net::Packet p) {
      path.send_a_to_b(std::move(p));
    });
    receiver = std::make_unique<TcpReceiver>(
        simr, cfg, 1, [this](net::Packet p) { path.send_b_to_a(std::move(p)); });
    path.attach_b(receiver.get());
    path.attach_a(sender.get());
  }

  net::PathNetwork path;
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;
};

std::vector<net::Link::Config> clean_path(double rate_bps, sim::Time one_way,
                                          std::uint64_t queue_bytes) {
  std::vector<net::Link::Config> hops(2);
  hops[0].rate_bps = rate_bps;
  hops[0].prop_delay = one_way / 2;
  hops[0].queue_bytes = queue_bytes;
  hops[1].rate_bps = 10e9;
  hops[1].prop_delay = one_way / 2;
  hops[1].queue_bytes = 8 << 20;
  return hops;
}

class CcE2eTest : public ::testing::TestWithParam<CcAlgo> {};

TEST_P(CcE2eTest, BulkTransferAchievesDecentUtilization) {
  sim::Simulator simr;
  // 100 Mbps, 20 ms RTT, BDP-sized buffer: every algorithm should manage
  // >=50% on a clean path (delay-based ones sit lower but not at zero).
  Session s(&simr, clean_path(100e6, from_millis(20), 250 * 1500), GetParam());
  s.sender->start_bulk();
  simr.run_until(15 * kSecond);
  const double goodput =
      s.receiver->mean_goodput_bps(5 * kSecond, 15 * kSecond);
  EXPECT_GT(goodput, 50e6) << to_string(GetParam());
  EXPECT_LE(goodput, 100e6 * 1.01) << to_string(GetParam());
}

TEST_P(CcE2eTest, NoLingeringDataOnAppLimitedTransfer) {
  sim::Simulator simr;
  Session s(&simr, clean_path(50e6, from_millis(30), 100 * 1500), GetParam());
  bool completed = false;
  s.sender->send_bytes(500 * 1000, [&] { completed = true; });
  simr.run_until(30 * kSecond);
  EXPECT_TRUE(completed) << to_string(GetParam());
  EXPECT_EQ(s.receiver->bytes_received(), 500 * 1000u);
  EXPECT_EQ(s.sender->bytes_in_flight(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Algos, CcE2eTest,
                         ::testing::Values(CcAlgo::kReno, CcAlgo::kCubic,
                                           CcAlgo::kVegas, CcAlgo::kVeno,
                                           CcAlgo::kBbr),
                         [](const auto& info) { return to_string(info.param); });

TEST(TcpE2eTest, RecoversFromBurstLoss) {
  sim::Simulator simr;
  // Tiny bottleneck buffer forces drops during slow start.
  Session s(&simr, clean_path(50e6, from_millis(40), 20 * 1500), CcAlgo::kCubic);
  s.sender->start_bulk();
  simr.run_until(10 * kSecond);
  EXPECT_GT(s.sender->retransmissions(), 0u);
  // Despite losses the flow keeps moving (the buffer is 12% of BDP, so
  // utilisation is poor by design here).
  EXPECT_GT(s.receiver->mean_goodput_bps(5 * kSecond, 10 * kSecond), 5e6);
}

TEST(TcpE2eTest, ReceiverReassemblesOutOfOrderData) {
  sim::Simulator simr;
  Session s(&simr, clean_path(20e6, from_millis(10), 8 * 1500), CcAlgo::kReno);
  bool completed = false;
  s.sender->send_bytes(2'000'000, [&] { completed = true; });
  simr.run_until(60 * kSecond);
  EXPECT_TRUE(completed);
  EXPECT_EQ(s.receiver->bytes_received(), 2'000'000u);
}

TEST(TcpE2eTest, CwndLogRecordsEvolution) {
  sim::Simulator simr;
  Session s(&simr, clean_path(100e6, from_millis(20), 100 * 1500),
            CcAlgo::kCubic);
  s.sender->start_bulk();
  simr.run_until(5 * kSecond);
  EXPECT_GT(s.sender->cwnd_log().size(), 100u);
}

TEST(TcpE2eTest, RtoFiresWhenPathGoesDark) {
  sim::Simulator simr;
  bool blocked = false;
  std::vector<net::Link::Config> hops = clean_path(50e6, from_millis(20),
                                                   100 * 1500);
  hops[0].blocked_fn = [&] { return blocked; };
  Session s(&simr, std::move(hops), CcAlgo::kCubic);
  s.sender->start_bulk();
  simr.run_until(3 * kSecond);
  const auto timeouts_before = s.sender->timeouts();
  blocked = true;  // 2 s outage, longer than any plausible RTO
  simr.run_until(5 * kSecond);
  blocked = false;
  simr.run_until(8 * kSecond);
  EXPECT_GT(s.sender->timeouts(), timeouts_before);
  // Traffic resumes after the outage.
  EXPECT_GT(s.receiver->mean_goodput_bps(6 * kSecond, 8 * kSecond), 5e6);
}

// --- ECN (RFC 3168): controller response and end-to-end negotiation ---

TEST(EcnTest, OnEcnShrinksEveryController) {
  for (const CcAlgo a : {CcAlgo::kReno, CcAlgo::kCubic, CcAlgo::kVegas,
                         CcAlgo::kVeno, CcAlgo::kBbr}) {
    const auto cc = make_congestion_control(a, kMss);
    sim::Time t = 0;
    std::uint64_t delivered = 0;
    for (int i = 0; i < 200; ++i) {
      t += from_millis(10);
      delivered += kMss;
      cc->on_ack(make_ack(t, from_millis(20), kMss, delivered, 200e6,
                          20 * kMss));
    }
    const double before = cc->cwnd_bytes();
    cc->on_ecn(t, 10 * kMss);
    EXPECT_LT(cc->cwnd_bytes(), before) << to_string(a);
    // ECN is a congestion signal, not a disaster: nothing collapses to
    // the one-MSS timeout window.
    EXPECT_GE(cc->cwnd_bytes(), kMss) << to_string(a);
  }
}

TEST(EcnTest, BbrCapExpiresAfterRtprop) {
  BbrCc cc(kMss);
  sim::Time t = 0;
  std::uint64_t delivered = 0;
  for (int i = 0; i < 200; ++i) {
    t += from_millis(10);
    delivered += kMss;
    cc.on_ack(make_ack(t, from_millis(20), kMss, delivered, 300e6,
                       20 * kMss));
  }
  const double before = cc.cwnd_bytes();
  cc.on_ecn(t, 10 * kMss);
  EXPECT_NEAR(cc.cwnd_bytes(), before / 2, kMss);
  // The cap lifts once rt_prop has elapsed: the model window returns.
  t += kSecond;
  delivered += kMss;
  cc.on_ack(make_ack(t, from_millis(20), kMss, delivered, 300e6, 20 * kMss));
  EXPECT_GT(cc.cwnd_bytes(), 0.9 * before);
}

struct EcnSession {
  EcnSession(sim::Simulator* simr, std::vector<net::Link::Config> hops,
             CcAlgo algo, bool ecn)
      : path(simr, std::move(hops)) {
    TcpConfig cfg;
    cfg.algo = algo;
    cfg.ecn = ecn;
    sender = std::make_unique<TcpSender>(simr, cfg, 1, [this](net::Packet p) {
      path.send_a_to_b(std::move(p));
    });
    receiver = std::make_unique<TcpReceiver>(
        simr, cfg, 1, [this](net::Packet p) { path.send_b_to_a(std::move(p)); });
    path.attach_b(receiver.get());
    path.attach_a(sender.get());
  }

  net::PathNetwork path;
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;
};

std::vector<net::Link::Config> codel_ecn_path() {
  // 50 Mbps bottleneck under CoDel+ECN with a deep physical buffer: any
  // standing queue becomes CE marks, never tail drops.
  auto hops = clean_path(50e6, from_millis(20), 4 << 20);
  hops[0].qdisc.kind = net::QdiscKind::kCoDel;
  hops[0].qdisc.ecn = true;
  return hops;
}

TEST(EcnTest, FullLoopCeToEceToBackoff) {
  sim::Simulator simr;
  EcnSession s(&simr, codel_ecn_path(), CcAlgo::kCubic, /*ecn=*/true);
  s.sender->start_bulk();
  simr.run_until(10 * kSecond);
  // The bottleneck marked, the receiver echoed, the sender backed off.
  EXPECT_GT(s.path.forward_link(0).marked_packets(), 0u);
  EXPECT_GT(s.receiver->ce_marks_seen(), 0u);
  EXPECT_GE(s.sender->ecn_responses(), 1u);
  // Once-per-RTT gate: far fewer backoffs than echoed marks.
  EXPECT_LT(s.sender->ecn_responses(), s.receiver->ce_marks_seen());
  // Marking replaced dropping: the deep buffer never overflowed, so the
  // flow ran loss-free while still yielding to congestion.
  EXPECT_EQ(s.sender->retransmissions(), 0u);
  EXPECT_GT(s.receiver->mean_goodput_bps(3 * kSecond, 10 * kSecond), 30e6);
}

TEST(EcnTest, NonEcnFlowIsDroppedNotMarked) {
  sim::Simulator simr;
  // Same CoDel+ECN bottleneck, but the flow never negotiates ECN: its
  // packets are not ECT, so the AQM falls back to dropping.
  EcnSession s(&simr, codel_ecn_path(), CcAlgo::kCubic, /*ecn=*/false);
  s.sender->start_bulk();
  simr.run_until(10 * kSecond);
  EXPECT_EQ(s.path.forward_link(0).marked_packets(), 0u);
  EXPECT_EQ(s.receiver->ce_marks_seen(), 0u);
  EXPECT_EQ(s.sender->ecn_responses(), 0u);
  EXPECT_GT(s.sender->retransmissions(), 0u);  // CoDel drops instead
}

TEST(TcpE2eTest, BbrBeatsCubicUnderRandomLoss) {
  // The paper's headline TCP result in miniature: with non-congestion
  // (bursty cross-traffic-like) loss, BBR sustains far higher utilisation
  // than Cubic. Approximate the loss with a tiny shared buffer + a second
  // hungry flow... simplest deterministic stand-in: drop-prone queue.
  const auto run = [&](CcAlgo algo) {
    sim::Simulator simr;
    auto hops = clean_path(200e6, from_millis(30), 12 * 1500);
    Session s(&simr, std::move(hops), algo);
    s.sender->start_bulk();
    simr.run_until(20 * kSecond);
    return s.receiver->mean_goodput_bps(5 * kSecond, 20 * kSecond);
  };
  const double bbr = run(CcAlgo::kBbr);
  const double cubic = run(CcAlgo::kCubic);
  EXPECT_GT(bbr, cubic);
}

}  // namespace
}  // namespace fiveg::tcp

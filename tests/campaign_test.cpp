// Tests for campaign manifests (core/campaign.h): parsing and validation
// errors, cross-product cell expansion, per-cell base-seed derivation
// (distinct across cells, stable across runs), unit enumeration and the
// shard partition (disjoint, order-preserving, union == full campaign).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/campaign.h"

namespace fiveg::core {
namespace {

CampaignManifest parse_or_die(const std::string& text) {
  CampaignManifest m;
  std::string error;
  EXPECT_TRUE(parse_manifest(text, &m, &error)) << error;
  return m;
}

std::string parse_error(const std::string& text) {
  CampaignManifest m;
  std::string error;
  EXPECT_FALSE(parse_manifest(text, &m, &error));
  return error;
}

TEST(CampaignTest, MinimalManifestGetsDefaultAxes) {
  const CampaignManifest m =
      parse_or_die(R"({"schema":"fiveg-campaign/v1","name":"mini"})");
  EXPECT_EQ(m.name, "mini");
  EXPECT_FALSE(m.smoke);
  EXPECT_EQ(m.seeds, std::vector<std::uint64_t>{42});
  EXPECT_EQ(m.qdiscs, std::vector<std::string>{"droptail"});
  EXPECT_EQ(m.faults, std::vector<std::string>{""});
  ASSERT_EQ(m.cells().size(), 1u);
}

TEST(CampaignTest, CellsAreTheSeedMajorCrossProduct) {
  const CampaignManifest m = parse_or_die(R"({
    "schema": "fiveg-campaign/v1",
    "name": "grid",
    "smoke": true,
    "axes": {
      "seed": [1, 2],
      "qdisc": ["droptail", "codel"],
      "faults": ["", "plan.json"]
    }
  })");
  const std::vector<CampaignCell> cells = m.cells();
  ASSERT_EQ(cells.size(), 8u);
  // Seed-major, then qdisc, then faults.
  EXPECT_EQ(cells[0].axis_seed, 1u);
  EXPECT_EQ(cells[0].qdisc, "droptail");
  EXPECT_EQ(cells[0].faults, "");
  EXPECT_EQ(cells[1].faults, "plan.json");
  EXPECT_EQ(cells[2].qdisc, "codel");
  EXPECT_EQ(cells[4].axis_seed, 2u);
  EXPECT_EQ(cells[0].tag(), "qdisc=droptail;faults=");
  EXPECT_EQ(cells[3].tag(), "qdisc=codel;faults=plan.json");
}

TEST(CampaignTest, BaseSeedsAreDistinctPerCellAndStable) {
  const CampaignManifest m = parse_or_die(R"({
    "schema": "fiveg-campaign/v1",
    "name": "grid",
    "axes": {
      "seed": [42, 43],
      "qdisc": ["droptail", "codel", "red"],
      "faults": ["", "a.json"]
    }
  })");
  const std::vector<CampaignCell> cells = m.cells();
  std::set<std::uint64_t> seeds;
  for (const CampaignCell& c : cells) {
    // Never the raw axis seed: cells fork, so different-parameter cells
    // sharing an axis seed cannot collide in a (name, seed)-keyed ledger.
    EXPECT_NE(c.base_seed(), c.axis_seed) << c.tag();
    EXPECT_EQ(c.base_seed(), c.base_seed());  // pure function of the cell
    seeds.insert(c.base_seed());
  }
  EXPECT_EQ(seeds.size(), cells.size());  // all distinct
}

TEST(CampaignTest, LabelsAreSortedByKey) {
  CampaignCell cell;
  cell.qdisc = "codel";
  cell.faults = "p.json";
  const auto labels = cell.labels();
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0].first, "faults");
  EXPECT_EQ(labels[0].second, "p.json");
  EXPECT_EQ(labels[1].first, "qdisc");
  EXPECT_EQ(labels[1].second, "codel");
}

TEST(CampaignTest, ParseErrorsNameTheOffence) {
  EXPECT_NE(parse_error("[]").find("object"), std::string::npos);
  EXPECT_NE(parse_error(R"({"name":"x"})").find("schema"),
            std::string::npos);
  // Unknown schema errors quote the offending string.
  EXPECT_NE(
      parse_error(R"({"schema":"fiveg-campaign/v9","name":"x"})")
          .find("fiveg-campaign/v9"),
      std::string::npos);
  EXPECT_NE(parse_error(R"({"schema":"fiveg-campaign/v1"})").find("name"),
            std::string::npos);
  // An invalid qdisc spec is rejected at parse time, not mid-campaign.
  const std::string err = parse_error(
      R"({"schema":"fiveg-campaign/v1","name":"x",
          "axes":{"qdisc":["warpdrive"]}})");
  EXPECT_NE(err.find("warpdrive"), std::string::npos);
  // Seeds must be non-negative integers (numbers or decimal strings).
  EXPECT_FALSE(parse_error(R"({"schema":"fiveg-campaign/v1","name":"x",
                               "axes":{"seed":[1.5]}})")
                   .empty());
  // An explicitly empty axis is an error, not an empty campaign.
  EXPECT_FALSE(parse_error(R"({"schema":"fiveg-campaign/v1","name":"x",
                               "axes":{"seed":[]}})")
                   .empty());
}

TEST(CampaignTest, SeedsAcceptDecimalStringsBeyondDoubleRange) {
  const CampaignManifest m = parse_or_die(R"({
    "schema": "fiveg-campaign/v1",
    "name": "big",
    "axes": {"seed": ["18446744073709551615", 7]}
  })");
  ASSERT_EQ(m.seeds.size(), 2u);
  EXPECT_EQ(m.seeds[0], 18446744073709551615ull);
  EXPECT_EQ(m.seeds[1], 7u);
}

TEST(CampaignTest, UnitsEnumerateCellMajor) {
  const std::vector<std::string> exps = {"fig2", "fig7"};
  const std::vector<CampaignUnit> units = campaign_units(3, exps);
  ASSERT_EQ(units.size(), 6u);
  EXPECT_EQ(units[0].cell, 0u);
  EXPECT_EQ(units[0].experiment, "fig2");
  EXPECT_EQ(units[1].experiment, "fig7");
  EXPECT_EQ(units[2].cell, 1u);
  EXPECT_EQ(units[5].cell, 2u);
  EXPECT_EQ(units[5].experiment, "fig7");
}

TEST(CampaignTest, ShardsPartitionTheUnitList) {
  const std::vector<std::string> exps = {"a", "b", "c"};
  const std::vector<CampaignUnit> units = campaign_units(3, exps);  // 9
  for (const std::size_t n : {1u, 2u, 3u, 4u, 9u, 16u}) {
    std::multiset<std::string> seen;
    std::size_t total = 0;
    for (std::size_t k = 0; k < n; ++k) {
      const std::vector<CampaignUnit> shard = shard_units(units, k, n);
      total += shard.size();
      for (const CampaignUnit& u : shard) {
        seen.insert(std::to_string(u.cell) + ":" + u.experiment);
      }
      // Round-robin balance: shard sizes differ by at most one.
      EXPECT_LE(shard.size(), (units.size() + n - 1) / n);
    }
    EXPECT_EQ(total, units.size()) << "n=" << n;  // disjoint cover
    std::multiset<std::string> want;
    for (const CampaignUnit& u : units) {
      want.insert(std::to_string(u.cell) + ":" + u.experiment);
    }
    EXPECT_EQ(seen, want) << "n=" << n;  // union == full campaign
  }
}

TEST(CampaignTest, ShardSpecParses) {
  std::size_t k = 99;
  std::size_t n = 99;
  EXPECT_TRUE(parse_shard_spec("0/1", &k, &n));
  EXPECT_EQ(k, 0u);
  EXPECT_EQ(n, 1u);
  EXPECT_TRUE(parse_shard_spec("3/8", &k, &n));
  EXPECT_EQ(k, 3u);
  EXPECT_EQ(n, 8u);
  EXPECT_FALSE(parse_shard_spec("8/8", &k, &n));  // k must be < n
  EXPECT_FALSE(parse_shard_spec("1/0", &k, &n));
  EXPECT_FALSE(parse_shard_spec("1", &k, &n));
  EXPECT_FALSE(parse_shard_spec("a/b", &k, &n));
  EXPECT_FALSE(parse_shard_spec("1/2/3", &k, &n));
  EXPECT_FALSE(parse_shard_spec("-1/2", &k, &n));
}

}  // namespace
}  // namespace fiveg::core

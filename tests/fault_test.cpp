// Unit tests for the fault-injection subsystem: plan validation, the JSON
// spec, runtime window toggles, simulator arming, the RRC legality table
// and the invariant checker's own verdicts. (The cross-stack behaviour of
// the injectors lives in chaos_test.cpp, the chaos tier.)
#include <gtest/gtest.h>

#include <stdexcept>

#include "energy/rrc_power_machine.h"
#include "fault/fault.h"
#include "fault/invariants.h"
#include "net/link.h"
#include "net/packet.h"
#include "ran/rrc.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace fiveg::fault {
namespace {

using sim::from_millis;
using sim::kSecond;

TEST(FaultKindTest, Names) {
  EXPECT_EQ(to_string(FaultKind::kSectorOutage), "sector_outage");
  EXPECT_EQ(to_string(FaultKind::kLinkLoss), "link_loss");
  EXPECT_EQ(to_string(FaultKind::kLinkDelay), "link_delay");
  EXPECT_EQ(to_string(FaultKind::kServerStall), "server_stall");
  EXPECT_EQ(to_string(FaultKind::kCoverageHole), "coverage_hole");
}

FaultSpec loss_spec(sim::Time begin, sim::Time end, double loss,
                    std::string link = {}) {
  FaultSpec s;
  s.kind = FaultKind::kLinkLoss;
  s.begin = begin;
  s.end = end;
  s.loss = loss;
  s.link = std::move(link);
  return s;
}

TEST(FaultPlanTest, AddValidatesWindows) {
  FaultPlan plan;
  plan.add(loss_spec(0, kSecond, 0.5));
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(plan.has_kind(FaultKind::kLinkLoss));
  EXPECT_FALSE(plan.has_kind(FaultKind::kServerStall));

  // Empty or inverted windows are rejected.
  EXPECT_THROW(plan.add(loss_spec(kSecond, kSecond, 0.5)),
               std::invalid_argument);
  EXPECT_THROW(plan.add(loss_spec(2 * kSecond, kSecond, 0.5)),
               std::invalid_argument);
  EXPECT_THROW(plan.add(loss_spec(-kSecond, kSecond, 0.5)),
               std::invalid_argument);
  // Loss outside (0, 1].
  EXPECT_THROW(plan.add(loss_spec(0, kSecond, 0.0)), std::invalid_argument);
  EXPECT_THROW(plan.add(loss_spec(0, kSecond, 1.5)), std::invalid_argument);

  FaultSpec outage;
  outage.kind = FaultKind::kSectorOutage;
  outage.begin = 0;
  outage.end = kSecond;
  EXPECT_THROW(plan.add(outage), std::invalid_argument);  // pci missing
  outage.pci = 60;
  plan.add(outage);

  FaultSpec delay;
  delay.kind = FaultKind::kLinkDelay;
  delay.begin = 0;
  delay.end = kSecond;
  EXPECT_THROW(plan.add(delay), std::invalid_argument);  // no extra delay
  delay.extra_delay = from_millis(40);
  plan.add(delay);

  FaultSpec hole;
  hole.kind = FaultKind::kCoverageHole;
  hole.begin = 0;
  hole.end = kSecond;
  EXPECT_THROW(plan.add(hole), std::invalid_argument);  // no offset
  hole.offset_db = 30.0;
  plan.add(hole);

  EXPECT_EQ(plan.specs().size(), 4u);
}

constexpr const char* kFullPlanJson = R"({
  "schema": "fiveg-faults/v1",
  "faults": [
    {"kind": "sector_outage", "begin_s": 30, "end_s": 60, "pci": 62},
    {"kind": "link_loss", "begin_s": 5, "end_s": 8, "link": "wired",
     "loss": 0.3},
    {"kind": "link_delay", "begin_s": 10, "end_s": 12, "extra_delay_ms": 40},
    {"kind": "server_stall", "begin_s": 14, "end_s": 15},
    {"kind": "coverage_hole", "begin_s": 20, "end_s": 40, "offset_db": 30}
  ]
})";

TEST(FaultPlanTest, ParsesTheFullJsonCatalogue) {
  const FaultPlan plan = FaultPlan::parse_json(kFullPlanJson);
  ASSERT_EQ(plan.specs().size(), 5u);
  for (const FaultKind k :
       {FaultKind::kSectorOutage, FaultKind::kLinkLoss, FaultKind::kLinkDelay,
        FaultKind::kServerStall, FaultKind::kCoverageHole}) {
    EXPECT_TRUE(plan.has_kind(k)) << to_string(k);
  }
  const FaultSpec& outage = plan.specs()[0];
  EXPECT_EQ(outage.begin, 30 * kSecond);
  EXPECT_EQ(outage.end, 60 * kSecond);
  EXPECT_EQ(outage.pci, 62);
  const FaultSpec& loss = plan.specs()[1];
  EXPECT_EQ(loss.link, "wired");
  EXPECT_DOUBLE_EQ(loss.loss, 0.3);
  const FaultSpec& delay = plan.specs()[2];
  EXPECT_EQ(delay.extra_delay, from_millis(40));
  EXPECT_TRUE(delay.link.empty());  // empty matches every link
  const FaultSpec& hole = plan.specs()[4];
  EXPECT_DOUBLE_EQ(hole.offset_db, 30.0);
}

TEST(FaultPlanTest, ParseRejectsMalformedDocuments) {
  EXPECT_THROW(FaultPlan::parse_json("not json"), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse_json(R"({"schema": "wrong", "faults": []})"),
               std::runtime_error);
  EXPECT_THROW(FaultPlan::parse_json(R"({"schema": "fiveg-faults/v1"})"),
               std::runtime_error);
  EXPECT_THROW(
      FaultPlan::parse_json(
          R"({"schema": "fiveg-faults/v1",
              "faults": [{"kind": "meteor_strike",
                          "begin_s": 0, "end_s": 1}]})"),
      std::runtime_error);
  // Per-kind validation errors surface through parse as well.
  EXPECT_THROW(
      FaultPlan::parse_json(
          R"({"schema": "fiveg-faults/v1",
              "faults": [{"kind": "link_loss",
                          "begin_s": 2, "end_s": 1, "loss": 0.5}]})"),
      std::runtime_error);
}

TEST(FaultPlanTest, LoadMissingFileThrows) {
  EXPECT_THROW(FaultPlan::load("/nonexistent/faults.json"),
               std::runtime_error);
}

TEST(RuntimeTest, TogglesMaintainAggregates) {
  FaultPlan plan;
  FaultSpec outage;
  outage.kind = FaultKind::kSectorOutage;
  outage.begin = 0;
  outage.end = kSecond;
  outage.pci = 62;
  plan.add(outage);
  plan.add(loss_spec(0, kSecond, 0.5, "ran"));
  plan.add(loss_spec(0, kSecond, 0.5));
  FaultSpec delay;
  delay.kind = FaultKind::kLinkDelay;
  delay.begin = 0;
  delay.end = kSecond;
  delay.extra_delay = from_millis(40);
  delay.link = "wired";
  plan.add(delay);
  FaultSpec stall;
  stall.kind = FaultKind::kServerStall;
  stall.begin = 0;
  stall.end = kSecond;
  plan.add(stall);
  FaultSpec hole;
  hole.kind = FaultKind::kCoverageHole;
  hole.begin = 0;
  hole.end = kSecond;
  hole.offset_db = 30.0;
  plan.add(hole);

  Runtime rt(&plan, 7);
  // Everything starts inactive.
  EXPECT_FALSE(rt.cell_down(62));
  EXPECT_DOUBLE_EQ(rt.link_loss("ran-nr"), 0.0);
  EXPECT_EQ(rt.link_extra_delay("wired-3"), 0);
  EXPECT_FALSE(rt.server_stalled());
  EXPECT_DOUBLE_EQ(rt.coverage_offset_db(), 0.0);

  for (std::size_t i = 0; i < plan.specs().size(); ++i) rt.set_active(i, true);
  EXPECT_TRUE(rt.cell_down(62));
  EXPECT_FALSE(rt.cell_down(63));
  // Both loss windows match "ran-nr" (substring + match-all): independent
  // drops combine as 1 - (1-p)(1-q).
  EXPECT_DOUBLE_EQ(rt.link_loss("ran-nr"), 1.0 - 0.5 * 0.5);
  // Only the match-all window covers "wired-3".
  EXPECT_DOUBLE_EQ(rt.link_loss("wired-3"), 0.5);
  EXPECT_EQ(rt.link_extra_delay("wired-3"), from_millis(40));
  EXPECT_EQ(rt.link_extra_delay("ran-nr"), 0);
  EXPECT_TRUE(rt.server_stalled());
  EXPECT_DOUBLE_EQ(rt.coverage_offset_db(), 30.0);

  rt.deactivate_all();
  EXPECT_FALSE(rt.cell_down(62));
  EXPECT_DOUBLE_EQ(rt.link_loss("ran-nr"), 0.0);
  EXPECT_EQ(rt.link_extra_delay("wired-3"), 0);
  EXPECT_FALSE(rt.server_stalled());
  EXPECT_DOUBLE_EQ(rt.coverage_offset_db(), 0.0);
}

TEST(ScopedFaultsTest, InstallsAndRestores) {
  EXPECT_EQ(runtime(), nullptr);
  FaultPlan plan;
  plan.add(loss_spec(0, kSecond, 0.5));
  Runtime rt(&plan, 1);
  {
    ScopedFaults scope(&rt);
    EXPECT_EQ(runtime(), &rt);
    {
      Runtime inner(&plan, 2);
      ScopedFaults nested(&inner);
      EXPECT_EQ(runtime(), &inner);
    }
    EXPECT_EQ(runtime(), &rt);
  }
  EXPECT_EQ(runtime(), nullptr);
}

TEST(ArmTest, TogglesWindowsAtScheduledTimes) {
  FaultPlan plan;
  plan.add(loss_spec(kSecond, 3 * kSecond, 0.5));
  Runtime rt(&plan, 1);
  ScopedFaults scope(&rt);
  sim::Simulator simr;  // arms the plan at construction
  bool before = true, during = false, after = true;
  simr.schedule_at(from_millis(500), [&] { before = rt.active(0); });
  simr.schedule_at(2 * kSecond, [&] { during = rt.active(0); });
  simr.schedule_at(4 * kSecond, [&] { after = rt.active(0); });
  simr.run();
  EXPECT_FALSE(before);
  EXPECT_TRUE(during);
  EXPECT_FALSE(after);
}

TEST(ArmTest, FreshSimulatorResetsHalfOpenWindows) {
  FaultPlan plan;
  plan.add(loss_spec(kSecond, 100 * kSecond, 0.5));
  Runtime rt(&plan, 1);
  ScopedFaults scope(&rt);
  {
    sim::Simulator simr;
    simr.run_until(2 * kSecond);  // begin fired, end never will
    EXPECT_TRUE(rt.active(0));
  }
  // The next timeline must not inherit the half-open window.
  sim::Simulator simr2;
  bool at_start = true;
  simr2.schedule_at(from_millis(1), [&] { at_start = rt.active(0); });
  simr2.run_until(from_millis(10));
  EXPECT_FALSE(at_start);
}

TEST(ArmTest, InertWithoutRuntime) {
  ASSERT_EQ(runtime(), nullptr);
  sim::Simulator simr;  // must not schedule anything
  simr.run();
  EXPECT_EQ(simr.now(), 0);
}

TEST(RrcLegalityTest, TransitionTable) {
  using ran::RrcState;
  const auto legal = ran::rrc_transition_legal;
  // Self-loops are legal everywhere.
  for (const RrcState s : {RrcState::kIdle, RrcState::kConnectedLte,
                           RrcState::kConnectedNr, RrcState::kInactive}) {
    EXPECT_TRUE(legal(s, s));
  }
  EXPECT_TRUE(legal(RrcState::kIdle, RrcState::kConnectedLte));
  EXPECT_TRUE(legal(RrcState::kConnectedLte, RrcState::kConnectedNr));
  EXPECT_TRUE(legal(RrcState::kConnectedNr, RrcState::kConnectedLte));
  EXPECT_TRUE(legal(RrcState::kConnectedLte, RrcState::kIdle));
  EXPECT_TRUE(legal(RrcState::kConnectedNr, RrcState::kIdle));
  EXPECT_TRUE(legal(RrcState::kConnectedLte, RrcState::kInactive));
  EXPECT_TRUE(legal(RrcState::kInactive, RrcState::kConnectedLte));
  EXPECT_TRUE(legal(RrcState::kInactive, RrcState::kIdle));
  // NSA: the NR leg always rides on an LTE anchor — no direct entry.
  EXPECT_FALSE(legal(RrcState::kIdle, RrcState::kConnectedNr));
  EXPECT_FALSE(legal(RrcState::kInactive, RrcState::kConnectedNr));
}

TEST(RrcLegalityTest, ReestablishTimersBound) {
  const ran::ReestablishTimers t;
  EXPECT_EQ(t.bound(), t.detection + t.procedure);
  EXPECT_GT(t.bound(), 0);
}

TEST(InvariantCheckerTest, CleanLinkPasses) {
  sim::Simulator simr;
  net::Link::Config cfg;
  cfg.rate_bps = 12e6;
  cfg.queue_bytes = 3000;  // force queue drops too
  net::CountingSink sink;
  net::Link link(&simr, cfg, &sink);
  for (int i = 0; i < 10; ++i) {
    net::Packet p;
    p.flow_id = 1;
    p.seq = i;
    p.size_bytes = 1500;
    link.send(p);
  }
  simr.run();
  EXPECT_EQ(link.offered_packets(), 10u);
  EXPECT_EQ(link.fault_dropped_packets(), 0u);  // no runtime installed
  InvariantChecker checker;
  checker.check_link_conservation(link);
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.checks_run(), 0u);
}

TEST(InvariantCheckerTest, RrcViolationsAreReported) {
  using ran::RrcState;
  InvariantChecker checker;
  checker.check_rrc_legality({{0, RrcState::kIdle},
                              {kSecond, RrcState::kConnectedNr}});
  EXPECT_FALSE(checker.ok());
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_NE(checker.report().find("illegal transition"), std::string::npos);

  InvariantChecker backwards;
  backwards.check_rrc_legality({{kSecond, RrcState::kIdle},
                                {0, RrcState::kConnectedLte}});
  EXPECT_FALSE(backwards.ok());

  InvariantChecker empty;
  empty.check_rrc_legality({});
  EXPECT_FALSE(empty.ok());
}

TEST(InvariantCheckerTest, EnergyViolationsAreReported) {
  const energy::RrcPowerMachine machine;
  const energy::EnergyResult good =
      machine.replay(energy::web_browsing_trace(sim::Rng(1)),
                     energy::RadioModel::kNrNsa);
  InvariantChecker checker;
  checker.check_energy(good, machine.config().step);
  EXPECT_TRUE(checker.ok()) << checker.report();

  energy::EnergyResult bad = good;
  bad.radio_joules = -1.0;
  bad.residency_idle = 0;
  bad.residency_promoting = 0;
  bad.residency_connected = 0;
  InvariantChecker broken;
  broken.check_energy(bad, machine.config().step);
  EXPECT_FALSE(broken.ok());
  EXPECT_GE(broken.violations().size(), 2u);  // energy sign + residency sum
}

}  // namespace
}  // namespace fiveg::fault

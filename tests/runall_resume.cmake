# ctest script: a killed campaign must be resumable from its ledger with a
# byte-identical merged JSON document. The kill is simulated by truncating
# the reference run's ledger to half its records plus a torn partial line
# (exactly what a mid-append SIGKILL leaves behind); `--resume` must then
# skip the surviving runs, re-run the rest, and produce the same campaign
# JSON as the uninterrupted reference — at every worker count. A second
# resume from the now-complete ledger must execute nothing and leave the
# ledger file byte-unchanged.
#
# Invoked as:
#   cmake -DRUNALL=<path-to-fiveg_runall> -DWORK_DIR=<dir>
#         -P runall_resume.cmake
if(NOT RUNALL OR NOT WORK_DIR)
  message(FATAL_ERROR "RUNALL and WORK_DIR must be set")
endif()
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

set(common --smoke --seed 42 --timeout 300 --no-timing --quiet)

# Uninterrupted reference campaign (also produces the full ledger).
execute_process(
  COMMAND ${RUNALL} ${common} --jobs 2 --json ${WORK_DIR}/ref.json
          --ledger ${WORK_DIR}/full.jsonl
  OUTPUT_QUIET
  ERROR_VARIABLE ref_err
  RESULT_VARIABLE ref_rc)
if(NOT ref_rc EQUAL 0)
  message(FATAL_ERROR "reference run failed (rc=${ref_rc}): ${ref_err}")
endif()

# Simulate the kill: keep the first half of the records, then a torn
# partial line with no trailing newline. file(STRINGS) would mangle
# records containing semicolons, so the split walks newline offsets on the
# raw content instead.
file(READ ${WORK_DIR}/full.jsonl content)
string(REGEX MATCHALL "\n" newlines "${content}")
list(LENGTH newlines total_lines)
if(total_lines LESS 4)
  message(FATAL_ERROR "ledger has only ${total_lines} records")
endif()
math(EXPR keep "${total_lines} / 2")
string(LENGTH "${content}" content_len)
set(offset 0)
set(kept_lines 0)
while(kept_lines LESS keep)
  string(SUBSTRING "${content}" ${offset} -1 rest)
  string(FIND "${rest}" "\n" nl)
  if(nl EQUAL -1)
    message(FATAL_ERROR "ran out of newlines at line ${kept_lines}")
  endif()
  math(EXPR offset "${offset} + ${nl} + 1")
  math(EXPR kept_lines "${kept_lines} + 1")
endwhile()
string(SUBSTRING "${content}" 0 ${offset} kept)
file(WRITE ${WORK_DIR}/truncated.jsonl
     "${kept}{\"schema\":\"fiveg-ledger/v1\",\"checksum\":\"torn-mid-app")
message(STATUS "kept ${keep} of ${total_lines} records plus a torn line")

# Resume at several worker counts; each gets its own ledger copy (resume
# appends to it) and must merge to the byte-identical reference JSON.
foreach(jobs 1 2 8)
  set(ledger ${WORK_DIR}/resume_j${jobs}.jsonl)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E copy ${WORK_DIR}/truncated.jsonl ${ledger})
  execute_process(
    COMMAND ${RUNALL} ${common} --jobs ${jobs} --resume ${ledger}
            --json ${WORK_DIR}/resume_j${jobs}.json
    OUTPUT_QUIET
    ERROR_VARIABLE resume_err
    RESULT_VARIABLE resume_rc)
  if(NOT resume_rc EQUAL 0)
    message(FATAL_ERROR
            "--resume --jobs ${jobs} failed (rc=${resume_rc}): ${resume_err}")
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/ref.json ${WORK_DIR}/resume_j${jobs}.json
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
            "--resume --jobs ${jobs} JSON differs from the uninterrupted "
            "reference")
  endif()
endforeach()

# Second resume from the grown (now complete) ledger: nothing left to run,
# same JSON out, and the ledger file must not grow.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E copy ${WORK_DIR}/resume_j2.jsonl
          ${WORK_DIR}/second.jsonl)
execute_process(
  COMMAND ${RUNALL} ${common} --jobs 2 --resume ${WORK_DIR}/second.jsonl
          --json ${WORK_DIR}/second.json
  OUTPUT_QUIET
  ERROR_VARIABLE second_err
  RESULT_VARIABLE second_rc)
if(NOT second_rc EQUAL 0)
  message(FATAL_ERROR "second resume failed (rc=${second_rc}): ${second_err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/ref.json ${WORK_DIR}/second.json
  RESULT_VARIABLE second_diff)
if(NOT second_diff EQUAL 0)
  message(FATAL_ERROR "second resume JSON differs from the reference")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/resume_j2.jsonl ${WORK_DIR}/second.jsonl
  RESULT_VARIABLE ledger_diff)
if(NOT ledger_diff EQUAL 0)
  message(FATAL_ERROR
          "second resume modified the ledger (expected zero re-runs)")
endif()

message(STATUS "runall resume: byte-identical JSON at jobs 1/2/8 and on a "
               "no-op second resume")

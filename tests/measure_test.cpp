// Unit tests for the statistics toolkit: Welford stats, CDFs, histograms,
// time series windowing, the KPI logger, and table formatting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "measure/cdf.h"
#include "measure/csv.h"
#include "measure/histogram.h"
#include "measure/json.h"
#include "measure/kpi_logger.h"
#include "measure/plot.h"
#include "measure/stats.h"
#include "measure/table.h"
#include "measure/timeseries.h"

namespace fiveg::measure {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(CdfTest, QuantilesOfUniformSamples) {
  std::vector<double> v;
  for (int i = 0; i <= 100; ++i) v.push_back(i);
  Cdf c(v);
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 100.0);
  EXPECT_NEAR(c.quantile(0.25), 25.0, 1e-9);
}

TEST(CdfTest, FractionBelow) {
  Cdf c({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(c.fraction_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_below(2.0), 0.5);
  EXPECT_DOUBLE_EQ(c.fraction_below(10.0), 1.0);
}

TEST(CdfTest, AddKeepsOrderingLazy) {
  Cdf c;
  c.add(5);
  c.add(1);
  c.add(3);
  EXPECT_DOUBLE_EQ(c.min(), 1.0);
  EXPECT_DOUBLE_EQ(c.max(), 5.0);
  EXPECT_DOUBLE_EQ(c.mean(), 3.0);
}

TEST(CdfTest, EmptyThrowsOnQuantile) {
  Cdf c;
  EXPECT_THROW((void)c.quantile(0.5), std::logic_error);
  EXPECT_DOUBLE_EQ(c.fraction_below(1.0), 0.0);
}

TEST(CdfTest, SingleSampleReturnsItForEveryQuantile) {
  Cdf c;
  c.add(42.5);
  for (const double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(c.quantile(q), 42.5);
  }
  EXPECT_DOUBLE_EQ(c.min(), 42.5);
  EXPECT_DOUBLE_EQ(c.max(), 42.5);
  EXPECT_DOUBLE_EQ(c.mean(), 42.5);
}

TEST(CdfTest, AllEqualSamplesAreDegenerate) {
  Cdf c;
  for (int i = 0; i < 100; ++i) c.add(-7.25);
  for (const double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_DOUBLE_EQ(c.quantile(q), -7.25);
  }
  EXPECT_DOUBLE_EQ(c.fraction_below(-7.25), 1.0);
  EXPECT_DOUBLE_EQ(c.fraction_below(-7.26), 0.0);
}

// The pinned endpoint convention (see cdf.h): p0 == min and p100 == max
// exactly, and out-of-range q clamps to them.
TEST(CdfTest, EndpointConventionPinned) {
  Cdf c({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(c.quantile(-3.0), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(2.0), 5.0);
  // Interior: type-7 position q*(n-1); q=0.375 -> position 1.5 -> 2.5.
  EXPECT_DOUBLE_EQ(c.quantile(0.375), 2.5);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.sum(), 3.5);
}

TEST(RunningStatsTest, AllEqualSamplesHaveZeroVariance) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(11.0);
  EXPECT_EQ(s.count(), 1000u);
  EXPECT_DOUBLE_EQ(s.mean(), 11.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 11.0);
  EXPECT_DOUBLE_EQ(s.max(), 11.0);
}

TEST(RunningStatsTest, MergeEmptyIntoEmpty) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(CdfTest, CurveIsMonotone) {
  Cdf c;
  for (int i = 0; i < 500; ++i) c.add(std::cos(i) * 7);
  const auto pts = c.curve(50);
  ASSERT_EQ(pts.size(), 50u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].first, pts[i - 1].first);
    EXPECT_GE(pts[i].second, pts[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(HistogramTest, PaperTable2Bins) {
  // The exact RSRP bin edges used in the paper's Table 2.
  Histogram h({-140, -105, -90, -80, -70, -60, -40});
  h.add(-100);  // [-105,-90)
  h.add(-85);   // [-90,-80)
  h.add(-85);
  h.add(-50);   // [-60,-40)
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_DOUBLE_EQ(h.fraction(2), 0.5);
  EXPECT_EQ(h.bin_label(1), "[-105, -90)");
}

TEST(HistogramTest, OutOfRangeSaturates) {
  Histogram h({0, 1, 2});
  h.add(-5);
  h.add(10);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(HistogramTest, UniformFactory) {
  Histogram h = Histogram::uniform(0, 10, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  h.add(3.5);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(HistogramTest, RejectsBadEdges) {
  EXPECT_THROW(Histogram({1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram::uniform(5, 5, 3), std::invalid_argument);
}

TEST(TimeSeriesTest, SummarizeWindow) {
  TimeSeries ts;
  ts.add(0, 1.0);
  ts.add(kSecond, 3.0);
  ts.add(2 * kSecond, 5.0);
  const auto all = ts.summarize();
  EXPECT_EQ(all.count(), 3u);
  EXPECT_DOUBLE_EQ(all.mean(), 3.0);
  const auto mid = ts.summarize(kSecond, 2 * kSecond);
  EXPECT_EQ(mid.count(), 2u);
  EXPECT_DOUBLE_EQ(mid.mean(), 4.0);
}

TEST(TimeSeriesTest, WindowSumsBucketCorrectly) {
  TimeSeries ts;
  // Two packets in window 0, one in window 2, none in window 1.
  ts.add(10 * kMillisecond, 100.0);
  ts.add(90 * kMillisecond, 50.0);
  ts.add(250 * kMillisecond, 10.0);
  const auto sums = ts.window_sums(0, 299 * kMillisecond, 100 * kMillisecond);
  ASSERT_EQ(sums.size(), 3u);
  EXPECT_DOUBLE_EQ(sums[0].value, 150.0);
  EXPECT_DOUBLE_EQ(sums[1].value, 0.0);
  EXPECT_DOUBLE_EQ(sums[2].value, 10.0);
}

TEST(TimeSeriesTest, WindowMeans) {
  TimeSeries ts;
  ts.add(0, 2.0);
  ts.add(1, 4.0);
  ts.add(kSecond, 10.0);
  const auto means = ts.window_means(0, kSecond, kSecond);
  ASSERT_EQ(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means[0].value, 3.0);
  EXPECT_DOUBLE_EQ(means[1].value, 10.0);
}

TEST(TimeSeriesTest, WindowRejectsNonPositive) {
  TimeSeries ts;
  EXPECT_THROW((void)ts.window_sums(0, 10, 0), std::invalid_argument);
}

TEST(KpiLoggerTest, SeriesAndEvents) {
  KpiLogger log;
  log.log("rsrp_dbm", 0, -84.0);
  log.log("rsrp_dbm", kSecond, -90.0);
  log.log("sinr_db", 0, 21.0);
  log.log_event(5 * kMillisecond, "A3_TRIGGER", "pci=226 -> pci=44");
  log.log_event(6 * kMillisecond, "NR_RACH_SUCCESS");

  const auto rsrp = log.find("rsrp_dbm");
  ASSERT_TRUE(rsrp.has_value());
  EXPECT_EQ(rsrp->get().size(), 2u);
  EXPECT_FALSE(log.find("unknown").has_value());
  EXPECT_TRUE(log.has("rsrp_dbm"));
  EXPECT_FALSE(log.has("unknown"));
  EXPECT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.events_of_type("A3_TRIGGER").size(), 1u);
  EXPECT_EQ(log.events_of_type("A3_TRIGGER")[0].detail, "pci=226 -> pci=44");
  const auto names = log.kpi_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "rsrp_dbm");
  EXPECT_EQ(names[1], "sinr_db");
}

TEST(KpiLoggerTest, SeriesCapRefusesNewNames) {
  KpiLogger log;
  log.set_series_cap(3);
  EXPECT_EQ(log.series_cap(), 3u);
  log.log("a", 0, 1.0);
  log.log("b", 0, 2.0);
  log.log("c", 0, 3.0);
  // A per-UE naming bug would mint one series per UE; the cap stops it.
  log.log("rsrp_ue_4711", 0, -80.0);
  log.log("rsrp_ue_4712", 0, -81.0);
  EXPECT_EQ(log.kpi_names().size(), 3u);
  EXPECT_FALSE(log.has("rsrp_ue_4711"));
  EXPECT_EQ(log.refused_observations(), 2u);

  // Existing series keep growing at the cap.
  log.log("a", kSecond, 4.0);
  ASSERT_TRUE(log.find("a").has_value());
  EXPECT_EQ(log.find("a")->get().size(), 2u);
  EXPECT_EQ(log.refused_observations(), 2u);

  // Raising the cap admits new names again.
  log.set_series_cap(4);
  log.log("d", 0, 5.0);
  EXPECT_TRUE(log.has("d"));
  EXPECT_EQ(log.kpi_names().size(), 4u);
}

TEST(TextTableTest, FormatsAlignedColumns) {
  TextTable t("Demo", {"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("== Demo =="), std::string::npos);
  EXPECT_NE(s.find("alpha | 1"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable t("T", {"a", "b", "c"});
  t.add_row({"x"});
  std::ostringstream os;
  t.print(os);  // must not crash on missing cells
  EXPECT_EQ(t.rows(), 1u);
}

TEST(CsvTest, EscapingRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, SeriesRoundTrip) {
  TimeSeries ts;
  ts.add(kSecond, 1.5);
  ts.add(2 * kSecond, -3.0);
  std::ostringstream os;
  write_csv(os, "rsrp,dbm", ts);
  EXPECT_EQ(os.str(), "t_seconds,\"rsrp,dbm\"\n1,1.5\n2,-3\n");
}

TEST(CsvTest, KpiLoggerLongFormatAndEvents) {
  KpiLogger log;
  log.log("a", 0, 1.0);
  log.log("b", kSecond, 2.0);
  log.log_event(kSecond, "HO_START", "5G-5G 72 -> 44");
  std::ostringstream os;
  write_csv(os, log);
  EXPECT_NE(os.str().find("a,0,1"), std::string::npos);
  EXPECT_NE(os.str().find("b,1,2"), std::string::npos);
  std::ostringstream ev;
  write_events_csv(ev, log);
  EXPECT_NE(ev.str().find("1,HO_START,5G-5G 72 -> 44"), std::string::npos);
}

TEST(PlotTest, LineChartRendersPointsAndAxes) {
  std::vector<TimePoint> pts;
  for (int i = 0; i <= 10; ++i) pts.push_back({i * kSecond, i * 2.0});
  PlotOptions o;
  o.title = "ramp";
  o.x_label = "s";
  const std::string s = line_chart(pts, o);
  EXPECT_NE(s.find("ramp"), std::string::npos);
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find("20"), std::string::npos);  // y max label
  EXPECT_NE(s.find("(s)"), std::string::npos);
  // Height rows + title + axis rows.
  EXPECT_GE(std::count(s.begin(), s.end(), '\n'),
            static_cast<long>(o.height));
}

TEST(PlotTest, TwoSeriesUseDistinctMarks) {
  std::vector<TimePoint> a{{0, 0.0}, {kSecond, 1.0}};
  std::vector<TimePoint> b{{0, 1.0}, {kSecond, 0.0}};
  const std::string s = line_chart2(a, b, PlotOptions{});
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find('o'), std::string::npos);
}

TEST(PlotTest, EmptyAndFlatInputsAreSafe) {
  EXPECT_FALSE(line_chart({}, PlotOptions{}).empty());
  std::vector<TimePoint> flat{{0, 5.0}, {kSecond, 5.0}};
  EXPECT_NE(line_chart(flat, PlotOptions{}).find('*'), std::string::npos);
  Cdf empty;
  EXPECT_FALSE(cdf_chart(empty, PlotOptions{}).empty());
}

TEST(PlotTest, CdfChartMonotone) {
  Cdf c;
  for (int i = 0; i < 200; ++i) c.add(i % 37);
  const std::string s = cdf_chart(c, PlotOptions{});
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find("CDF"), std::string::npos);
}

TEST(TextTableTest, NumberFormatters) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::pm(5.0, 0.5, 1), "5.0 +/- 0.5");
  EXPECT_EQ(TextTable::pct(0.0807), "8.07%");
}

// Property sweep: CDF quantile and fraction_below are inverse-consistent
// across distributions.
class CdfPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CdfPropertyTest, QuantileFractionRoundTrip) {
  Cdf c;
  const int seed = GetParam();
  for (int i = 0; i < 1000; ++i) {
    c.add(std::fmod(std::abs(std::sin(i * seed + 0.5)) * 97.0, 13.0));
  }
  for (double q = 0.05; q < 1.0; q += 0.05) {
    const double x = c.quantile(q);
    // fraction_below(quantile(q)) >= q (up to one sample of slack).
    EXPECT_GE(c.fraction_below(x) + 1.0 / 1000, q);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdfPropertyTest, ::testing::Values(1, 2, 3, 5, 8));

TEST(JsonWriterTest, EscapesStrings) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonWriter::escape("line\nbreak\ttab\r"),
            "line\\nbreak\\ttab\\r");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
  // UTF-8 payload bytes pass through.
  EXPECT_EQ(JsonWriter::escape("±5 dBm"), "±5 dBm");
}

TEST(JsonWriterTest, NumbersAreByteStable) {
  EXPECT_EQ(JsonWriter::number(42), "42");
  EXPECT_EQ(JsonWriter::number(-3), "-3");
  EXPECT_EQ(JsonWriter::number(0), "0");
  EXPECT_EQ(JsonWriter::number(1.5), "1.5");
  // Non-finite values have no JSON spelling; they render as null.
  EXPECT_EQ(JsonWriter::number(std::nan("")), "null");
  EXPECT_EQ(JsonWriter::number(HUGE_VAL), "null");
  // Round-trip: parse the rendering back and compare.
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::stod(JsonWriter::number(v)), v);
}

TEST(JsonWriterTest, NestedStructureRendersExactly) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("name", "fig7");
  w.kv("ok", true);
  w.key("points");
  w.begin_array();
  w.begin_array();
  w.value(1.5);
  w.value(2);
  w.end_array();
  w.end_array();
  w.key("empty");
  w.begin_object();
  w.end_object();
  w.end_object();
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"name\": \"fig7\",\n"
            "  \"ok\": true,\n"
            "  \"points\": [\n"
            "    [\n"
            "      1.5,\n"
            "      2\n"
            "    ]\n"
            "  ],\n"
            "  \"empty\": {}\n"
            "}");
}

}  // namespace
}  // namespace fiveg::measure

// Tests for the energy module: power model calibration properties, the
// trace-driven RRC/DRX replay machine, policies and pwrStrip composition.
#include <gtest/gtest.h>

#include "energy/policies.h"
#include "energy/power_model.h"
#include "energy/power_strip.h"
#include "energy/rrc_power_machine.h"
#include "energy/traffic_trace.h"

namespace fiveg::energy {
namespace {

using sim::from_millis;
using sim::kSecond;

TEST(PowerModelTest, NrDrawsTwoToThreeTimesLte) {
  const RadioPower lte = lte_radio_power();
  const RadioPower nr = nr_radio_power();
  const double lte_active = lte.active_mw(130);
  const double nr_active = nr.active_mw(880);
  EXPECT_GT(nr_active / lte_active, 1.8);
  EXPECT_LT(nr_active / lte_active, 3.0);
  EXPECT_GT(nr.tail_awake_mw, lte.tail_awake_mw);
}

TEST(PowerModelTest, SaturatedEnergyPerBitRatioNearFour) {
  // Fig. 22's core claim: at saturation 5G moves a bit for ~1/4 the energy.
  const double lte_per_bit = lte_radio_power().active_mw(130) / 130e6;
  const double nr_per_bit = nr_radio_power().active_mw(880) / 880e6;
  EXPECT_NEAR(lte_per_bit / nr_per_bit, 4.0, 0.7);
}

TEST(PowerModelTest, RadioDrawOrdering) {
  const RadioPower p = nr_radio_power();
  EXPECT_GT(radio_draw_mw(p, ran::RadioActivity::kTransfer, 880),
            radio_draw_mw(p, ran::RadioActivity::kTailAwake, 0));
  EXPECT_GT(radio_draw_mw(p, ran::RadioActivity::kTailAwake, 0),
            radio_draw_mw(p, ran::RadioActivity::kTailSleep, 0));
  EXPECT_GT(radio_draw_mw(p, ran::RadioActivity::kPagingAwake, 0),
            radio_draw_mw(p, ran::RadioActivity::kPagingSleep, 0));
}

TEST(PowerModelTest, DailyAppsExist) {
  int n = 0;
  const AppProfile* apps = daily_apps(&n);
  ASSERT_EQ(n, 4);
  EXPECT_STREQ(apps[0].name, "Browser");
  EXPECT_STREQ(apps[3].name, "Download");
  EXPECT_GT(apps[3].dl_demand_bps, 100e6);  // saturating
}

TEST(TrafficTraceTest, Generators) {
  const TrafficTrace web = web_browsing_trace(sim::Rng(1));
  ASSERT_EQ(web.size(), 10u);
  EXPECT_EQ(web.front().at, 0);
  EXPECT_EQ(web.back().at, 27 * kSecond);
  EXPECT_GT(trace_bytes(web), 5'000'000u);

  const TrafficTrace video = video_telephony_trace(sim::Rng(2));
  // 60 s x 30 fps (integer nanosecond frame spacing leaves one straggler).
  EXPECT_GE(video.size(), 1800u);
  EXPECT_LE(video.size(), 1801u);
  // ~45 Mbps x 60 s / 8 = ~337 MB.
  EXPECT_NEAR(static_cast<double>(trace_bytes(video)), 337e6, 60e6);

  const TrafficTrace file = file_transfer_trace(123);
  ASSERT_EQ(file.size(), 1u);
  EXPECT_EQ(trace_bytes(file), 123u);
}

TEST(PoliciesTest, PromotionDelays) {
  const sim::Time lte_pro = from_millis(623);
  const sim::Time nr_pro = from_millis(1681);
  EXPECT_EQ(promotion_delay(RadioModel::kLteOnly, lte_pro, nr_pro), lte_pro);
  EXPECT_EQ(promotion_delay(RadioModel::kNrNsa, lte_pro, nr_pro), nr_pro);
  // The Oracle schedules sleep, not signalling: it still promotes.
  EXPECT_EQ(promotion_delay(RadioModel::kNrOracle, lte_pro, nr_pro), nr_pro);
  EXPECT_EQ(promotion_delay(RadioModel::kDynamicSwitch, lte_pro, nr_pro),
            lte_pro);
  EXPECT_EQ(initial_rat(RadioModel::kNrNsa), ServingRat::kNr);
  EXPECT_EQ(initial_rat(RadioModel::kDynamicSwitch), ServingRat::kLte);
  EXPECT_EQ(to_string(RadioModel::kDynamicSwitch), "Dyn. switch");
}

class ReplayTest : public ::testing::Test {
 protected:
  RrcPowerMachine machine_;
};

TEST_F(ReplayTest, EmptyTraceIsFree) {
  const EnergyResult r = machine_.replay({}, RadioModel::kNrNsa);
  EXPECT_DOUBLE_EQ(r.radio_joules, 0.0);
}

TEST_F(ReplayTest, ServesAllBytes) {
  const TrafficTrace t = file_transfer_trace(100'000'000);  // 100 MB
  for (const RadioModel m :
       {RadioModel::kLteOnly, RadioModel::kNrNsa, RadioModel::kNrOracle,
        RadioModel::kDynamicSwitch}) {
    const EnergyResult r = machine_.replay(t, m);
    EXPECT_NEAR(r.served_bits, 8e8, 2e6) << to_string(m);
    EXPECT_GT(r.completion, 0) << to_string(m);
    EXPECT_GT(r.radio_joules, 0.0) << to_string(m);
  }
}

TEST_F(ReplayTest, LteTakesLongerOnBulk) {
  const TrafficTrace t = file_transfer_trace(500'000'000);
  const EnergyResult lte = machine_.replay(t, RadioModel::kLteOnly);
  const EnergyResult nsa = machine_.replay(t, RadioModel::kNrNsa);
  // 880 vs 130 Mbps: ~6.8x longer on LTE.
  EXPECT_GT(sim::to_seconds(lte.completion), 5.0 * sim::to_seconds(nsa.completion));
  // And despite the lower power, more total energy (Table 4's File row).
  EXPECT_GT(lte.radio_joules, 1.5 * nsa.radio_joules);
}

TEST_F(ReplayTest, NsaWastesEnergyOnShortBursts) {
  // Table 4's Web row: NSA costs more than LTE for tail-dominated traffic.
  const TrafficTrace t = web_browsing_trace(sim::Rng(3));
  const EnergyResult lte = machine_.replay(t, RadioModel::kLteOnly);
  const EnergyResult nsa = machine_.replay(t, RadioModel::kNrNsa);
  EXPECT_GT(nsa.radio_joules, 1.15 * lte.radio_joules);
}

TEST_F(ReplayTest, OracleBeatsNsa) {
  for (const auto& trace :
       {web_browsing_trace(sim::Rng(4)), file_transfer_trace(300'000'000)}) {
    const EnergyResult nsa = machine_.replay(trace, RadioModel::kNrNsa);
    const EnergyResult oracle = machine_.replay(trace, RadioModel::kNrOracle);
    EXPECT_LT(oracle.radio_joules, nsa.radio_joules);
  }
}

TEST_F(ReplayTest, DynamicSwitchMatchesLteOnWeb) {
  // Web bursts drain fast on LTE, so the dynamic policy never escalates
  // and its cost tracks the LTE baseline (85.41 vs 85.44 J in Table 4).
  const TrafficTrace t = web_browsing_trace(sim::Rng(5));
  const EnergyResult lte = machine_.replay(t, RadioModel::kLteOnly);
  const EnergyResult dyn = machine_.replay(t, RadioModel::kDynamicSwitch);
  EXPECT_NEAR(dyn.radio_joules, lte.radio_joules, 0.05 * lte.radio_joules);
}

TEST_F(ReplayTest, DynamicSwitchEscalatesOnBulk) {
  const TrafficTrace t = file_transfer_trace(500'000'000);
  const EnergyResult dyn = machine_.replay(t, RadioModel::kDynamicSwitch);
  const EnergyResult lte = machine_.replay(t, RadioModel::kLteOnly);
  const EnergyResult nsa = machine_.replay(t, RadioModel::kNrNsa);
  // Escalation makes bulk cheap like NSA, not expensive like LTE.
  EXPECT_LT(dyn.radio_joules, 0.6 * lte.radio_joules);
  EXPECT_LT(dyn.radio_joules, 1.3 * nsa.radio_joules);
}

TEST_F(ReplayTest, PowerTraceShowsTailDecay) {
  // Fig. 23's shape: active spike, then tail, then idle floor.
  const TrafficTrace t = file_transfer_trace(50'000'000);
  const EnergyResult r = machine_.replay(t, RadioModel::kNrNsa);
  ASSERT_GT(r.power_trace_mw.size(), 10u);
  const auto& pts = r.power_trace_mw.points();
  const double active_draw = pts.front().value;
  const double final_draw = pts.back().value;
  EXPECT_GT(active_draw, 1500.0);  // promotion/transfer region
  EXPECT_LE(final_draw, 700.0);    // tail floor or idle by the end
}

TEST_F(ReplayTest, NsaTailLongerThanLte) {
  const TrafficTrace t = file_transfer_trace(10'000'000);
  const EnergyResult lte = machine_.replay(t, RadioModel::kLteOnly);
  const EnergyResult nsa = machine_.replay(t, RadioModel::kNrNsa);
  const sim::Time lte_tail = lte.duration - lte.completion;
  const sim::Time nsa_tail = nsa.duration - nsa.completion;
  EXPECT_NEAR(sim::to_seconds(nsa_tail) / sim::to_seconds(lte_tail), 2.0, 0.3);
}

TEST(PwrStripTest, AppSessionBreakdownFig21Shape) {
  RrcPowerMachine machine;
  int n = 0;
  const AppProfile* apps = daily_apps(&n);
  const ComponentPower components;
  for (int i = 0; i < n; ++i) {
    const DeviceEnergyBreakdown nr = measure_app_session(
        machine, RadioModel::kNrNsa, apps[i], components, 60 * kSecond);
    const DeviceEnergyBreakdown lte = measure_app_session(
        machine, RadioModel::kLteOnly, apps[i], components, 60 * kSecond);
    // 5G radio dominates the budget and beats the screen's share.
    EXPECT_GT(nr.radio_j, nr.screen_j) << apps[i].name;
    EXPECT_GT(nr.radio_j, 1.5 * lte.radio_j) << apps[i].name;
    EXPECT_GT(nr.total_j(), lte.total_j()) << apps[i].name;
  }
}

TEST(PwrStripTest, FiveGRadioShareNearPaper) {
  RrcPowerMachine machine;
  int n = 0;
  const AppProfile* apps = daily_apps(&n);
  double share_sum = 0;
  for (int i = 0; i < n; ++i) {
    share_sum += measure_app_session(machine, RadioModel::kNrNsa, apps[i],
                                     ComponentPower{}, 60 * kSecond)
                     .radio_share();
  }
  // Paper: 55.18% average across the four apps.
  EXPECT_NEAR(share_sum / n, 0.5518, 0.12);
}

TEST(PwrStripTest, EnergyPerBitDecreasesWithDuration) {
  RrcPowerMachine machine;
  for (const RadioModel m : {RadioModel::kLteOnly, RadioModel::kNrNsa}) {
    double last = 1e18;
    for (const double secs : {2.0, 10.0, 30.0, 50.0}) {
      const double uj =
          saturated_energy_per_bit_uj(machine, m, sim::from_seconds(secs));
      EXPECT_LT(uj, last) << to_string(m) << " " << secs;
      last = uj;
    }
  }
  // Long-transfer ratio approaches the paper's 4x.
  const double lte50 = saturated_energy_per_bit_uj(
      machine, RadioModel::kLteOnly, 50 * kSecond);
  const double nr50 =
      saturated_energy_per_bit_uj(machine, RadioModel::kNrNsa, 50 * kSecond);
  EXPECT_NEAR(lte50 / nr50, 4.0, 1.0);
}

}  // namespace
}  // namespace fiveg::energy

// Property tests for the city-scale UE core: the batched SoA measurement
// path must be bit-identical to the scalar per-UE path, the row cache must
// reuse only when a recompute would reproduce the row, and the extracted
// a3_step/nsa_step helpers must match their stateful counterparts.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/scenario.h"
#include "fault/fault.h"
#include "geo/campus.h"
#include "geo/route.h"
#include "ran/cell.h"
#include "ran/deployment.h"
#include "ran/measurement_events.h"
#include "ran/ue.h"
#include "ran/ue_cohort.h"
#include "sim/simulator.h"

namespace fiveg::ran {
namespace {

// A batch of UE positions mixing outdoor, indoor and arbitrary points.
std::vector<geo::Point> random_ues(const geo::CampusMap& campus,
                                   sim::Rng& rng, int n) {
  std::vector<geo::Point> ues;
  ues.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ues.push_back(rng.bernoulli(0.5) ? campus.random_point(rng)
                                     : campus.random_outdoor_point(rng));
  }
  return ues;
}

// measure_cells_batch vs. the scalar per-UE measure_cells loop, across
// campus sizes, RATs, indoor/outdoor mixes and repeated sweeps (the
// memo-hit regime). EXPECT_EQ on doubles is exact: any bit difference
// between the paths fails.
TEST(CohortBatchTest, BatchMatchesScalarBitExact) {
  const struct {
    double width_m, height_m, open_frac;
    int rings, n_ue;
  } kCases[] = {
      {500.0, 920.0, 0.2, 1, 40},
      {900.0, 900.0, 0.35, 2, 60},
  };
  int cs = 0;
  for (const auto& c : kCases) {
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(cs++);
    const geo::CampusMap campus = geo::make_city_campus(
        sim::Rng(seed).fork("campus"), c.width_m, c.height_m, c.open_frac);
    ran::CityGridConfig grid;
    grid.rings = c.rings;
    const Deployment dep =
        make_city_deployment(&campus, sim::Rng(seed).fork("dep"), grid);
    sim::Rng rng = sim::Rng(seed).fork("ues");
    const std::vector<geo::Point> ues = random_ues(campus, rng, c.n_ue);

    for (const radio::Rat rat : {radio::Rat::kLte, radio::Rat::kNr}) {
      const std::vector<Cell>& cells = dep.cells(rat);
      const auto plan = radio::SectorPlan::build(
          cells.begin(), cells.end(),
          [](const Cell& cell) -> const radio::TxSite& { return cell.site; });
      const std::size_t n = cells.size();
      std::vector<double> rsrp(ues.size() * n), sinr(ues.size() * n),
          rsrq(ues.size() * n);
      // Visit in a non-trivial order to exercise the order parameter.
      std::vector<std::uint32_t> order(ues.size());
      for (std::size_t u = 0; u < ues.size(); ++u) {
        order[u] = static_cast<std::uint32_t>(ues.size() - 1 - u);
      }
      // Two sweeps: the second runs entirely in the memo-hit regime.
      for (int sweep = 0; sweep < 2; ++sweep) {
        measure_cells_batch(dep.env(), dep.carrier(rat), plan, ues.data(),
                            order.data(), ues.size(), 0.5, rsrp.data(),
                            sinr.data(), rsrq.data());
        for (std::size_t u = 0; u < ues.size(); ++u) {
          const auto scalar =
              measure_cells(dep.env(), dep.carrier(rat), cells, ues[u], 0.5);
          ASSERT_EQ(scalar.size(), n);
          for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(scalar[i].rsrp_dbm, rsrp[u * n + i]);
            EXPECT_EQ(scalar[i].sinr_db, sinr[u * n + i]);
            EXPECT_EQ(scalar[i].rsrq_db, rsrq[u * n + i]);
          }
        }
      }
    }
  }
}

// The scratch-buffer overload must agree with the allocating one.
TEST(CohortBatchTest, ScratchOverloadMatches) {
  const geo::CampusMap campus = geo::make_campus(sim::Rng(7));
  const Deployment dep = make_deployment(&campus, sim::Rng(11));
  sim::Rng rng(13);
  std::vector<CellMeasurement> out;
  for (int i = 0; i < 20; ++i) {
    const geo::Point ue = campus.random_point(rng);
    for (const radio::Rat rat : {radio::Rat::kLte, radio::Rat::kNr}) {
      const auto fresh =
          measure_cells(dep.env(), dep.carrier(rat), dep.cells(rat), ue, 0.5);
      measure_cells(dep.env(), dep.carrier(rat), dep.cells(rat), ue, 0.5,
                    out);
      ASSERT_EQ(fresh.size(), out.size());
      for (std::size_t k = 0; k < fresh.size(); ++k) {
        EXPECT_EQ(fresh[k].cell, out[k].cell);
        EXPECT_EQ(fresh[k].rsrp_dbm, out[k].rsrp_dbm);
        EXPECT_EQ(fresh[k].sinr_db, out[k].sinr_db);
        EXPECT_EQ(fresh[k].rsrq_db, out[k].rsrq_db);
      }
    }
  }
}

class CohortFixture : public ::testing::Test {
 protected:
  CohortFixture()
      : campus_(geo::make_city_campus(sim::Rng(42).fork("campus"), 640.0,
                                      640.0, 0.3)),
        dep_(make_city_deployment(&campus_, sim::Rng(42).fork("dep"),
                                  {.rings = 1})) {}

  UeCohort make_cohort(int n_stationary, int n_movers) {
    CohortConfig cfg;
    cfg.name = "test";
    UeCohort cohort(&dep_, cfg, sim::Rng(42).fork("cohort"));
    sim::Rng rng = sim::Rng(42).fork("place");
    for (int i = 0; i < n_stationary; ++i) {
      cohort.add_stationary(campus_.random_point(rng));
    }
    for (int i = 0; i < n_movers; ++i) {
      cohort.add_route(geo::make_waypoint_route(campus_, rng, 4), 1.4);
    }
    return cohort;
  }

  geo::CampusMap campus_;
  Deployment dep_;
};

// Cohort measurement rows = the scalar Deployment::measure() values,
// bit for bit, sweep after sweep (movers force recomputes, stationaries
// hit the row cache).
TEST_F(CohortFixture, CohortRowsMatchScalarAcrossSweeps) {
  UeCohort cohort = make_cohort(30, 6);
  for (int s = 0; s < 3; ++s) {
    const sim::Time now = s * sim::kSecond;
    cohort.sweep(now);
    for (const radio::Rat rat : {radio::Rat::kLte, radio::Rat::kNr}) {
      const auto& block = cohort.block(rat);
      const std::size_t n = block.n_cells;
      for (std::size_t u = 0; u < cohort.size(); ++u) {
        const auto scalar = dep_.measure(rat, cohort.position(u));
        ASSERT_EQ(scalar.size(), n);
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(scalar[i].rsrp_dbm, block.rsrp_dbm[u * n + i]);
          EXPECT_EQ(scalar[i].sinr_db, block.sinr_db[u * n + i]);
          EXPECT_EQ(scalar[i].rsrq_db, block.rsrq_db[u * n + i]);
        }
      }
    }
  }
}

// Stationary UEs never recompute after the first sweep; the reused rows
// stay bit-identical.
TEST_F(CohortFixture, RowCacheReusesStationaryRows) {
  UeCohort cohort = make_cohort(25, 0);
  cohort.sweep(0);
  const auto first_lte = cohort.block(radio::Rat::kLte).rsrp_dbm;
  EXPECT_EQ(cohort.stats().rows_computed, 2u * 25u);  // both RATs
  EXPECT_EQ(cohort.stats().rows_reused, 0u);
  cohort.sweep(sim::kSecond);
  EXPECT_EQ(cohort.stats().rows_computed, 2u * 25u);
  EXPECT_EQ(cohort.stats().rows_reused, 2u * 25u);
  EXPECT_EQ(cohort.block(radio::Rat::kLte).rsrp_dbm, first_lte);
}

// A coverage-hole window flips the fault offset, which must invalidate
// every cached row (the key includes the offset) and shift RSRP by
// exactly the offset. The deployment is built inside the fault scope so
// its RadioEnvironment sees the runtime, like the Runner's per-experiment
// setup.
TEST(CohortFaultTest, CoverageOffsetInvalidatesRows) {
  fault::FaultPlan plan;
  plan.add({.kind = fault::FaultKind::kCoverageHole,
            .begin = sim::kSecond,
            .end = 100 * sim::kSecond,
            .offset_db = 30.0});
  fault::Runtime rt(&plan, 99);
  fault::ScopedFaults scoped(&rt);
  sim::Simulator simr;
  fault::arm(simr);

  const geo::CampusMap campus = geo::make_city_campus(
      sim::Rng(42).fork("campus"), 640.0, 640.0, 0.3);
  const Deployment dep =
      make_city_deployment(&campus, sim::Rng(42).fork("dep"), {.rings = 1});
  CohortConfig cfg;
  cfg.name = "fault_test";
  UeCohort cohort(&dep, cfg, sim::Rng(42).fork("cohort"));
  sim::Rng place = sim::Rng(42).fork("place");
  for (int i = 0; i < 10; ++i) {
    cohort.add_stationary(campus.random_point(place));
  }
  cohort.sweep(0);
  const auto before = cohort.block(radio::Rat::kNr).rsrp_dbm;
  const std::uint64_t computed_before = cohort.stats().rows_computed;

  simr.run_until(2 * sim::kSecond);  // the hole opens at t=1s
  cohort.sweep(simr.now());
  EXPECT_EQ(cohort.stats().rows_computed, computed_before + 2u * 10u);
  const auto& after = cohort.block(radio::Rat::kNr).rsrp_dbm;
  for (std::size_t k = 0; k < after.size(); ++k) {
    EXPECT_DOUBLE_EQ(after[k], before[k] - 30.0);
  }
}

// Randomized parity: a3_step against the stateful A3Detector.
TEST(CohortStepTest, A3StepMatchesDetector) {
  sim::Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    A3Config cfg;
    cfg.hysteresis_db = rng.uniform(0.5, 5.0);
    cfg.time_to_trigger = sim::from_millis(rng.uniform(50.0, 600.0));
    A3Detector detector(cfg);
    sim::Time since = kA3NotEntering;
    sim::Time at = 0;
    for (int step = 0; step < 300; ++step) {
      at += sim::from_millis(rng.uniform(20.0, 200.0));
      const double serving = rng.uniform(-20.0, -5.0);
      const double neighbor = serving + rng.uniform(-4.0, 8.0);
      const bool fired_detector = detector.update(at, serving, neighbor);
      const bool fired_step = a3_step(cfg, since, at, serving, neighbor);
      ASSERT_EQ(fired_detector, fired_step) << "trial " << trial << " step "
                                            << step;
    }
  }
}

// Randomized parity: nsa_step against the stateful NsaUe controller.
TEST(CohortStepTest, NsaStepMatchesNsaUe) {
  sim::Rng rng(4048);
  for (int trial = 0; trial < 20; ++trial) {
    NsaUe::Config cfg;
    cfg.add_margin_db = rng.uniform(2.0, 8.0);
    cfg.time_to_trigger = sim::from_millis(rng.uniform(50.0, 400.0));
    NsaUe ue(cfg);
    bool attached = false;
    sim::Time add_since = kNsaNotDwelling;
    sim::Time drop_since = kNsaNotDwelling;
    sim::Time at = 0;
    for (int step = 0; step < 300; ++step) {
      at += sim::from_millis(rng.uniform(20.0, 200.0));
      const double rsrp = rng.uniform(-120.0, -90.0);
      const std::optional<HandoffType> from_ue = ue.update(at, rsrp);
      const std::optional<HandoffType> from_step = nsa_step(
          cfg, attached, add_since, drop_since, at, rsrp);
      ASSERT_EQ(from_ue, from_step) << "trial " << trial << " step " << step;
      if (from_ue) {
        ue.complete(*from_ue);
        attached = *from_ue == HandoffType::k4G5G;
      }
    }
  }
}

// End-to-end cohort sanity under the simulator event loop.
TEST_F(CohortFixture, CohortSweepEventLoop) {
  UeCohort cohort = make_cohort(40, 8);
  sim::Simulator simr;
  cohort.start(&simr, 10 * sim::kSecond);
  simr.run_until(10 * sim::kSecond);

  const UeCohort::Stats& st = cohort.stats();
  EXPECT_GE(st.sweeps, 50u);  // 200 ms period over 10 s
  EXPECT_GT(st.rows_reused, 0u);
  EXPECT_GT(st.handoffs, 0u);
  for (std::size_t u = 0; u < cohort.size(); ++u) {
    EXPECT_GE(cohort.serving_cell(radio::Rat::kLte, u), 0);
    if (cohort.nr_attached(u)) {
      EXPECT_EQ(cohort.rrc_state(u), RrcState::kConnectedNr);
    } else {
      EXPECT_EQ(cohort.rrc_state(u), RrcState::kConnectedLte);
    }
  }
}

// City scenario determinism: same seed, same construction, twice.
TEST(CityScenarioTest, DeterministicPerSeed) {
  const core::CityScenario a(77), b(77);
  ASSERT_EQ(a.deployment().cells(radio::Rat::kLte).size(),
            b.deployment().cells(radio::Rat::kLte).size());
  for (std::size_t i = 0; i < a.deployment().cells(radio::Rat::kLte).size();
       ++i) {
    const Cell& ca = a.deployment().cells(radio::Rat::kLte)[i];
    const Cell& cb = b.deployment().cells(radio::Rat::kLte)[i];
    EXPECT_EQ(ca.pci, cb.pci);
    EXPECT_EQ(ca.site.pos.x, cb.site.pos.x);
    EXPECT_EQ(ca.site.pos.y, cb.site.pos.y);
  }
  // 19 sites x 3 sectors on the default rings=2 grid.
  EXPECT_EQ(a.deployment().cells(radio::Rat::kNr).size(), 57u);
  EXPECT_EQ(a.deployment().site_count(radio::Rat::kNr), 19);
}

// The paper campus is exactly the generalized city builder at the legacy
// parameters — the delegation must not move any rng draw.
TEST(CityScenarioTest, PaperCampusUnchangedByGeneralization) {
  const geo::CampusMap legacy = geo::make_campus(sim::Rng(42));
  const geo::CampusMap city =
      geo::make_city_campus(sim::Rng(42), 500.0, 920.0, 0.2);
  ASSERT_EQ(legacy.buildings().size(), city.buildings().size());
  for (std::size_t i = 0; i < legacy.buildings().size(); ++i) {
    EXPECT_EQ(legacy.buildings()[i].footprint.min.x,
              city.buildings()[i].footprint.min.x);
    EXPECT_EQ(legacy.buildings()[i].footprint.max.y,
              city.buildings()[i].footprint.max.y);
  }
}

}  // namespace
}  // namespace fiveg::ran

// The paper's reported numbers, collected in one place so every bench can
// print "paper" next to "measured" and EXPERIMENTS.md can be regenerated
// from a single source of truth.
#pragma once

namespace fiveg::core::paper {

// --- Table 1: basic physical info ---
inline constexpr int kLteCells = 34;
inline constexpr int kNrCells = 13;
inline constexpr double kLteRsrpMean = -84.84, kLteRsrpStd = 8.72;
inline constexpr double kNrRsrpMean = -84.03, kNrRsrpStd = 11.72;

// --- Table 2: RSRP distribution (fractions) ---
// Bins: [-60,-40) [-70,-60) [-80,-70) [-90,-80) [-105,-90) [-140,-105)
inline constexpr double kLteRsrpDist[6] = {0.0013, 0.0556, 0.2360,
                                           0.3920, 0.2974, 0.0177};
inline constexpr double kNrRsrpDist[6] = {0.0095, 0.0815, 0.2688,
                                          0.3937, 0.1659, 0.0807};
inline constexpr double kLte6RsrpDist[6] = {0.0013, 0.0529, 0.2186,
                                            0.3877, 0.3002, 0.0384};

// --- Coverage (Sec. 3.2/3.3) ---
inline constexpr double kNrLinkRangeM = 230.0;
inline constexpr double kLteLinkRangeM = 520.0;
inline constexpr double kNrIndoorDrop = 0.5059;   // indoor bit-rate drop
inline constexpr double kLteIndoorDrop = 0.2038;

// --- Hand-off (Sec. 3.4) ---
inline constexpr double kHoLatency44Ms = 30.10;
inline constexpr double kHoLatency55Ms = 108.40;
inline constexpr double kHoLatency45Ms = 80.23;
inline constexpr double kHoGoodFraction = 0.75;  // HOs with >= 3 dB gain

// --- Throughput (Sec. 4.1) ---
inline constexpr double kNrUdpDayMbps = 880.0, kNrUdpNightMbps = 900.0;
inline constexpr double kLteUdpDayMbps = 130.0, kLteUdpNightMbps = 200.0;
inline constexpr double kNrUdpUlMbps = 130.0, kLteUdpUlDayMbps = 50.0;
inline constexpr double kNrPeakPhyMbps = 1200.98;
// Bandwidth utilisation (throughput / UDP baseline).
inline constexpr double kUtil5G[5] = {0.211, 0.319, 0.121, 0.143, 0.825};
inline constexpr double kUtil4G[5] = {0.529, 0.644, 0.10, 0.12, 0.791};
// order: Reno, Cubic, Vegas, Veno, BBR (4G Vegas/Veno "poor", unquantified)

// --- Fig. 9: UDP loss vs offered fraction of baseline ---
inline constexpr double kLossFractions[5] = {0.2, 0.25, 1.0 / 3, 0.5, 1.0};
inline constexpr double kLoss5GAtHalf = 0.031;  // >3.1% at 1/2 baseline
inline constexpr double kLossRatio5GOver4G = 10.0;

// --- Table 3: estimated buffers (packets of 60 B) ---
inline constexpr double kBuf4G[3] = {468, 10539, 11007};   // RAN, wired, path
inline constexpr double kBuf5G[3] = {2586, 26724, 29310};

// --- Fig. 12: throughput drop across hand-off ---
inline constexpr double kHoDrop55 = 0.7315;
inline constexpr double kHoDrop54 = 0.8304;
inline constexpr double kHoDrop44 = 0.2010;

// --- Latency (Sec. 4.4) ---
inline constexpr double kNrOneWayMs = 21.8;     // mean network latency
inline constexpr double kRttGapMs = 22.3;       // 4G - 5G RTT gap
inline constexpr double kRanRtt5GMs = 2.19, kRanRtt4GMs = 2.6;
inline constexpr double kRttAt2500KmMs = 82.35;

// --- Web (Sec. 5.1) ---
inline constexpr double kPltReduction = 0.05;       // 5G total PLT gain
inline constexpr double kDownloadReduction = 0.2068;  // download-only gain
inline constexpr double kBbrSlowStartS = 6.0;

// --- Video (Sec. 5.2) ---
inline constexpr double kFrameDelay5GMs = 950.0;
inline constexpr double kFrameDelayReqMs = 460.0;
inline constexpr double kProcessingMs = 650.0;
inline constexpr double kTransmissionMs = 66.0;
inline constexpr int kFreezeEvents5p7K = 6;

// --- Energy (Sec. 6) ---
inline constexpr double kRadioShare5G = 0.5518;
inline constexpr double kScreenShare = 0.3073;
inline constexpr double kEnergyPerBitRatio = 4.0;  // 4G / 5G at saturation
inline constexpr double kWebEnergyRatio5GOver4G = 1.67;
// Table 4 (J): {web, video, file} x {LTE, NSA, Oracle, Dyn}.
inline constexpr double kTable4[3][4] = {
    {85.44, 113.94, 95.69, 85.41},
    {227.13, 140.19, 123.03, 133.66},
    {357.67, 157.29, 139.72, 150.80},
};
inline constexpr double kOracleSavings[3] = {0.1602, 0.1224, 0.1117};
inline constexpr double kDynWebSaving = 0.2504;

// --- Sec. 8: DSL comparison ---
inline constexpr double kCpeThroughputMbps = 650.0;
inline constexpr double kPerHouseMbps = 39.0;
inline constexpr double kDslMbps = 24.0;

}  // namespace fiveg::core::paper

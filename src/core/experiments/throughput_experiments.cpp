// Transport experiments: Fig. 7 (UDP baselines + TCP bandwidth
// utilisation), Fig. 8 (cwnd evolution), Fig. 9 (UDP loss vs load),
// Fig. 11 (bursty loss pattern) and Table 3 (in-network buffer estimates).
#include <array>
#include <ostream>
#include <set>

#include "app/iperf.h"
#include "core/experiment.h"
#include "core/paper.h"
#include "core/scenario.h"
#include "measure/plot.h"
#include "measure/table.h"
#include "net/traceroute.h"
#include "tcp/cc_algorithms.h"

namespace fiveg::core {
namespace {

using measure::TextTable;
using sim::kSecond;

constexpr std::array<tcp::CcAlgo, 5> kAlgos = {
    tcp::CcAlgo::kReno, tcp::CcAlgo::kCubic, tcp::CcAlgo::kVegas,
    tcp::CcAlgo::kVeno, tcp::CcAlgo::kBbr};

// One bulk TCP run over a standard testbed; returns steady-state goodput.
double run_tcp_bulk(radio::Rat rat, ran::LoadRegime regime, tcp::CcAlgo algo,
                    std::uint64_t seed, sim::Time duration = 20 * kSecond) {
  sim::Simulator simr;
  TestbedOptions opt;
  opt.rat = rat;
  opt.regime = regime;
  Testbed bed(&simr, opt, seed);
  bed.start_cross_traffic(duration + 5 * kSecond);
  tcp::TcpConfig cfg;
  cfg.algo = algo;
  app::TcpSession session(&simr, &bed.path(), &bed.fanout(), cfg);
  session.sender().start_bulk();
  simr.run_until(duration);
  return session.receiver().mean_goodput_bps(5 * kSecond, duration);
}

// UDP measured throughput and loss at a given rate.
app::UdpTestResult run_udp(radio::Rat rat, ran::LoadRegime regime,
                           double rate_bps, std::uint64_t seed,
                           sim::Time duration = 15 * kSecond) {
  sim::Simulator simr;
  TestbedOptions opt;
  opt.rat = rat;
  opt.regime = regime;
  Testbed bed(&simr, opt, seed);
  bed.start_cross_traffic(duration + 5 * kSecond);
  app::UdpTest test(&simr, &bed.path(), &bed.fanout(), rate_bps);
  test.start(duration);
  simr.run_until(duration + 3 * kSecond);
  return test.result(kSecond, duration);
}

class Fig7Experiment final : public Experiment {
 public:
  std::string name() const override { return "fig7_throughput"; }
  std::string paper_ref() const override { return "Figure 7"; }
  std::string description() const override {
    return "UDP baselines and TCP bandwidth utilisation: loss/delay-based "
           "TCP collapses below 32% on 5G";
  }

  void run(const ExperimentContext& ctx) override {
    TextTable udp("Fig. 7a — UDP DL baselines",
                  {"network", "measured (Mbps)", "paper (Mbps)"});
    const auto udp_row = [&](const char* label, radio::Rat rat,
                             ran::LoadRegime regime, double paper_mbps) {
      const auto r =
          run_udp(rat, regime, baseline_rate_bps(rat, regime,
                                                 Direction::kDownlink),
                  ctx.seed);
      udp.add_row({label, TextTable::num(r.mean_throughput_bps / 1e6, 0),
                   TextTable::num(paper_mbps, 0)});
      ctx.metric(std::string("udp_") + label, r.mean_throughput_bps / 1e6,
                 "Mbps");
    };
    udp_row("5G day", radio::Rat::kNr, ran::LoadRegime::kDay,
            paper::kNrUdpDayMbps);
    udp_row("5G night", radio::Rat::kNr, ran::LoadRegime::kNight,
            paper::kNrUdpNightMbps);
    udp_row("4G day", radio::Rat::kLte, ran::LoadRegime::kDay,
            paper::kLteUdpDayMbps);
    udp_row("4G night", radio::Rat::kLte, ran::LoadRegime::kNight,
            paper::kLteUdpNightMbps);
    udp.print(*ctx.out);

    TextTable t("Fig. 7b — TCP bandwidth utilisation (goodput / UDP baseline)",
                {"algorithm", "5G measured", "5G paper", "4G measured",
                 "4G paper"});
    for (std::size_t i = 0; i < kAlgos.size(); ++i) {
      const tcp::CcAlgo algo = kAlgos[i];
      const double nr = run_tcp_bulk(radio::Rat::kNr, ran::LoadRegime::kDay,
                                     algo, ctx.seed);
      const double lte = run_tcp_bulk(radio::Rat::kLte, ran::LoadRegime::kDay,
                                      algo, ctx.seed);
      t.add_row({tcp::to_string(algo),
                 TextTable::pct(nr / (paper::kNrUdpDayMbps * 1e6)),
                 TextTable::pct(paper::kUtil5G[i]),
                 TextTable::pct(lte / (paper::kLteUdpDayMbps * 1e6)),
                 TextTable::pct(paper::kUtil4G[i])});
      ctx.metric(std::string("util_5g_") + tcp::to_string(algo),
                 nr / (paper::kNrUdpDayMbps * 1e6), "fraction");
      ctx.metric(std::string("util_4g_") + tcp::to_string(algo),
                 lte / (paper::kLteUdpDayMbps * 1e6), "fraction");
    }
    t.print(*ctx.out);
  }
};

class Fig8Experiment final : public Experiment {
 public:
  std::string name() const override { return "fig8_cwnd"; }
  std::string paper_ref() const override { return "Figure 8"; }
  std::string description() const override {
    return "cwnd evolution on 5G: BBR rides high, Cubic saws at the floor";
  }

  void run(const ExperimentContext& ctx) override {
    TextTable t("Fig. 8 — cwnd over a 60 s 5G session (KB, 5 s windows)",
                {"t (s)", "Cubic cwnd", "Cubic retx", "BBR cwnd",
                 "BBR retx"});
    struct Run {
      std::vector<measure::TimePoint> cwnd;
      std::vector<measure::TimePoint> retx;
      std::vector<measure::TimePoint> chart;  // fine-grained, for the plot
    };
    const auto run_one = [&](tcp::CcAlgo algo) {
      sim::Simulator simr;
      TestbedOptions opt;  // 5G day defaults
      Testbed bed(&simr, opt, ctx.seed);
      bed.start_cross_traffic(70 * kSecond);
      tcp::TcpConfig cfg;
      cfg.algo = algo;
      app::TcpSession session(&simr, &bed.path(), &bed.fanout(), cfg);
      session.sender().start_bulk();
      Run out;
      double prev_retx = 0;
      for (int s = 5; s <= 60; s += 5) {
        simr.run_until(s * kSecond);
        out.cwnd.push_back(
            {s * kSecond, session.sender().cwnd_bytes() / 1024.0});
        const double retx = static_cast<double>(
            session.sender().retransmissions());
        out.retx.push_back({s * kSecond, retx - prev_retx});
        prev_retx = retx;
      }
      for (const auto& p : session.sender().cwnd_log().window_means(
               0, 60 * kSecond, 500 * sim::kMillisecond)) {
        if (p.value > 0) out.chart.push_back({p.at, p.value / 1024.0});
      }
      return out;
    };
    const Run cubic = run_one(tcp::CcAlgo::kCubic);
    const Run bbr = run_one(tcp::CcAlgo::kBbr);
    for (std::size_t i = 0; i < cubic.cwnd.size(); ++i) {
      t.add_row({TextTable::num(sim::to_seconds(cubic.cwnd[i].at), 0),
                 TextTable::num(cubic.cwnd[i].value, 0),
                 TextTable::num(cubic.retx[i].value, 0),
                 TextTable::num(bbr.cwnd[i].value, 0),
                 TextTable::num(bbr.retx[i].value, 0)});
    }
    t.print(*ctx.out);

    measure::PlotOptions popt;
    popt.title = "Cubic cwnd over 60 s on 5G (KB, 0.5 s means)";
    popt.x_label = "s";
    popt.y_label = "cwnd KB";
    *ctx.out << measure::line_chart(cubic.chart, popt) << "\n";
    popt.title = "BBR cwnd over 60 s on 5G (KB, 0.5 s means)";
    *ctx.out << measure::line_chart(bbr.chart, popt) << "\n";
    *ctx.out << "paper: BBR's slow start lasts ~6 s, Cubic never sustains a "
                "high window due to repeated multiplicative decreases\n\n";
  }
};

class Fig9Experiment final : public Experiment {
 public:
  std::string name() const override { return "fig9_loss_vs_load"; }
  std::string paper_ref() const override { return "Figure 9"; }
  std::string description() const override {
    return "UDP loss vs offered load: 5G workloads overflow legacy wireline "
           "buffers at a small fraction of their baseline";
  }

  void run(const ExperimentContext& ctx) override {
    TextTable t("Fig. 9 — packet loss vs fraction of baseline bandwidth",
                {"fraction", "5G loss", "4G loss", "paper note"});
    const std::array<double, 5> fractions = {0.2, 0.25, 1.0 / 3.0, 0.5, 1.0};
    for (const double f : fractions) {
      const auto nr = run_udp(
          radio::Rat::kNr, ran::LoadRegime::kDay,
          f * paper::kNrUdpDayMbps * 1e6, ctx.seed + 11);
      const auto lte = run_udp(
          radio::Rat::kLte, ran::LoadRegime::kDay,
          f * paper::kLteUdpDayMbps * 1e6, ctx.seed + 11);
      std::string note;
      if (f == 0.5) note = "paper: 5G >3.1%, ~10x the 4G loss";
      t.add_row({TextTable::num(f, 2), TextTable::pct(nr.loss_ratio),
                 TextTable::pct(lte.loss_ratio), note});
      ctx.metric_point("nr_loss_vs_load", f, nr.loss_ratio, "fraction");
      ctx.metric_point("lte_loss_vs_load", f, lte.loss_ratio, "fraction");
    }
    t.print(*ctx.out);
  }
};

class Fig11Experiment final : public Experiment {
 public:
  std::string name() const override { return "fig11_bursty_loss"; }
  std::string paper_ref() const override { return "Figure 11"; }
  std::string description() const override {
    return "Loss pattern of a 5G UDP session: drops come in bursts "
           "(drop-tail overflow), not uniformly";
  }

  void run(const ExperimentContext& ctx) override {
    sim::Simulator simr;
    TestbedOptions opt;  // 5G day
    Testbed bed(&simr, opt, ctx.seed + 5);
    bed.start_cross_traffic(30 * kSecond);
    app::UdpTest test(&simr, &bed.path(), &bed.fanout(),
                      0.9 * paper::kNrUdpDayMbps * 1e6);
    test.start(20 * kSecond);
    simr.run_until(25 * kSecond);

    // Reconstruct loss runs from the received sequence numbers.
    const auto& seqs = test.sink().arrival_seqs();
    std::vector<std::uint64_t> burst_lengths;
    std::uint64_t expected = 0;
    for (const std::uint64_t s : seqs) {
      if (s > expected) burst_lengths.push_back(s - expected);
      expected = s + 1;
    }
    std::uint64_t lost = 0, singletons = 0, bursts8 = 0, max_burst = 0;
    for (const std::uint64_t b : burst_lengths) {
      lost += b;
      singletons += (b == 1);
      bursts8 += (b >= 8);
      max_burst = std::max(max_burst, b);
    }
    TextTable t("Fig. 11 — structure of 5G packet loss",
                {"metric", "value"});
    t.add_row({"packets sent", std::to_string(test.result(0, 1).packets_sent)});
    t.add_row({"packets lost", std::to_string(lost)});
    t.add_row({"loss events (runs)", std::to_string(burst_lengths.size())});
    t.add_row({"mean run length",
               TextTable::num(burst_lengths.empty()
                                  ? 0.0
                                  : static_cast<double>(lost) /
                                        burst_lengths.size(),
                              1)});
    t.add_row({"single-packet runs", std::to_string(singletons)});
    t.add_row({"runs >= 8 packets", std::to_string(bursts8)});
    t.add_row({"longest run", std::to_string(max_burst)});
    t.print(*ctx.out);
    ctx.metric("mean_loss_run_length",
               burst_lengths.empty()
                   ? 0.0
                   : static_cast<double>(lost) / burst_lengths.size(),
               "packets");
    ctx.metric("longest_loss_run", static_cast<double>(max_burst),
               "packets");
    *ctx.out << "paper: losses show a clear bursty pattern caused by "
                "intermittent buffer overflow\n\n";
  }
};

class Table3Experiment final : public Experiment {
 public:
  std::string name() const override { return "table3_buffer_sizing"; }
  std::string paper_ref() const override { return "Table 3"; }
  std::string description() const override {
    return "Max-min-delay buffer estimation per path segment, plus the "
           "Stanford-model sizing recommendation";
  }

  void run(const ExperimentContext& ctx) override {
    TextTable t("Table 3 — estimated buffers (packets of 60 B)",
                {"segment", "4G measured", "4G paper", "5G measured",
                 "5G paper"});
    std::array<double, 3> est4{}, est5{};
    for (const radio::Rat rat : {radio::Rat::kLte, radio::Rat::kNr}) {
      sim::Simulator simr;
      TestbedOptions opt;
      opt.rat = rat;
      opt.direction = Direction::kUplink;  // traceroute runs on the phone
      Testbed bed(&simr, opt, ctx.seed + 3);
      bed.start_cross_traffic(80 * kSecond);
      // Load the DL direction like the paper's measurement campaign: a
      // saturating UDP stream fills whatever queues the RAT can fill.
      // (Uplink orientation: DL = B->A; inject load at the far end.)
      net::UdpSource load(
          &simr,
          {555, baseline_rate_bps(rat, ran::LoadRegime::kDay,
                                  Direction::kDownlink),
           1500},
          [&bed](net::Packet p) { bed.path().send_b_to_a(std::move(p)); });
      load.start(60 * kSecond);

      net::Traceroute tr(&simr, &bed.path(), /*reps=*/30,
                         /*gap=*/2 * kSecond);
      std::vector<net::HopRtt> hops;
      tr.run([&](std::vector<net::HopRtt> r) { hops = std::move(r); });
      simr.run_until(75 * kSecond);

      // Paper's method: buffer ~= (RTTmax - RTTmin) * C / packet size,
      // C assumed 1 Gbps, per segment.
      const double ran_est = net::estimate_buffer_packets(hops[0].rtt_ms);
      const double whole_est =
          net::estimate_buffer_packets(hops.back().rtt_ms);
      const double wired_est = std::max(0.0, whole_est - ran_est);
      auto& dst = rat == radio::Rat::kLte ? est4 : est5;
      dst = {ran_est, wired_est, whole_est};
    }
    const char* segs[3] = {"RAN", "wired network", "whole path"};
    for (int i = 0; i < 3; ++i) {
      t.add_row({segs[i], TextTable::num(est4[static_cast<std::size_t>(i)], 0),
                 TextTable::num(paper::kBuf4G[i], 0),
                 TextTable::num(est5[static_cast<std::size_t>(i)], 0),
                 TextTable::num(paper::kBuf5G[i], 0)});
      ctx.metric_point("buf_4g_packets", i,
                       est4[static_cast<std::size_t>(i)], "packets");
      ctx.metric_point("buf_5g_packets", i,
                       est5[static_cast<std::size_t>(i)], "packets");
    }
    t.print(*ctx.out);

    // Stanford sizing: B = RTT*C/sqrt(n). The paper concludes the wired
    // buffer should grow ~2x for 5G.
    const double rtt_s = 0.045, n_flows = 16.0;
    const double b5 = rtt_s * paper::kNrUdpDayMbps * 1e6 / std::sqrt(n_flows);
    const double b4 = rtt_s * paper::kLteUdpDayMbps * 1e6 / std::sqrt(n_flows);
    *ctx.out << "Stanford model B = RTT*C/sqrt(n): 5G needs "
             << TextTable::num(b5 / b4, 1)
             << "x the 4G buffer; vs the observed wired ratio "
             << TextTable::num(paper::kBuf5G[1] / paper::kBuf4G[1], 1)
             << "x -> grow wired buffers ~2x (the paper's recommendation)\n\n";
  }
};

// Smoke-tier slice of Fig. 7b: one short Cubic bulk transfer over the 5G
// day testbed. Keeps the CI smoke campaign exercising the full transport
// stack (tcp + net + ran layers show up in --trace output) without the
// minutes-long sweep of the full Fig. 7 grid.
class TcpSmokeExperiment final : public Experiment {
 public:
  std::string name() const override { return "smoke_tcp_bulk"; }
  std::string paper_ref() const override { return "Figure 7 (slice)"; }
  std::string description() const override {
    return "short Cubic bulk transfer on 5G day: transport-stack smoke run";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    constexpr sim::Time kDuration = 3 * kSecond;
    sim::Simulator simr;
    TestbedOptions opt;  // 5G day defaults
    Testbed bed(&simr, opt, ctx.seed);
    bed.start_cross_traffic(kDuration + kSecond);
    tcp::TcpConfig cfg;
    cfg.algo = tcp::CcAlgo::kCubic;
    app::TcpSession session(&simr, &bed.path(), &bed.fanout(), cfg);
    session.sender().start_bulk();
    simr.run_until(kDuration);
    const double goodput =
        session.receiver().mean_goodput_bps(kSecond, kDuration);
    *ctx.out << "Cubic on 5G day, 3 s bulk: "
             << TextTable::num(goodput / 1e6, 0) << " Mbps steady goodput\n\n";
    ctx.metric("goodput_cubic_5g", goodput / 1e6, "Mbps");
  }
};

}  // namespace

void register_throughput_experiments() {
  register_experiment<Fig7Experiment>();
  register_experiment<Fig8Experiment>();
  register_experiment<Fig9Experiment>();
  register_experiment<Fig11Experiment>();
  register_experiment<Table3Experiment>();
  register_experiment<TcpSmokeExperiment>();
}

}  // namespace fiveg::core

// Ablations of the design choices DESIGN.md calls out: wireline buffer
// sizing (the paper's proposed fix), NSA-vs-SA hand-off signalling, DRX
// tail length, and CC robustness to ambient burst loss.
#include <ostream>

#include "app/iperf.h"
#include "core/experiment.h"
#include "core/paper.h"
#include "core/scenario.h"
#include "energy/rrc_power_machine.h"
#include "energy/traffic_trace.h"
#include "measure/table.h"
#include "ran/nsa_signaling.h"

namespace fiveg::core {
namespace {

using measure::TextTable;
using sim::kSecond;

class BufferSizingAblation final : public Experiment {
 public:
  std::string name() const override { return "ablation_buffer_sizing"; }
  std::string paper_ref() const override {
    return "Sec. 4.2 (proposed fix: grow wired buffers ~2x)";
  }
  std::string description() const override {
    return "Cubic utilisation on 5G as the wireline bottleneck buffer "
           "scales from 0.5x to 4x";
  }

  void run(const ExperimentContext& ctx) override {
    TextTable t("Ablation — Cubic on 5G vs bottleneck buffer size",
                {"buffer scale", "buffer (KB)", "utilisation"});
    const std::uint64_t base = 1638 * 1024;
    for (const double scale : {0.5, 1.0, 2.0, 4.0}) {
      sim::Simulator simr;
      TestbedOptions opt;
      opt.bottleneck_buffer_bytes =
          static_cast<std::uint64_t>(base * scale);
      Testbed bed(&simr, opt, ctx.seed);
      bed.start_cross_traffic(30 * kSecond);
      app::TcpSession session(&simr, &bed.path(), &bed.fanout(),
                              tcp::TcpConfig{.algo = tcp::CcAlgo::kCubic});
      session.sender().start_bulk();
      simr.run_until(25 * kSecond);
      const double util =
          session.receiver().mean_goodput_bps(5 * kSecond, 25 * kSecond) /
          (paper::kNrUdpDayMbps * 1e6);
      t.add_row({TextTable::num(scale, 1),
                 TextTable::num(base * scale / 1024.0, 0),
                 TextTable::pct(util)});
      ctx.metric_point("cubic_util_vs_buffer_scale", scale, util, "fraction");
    }
    t.print(*ctx.out);
    *ctx.out << "the paper's recommendation: ~2x wired buffers largely "
                "repairs loss-based TCP on 5G\n\n";
  }
};

class SaHandoffAblation final : public Experiment {
 public:
  std::string name() const override { return "ablation_sa_handoff"; }
  std::string paper_ref() const override {
    return "Sec. 3.4 (NSA as the hand-off latency culprit)";
  }
  std::string description() const override {
    return "5G-5G hand-off latency with the NSA detour legs removed (an SA "
           "preview)";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    // SA removes: NR release, roll-back, LTE RACH detour and re-addition —
    // a direct gNB-to-gNB hand-off keeps only the X2-style legs.
    sim::Rng rng = sim::Rng(ctx.seed).fork("sa");
    measure::RunningStats nsa, sa;
    for (int i = 0; i < 2000; ++i) {
      nsa.add(sim::to_millis(
          ran::sample_handoff_latency(ran::HandoffType::k5G5G, rng)));
      sa.add(sim::to_millis(
          ran::sample_handoff_latency(ran::HandoffType::k4G4G, rng)));
    }
    TextTable t("Ablation — hand-off signalling architecture",
                {"architecture", "mean latency (ms)"});
    t.add_row({"5G NSA (measured sequence)", TextTable::num(nsa.mean(), 1)});
    t.add_row({"5G SA (direct, 4G-4G-equivalent legs)",
               TextTable::num(sa.mean(), 1)});
    t.print(*ctx.out);
    *ctx.out << "removing the NSA detour recovers "
             << TextTable::pct(1.0 - sa.mean() / nsa.mean())
             << " of the hand-off latency\n\n";
    ctx.metric("nsa_ho_ms", nsa.mean(), "ms");
    ctx.metric("sa_ho_ms", sa.mean(), "ms");
    ctx.metric("sa_latency_recovered", 1.0 - sa.mean() / nsa.mean(),
               "fraction");
  }
};

class TailTimerAblation final : public Experiment {
 public:
  std::string name() const override { return "ablation_tail_timer"; }
  std::string paper_ref() const override {
    return "Sec. 6.2/6.3 (the compounded NSA tail)";
  }
  std::string description() const override {
    return "Web-browsing energy vs the NR tail timer: shorter tails close "
           "most of the NSA-vs-Oracle gap";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    const energy::TrafficTrace trace =
        energy::web_browsing_trace(sim::Rng(ctx.seed).fork("tail"));
    TextTable t("Ablation — NR tail length vs web energy",
                {"Ttail (s)", "NSA energy (J)", "vs stock"});
    energy::ReplayConfig stock_cfg;
    const double stock = energy::RrcPowerMachine(stock_cfg)
                             .replay(trace, energy::RadioModel::kNrNsa)
                             .radio_joules;
    for (const double tail_s : {21.44, 10.72, 5.0, 2.0, 0.5}) {
      energy::ReplayConfig cfg;
      cfg.nr_drx.tail = sim::from_seconds(tail_s);
      const double j = energy::RrcPowerMachine(cfg)
                           .replay(trace, energy::RadioModel::kNrNsa)
                           .radio_joules;
      t.add_row({TextTable::num(tail_s, 2), TextTable::num(j, 1),
                 TextTable::pct(j / stock - 1.0)});
      ctx.metric_point("web_energy_vs_tail", tail_s, j, "J");
    }
    t.print(*ctx.out);
  }
};

class CcRobustnessAblation final : public Experiment {
 public:
  std::string name() const override { return "ablation_cc_robustness"; }
  std::string paper_ref() const override {
    return "Sec. 4.1 (BBR as the pragmatic fix)";
  }
  std::string description() const override {
    return "BBR vs Cubic on 5G as ambient cross-traffic intensity grows";
  }

  void run(const ExperimentContext& ctx) override {
    TextTable t("Ablation — utilisation vs ambient burst duty cycle",
                {"burst duty", "Cubic", "BBR"});
    for (const double duty_scale : {0.0, 0.5, 1.0, 2.0}) {
      double util[2];
      for (const tcp::CcAlgo algo :
           {tcp::CcAlgo::kCubic, tcp::CcAlgo::kBbr}) {
        sim::Simulator simr;
        TestbedOptions opt;
        opt.cross_traffic = false;  // custom cross traffic below
        Testbed bed(&simr, opt, ctx.seed);
        std::unique_ptr<net::CrossTraffic> cross;
        if (duty_scale > 0) {
          net::CrossTraffic::Config xcfg;
          xcfg.mean_on_s = 0.045 * duty_scale;
          xcfg.mean_off_s = 0.35;
          xcfg.min_rate_bps = 150e6;
          xcfg.max_rate_bps = 1300e6;
          cross = std::make_unique<net::CrossTraffic>(
              &simr, &bed.bottleneck(), xcfg,
              sim::Rng(ctx.seed).fork("xabl"));
          cross->start(30 * kSecond);
        }
        tcp::TcpConfig cfg;
        cfg.algo = algo;
        app::TcpSession session(&simr, &bed.path(), &bed.fanout(), cfg);
        session.sender().start_bulk();
        simr.run_until(25 * kSecond);
        util[algo == tcp::CcAlgo::kBbr ? 1 : 0] =
            session.receiver().mean_goodput_bps(5 * kSecond, 25 * kSecond) /
            (paper::kNrUdpDayMbps * 1e6);
      }
      t.add_row({TextTable::num(duty_scale, 1), TextTable::pct(util[0]),
                 TextTable::pct(util[1])});
      ctx.metric_point("cubic_util_vs_duty", duty_scale, util[0], "fraction");
      ctx.metric_point("bbr_util_vs_duty", duty_scale, util[1], "fraction");
    }
    t.print(*ctx.out);
  }
};

}  // namespace

void register_ablation_experiments() {
  register_experiment<BufferSizingAblation>();
  register_experiment<SaHandoffAblation>();
  register_experiment<TailTimerAblation>();
  register_experiment<CcRobustnessAblation>();
}

}  // namespace fiveg::core

// Application QoE experiments: Fig. 16/17 (web page loading), Fig. 18/19
// (panoramic video throughput and fluctuation), Fig. 20 (frame delay) and
// the Sec. 8 "can 5G replace DSL" estimate.
#include <ostream>

#include "app/iperf.h"
#include "app/video.h"
#include "app/web.h"
#include "core/experiment.h"
#include "core/paper.h"
#include "core/scenario.h"
#include "measure/plot.h"
#include "measure/table.h"

namespace fiveg::core {
namespace {

using measure::TextTable;
using sim::kSecond;

app::PltResult load_page(radio::Rat rat, const app::WebPage& page,
                         std::uint64_t seed) {
  sim::Simulator simr;
  TestbedOptions opt;
  opt.rat = rat;
  // The paper's web servers sit behind real Internet paths, not a metro
  // CDN: a few hundred km of wireline RTT is what makes page loads
  // transient-bound on both RATs.
  opt.server_distance_km = 400.0;
  Testbed bed(&simr, opt, seed);
  bed.start_cross_traffic(60 * kSecond);
  tcp::TcpConfig cfg;
  cfg.algo = tcp::CcAlgo::kBbr;  // the paper uses HTTP/2 + BBR
  app::WebBrowser browser(&simr, &bed.path(), &bed.fanout(), cfg);
  app::PltResult result;
  browser.load(page, [&](app::PltResult r) { result = r; });
  simr.run_until(60 * kSecond);
  return result;
}

class Fig16Experiment final : public Experiment {
 public:
  std::string name() const override { return "fig16_17_web"; }
  std::string paper_ref() const override { return "Figures 16 and 17"; }
  std::string description() const override {
    return "Page load time by category and image size: rendering dominates, "
           "so 5G buys ~5% despite 5x the bandwidth";
  }

  void run(const ExperimentContext& ctx) override {
    TextTable t("Fig. 16 — PLT by page category (seconds)",
                {"category", "5G download", "5G render", "5G total",
                 "4G download", "4G render", "4G total"});
    double plt5 = 0, plt4 = 0, dl5 = 0, dl4 = 0;
    for (const app::WebPage& page : app::paper_pages()) {
      const auto nr = load_page(radio::Rat::kNr, page, ctx.seed);
      const auto lte = load_page(radio::Rat::kLte, page, ctx.seed);
      plt5 += nr.total_s();
      plt4 += lte.total_s();
      dl5 += nr.download_s;
      dl4 += lte.download_s;
      t.add_row({page.category, TextTable::num(nr.download_s, 2),
                 TextTable::num(nr.render_s, 2),
                 TextTable::num(nr.total_s(), 2),
                 TextTable::num(lte.download_s, 2),
                 TextTable::num(lte.render_s, 2),
                 TextTable::num(lte.total_s(), 2)});
    }
    t.print(*ctx.out);
    TextTable s("Fig. 16 summary", {"metric", "measured", "paper"});
    s.add_row({"5G total-PLT reduction", TextTable::pct(1.0 - plt5 / plt4),
               TextTable::pct(paper::kPltReduction)});
    s.add_row({"5G download-only reduction", TextTable::pct(1.0 - dl5 / dl4),
               TextTable::pct(paper::kDownloadReduction)});
    s.print(*ctx.out);
    ctx.metric("plt_reduction", 1.0 - plt5 / plt4, "fraction");
    ctx.metric("download_reduction", 1.0 - dl5 / dl4, "fraction");

    TextTable t17("Fig. 17 — PLT by image size (seconds)",
                  {"size (MB)", "5G download", "5G total", "4G download",
                   "4G total"});
    for (const double mb : {1.0, 2.0, 4.0, 8.0, 16.0}) {
      const app::WebPage page = app::image_page(mb);
      const auto nr = load_page(radio::Rat::kNr, page, ctx.seed + 1);
      const auto lte = load_page(radio::Rat::kLte, page, ctx.seed + 1);
      t17.add_row({TextTable::num(mb, 0), TextTable::num(nr.download_s, 2),
                   TextTable::num(nr.total_s(), 2),
                   TextTable::num(lte.download_s, 2),
                   TextTable::num(lte.total_s(), 2)});
    }
    t17.print(*ctx.out);
  }
};

app::VideoStats run_video(radio::Rat rat, app::Resolution res, bool dynamic,
                          std::uint64_t seed,
                          sim::Time duration = 30 * kSecond) {
  sim::Simulator simr;
  TestbedOptions opt;
  opt.rat = rat;
  opt.direction = Direction::kUplink;  // telephony pushes uplink
  opt.cross_traffic = false;           // the UL bottleneck is the RAN
  Testbed bed(&simr, opt, seed);
  app::VideoConfig cfg;
  cfg.resolution = res;
  cfg.dynamic_scene = dynamic;
  cfg.transport.algo = tcp::CcAlgo::kBbr;
  app::VideoTelephony video(&simr, &bed.path(), &bed.fanout(), cfg,
                            sim::Rng(seed).fork("video"));
  video.start(duration);
  simr.run_until(duration + 30 * kSecond);
  return video.stats();
}

class Fig18And19Experiment final : public Experiment {
 public:
  std::string name() const override { return "fig18_19_video_tput"; }
  std::string paper_ref() const override { return "Figures 18 and 19"; }
  std::string description() const override {
    return "Uplink video throughput by resolution/scene: 4G cannot carry "
           "5.7K; dynamic scenes overflow even 5G occasionally";
  }

  void run(const ExperimentContext& ctx) override {
    TextTable t("Fig. 18 — received video throughput (Mbps)",
                {"resolution", "4G static", "4G dynamic", "5G static",
                 "5G dynamic", "nominal"});
    using app::Resolution;
    for (const Resolution res :
         {Resolution::k720p, Resolution::k1080p, Resolution::k4K,
          Resolution::k5p7K}) {
      const auto cell = [&](radio::Rat rat, bool dyn) {
        return TextTable::num(
            run_video(rat, res, dyn, ctx.seed).mean_received_throughput_bps /
                1e6,
            0);
      };
      t.add_row({app::to_string(res), cell(radio::Rat::kLte, false),
                 cell(radio::Rat::kLte, true), cell(radio::Rat::kNr, false),
                 cell(radio::Rat::kNr, true),
                 TextTable::num(app::nominal_bitrate_bps(res) / 1e6, 0)});
    }
    t.print(*ctx.out);

    // Fig. 19: 5.7K on 5G, static vs dynamic, freezes from UL overflow.
    const auto st = run_video(radio::Rat::kNr, app::Resolution::k5p7K, false,
                              ctx.seed + 2);
    const auto dy = run_video(radio::Rat::kNr, app::Resolution::k5p7K, true,
                              ctx.seed + 2);
    {
      // Received-throughput fluctuation chart (Mbps over 1 s windows).
      sim::Simulator simr;
      TestbedOptions opt;
      opt.direction = Direction::kUplink;
      opt.cross_traffic = false;
      Testbed bed(&simr, opt, ctx.seed + 2);
      app::VideoConfig cfg;
      cfg.resolution = app::Resolution::k5p7K;
      cfg.dynamic_scene = true;
      cfg.transport.algo = tcp::CcAlgo::kBbr;
      app::VideoTelephony video(&simr, &bed.path(), &bed.fanout(), cfg,
                                sim::Rng(ctx.seed + 2).fork("video"));
      video.start(30 * kSecond);
      simr.run_until(60 * kSecond);
      std::vector<measure::TimePoint> mbps;
      for (const auto& w : video.received_bytes_log().window_sums(
               0, 30 * kSecond, kSecond)) {
        mbps.push_back({w.at, w.value / 1e6});
      }
      measure::PlotOptions popt;
      popt.title =
          "Fig. 19 — received 5.7K dynamic-scene throughput on 5G (Mbps)";
      popt.x_label = "s";
      *ctx.out << measure::line_chart(mbps, popt) << "\n";
    }
    TextTable f("Fig. 19 — 5.7K over 5G, 30 s session",
                {"scene", "mean Mbps", "p95/p5 frame-size spread",
                 "freeze events", "paper"});
    const auto spread = [](const app::VideoStats& s) {
      return s.frame_bytes.quantile(0.95) / s.frame_bytes.quantile(0.05);
    };
    f.add_row({"static", TextTable::num(st.mean_received_throughput_bps / 1e6, 0),
               TextTable::num(spread(st), 1), std::to_string(st.freeze_events),
               "~0"});
    f.add_row({"dynamic", TextTable::num(dy.mean_received_throughput_bps / 1e6, 0),
               TextTable::num(spread(dy), 1), std::to_string(dy.freeze_events),
               std::to_string(paper::kFreezeEvents5p7K)});
    f.print(*ctx.out);
    ctx.metric("static_5p7k_mbps", st.mean_received_throughput_bps / 1e6,
               "Mbps");
    ctx.metric("dynamic_5p7k_mbps", dy.mean_received_throughput_bps / 1e6,
               "Mbps");
    ctx.metric("dynamic_freeze_events",
               static_cast<double>(dy.freeze_events), "count");
  }
};

class Fig20Experiment final : public Experiment {
 public:
  std::string name() const override { return "fig20_frame_delay"; }
  std::string paper_ref() const override { return "Figure 20"; }
  std::string description() const override {
    return "End-to-end 4K frame delay: processing (~650 ms) dwarfs "
           "transmission (~66 ms) even on 5G";
  }

  void run(const ExperimentContext& ctx) override {
    const auto nr =
        run_video(radio::Rat::kNr, app::Resolution::k4K, false, ctx.seed + 3);
    const auto lte =
        run_video(radio::Rat::kLte, app::Resolution::k4K, false, ctx.seed + 3);

    TextTable t("Fig. 20 — 4K telephony frame delay (s)",
                {"network", "median", "p90", "max", "paper"});
    t.add_row({"5G", TextTable::num(nr.frame_delay_s.quantile(0.5), 2),
               TextTable::num(nr.frame_delay_s.quantile(0.9), 2),
               TextTable::num(nr.frame_delay_s.max(), 2),
               "~" + TextTable::num(paper::kFrameDelay5GMs / 1000, 2)});
    t.add_row({"4G", TextTable::num(lte.frame_delay_s.quantile(0.5), 2),
               TextTable::num(lte.frame_delay_s.quantile(0.9), 2),
               TextTable::num(lte.frame_delay_s.max(), 2),
               "1.2-1.6 with congestion spikes"});
    t.print(*ctx.out);

    const app::PipelineCosts costs;
    const double proc_ms = sim::to_millis(costs.capture_stitch) +
                           sim::to_millis(costs.encode) +
                           sim::to_millis(costs.decode_render);
    const double net_ms =
        nr.frame_delay_s.quantile(0.5) * 1000.0 - proc_ms -
        sim::to_millis(costs.rtmp_relay);
    *ctx.out << "processing " << TextTable::num(proc_ms, 0)
             << " ms vs network " << TextTable::num(net_ms, 0)
             << " ms -> processing/network = "
             << TextTable::num(proc_ms / std::max(net_ms, 1.0), 1)
             << "x (paper: ~10x; requirement is "
             << paper::kFrameDelayReqMs << " ms)\n\n";
    ctx.metric("nr_median_frame_delay_s", nr.frame_delay_s.quantile(0.5),
               "s");
    ctx.metric("processing_over_network", proc_ms / std::max(net_ms, 1.0),
               "ratio");
  }
};

class DslExperiment final : public Experiment {
 public:
  std::string name() const override { return "dsl_replacement"; }
  std::string paper_ref() const override { return "Section 8 (CPE/DSL)"; }
  std::string description() const override {
    return "Can 5G replace DSL? Per-house share of a residential gNB";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    // A CPE parked at a favourable indoor spot (near a window) gets
    // ~650 Mbps; 50 houses share a 3-sector gNB.
    sim::Simulator simr;
    TestbedOptions opt;
    opt.rat = radio::Rat::kNr;
    opt.ran_rate_bps = paper::kCpeThroughputMbps * 1e6;
    opt.cross_traffic = false;
    Testbed bed(&simr, opt, ctx.seed);
    app::UdpTest test(&simr, &bed.path(), &bed.fanout(),
                      paper::kCpeThroughputMbps * 1e6);
    test.start(5 * kSecond);
    simr.run_until(6 * kSecond);
    const double cpe_mbps =
        test.result(kSecond, 5 * kSecond).mean_throughput_bps / 1e6;

    const int houses_per_gnb = 50;
    const int sectors = 3;
    const double per_house =
        cpe_mbps * sectors / houses_per_gnb;
    TextTable t("Sec. 8 — 5G as a DSL replacement",
                {"metric", "measured", "paper"});
    t.add_row({"CPE throughput (Mbps)", TextTable::num(cpe_mbps, 0),
               TextTable::num(paper::kCpeThroughputMbps, 0)});
    t.add_row({"per-house share (Mbps)", TextTable::num(per_house, 0),
               TextTable::num(paper::kPerHouseMbps, 0)});
    t.add_row({"US DSL average (Mbps)", TextTable::num(paper::kDslMbps, 0),
               TextTable::num(paper::kDslMbps, 0)});
    t.print(*ctx.out);
    ctx.metric("per_house_mbps", per_house, "Mbps");
  }
};

}  // namespace

void register_app_experiments() {
  register_experiment<Fig16Experiment>();
  register_experiment<Fig18And19Experiment>();
  register_experiment<Fig20Experiment>();
  register_experiment<DslExperiment>();
}

}  // namespace fiveg::core

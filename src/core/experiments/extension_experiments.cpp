// Extension experiments: the paper's discussion/future-work directions
// built out — CoDel AQM vs buffer growth (Sec. 4.2's trade-off), mobile
// edge computing (Sec. 8), the deterministic-start web fix (Sec. 5.1's
// citation [90]), SA energy with RRC_INACTIVE (Appendix B), indoor
// micro-cells (Sec. 3.3) and hand-off trigger tuning (Sec. 3.4).
#include <ostream>

#include "app/iperf.h"
#include "app/multipath.h"
#include "app/video.h"
#include "app/web.h"
#include "core/experiment.h"
#include "core/paper.h"
#include "core/scenario.h"
#include "energy/rrc_power_machine.h"
#include "energy/traffic_trace.h"
#include "geo/route.h"
#include "measure/table.h"
#include "radio/mcs.h"
#include "ran/handoff.h"
#include "ran/prb_scheduler.h"

namespace fiveg::core {
namespace {

using measure::TextTable;
using sim::kSecond;

class AqmExperiment final : public Experiment {
 public:
  std::string name() const override { return "ext_codel_aqm"; }
  std::string paper_ref() const override {
    return "Sec. 4.2 (bufferbloat trade-off)";
  }
  std::string description() const override {
    return "CoDel at the wireline bottleneck vs drop-tail: loss-based TCP "
           "utilisation and queueing delay under 5G load";
  }

  void run(const ExperimentContext& ctx) override {
    TextTable t("Extension — drop-tail vs CoDel at the metro bottleneck",
                {"queue", "Cubic util", "BBR util", "Cubic SRTT (ms)"});
    for (const bool codel : {false, true}) {
      double util[2] = {0, 0};
      double cubic_srtt = 0;
      for (const tcp::CcAlgo algo :
           {tcp::CcAlgo::kCubic, tcp::CcAlgo::kBbr}) {
        // CoDel is a Link::Config flag, so build the path by hand rather
        // than through Testbed.
        sim::Simulator simr2;
        net::CellularPathOptions popt;
        popt.ran.bitrate_bps = paper::kNrUdpDayMbps * 1e6;
        auto hops = make_cellular_path(popt, sim::Rng(ctx.seed));
        hops[net::kBottleneckHopIndex].qdisc.kind =
            codel ? net::QdiscKind::kCoDel : net::QdiscKind::kDropTail;
        std::reverse(hops.begin(), hops.end());  // downlink orientation
        net::PathNetwork path(&simr2, std::move(hops));
        app::PathFanout fanout(&path);
        net::CrossTraffic::Config xcfg;
        xcfg.mean_on_s = 0.06;
        xcfg.mean_off_s = 0.35;
        xcfg.min_rate_bps = 150e6;
        xcfg.max_rate_bps = 1300e6;
        net::CrossTraffic cross(
            &simr2,
            &path.forward_link(path.hop_count() - 1 -
                               net::kBottleneckHopIndex),
            xcfg, sim::Rng(ctx.seed).fork("x"));
        cross.start(30 * kSecond);
        tcp::TcpConfig cfg;
        cfg.algo = algo;
        app::TcpSession session(&simr2, &path, &fanout, cfg);
        session.sender().start_bulk();
        simr2.run_until(25 * kSecond);
        util[algo == tcp::CcAlgo::kBbr ? 1 : 0] =
            session.receiver().mean_goodput_bps(5 * kSecond, 25 * kSecond) /
            (paper::kNrUdpDayMbps * 1e6);
        if (algo == tcp::CcAlgo::kCubic) {
          cubic_srtt = sim::to_millis(session.sender().rtt().smoothed_rtt());
        }
      }
      t.add_row({codel ? "CoDel (5 ms target)" : "drop-tail (1.6 MB)",
                 TextTable::pct(util[0]), TextTable::pct(util[1]),
                 TextTable::num(cubic_srtt, 1)});
    }
    t.print(*ctx.out);
    *ctx.out << "finding: against *transient* ambient bursts CoDel mostly "
                "adds early drops — it trims queueing delay but does not "
                "rescue loss-based TCP. That backs the paper's preferred "
                "fixes (buffer growth, pacing-based CC) over AQM for this "
                "particular anomaly.\n\n";
  }
};

class MecExperiment final : public Experiment {
 public:
  std::string name() const override { return "ext_mec"; }
  std::string paper_ref() const override { return "Sec. 8 (edge computing)"; }
  std::string description() const override {
    return "Mobile edge computing: RTT and short-transfer time, edge vs "
           "cloud server";
  }

  void run(const ExperimentContext& ctx) override {
    TextTable t("Extension — edge vs cloud placement over 5G",
                {"placement", "RTT (ms)", "8 MB fetch (s)"});
    struct Place {
      const char* name;
      double km;
      int hops;
    };
    for (const Place place : {Place{"MEC edge (behind gNB)", 2.0, 1},
                              Place{"metro cloud", 400.0, 6},
                              Place{"remote cloud", 2000.0, 9}}) {
      sim::Simulator simr;
      TestbedOptions opt;
      opt.server_distance_km = place.km;
      opt.wired_hops = place.hops;
      opt.cross_traffic = false;
      Testbed bed(&simr, opt, ctx.seed);
      // RTT via probe.
      measure::RunningStats rtt;
      for (int i = 0; i < 10; ++i) {
        simr.schedule_in(i * 50 * sim::kMillisecond, [&] {
          bed.path().probe(bed.hop_count(), [&](sim::Time x) {
            rtt.add(sim::to_millis(x));
          });
        });
      }
      simr.run_until(2 * kSecond);
      // 8 MB fetch over BBR.
      app::TcpSession session(&simr, &bed.path(), &bed.fanout(),
                              tcp::TcpConfig{.algo = tcp::CcAlgo::kBbr});
      const sim::Time start = simr.now();
      sim::Time done_at = 0;
      session.sender().send_bytes(8 << 20,
                                  [&] { done_at = simr.now(); });
      simr.run_until(start + 60 * kSecond);
      t.add_row({place.name, TextTable::num(rtt.mean(), 1),
                 TextTable::num(sim::to_seconds(done_at - start), 2)});
    }
    t.print(*ctx.out);
  }
};

class FastStartExperiment final : public Experiment {
 public:
  std::string name() const override { return "ext_faststart_web"; }
  std::string paper_ref() const override {
    return "Sec. 5.1 (deterministic bandwidth estimation, ref [90])";
  }
  std::string description() const override {
    return "Replacing slow-start probing with a radio-layer bandwidth hint: "
           "web downloads on 5G";
  }

  void run(const ExperimentContext& ctx) override {
    TextTable t("Extension — BBR vs seeded-BBR page downloads on 5G",
                {"page", "stock download (s)", "seeded download (s)",
                 "gain"});
    for (const double mb : {1.0, 4.0, 16.0}) {
      const app::WebPage page = app::image_page(mb);
      double dl[2];
      for (const bool seeded : {false, true}) {
        sim::Simulator simr;
        TestbedOptions opt;
        opt.server_distance_km = 400.0;
        Testbed bed(&simr, opt, ctx.seed);
        bed.start_cross_traffic(60 * kSecond);
        tcp::TcpConfig cfg;
        cfg.algo = tcp::CcAlgo::kBbr;
        if (seeded) {
          // The radio layer knows its own achievable rate and RTT.
          cfg.seed.rate_bps = bed.ran_rate_bps();
          cfg.seed.rtt = sim::from_millis(20);
        }
        app::WebBrowser browser(&simr, &bed.path(), &bed.fanout(), cfg);
        app::PltResult result;
        browser.load(page, [&](app::PltResult r) { result = r; });
        simr.run_until(60 * kSecond);
        dl[seeded ? 1 : 0] = result.download_s;
      }
      t.add_row({TextTable::num(mb, 0) + " MB", TextTable::num(dl[0], 2),
                 TextTable::num(dl[1], 2),
                 TextTable::pct(1.0 - dl[1] / dl[0])});
    }
    t.print(*ctx.out);
  }
};

class SaEnergyExperiment final : public Experiment {
 public:
  std::string name() const override { return "ext_sa_energy"; }
  std::string paper_ref() const override {
    return "Appendix B (RRC_INACTIVE / SA state machine)";
  }
  std::string description() const override {
    return "Energy of the future SA state machine (direct promotion, single "
           "tail, RRC_INACTIVE) vs NSA";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    const energy::RrcPowerMachine machine;
    sim::Rng rng = sim::Rng(ctx.seed).fork("sa");
    TextTable t("Extension — NSA vs SA radio energy (J)",
                {"workload", "NR NSA", "NR SA", "saving"});
    struct W {
      const char* name;
      energy::TrafficTrace trace;
    };
    const W workloads[] = {
        {"Web", energy::web_browsing_trace(rng.fork("w"))},
        {"Video", energy::video_telephony_trace(rng.fork("v"))},
        {"File", energy::file_transfer_trace(1'000'000'000)},
    };
    for (const W& w : workloads) {
      const double nsa =
          machine.replay(w.trace, energy::RadioModel::kNrNsa).radio_joules;
      const double sa =
          machine.replay(w.trace, energy::RadioModel::kNrSa).radio_joules;
      t.add_row({w.name, TextTable::num(nsa, 1), TextTable::num(sa, 1),
                 TextTable::pct(1.0 - sa / nsa)});
      ctx.metric(std::string("sa_saving_") + w.name, 1.0 - sa / nsa,
                 "fraction");
    }
    t.print(*ctx.out);
  }
};

class MicroCellExperiment final : public Experiment {
 public:
  std::string name() const override { return "ext_indoor_microcell"; }
  std::string paper_ref() const override {
    return "Sec. 3.3 (micro-cells for indoor coverage)";
  }
  std::string description() const override {
    return "Adding an indoor 5G micro-cell to one building: indoor bit-rate "
           "with macro-only vs macro+micro";
  }

  void run(const ExperimentContext& ctx) override {
    const Scenario sc(ctx.seed);
    const auto& campus = sc.campus();
    const geo::Building& bld = campus.buildings().at(3);
    const geo::Point inside = bld.footprint.center();

    // Macro-only: the stock deployment's indoor service.
    const double macro_rate =
        sc.deployment().dl_bitrate_bps(radio::Rat::kNr, inside);

    // Macro + micro: a low-power omni cell mounted inside the building
    // (CPE/femto class: ~0.1 W, small antenna).
    ran::Cell micro;
    micro.pci = 90;
    micro.site_id = 99;
    micro.rat = radio::Rat::kNr;
    micro.site = {inside,
                  radio::SectorAntenna(0.0, /*beamwidth_deg=*/360.0,
                                       /*max_gain_dbi=*/4.0,
                                       /*front_back_db=*/0.0)};
    radio::CarrierConfig micro_carrier = radio::nr3500();
    micro_carrier.tx_re_power_dbm = -18.0;  // femto EIRP

    measure::RunningStats macro_stats, micro_stats;
    sim::Rng rng = sim::Rng(ctx.seed).fork("micro");
    for (int i = 0; i < 60; ++i) {
      const geo::Point p{
          rng.uniform(bld.footprint.min.x + 1, bld.footprint.max.x - 1),
          rng.uniform(bld.footprint.min.y + 1, bld.footprint.max.y - 1)};
      macro_stats.add(sc.deployment().dl_bitrate_bps(radio::Rat::kNr, p));
      const auto m = ran::best_cell(sc.deployment().env(), micro_carrier,
                                    {micro}, p);
      const double micro_rate =
          m.in_coverage() ? radio::dl_bitrate_bps(micro_carrier, m.sinr_db)
                          : 0.0;
      micro_stats.add(std::max(
          micro_rate, sc.deployment().dl_bitrate_bps(radio::Rat::kNr, p)));
    }
    TextTable t("Extension — indoor micro-cell (one building)",
                {"deployment", "mean indoor DL (Mbps)", "min (Mbps)"});
    t.add_row({"macro only", TextTable::num(macro_stats.mean() / 1e6, 0),
               TextTable::num(macro_stats.min() / 1e6, 0)});
    t.add_row({"macro + indoor micro",
               TextTable::num(micro_stats.mean() / 1e6, 0),
               TextTable::num(micro_stats.min() / 1e6, 0)});
    t.print(*ctx.out);
    *ctx.out << "centre-of-building macro rate: "
             << TextTable::num(macro_rate / 1e6, 0)
             << " Mbps — the paper prices a CPE at $360 vs $28.8k for a "
                "macro gNB\n\n";
  }
};

class HoTuningExperiment final : public Experiment {
 public:
  std::string name() const override { return "ext_ho_tuning"; }
  std::string paper_ref() const override {
    return "Sec. 3.4 (a more intelligent hand-off strategy)";
  }
  std::string description() const override {
    return "A3 hysteresis / time-to-trigger sweep: hand-off count vs the "
           "fraction that actually improve quality";
  }

  void run(const ExperimentContext& ctx) override {
    TextTable t("Extension — A3 trigger tuning",
                {"hysteresis (dB)", "TTT (ms)", "hand-offs",
                 ">= 3 dB gain"});
    const Scenario sc(ctx.seed);
    for (const double hys : {1.0, 3.0, 6.0}) {
      for (const double ttt_ms : {100.0, 324.0, 640.0}) {
        sim::Simulator simr;
        ran::MobilityConfig cfg;
        cfg.speed_mps = 2.2;
        cfg.a3.hysteresis_db = hys;
        cfg.a3.time_to_trigger = sim::from_millis(ttt_ms);
        ran::HandoffEngine engine(&simr, &sc.deployment(), cfg,
                                  sim::Rng(ctx.seed).fork("tune"));
        engine.start(geo::make_survey_route(sc.campus(), 80.0));
        simr.run_until(30 * sim::kMinute);
        std::size_t good = 0, counted = 0;
        for (const auto& r : engine.records()) {
          if (!r.after_recorded) continue;
          ++counted;
          good += (r.quality_after_db - r.quality_before_db) >= 3.0;
        }
        t.add_row({TextTable::num(hys, 0), TextTable::num(ttt_ms, 0),
                   std::to_string(engine.records().size()),
                   counted ? TextTable::pct(static_cast<double>(good) /
                                            counted)
                           : "-"});
      }
    }
    t.print(*ctx.out);
    *ctx.out << "the ISP's 3 dB / 324 ms setting trades hand-off count "
                "against the ~25% that degrade quality (Fig. 5)\n\n";
  }
};

class MultipathExperiment final : public Experiment {
 public:
  std::string name() const override { return "ext_multipath"; }
  std::string paper_ref() const override {
    return "Sec. 6.3 / Sec. 8 (4G/5G coexistence as an MPTCP use case)";
  }
  std::string description() const override {
    return "MPTCP-style 4G+5G striping: aggregate throughput and hand-off "
           "outage masking";
  }

  void run(const ExperimentContext& ctx) override {
    // (a) Clean aggregation: 200 MB over 5G alone vs 5G+4G striped.
    const auto single_time = [&](sim::Time outage_start,
                                 sim::Time outage_len) {
      sim::Simulator simr;
      bool blocked = false;
      TestbedOptions opt;
      opt.cross_traffic = false;
      opt.ran_blocked_fn = [&blocked] { return blocked; };
      Testbed bed(&simr, opt, ctx.seed);
      app::TcpSession s(&simr, &bed.path(), &bed.fanout(),
                        tcp::TcpConfig{.algo = tcp::CcAlgo::kBbr});
      sim::Time done = 0;
      s.sender().send_bytes(200 << 20, [&] { done = simr.now(); });
      if (outage_len > 0) {
        simr.schedule_at(outage_start, [&blocked] { blocked = true; });
        simr.schedule_at(outage_start + outage_len,
                         [&blocked] { blocked = false; });
      }
      simr.run_until(120 * kSecond);
      return sim::to_seconds(done);
    };
    const auto multi = [&](sim::Time outage_start, sim::Time outage_len) {
      sim::Simulator simr;
      bool blocked = false;
      TestbedOptions nr_opt;
      nr_opt.cross_traffic = false;
      nr_opt.ran_blocked_fn = [&blocked] { return blocked; };
      Testbed nr_bed(&simr, nr_opt, ctx.seed);
      TestbedOptions lte_opt;
      lte_opt.rat = radio::Rat::kLte;
      lte_opt.cross_traffic = false;
      Testbed lte_bed(&simr, lte_opt, ctx.seed + 1);
      app::MultipathTransfer::Config mcfg;
      mcfg.transport.algo = tcp::CcAlgo::kBbr;
      app::MultipathTransfer mp(&simr, &nr_bed.path(), &nr_bed.fanout(),
                                &lte_bed.path(), &lte_bed.fanout(), mcfg);
      sim::Time done = 0;
      mp.transfer(200 << 20, [&] { done = simr.now(); });
      if (outage_len > 0) {
        simr.schedule_at(outage_start, [&blocked] { blocked = true; });
        simr.schedule_at(outage_start + outage_len,
                         [&blocked] { blocked = false; });
      }
      simr.run_until(120 * kSecond);
      return std::make_tuple(sim::to_seconds(done), mp.bytes_via_a(),
                             mp.bytes_via_b());
    };

    TextTable t("Extension — MPTCP-style 4G+5G striping (200 MB transfer)",
                {"scenario", "5G only (s)", "5G+4G (s)", "split 5G/4G"});
    {
      const double single = single_time(0, 0);
      const auto [both, via5, via4] = multi(0, 0);
      t.add_row({"clean", TextTable::num(single, 1),
                 TextTable::num(both, 1),
                 TextTable::num(static_cast<double>(via5) / (1 << 20), 0) +
                     " / " +
                     TextTable::num(static_cast<double>(via4) / (1 << 20), 0) +
                     " MB"});
    }
    {
      // A 2 s mid-transfer 5G outage (a rough stand-in for a hand-off
      // storm / coverage gap).
      const double single = single_time(2 * kSecond, 2 * kSecond);
      const auto [both, via5, via4] = multi(2 * kSecond, 2 * kSecond);
      t.add_row({"2 s 5G outage", TextTable::num(single, 1),
                 TextTable::num(both, 1),
                 TextTable::num(static_cast<double>(via5) / (1 << 20), 0) +
                     " / " +
                     TextTable::num(static_cast<double>(via4) / (1 << 20), 0) +
                     " MB"});
    }
    t.print(*ctx.out);
  }
};

class AbrVideoExperiment final : public Experiment {
 public:
  std::string name() const override { return "ext_abr_video"; }
  std::string paper_ref() const override {
    return "Sec. 5.2 (codec/transport coordination, ref [96])";
  }
  std::string description() const override {
    return "Adaptive bit-rate telephony: a 5.7K call on an uplink that "
           "cannot carry it, with and without resolution adaptation";
  }

  void run(const ExperimentContext& ctx) override {
    TextTable t("Extension — ABR on a 4G uplink (5.7K dynamic call, 30 s)",
                {"codec", "p90 frame delay (s)", "freezes", "downshifts",
                 "frames reduced"});
    for (const bool abr : {false, true}) {
      sim::Simulator simr;
      TestbedOptions opt;
      opt.rat = radio::Rat::kLte;
      opt.direction = Direction::kUplink;
      opt.cross_traffic = false;
      Testbed bed(&simr, opt, ctx.seed);
      app::VideoConfig cfg;
      cfg.resolution = app::Resolution::k5p7K;
      cfg.dynamic_scene = true;
      cfg.adaptive_bitrate = abr;
      cfg.transport.algo = tcp::CcAlgo::kBbr;
      app::VideoTelephony call(&simr, &bed.path(), &bed.fanout(), cfg,
                               sim::Rng(ctx.seed).fork("abr"));
      call.start(30 * kSecond);
      simr.run_until(120 * kSecond);
      const app::VideoStats s = call.stats();
      t.add_row({abr ? "adaptive" : "fixed 5.7K",
                 TextTable::num(s.frame_delay_s.empty()
                                    ? 0
                                    : s.frame_delay_s.quantile(0.9),
                                2),
                 std::to_string(s.freeze_events),
                 std::to_string(s.downshifts),
                 std::to_string(s.frames_at_reduced_res)});
    }
    t.print(*ctx.out);
  }
};

class DensificationExperiment final : public Experiment {
 public:
  std::string name() const override { return "ext_densification"; }
  std::string paper_ref() const override {
    return "Sec. 8 (holes can be eliminated as gNB density increases)";
  }
  std::string description() const override {
    return "Coverage holes vs gNB count on the same campus";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    const geo::CampusMap campus =
        geo::make_campus(sim::Rng(ctx.seed).fork("campus"));
    TextTable t("Extension — densifying the 5G deployment",
                {"gNB sites", "NR cells", "coverage holes", "mean RSRP"});
    for (const int sites : {3, 6, 9, 13}) {
      const ran::Deployment dep = ran::make_deployment(
          &campus, sim::Rng(ctx.seed).fork("deployment"), sites);
      sim::Rng rng = sim::Rng(ctx.seed).fork("dense-sample");
      measure::RunningStats rsrp;
      int holes = 0;
      const int n = 1500;
      for (int i = 0; i < n; ++i) {
        const geo::Point p = campus.random_outdoor_point(rng);
        const auto m = dep.best(radio::Rat::kNr, p);
        rsrp.add(m.rsrp_dbm);
        holes += !m.in_coverage();
      }
      t.add_row({std::to_string(sites),
                 std::to_string(dep.cells(radio::Rat::kNr).size()),
                 TextTable::pct(static_cast<double>(holes) / n),
                 TextTable::num(rsrp.mean(), 1)});
      ctx.metric_point("hole_fraction_vs_sites", sites,
                       static_cast<double>(holes) / n, "fraction");
    }
    t.print(*ctx.out);
    *ctx.out << "the stock 6-site deployment reproduces the paper's 8% "
                "holes; doubling the sites pushes holes toward the 4G "
                "level\n\n";
  }
};

class CellLoadExperiment final : public Experiment {
 public:
  std::string name() const override { return "ext_cell_load"; }
  std::string paper_ref() const override {
    return "Sec. 4.1 (PRB sharing: why 4G day/night differ and 5G does not)";
  }
  std::string description() const override {
    return "Per-user bit-rate vs competing users on one cell";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    TextTable t("Extension — PRB contention on one cell",
                {"competing users", "4G share", "4G rate (Mbps)",
                 "5G share", "5G rate (Mbps)"});
    sim::Rng rng = sim::Rng(ctx.seed).fork("load");
    for (const int users : {0, 1, 2, 4, 8}) {
      const ran::PrbScheduler lte_sched(radio::lte1800(), users);
      const ran::PrbScheduler nr_sched(radio::nr3500(), users);
      measure::RunningStats lte_share, nr_share;
      for (int i = 0; i < 500; ++i) {
        lte_share.add(lte_sched.grant_fraction(rng));
        nr_share.add(nr_sched.grant_fraction(rng));
      }
      // At a good operating point (25 dB SINR).
      const double lte_rate =
          radio::dl_bitrate_bps(radio::lte1800(), 25.0, lte_share.mean());
      const double nr_rate =
          radio::dl_bitrate_bps(radio::nr3500(), 25.0, nr_share.mean());
      t.add_row({std::to_string(users), TextTable::pct(lte_share.mean()),
                 TextTable::num(lte_rate / 1e6, 0),
                 TextTable::pct(nr_share.mean()),
                 TextTable::num(nr_rate / 1e6, 0)});
      ctx.metric_point("lte_rate_vs_users", users, lte_rate / 1e6, "Mbps");
      ctx.metric_point("nr_rate_vs_users", users, nr_rate / 1e6, "Mbps");
    }
    t.print(*ctx.out);
    *ctx.out << "the paper's daytime 4G baseline (130 Mbps) matches ~1 "
                "competing user; its 5G network was effectively empty\n\n";
  }
};

}  // namespace

void register_extension_experiments() {
  register_experiment<AqmExperiment>();
  register_experiment<MecExperiment>();
  register_experiment<FastStartExperiment>();
  register_experiment<SaEnergyExperiment>();
  register_experiment<MicroCellExperiment>();
  register_experiment<HoTuningExperiment>();
  register_experiment<MultipathExperiment>();
  register_experiment<AbrVideoExperiment>();
  register_experiment<DensificationExperiment>();
  register_experiment<CellLoadExperiment>();
}

}  // namespace fiveg::core

// Hand-off experiments: Fig. 4 (RSRQ evolution around a hand-off), Fig. 5
// (RSRQ gap CDF), Fig. 6 (hand-off latency CDFs), Fig. 10 (HARQ
// retransmission distribution) and Fig. 12 (TCP throughput drop across
// hand-offs).
#include <map>
#include <ostream>

#include "app/iperf.h"
#include "core/experiment.h"
#include "core/paper.h"
#include "core/scenario.h"
#include "geo/route.h"
#include "measure/cdf.h"
#include "measure/plot.h"
#include "measure/table.h"
#include "ran/handoff.h"
#include "ran/harq.h"

namespace fiveg::core {
namespace {

using measure::TextTable;
using ran::HandoffType;

// Runs the mobility engine over several long survey walks and pools the
// hand-off records (the paper pools 407 events over ~80 minutes).
std::vector<ran::HandoffRecord> collect_handoffs(std::uint64_t seed,
                                                 int walks,
                                                 measure::KpiLogger* log) {
  std::vector<ran::HandoffRecord> all;
  for (int w = 0; w < walks; ++w) {
    const Scenario sc(seed + w);
    sim::Simulator simr;
    ran::MobilityConfig cfg;
    cfg.speed_mps = 1.5 + 0.7 * w;  // 3-10 km/h, like the paper
    ran::HandoffEngine engine(&simr, &sc.deployment(), cfg,
                              sim::Rng(seed).fork("ho" + std::to_string(w)),
                              w == 0 ? log : nullptr);
    engine.start(geo::make_survey_route(sc.campus(), 70.0));
    simr.run_until(40 * sim::kMinute);
    all.insert(all.end(), engine.records().begin(), engine.records().end());
  }
  return all;
}

class Fig4And5Experiment final : public Experiment {
 public:
  std::string name() const override { return "fig4_5_ho_quality"; }
  std::string paper_ref() const override { return "Figures 4 and 5"; }
  std::string description() const override {
    return "Serving/neighbour RSRQ around hand-offs; only ~75% of hand-offs "
           "actually improve link quality";
  }

  void run(const ExperimentContext& ctx) override {
    measure::KpiLogger log;
    const auto records = collect_handoffs(ctx.seed, 4, &log);

    // Fig. 4: the RSRQ trace around the first 5G-5G hand-off of walk 0.
    const auto ho_events = log.events_of_type("HO_START");
    sim::Time t0 = -1;
    for (const auto& e : ho_events) {
      if (e.detail.rfind("5G-5G", 0) == 0) {
        t0 = e.at;
        break;
      }
    }
    const auto serving_series = log.find("nr_serving_rsrq_db");
    const auto neighbor_series = log.find("nr_neighbor_rsrq_db");
    if (t0 >= 0 && serving_series && neighbor_series) {
      TextTable t("Fig. 4 — RSRQ around a 5G-5G hand-off (trigger at 0 s)",
                  {"t (s)", "serving RSRQ (dB)", "best neighbour RSRQ (dB)"});
      const measure::TimeSeries& serving = serving_series->get();
      const measure::TimeSeries& neighbor = neighbor_series->get();
      for (sim::Time dt = -6 * sim::kSecond; dt <= 6 * sim::kSecond;
           dt += sim::kSecond) {
        const auto s = serving.summarize(t0 + dt, t0 + dt + sim::kSecond);
        const auto n = neighbor.summarize(t0 + dt, t0 + dt + sim::kSecond);
        t.add_row({TextTable::num(sim::to_seconds(dt), 0),
                   TextTable::num(s.mean(), 1), TextTable::num(n.mean(), 1)});
      }
      t.print(*ctx.out);
    }

    // Fig. 5: CDF of the RSRQ gap (after - before) per hand-off type.
    std::map<HandoffType, measure::Cdf> gaps;
    for (const auto& r : records) {
      if (r.after_recorded) {
        gaps[r.type].add(r.quality_after_db - r.quality_before_db);
      }
    }
    TextTable t5("Fig. 5 — RSRQ gap before/after hand-off",
                 {"type", "n", "median gap (dB)", ">= 3 dB gain",
                  "paper (all types avg)"});
    std::size_t total = 0, good = 0;
    for (auto& [type, cdf] : gaps) {
      if (cdf.empty()) continue;
      const double frac_good = 1.0 - cdf.fraction_below(3.0);
      total += cdf.count();
      good += static_cast<std::size_t>(frac_good * cdf.count());
      t5.add_row({ran::to_string(type), std::to_string(cdf.count()),
                  TextTable::num(cdf.quantile(0.5), 1),
                  TextTable::pct(frac_good),
                  TextTable::pct(paper::kHoGoodFraction)});
    }
    if (total > 0) {
      const double good_frac = static_cast<double>(good) / total;
      t5.add_row({"all", std::to_string(total), "",
                  TextTable::pct(good_frac),
                  TextTable::pct(paper::kHoGoodFraction)});
      ctx.metric("ho_good_fraction", good_frac, "fraction");
      ctx.metric("ho_count", static_cast<double>(total), "count");
    }
    t5.print(*ctx.out);
  }
};

class Fig6Experiment final : public Experiment {
 public:
  std::string name() const override { return "fig6_ho_latency"; }
  std::string paper_ref() const override { return "Figure 6"; }
  std::string description() const override {
    return "Hand-off latency: NSA makes 5G-5G hand-offs 3.6x slower than "
           "4G-4G";
  }

  void run(const ExperimentContext& ctx) override {
    const auto records = collect_handoffs(ctx.seed, 4, nullptr);
    std::map<HandoffType, measure::Cdf> latency;
    for (const auto& r : records) {
      latency[r.type].add(sim::to_millis(r.latency));
    }

    TextTable t("Fig. 6 — hand-off latency",
                {"type", "n", "mean (ms)", "p10 (ms)", "p90 (ms)",
                 "paper mean (ms)"});
    const auto paper_mean = [](HandoffType type) {
      switch (type) {
        case HandoffType::k4G4G:
          return paper::kHoLatency44Ms;
        case HandoffType::k5G5G:
          return paper::kHoLatency55Ms;
        case HandoffType::k4G5G:
          return paper::kHoLatency45Ms;
        default:
          return 0.0;
      }
    };
    for (auto& [type, cdf] : latency) {
      if (cdf.empty()) continue;
      const double paper_ms = paper_mean(type);
      t.add_row({ran::to_string(type), std::to_string(cdf.count()),
                 TextTable::num(cdf.mean(), 1),
                 TextTable::num(cdf.quantile(0.1), 1),
                 TextTable::num(cdf.quantile(0.9), 1),
                 paper_ms > 0 ? TextTable::num(paper_ms, 1) : "-"});
      ctx.metric(std::string("ho_latency_") + ran::to_string(type),
                 cdf.mean(), "ms");
    }
    t.print(*ctx.out);

    if (!latency[HandoffType::k5G5G].empty()) {
      measure::PlotOptions popt;
      popt.title = "Fig. 6 — 5G-5G hand-off latency CDF (ms)";
      popt.x_label = "ms";
      *ctx.out << measure::cdf_chart(latency[HandoffType::k5G5G], popt)
               << "\n";
    }
  }
};

class Fig10Experiment final : public Experiment {
 public:
  std::string name() const override { return "fig10_harq_retx"; }
  std::string paper_ref() const override { return "Figure 10"; }
  std::string description() const override {
    return "HARQ retransmission distribution: the RAN hides its losses";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    sim::Rng rng = sim::Rng(ctx.seed).fork("harq");
    const ran::HarqProcess lte(ran::lte_harq());
    const ran::HarqProcess nr(ran::nr_harq());

    // Sample a million transport blocks per RAT like a day of XCAL logs.
    const int blocks = 1'000'000;
    std::array<int, 6> lte_counts{}, nr_counts{};
    for (int i = 0; i < blocks; ++i) {
      lte_counts[std::min(lte.sample_attempts(rng) - 1, 5)]++;
      nr_counts[std::min(nr.sample_attempts(rng) - 1, 5)]++;
    }
    TextTable t("Fig. 10 — packets needing >= n retransmissions",
                {"n", "4G measured", "4G model", "5G measured", "5G model"});
    for (int n = 1; n <= 4; ++n) {
      int lte_ge = 0, nr_ge = 0;
      for (int k = n; k <= 5; ++k) {
        lte_ge += lte_counts[static_cast<std::size_t>(k)];
        nr_ge += nr_counts[static_cast<std::size_t>(k)];
      }
      t.add_row({std::to_string(n),
                 TextTable::pct(static_cast<double>(lte_ge) / blocks),
                 TextTable::pct(lte.attempt_probability(n + 1)),
                 TextTable::pct(static_cast<double>(nr_ge) / blocks),
                 TextTable::pct(nr.attempt_probability(n + 1))});
      ctx.metric_point("lte_retx_ge", n,
                       static_cast<double>(lte_ge) / blocks, "fraction");
      ctx.metric_point("nr_retx_ge", n,
                       static_cast<double>(nr_ge) / blocks, "fraction");
    }
    t.print(*ctx.out);
    *ctx.out << "residual loss after 32 attempts: 4G "
             << lte.residual_loss() << ", 5G " << nr.residual_loss()
             << " (paper: ~2.3e-10 even on a 50%-loss link)\n\n";
  }
};

class Fig12Experiment final : public Experiment {
 public:
  std::string name() const override { return "fig12_ho_throughput"; }
  std::string paper_ref() const override { return "Figure 12"; }
  std::string description() const override {
    return "TCP throughput drop across hand-offs, by type";
  }

  void run(const ExperimentContext& ctx) override {
    // A BBR bulk flow rides the path while the UE walks; hand-off
    // interruptions stall the RAN hop. Throughput is measured over 10 ms
    // windows right before vs right after each hand-off.
    std::map<HandoffType, measure::Cdf> drops;
    for (int w = 0; w < 2; ++w) {
      const Scenario sc(ctx.seed + w);
      sim::Simulator simr;
      ran::MobilityConfig mcfg;
      mcfg.speed_mps = 2.0 + w;
      ran::HandoffEngine engine(&simr, &sc.deployment(), mcfg,
                                sim::Rng(ctx.seed).fork("w" + std::to_string(w)));
      engine.start(geo::make_survey_route(sc.campus(), 70.0));

      TestbedOptions opt;
      opt.rat = radio::Rat::kNr;
      opt.cross_traffic = false;
      // Mobile cell-edge rate, not the stationary 880 Mbps baseline (also
      // keeps the packet count of a multi-minute walk tractable).
      opt.ran_rate_bps = 100e6;
      opt.ran_blocked_fn = [&engine, &simr] {
        return engine.data_interrupted(simr.now());
      };
      Testbed bed(&simr, opt, ctx.seed + 100 + w);
      app::TcpSession session(&simr, &bed.path(), &bed.fanout(),
                              tcp::TcpConfig{.algo = tcp::CcAlgo::kBbr});
      session.sender().start_bulk();
      simr.run_until(5 * sim::kMinute);

      for (const auto& r : engine.records()) {
        // The paper measures throughput in small windows immediately
        // before vs immediately after the hand-off fires: the "after"
        // window spans the control-plane interruption plus the
        // transport's recovery — what a user's flow actually experiences.
        const sim::Time w = 500 * sim::kMillisecond;
        const double before =
            session.receiver().mean_goodput_bps(r.trigger_at - w,
                                                r.trigger_at);
        const double after = session.receiver().mean_goodput_bps(
            r.trigger_at, r.trigger_at + w);
        if (before > 1e6) {
          drops[r.type].add(std::max(0.0, 1.0 - after / before));
        }
      }
    }

    TextTable t("Fig. 12 — normalised throughput drop across hand-off",
                {"type", "n", "mean drop", "paper"});
    const auto paper_drop = [](HandoffType type) -> double {
      switch (type) {
        case HandoffType::k5G5G:
          return paper::kHoDrop55;
        case HandoffType::k5G4G:
          return paper::kHoDrop54;
        case HandoffType::k4G4G:
          return paper::kHoDrop44;
        default:
          return -1;
      }
    };
    for (auto& [type, cdf] : drops) {
      if (cdf.empty()) continue;
      const double p = paper_drop(type);
      t.add_row({ran::to_string(type), std::to_string(cdf.count()),
                 TextTable::pct(cdf.mean()),
                 p >= 0 ? TextTable::pct(p) : "-"});
      ctx.metric(std::string("ho_drop_") + ran::to_string(type), cdf.mean(),
                 "fraction");
    }
    t.print(*ctx.out);
  }
};

class EventMixExperiment final : public Experiment {
 public:
  std::string name() const override { return "ho_event_mix"; }
  std::string paper_ref() const override {
    return "Sec. 3.4 / Table 5 (measurement-report event mix)";
  }
  std::string description() const override {
    return "Share of A1/A2/A3/A5/B1 measurement reports along a survey "
           "walk (the paper: 21.98/0.18/67.25/9.19/1.40%)";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    const Scenario sc(ctx.seed);
    const auto& dep = sc.deployment();
    const geo::Route route = geo::make_survey_route(sc.campus(), 70.0);

    // RSRQ-threshold configurations in the spirit of typical ISP settings.
    ran::ThresholdDetector a1(ran::ThresholdDetector::Direction::kAbove,
                              -11.0);
    ran::ThresholdDetector a2(ran::ThresholdDetector::Direction::kBelow,
                              -24.0);
    ran::A3Detector a3;
    ran::A5Detector a5(-17.5, -16.0);
    ran::ThresholdDetector b1(ran::ThresholdDetector::Direction::kAbove,
                              -8.2);  // inter-RAT (LTE) quality

    std::uint64_t n_a1 = 0, n_a2 = 0, n_a3 = 0, n_a5 = 0, n_b1 = 0;
    const double speed = 1.8;  // m/s
    int serving_pci = -1;  // sticky, like a real attached UE
    for (double d = 0; d < route.length_m(); d += speed * 0.1) {
      const auto at = static_cast<sim::Time>(d / speed * sim::kSecond);
      const geo::Point p = route.position_at(d);
      const auto nr = dep.measure(radio::Rat::kNr, p);
      const ran::CellMeasurement* serving = nullptr;
      const ran::CellMeasurement* neighbor = nullptr;
      for (const auto& m : nr) {
        if (m.cell->pci == serving_pci) serving = &m;
      }
      if (serving == nullptr) {  // initial camp / reselection after loss
        for (const auto& m : nr) {
          if (serving == nullptr || m.rsrp_dbm > serving->rsrp_dbm) {
            serving = &m;
          }
        }
        serving_pci = serving->cell->pci;
      }
      for (const auto& m : nr) {
        if (m.cell->pci == serving_pci) continue;
        if (neighbor == nullptr || m.rsrq_db > neighbor->rsrq_db) {
          neighbor = &m;
        }
      }
      if (neighbor == nullptr) continue;
      const auto lte = dep.best(radio::Rat::kLte, p);
      n_a1 += a1.update(at, serving->rsrq_db);
      n_a2 += a2.update(at, serving->rsrq_db);
      if (a3.update(at, serving->rsrq_db, neighbor->rsrq_db)) {
        ++n_a3;
        serving_pci = neighbor->cell->pci;  // the gNB executes the A3 HO
      }
      n_a5 += a5.update(at, serving->rsrq_db, neighbor->rsrq_db);
      n_b1 += b1.update(at, lte.rsrq_db);
    }

    const double total =
        static_cast<double>(n_a1 + n_a2 + n_a3 + n_a5 + n_b1);
    TextTable t("Measurement-report event mix over the survey walk",
                {"event", "count", "measured share", "paper share"});
    const auto row = [&](const char* name, std::uint64_t n, double paper) {
      t.add_row({name, std::to_string(n),
                 total > 0 ? TextTable::pct(n / total) : "-",
                 TextTable::pct(paper)});
      if (total > 0) {
        ctx.metric(std::string("share_") + name, n / total, "fraction");
      }
    };
    row("A1", n_a1, 0.2198);
    row("A2", n_a2, 0.0018);
    row("A3", n_a3, 0.6725);
    row("A5", n_a5, 0.0919);
    row("B1", n_b1, 0.0140);
    t.print(*ctx.out);
    *ctx.out << "the gNB acts only on A3 (the ISP's configuration); all "
                "five event types are implemented in "
                "ran/measurement_events\n\n";
  }
};

}  // namespace

void register_handoff_experiments() {
  register_experiment<Fig4And5Experiment>();
  register_experiment<Fig6Experiment>();
  register_experiment<Fig10Experiment>();
  register_experiment<Fig12Experiment>();
  register_experiment<EventMixExperiment>();
}

}  // namespace fiveg::core

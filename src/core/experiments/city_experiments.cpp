// City-scale experiments: the paper's campus findings extrapolated to a
// dense hex-grid NSA deployment with thousands of UEs. All per-UE state
// lives in one ran::UeCohort (structure-of-arrays), advanced by a single
// batched sweep event per sample period; KPIs aggregate into cohort-level
// digests and the summary tables below — never per-UE series.
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/scenario.h"
#include "geo/route.h"
#include "measure/table.h"
#include "ran/ue_cohort.h"
#include "sim/parsim.h"

namespace fiveg::core {
namespace {

using measure::TextTable;
using ran::HandoffType;

struct CityRunSpec {
  std::string cohort_name;
  CityConfig city;
  int n_ue = 100;
  double walk_frac = 0.10;   // 1.4 m/s waypoint walkers
  double drive_frac = 0.05;  // 11 m/s waypoint drivers
  sim::Time duration = 60 * sim::kSecond;
};

// Builds the city, populates one cohort (stationary majority + waypoint
// movers), runs it to `duration` and prints/records the aggregate KPIs.
void run_city(const ExperimentContext& ctx, const CityRunSpec& spec) {
  const CityScenario sc(ctx.seed, spec.city);
  const ran::Deployment& dep = sc.deployment();
  sim::Simulator simr;

  ran::CohortConfig ccfg;
  ccfg.name = spec.cohort_name;
  ran::UeCohort cohort(&dep, ccfg, sim::Rng(ctx.seed).fork("cohort"));

  sim::Rng place = sim::Rng(ctx.seed).fork("city_ues");
  const int n_walk = static_cast<int>(spec.n_ue * spec.walk_frac);
  const int n_drive = static_cast<int>(spec.n_ue * spec.drive_frac);
  for (int i = 0; i < n_walk; ++i) {
    cohort.add_route(geo::make_waypoint_route(sc.campus(), place, 6), 1.4);
  }
  for (int i = 0; i < n_drive; ++i) {
    cohort.add_route(geo::make_waypoint_route(sc.campus(), place, 4), 11.0);
  }
  for (int i = n_walk + n_drive; i < spec.n_ue; ++i) {
    cohort.add_stationary(sc.campus().random_point(place));
  }

  cohort.start(&simr, spec.duration);
  simr.run_until(spec.duration);

  const ran::UeCohort::Stats& st = cohort.stats();
  const std::size_t n_lte = dep.cells(radio::Rat::kLte).size();
  const std::size_t n_nr = dep.cells(radio::Rat::kNr).size();

  // Final-sweep serving KPIs, aggregated across the cohort.
  const auto& lte = cohort.block(radio::Rat::kLte);
  const auto& nr = cohort.block(radio::Rat::kNr);
  double nr_rsrp_sum = 0, nr_sinr_sum = 0, lte_rsrp_sum = 0;
  std::size_t nr_attached = 0, lte_attached = 0;
  for (std::size_t u = 0; u < cohort.size(); ++u) {
    if (const int s = cohort.serving_cell(radio::Rat::kLte, u); s >= 0) {
      lte_rsrp_sum += lte.rsrp_dbm[u * n_lte + static_cast<std::size_t>(s)];
      ++lte_attached;
    }
    if (const int s = cohort.serving_cell(radio::Rat::kNr, u); s >= 0) {
      nr_rsrp_sum += nr.rsrp_dbm[u * n_nr + static_cast<std::size_t>(s)];
      nr_sinr_sum += nr.sinr_db[u * n_nr + static_cast<std::size_t>(s)];
      ++nr_attached;
    }
  }
  const double nr_frac =
      cohort.size() > 0
          ? static_cast<double>(nr_attached) / static_cast<double>(cohort.size())
          : 0.0;
  const double reuse_frac =
      st.rows_computed + st.rows_reused > 0
          ? static_cast<double>(st.rows_reused) /
                static_cast<double>(st.rows_computed + st.rows_reused)
          : 0.0;

  TextTable t("City cohort \"" + spec.cohort_name + "\" — aggregate KPIs",
              {"metric", "value"});
  t.add_row({"sites", std::to_string(dep.site_count(radio::Rat::kLte))});
  t.add_row({"cells (LTE + NR)",
             std::to_string(n_lte) + " + " + std::to_string(n_nr)});
  t.add_row({"UEs", std::to_string(cohort.size())});
  t.add_row({"sweeps", std::to_string(st.sweeps)});
  t.add_row({"rows computed", std::to_string(st.rows_computed)});
  t.add_row({"rows reused", std::to_string(st.rows_reused)});
  t.add_row({"row reuse", TextTable::pct(reuse_frac)});
  t.add_row({"A3 triggers", std::to_string(st.a3_triggers)});
  t.add_row({"hand-offs", std::to_string(st.handoffs)});
  t.add_row({"vertical hand-offs", std::to_string(st.vertical_handoffs)});
  t.add_row({"NR attached", TextTable::pct(nr_frac)});
  if (nr_attached > 0) {
    t.add_row({"serving NR RSRP mean (dBm)",
               TextTable::num(nr_rsrp_sum / nr_attached, 1)});
    t.add_row({"serving NR SINR mean (dB)",
               TextTable::num(nr_sinr_sum / nr_attached, 1)});
  }
  if (lte_attached > 0) {
    t.add_row({"serving LTE RSRP mean (dBm)",
               TextTable::num(lte_rsrp_sum / lte_attached, 1)});
  }
  t.print(*ctx.out);

  ctx.metric("ue_count", static_cast<double>(cohort.size()), "count");
  ctx.metric("sweeps", static_cast<double>(st.sweeps), "count");
  ctx.metric("row_reuse_frac", reuse_frac, "fraction");
  ctx.metric("a3_triggers", static_cast<double>(st.a3_triggers), "count");
  ctx.metric("handoffs_total", static_cast<double>(st.handoffs), "count");
  ctx.metric("vertical_handoffs", static_cast<double>(st.vertical_handoffs),
             "count");
  ctx.metric("nr_attached_frac", nr_frac, "fraction");
  if (nr_attached > 0) {
    ctx.metric("serving_nr_rsrp_mean_dbm", nr_rsrp_sum / nr_attached, "dBm");
    ctx.metric("serving_nr_sinr_mean_db", nr_sinr_sum / nr_attached, "dB");
  }
  if (lte_attached > 0) {
    ctx.metric("serving_lte_rsrp_mean_dbm", lte_rsrp_sum / lte_attached,
               "dBm");
  }
}

struct CityParSpec {
  std::string prefix;
  PartitionedCityConfig part;
  int ue_per_district = 100;
  double walk_frac = 0.10;
  double drive_frac = 0.05;
  sim::Time duration = 60 * sim::kSecond;
};

// The partitioned city: one radio-isolated district per ParSim lane, each
// with its own hex grid, campus and domain-pinned cohort, swept in
// parallel lock-step windows. Every per-district stream is a named fork
// of the experiment seed and all KPI aggregation walks districts in index
// order, so stdout/KPIs/traces are byte-identical for any --sim-threads.
void run_city_partitioned(const ExperimentContext& ctx,
                          const CityParSpec& spec) {
  sim::ParSimConfig pcfg;
  pcfg.lanes = spec.part.districts;
  pcfg.threads = ctx.sim_threads;
  pcfg.lookahead = city_partition_lookahead(spec.part);
  sim::ParSim par(pcfg);

  struct District {
    std::unique_ptr<CityScenario> sc;
    std::unique_ptr<ran::UeCohort> cohort;
  };
  std::vector<District> districts(
      static_cast<std::size_t>(spec.part.districts));
  for (int k = 0; k < spec.part.districts; ++k) {
    // Construction happens under the lane scope: the cohort's metric
    // handles and the district's fault stream must live in lane k's
    // registry/runtime, never the experiment's.
    par.with_lane(k, [&, k] {
      District& d = districts[static_cast<std::size_t>(k)];
      const std::string tag = "district" + std::to_string(k);
      d.sc = std::make_unique<CityScenario>(
          sim::Rng(ctx.seed).fork(tag).seed(), spec.part.district);
      ran::CohortConfig ccfg;
      ccfg.name = spec.prefix + ".d" + std::to_string(k);
      ccfg.domain = k;
      d.cohort = std::make_unique<ran::UeCohort>(
          &d.sc->deployment(), ccfg,
          sim::Rng(ctx.seed).fork(tag + ".cohort"));
      sim::Rng place = sim::Rng(ctx.seed).fork(tag + ".ues");
      const int n_walk =
          static_cast<int>(spec.ue_per_district * spec.walk_frac);
      const int n_drive =
          static_cast<int>(spec.ue_per_district * spec.drive_frac);
      for (int i = 0; i < n_walk; ++i) {
        d.cohort->add_route(geo::make_waypoint_route(d.sc->campus(), place, 6),
                            1.4);
      }
      for (int i = 0; i < n_drive; ++i) {
        d.cohort->add_route(geo::make_waypoint_route(d.sc->campus(), place, 4),
                            11.0);
      }
      for (int i = n_walk + n_drive; i < spec.ue_per_district; ++i) {
        d.cohort->add_stationary(d.sc->campus().random_point(place));
      }
      d.cohort->start(&par.lane(k), spec.duration);
    });
  }

  par.run_until(spec.duration);
  par.finish();

  // Aggregate KPIs across districts in index order (canonical merge).
  std::uint64_t sweeps = 0, rows_computed = 0, rows_reused = 0;
  std::uint64_t a3 = 0, handoffs = 0, vertical = 0;
  double nr_rsrp_sum = 0, nr_sinr_sum = 0, lte_rsrp_sum = 0;
  std::size_t nr_attached = 0, lte_attached = 0, total_ues = 0;
  for (const District& d : districts) {
    const ran::UeCohort& cohort = *d.cohort;
    const ran::UeCohort::Stats& st = cohort.stats();
    sweeps += st.sweeps;
    rows_computed += st.rows_computed;
    rows_reused += st.rows_reused;
    a3 += st.a3_triggers;
    handoffs += st.handoffs;
    vertical += st.vertical_handoffs;
    total_ues += cohort.size();
    const std::size_t n_lte =
        d.sc->deployment().cells(radio::Rat::kLte).size();
    const std::size_t n_nr = d.sc->deployment().cells(radio::Rat::kNr).size();
    const auto& lte = cohort.block(radio::Rat::kLte);
    const auto& nr = cohort.block(radio::Rat::kNr);
    for (std::size_t u = 0; u < cohort.size(); ++u) {
      if (const int s = cohort.serving_cell(radio::Rat::kLte, u); s >= 0) {
        lte_rsrp_sum += lte.rsrp_dbm[u * n_lte + static_cast<std::size_t>(s)];
        ++lte_attached;
      }
      if (const int s = cohort.serving_cell(radio::Rat::kNr, u); s >= 0) {
        nr_rsrp_sum += nr.rsrp_dbm[u * n_nr + static_cast<std::size_t>(s)];
        nr_sinr_sum += nr.sinr_db[u * n_nr + static_cast<std::size_t>(s)];
        ++nr_attached;
      }
    }
  }
  const double nr_frac =
      total_ues > 0
          ? static_cast<double>(nr_attached) / static_cast<double>(total_ues)
          : 0.0;
  const double reuse_frac =
      rows_computed + rows_reused > 0
          ? static_cast<double>(rows_reused) /
                static_cast<double>(rows_computed + rows_reused)
          : 0.0;
  const ran::Deployment& dep0 = districts.front().sc->deployment();

  // Note: nothing below may depend on the thread count — stdout is part
  // of the determinism contract. windows() and the lookahead are pure
  // functions of the event structure; effective_threads() is not printed.
  TextTable t("Partitioned city \"" + spec.prefix + "\" — aggregate KPIs",
              {"metric", "value"});
  t.add_row({"districts (ParSim lanes)",
             std::to_string(spec.part.districts)});
  t.add_row({"sites per district",
             std::to_string(dep0.site_count(radio::Rat::kLte))});
  t.add_row({"lookahead (us)",
             std::to_string(par.lookahead() / sim::kMicrosecond)});
  t.add_row({"lock-step windows", std::to_string(par.windows())});
  t.add_row({"UEs", std::to_string(total_ues)});
  t.add_row({"sweeps", std::to_string(sweeps)});
  t.add_row({"rows computed", std::to_string(rows_computed)});
  t.add_row({"rows reused", std::to_string(rows_reused)});
  t.add_row({"row reuse", TextTable::pct(reuse_frac)});
  t.add_row({"A3 triggers", std::to_string(a3)});
  t.add_row({"hand-offs", std::to_string(handoffs)});
  t.add_row({"vertical hand-offs", std::to_string(vertical)});
  t.add_row({"NR attached", TextTable::pct(nr_frac)});
  if (nr_attached > 0) {
    t.add_row({"serving NR RSRP mean (dBm)",
               TextTable::num(nr_rsrp_sum / nr_attached, 1)});
    t.add_row({"serving NR SINR mean (dB)",
               TextTable::num(nr_sinr_sum / nr_attached, 1)});
  }
  if (lte_attached > 0) {
    t.add_row({"serving LTE RSRP mean (dBm)",
               TextTable::num(lte_rsrp_sum / lte_attached, 1)});
  }
  t.print(*ctx.out);

  ctx.metric("districts", static_cast<double>(spec.part.districts), "count");
  ctx.metric("parsim_windows", static_cast<double>(par.windows()), "count");
  ctx.metric("ue_count", static_cast<double>(total_ues), "count");
  ctx.metric("sweeps", static_cast<double>(sweeps), "count");
  ctx.metric("row_reuse_frac", reuse_frac, "fraction");
  ctx.metric("a3_triggers", static_cast<double>(a3), "count");
  ctx.metric("handoffs_total", static_cast<double>(handoffs), "count");
  ctx.metric("vertical_handoffs", static_cast<double>(vertical), "count");
  ctx.metric("nr_attached_frac", nr_frac, "fraction");
  if (nr_attached > 0) {
    ctx.metric("serving_nr_rsrp_mean_dbm", nr_rsrp_sum / nr_attached, "dBm");
    ctx.metric("serving_nr_sinr_mean_db", nr_sinr_sum / nr_attached, "dB");
  }
  if (lte_attached > 0) {
    ctx.metric("serving_lte_rsrp_mean_dbm", lte_rsrp_sum / lte_attached,
               "dBm");
  }
}

class CityGridSmokeExperiment final : public Experiment {
 public:
  std::string name() const override { return "city_grid_smoke"; }
  std::string paper_ref() const override {
    return "Extension (Sec. 3 coverage, densified grid)";
  }
  std::string description() const override {
    return "Small hex-grid city cohort (7 sites, ~160 UEs) exercising the "
           "batched SoA UE core end to end";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    CityRunSpec spec;
    spec.cohort_name = "city_smoke";
    spec.city.width_m = 640.0;
    spec.city.height_m = 640.0;
    spec.city.grid.rings = 1;  // 7 sites
    spec.n_ue = 160;
    spec.duration = 20 * sim::kSecond;
    run_city(ctx, spec);
  }
};

class CityGrid1kExperiment final : public Experiment {
 public:
  std::string name() const override { return "city_grid_1k"; }
  std::string paper_ref() const override {
    return "Extension (Sec. 3 coverage, densified grid)";
  }
  std::string description() const override {
    return "1k-UE city: 19-site hex grid, 10% walkers + 5% drivers, "
           "cohort-sweep digest KPIs";
  }

  void run(const ExperimentContext& ctx) override {
    CityRunSpec spec;
    spec.cohort_name = "city_1k";
    spec.n_ue = 1000;
    run_city(ctx, spec);
  }
};

class CityGrid10kExperiment final : public Experiment {
 public:
  std::string name() const override { return "city_grid_10k"; }
  std::string paper_ref() const override {
    return "Extension (Sec. 3 coverage, densified grid)";
  }
  std::string description() const override {
    return "10k-UE city on the 19-site hex grid: the SoA cohort's row "
           "cache keeps the stationary majority amortised";
  }

  void run(const ExperimentContext& ctx) override {
    CityRunSpec spec;
    spec.cohort_name = "city_10k";
    spec.n_ue = 10000;
    spec.walk_frac = 0.035;
    spec.drive_frac = 0.015;
    run_city(ctx, spec);
  }
};

class CityParSmokeExperiment final : public Experiment {
 public:
  std::string name() const override { return "city_par_smoke"; }
  std::string paper_ref() const override {
    return "Extension (Sec. 3 coverage, partitioned metro)";
  }
  std::string description() const override {
    return "4-district partitioned city (~160 UEs) on the parallel "
           "lock-step core; byte-identical for any --sim-threads";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    CityParSpec spec;
    spec.prefix = "city_par";
    spec.part.districts = 4;
    spec.part.district.width_m = 640.0;
    spec.part.district.height_m = 640.0;
    spec.part.district.grid.rings = 1;  // 7 sites per district
    spec.ue_per_district = 40;
    spec.duration = 20 * sim::kSecond;
    run_city_partitioned(ctx, spec);
  }
};

class CityPar100kExperiment final : public Experiment {
 public:
  std::string name() const override { return "city_par_100k"; }
  std::string paper_ref() const override {
    return "Extension (Sec. 3 coverage, partitioned metro)";
  }
  std::string description() const override {
    return "100k-UE metro: 8 radio-isolated districts x 12.5k UEs on "
           "19-site grids, swept by the parallel lock-step core";
  }

  void run(const ExperimentContext& ctx) override {
    CityParSpec spec;
    spec.prefix = "city_100k";
    spec.part.districts = 8;
    spec.ue_per_district = 12500;
    spec.walk_frac = 0.035;
    spec.drive_frac = 0.015;
    run_city_partitioned(ctx, spec);
  }
};

}  // namespace

void register_city_experiments() {
  register_experiment<CityGridSmokeExperiment>();
  register_experiment<CityGrid1kExperiment>();
  register_experiment<CityGrid10kExperiment>();
  register_experiment<CityParSmokeExperiment>();
  register_experiment<CityPar100kExperiment>();
}

}  // namespace fiveg::core

// City-scale experiments: the paper's campus findings extrapolated to a
// dense hex-grid NSA deployment with thousands of UEs. All per-UE state
// lives in one ran::UeCohort (structure-of-arrays), advanced by a single
// batched sweep event per sample period; KPIs aggregate into cohort-level
// digests and the summary tables below — never per-UE series.
#include <ostream>
#include <string>

#include "core/experiment.h"
#include "core/scenario.h"
#include "geo/route.h"
#include "measure/table.h"
#include "ran/ue_cohort.h"

namespace fiveg::core {
namespace {

using measure::TextTable;
using ran::HandoffType;

struct CityRunSpec {
  std::string cohort_name;
  CityConfig city;
  int n_ue = 100;
  double walk_frac = 0.10;   // 1.4 m/s waypoint walkers
  double drive_frac = 0.05;  // 11 m/s waypoint drivers
  sim::Time duration = 60 * sim::kSecond;
};

// Builds the city, populates one cohort (stationary majority + waypoint
// movers), runs it to `duration` and prints/records the aggregate KPIs.
void run_city(const ExperimentContext& ctx, const CityRunSpec& spec) {
  const CityScenario sc(ctx.seed, spec.city);
  const ran::Deployment& dep = sc.deployment();
  sim::Simulator simr;

  ran::CohortConfig ccfg;
  ccfg.name = spec.cohort_name;
  ran::UeCohort cohort(&dep, ccfg, sim::Rng(ctx.seed).fork("cohort"));

  sim::Rng place = sim::Rng(ctx.seed).fork("city_ues");
  const int n_walk = static_cast<int>(spec.n_ue * spec.walk_frac);
  const int n_drive = static_cast<int>(spec.n_ue * spec.drive_frac);
  for (int i = 0; i < n_walk; ++i) {
    cohort.add_route(geo::make_waypoint_route(sc.campus(), place, 6), 1.4);
  }
  for (int i = 0; i < n_drive; ++i) {
    cohort.add_route(geo::make_waypoint_route(sc.campus(), place, 4), 11.0);
  }
  for (int i = n_walk + n_drive; i < spec.n_ue; ++i) {
    cohort.add_stationary(sc.campus().random_point(place));
  }

  cohort.start(&simr, spec.duration);
  simr.run_until(spec.duration);

  const ran::UeCohort::Stats& st = cohort.stats();
  const std::size_t n_lte = dep.cells(radio::Rat::kLte).size();
  const std::size_t n_nr = dep.cells(radio::Rat::kNr).size();

  // Final-sweep serving KPIs, aggregated across the cohort.
  const auto& lte = cohort.block(radio::Rat::kLte);
  const auto& nr = cohort.block(radio::Rat::kNr);
  double nr_rsrp_sum = 0, nr_sinr_sum = 0, lte_rsrp_sum = 0;
  std::size_t nr_attached = 0, lte_attached = 0;
  for (std::size_t u = 0; u < cohort.size(); ++u) {
    if (const int s = cohort.serving_cell(radio::Rat::kLte, u); s >= 0) {
      lte_rsrp_sum += lte.rsrp_dbm[u * n_lte + static_cast<std::size_t>(s)];
      ++lte_attached;
    }
    if (const int s = cohort.serving_cell(radio::Rat::kNr, u); s >= 0) {
      nr_rsrp_sum += nr.rsrp_dbm[u * n_nr + static_cast<std::size_t>(s)];
      nr_sinr_sum += nr.sinr_db[u * n_nr + static_cast<std::size_t>(s)];
      ++nr_attached;
    }
  }
  const double nr_frac =
      cohort.size() > 0
          ? static_cast<double>(nr_attached) / static_cast<double>(cohort.size())
          : 0.0;
  const double reuse_frac =
      st.rows_computed + st.rows_reused > 0
          ? static_cast<double>(st.rows_reused) /
                static_cast<double>(st.rows_computed + st.rows_reused)
          : 0.0;

  TextTable t("City cohort \"" + spec.cohort_name + "\" — aggregate KPIs",
              {"metric", "value"});
  t.add_row({"sites", std::to_string(dep.site_count(radio::Rat::kLte))});
  t.add_row({"cells (LTE + NR)",
             std::to_string(n_lte) + " + " + std::to_string(n_nr)});
  t.add_row({"UEs", std::to_string(cohort.size())});
  t.add_row({"sweeps", std::to_string(st.sweeps)});
  t.add_row({"rows computed", std::to_string(st.rows_computed)});
  t.add_row({"rows reused", std::to_string(st.rows_reused)});
  t.add_row({"row reuse", TextTable::pct(reuse_frac)});
  t.add_row({"A3 triggers", std::to_string(st.a3_triggers)});
  t.add_row({"hand-offs", std::to_string(st.handoffs)});
  t.add_row({"vertical hand-offs", std::to_string(st.vertical_handoffs)});
  t.add_row({"NR attached", TextTable::pct(nr_frac)});
  if (nr_attached > 0) {
    t.add_row({"serving NR RSRP mean (dBm)",
               TextTable::num(nr_rsrp_sum / nr_attached, 1)});
    t.add_row({"serving NR SINR mean (dB)",
               TextTable::num(nr_sinr_sum / nr_attached, 1)});
  }
  if (lte_attached > 0) {
    t.add_row({"serving LTE RSRP mean (dBm)",
               TextTable::num(lte_rsrp_sum / lte_attached, 1)});
  }
  t.print(*ctx.out);

  ctx.metric("ue_count", static_cast<double>(cohort.size()), "count");
  ctx.metric("sweeps", static_cast<double>(st.sweeps), "count");
  ctx.metric("row_reuse_frac", reuse_frac, "fraction");
  ctx.metric("a3_triggers", static_cast<double>(st.a3_triggers), "count");
  ctx.metric("handoffs_total", static_cast<double>(st.handoffs), "count");
  ctx.metric("vertical_handoffs", static_cast<double>(st.vertical_handoffs),
             "count");
  ctx.metric("nr_attached_frac", nr_frac, "fraction");
  if (nr_attached > 0) {
    ctx.metric("serving_nr_rsrp_mean_dbm", nr_rsrp_sum / nr_attached, "dBm");
    ctx.metric("serving_nr_sinr_mean_db", nr_sinr_sum / nr_attached, "dB");
  }
  if (lte_attached > 0) {
    ctx.metric("serving_lte_rsrp_mean_dbm", lte_rsrp_sum / lte_attached,
               "dBm");
  }
}

class CityGridSmokeExperiment final : public Experiment {
 public:
  std::string name() const override { return "city_grid_smoke"; }
  std::string paper_ref() const override {
    return "Extension (Sec. 3 coverage, densified grid)";
  }
  std::string description() const override {
    return "Small hex-grid city cohort (7 sites, ~160 UEs) exercising the "
           "batched SoA UE core end to end";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    CityRunSpec spec;
    spec.cohort_name = "city_smoke";
    spec.city.width_m = 640.0;
    spec.city.height_m = 640.0;
    spec.city.grid.rings = 1;  // 7 sites
    spec.n_ue = 160;
    spec.duration = 20 * sim::kSecond;
    run_city(ctx, spec);
  }
};

class CityGrid1kExperiment final : public Experiment {
 public:
  std::string name() const override { return "city_grid_1k"; }
  std::string paper_ref() const override {
    return "Extension (Sec. 3 coverage, densified grid)";
  }
  std::string description() const override {
    return "1k-UE city: 19-site hex grid, 10% walkers + 5% drivers, "
           "cohort-sweep digest KPIs";
  }

  void run(const ExperimentContext& ctx) override {
    CityRunSpec spec;
    spec.cohort_name = "city_1k";
    spec.n_ue = 1000;
    run_city(ctx, spec);
  }
};

class CityGrid10kExperiment final : public Experiment {
 public:
  std::string name() const override { return "city_grid_10k"; }
  std::string paper_ref() const override {
    return "Extension (Sec. 3 coverage, densified grid)";
  }
  std::string description() const override {
    return "10k-UE city on the 19-site hex grid: the SoA cohort's row "
           "cache keeps the stationary majority amortised";
  }

  void run(const ExperimentContext& ctx) override {
    CityRunSpec spec;
    spec.cohort_name = "city_10k";
    spec.n_ue = 10000;
    spec.walk_frac = 0.035;
    spec.drive_frac = 0.015;
    run_city(ctx, spec);
  }
};

}  // namespace

void register_city_experiments() {
  register_experiment<CityGridSmokeExperiment>();
  register_experiment<CityGrid1kExperiment>();
  register_experiment<CityGrid10kExperiment>();
}

}  // namespace fiveg::core

// Energy experiments: Fig. 21 (per-app power breakdown), Fig. 22
// (energy-per-bit vs transfer duration), Fig. 23 (fine-grained power trace
// of burst web loading) and Table 4 (power-management policies), plus an
// echo of Table 7's DRX parameters.
#include <ostream>

#include "core/experiment.h"
#include "core/paper.h"
#include "energy/power_strip.h"
#include "energy/rrc_power_machine.h"
#include "energy/traffic_trace.h"
#include "measure/plot.h"
#include "measure/table.h"

namespace fiveg::core {
namespace {

using energy::RadioModel;
using measure::TextTable;
using sim::kSecond;

class Fig21Experiment final : public Experiment {
 public:
  std::string name() const override { return "fig21_energy_apps"; }
  std::string paper_ref() const override { return "Figure 21"; }
  std::string description() const override {
    return "Power breakdown running daily apps: the 5G radio out-draws the "
           "screen and doubles-to-triples the 4G radio";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    const energy::RrcPowerMachine machine;
    const energy::ComponentPower components;
    int n = 0;
    const energy::AppProfile* apps = energy::daily_apps(&n);

    TextTable t("Fig. 21 — mean power by component (mW, 60 s session)",
                {"app", "network", "system", "screen", "app", "radio",
                 "total", "radio share"});
    double share5_sum = 0;
    for (int i = 0; i < n; ++i) {
      for (const RadioModel m : {RadioModel::kNrNsa, RadioModel::kLteOnly}) {
        const auto b = energy::measure_app_session(machine, m, apps[i],
                                                   components, 60 * kSecond);
        const double secs = 60.0;
        t.add_row({apps[i].name, m == RadioModel::kNrNsa ? "5G" : "4G",
                   TextTable::num(b.system_j * 1000 / secs, 0),
                   TextTable::num(b.screen_j * 1000 / secs, 0),
                   TextTable::num(b.app_j * 1000 / secs, 0),
                   TextTable::num(b.radio_j * 1000 / secs, 0),
                   TextTable::num(b.mean_power_mw(60 * kSecond), 0),
                   TextTable::pct(b.radio_share())});
        if (m == RadioModel::kNrNsa) share5_sum += b.radio_share();
      }
    }
    t.print(*ctx.out);
    TextTable s("Fig. 21 summary", {"metric", "measured", "paper"});
    s.add_row({"5G radio share (avg)", TextTable::pct(share5_sum / n),
               TextTable::pct(paper::kRadioShare5G)});
    s.print(*ctx.out);
    ctx.metric("radio_share_5g", share5_sum / n, "fraction");
  }
};

class Fig22Experiment final : public Experiment {
 public:
  std::string name() const override { return "fig22_energy_per_bit"; }
  std::string paper_ref() const override { return "Figure 22"; }
  std::string description() const override {
    return "Radio energy per bit vs transfer duration under saturated "
           "traffic: 5G approaches 1/4 of 4G";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    const energy::RrcPowerMachine machine;
    TextTable t("Fig. 22 — energy per bit (uJ/bit) vs transfer time",
                {"transfer (s)", "4G", "5G", "4G/5G ratio"});
    double last_ratio = 0;
    for (const double secs : {1.0, 5.0, 10.0, 20.0, 30.0, 50.0}) {
      const double lte = energy::saturated_energy_per_bit_uj(
          machine, RadioModel::kLteOnly, sim::from_seconds(secs));
      const double nr = energy::saturated_energy_per_bit_uj(
          machine, RadioModel::kNrNsa, sim::from_seconds(secs));
      last_ratio = lte / nr;
      t.add_row({TextTable::num(secs, 0), TextTable::num(lte, 4),
                 TextTable::num(nr, 4), TextTable::num(last_ratio, 1)});
      ctx.metric_point("lte_uj_per_bit", secs, lte, "uJ/bit");
      ctx.metric_point("nr_uj_per_bit", secs, nr, "uJ/bit");
    }
    t.print(*ctx.out);
    ctx.metric("energy_per_bit_ratio", last_ratio, "x");
    *ctx.out << "long-transfer ratio " << TextTable::num(last_ratio, 1)
             << "x vs paper ~" << TextTable::num(paper::kEnergyPerBitRatio, 0)
             << "x. Absolute uJ/bit runs below the paper's axis because our "
                "serving rates are the full UDP baselines; the shape "
                "(monotone decrease, ~4x gap) is the reproduced claim.\n\n";
  }
};

class Fig23Experiment final : public Experiment {
 public:
  std::string name() const override { return "fig23_power_trace"; }
  std::string paper_ref() const override { return "Figure 23"; }
  std::string description() const override {
    return "Power trace of 10 web loads at 3 s intervals: jagged DRX "
           "plateaus and the compounded NSA tail";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    const energy::RrcPowerMachine machine;
    const energy::TrafficTrace trace = energy::web_browsing_trace(
        sim::Rng(ctx.seed).fork("fig23"), 10, 3 * kSecond);
    const auto nsa = machine.replay(trace, RadioModel::kNrNsa);
    const auto lte = machine.replay(trace, RadioModel::kLteOnly);

    TextTable t("Fig. 23 — radio power trace (mW, 2 s means)",
                {"t (s)", "5G NSA", "4G"});
    const auto nsa_w = nsa.power_trace_mw.window_means(
        0, nsa.duration, 2 * kSecond);
    const auto lte_w = lte.power_trace_mw.window_means(
        0, nsa.duration, 2 * kSecond);
    for (std::size_t i = 0; i < nsa_w.size(); i += 2) {
      t.add_row({TextTable::num(sim::to_seconds(nsa_w[i].at), 0),
                 TextTable::num(nsa_w[i].value, 0),
                 i < lte_w.size() ? TextTable::num(lte_w[i].value, 0) : "0"});
    }
    t.print(*ctx.out);

    measure::PlotOptions popt;
    popt.title = "Fig. 23 — 5G NSA radio power (mW) during 10 web loads";
    popt.x_label = "s";
    popt.y_label = "mW";
    *ctx.out << measure::line_chart(
                    nsa.power_trace_mw.window_means(0, nsa.duration,
                                                    sim::kSecond),
                    popt)
             << "\n";

    TextTable s("Fig. 23 annotations", {"metric", "measured", "paper"});
    s.add_row({"5G/4G energy for the same loads",
               TextTable::num(nsa.radio_joules / lte.radio_joules, 2),
               TextTable::num(paper::kWebEnergyRatio5GOver4G, 2)});
    s.add_row({"4G tail after last transfer (s)",
               TextTable::num(sim::to_seconds(lte.duration - lte.completion), 1),
               "~10"});
    s.add_row({"5G tail after last transfer (s)",
               TextTable::num(sim::to_seconds(nsa.duration - nsa.completion), 1),
               "~20"});
    s.print(*ctx.out);
    ctx.metric("web_energy_ratio_5g_over_4g",
               nsa.radio_joules / lte.radio_joules, "x");
    ctx.metric("lte_tail_s", sim::to_seconds(lte.duration - lte.completion),
               "s");
    ctx.metric("nr_tail_s", sim::to_seconds(nsa.duration - nsa.completion),
               "s");
  }
};

class Table4Experiment final : public Experiment {
 public:
  std::string name() const override { return "table4_power_policies"; }
  std::string paper_ref() const override { return "Table 4 (and Table 7)"; }
  std::string description() const override {
    return "Energy of power-management models over web/video/file traces; "
           "dynamic 4G/5G switching recovers most of the waste";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    sim::Rng rng = sim::Rng(ctx.seed).fork("table4");

    struct Workload {
      const char* name;
      energy::TrafficTrace trace;
      energy::RrcPowerMachine machine;
      int paper_row;
    };
    // Web and file ride the downlink baselines; telephony pushes uplink,
    // where 4G's 50 Mbps cannot carry a UHD stream in real time — the
    // completion stretch behind Table 4's inverted Video row.
    energy::ReplayConfig ul_cfg;
    // Effective uplink rates under daytime contention and HARQ overhead:
    // a UHD stream (60 Mbps) overruns 4G's uplink by >2x.
    ul_cfg.lte_rate_bps = 25e6;
    ul_cfg.nr_rate_bps = 130e6;
    const Workload workloads[] = {
        {"Web", energy::web_browsing_trace(rng.fork("web")),
         energy::RrcPowerMachine{}, 0},
        {"Video",
         energy::video_telephony_trace(rng.fork("video"), 90 * kSecond, 60e6),
         energy::RrcPowerMachine{ul_cfg}, 1},
        {"File", energy::file_transfer_trace(),
         energy::RrcPowerMachine{}, 2},
    };
    const RadioModel models[] = {RadioModel::kLteOnly, RadioModel::kNrNsa,
                                 RadioModel::kNrOracle,
                                 RadioModel::kDynamicSwitch};

    TextTable t("Table 4 — radio energy (J), measured | paper",
                {"model", "Web", "Web p.", "Video", "Video p.", "File",
                 "File p."});
    double joules[3][4];
    for (int mi = 0; mi < 4; ++mi) {
      std::vector<std::string> row{energy::to_string(models[mi])};
      for (int wi = 0; wi < 3; ++wi) {
        const auto r =
            workloads[wi].machine.replay(workloads[wi].trace, models[mi]);
        joules[wi][mi] = r.radio_joules;
        row.push_back(TextTable::num(r.radio_joules, 1));
        row.push_back(TextTable::num(paper::kTable4[wi][mi], 1));
      }
      t.add_row(std::move(row));
    }
    t.print(*ctx.out);

    TextTable s("Policy savings", {"metric", "measured", "paper"});
    for (int wi = 0; wi < 3; ++wi) {
      s.add_row({std::string("Oracle vs NSA (") + workloads[wi].name + ")",
                 TextTable::pct(1.0 - joules[wi][2] / joules[wi][1]),
                 TextTable::pct(paper::kOracleSavings[wi])});
      ctx.metric(std::string("oracle_saving_") + workloads[wi].name,
                 1.0 - joules[wi][2] / joules[wi][1], "fraction");
    }
    ctx.metric("dyn_web_saving", 1.0 - joules[0][3] / joules[0][1],
               "fraction");
    s.add_row({"Dyn. switch vs NSA (Web)",
               TextTable::pct(1.0 - joules[0][3] / joules[0][1]),
               TextTable::pct(paper::kDynWebSaving)});
    s.print(*ctx.out);

    // Table 7 echo: the DRX parameters driving all of the above.
    const ran::DrxConfig lte = workloads[0].machine.config().lte_drx;
    const ran::DrxConfig nr = workloads[0].machine.config().nr_drx;
    TextTable t7("Table 7 — NSA power-management parameters (ms)",
                 {"parameter", "value"});
    t7.add_row({"Tidle (paging cycle)", TextTable::num(sim::to_millis(lte.paging_cycle), 0)});
    t7.add_row({"Ton (on-duration)", TextTable::num(sim::to_millis(lte.on_duration), 0)});
    t7.add_row({"TLTE_pro", TextTable::num(sim::to_millis(lte.lte_promotion), 0)});
    t7.add_row({"T4r_5r", TextTable::num(sim::to_millis(nr.lte_to_nr), 0)});
    t7.add_row({"TNR_pro", TextTable::num(sim::to_millis(nr.nr_promotion), 0)});
    t7.add_row({"Tinac", TextTable::num(sim::to_millis(nr.inactivity), 0)});
    t7.add_row({"Tlong (C-DRX cycle)", TextTable::num(sim::to_millis(nr.long_drx_cycle), 0)});
    t7.add_row({"Ttail 4G / 5G",
                TextTable::num(sim::to_millis(lte.tail), 0) + " / " +
                    TextTable::num(sim::to_millis(nr.tail), 0)});
    t7.print(*ctx.out);
  }
};

}  // namespace

void register_energy_experiments() {
  register_experiment<Fig21Experiment>();
  register_experiment<Fig22Experiment>();
  register_experiment<Fig23Experiment>();
  register_experiment<Table4Experiment>();
}

}  // namespace fiveg::core

// AQM / bufferbloat experiments (Sec. 4.2's buffer-sizing trade-off,
// Table 3). The paper's operators can either grow drop-tail buffers —
// which buys utilisation at the price of standing queues — or deploy
// smarter disciplines. These experiments sweep CoDel, FQ-CoDel, RED and
// ECN against drop-tail across buffer sizes, congestion controllers,
// incast fan-in and mixed-RTT sharing.
#include <algorithm>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "app/iperf.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "fault/invariants.h"
#include "measure/stats.h"
#include "measure/table.h"
#include "net/aqm.h"
#include "net/path.h"

namespace fiveg::core {
namespace {

using measure::TextTable;
using sim::kSecond;

/// The qdisc variants every sweep visits, in a fixed report order.
struct QdiscVariant {
  const char* label;   // table label ("codel+ecn")
  net::QdiscKind kind;
  bool ecn;
};

constexpr QdiscVariant kVariants[] = {
    {"droptail", net::QdiscKind::kDropTail, false},
    {"codel", net::QdiscKind::kCoDel, false},
    {"codel+ecn", net::QdiscKind::kCoDel, true},
    {"fq_codel", net::QdiscKind::kFqCoDel, false},
    {"red", net::QdiscKind::kRed, false},
};

constexpr tcp::CcAlgo kAlgos[] = {tcp::CcAlgo::kReno, tcp::CcAlgo::kCubic,
                                  tcp::CcAlgo::kVegas, tcp::CcAlgo::kVeno,
                                  tcp::CcAlgo::kBbr};

/// A minimal two-hop lab path: a fast access hop feeding a slow
/// bottleneck hop running the qdisc under test. Small enough that a full
/// CC x qdisc x buffer sweep stays in the smoke tier.
std::vector<net::Link::Config> lab_path(double bottleneck_bps,
                                        std::uint64_t buffer_bytes,
                                        const net::QdiscConfig& qdisc) {
  net::Link::Config access;
  access.name = "lab-access";
  access.rate_bps = 1e9;
  access.prop_delay = sim::from_millis(2);
  access.queue_bytes = 4 * 1024 * 1024;

  net::Link::Config bottleneck;
  bottleneck.name = "lab-bottleneck";
  bottleneck.rate_bps = bottleneck_bps;
  bottleneck.prop_delay = sim::from_millis(8);
  bottleneck.queue_bytes = buffer_bytes;
  bottleneck.qdisc = qdisc;
  return {access, bottleneck};
}

/// Throws unless the bottleneck link's conservation ledger balances —
/// with ECN in play this also proves marked packets were delivered, not
/// double-counted as drops.
void require_conservation(const net::Link& link) {
  fault::InvariantChecker checker;
  checker.check_link_conservation(link);
  if (!checker.ok()) throw std::runtime_error(checker.report());
}

class AqmBufferbloatExperiment final : public Experiment {
 public:
  std::string name() const override { return "aqm_bufferbloat"; }
  std::string paper_ref() const override {
    return "Table 3 / Sec. 4.2 (buffer sizing vs bufferbloat)";
  }
  std::string description() const override {
    return "Queueing delay and goodput for every CC algorithm under "
           "drop-tail vs CoDel / FQ-CoDel / RED / ECN as the bottleneck "
           "buffer grows from 1x to 16x BDP";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    // 50 Mbps, 20 ms RTT -> BDP = 125 kB. Ratios {1, 4, 16} span the
    // paper's "grow the buffer" fix and its bufferbloat downside.
    constexpr double kRateBps = 50e6;
    constexpr std::uint64_t kBdpBytes = 125 * 1000;
    TextTable t("AQM sweep — mean bottleneck queueing delay (ms) / goodput "
                "(Mbps) by buffer size",
                {"algo", "qdisc", "1x BDP", "4x BDP", "16x BDP"});
    // Each sub-run gets its own flow id so the merged trace keeps one
    // monotonic tcp.cwnd track per flow instead of 75 restarts of flow 1.
    std::uint32_t next_flow = 1;
    for (const tcp::CcAlgo algo : kAlgos) {
      for (const QdiscVariant& v : kVariants) {
        std::vector<std::string> row = {to_string(algo), v.label};
        for (const std::uint64_t ratio : {1ull, 4ull, 16ull}) {
          net::QdiscConfig qdisc;
          qdisc.kind = v.kind;
          qdisc.ecn = v.ecn;
          sim::Simulator simr;
          net::PathNetwork path(
              &simr, lab_path(kRateBps, ratio * kBdpBytes, qdisc));
          app::PathFanout fanout(&path);
          tcp::TcpConfig cfg;
          cfg.algo = algo;
          cfg.ecn = v.ecn;
          app::TcpSession session(&simr, &path, &fanout, cfg, next_flow++);
          session.sender().start_bulk();

          // Sample the standing queue every 10 ms once the flow has had
          // a second to settle; delay = backlog drained at line rate.
          net::Link& bn = path.forward_link(1);
          measure::RunningStats qdelay_ms;
          for (int i = 100; i < 500; ++i) {
            simr.schedule_in(i * 10 * sim::kMillisecond, [&] {
              qdelay_ms.add(8e3 * static_cast<double>(bn.queue_bytes()) /
                            kRateBps);
            });
          }
          simr.run_until(5 * kSecond);
          require_conservation(bn);

          const double goodput_mbps =
              session.receiver().mean_goodput_bps(kSecond, 5 * kSecond) /
              1e6;
          row.push_back(TextTable::num(qdelay_ms.mean(), 1) + " / " +
                        TextTable::num(goodput_mbps, 1));
          const std::string key =
              std::string(to_string(algo)) + "_" + v.label;
          ctx.metric_point("qdelay_ms_" + key,
                           static_cast<double>(ratio), qdelay_ms.mean(),
                           "ms");
          ctx.metric_point("goodput_mbps_" + key,
                           static_cast<double>(ratio), goodput_mbps,
                           "Mbps");
          if (v.ecn) {
            ctx.metric_point("ecn_marks_" + key,
                             static_cast<double>(ratio),
                             static_cast<double>(bn.marked_packets()),
                             "packets");
          }
        }
        t.add_row(row);
      }
    }
    t.print(*ctx.out);
    *ctx.out << "drop-tail's delay scales with the buffer (bufferbloat); "
                "CoDel and FQ-CoDel hold it near the 5 ms target at every "
                "size, and ECN gets the same delay without the drops\n\n";
  }
};

class AqmIncastExperiment final : public Experiment {
 public:
  std::string name() const override { return "aqm_incast"; }
  std::string paper_ref() const override {
    return "Sec. 4.2 (shared wireline bottleneck under fan-in)";
  }
  std::string description() const override {
    return "Eight synchronised short transfers through one bottleneck: "
           "completion-time spread under drop-tail vs the AQMs";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    constexpr int kFlows = 8;
    constexpr std::uint64_t kBytes = 384 * 1000;  // per-flow transfer
    TextTable t("AQM incast — 8 x 384 kB through a 50 Mbps bottleneck",
                {"qdisc", "median done (s)", "last done (s)", "retx"});
    std::uint32_t flow_base = 0;  // fresh flow ids per variant (trace tracks)
    for (const QdiscVariant& v : kVariants) {
      net::QdiscConfig qdisc;
      qdisc.kind = v.kind;
      qdisc.ecn = v.ecn;
      sim::Simulator simr;
      // A shallow buffer (1x BDP) makes the synchronized burst hurt.
      net::PathNetwork path(&simr, lab_path(50e6, 125 * 1000, qdisc));
      app::PathFanout fanout(&path);
      std::vector<std::unique_ptr<app::TcpSession>> sessions;
      std::vector<double> done_s(kFlows, 0.0);
      for (int f = 0; f < kFlows; ++f) {
        tcp::TcpConfig cfg;
        cfg.algo = tcp::CcAlgo::kCubic;
        cfg.ecn = v.ecn;
        sessions.push_back(std::make_unique<app::TcpSession>(
            &simr, &path, &fanout, cfg,
            flow_base + static_cast<std::uint32_t>(f + 1)));
        sessions.back()->sender().send_bytes(
            kBytes, [&done_s, f, &simr] {
              done_s[static_cast<std::size_t>(f)] =
                  sim::to_seconds(simr.now());
            });
      }
      simr.run_until(30 * kSecond);
      require_conservation(path.forward_link(1));
      std::vector<double> sorted = done_s;
      std::sort(sorted.begin(), sorted.end());
      std::uint64_t retx = 0;
      for (const auto& s : sessions) retx += s->sender().retransmissions();
      const double median = sorted[kFlows / 2];
      const double last = sorted.back();
      t.add_row({v.label, TextTable::num(median, 2),
                 TextTable::num(last, 2), std::to_string(retx)});
      ctx.metric(std::string("incast_last_done_s_") + v.label, last, "s");
      ctx.metric(std::string("incast_retx_") + v.label,
                 static_cast<double>(retx), "packets");
      flow_base += kFlows;
    }
    t.print(*ctx.out);
    *ctx.out << "FQ-CoDel's per-flow queues keep the last straggler close "
                "to the median; one drop-tail FIFO lets early losers "
                "time out\n\n";
  }
};

class AqmRttFairnessExperiment final : public Experiment {
 public:
  std::string name() const override { return "aqm_rtt_fairness"; }
  std::string paper_ref() const override {
    return "Sec. 4.2 (metro bottleneck shared by heterogeneous paths)";
  }
  std::string description() const override {
    return "Four bulk flows with 12..96 ms RTTs sharing one bottleneck: "
           "Jain fairness under drop-tail vs the AQMs";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    constexpr double kRateBps = 50e6;
    const sim::Time access_delay[] = {
        sim::from_millis(1), sim::from_millis(7), sim::from_millis(19),
        sim::from_millis(43)};  // RTTs 12/24/48/96 ms incl. bottleneck
    TextTable t("AQM RTT fairness — four flows, one 50 Mbps bottleneck",
                {"qdisc", "Jain index", "slowest/fastest",
                 "goodputs (Mbps)"});
    std::uint32_t flow_base = 0;  // fresh flow ids per variant (trace tracks)
    for (const QdiscVariant& v : kVariants) {
      net::QdiscConfig qdisc;
      qdisc.kind = v.kind;
      qdisc.ecn = v.ecn;
      sim::Simulator simr;

      // Star topology: per-flow access links (the RTT spread) feed one
      // shared bottleneck link; ACKs return over per-flow delay only.
      net::Link::Config bn_cfg;
      bn_cfg.name = "fair-bottleneck";
      bn_cfg.rate_bps = kRateBps;
      bn_cfg.prop_delay = sim::from_millis(5);
      bn_cfg.queue_bytes = 500 * 1000;  // 4x the 1x-BDP of the fastest path
      bn_cfg.qdisc = qdisc;

      std::vector<std::unique_ptr<tcp::TcpSender>> senders;
      std::vector<std::unique_ptr<tcp::TcpReceiver>> receivers;
      std::vector<std::unique_ptr<net::Link>> access;
      net::FanoutSink receive_side;
      net::Link bottleneck(&simr, bn_cfg, &receive_side);
      net::LambdaSink into_bottleneck(
          [&bottleneck](net::Packet p) { bottleneck.send(std::move(p)); });

      for (int f = 0; f < 4; ++f) {
        net::Link::Config acfg;
        acfg.name = "fair-access-" + std::to_string(f);
        acfg.rate_bps = 1e9;
        acfg.prop_delay = access_delay[f];
        access.push_back(
            std::make_unique<net::Link>(&simr, acfg, &into_bottleneck));
      }
      for (int f = 0; f < 4; ++f) {
        const std::uint32_t flow = flow_base + static_cast<std::uint32_t>(f + 1);
        tcp::TcpConfig cfg;
        cfg.algo = tcp::CcAlgo::kCubic;
        cfg.ecn = v.ecn;
        net::Link* alink = access[static_cast<std::size_t>(f)].get();
        senders.push_back(std::make_unique<tcp::TcpSender>(
            &simr, cfg, flow,
            [alink](net::Packet p) { alink->send(std::move(p)); }));
        // ACKs skip the queues and take the flow's one-way delay back.
        tcp::TcpSender* snd = senders.back().get();
        const sim::Time ack_delay =
            access_delay[f] + bn_cfg.prop_delay;
        receivers.push_back(std::make_unique<tcp::TcpReceiver>(
            &simr, cfg, flow, [&simr, snd, ack_delay](net::Packet a) {
              simr.schedule_in(ack_delay, "aqm.fair_ack",
                               [snd, a = std::move(a)]() mutable {
                                 snd->deliver(std::move(a));
                               });
            }));
        receive_side.add(receivers.back().get());
        senders.back()->start_bulk();
      }
      simr.run_until(10 * kSecond);
      require_conservation(bottleneck);

      double sum = 0.0, sumsq = 0.0;
      std::vector<double> rates;
      std::string rates_text;
      for (int f = 0; f < 4; ++f) {
        const double bps =
            receivers[static_cast<std::size_t>(f)]->mean_goodput_bps(
                2 * kSecond, 10 * kSecond);
        rates.push_back(bps);
        sum += bps;
        sumsq += bps * bps;
        if (!rates_text.empty()) rates_text += " / ";
        rates_text += TextTable::num(bps / 1e6, 1);
      }
      const double jain = sum * sum / (4.0 * sumsq);
      const auto [lo, hi] = std::minmax_element(rates.begin(), rates.end());
      t.add_row({v.label, TextTable::num(jain, 3),
                 TextTable::num(*lo / *hi, 2), rates_text});
      ctx.metric(std::string("jain_") + v.label, jain, "index");
      flow_base += 4;
    }
    t.print(*ctx.out);
    *ctx.out << "DRR scheduling makes FQ-CoDel's allocation RTT-blind "
                "(Jain -> 1); a shared FIFO rewards the short-RTT flow\n\n";
  }
};

class AqmTable3MitigationExperiment final : public Experiment {
 public:
  std::string name() const override { return "aqm_table3_mitigation"; }
  std::string paper_ref() const override {
    return "Table 3 (5G wireline buffer undersizing) / Sec. 4.2";
  }
  std::string description() const override {
    return "The full 5G testbed's TCP anomaly under every qdisc: can AQM "
           "or ECN substitute for growing the metro-bottleneck buffer?";
  }

  void run(const ExperimentContext& ctx) override {
    TextTable t("AQM on the 5G metro bottleneck — utilisation / SRTT (ms)",
                {"buffer", "qdisc", "reno", "cubic", "vegas", "veno",
                 "bbr"});
    std::uint32_t next_flow = 1;  // unique per sub-run (trace tracks)
    for (const std::uint64_t ratio : {1ull, 4ull}) {
      for (const QdiscVariant& v : kVariants) {
        // RED is fully characterised by the lab sweeps; skipping it here
        // keeps the 40-run testbed sweep inside the campaign timeout.
        if (v.kind == net::QdiscKind::kRed) continue;
        std::vector<std::string> row = {
            ratio == 1 ? "1x (1.6 MB)" : "4x (6.5 MB)", v.label};
        for (const tcp::CcAlgo algo : kAlgos) {
          sim::Simulator simr;
          TestbedOptions opt;
          opt.bottleneck_buffer_bytes = ratio * 1638 * 1024;
          net::QdiscConfig qdisc;
          qdisc.kind = v.kind;
          qdisc.ecn = v.ecn;
          opt.bottleneck_qdisc = qdisc;
          Testbed bed(&simr, opt, ctx.seed);
          bed.start_cross_traffic(8 * kSecond);
          tcp::TcpConfig cfg;
          cfg.algo = algo;
          cfg.ecn = v.ecn;
          app::TcpSession session(&simr, &bed.path(), &bed.fanout(), cfg,
                                  next_flow++);
          session.sender().start_bulk();
          simr.run_until(6 * kSecond);
          require_conservation(bed.bottleneck());
          const double util =
              session.receiver().mean_goodput_bps(2 * kSecond,
                                                  6 * kSecond) /
              bed.ran_rate_bps();
          const double srtt =
              sim::to_millis(session.sender().rtt().smoothed_rtt());
          row.push_back(TextTable::pct(util) + " / " +
                        TextTable::num(srtt, 0));
          ctx.metric_point(std::string("util_") + to_string(algo) + "_" +
                               v.label,
                           static_cast<double>(ratio), util, "fraction");
        }
        t.add_row(row);
      }
    }
    t.print(*ctx.out);
    *ctx.out << "on the real testbed only buffer growth repairs loss-based "
                "CC (Reno 15% -> 60%, Cubic 38% -> 81%): against RAN-"
                "variance loss AQM/ECN alone cannot substitute — matching "
                "the paper's preference for deeper buffers or rate-based "
                "CC (cf. ext_codel_aqm), unlike the clean wireline "
                "bottleneck of aqm_bufferbloat where CoDel+ECN wins\n\n";
  }
};

}  // namespace

void register_aqm_experiments() {
  register_experiment<AqmBufferbloatExperiment>();
  register_experiment<AqmIncastExperiment>();
  register_experiment<AqmRttFairnessExperiment>();
  register_experiment<AqmTable3MitigationExperiment>();
}

}  // namespace fiveg::core

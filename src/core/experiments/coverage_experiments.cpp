// Coverage experiments: Table 1 (basic physical info), Table 2 (RSRP
// distribution), Fig. 2 (campus RSRP map + single-cell bit-rate contour)
// and Fig. 3 (indoor/outdoor bit-rate gap).
#include <algorithm>
#include <array>
#include <ostream>

#include "core/experiment.h"
#include "core/paper.h"
#include "core/scenario.h"
#include "geo/route.h"
#include "measure/cdf.h"
#include "measure/histogram.h"
#include "measure/stats.h"
#include "measure/table.h"
#include "radio/mcs.h"

namespace fiveg::core {
namespace {

using measure::TextTable;

// Best-cell RSRP stats over sampled locations for a cell subset.
measure::RunningStats rsrp_stats(const ran::Deployment& dep,
                                 const radio::CarrierConfig& carrier,
                                 const std::vector<ran::Cell>& cells,
                                 const std::vector<geo::Point>& points) {
  measure::RunningStats s;
  for (const geo::Point& p : points) {
    const auto m = ran::best_cell(dep.env(), carrier, cells, p);
    if (m.cell != nullptr) s.add(m.rsrp_dbm);
  }
  return s;
}

std::vector<geo::Point> sample_locations(const Scenario& sc,
                                         std::uint64_t seed, int n) {
  sim::Rng rng = sim::Rng(seed).fork("sample-locations");
  std::vector<geo::Point> pts;
  pts.reserve(n);
  // The paper samples along walkable space: outdoor points.
  for (int i = 0; i < n; ++i) {
    pts.push_back(sc.campus().random_outdoor_point(rng));
  }
  return pts;
}

class Table1Experiment final : public Experiment {
 public:
  std::string name() const override { return "table1_phy_info"; }
  std::string paper_ref() const override { return "Table 1"; }
  std::string description() const override {
    return "Band, cell counts and mean RSRP of the co-located 4G/5G networks";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    const Scenario sc(ctx.seed);
    const auto pts = sample_locations(sc, ctx.seed, 2000);
    const auto& dep = sc.deployment();
    const auto lte = rsrp_stats(dep, dep.carrier(radio::Rat::kLte),
                                dep.cells(radio::Rat::kLte), pts);
    const auto nr = rsrp_stats(dep, dep.carrier(radio::Rat::kNr),
                               dep.cells(radio::Rat::kNr), pts);

    TextTable t("Table 1 — basic physical info",
                {"Info", "4G measured", "4G paper", "5G measured",
                 "5G paper"});
    t.add_row({"DL band (MHz)", "1840-1860", "1840-1860", "3500-3600",
               "3500-3600"});
    t.add_row({"# cells",
               std::to_string(dep.cells(radio::Rat::kLte).size()),
               std::to_string(paper::kLteCells),
               std::to_string(dep.cells(radio::Rat::kNr).size()),
               std::to_string(paper::kNrCells)});
    t.add_row({"RSRP (dBm)", TextTable::pm(lte.mean(), lte.stddev()),
               TextTable::pm(paper::kLteRsrpMean, paper::kLteRsrpStd),
               TextTable::pm(nr.mean(), nr.stddev()),
               TextTable::pm(paper::kNrRsrpMean, paper::kNrRsrpStd)});
    t.print(*ctx.out);
    ctx.metric("lte_rsrp_mean", lte.mean(), "dBm");
    ctx.metric("nr_rsrp_mean", nr.mean(), "dBm");
  }
};

class Table2Experiment final : public Experiment {
 public:
  std::string name() const override { return "table2_rsrp_distribution"; }
  std::string paper_ref() const override { return "Table 2"; }
  std::string description() const override {
    return "RSRP distribution: coverage holes are 4.6x more common on 5G";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    const Scenario sc(ctx.seed);
    const auto pts = sample_locations(sc, ctx.seed, 4630);
    const auto& dep = sc.deployment();

    const std::vector<double> edges = {-140, -105, -90, -80, -70, -60, -40};
    const auto fill = [&](const radio::CarrierConfig& carrier,
                          const std::vector<ran::Cell>& cells) {
      measure::Histogram h(edges);
      for (const geo::Point& p : pts) {
        const auto m = ran::best_cell(dep.env(), carrier, cells, p);
        if (m.cell != nullptr) h.add(m.rsrp_dbm);
      }
      return h;
    };
    const auto lte = fill(dep.carrier(radio::Rat::kLte),
                          dep.cells(radio::Rat::kLte));
    const auto nr =
        fill(dep.carrier(radio::Rat::kNr), dep.cells(radio::Rat::kNr));
    const auto lte6 = fill(dep.carrier(radio::Rat::kLte),
                           dep.lte_cells_cosited_with_nr());

    TextTable t("Table 2 — RSRP distribution (measured | paper)",
                {"RSRP (dBm)", "4G", "4G paper", "5G", "5G paper",
                 "4G (6 eNBs)", "4G6 paper"});
    // Print from the strongest bin down, like the paper.
    for (int row = 5; row >= 0; --row) {
      const auto bin = static_cast<std::size_t>(row);
      t.add_row({lte.bin_label(bin), TextTable::pct(lte.fraction(bin)),
                 TextTable::pct(paper::kLteRsrpDist[5 - row]),
                 TextTable::pct(nr.fraction(bin)),
                 TextTable::pct(paper::kNrRsrpDist[5 - row]),
                 TextTable::pct(lte6.fraction(bin)),
                 TextTable::pct(paper::kLte6RsrpDist[5 - row])});
    }
    t.print(*ctx.out);

    TextTable holes("Coverage holes (RSRP < -105 dBm)",
                    {"network", "measured", "paper"});
    holes.add_row({"5G", TextTable::pct(nr.fraction(0)),
                   TextTable::pct(paper::kNrRsrpDist[5])});
    holes.add_row({"4G", TextTable::pct(lte.fraction(0)),
                   TextTable::pct(paper::kLteRsrpDist[5])});
    holes.add_row({"4G (6 eNBs)", TextTable::pct(lte6.fraction(0)),
                   TextTable::pct(paper::kLte6RsrpDist[5])});
    holes.print(*ctx.out);
    ctx.metric("nr_hole_fraction", nr.fraction(0), "fraction");
    ctx.metric("lte_hole_fraction", lte.fraction(0), "fraction");
  }
};

class Fig2Experiment final : public Experiment {
 public:
  std::string name() const override { return "fig2_coverage_map"; }
  std::string paper_ref() const override { return "Figure 2"; }
  std::string description() const override {
    return "Campus RSRP map (ASCII) and the bit-rate contour of one gNB cell";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    const Scenario sc(ctx.seed);
    const auto& dep = sc.deployment();
    const auto& b = sc.campus().bounds();

    // (a) 5G best-RSRP map on a coarse grid.
    *ctx.out << "Fig. 2(a) — 5G RSRP map ("
             << "#: >=-80  +: [-90,-80)  .: [-105,-90)  o: hole  "
                "B: building)\n";
    const int cols = 50, rows = 46;
    int holes = 0, total = 0;
    for (int r = rows - 1; r >= 0; --r) {
      for (int c = 0; c < cols; ++c) {
        const geo::Point p{b.min.x + (c + 0.5) * b.width() / cols,
                           b.min.y + (r + 0.5) * b.height() / rows};
        if (sc.campus().is_indoor(p)) {
          *ctx.out << 'B';
          continue;
        }
        const auto m = dep.best(radio::Rat::kNr, p);
        ++total;
        char ch = 'o';
        if (m.rsrp_dbm >= -80) {
          ch = '#';
        } else if (m.rsrp_dbm >= -90) {
          ch = '+';
        } else if (m.rsrp_dbm >= -105) {
          ch = '.';
        } else {
          ++holes;
        }
        *ctx.out << ch;
      }
      *ctx.out << "\n";
    }
    *ctx.out << "outdoor grid holes: "
             << TextTable::pct(static_cast<double>(holes) / total) << "\n\n";

    // (b) bit-rate vs boresight distance for the PCI-72 cell.
    const ran::Cell* cell72 = nullptr;
    for (const ran::Cell& c : dep.cells(radio::Rat::kNr)) {
      if (c.pci == 72) cell72 = &c;
    }
    TextTable t("Fig. 2(b) — PCI 72 bit-rate contour (sector walk, mean "
                "over +/-20 deg)",
                {"distance (m)", "bit-rate (Mbps)", "RSRP (dBm)"});
    const double az0 = cell72->site.antenna.azimuth_deg();
    double range_m = 0;
    for (double d = 20; d <= 400; d += 20) {
      measure::RunningStats rate, rsrp;
      for (double off = -20; off <= 20; off += 10) {
        const double az = (az0 + off) * M_PI / 180.0;
        const geo::Point p{cell72->site.pos.x + d * std::cos(az),
                           cell72->site.pos.y + d * std::sin(az)};
        const auto meas = ran::best_cell(
            dep.env(), dep.carrier(radio::Rat::kNr), {*cell72}, p);
        rsrp.add(meas.rsrp_dbm);
        rate.add(meas.in_coverage()
                     ? radio::dl_bitrate_bps(dep.carrier(radio::Rat::kNr),
                                             meas.sinr_db)
                     : 0.0);
      }
      // Range: distance of the first service-floor crossing.
      if (range_m == 0 && rsrp.mean() < radio::kServiceRsrpFloorDbm) {
        range_m = d - 20;
      }
      t.add_row({TextTable::num(d, 0), TextTable::num(rate.mean() / 1e6, 0),
                 TextTable::num(rsrp.mean(), 1)});
      ctx.metric_point("bitrate_vs_distance", d, rate.mean() / 1e6, "Mbps");
    }
    t.print(*ctx.out);
    TextTable r("Single-cell link range",
                {"network", "measured (m)", "paper (m)"});
    r.add_row({"5G", TextTable::num(range_m, 0),
               TextTable::num(paper::kNrLinkRangeM, 0)});
    r.print(*ctx.out);
    ctx.metric("nr_link_range", range_m, "m");
    ctx.metric("outdoor_hole_fraction", static_cast<double>(holes) / total,
               "fraction");
  }
};

class Fig3Experiment final : public Experiment {
 public:
  std::string name() const override { return "fig3_indoor_outdoor"; }
  std::string paper_ref() const override { return "Figure 3"; }
  std::string description() const override {
    return "Indoor/outdoor bit-rate gap: ~51% drop on 5G vs ~20% on 4G";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    const Scenario sc(ctx.seed);
    const auto& dep = sc.deployment();
    sim::Rng rng = sim::Rng(ctx.seed).fork("fig3");

    // Adjacent indoor/outdoor pairs: points just inside and just outside
    // building walls (the paper samples spots ~100 m from a site).
    measure::RunningStats nr_in, nr_out, lte_in, lte_out;
    for (const geo::Building& bld : sc.campus().buildings()) {
      const geo::Rect& f = bld.footprint;
      for (int k = 0; k < 4; ++k) {
        const double x = rng.uniform(f.min.x + 2, f.max.x - 2);
        const geo::Point inside{x, f.min.y + rng.uniform(2.0, 8.0)};
        const geo::Point outside{x, f.min.y - 4.0};
        nr_in.add(dep.dl_bitrate_bps(radio::Rat::kNr, inside));
        nr_out.add(dep.dl_bitrate_bps(radio::Rat::kNr, outside));
        lte_in.add(dep.dl_bitrate_bps(radio::Rat::kLte, inside));
        lte_out.add(dep.dl_bitrate_bps(radio::Rat::kLte, outside));
      }
    }
    const double nr_drop = 1.0 - nr_in.mean() / nr_out.mean();
    const double lte_drop = 1.0 - lte_in.mean() / lte_out.mean();

    TextTable t("Fig. 3 — indoor/outdoor bit-rate gap",
                {"network", "outdoor (Mbps)", "indoor (Mbps)",
                 "drop measured", "drop paper"});
    t.add_row({"5G", TextTable::num(nr_out.mean() / 1e6, 0),
               TextTable::num(nr_in.mean() / 1e6, 0),
               TextTable::pct(nr_drop), TextTable::pct(paper::kNrIndoorDrop)});
    t.add_row({"4G", TextTable::num(lte_out.mean() / 1e6, 0),
               TextTable::num(lte_in.mean() / 1e6, 0),
               TextTable::pct(lte_drop),
               TextTable::pct(paper::kLteIndoorDrop)});
    t.print(*ctx.out);
    ctx.metric("nr_indoor_drop", nr_drop, "fraction");
    ctx.metric("lte_indoor_drop", lte_drop, "fraction");
  }
};

}  // namespace

void register_coverage_experiments() {
  register_experiment<Table1Experiment>();
  register_experiment<Table2Experiment>();
  register_experiment<Fig2Experiment>();
  register_experiment<Fig3Experiment>();
}

}  // namespace fiveg::core

// Latency experiments: Fig. 13 (4G vs 5G RTT over many paths), Fig. 14
// (per-hop RTT breakdown) and Fig. 15 (RTT vs geographic path length over
// the Table 6 server set).
#include <ostream>

#include "core/experiment.h"
#include "core/paper.h"
#include "core/scenario.h"
#include "measure/stats.h"
#include "measure/table.h"
#include "net/topology.h"
#include "net/traceroute.h"

namespace fiveg::core {
namespace {

using measure::TextTable;
using sim::kSecond;

// Mean end-to-end RTT (ms) to a server over a RAT, via 30 probes.
measure::RunningStats path_rtt_ms(radio::Rat rat,
                                  const net::ServerInfo& server,
                                  std::uint64_t seed) {
  sim::Simulator simr;
  net::CellularPathOptions opt = make_server_path_options(rat, server);
  net::PathNetwork path(&simr, make_cellular_path(opt, sim::Rng(seed)));
  measure::RunningStats rtt;
  for (int i = 0; i < 30; ++i) {
    simr.schedule_in(i * 100 * sim::kMillisecond, [&] {
      path.probe(path.hop_count(),
                 [&](sim::Time t) { rtt.add(sim::to_millis(t)); });
    });
  }
  simr.run();
  return rtt;
}

class Fig13Experiment final : public Experiment {
 public:
  std::string name() const override { return "fig13_rtt_scatter"; }
  std::string paper_ref() const override { return "Figure 13"; }
  std::string description() const override {
    return "4G vs 5G RTT across 80 wide-area paths: ~22 ms constant gap";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    // 4 gNB sites x 20 servers = 80 paths, like the paper.
    measure::RunningStats nr_all, lte_all, gap;
    TextTable t("Fig. 13 — per-server RTT (ms), averaged over 4 sites",
                {"city", "5G RTT", "4G RTT", "gap"});
    for (const net::ServerInfo& server : net::speedtest_servers()) {
      measure::RunningStats nr_mean, lte_mean;
      for (int site = 0; site < 4; ++site) {
        const auto nr = path_rtt_ms(radio::Rat::kNr, server,
                                    ctx.seed + 17 * site);
        const auto lte = path_rtt_ms(radio::Rat::kLte, server,
                                     ctx.seed + 17 * site);
        nr_mean.add(nr.mean());
        lte_mean.add(lte.mean());
        nr_all.add(nr.mean());
        lte_all.add(lte.mean());
        gap.add(lte.mean() - nr.mean());
      }
      t.add_row({server.city, TextTable::num(nr_mean.mean(), 1),
                 TextTable::num(lte_mean.mean(), 1),
                 TextTable::num(lte_mean.mean() - nr_mean.mean(), 1)});
    }
    t.print(*ctx.out);

    TextTable s("Fig. 13 summary", {"metric", "measured", "paper"});
    s.add_row({"5G one-way latency (ms)",
               TextTable::num(nr_all.mean() / 2, 1),
               TextTable::num(paper::kNrOneWayMs, 1)});
    s.add_row({"RTT gap 4G - 5G (ms)", TextTable::num(gap.mean(), 1),
               TextTable::num(paper::kRttGapMs, 1)});
    s.print(*ctx.out);
    ctx.metric("nr_one_way_ms", nr_all.mean() / 2, "ms");
    ctx.metric("rtt_gap_ms", gap.mean(), "ms");
  }
};

class Fig14Experiment final : public Experiment {
 public:
  std::string name() const override { return "fig14_hop_breakdown"; }
  std::string paper_ref() const override { return "Figure 14"; }
  std::string description() const override {
    return "Per-hop RTT on an 8-hop path: the flat 5G core saves ~20 ms at "
           "hop 2; the RAN saves <1 ms";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    TextTable t("Fig. 14 — RTT vs hop count (ms)",
                {"hop", "5G", "4G", "note"});
    std::array<std::vector<double>, 2> rtts;  // [0]=5G, [1]=4G
    for (const radio::Rat rat : {radio::Rat::kNr, radio::Rat::kLte}) {
      sim::Simulator simr;
      net::CellularPathOptions opt;
      opt.rat = rat;
      opt.ran.rat = rat;
      opt.ran.bitrate_bps =
          baseline_rate_bps(rat, ran::LoadRegime::kDay, Direction::kUplink);
      opt.wired_hops = 6;  // 8 hops total, like the paper's example path
      net::PathNetwork path(&simr,
                            make_cellular_path(opt, sim::Rng(ctx.seed)));
      net::Traceroute tr(&simr, &path, 30, 200 * sim::kMillisecond);
      std::vector<net::HopRtt> hops;
      tr.run([&](std::vector<net::HopRtt> r) { hops = std::move(r); });
      simr.run();
      auto& dst = rtts[rat == radio::Rat::kNr ? 0 : 1];
      for (const auto& h : hops) dst.push_back(h.rtt_ms.mean());
    }
    for (std::size_t h = 0; h < rtts[0].size(); ++h) {
      std::string note;
      if (h == 0) note = "RAN (paper: 2.19 vs 2.6)";
      if (h == 1) note = "EPC/fronthaul (paper: ~20 ms apart)";
      t.add_row({std::to_string(h + 1), TextTable::num(rtts[0][h], 2),
                 TextTable::num(rtts[1][h], 2), note});
      ctx.metric_point("nr_rtt_by_hop", static_cast<double>(h + 1),
                       rtts[0][h], "ms");
      ctx.metric_point("lte_rtt_by_hop", static_cast<double>(h + 1),
                       rtts[1][h], "ms");
    }
    t.print(*ctx.out);
  }
};

class Fig15Experiment final : public Experiment {
 public:
  std::string name() const override { return "fig15_rtt_distance"; }
  std::string paper_ref() const override { return "Figure 15 / Table 6"; }
  std::string description() const override {
    return "RTT vs path length: wireline distance swamps 5G's edge gains";
  }
  bool smoke() const override { return true; }

  void run(const ExperimentContext& ctx) override {
    TextTable t("Fig. 15 — RTT vs geographic distance",
                {"server", "km", "5G RTT (ms)", "4G RTT (ms)",
                 "gap/RTT"});
    measure::RunningStats rtt_2500;
    for (const net::ServerInfo& server : net::speedtest_servers()) {
      const auto nr = path_rtt_ms(radio::Rat::kNr, server, ctx.seed + 29);
      const auto lte = path_rtt_ms(radio::Rat::kLte, server, ctx.seed + 29);
      if (server.distance_km > 2200 && server.distance_km < 2600) {
        rtt_2500.add(nr.mean());
      }
      t.add_row({server.city, TextTable::num(server.distance_km, 0),
                 TextTable::num(nr.mean(), 1), TextTable::num(lte.mean(), 1),
                 TextTable::pct((lte.mean() - nr.mean()) / lte.mean())});
      ctx.metric_point("nr_rtt_vs_km", server.distance_km, nr.mean(), "ms");
    }
    t.print(*ctx.out);
    if (rtt_2500.count() > 0) {
      *ctx.out << "5G RTT near 2500 km: " << TextTable::num(rtt_2500.mean(), 1)
               << " ms (paper: up to " << paper::kRttAt2500KmMs
               << " ms on average)\n\n";
    }
  }
};

}  // namespace

void register_latency_experiments() {
  register_experiment<Fig13Experiment>();
  register_experiment<Fig14Experiment>();
  register_experiment<Fig15Experiment>();
}

}  // namespace fiveg::core

#include "core/scenario.h"

#include <algorithm>
#include <utility>

#include "core/paper.h"
#include "obs/prof.h"

namespace fiveg::core {
namespace {

// Written once by the CLI before any experiment thread starts, then only
// read — no locking needed.
net::QdiscConfig g_campaign_qdisc;  // default-constructed = drop-tail

// Scenario/Testbed construction is the self-profiler's "construct" phase;
// wrapping the factory calls lets the phase cover work done in constructor
// initializer lists.
template <typename Fn>
auto timed_construct(Fn&& fn) {
  const obs::prof::ScopedPhase phase("construct");
  return std::forward<Fn>(fn)();
}

}  // namespace

void set_campaign_bottleneck_qdisc(const net::QdiscConfig& qdisc) {
  g_campaign_qdisc = qdisc;
}

const net::QdiscConfig& campaign_bottleneck_qdisc() noexcept {
  return g_campaign_qdisc;
}

Scenario::Scenario(std::uint64_t seed)
    : campus_(timed_construct(
          [&] { return geo::make_campus(sim::Rng(seed).fork("campus")); })),
      deployment_(timed_construct([&] {
        return ran::make_deployment(&campus_,
                                    sim::Rng(seed).fork("deployment"));
      })) {}

CityScenario::CityScenario(std::uint64_t seed, const CityConfig& config)
    : config_(config),
      campus_(timed_construct([&] {
        return geo::make_city_campus(sim::Rng(seed).fork("city_campus"),
                                     config.width_m, config.height_m,
                                     config.open_fraction);
      })),
      deployment_(timed_construct([&] {
        return ran::make_city_deployment(
            &campus_, sim::Rng(seed).fork("city_deployment"), config.grid);
      })) {}

double baseline_rate_bps(radio::Rat rat, ran::LoadRegime regime,
                         Direction direction) noexcept {
  const bool nr = rat == radio::Rat::kNr;
  if (direction == Direction::kDownlink) {
    if (nr) {
      return (regime == ran::LoadRegime::kDay ? paper::kNrUdpDayMbps
                                              : paper::kNrUdpNightMbps) *
             1e6;
    }
    return (regime == ran::LoadRegime::kDay ? paper::kLteUdpDayMbps
                                            : paper::kLteUdpNightMbps) *
           1e6;
  }
  if (nr) return paper::kNrUdpUlMbps * 1e6;
  return (regime == ran::LoadRegime::kDay ? paper::kLteUdpUlDayMbps : 100.0) *
         1e6;
}

Testbed::Testbed(sim::Simulator* simulator, const TestbedOptions& options,
                 std::uint64_t seed) {
  const obs::prof::ScopedPhase phase("construct");
  sim::Rng rng(seed);
  ran_rate_bps_ = options.ran_rate_bps > 0
                      ? options.ran_rate_bps
                      : baseline_rate_bps(options.rat, options.regime,
                                          options.direction);

  net::CellularPathOptions path_opt;
  path_opt.rat = options.rat;
  path_opt.ran.rat = options.rat;
  path_opt.ran.bitrate_bps = ran_rate_bps_;
  path_opt.ran.blocked_fn = options.ran_blocked_fn;
  path_opt.server_distance_km = options.server_distance_km;
  if (options.wired_hops > 0) path_opt.wired_hops = options.wired_hops;
  if (options.bottleneck_buffer_bytes != 0) {
    path_opt.bottleneck_buffer_bytes = options.bottleneck_buffer_bytes;
  }
  path_opt.bottleneck_qdisc =
      options.bottleneck_qdisc.value_or(campaign_bottleneck_qdisc());
  auto hops = make_cellular_path(path_opt, rng.fork("path"));

  std::size_t bottleneck = net::kBottleneckHopIndex;
  if (options.direction == Direction::kDownlink) {
    // A is the cloud: the UE-adjacent RAN hop goes last.
    std::reverse(hops.begin(), hops.end());
    bottleneck = hops.size() - 1 - bottleneck;
  }
  bottleneck_index_ = bottleneck;

  path_ = std::make_unique<net::PathNetwork>(simulator, std::move(hops));
  fanout_ = std::make_unique<app::PathFanout>(path_.get());

  if (options.cross_traffic) {
    net::CrossTraffic::Config xcfg;
    xcfg.flow_id = 9999;
    // Ambient metro bursts: calibrated so UDP loss lands on Fig. 9's
    // curve (5G >= 10x the 4G loss at matched offered fractions).
    xcfg.mean_off_s = 0.35;
    xcfg.mean_on_s = 0.06;
    xcfg.min_rate_bps = 150e6;
    xcfg.max_rate_bps = 1300e6;
    cross_ = std::make_unique<net::CrossTraffic>(
        simulator, &path_->forward_link(bottleneck_index_), xcfg,
        rng.fork("cross"));
  }
}

void Testbed::start_cross_traffic(sim::Time until) {
  if (cross_ != nullptr) cross_->start(until);
}

sim::Time city_partition_lookahead(const PartitionedCityConfig& config) {
  // ~5 us/km one-way in fibre (2e8 m/s). Districts interact through the
  // metro core only — radio reach ends well inside a district — so this
  // propagation floor is a conservative bound on cross-lane influence.
  constexpr double kFibreUsPerKm = 5.0;
  const double one_way_us =
      std::max(config.backhaul_km, 0.0) * kFibreUsPerKm;
  const sim::Time floor_ns = 100 * sim::kMicrosecond;
  return std::max(floor_ns,
                  static_cast<sim::Time>(one_way_us * 1e3));
}

}  // namespace fiveg::core

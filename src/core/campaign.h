// Campaign manifests (schema "fiveg-campaign/v1"): a JSON description of
// a parameter grid — seeds × bottleneck qdisc × fault plans — that
// `fiveg_runall --manifest` expands into cells and runs, and that
// `--shard k/N` splits across independent invocations (different
// machines, CI matrix jobs) with no coordination beyond the manifest
// file itself.
//
// Example:
//
//   {
//     "schema": "fiveg-campaign/v1",
//     "name": "aqm-grid",
//     "smoke": true,
//     "filter": "",
//     "axes": {
//       "seed": [42, 43],
//       "qdisc": ["droptail", "codel", "fq_codel+ecn"],
//       "faults": ["", "tests/data/faults.json"]
//     }
//   }
//
// Every axis is optional; a missing axis contributes its single default
// value (seed 42, qdisc "droptail", no fault plan). Cells are the cross
// product in seed-major order. Each cell runs at its own base seed,
// derived by forking the axis seed with the cell's parameter tag —
// two cells that differ only in qdisc therefore never collide in the
// (name, seed)-keyed ledger, and re-running any shard is idempotent.
//
// The work unit of sharding is (cell, experiment), not cell: units are
// enumerated in canonical order and unit i belongs to shard i mod N, so
// shards balance even when one cell's experiments dominate the runtime.
// The union of shards 0..N-1 is exactly the full campaign for any N.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fiveg::core {

inline constexpr std::string_view kCampaignSchema = "fiveg-campaign/v1";

/// One grid cell: a full parameter assignment for a campaign run.
struct CampaignCell {
  std::uint64_t axis_seed = 42;  // the seed-axis value
  std::string qdisc;             // qdisc spec, e.g. "codel+ecn"
  std::string faults;            // fault plan path; "" = no injection

  /// The cell's parameter tag, e.g. "qdisc=codel;faults=f.json" — the
  /// fork key its base seed is derived from, and the human-readable cell
  /// id in logs.
  [[nodiscard]] std::string tag() const;

  /// The base seed this cell's experiments fork from:
  /// Rng(axis_seed).fork(tag()).seed(). Distinct for every cell of a
  /// campaign, so ledger records (keyed by experiment name + seed) from
  /// different cells never satisfy each other's resume checks.
  [[nodiscard]] std::uint64_t base_seed() const;

  /// The store labels identifying this cell: {"faults", ...},
  /// {"qdisc", ...} (sorted by key, as StoreRecord requires).
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> labels()
      const;
};

/// A parsed manifest.
struct CampaignManifest {
  std::string name;
  bool smoke = false;   // restrict to the smoke experiment tier
  std::string filter;   // substring filter on experiment names
  std::vector<std::uint64_t> seeds;  // never empty after parse
  std::vector<std::string> qdiscs;   // validated specs; never empty
  std::vector<std::string> faults;   // paths, "" allowed; never empty

  /// The cross product, seed-major then qdisc then faults, in axis order.
  [[nodiscard]] std::vector<CampaignCell> cells() const;
};

/// Parses manifest JSON. On failure returns false with a description in
/// *error (unknown schema, malformed axis, invalid qdisc spec, ...).
[[nodiscard]] bool parse_manifest(std::string_view text,
                                  CampaignManifest* out, std::string* error);

/// Reads and parses a manifest file.
[[nodiscard]] bool load_manifest(const std::string& path,
                                 CampaignManifest* out, std::string* error);

/// One schedulable unit: a single experiment of a single cell.
struct CampaignUnit {
  std::size_t cell = 0;    // index into the manifest's cells()
  std::string experiment;  // registry name
};

/// All units in canonical order: cell-major, experiment name within the
/// cell (experiment lists arrive sorted from the registry).
[[nodiscard]] std::vector<CampaignUnit> campaign_units(
    std::size_t cell_count, const std::vector<std::string>& experiments);

/// The subset of `units` assigned to shard k of n (unit i goes to shard
/// i mod n), preserving canonical order. Requires k < n.
[[nodiscard]] std::vector<CampaignUnit> shard_units(
    const std::vector<CampaignUnit>& units, std::size_t k, std::size_t n);

/// Parses a "k/N" shard spec (k in [0, N), N >= 1).
[[nodiscard]] bool parse_shard_spec(std::string_view spec, std::size_t* k,
                                    std::size_t* n);

}  // namespace fiveg::core

#include "core/store.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/codec.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace fiveg::core {

namespace {

using obs::codec::Reader;

constexpr char kMagic[4] = {'F', 'G', 'R', 'S'};
constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kFrameDict = 'D';
constexpr std::uint8_t kFrameRecord = 'R';
// magic + version + type + u32 payload length.
constexpr std::size_t kHeaderSize = 10;
// u64 payload checksum.
constexpr std::size_t kTrailerSize = 8;

// Same checksum family as the ledger: catches torn writes and disk
// corruption, not adversaries.
std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void put_u32le(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64le(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64le(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

void append_frame(std::string* out, std::uint8_t type,
                  std::string_view payload) {
  out->append(kMagic, sizeof kMagic);
  out->push_back(static_cast<char>(kVersion));
  out->push_back(static_cast<char>(type));
  put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  out->append(payload);
  put_u64le(out, fnv1a64(payload));
}

std::uint8_t status_byte(RunStatus status) {
  switch (status) {
    case RunStatus::kOk:
      return 0;
    case RunStatus::kFailed:
      return 1;
    case RunStatus::kTimedOut:
      return 2;
  }
  return 0;
}

bool status_from(std::uint8_t b, RunStatus* out) {
  switch (b) {
    case 0:
      *out = RunStatus::kOk;
      return true;
    case 1:
      *out = RunStatus::kFailed;
      return true;
    case 2:
      *out = RunStatus::kTimedOut;
      return true;
    default:
      return false;
  }
}

// Record payload: the deterministic core, encoded against the file-wide
// dictionary. Field order is fixed; the intern callback is invoked in
// exactly this order, which makes the dictionary delta of a record
// deterministic too.
std::string encode_record(const StoreRecord& rec,
                          const obs::codec::StringIntern& intern) {
  using obs::codec::put_f64;
  using obs::codec::put_string;
  using obs::codec::put_varint;
  const ExperimentResult& r = rec.result;
  std::string out;
  put_varint(&out, intern(r.name));
  put_varint(&out, r.seed);
  out.push_back(static_cast<char>(status_byte(r.status)));
  put_string(&out, r.error);
  put_varint(&out, intern(r.paper_ref));
  put_varint(&out, intern(r.description));
  put_varint(&out, rec.labels.size());
  for (const auto& [key, value] : rec.labels) {
    put_varint(&out, intern(key));
    put_varint(&out, intern(value));
  }
  put_varint(&out, r.metrics.size());
  for (const MetricSeries& s : r.metrics) {
    put_varint(&out, intern(s.name));
    put_varint(&out, intern(s.unit));
    put_varint(&out, s.points.size());
    for (const MetricPoint& p : s.points) {
      put_f64(&out, p.x);
      put_f64(&out, p.y);
    }
  }
  obs::codec::encode_snapshots(&out, r.counters, intern);
  put_string(&out, r.text);
  return out;
}

bool decode_record(std::string_view payload,
                   const std::vector<std::string>& dict, StoreRecord* out) {
  Reader r(payload);
  const auto resolve = [&dict](std::uint64_t id, std::string* s) {
    if (id >= dict.size()) return false;
    *s = dict[static_cast<std::size_t>(id)];
    return true;
  };
  const auto get_interned = [&](std::string* s) {
    std::uint64_t id = 0;
    return r.get_varint(&id) && resolve(id, s);
  };

  ExperimentResult& res = out->result;
  std::uint8_t status = 0;
  if (!get_interned(&res.name) || !r.get_varint(&res.seed) ||
      !r.get_byte(&status) || !status_from(status, &res.status) ||
      !r.get_string(&res.error) || !get_interned(&res.paper_ref) ||
      !get_interned(&res.description)) {
    return false;
  }

  std::uint64_t n = 0;
  if (!r.get_varint(&n)) return false;
  std::string prev_key;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key;
    std::string value;
    if (!get_interned(&key) || !get_interned(&value)) return false;
    // Labels are canonical on disk: strictly ascending keys.
    if (i > 0 && key <= prev_key) return false;
    prev_key = key;
    out->labels.emplace_back(std::move(key), std::move(value));
  }

  if (!r.get_varint(&n)) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    MetricSeries series;
    std::uint64_t npoints = 0;
    if (!get_interned(&series.name) || !get_interned(&series.unit) ||
        !r.get_varint(&npoints)) {
      return false;
    }
    series.points.reserve(static_cast<std::size_t>(npoints));
    for (std::uint64_t j = 0; j < npoints; ++j) {
      MetricPoint p;
      if (!r.get_f64(&p.x) || !r.get_f64(&p.y)) return false;
      series.points.push_back(p);
    }
    res.metrics.push_back(std::move(series));
  }

  if (!obs::codec::decode_snapshots(&r, obs::MetricClock::kSim, resolve,
                                    &res.counters)) {
    return false;
  }
  if (!r.get_string(&res.text)) return false;
  return r.done();
}

// Parse outcome plus the reconstructed dictionary (the writer reopens a
// shard through this to resume interning where the file left off).
struct ParseState {
  StoreLoad load;
  std::vector<std::string> dict;
};

ParseState parse_impl(std::string_view bytes) {
  ParseState st;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kHeaderSize + kTrailerSize) break;
    const char* h = bytes.data() + pos;
    if (std::memcmp(h, kMagic, sizeof kMagic) != 0) break;
    const auto version = static_cast<std::uint8_t>(h[4]);
    const auto type = static_cast<std::uint8_t>(h[5]);
    if (version != kVersion ||
        (type != kFrameDict && type != kFrameRecord)) {
      break;
    }
    const std::uint32_t len = get_u32le(h + 6);
    if (bytes.size() - pos - kHeaderSize - kTrailerSize < len) break;
    const std::string_view payload = bytes.substr(pos + kHeaderSize, len);
    if (get_u64le(bytes.data() + pos + kHeaderSize + len) !=
        fnv1a64(payload)) {
      break;
    }

    if (type == kFrameDict) {
      // A dictionary frame every later record depends on: a decode
      // failure here (impossible without external tampering, given the
      // checksum passed) invalidates everything after it, so stop.
      Reader r(payload);
      std::uint64_t n = 0;
      if (!r.get_varint(&n)) break;
      std::vector<std::string> fresh;
      bool ok = true;
      for (std::uint64_t i = 0; i < n; ++i) {
        std::string s;
        if (!r.get_string(&s)) {
          ok = false;
          break;
        }
        fresh.push_back(std::move(s));
      }
      if (!ok || !r.done()) break;
      for (std::string& s : fresh) st.dict.push_back(std::move(s));
    } else {
      StoreRecord rec;
      if (decode_record(payload, st.dict, &rec)) {
        st.load.records.push_back(std::move(rec));
      } else {
        ++st.load.dropped_records;
      }
    }
    pos += kHeaderSize + len + kTrailerSize;
    st.load.valid_bytes = pos;
  }
  st.load.truncated_tail = st.load.valid_bytes < bytes.size();
  return st;
}

std::string seed_to_string(std::uint64_t seed) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, seed);
  return std::string(buf);
}

}  // namespace

std::string StoreRecord::key() const {
  // '\x1f' (unit separator) cannot appear in experiment names or label
  // keys/values, so the join is unambiguous.
  std::string out = result.name;
  out += '\x1f';
  out += seed_to_string(result.seed);
  for (const auto& [k, v] : labels) {
    out += '\x1f';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

bool store_record_less(const StoreRecord& a, const StoreRecord& b) {
  if (a.result.name != b.result.name) return a.result.name < b.result.name;
  if (a.result.seed != b.result.seed) return a.result.seed < b.result.seed;
  return a.labels < b.labels;
}

StoreLoad parse_store(std::string_view bytes) {
  return parse_impl(bytes).load;
}

StoreLoad load_store_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    StoreLoad load;
    load.error = "cannot open store shard: " + path;
    return load;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse_store(buf.str());
}

StoreDirLoad load_store_dir(const std::string& dir) {
  StoreDirLoad out;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    out.error = "cannot open store directory: " + dir + ": " + ec.message();
    return out;
  }
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    std::string p = entry.path().string();
    if (p.size() < kStoreFileSuffix.size() ||
        p.compare(p.size() - kStoreFileSuffix.size(),
                  kStoreFileSuffix.size(), kStoreFileSuffix) != 0) {
      continue;
    }
    out.files.push_back(std::move(p));
  }
  std::sort(out.files.begin(), out.files.end());
  for (const std::string& path : out.files) {
    StoreLoad load = load_store_file(path);
    if (!load.ok()) {
      out.error = load.error;
      return out;
    }
    if (load.truncated_tail) ++out.torn_files;
    out.dropped_records += load.dropped_records;
    for (StoreRecord& rec : load.records) {
      out.records.push_back(std::move(rec));
    }
  }
  return out;
}

std::vector<StoreRecord> canonical_view(std::vector<StoreRecord> records) {
  // Last record with a given key wins, mirroring the ledger's resume
  // semantics (a post-crash re-run is appended after — and supersedes —
  // the run it replaces).
  std::map<std::string, std::size_t> last;
  for (std::size_t i = 0; i < records.size(); ++i) {
    last[records[i].key()] = i;
  }
  std::vector<StoreRecord> out;
  out.reserve(last.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (last[records[i].key()] == i) out.push_back(std::move(records[i]));
  }
  std::sort(out.begin(), out.end(), store_record_less);
  return out;
}

StoreWriter::StoreWriter(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  fd_ = ::open(path.c_str(), O_RDWR | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    error_ = "cannot open store shard for append: " + path + ": " +
             std::strerror(errno);
    return;
  }
  // Scan what's already there: rebuild the dictionary and present-key
  // set, and seal a torn tail so the next frame starts on a clean
  // boundary.
  struct stat st {};
  if (::fstat(fd_, &st) != 0) {
    error_ = "cannot stat store shard: " + path + ": " + std::strerror(errno);
    return;
  }
  std::string bytes(static_cast<std::size_t>(st.st_size), '\0');
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::pread(fd_, bytes.data() + off, bytes.size() - off,
                              static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      error_ = "cannot read store shard: " + path + ": " +
               std::strerror(errno);
      return;
    }
    if (n == 0) {
      bytes.resize(off);
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  ParseState state = parse_impl(bytes);
  if (state.load.truncated_tail &&
      ::ftruncate(fd_, static_cast<off_t>(state.load.valid_bytes)) != 0) {
    error_ = "cannot seal torn store shard: " + path + ": " +
             std::strerror(errno);
    return;
  }
  for (std::string& s : state.dict) {
    dict_.emplace(std::move(s), next_id_++);
  }
  for (const StoreRecord& rec : state.load.records) {
    present_.insert(rec.key());
  }
#else
  (void)path;
  error_ = "store writer requires a POSIX platform";
#endif
}

StoreWriter::~StoreWriter() {
#if defined(__unix__) || defined(__APPLE__)
  if (fd_ >= 0) ::close(fd_);
#endif
}

bool StoreWriter::contains(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return present_.count(key) != 0;
}

std::size_t StoreWriter::appended() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

bool StoreWriter::append(const StoreRecord& rec) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!ok()) return false;
  std::string key = rec.key();
  if (present_.count(key) != 0) return true;

#if defined(__unix__) || defined(__APPLE__)
  // Intern against the live dictionary, collecting first-use strings for
  // this record's dictionary delta frame.
  std::vector<std::string_view> fresh;
  const auto intern = [this, &fresh](std::string_view s) {
    const auto it = dict_.find(s);
    if (it != dict_.end()) return it->second;
    const std::uint64_t id = next_id_++;
    const auto inserted = dict_.emplace(std::string(s), id).first;
    fresh.push_back(inserted->first);
    return id;
  };
  const std::string payload = encode_record(rec, intern);

  std::string out;
  if (!fresh.empty()) {
    std::string dict_payload;
    obs::codec::put_varint(&dict_payload, fresh.size());
    for (const std::string_view s : fresh) {
      obs::codec::put_string(&dict_payload, s);
    }
    append_frame(&out, kFrameDict, dict_payload);
  }
  append_frame(&out, kFrameRecord, payload);

  // One write() for dict delta + record: O_APPEND keeps concurrent
  // workers' frames contiguous, and a crash tears at most this tail.
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::write(fd_, out.data() + off, out.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("store write failed: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  present_.insert(std::move(key));
  ++appended_;
  return true;
#else
  return false;
#endif
}

}  // namespace fiveg::core

// Parallel experiment runner: executes the registry across a thread pool
// with deterministic per-experiment seed forking, so a --jobs 8 campaign is
// byte-identical to a serial one at the same base seed. Each experiment
// writes into its own buffer and structured result; output is emitted in
// sorted-name order once the campaign finishes. A hung experiment is
// abandoned at the per-experiment timeout and reported, not fatal.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/experiment.h"

namespace fiveg::fault {
class FaultPlan;
}

namespace fiveg::core {

class StoreWriter;

struct RunnerOptions {
  int jobs = 1;              // <= 0 -> hardware concurrency
  // Intra-experiment parallelism (sim::ParSim lane workers) per
  // experiment. Explicit values are honored as given; <= 0 means auto:
  // hardware concurrency divided across --jobs (max(1, hw / jobs) per
  // experiment), so `--jobs 0 --sim-threads 0` saturates the machine
  // without oversubscribing it. Output is byte-identical for every value
  // — parallel determinism is ParSim's contract, which is what makes
  // this knob safe to auto-tune.
  int sim_threads = 1;
  std::uint64_t seed = 42;   // base seed; each experiment gets a fork of it
  std::string filter;        // substring match on the name; empty = all
  bool smoke_only = false;   // only experiments with smoke() == true
  // Explicit run list (campaign sharding, see core/campaign.h): when
  // non-empty, exactly these experiments run — filter/smoke_only still
  // apply on top, and names unknown to the registry are ignored.
  std::vector<std::string> only_names;
  double timeout_s = 0;      // per-experiment wall-clock cap; 0 = unlimited
  // Observability: each experiment runs under its own obs::Scope. Metrics
  // fill ExperimentResult::counters/profile; tracing additionally buffers
  // an event trace per experiment (ExperimentResult::trace).
  bool collect_metrics = true;
  bool trace = false;
  std::size_t trace_capacity = 0;  // events per experiment; 0 = default
  // Fault injection: every experiment runs under this plan (fault seeds
  // are per-experiment forks, so the campaign stays --jobs-deterministic).
  // Null or empty = no injection; the fault path is inert.
  std::shared_ptr<const fault::FaultPlan> faults;
  // Campaign ledger (see core/ledger.h): when set, one fiveg-ledger/v1
  // JSONL record is appended per completed run, as it completes.
  std::string ledger_path;
  // Resume set from a prior ledger (core/ledger.h completed_runs): runs
  // found here are spliced into the summary verbatim instead of executing,
  // and are not re-appended to the ledger. Because records carry the full
  // result, the merged campaign output is byte-identical to an
  // uninterrupted run.
  std::shared_ptr<const std::map<std::string, ExperimentResult>> resume;
  // Columnar result store (core/store.h): when set, one fiveg-rs/v1
  // record per completed run is appended, tagged with `store_labels`
  // (the campaign cell's dimensions; sorted by key). Resumed runs are
  // appended too — the writer deduplicates by key, so splicing a ledger
  // backfills exactly the store records a crash lost and no more.
  std::shared_ptr<StoreWriter> store;
  std::vector<std::pair<std::string, std::string>> store_labels;
  // Live telemetry: a heartbeat line on stderr every `progress_period_s`
  // (done/failed/running counts plus an ETA extrapolated from completed
  // wall_ms history, seeded by the resume set's recorded timings). stderr
  // only — stdout stays byte-identical with or without it.
  bool progress = false;
  double progress_period_s = 2.0;
};

/// Outcome of a whole campaign. `results` is sorted by experiment name,
/// independent of completion order.
struct RunSummary {
  std::vector<ExperimentResult> results;
  double wall_ms = 0;  // whole-campaign wall clock

  [[nodiscard]] int count(RunStatus status) const;
  [[nodiscard]] bool all_ok() const;
};

class Runner {
 public:
  /// `registry` is borrowed; null means the global instance.
  explicit Runner(RunnerOptions opt, ExperimentRegistry* registry = nullptr);

  /// Names selected by the filter/smoke options, sorted.
  [[nodiscard]] std::vector<std::string> selected() const;

  /// Runs every selected experiment across the thread pool.
  RunSummary run() const;

  /// The per-experiment seed: sim::Rng fork semantics keyed by experiment
  /// name, so adding an experiment never perturbs the seeds of others.
  [[nodiscard]] static std::uint64_t fork_seed(std::uint64_t base_seed,
                                               std::string_view name);

 private:
  ExperimentResult run_one(const std::string& name) const;

  RunnerOptions opt_;
  ExperimentRegistry* registry_;
};

/// Emits the campaign's captured text output in sorted-name order, followed
/// by a one-line status summary. Byte-identical for any --jobs value (no
/// timing is printed here).
void write_text(const RunSummary& summary, std::ostream& os);

/// Emits the machine-readable JSON document (schema "fiveg-runall/v4").
/// Each experiment carries a flat `counters` object (deterministic kSim
/// metrics), optional `histograms` / `digests` objects with full bucket
/// payloads, and, when `include_timing` is on, a `profile` object (kWall
/// metrics) plus `wall_ms` / `peak_rss_kb`. `include_timing` off drops
/// every wall-clock field so two runs at the same seed compare
/// byte-identical regardless of parallelism.
///
/// Schema changelog:
///   v4: per-experiment `peak_rss_kb` and a summary `peak_rss_kb`
///       (campaign-wide max), both timing-gated like `wall_ms`; wall_ms
///       and peak_rss_kb are now guaranteed on every status, including
///       failed and timed-out runs.
///   v3: full `histograms` / `digests` bucket payloads.
void write_json(const RunSummary& summary, std::ostream& os,
                bool include_timing = true);

/// Per-experiment wall-clock report (slowest first), for humans on stderr.
void write_timing(const RunSummary& summary, std::ostream& os);

/// Human-readable per-experiment metrics report (the --metrics flag):
/// deterministic counters always, kWall profiling when `include_timing`.
void write_metrics(const RunSummary& summary, std::ostream& os,
                   bool include_timing = true);

/// Merges every experiment's trace into one Chrome trace_event JSON
/// document: one "process" per experiment (sorted order), one "thread" per
/// layer category. `include_wall` off drops wall-clock side data so traces
/// diff clean across --jobs values.
void write_chrome_trace(const RunSummary& summary, std::ostream& os,
                        bool include_wall = true);

}  // namespace fiveg::core

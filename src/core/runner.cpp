#include "core/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <iostream>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include <optional>

#include "core/ledger.h"
#include "core/store.h"
#include "fault/fault.h"
#include "measure/json.h"
#include "obs/chrome_trace.h"
#include "obs/obs.h"
#include "obs/prof.h"
#include "sim/rng.h"

namespace fiveg::core {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Shared between the worker and the (possibly abandoned) experiment thread.
// On timeout the worker walks away and the thread keeps writing here until
// the experiment returns; the shared_ptr keeps the state alive for it.
struct ExecState {
  std::ostringstream out;
  ExperimentResult result;
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
};

// Observability settings copied out of RunnerOptions: the experiment may
// run on a detached thread that outlives the Runner, so it must not hold a
// reference back into it.
struct ExecOptions {
  bool collect_metrics = true;
  bool trace = false;
  std::size_t trace_capacity = 0;
  std::shared_ptr<const fault::FaultPlan> faults;
  int sim_threads = 1;
};

// Inter/intra parallelism split. An explicit --sim-threads value is
// honored as given (capped sanely): the caller asked for that many lane
// workers per experiment and output never depends on the count. Auto
// (<= 0) divides the machine between the two axes — each of the `jobs`
// concurrent experiments gets max(1, hw / jobs) lane workers, so
// `--jobs 0 --sim-threads 0` saturates without oversubscribing.
int split_sim_threads(const RunnerOptions& opt) {
  if (opt.sim_threads > 0) return std::min(opt.sim_threads, 64);
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw <= 0) hw = 1;
  const int jobs = std::max(opt.jobs <= 0 ? hw : opt.jobs, 1);
  return std::max(1, hw / jobs);
}

// Runs the experiment body, capturing text, metrics and exceptions. The
// obs scope is installed here — on the thread the body actually runs on —
// so every Simulator and protocol object the experiment builds picks up
// this experiment's private registry/tracer.
void execute(Experiment& exp, std::uint64_t seed, ExecState& state,
             ExecOptions obs_opt) {
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::shared_ptr<obs::Tracer> tracer;
  if (obs_opt.collect_metrics) {
    registry = std::make_unique<obs::MetricsRegistry>();
  }
  if (obs_opt.trace) {
    tracer = std::make_shared<obs::Tracer>(
        obs_opt.trace_capacity != 0 ? obs_opt.trace_capacity
                                    : obs::Tracer::kDefaultCapacity);
  }
  const obs::ScopedObs scope(tracer.get(), registry.get());

  // Fault injection: install the runtime before the experiment body runs,
  // so every Simulator (which arms the plan at construction) and every
  // injection point (which caches the runtime handle at construction) sees
  // it. The fault seed is a named fork of the experiment seed — fault
  // randomness never perturbs the experiment's own streams.
  std::unique_ptr<fault::Runtime> fault_runtime;
  std::optional<fault::ScopedFaults> fault_scope;
  if (obs_opt.faults != nullptr && !obs_opt.faults->empty()) {
    fault_runtime = std::make_unique<fault::Runtime>(
        obs_opt.faults.get(), sim::Rng(seed).fork("fault").seed());
    fault_scope.emplace(fault_runtime.get());
  }

  ExperimentContext ctx;
  ctx.seed = seed;
  ctx.out = &state.out;
  ctx.result = &state.result;
  ctx.sim_threads = obs_opt.sim_threads;
  try {
    print_banner(exp, seed, state.out);
    exp.run(ctx);
    state.result.status = RunStatus::kOk;
  } catch (const std::exception& e) {
    state.result.status = RunStatus::kFailed;
    state.result.error = e.what();
  } catch (...) {
    state.result.status = RunStatus::kFailed;
    state.result.error = "unknown exception";
  }
  if (registry != nullptr) {
    // Sample memory at body completion so the profile object carries it.
    // Process-wide (see prof.h), like wall clocks elsewhere: kWall only.
    registry->gauge(obs::prof::kPeakRssMetric, obs::MetricClock::kWall)
        .set(static_cast<double>(obs::prof::peak_rss_kb()));
    state.result.counters = registry->snapshot(obs::MetricClock::kSim);
    state.result.profile = registry->snapshot(obs::MetricClock::kWall);
  }
  state.result.peak_rss_kb = obs::prof::peak_rss_kb();
  state.result.trace = std::move(tracer);
}

}  // namespace

int RunSummary::count(RunStatus status) const {
  int n = 0;
  for (const ExperimentResult& r : results) n += (r.status == status);
  return n;
}

bool RunSummary::all_ok() const {
  return count(RunStatus::kOk) == static_cast<int>(results.size());
}

Runner::Runner(RunnerOptions opt, ExperimentRegistry* registry)
    : opt_(std::move(opt)),
      registry_(registry != nullptr ? registry
                                    : &ExperimentRegistry::instance()) {}

std::uint64_t Runner::fork_seed(std::uint64_t base_seed,
                                std::string_view name) {
  return sim::Rng(base_seed).fork(name).seed();
}

std::vector<std::string> Runner::selected() const {
  const std::set<std::string> only(opt_.only_names.begin(),
                                   opt_.only_names.end());
  std::vector<std::string> out;
  for (const std::string& name : registry_->names()) {
    if (!only.empty() && only.count(name) == 0) continue;
    if (!opt_.filter.empty() &&
        name.find(opt_.filter) == std::string::npos) {
      continue;
    }
    if (opt_.smoke_only && !registry_->create(name)->smoke()) continue;
    out.push_back(name);
  }
  return out;  // names() is already sorted
}

ExperimentResult Runner::run_one(const std::string& name) const {
  auto exp = registry_->create(name);
  auto state = std::make_shared<ExecState>();
  ExperimentResult& res = state->result;
  res.name = name;
  res.paper_ref = exp->paper_ref();
  res.description = exp->description();
  res.seed = fork_seed(opt_.seed, name);

  const ExecOptions obs_opt{opt_.collect_metrics, opt_.trace,
                            opt_.trace_capacity, opt_.faults,
                            split_sim_threads(opt_)};
  const auto start = Clock::now();
  if (opt_.timeout_s <= 0) {
    execute(*exp, res.seed, *state, obs_opt);
    res.wall_ms = ms_since(start);
    res.text = state->out.str();
    return std::move(res);
  }

  // Run the body on its own thread so a hang can be abandoned. The thread
  // owns the experiment and a reference to the shared state; after a
  // timeout nobody reads that state again.
  std::shared_ptr<Experiment> owned = std::move(exp);
  std::thread worker([owned, state, seed = res.seed, obs_opt] {
    execute(*owned, seed, *state, obs_opt);
    const std::lock_guard<std::mutex> lock(state->mu);
    state->done = true;
    state->cv.notify_all();
  });

  std::unique_lock<std::mutex> lock(state->mu);
  const bool finished = state->cv.wait_for(
      lock, std::chrono::duration<double>(opt_.timeout_s),
      [&] { return state->done; });
  if (finished) {
    lock.unlock();
    worker.join();
    res.wall_ms = ms_since(start);
    res.text = state->out.str();
    return std::move(res);
  }

  // Abandon the hung experiment: report a timeout result assembled from
  // metadata only (the state buffers are still being written to).
  lock.unlock();
  worker.detach();
  ExperimentResult timed_out;
  timed_out.name = res.name;
  timed_out.paper_ref = res.paper_ref;
  timed_out.description = res.description;
  timed_out.seed = res.seed;
  timed_out.status = RunStatus::kTimedOut;
  {
    std::ostringstream msg;
    msg << "exceeded per-experiment timeout of " << opt_.timeout_s << " s";
    timed_out.error = msg.str();
  }
  timed_out.wall_ms = ms_since(start);
  timed_out.peak_rss_kb = obs::prof::peak_rss_kb();
  return timed_out;
}

namespace {

// Shared progress accounting for the heartbeat thread. Completed wall
// times feed the ETA; the resume set's recorded timings seed it so the
// very first heartbeat of a resumed campaign already has history.
struct Progress {
  std::atomic<std::size_t> started{0};
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::uint64_t> wall_ms_sum{0};
  std::atomic<std::size_t> wall_samples{0};

  void record(const ExperimentResult& r) {
    wall_ms_sum.fetch_add(static_cast<std::uint64_t>(r.wall_ms));
    wall_samples.fetch_add(1);
    if (r.status != RunStatus::kOk) failed.fetch_add(1);
    done.fetch_add(1);
  }
};

// One stderr heartbeat line. stderr only, so stdout (text/JSON artifacts)
// stays byte-identical whether or not telemetry is on.
void print_heartbeat(const Progress& progress, std::size_t total, int jobs,
                     std::ostream& os) {
  const std::size_t done = progress.done.load();
  const std::size_t started = progress.started.load();
  const std::size_t failed = progress.failed.load();
  const std::size_t running = started > done ? started - done : 0;
  os << "fiveg_runall: " << done << "/" << total << " done";
  if (failed > 0) os << " (" << failed << " failed)";
  os << ", " << running << " running";
  const std::size_t samples = progress.wall_samples.load();
  if (samples > 0 && done < total) {
    const double mean_ms =
        static_cast<double>(progress.wall_ms_sum.load()) /
        static_cast<double>(samples);
    const double eta_s = mean_ms * static_cast<double>(total - done) /
                         (1000.0 * static_cast<double>(jobs));
    os << ", ETA " << static_cast<std::int64_t>(eta_s + 0.5) << "s";
  }
  os << "\n";
}

}  // namespace

RunSummary Runner::run() const {
  const std::vector<std::string> names = selected();
  RunSummary summary;
  summary.results.resize(names.size());

  int jobs = opt_.jobs;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  jobs = std::min<int>(jobs, static_cast<int>(names.size()));
  jobs = std::max(jobs, 1);

  std::unique_ptr<LedgerWriter> ledger;
  if (!opt_.ledger_path.empty()) {
    ledger = std::make_unique<LedgerWriter>(opt_.ledger_path);
    if (!ledger->ok()) {
      std::fprintf(stderr, "fiveg_runall: %s (continuing without ledger)\n",
                   ledger->error().c_str());
      ledger.reset();
    }
  }

  Progress progress;
  if (opt_.resume != nullptr) {
    // Seed the ETA with the resumed runs' recorded wall clocks.
    for (const auto& [name, r] : *opt_.resume) {
      (void)name;
      progress.wall_ms_sum.fetch_add(static_cast<std::uint64_t>(r.wall_ms));
      progress.wall_samples.fetch_add(1);
    }
  }

  const auto start = Clock::now();
  std::atomic<std::size_t> next{0};
  // Columnar store hookup: every finished result — freshly run or spliced
  // from the ledger — is offered to the store writer, which skips keys
  // already on disk. That makes a crashed-and-resumed campaign converge to
  // exactly one store record per run without any splice bookkeeping.
  const auto store_result = [this](const ExperimentResult& r) {
    if (opt_.store == nullptr) return;
    StoreRecord rec;
    rec.result = r;
    rec.labels = opt_.store_labels;
    opt_.store->append(rec);
  };
  const auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= names.size()) return;
      // Resume splice: a ledger record at the right seed stands in for the
      // run verbatim (and is not re-appended — it is already on disk).
      if (opt_.resume != nullptr) {
        const auto it = opt_.resume->find(names[i]);
        if (it != opt_.resume->end()) {
          summary.results[i] = it->second;
          store_result(summary.results[i]);
          progress.started.fetch_add(1);
          progress.done.fetch_add(1);
          continue;
        }
      }
      progress.started.fetch_add(1);
      summary.results[i] = run_one(names[i]);
      if (ledger != nullptr) ledger->append(summary.results[i]);
      store_result(summary.results[i]);
      progress.record(summary.results[i]);
    }
  };

  // Heartbeat: a plain thread ticking on a condition variable so shutdown
  // is immediate (no sleep to drain) once the pool finishes.
  std::thread heartbeat;
  std::mutex hb_mu;
  std::condition_variable hb_cv;
  bool hb_stop = false;
  if (opt_.progress && !names.empty()) {
    const double period = opt_.progress_period_s > 0 ? opt_.progress_period_s
                                                     : 2.0;
    heartbeat = std::thread([&, period] {
      std::unique_lock<std::mutex> lock(hb_mu);
      for (;;) {
        if (hb_cv.wait_for(lock, std::chrono::duration<double>(period),
                           [&] { return hb_stop; })) {
          return;
        }
        print_heartbeat(progress, names.size(), jobs, std::cerr);
      }
    });
  }

  if (jobs == 1) {
    drain();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int j = 0; j < jobs; ++j) pool.emplace_back(drain);
    for (std::thread& t : pool) t.join();
  }

  if (heartbeat.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(hb_mu);
      hb_stop = true;
    }
    hb_cv.notify_all();
    heartbeat.join();
    print_heartbeat(progress, names.size(), jobs, std::cerr);
  }
  summary.wall_ms = ms_since(start);
  return summary;
}

void write_text(const RunSummary& summary, std::ostream& os) {
  for (const ExperimentResult& r : summary.results) {
    if (r.status == RunStatus::kOk) {
      os << r.text;
    } else {
      os << "### " << r.name << " — " << to_string(r.status) << ": "
         << r.error << "\n\n";
    }
  }
  os << summary.results.size() << " experiments: "
     << summary.count(RunStatus::kOk) << " ok, "
     << summary.count(RunStatus::kFailed) << " failed, "
     << summary.count(RunStatus::kTimedOut) << " timed out\n";
}

namespace {

// Expands one metric snapshot vector into a flat JSON object. Snapshots
// arrive sorted by (name, kind), so the member order is deterministic.
void write_snapshot_object(measure::JsonWriter& w,
                           const std::vector<obs::MetricSnapshot>& snaps) {
  w.begin_object();
  for (const obs::MetricSnapshot& s : snaps) {
    switch (s.kind) {
      case obs::MetricSnapshot::Kind::kCounter:
        w.kv(s.name, static_cast<std::uint64_t>(s.value));
        break;
      case obs::MetricSnapshot::Kind::kGauge:
        w.kv(s.name, s.value);
        w.kv(s.name + ".max", s.max);
        break;
      case obs::MetricSnapshot::Kind::kHistogram:
        w.kv(s.name + ".count", s.count);
        w.kv(s.name + ".sum", s.sum);
        w.kv(s.name + ".min", s.min);
        w.kv(s.name + ".max", s.max);
        w.kv(s.name + ".mean", s.value);
        w.kv(s.name + ".p50", s.p50);
        w.kv(s.name + ".p99", s.p99);
        break;
      case obs::MetricSnapshot::Kind::kDigest:
        w.kv(s.name + ".count", s.count);
        w.kv(s.name + ".mean", s.value);
        w.kv(s.name + ".min", s.min);
        w.kv(s.name + ".max", s.max);
        w.kv(s.name + ".p05", s.p05);
        w.kv(s.name + ".p25", s.p25);
        w.kv(s.name + ".p50", s.p50);
        w.kv(s.name + ".p75", s.p75);
        w.kv(s.name + ".p90", s.p90);
        w.kv(s.name + ".p95", s.p95);
        w.kv(s.name + ".p99", s.p99);
        break;
    }
  }
  w.end_object();
}

void write_bins_array(
    measure::JsonWriter& w,
    const std::vector<std::pair<std::int32_t, std::uint64_t>>& bins) {
  w.begin_array();
  for (const auto& [key, count] : bins) {
    w.begin_array();
    w.value(static_cast<std::int64_t>(key));
    w.value(count);
    w.end_array();
  }
  w.end_array();
}

// The v3 additions: full bucket payloads per histogram/digest, so external
// consumers (fiveg_report, notebooks) can rebuild distributions instead of
// settling for the flat percentile keys.
void write_histograms_object(measure::JsonWriter& w,
                             const std::vector<obs::MetricSnapshot>& snaps) {
  w.begin_object();
  for (const obs::MetricSnapshot& s : snaps) {
    if (s.kind != obs::MetricSnapshot::Kind::kHistogram) continue;
    w.key(s.name);
    w.begin_object();
    w.kv("count", s.count);
    w.kv("sum", s.sum);
    w.kv("min", s.min);
    w.kv("max", s.max);
    w.key("log2_buckets");
    write_bins_array(w, s.bins);
    w.end_object();
  }
  w.end_object();
}

void write_digests_object(measure::JsonWriter& w,
                          const std::vector<obs::MetricSnapshot>& snaps) {
  w.begin_object();
  for (const obs::MetricSnapshot& s : snaps) {
    if (s.kind != obs::MetricSnapshot::Kind::kDigest) continue;
    w.key(s.name);
    w.begin_object();
    w.kv("count", s.count);
    w.kv("sum", s.sum);
    w.kv("min", s.min);
    w.kv("max", s.max);
    w.kv("zero", s.zero_count);
    w.key("bins");
    write_bins_array(w, s.bins);
    w.key("neg_bins");
    write_bins_array(w, s.neg_bins);
    w.end_object();
  }
  w.end_object();
}

bool has_kind(const std::vector<obs::MetricSnapshot>& snaps,
              obs::MetricSnapshot::Kind kind) {
  for (const obs::MetricSnapshot& s : snaps) {
    if (s.kind == kind) return true;
  }
  return false;
}

}  // namespace

void write_json(const RunSummary& summary, std::ostream& os,
                bool include_timing) {
  measure::JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "fiveg-runall/v4");
  w.key("experiments");
  w.begin_array();
  for (const ExperimentResult& r : summary.results) {
    w.begin_object();
    w.kv("name", r.name);
    w.kv("paper_ref", r.paper_ref);
    w.kv("description", r.description);
    w.kv("seed", r.seed);
    w.kv("status", to_string(r.status));
    if (r.status != RunStatus::kOk) w.kv("error", r.error);
    if (include_timing) {
      w.kv("wall_ms", r.wall_ms);
      w.kv("peak_rss_kb", r.peak_rss_kb);
    }
    w.key("metrics");
    w.begin_array();
    for (const MetricSeries& s : r.metrics) {
      w.begin_object();
      w.kv("name", s.name);
      w.kv("unit", s.unit);
      w.key("points");
      w.begin_array();
      for (const MetricPoint& p : s.points) {
        w.begin_array();
        w.value(p.x);
        w.value(p.y);
        w.end_array();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.key("counters");
    write_snapshot_object(w, r.counters);
    if (has_kind(r.counters, obs::MetricSnapshot::Kind::kHistogram)) {
      w.key("histograms");
      write_histograms_object(w, r.counters);
    }
    if (has_kind(r.counters, obs::MetricSnapshot::Kind::kDigest)) {
      w.key("digests");
      write_digests_object(w, r.counters);
    }
    if (include_timing && !r.profile.empty()) {
      w.key("profile");
      write_snapshot_object(w, r.profile);
    }
    w.kv("text", r.text);
    w.end_object();
  }
  w.end_array();
  w.key("summary");
  w.begin_object();
  w.kv("total", static_cast<std::int64_t>(summary.results.size()));
  w.kv("ok", summary.count(RunStatus::kOk));
  w.kv("failed", summary.count(RunStatus::kFailed));
  w.kv("timed_out", summary.count(RunStatus::kTimedOut));
  if (include_timing) {
    w.kv("wall_ms", summary.wall_ms);
    std::uint64_t peak = 0;
    for (const ExperimentResult& r : summary.results) {
      peak = std::max(peak, r.peak_rss_kb);
    }
    w.kv("peak_rss_kb", peak);
  }
  w.end_object();
  w.end_object();
  os << "\n";
}

void write_timing(const RunSummary& summary, std::ostream& os) {
  std::vector<const ExperimentResult*> by_time;
  by_time.reserve(summary.results.size());
  for (const ExperimentResult& r : summary.results) by_time.push_back(&r);
  std::sort(by_time.begin(), by_time.end(),
            [](const ExperimentResult* a, const ExperimentResult* b) {
              return a->wall_ms > b->wall_ms;
            });
  for (const ExperimentResult* r : by_time) {
    os << "  " << to_string(r->status) << "  "
       << static_cast<std::int64_t>(r->wall_ms) << " ms  " << r->name
       << "\n";
  }
  os << "total " << static_cast<std::int64_t>(summary.wall_ms) << " ms\n";
}

namespace {

void write_snapshot_lines(const std::vector<obs::MetricSnapshot>& snaps,
                          std::ostream& os) {
  for (const obs::MetricSnapshot& s : snaps) {
    os << "    " << s.name;
    switch (s.kind) {
      case obs::MetricSnapshot::Kind::kCounter:
        os << " = " << measure::JsonWriter::number(s.value);
        break;
      case obs::MetricSnapshot::Kind::kGauge:
        os << " = " << measure::JsonWriter::number(s.value)
           << " (max " << measure::JsonWriter::number(s.max) << ")";
        break;
      case obs::MetricSnapshot::Kind::kHistogram:
        os << ": count=" << s.count << " mean="
           << measure::JsonWriter::number(s.value)
           << " p50=" << measure::JsonWriter::number(s.p50)
           << " p99=" << measure::JsonWriter::number(s.p99)
           << " max=" << measure::JsonWriter::number(s.max);
        break;
      case obs::MetricSnapshot::Kind::kDigest:
        os << ": count=" << s.count << " mean="
           << measure::JsonWriter::number(s.value)
           << " p05=" << measure::JsonWriter::number(s.p05)
           << " p50=" << measure::JsonWriter::number(s.p50)
           << " p95=" << measure::JsonWriter::number(s.p95)
           << " p99=" << measure::JsonWriter::number(s.p99);
        break;
    }
    os << "\n";
  }
}

}  // namespace

void write_metrics(const RunSummary& summary, std::ostream& os,
                   bool include_timing) {
  for (const ExperimentResult& r : summary.results) {
    if (r.counters.empty() && (!include_timing || r.profile.empty())) {
      continue;
    }
    os << "### " << r.name << "\n";
    write_snapshot_lines(r.counters, os);
    if (include_timing && !r.profile.empty()) {
      os << "  profile (wall clock):\n";
      write_snapshot_lines(r.profile, os);
    }
    os << "\n";
  }
}

void write_chrome_trace(const RunSummary& summary, std::ostream& os,
                        bool include_wall) {
  std::vector<obs::ChromeProcess> processes;
  processes.reserve(summary.results.size());
  for (const ExperimentResult& r : summary.results) {
    if (r.trace == nullptr) continue;
    obs::ChromeProcess p;
    p.name = r.name;
    p.tracer = r.trace.get();
    p.wall_ms = r.wall_ms;
    processes.push_back(std::move(p));
  }
  obs::ChromeTraceOptions options;
  options.include_wall = include_wall;
  obs::write_chrome_trace(processes, os, options);
}

}  // namespace fiveg::core

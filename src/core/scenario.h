// Shared experiment scaffolding: the campus scenario (map + deployment)
// and the standard UE <-> cloud testbed (cellular path + cross traffic),
// assembled the same way for every experiment.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "app/iperf.h"
#include "geo/campus.h"
#include "net/cross_traffic.h"
#include "net/epc.h"
#include "net/path.h"
#include "ran/deployment.h"
#include "ran/prb_scheduler.h"
#include "sim/simulator.h"

namespace fiveg::core {

/// The measured campus: map + NSA deployment, deterministic per seed.
class Scenario {
 public:
  explicit Scenario(std::uint64_t seed);

  [[nodiscard]] const geo::CampusMap& campus() const noexcept {
    return campus_;
  }
  [[nodiscard]] const ran::Deployment& deployment() const noexcept {
    return deployment_;
  }

 private:
  geo::CampusMap campus_;
  ran::Deployment deployment_;
};

/// Geometry of a city-scale scenario: the map extent and the hex grid
/// deployed over it. Defaults give a ~1.28 km square with a 19-site
/// (rings=2) NSA grid — the densified layout the paper's coverage
/// discussion extrapolates to.
struct CityConfig {
  double width_m = 1280.0;
  double height_m = 1280.0;
  double open_fraction = 0.35;  // city blocks left as parks/lots
  ran::CityGridConfig grid;
};

/// A city-scale map + hex-grid NSA deployment, deterministic per seed.
/// Uses its own rng stream names, so city runs never perturb the paper
/// campus draws.
class CityScenario {
 public:
  explicit CityScenario(std::uint64_t seed, const CityConfig& config = {});

  [[nodiscard]] const geo::CampusMap& campus() const noexcept {
    return campus_;
  }
  [[nodiscard]] const ran::Deployment& deployment() const noexcept {
    return deployment_;
  }
  [[nodiscard]] const CityConfig& config() const noexcept { return config_; }

 private:
  CityConfig config_;
  geo::CampusMap campus_;
  ran::Deployment deployment_;
};

/// A city split into radio-isolated districts, one per sim::ParSim lane:
/// each district is an independent CityScenario (own hex grid, own
/// campus, own UE cohort) and districts couple only through the wireline
/// metro core. That physical structure is what licenses parallel
/// execution — the conservative lookahead below bounds how soon any
/// district can influence another.
struct PartitionedCityConfig {
  int districts = 4;
  CityConfig district;        // per-district geometry (identical layout,
                              // per-district seeds)
  double backhaul_km = 30.0;  // metro fibre between district cores
};

/// Conservative cross-district lookahead: districts are beyond radio
/// reach of each other, so the fastest cross-district influence channel
/// is the metro backhaul. One-way fibre propagation at ~5 us/km over
/// `backhaul_km` (clamped to >= 100 us, the scheduling floor below which
/// ParSim falls back to the serial core) bounds the window width.
[[nodiscard]] sim::Time city_partition_lookahead(
    const PartitionedCityConfig& config);

/// Which endpoint sends the payload.
enum class Direction { kDownlink, kUplink };

/// Options for a testbed path.
struct TestbedOptions {
  radio::Rat rat = radio::Rat::kNr;
  ran::LoadRegime regime = ran::LoadRegime::kDay;
  Direction direction = Direction::kDownlink;
  double server_distance_km = 30.0;
  int wired_hops = 0;  // 0 = the default 6-hop metro path
  bool cross_traffic = true;
  // 0 = use the paper's UDP-baseline rate for the RAT/regime/direction.
  double ran_rate_bps = 0.0;
  // 0 = the legacy default (Table 3's 4G-era wireline buffer).
  std::uint64_t bottleneck_buffer_bytes = 0;
  // Queue discipline at the wireline bottleneck. nullopt = the campaign
  // default (drop-tail unless overridden via --qdisc).
  std::optional<net::QdiscConfig> bottleneck_qdisc;
  std::function<bool()> ran_blocked_fn;  // hand-off outages
};

/// Campaign-wide bottleneck qdisc default, applied by every Testbed whose
/// options leave bottleneck_qdisc unset. Set once from the CLI (--qdisc)
/// before the runner spawns worker threads; read-only afterwards.
void set_campaign_bottleneck_qdisc(const net::QdiscConfig& qdisc);
[[nodiscard]] const net::QdiscConfig& campaign_bottleneck_qdisc() noexcept;

/// The paper's serving rate for a RAT/regime/direction (UDP baselines).
[[nodiscard]] double baseline_rate_bps(radio::Rat rat, ran::LoadRegime regime,
                                       Direction direction) noexcept;

/// One UE <-> cloud path with fan-out sinks and optional ambient cross
/// traffic at the wireline bottleneck. Endpoint A is the payload sender:
/// the cloud for downlink runs, the UE for uplink runs.
class Testbed {
 public:
  Testbed(sim::Simulator* simulator, const TestbedOptions& options,
          std::uint64_t seed);

  [[nodiscard]] net::PathNetwork& path() noexcept { return *path_; }
  [[nodiscard]] app::PathFanout& fanout() noexcept { return *fanout_; }
  /// The shared wireline bottleneck link in the payload direction.
  [[nodiscard]] net::Link& bottleneck() noexcept {
    return path_->forward_link(bottleneck_index_);
  }
  [[nodiscard]] double ran_rate_bps() const noexcept { return ran_rate_bps_; }
  [[nodiscard]] std::size_t hop_count() const noexcept {
    return path_->hop_count();
  }

  /// Starts the ambient cross traffic (idempotent; no-op if disabled).
  void start_cross_traffic(sim::Time until);

 private:
  std::unique_ptr<net::PathNetwork> path_;
  std::unique_ptr<app::PathFanout> fanout_;
  std::unique_ptr<net::CrossTraffic> cross_;
  std::size_t bottleneck_index_ = 0;
  double ran_rate_bps_ = 0.0;
};

}  // namespace fiveg::core

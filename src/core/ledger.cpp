#include "core/ledger.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/runner.h"
#include "measure/json.h"
#include "obs/json_check.h"
#include "obs/prof.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace fiveg::core {

namespace {

// FNV-1a 64-bit: tiny, dependency-free, and plenty to catch the failure
// modes a ledger actually sees (torn writes, disk corruption, hand edits).
// Not cryptographic and not meant to be.
std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string to_hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return std::string(buf, 16);
}

// Seeds are full-range 64-bit hashes; a JSON number survives only 53 bits
// through the double-typed parser, so the ledger stores them as decimal
// strings.
std::string seed_to_string(std::uint64_t seed) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, seed);
  return std::string(buf);
}

const char* kind_name(obs::MetricSnapshot::Kind kind) {
  switch (kind) {
    case obs::MetricSnapshot::Kind::kCounter:
      return "counter";
    case obs::MetricSnapshot::Kind::kGauge:
      return "gauge";
    case obs::MetricSnapshot::Kind::kHistogram:
      return "histogram";
    case obs::MetricSnapshot::Kind::kDigest:
      return "digest";
  }
  return "counter";
}

bool kind_from(const std::string& s, obs::MetricSnapshot::Kind* out) {
  if (s == "counter") *out = obs::MetricSnapshot::Kind::kCounter;
  else if (s == "gauge") *out = obs::MetricSnapshot::Kind::kGauge;
  else if (s == "histogram") *out = obs::MetricSnapshot::Kind::kHistogram;
  else if (s == "digest") *out = obs::MetricSnapshot::Kind::kDigest;
  else return false;
  return true;
}

bool status_from(const std::string& s, RunStatus* out) {
  if (s == "ok") *out = RunStatus::kOk;
  else if (s == "failed") *out = RunStatus::kFailed;
  else if (s == "timed_out") *out = RunStatus::kTimedOut;
  else return false;
  return true;
}

void write_bins(measure::JsonWriter& w,
                const std::vector<std::pair<std::int32_t, std::uint64_t>>&
                    bins) {
  w.begin_array();
  for (const auto& [key, count] : bins) {
    w.begin_array();
    w.value(static_cast<std::int64_t>(key));
    w.value(count);
    w.end_array();
  }
  w.end_array();
}

// Faithful (not flattened) snapshot serialization: the resume path rebuilds
// MetricSnapshot structs from this, so every field the runall JSON emitters
// read must survive the round trip bit-for-bit.
void write_snapshot(measure::JsonWriter& w, const obs::MetricSnapshot& s) {
  w.begin_object();
  w.kv("name", s.name);
  w.kv("kind", kind_name(s.kind));
  w.kv("clock", s.clock == obs::MetricClock::kSim ? "sim" : "wall");
  w.kv("value", s.value);
  w.kv("max", s.max);
  w.kv("count", s.count);
  w.kv("sum", s.sum);
  w.kv("min", s.min);
  w.kv("p50", s.p50);
  w.kv("p99", s.p99);
  w.kv("p05", s.p05);
  w.kv("p25", s.p25);
  w.kv("p75", s.p75);
  w.kv("p90", s.p90);
  w.kv("p95", s.p95);
  w.kv("zero", s.zero_count);
  w.key("bins");
  write_bins(w, s.bins);
  w.key("neg_bins");
  write_bins(w, s.neg_bins);
  w.end_object();
}

void write_snapshots(measure::JsonWriter& w,
                     const std::vector<obs::MetricSnapshot>& snaps) {
  w.begin_array();
  for (const obs::MetricSnapshot& s : snaps) write_snapshot(w, s);
  w.end_array();
}

void write_series(measure::JsonWriter& w,
                  const std::vector<MetricSeries>& metrics) {
  w.begin_array();
  for (const MetricSeries& s : metrics) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("unit", s.unit);
    w.key("points");
    w.begin_array();
    for (const MetricPoint& p : s.points) {
      w.begin_array();
      w.value(p.x);
      w.value(p.y);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
}

// The deterministic members, in the fixed order the checksum is defined
// over. Shared by ledger_core_json (checksum input) and ledger_line (the
// same keys inside the full record).
void write_core_members(measure::JsonWriter& w, const ExperimentResult& r) {
  w.kv("name", r.name);
  w.kv("seed", seed_to_string(r.seed));
  w.kv("status", to_string(r.status));
  w.kv("error", r.error);
  w.kv("paper_ref", r.paper_ref);
  w.kv("description", r.description);
  w.kv("text", r.text);
  w.key("metrics");
  write_series(w, r.metrics);
  w.key("counters");
  write_snapshots(w, r.counters);
}

// --- parsing ---------------------------------------------------------------

using obs::JsonValue;

const std::string* get_string(const JsonValue& v, const char* key) {
  const JsonValue* m = v.get(key);
  if (m == nullptr || !m->is(JsonValue::Type::kString)) return nullptr;
  return &m->string;
}

bool get_number(const JsonValue& v, const char* key, double* out) {
  const JsonValue* m = v.get(key);
  if (m == nullptr || !m->is(JsonValue::Type::kNumber)) return false;
  *out = m->number;
  return true;
}

bool parse_bins(const JsonValue* v,
                std::vector<std::pair<std::int32_t, std::uint64_t>>* out) {
  if (v == nullptr || !v->is(JsonValue::Type::kArray)) return false;
  out->reserve(v->array.size());
  for (const JsonValue& pair : v->array) {
    if (!pair.is(JsonValue::Type::kArray) || pair.array.size() != 2 ||
        !pair.array[0].is(JsonValue::Type::kNumber) ||
        !pair.array[1].is(JsonValue::Type::kNumber)) {
      return false;
    }
    out->emplace_back(static_cast<std::int32_t>(pair.array[0].number),
                      static_cast<std::uint64_t>(pair.array[1].number));
  }
  return true;
}

bool parse_snapshot(const JsonValue& v, obs::MetricSnapshot* out) {
  if (!v.is(JsonValue::Type::kObject)) return false;
  const std::string* name = get_string(v, "name");
  const std::string* kind = get_string(v, "kind");
  const std::string* clock = get_string(v, "clock");
  if (name == nullptr || kind == nullptr || clock == nullptr) return false;
  out->name = *name;
  if (!kind_from(*kind, &out->kind)) return false;
  if (*clock == "sim") {
    out->clock = obs::MetricClock::kSim;
  } else if (*clock == "wall") {
    out->clock = obs::MetricClock::kWall;
  } else {
    return false;
  }
  double count = 0;
  double zero = 0;
  if (!get_number(v, "value", &out->value) ||
      !get_number(v, "max", &out->max) || !get_number(v, "count", &count) ||
      !get_number(v, "sum", &out->sum) || !get_number(v, "min", &out->min) ||
      !get_number(v, "p50", &out->p50) || !get_number(v, "p99", &out->p99) ||
      !get_number(v, "p05", &out->p05) || !get_number(v, "p25", &out->p25) ||
      !get_number(v, "p75", &out->p75) || !get_number(v, "p90", &out->p90) ||
      !get_number(v, "p95", &out->p95) || !get_number(v, "zero", &zero)) {
    return false;
  }
  out->count = static_cast<std::uint64_t>(count);
  out->zero_count = static_cast<std::uint64_t>(zero);
  return parse_bins(v.get("bins"), &out->bins) &&
         parse_bins(v.get("neg_bins"), &out->neg_bins);
}

bool parse_snapshots(const JsonValue* v,
                     std::vector<obs::MetricSnapshot>* out) {
  if (v == nullptr || !v->is(JsonValue::Type::kArray)) return false;
  out->reserve(v->array.size());
  for (const JsonValue& s : v->array) {
    obs::MetricSnapshot snap;
    if (!parse_snapshot(s, &snap)) return false;
    out->push_back(std::move(snap));
  }
  return true;
}

bool parse_series(const JsonValue* v, std::vector<MetricSeries>* out) {
  if (v == nullptr || !v->is(JsonValue::Type::kArray)) return false;
  out->reserve(v->array.size());
  for (const JsonValue& s : v->array) {
    if (!s.is(JsonValue::Type::kObject)) return false;
    const std::string* name = get_string(s, "name");
    const std::string* unit = get_string(s, "unit");
    const JsonValue* points = s.get("points");
    if (name == nullptr || unit == nullptr || points == nullptr ||
        !points->is(JsonValue::Type::kArray)) {
      return false;
    }
    MetricSeries series;
    series.name = *name;
    series.unit = *unit;
    series.points.reserve(points->array.size());
    for (const JsonValue& p : points->array) {
      if (!p.is(JsonValue::Type::kArray) || p.array.size() != 2 ||
          !p.array[0].is(JsonValue::Type::kNumber) ||
          !p.array[1].is(JsonValue::Type::kNumber)) {
        return false;
      }
      series.points.push_back({p.array[0].number, p.array[1].number});
    }
    out->push_back(std::move(series));
  }
  return true;
}

// Parses one ledger line into a result and verifies its checksum by
// re-serializing the deterministic core. Relies on JsonWriter's number
// rendering being a fixed point under print -> parse -> print, which it is
// (%.0f for integral values, round-tripping %.17g otherwise).
bool parse_record(const JsonValue& v, ExperimentResult* out) {
  if (!v.is(JsonValue::Type::kObject)) return false;
  const std::string* schema = get_string(v, "schema");
  if (schema == nullptr || *schema != kLedgerSchema) return false;
  const std::string* name = get_string(v, "name");
  const std::string* seed = get_string(v, "seed");
  const std::string* status = get_string(v, "status");
  const std::string* error = get_string(v, "error");
  const std::string* paper_ref = get_string(v, "paper_ref");
  const std::string* description = get_string(v, "description");
  const std::string* text = get_string(v, "text");
  if (name == nullptr || seed == nullptr || status == nullptr ||
      error == nullptr || paper_ref == nullptr || description == nullptr ||
      text == nullptr) {
    return false;
  }
  out->name = *name;
  out->error = *error;
  out->paper_ref = *paper_ref;
  out->description = *description;
  out->text = *text;
  if (!status_from(*status, &out->status)) return false;
  errno = 0;
  char* end = nullptr;
  out->seed = std::strtoull(seed->c_str(), &end, 10);
  if (errno != 0 || end == seed->c_str() || *end != '\0') return false;
  double wall_ms = 0;
  double peak = 0;
  if (!get_number(v, "wall_ms", &wall_ms) ||
      !get_number(v, "peak_rss_kb", &peak)) {
    return false;
  }
  out->wall_ms = wall_ms;
  out->peak_rss_kb = static_cast<std::uint64_t>(peak);
  if (!parse_series(v.get("metrics"), &out->metrics)) return false;
  if (!parse_snapshots(v.get("counters"), &out->counters)) return false;
  if (!parse_snapshots(v.get("profile"), &out->profile)) return false;
  return true;
}

}  // namespace

std::string ledger_core_json(const ExperimentResult& r) {
  std::ostringstream os;
  measure::JsonWriter w(os, /*compact=*/true);
  w.begin_object();
  write_core_members(w, r);
  w.end_object();
  return os.str();
}

std::string ledger_checksum(const ExperimentResult& r) {
  return to_hex16(fnv1a64(ledger_core_json(r)));
}

std::string ledger_line(const ExperimentResult& r) {
  std::ostringstream os;
  measure::JsonWriter w(os, /*compact=*/true);
  w.begin_object();
  w.kv("schema", kLedgerSchema);
  w.kv("checksum", ledger_checksum(r));
  write_core_members(w, r);
  w.kv("wall_ms", r.wall_ms);
  w.kv("peak_rss_kb", r.peak_rss_kb);
  w.key("profile");
  write_snapshots(w, r.profile);
  // Derived convenience summary for fiveg_prof and humans paging through
  // the raw JSONL; the loader ignores it (it is recomputable).
  const obs::prof::Summary prof = obs::prof::summarize(r.profile);
  w.key("prof");
  w.begin_object();
  w.kv("construct_ms", prof.construct_ms);
  w.kv("simulate_ms", prof.simulate_ms);
  w.kv("report_ms", prof.report_ms);
  w.kv("events_scheduled", prof.events_scheduled);
  w.kv("events_cancelled", prof.events_cancelled);
  w.kv("heap_allocs", prof.heap_allocs);
  w.kv("top_label", prof.top_label);
  w.kv("top_label_ms", prof.top_label_ms);
  w.end_object();
  w.end_object();
  std::string line = os.str();
  line.push_back('\n');
  return line;
}

LedgerLoad parse_ledger(std::string_view text) {
  LedgerLoad load;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    const bool has_newline = nl != std::string_view::npos;
    if (!has_newline) nl = text.size();
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;

    const std::unique_ptr<JsonValue> doc = obs::json_parse(line);
    ExperimentResult rec;
    if (doc == nullptr || !parse_record(*doc, &rec)) {
      if (!has_newline) {
        // A torn final line is the normal crash artifact, not corruption.
        load.truncated_tail = true;
      } else {
        ++load.dropped_lines;
      }
      continue;
    }
    const std::string* checksum = get_string(*doc, "checksum");
    if (checksum == nullptr || *checksum != ledger_checksum(rec)) {
      ++load.corrupt_records;
      continue;
    }
    load.records.push_back(std::move(rec));
  }
  return load;
}

LedgerLoad load_ledger(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    LedgerLoad load;
    load.error = "cannot open ledger: " + path;
    return load;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse_ledger(buf.str());
}

std::map<std::string, ExperimentResult> completed_runs(
    const LedgerLoad& load, std::uint64_t base_seed) {
  std::map<std::string, ExperimentResult> out;
  for (const ExperimentResult& r : load.records) {
    if (r.status != RunStatus::kOk) continue;
    if (r.seed != Runner::fork_seed(base_seed, r.name)) continue;
    out[r.name] = r;  // last record wins: a re-run supersedes
  }
  return out;
}

LedgerWriter::LedgerWriter(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  fd_ = ::open(path.c_str(), O_RDWR | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    error_ = "cannot open ledger for append: " + path + ": " +
             std::strerror(errno);
    return;
  }
  // Seal a torn final line (the crash artifact --resume tolerates) with a
  // newline, so the first record appended after a resume starts on its own
  // line instead of gluing onto the torn one.
  struct stat st {};
  if (::fstat(fd_, &st) == 0 && st.st_size > 0) {
    char last = '\n';
    if (::pread(fd_, &last, 1, st.st_size - 1) == 1 && last != '\n') {
      (void)!::write(fd_, "\n", 1);
    }
  }
#else
  (void)path;
  error_ = "ledger writer requires a POSIX platform";
#endif
}

LedgerWriter::~LedgerWriter() {
#if defined(__unix__) || defined(__APPLE__)
  if (fd_ >= 0) ::close(fd_);
#endif
}

bool LedgerWriter::append(const ExperimentResult& r) {
  if (!ok()) return false;
  const std::string line = ledger_line(r);
#if defined(__unix__) || defined(__APPLE__)
  const std::lock_guard<std::mutex> lock(mu_);
  // One write() per record: O_APPEND makes the line land contiguously even
  // with several workers appending, and a crash can tear at most the tail.
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("ledger write failed: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
#else
  return false;
#endif
}

}  // namespace fiveg::core

// Campaign run ledger (schema "fiveg-ledger/v1"): one JSONL record per
// completed experiment run, appended crash-safely as each run finishes. The
// ledger is what makes large sweeps resumable — `fiveg_runall --resume`
// reloads it, skips every run that already completed at the right seed, and
// still emits a byte-identical merged campaign document, because each
// record carries the *full-fidelity* ExperimentResult (every metric series,
// every counter snapshot, the captured text) rather than a summary.
//
// Records are self-validating: a checksum over the deterministic subset of
// the result (name, seed, status, error, text, metrics, counters — never
// wall-clock fields) detects torn or corrupted records, which are dropped
// and simply re-run on resume. A truncated final line — the expected
// artifact of a killed campaign — is tolerated by design.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.h"

namespace fiveg::core {

inline constexpr std::string_view kLedgerSchema = "fiveg-ledger/v1";

/// The checksummed deterministic core of one result, serialized as compact
/// JSON. Wall-clock fields (wall_ms, peak_rss_kb, profile) are excluded, so
/// the checksum of a re-run at the same seed matches the original record.
[[nodiscard]] std::string ledger_core_json(const ExperimentResult& r);

/// FNV-1a 64-bit checksum of the deterministic core, as 16 lowercase hex
/// digits.
[[nodiscard]] std::string ledger_checksum(const ExperimentResult& r);

/// One full ledger record: a single line of compact JSON (schema, checksum,
/// wall-clock fields, profile summary, and the full result payload),
/// terminated by '\n'.
[[nodiscard]] std::string ledger_line(const ExperimentResult& r);

/// Outcome of loading a ledger file.
struct LedgerLoad {
  std::vector<ExperimentResult> records;  // valid records, file order
  std::size_t dropped_lines = 0;    // unparseable / wrong-schema lines
  std::size_t corrupt_records = 0;  // parsed but failed checksum
  bool truncated_tail = false;      // final line torn (killed mid-append)
  std::string error;                // I/O-level failure; empty when loadable
  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Parses ledger text. Invalid interior lines and checksum failures are
/// counted and skipped, never fatal; a torn final line sets
/// `truncated_tail`. An empty file is a valid, empty ledger.
[[nodiscard]] LedgerLoad parse_ledger(std::string_view text);

/// Reads and parses a ledger file. A missing file is an error (use an
/// empty file — or no --resume — to start fresh).
[[nodiscard]] LedgerLoad load_ledger(const std::string& path);

/// The resume set: name -> result for every record that completed with
/// status ok *and* whose recorded seed matches the per-experiment fork of
/// `base_seed` (a ledger from a different --seed never satisfies a resume).
/// When an experiment appears more than once, the last record wins.
[[nodiscard]] std::map<std::string, ExperimentResult> completed_runs(
    const LedgerLoad& load, std::uint64_t base_seed);

/// Append-only ledger writer. Each append serializes the record and hands
/// the whole line to the OS in one O_APPEND write(), so a killed campaign
/// can tear at most the final line and concurrent workers never interleave
/// bytes. Thread-safe.
class LedgerWriter {
 public:
  /// Opens (creating if needed) `path` for appending.
  explicit LedgerWriter(const std::string& path);
  LedgerWriter(const LedgerWriter&) = delete;
  LedgerWriter& operator=(const LedgerWriter&) = delete;
  ~LedgerWriter();

  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Appends one record; false (with error() set) on I/O failure.
  bool append(const ExperimentResult& r);

 private:
  int fd_ = -1;
  std::mutex mu_;
  std::string error_;
};

}  // namespace fiveg::core

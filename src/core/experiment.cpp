#include "core/experiment.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <stdexcept>

namespace fiveg::core {

namespace {

void ensure_registered() {
  static const bool once = [] {
    register_coverage_experiments();
    register_handoff_experiments();
    register_throughput_experiments();
    register_latency_experiments();
    register_app_experiments();
    register_energy_experiments();
    register_ablation_experiments();
    register_extension_experiments();
    register_aqm_experiments();
    register_city_experiments();
    return true;
  }();
  (void)once;
}

}  // namespace

std::string_view to_string(RunStatus status) {
  switch (status) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kFailed:
      return "failed";
    case RunStatus::kTimedOut:
      return "timed_out";
  }
  return "unknown";
}

void ExperimentContext::metric(std::string_view series, double value,
                               std::string_view unit) const {
  if (result == nullptr) return;
  for (MetricSeries& s : result->metrics) {
    if (s.name == series) {
      s.points.push_back({static_cast<double>(s.points.size()), value});
      return;
    }
  }
  result->metrics.push_back(
      {std::string(series), std::string(unit), {{0.0, value}}});
}

void ExperimentContext::metric_point(std::string_view series, double x,
                                     double y, std::string_view unit) const {
  if (result == nullptr) return;
  for (MetricSeries& s : result->metrics) {
    if (s.name == series) {
      s.points.push_back({x, y});
      return;
    }
  }
  result->metrics.push_back(
      {std::string(series), std::string(unit), {{x, y}}});
}

ExperimentRegistry& ExperimentRegistry::instance() {
  static ExperimentRegistry registry;
  return registry;
}

void ExperimentRegistry::add(Factory factory) {
  const std::string name = factory()->name();
  for (const Entry& e : entries_) {
    if (e.name == name) {
      throw std::invalid_argument("duplicate experiment name: " + name);
    }
  }
  entries_.push_back({name, std::move(factory)});
}

std::unique_ptr<Experiment> ExperimentRegistry::create(
    const std::string& name) const {
  ensure_registered();
  for (const Entry& e : entries_) {
    if (e.name == name) return e.factory();
  }
  return nullptr;
}

void print_banner(const Experiment& exp, std::uint64_t seed,
                  std::ostream& os) {
  os << "### " << exp.name() << " — reproduces " << exp.paper_ref()
     << "\n### " << exp.description() << "\n### seed " << seed << "\n\n";
}

bool ExperimentRegistry::run(const std::string& name,
                             const ExperimentContext& ctx) {
  const auto exp = create(name);
  if (exp == nullptr) return false;
  print_banner(*exp, ctx.seed, *ctx.out);
  exp->run(ctx);
  return true;
}

std::vector<std::string> ExperimentRegistry::names() const {
  ensure_registered();
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.name);
  std::sort(out.begin(), out.end());
  return out;
}

int run_experiment_main(const std::string& name, int argc, char** argv) {
  ExperimentContext ctx;
  ctx.out = &std::cout;
  if (argc > 1) ctx.seed = std::strtoull(argv[1], nullptr, 10);

  auto& registry = ExperimentRegistry::instance();
  if (!name.empty()) {
    if (!registry.run(name, ctx)) {
      std::cerr << "unknown experiment: " << name << "\n";
      return 1;
    }
    return 0;
  }
  for (const std::string& n : registry.names()) registry.run(n, ctx);
  return 0;
}

}  // namespace fiveg::core

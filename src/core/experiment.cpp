#include "core/experiment.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>

namespace fiveg::core {

namespace {

void ensure_registered() {
  static const bool once = [] {
    register_coverage_experiments();
    register_handoff_experiments();
    register_throughput_experiments();
    register_latency_experiments();
    register_app_experiments();
    register_energy_experiments();
    register_ablation_experiments();
    register_extension_experiments();
    return true;
  }();
  (void)once;
}

}  // namespace

ExperimentRegistry& ExperimentRegistry::instance() {
  static ExperimentRegistry registry;
  return registry;
}

void ExperimentRegistry::add(Factory factory) {
  factories_.push_back(std::move(factory));
}

bool ExperimentRegistry::run(const std::string& name,
                             const ExperimentContext& ctx) {
  ensure_registered();
  for (const Factory& f : factories_) {
    const auto exp = f();
    if (exp->name() == name) {
      *ctx.out << "### " << exp->name() << " — reproduces " << exp->paper_ref()
               << "\n### " << exp->description() << "\n### seed " << ctx.seed
               << "\n\n";
      exp->run(ctx);
      return true;
    }
  }
  return false;
}

std::vector<std::string> ExperimentRegistry::names() const {
  ensure_registered();
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const Factory& f : factories_) out.push_back(f()->name());
  std::sort(out.begin(), out.end());
  return out;
}

int run_experiment_main(const std::string& name, int argc, char** argv) {
  ExperimentContext ctx;
  ctx.out = &std::cout;
  if (argc > 1) ctx.seed = std::strtoull(argv[1], nullptr, 10);

  auto& registry = ExperimentRegistry::instance();
  if (!name.empty()) {
    if (!registry.run(name, ctx)) {
      std::cerr << "unknown experiment: " << name << "\n";
      return 1;
    }
    return 0;
  }
  for (const std::string& n : registry.names()) registry.run(n, ctx);
  return 0;
}

}  // namespace fiveg::core

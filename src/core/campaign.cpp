#include "core/campaign.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "net/aqm.h"
#include "obs/json_check.h"
#include "sim/rng.h"

namespace fiveg::core {

namespace {

using obs::JsonValue;

bool axis_error(std::string* error, const std::string& msg) {
  *error = "campaign manifest: " + msg;
  return false;
}

// An axis value that is a seed: a JSON number (exact up to 2^53) or a
// decimal string (full 64-bit range, same convention as the ledger).
bool parse_seed_value(const JsonValue& v, std::uint64_t* out) {
  if (v.is(JsonValue::Type::kNumber)) {
    if (v.number < 0 || v.number != static_cast<double>(
                                        static_cast<std::uint64_t>(v.number))) {
      return false;
    }
    *out = static_cast<std::uint64_t>(v.number);
    return true;
  }
  if (!v.is(JsonValue::Type::kString)) return false;
  errno = 0;
  char* end = nullptr;
  *out = std::strtoull(v.string.c_str(), &end, 10);
  return errno == 0 && end != v.string.c_str() && *end == '\0';
}

}  // namespace

std::string CampaignCell::tag() const {
  std::string out = "qdisc=";
  out += qdisc;
  out += ";faults=";
  out += faults;
  return out;
}

std::uint64_t CampaignCell::base_seed() const {
  return sim::Rng(axis_seed).fork(tag()).seed();
}

std::vector<std::pair<std::string, std::string>> CampaignCell::labels()
    const {
  return {{"faults", faults}, {"qdisc", qdisc}};
}

std::vector<CampaignCell> CampaignManifest::cells() const {
  std::vector<CampaignCell> out;
  out.reserve(seeds.size() * qdiscs.size() * faults.size());
  for (const std::uint64_t seed : seeds) {
    for (const std::string& qdisc : qdiscs) {
      for (const std::string& fault : faults) {
        CampaignCell cell;
        cell.axis_seed = seed;
        cell.qdisc = qdisc;
        cell.faults = fault;
        out.push_back(std::move(cell));
      }
    }
  }
  return out;
}

bool parse_manifest(std::string_view text, CampaignManifest* out,
                    std::string* error) {
  std::string parse_error;
  const std::unique_ptr<JsonValue> doc = obs::json_parse(text, &parse_error);
  if (doc == nullptr) return axis_error(error, parse_error);
  if (!doc->is(JsonValue::Type::kObject)) {
    return axis_error(error, "top level must be an object");
  }
  const JsonValue* schema = doc->get("schema");
  if (schema == nullptr || !schema->is(JsonValue::Type::kString)) {
    return axis_error(error, "missing \"schema\"");
  }
  if (schema->string != kCampaignSchema) {
    return axis_error(error, "unsupported schema \"" + schema->string +
                                 "\" (this build reads " +
                                 std::string(kCampaignSchema) + ")");
  }

  CampaignManifest m;
  const JsonValue* name = doc->get("name");
  if (name == nullptr || !name->is(JsonValue::Type::kString) ||
      name->string.empty()) {
    return axis_error(error, "missing \"name\" string");
  }
  m.name = name->string;
  if (const JsonValue* smoke = doc->get("smoke"); smoke != nullptr) {
    if (!smoke->is(JsonValue::Type::kBool)) {
      return axis_error(error, "\"smoke\" must be a bool");
    }
    m.smoke = smoke->boolean;
  }
  if (const JsonValue* filter = doc->get("filter"); filter != nullptr) {
    if (!filter->is(JsonValue::Type::kString)) {
      return axis_error(error, "\"filter\" must be a string");
    }
    m.filter = filter->string;
  }

  const JsonValue* axes = doc->get("axes");
  if (axes != nullptr && !axes->is(JsonValue::Type::kObject)) {
    return axis_error(error, "\"axes\" must be an object");
  }

  const auto axis = [axes](const char* key) -> const JsonValue* {
    return axes == nullptr ? nullptr : axes->get(key);
  };

  if (const JsonValue* seeds = axis("seed"); seeds != nullptr) {
    if (!seeds->is(JsonValue::Type::kArray) || seeds->array.empty()) {
      return axis_error(error, "axes.seed must be a non-empty array");
    }
    for (const JsonValue& v : seeds->array) {
      std::uint64_t seed = 0;
      if (!parse_seed_value(v, &seed)) {
        return axis_error(error,
                          "axes.seed entries must be non-negative integers "
                          "(or decimal strings)");
      }
      m.seeds.push_back(seed);
    }
  } else {
    m.seeds.push_back(42);
  }

  if (const JsonValue* qdiscs = axis("qdisc"); qdiscs != nullptr) {
    if (!qdiscs->is(JsonValue::Type::kArray) || qdiscs->array.empty()) {
      return axis_error(error, "axes.qdisc must be a non-empty array");
    }
    for (const JsonValue& v : qdiscs->array) {
      net::QdiscConfig qdisc;
      if (!v.is(JsonValue::Type::kString)) {
        return axis_error(error, "axes.qdisc entries must be strings");
      }
      if (!net::parse_qdisc_spec(v.string, &qdisc)) {
        return axis_error(
            error, "axes.qdisc entry \"" + v.string +
                       "\" is not a valid qdisc spec "
                       "(droptail|codel|fq_codel|red, optionally +ecn)");
      }
      m.qdiscs.push_back(v.string);
    }
  } else {
    m.qdiscs.emplace_back("droptail");
  }

  if (const JsonValue* faults = axis("faults"); faults != nullptr) {
    if (!faults->is(JsonValue::Type::kArray) || faults->array.empty()) {
      return axis_error(error, "axes.faults must be a non-empty array");
    }
    for (const JsonValue& v : faults->array) {
      if (!v.is(JsonValue::Type::kString)) {
        return axis_error(error,
                          "axes.faults entries must be fault plan paths "
                          "(\"\" = no injection)");
      }
      m.faults.push_back(v.string);
    }
  } else {
    m.faults.emplace_back("");
  }

  *out = std::move(m);
  return true;
}

bool load_manifest(const std::string& path, CampaignManifest* out,
                   std::string* error) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return axis_error(error, "cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse_manifest(buf.str(), out, error);
}

std::vector<CampaignUnit> campaign_units(
    std::size_t cell_count, const std::vector<std::string>& experiments) {
  std::vector<CampaignUnit> out;
  out.reserve(cell_count * experiments.size());
  for (std::size_t cell = 0; cell < cell_count; ++cell) {
    for (const std::string& name : experiments) {
      out.push_back({cell, name});
    }
  }
  return out;
}

std::vector<CampaignUnit> shard_units(const std::vector<CampaignUnit>& units,
                                      std::size_t k, std::size_t n) {
  std::vector<CampaignUnit> out;
  for (std::size_t i = k; i < units.size(); i += n) {
    out.push_back(units[i]);
  }
  return out;
}

bool parse_shard_spec(std::string_view spec, std::size_t* k, std::size_t* n) {
  const std::size_t slash = spec.find('/');
  if (slash == std::string_view::npos) return false;
  const std::string ks(spec.substr(0, slash));
  const std::string ns(spec.substr(slash + 1));
  if (ks.empty() || ns.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long kv = std::strtoull(ks.c_str(), &end, 10);
  if (errno != 0 || end != ks.c_str() + ks.size()) return false;
  const unsigned long long nv = std::strtoull(ns.c_str(), &end, 10);
  if (errno != 0 || end != ns.c_str() + ns.size()) return false;
  if (nv == 0 || kv >= nv) return false;
  *k = static_cast<std::size_t>(kv);
  *n = static_cast<std::size_t>(nv);
  return true;
}

}  // namespace fiveg::core

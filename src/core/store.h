// Columnar campaign result store (format "fiveg-rs/v1"): one compact
// append-only binary file per campaign shard, holding the *deterministic
// core* of every completed run — name, seed, status, text, metric series,
// and the raw metric columns (counter values, gauge high-water marks,
// histogram buckets, digest bins) a fiveg-runall/v4 document is derived
// from. Derived statistics (means, percentile ladders) are never stored:
// they are recomputed through the same obs::snapshot_of path the live
// registry uses, so a summary exported from the store is byte-identical
// to the one the original campaign would have printed with timing off.
// Wall-clock fields live in the ledger (core/ledger.h), not here.
//
// File layout: a sequence of self-validating frames, each
//
//   "FGRS"  magic (4 bytes)
//   0x01    format version
//   type    'D' (dictionary delta) or 'R' (record)
//   len     u32 LE payload length
//   payload len bytes
//   fnv     u64 LE FNV-1a of the payload
//
// 'D' frames append strings to the file-wide dictionary (ids are assigned
// in file order, starting at 0); 'R' frames hold one run encoded against
// that dictionary (obs/codec.h). The writer emits a record's dictionary
// delta and the record itself in ONE O_APPEND write(), so concurrent
// workers never interleave bytes and a killed campaign can tear at most
// the final write — which the parser treats as a torn tail (the expected
// crash artifact), never as corruption of the valid prefix.
//
// Merging is order-independent by construction: records are keyed by
// (experiment, seed, campaign labels), and canonical_view() deduplicates
// (last record wins, mirroring the ledger's resume semantics) and sorts,
// so any shard layout, completion order or --jobs value yields the same
// merged view byte-for-byte.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/experiment.h"

namespace fiveg::core {

inline constexpr std::string_view kStoreSchema = "fiveg-rs/v1";
/// Shard files are named `<stem>.fgrs`; load_store_dir reads every match.
inline constexpr std::string_view kStoreFileSuffix = ".fgrs";

/// One stored run: the deterministic core of an ExperimentResult plus the
/// campaign labels (e.g. {"qdisc", "codel"}) that distinguish grid cells
/// running the same experiment at different parameters. Labels are kept
/// sorted by key; the wall-clock fields of `result` are always zero.
struct StoreRecord {
  ExperimentResult result;
  std::vector<std::pair<std::string, std::string>> labels;

  /// Identity under merge: experiment name, seed and labels. Two records
  /// with equal keys describe the same grid cell's run; the later one
  /// supersedes (a re-run after a crash, or an overlapping shard).
  [[nodiscard]] std::string key() const;
};

/// `a` before `b` in the canonical merged order: by experiment name, then
/// seed, then labels — independent of file order and shard layout.
[[nodiscard]] bool store_record_less(const StoreRecord& a,
                                     const StoreRecord& b);

/// Outcome of parsing one shard file.
struct StoreLoad {
  std::vector<StoreRecord> records;  // file order
  std::size_t valid_bytes = 0;       // length of the parseable frame prefix
  bool truncated_tail = false;  // bytes past valid_bytes (torn final write)
  std::size_t dropped_records = 0;  // framed+checksummed but undecodable
  std::string error;                // I/O-level failure; empty when loadable
  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Parses shard bytes. The valid frame prefix is kept; anything after the
/// first malformed frame header or checksum failure is a torn tail (the
/// writer's single-write discipline means a crash tears only the end).
[[nodiscard]] StoreLoad parse_store(std::string_view bytes);

/// Reads and parses one shard file. A missing file is an error.
[[nodiscard]] StoreLoad load_store_file(const std::string& path);

/// Outcome of loading a store directory (every `*.fgrs`, sorted by name).
struct StoreDirLoad {
  std::vector<std::string> files;    // shard paths actually read, sorted
  std::vector<StoreRecord> records;  // concatenation, file order
  std::size_t torn_files = 0;        // shards with a torn tail
  std::size_t dropped_records = 0;   // summed across shards
  std::string error;
  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Loads every shard in `dir`. A directory with no shard files is a
/// valid, empty store; an unreadable directory or shard is an error.
[[nodiscard]] StoreDirLoad load_store_dir(const std::string& dir);

/// The canonical merged view: deduplicates by key() (last record in
/// `records` wins) and sorts by store_record_less. This is the exchange
/// point of the whole design — shards merged in any order produce the
/// same vector, because duplicate resolution depends only on per-shard
/// append order (writers are append-only and crash consistency re-runs
/// land after their superseded originals).
[[nodiscard]] std::vector<StoreRecord> canonical_view(
    std::vector<StoreRecord> records);

/// Append-only shard writer. Opening scans any existing file: a torn tail
/// is sealed (truncated to the valid prefix), the file-wide dictionary is
/// rebuilt, and the present-key set is loaded so a resumed campaign can
/// re-append completed runs idempotently. Thread-safe; each append is one
/// O_APPEND write().
class StoreWriter {
 public:
  explicit StoreWriter(const std::string& path);
  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;
  ~StoreWriter();

  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// True if a record with this key is already on disk (or was appended
  /// through this writer).
  [[nodiscard]] bool contains(const std::string& key) const;

  /// Appends one record; a record whose key is already present is skipped
  /// (idempotent resume) and still returns true. False with error() set
  /// on I/O failure, which poisons the writer.
  bool append(const StoreRecord& rec);

  /// Records written by this writer (skipped duplicates not counted).
  [[nodiscard]] std::size_t appended() const;

 private:
  int fd_ = -1;
  mutable std::mutex mu_;
  std::string error_;
  std::map<std::string, std::uint64_t, std::less<>> dict_;
  std::uint64_t next_id_ = 0;
  std::set<std::string> present_;
  std::size_t appended_ = 0;
};

}  // namespace fiveg::core

// Experiment framework: every reproduced table/figure is an Experiment
// registered by name. Bench binaries look experiments up and run them; the
// output is a text table with the paper's values printed beside ours.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace fiveg::core {

/// Everything an experiment run needs.
struct ExperimentContext {
  std::uint64_t seed = 42;
  std::ostream* out = nullptr;  // never null when run via the registry
};

/// One reproducible table/figure.
class Experiment {
 public:
  virtual ~Experiment() = default;

  /// Stable id, e.g. "fig7_throughput".
  [[nodiscard]] virtual std::string name() const = 0;
  /// Which paper artifact this regenerates, e.g. "Figure 7".
  [[nodiscard]] virtual std::string paper_ref() const = 0;
  [[nodiscard]] virtual std::string description() const = 0;

  virtual void run(const ExperimentContext& ctx) = 0;
};

/// Global experiment registry (populated by static registrars).
class ExperimentRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Experiment>()>;

  static ExperimentRegistry& instance();

  void add(Factory factory);

  /// Runs the named experiment; returns false if unknown.
  bool run(const std::string& name, const ExperimentContext& ctx);

  /// All registered experiment names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::vector<Factory> factories_;
};

/// Adds an experiment type to the registry.
template <typename T>
void register_experiment() {
  ExperimentRegistry::instance().add([] { return std::make_unique<T>(); });
}

/// Explicit registration hooks, one per experiments translation unit.
/// Called by the registry before any lookup — static registrars would be
/// dropped when linking from a static archive.
void register_coverage_experiments();
void register_handoff_experiments();
void register_throughput_experiments();
void register_latency_experiments();
void register_app_experiments();
void register_energy_experiments();
void register_ablation_experiments();
void register_extension_experiments();

/// Standard bench-binary main body: runs one experiment (or all when
/// `name` is empty) with an optional seed argument.
int run_experiment_main(const std::string& name, int argc, char** argv);

}  // namespace fiveg::core

// Experiment framework: every reproduced table/figure is an Experiment
// registered by name. Bench binaries look experiments up and run them; the
// output is a text table with the paper's values printed beside ours, plus
// an optional structured result (status, wall-clock, named metric series)
// consumed by the parallel Runner and the JSON emitter.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace fiveg::obs {
class Tracer;
}  // namespace fiveg::obs

namespace fiveg::core {

/// Terminal state of one experiment run.
enum class RunStatus {
  kOk,        // ran to completion
  kFailed,    // threw; `error` holds the message
  kTimedOut,  // exceeded the per-experiment timeout; abandoned
};

[[nodiscard]] std::string_view to_string(RunStatus status);

/// One (x, y) sample of a named metric.
struct MetricPoint {
  double x = 0;
  double y = 0;
};

/// A named key/value series recorded by an experiment, e.g. the measured
/// coverage-hole fraction or a per-algorithm utilisation sweep.
struct MetricSeries {
  std::string name;
  std::string unit;  // free-form: "%", "Mbps", "ms", ...
  std::vector<MetricPoint> points;
};

/// Machine-readable outcome of one experiment run. Filled by the Runner;
/// experiments append to `metrics` through ExperimentContext::metric().
struct ExperimentResult {
  std::string name;
  std::string paper_ref;
  std::string description;
  RunStatus status = RunStatus::kOk;
  std::string error;       // nonempty iff status != kOk
  std::uint64_t seed = 0;  // the per-experiment forked seed actually used
  double wall_ms = 0;      // wall-clock, excluded from determinism checks
  // Process-wide peak RSS (kB) sampled when the run completed; like
  // wall_ms it is execution-domain data, excluded from determinism checks.
  // Under --jobs N the high-water mark is shared by the whole worker pool.
  std::uint64_t peak_rss_kb = 0;
  std::string text;        // the captured text-table output
  std::vector<MetricSeries> metrics;
  // Observability capture (see src/obs/). `counters` holds the kSim-clock
  // snapshot: deterministic, part of the fiveg-runall/v3 document.
  // `profile` holds the kWall-clock snapshot: wall-clock profiling data,
  // emitted only when timing is on (like wall_ms). `trace` is the
  // experiment's event trace, non-null only when tracing was requested.
  std::vector<obs::MetricSnapshot> counters;
  std::vector<obs::MetricSnapshot> profile;
  std::shared_ptr<obs::Tracer> trace;
};

/// Everything an experiment run needs.
struct ExperimentContext {
  std::uint64_t seed = 42;
  std::ostream* out = nullptr;         // never null when run via the registry
  ExperimentResult* result = nullptr;  // null when structured capture is off
  // Worker threads this experiment may give sim::ParSim (>= 1; the
  // Runner's --sim-threads budget after the inter/intra split). Thread
  // count never affects output, so experiments pass it straight through
  // to ParSimConfig::threads.
  int sim_threads = 1;

  /// Records a scalar sample of `series` (x = running sample index).
  /// No-op when `result` is null, so experiments record unconditionally.
  void metric(std::string_view series, double value,
              std::string_view unit = "") const;

  /// Records an (x, y) sample of `series`, e.g. a sweep point.
  void metric_point(std::string_view series, double x, double y,
                    std::string_view unit = "") const;
};

/// One reproducible table/figure.
class Experiment {
 public:
  virtual ~Experiment() = default;

  /// Stable id, e.g. "fig7_throughput".
  [[nodiscard]] virtual std::string name() const = 0;
  /// Which paper artifact this regenerates, e.g. "Figure 7".
  [[nodiscard]] virtual std::string paper_ref() const = 0;
  [[nodiscard]] virtual std::string description() const = 0;

  /// True for experiments cheap enough for the CI smoke tier (sub-second
  /// to a few seconds). The default is the full tier.
  [[nodiscard]] virtual bool smoke() const { return false; }

  virtual void run(const ExperimentContext& ctx) = 0;
};

/// Global experiment registry (populated by static registrars).
class ExperimentRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Experiment>()>;

  static ExperimentRegistry& instance();

  /// Registers a factory. Throws std::invalid_argument if an experiment
  /// with the same name is already registered.
  void add(Factory factory);

  /// Instantiates the named experiment; null if unknown.
  [[nodiscard]] std::unique_ptr<Experiment> create(
      const std::string& name) const;

  /// Runs the named experiment; returns false if unknown.
  bool run(const std::string& name, const ExperimentContext& ctx);

  /// All registered experiment names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  struct Entry {
    std::string name;
    Factory factory;
  };
  std::vector<Entry> entries_;
};

/// Adds an experiment type to the registry.
template <typename T>
void register_experiment() {
  ExperimentRegistry::instance().add([] { return std::make_unique<T>(); });
}

/// Explicit registration hooks, one per experiments translation unit.
/// Called by the registry before any lookup — static registrars would be
/// dropped when linking from a static archive.
void register_coverage_experiments();
void register_handoff_experiments();
void register_throughput_experiments();
void register_latency_experiments();
void register_app_experiments();
void register_energy_experiments();
void register_ablation_experiments();
void register_extension_experiments();
void register_aqm_experiments();
void register_city_experiments();

/// Prints the standard "### name — reproduces ..." banner that precedes
/// every experiment's tables (shared by the registry and the Runner).
void print_banner(const Experiment& exp, std::uint64_t seed,
                  std::ostream& os);

/// Standard bench-binary main body: runs one experiment (or all when
/// `name` is empty) with an optional seed argument.
int run_experiment_main(const std::string& name, int argc, char** argv);

}  // namespace fiveg::core

// A deterministic pending-event set: a min-heap keyed on (time, sequence
// number) so that events scheduled for the same instant fire in scheduling
// order.
//
// Layout: the heap holds small POD items (time, sequence, slot reference);
// the callables live in a slot arena indexed by the heap items. An EventId
// is (slot generation << 32) | slot index, so cancellation is O(1): it
// destroys the action immediately (releasing its captures), bumps the
// slot's generation — which simultaneously invalidates the id, invalidates
// the heap item (reaped lazily when it surfaces), and recycles the slot.
// Cancelling an already-fired or unknown id compares generations and does
// nothing, so no per-id bookkeeping ever accumulates: total storage is
// bounded by the high-water mark of concurrently pending events.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/callable.h"
#include "sim/time.h"

namespace fiveg::sim {

/// Opaque handle identifying a scheduled event; usable to cancel it.
using EventId = std::uint64_t;

/// Priority queue of timed callbacks with stable same-time ordering.
class EventQueue {
 public:
  /// Schedules `action` to fire at absolute time `at`. Returns a handle
  /// that can be passed to `cancel`.
  EventId schedule(Time at, Callable action) {
    return schedule(at, nullptr, std::move(action));
  }

  /// Labelled variant for the observability layer: `label` buckets the
  /// event in profiling reports and traces. It must point at storage that
  /// outlives the queue (string literals, in practice); null means
  /// unlabelled. Carrying the pointer costs unlabelled callers nothing.
  EventId schedule(Time at, const char* label, Callable action);

  /// Cancels a pending event. Cancelling an already-fired or unknown
  /// handle is a harmless no-op (the common race in protocol timers).
  void cancel(EventId id);

  /// True if no runnable (non-cancelled) events remain.
  [[nodiscard]] bool empty() const noexcept;

  /// Time of the earliest runnable event. Precondition: !empty().
  [[nodiscard]] Time next_time() const;

  /// A popped event, detached from the queue.
  struct Popped {
    Time at;
    const char* label;  // null when unlabelled
    Callable action;
  };

  /// Pops the earliest runnable event without running it, so the caller can
  /// advance its clock before invoking the action. Precondition: !empty().
  [[nodiscard]] Popped pop();

  /// Pops and runs the earliest runnable event; returns its time.
  /// Precondition: !empty().
  Time pop_and_run();

  /// Number of events ever scheduled (diagnostic).
  [[nodiscard]] std::uint64_t scheduled_count() const noexcept {
    return seq_;
  }

  /// Number of live events actually cancelled (stale-id no-ops excluded);
  /// with scheduled_count() this is the event-churn pair the self-profiler
  /// reports per run.
  [[nodiscard]] std::uint64_t cancelled_count() const noexcept {
    return cancelled_;
  }

  /// Heap occupancy, an upper bound on the runnable-event count (lazily
  /// reaped cancelled items are included until they surface). Used for
  /// queue-depth high-water marks, where the bound is tight enough.
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Number of action slots ever allocated: the high-water mark of
  /// concurrently pending events. Stays flat however many ids are
  /// cancelled — the regression guard for the old cancelled-set leak.
  [[nodiscard]] std::size_t slot_capacity() const noexcept {
    return slots_.size();
  }

 private:
  struct HeapItem {
    Time at;
    std::uint64_t seq;   // schedule order: FIFO tie-break at equal times
    std::uint32_t slot;  // index into slots_
    std::uint32_t gen;   // slot generation at schedule time
    friend bool operator>(const HeapItem& a, const HeapItem& b) noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  struct Slot {
    Callable action;
    const char* label = nullptr;
    std::uint32_t gen = 0;
    bool live = false;
  };

  // Drops heap items whose slot was cancelled (generation mismatch).
  void skip_stale() const;

  mutable std::priority_queue<HeapItem, std::vector<HeapItem>,
                              std::greater<>>
      heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  // recycled slot indices (LIFO)
  std::uint64_t seq_ = 0;
  std::uint64_t cancelled_ = 0;
};

}  // namespace fiveg::sim

// A deterministic pending-event set: a min-heap keyed on (time, sequence
// number) so that events scheduled for the same instant fire in scheduling
// order. Cancellation is lazy — cancelled entries are skipped on pop.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace fiveg::sim {

/// Opaque handle identifying a scheduled event; usable to cancel it.
using EventId = std::uint64_t;

/// Priority queue of timed callbacks with stable same-time ordering.
class EventQueue {
 public:
  /// Schedules `action` to fire at absolute time `at`. Returns a handle
  /// that can be passed to `cancel`.
  EventId schedule(Time at, std::function<void()> action) {
    return schedule(at, nullptr, std::move(action));
  }

  /// Labelled variant for the observability layer: `label` buckets the
  /// event in profiling reports and traces. It must point at storage that
  /// outlives the queue (string literals, in practice); null means
  /// unlabelled. Carrying the pointer costs unlabelled callers nothing.
  EventId schedule(Time at, const char* label, std::function<void()> action);

  /// Cancels a pending event. Cancelling an already-fired or unknown
  /// handle is a harmless no-op (the common race in protocol timers).
  void cancel(EventId id);

  /// True if no runnable (non-cancelled) events remain.
  [[nodiscard]] bool empty() const noexcept;

  /// Time of the earliest runnable event. Precondition: !empty().
  [[nodiscard]] Time next_time() const;

  /// A popped event, detached from the heap.
  struct Popped {
    Time at;
    const char* label;  // null when unlabelled
    std::function<void()> action;
  };

  /// Pops the earliest runnable event without running it, so the caller can
  /// advance its clock before invoking the action. Precondition: !empty().
  [[nodiscard]] Popped pop();

  /// Pops and runs the earliest runnable event; returns its time.
  /// Precondition: !empty().
  Time pop_and_run();

  /// Number of events ever scheduled (diagnostic).
  [[nodiscard]] std::uint64_t scheduled_count() const noexcept {
    return next_id_;
  }

  /// Heap occupancy, an upper bound on the runnable-event count (lazily
  /// cancelled entries are included until reaped). Used for queue-depth
  /// high-water marks, where the bound is tight enough.
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

 private:
  struct Entry {
    Time at;
    EventId id;
    const char* label;
    // Heap entries are moved, never copied: the callback may own captures.
    mutable std::function<void()> action;
    friend bool operator>(const Entry& a, const Entry& b) noexcept {
      return a.at != b.at ? a.at > b.at : a.id > b.id;
    }
  };

  // Drops cancelled entries sitting at the top of the heap.
  void skip_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>>
      heap_;
  mutable std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 0;
};

}  // namespace fiveg::sim

#include "sim/simulator.h"

#include <algorithm>
#include <utility>

namespace fiveg::sim {

EventId Simulator::schedule_at(Time at, std::function<void()> action) {
  return queue_.schedule(std::max(at, now_), std::move(action));
}

EventId Simulator::schedule_in(Time delay, std::function<void()> action) {
  return schedule_at(now_ + std::max<Time>(delay, 0), std::move(action));
}

// The clock must advance to the event's timestamp *before* the callback
// runs: callbacks read now() and schedule relative timers.
bool Simulator::step() {
  if (queue_.empty()) return false;
  EventQueue::Popped e = queue_.pop();
  now_ = e.at;
  e.action();
  ++executed_;
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(Time deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  now_ = std::max(now_, deadline);
}

}  // namespace fiveg::sim

#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "fault/fault.h"
#include "obs/obs.h"
#include "obs/prof.h"

namespace fiveg::sim {

namespace {

using WallClock = std::chrono::steady_clock;

double seconds_since(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

}  // namespace

Simulator::Simulator()
    : tracer_(obs::tracer()), metrics_(obs::metrics()) {
  if (tracer_ != nullptr) {
    tracer_->set_clock([this] { return now_; }, this);
  }
  // Experiments that run several simulated timelines (parameter sweeps,
  // policy comparisons) restart time at 0 per Simulator, so each instance
  // gets its own queue-depth counter track ("sim.queue_depth",
  // "sim.queue_depth#1", ...) — one track mixing timelines would violate
  // the per-track time monotonicity fiveg_trace_check enforces. The
  // ordinal is the registry's sim.instances counter, deterministic for
  // any --jobs value.
  if (metrics_ != nullptr) {
    obs::Counter& instances = metrics_->counter("sim.instances");
    if (instances.value() > 0) {
      depth_track_ = "sim.queue_depth#" + std::to_string(instances.value());
    }
    instances.add();
  }
  // The Callable heap counter is thread-local and outlives any one
  // Simulator (worker threads run many experiments back to back), so the
  // churn baseline starts at its current value, not at zero.
  last_heap_allocs_ = Callable::heap_fallbacks();
  // With a fault::Runtime installed on this thread, schedule the plan's
  // window toggles as ordinary events on this timeline; without one this
  // is a no-op (the fault path stays inert).
  fault::arm(*this);
}

Simulator::~Simulator() {
  if (tracer_ != nullptr) tracer_->clear_clock(this);
}

EventId Simulator::schedule_at(Time at, const char* label,
                               Callable action) {
  return queue_.schedule(std::max(at, now_), label, std::move(action));
}

EventId Simulator::schedule_in(Time delay, const char* label,
                               Callable action) {
  return schedule_at(now_ + std::max<Time>(delay, 0), label,
                     std::move(action));
}

// The clock must advance to the event's timestamp *before* the callback
// runs: callbacks read now() and schedule relative timers.
bool Simulator::step() {
  if (queue_.empty()) return false;
  EventQueue::Popped e = queue_.pop();
  now_ = e.at;
  if (metrics_ == nullptr && tracer_ == nullptr) {  // disabled fast path
    e.action();
    ++executed_;
    return true;
  }
  observed_step(e);
  return true;
}

Simulator::LabelStats& Simulator::stats_for(const char* label) {
  LabelStats& stats = label_stats_[label];
  if (stats.count == nullptr) {
    const std::string suffix = label != nullptr ? label : "(unlabeled)";
    stats.count = &metrics_->counter("sim.events." + suffix);
    stats.wall_us = &metrics_->histogram("sim.callback_wall_us." + suffix,
                                         obs::MetricClock::kWall);
  }
  return stats;
}

void Simulator::observed_step(EventQueue::Popped& e) {
  depth_hwm_ = std::max(depth_hwm_, queue_.size() + 1);  // +1: the popped one

  if (tracer_ != nullptr) {
    if (e.label != nullptr) tracer_->instant(now_, e.label, "sim");
    const auto depth = static_cast<double>(queue_.size());
    if (depth != last_depth_traced_) {
      tracer_->counter(now_, depth_track_, "sim", depth);
      last_depth_traced_ = depth;
    }
  }

  if (metrics_ == nullptr) {
    e.action();
    ++executed_;
    return;
  }
  if (events_total_ == nullptr) {
    events_total_ = &metrics_->counter("sim.events");
    depth_gauge_ = &metrics_->gauge("sim.queue_depth_hwm");
  }
  LabelStats& stats = stats_for(e.label);
  const auto start = WallClock::now();
  e.action();
  ++executed_;
  events_total_->add();
  stats.count->add();
  stats.wall_us->observe(seconds_since(start) * 1e6);
  depth_gauge_->update_max(static_cast<double>(depth_hwm_));
}

void Simulator::record_run(double wall_seconds, std::uint64_t events) {
  if (metrics_ == nullptr || events == 0 || wall_seconds <= 0.0) return;
  metrics_
      ->histogram("sim.wall_events_per_sec", obs::MetricClock::kWall)
      .observe(static_cast<double>(events) / wall_seconds);
  // Self-profiler feed. All of it kWall: the churn deltas are in fact
  // deterministic, but keeping every prof.* metric out of the kSim
  // `counters` object is what lets goldens ignore profiling entirely.
  metrics_->histogram(obs::prof::kPhasePrefix + std::string("simulate"),
                      obs::MetricClock::kWall)
      .observe(wall_seconds * 1e3);
  const std::uint64_t scheduled = queue_.scheduled_count();
  const std::uint64_t cancelled = queue_.cancelled_count();
  const std::uint64_t heap = Callable::heap_fallbacks();
  metrics_->counter(obs::prof::kScheduledMetric, obs::MetricClock::kWall)
      .add(scheduled - last_scheduled_);
  metrics_->counter(obs::prof::kCancelledMetric, obs::MetricClock::kWall)
      .add(cancelled - last_cancelled_);
  metrics_->counter(obs::prof::kHeapAllocMetric, obs::MetricClock::kWall)
      .add(heap - last_heap_allocs_);
  last_scheduled_ = scheduled;
  last_cancelled_ = cancelled;
  last_heap_allocs_ = heap;
}

void Simulator::run() {
  stopped_ = false;
  if (metrics_ == nullptr) {
    while (!stopped_ && step()) {
    }
    return;
  }
  const auto start = WallClock::now();
  const std::uint64_t before = executed_;
  while (!stopped_ && step()) {
  }
  record_run(seconds_since(start), executed_ - before);
}

std::uint64_t Simulator::run_window(Time end_exclusive) {
  std::uint64_t n = 0;
  while (!stopped_ && !queue_.empty() && queue_.next_time() < end_exclusive) {
    step();
    ++n;
  }
  return n;
}

void Simulator::run_until(Time deadline) {
  stopped_ = false;
  if (metrics_ == nullptr) {
    while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
      step();
    }
    now_ = std::max(now_, deadline);
    return;
  }
  const auto start = WallClock::now();
  const std::uint64_t before = executed_;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  now_ = std::max(now_, deadline);
  record_run(seconds_since(start), executed_ - before);
}

}  // namespace fiveg::sim

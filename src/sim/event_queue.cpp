#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace fiveg::sim {

EventId EventQueue::schedule(Time at, const char* label, Callable action) {
  std::uint32_t slot;
  if (free_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_.back();
    free_.pop_back();
  }
  Slot& s = slots_[slot];
  s.action = std::move(action);
  s.label = label;
  s.live = true;
  heap_.push(HeapItem{at, seq_++, slot, s.gen});
  return (static_cast<EventId>(s.gen) << 32) | slot;
}

void EventQueue::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffU);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return;  // never-issued handle
  Slot& s = slots_[slot];
  // Generation mismatch: the event already fired (or was cancelled) and
  // the slot moved on. The stale-id no-op costs nothing and stores nothing.
  if (!s.live || s.gen != gen) return;
  ++cancelled_;
  s.action.reset();  // release captures immediately
  s.label = nullptr;
  s.live = false;
  ++s.gen;  // invalidates the id and the pending heap item
  free_.push_back(slot);
}

void EventQueue::skip_stale() const {
  while (!heap_.empty()) {
    const HeapItem& it = heap_.top();
    const Slot& s = slots_[it.slot];
    if (s.live && s.gen == it.gen) return;
    heap_.pop();
  }
}

bool EventQueue::empty() const noexcept {
  skip_stale();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  skip_stale();
  assert(!heap_.empty());
  return heap_.top().at;
}

EventQueue::Popped EventQueue::pop() {
  skip_stale();
  assert(!heap_.empty());
  const HeapItem it = heap_.top();
  heap_.pop();
  Slot& s = slots_[it.slot];
  // Detach the callback before it can run: it may schedule into (or cancel
  // within) this queue, including its own — now stale — id.
  Popped out{it.at, s.label, std::move(s.action)};
  s.action.reset();
  s.label = nullptr;
  s.live = false;
  ++s.gen;
  free_.push_back(it.slot);
  return out;
}

Time EventQueue::pop_and_run() {
  Popped e = pop();
  e.action();
  return e.at;
}

}  // namespace fiveg::sim

#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace fiveg::sim {

EventId EventQueue::schedule(Time at, const char* label,
                             std::function<void()> action) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, id, label, std::move(action)});
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id < next_id_) cancelled_.insert(id);
}

void EventQueue::skip_cancelled() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::empty() const noexcept {
  skip_cancelled();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  skip_cancelled();
  assert(!heap_.empty());
  return heap_.top().at;
}

EventQueue::Popped EventQueue::pop() {
  skip_cancelled();
  assert(!heap_.empty());
  // The callback may schedule or cancel events, so detach it from the heap
  // before it can be invoked.
  Popped out{heap_.top().at, heap_.top().label,
             std::move(heap_.top().action)};
  heap_.pop();
  return out;
}

Time EventQueue::pop_and_run() {
  Popped e = pop();
  e.action();
  return e.at;
}

}  // namespace fiveg::sim

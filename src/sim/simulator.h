// The discrete-event simulator: a clock plus the pending-event set. All
// protocol machinery in this repository (radio, RAN, TCP, energy) advances
// exclusively through callbacks scheduled here, which makes every experiment
// deterministic for a given RNG seed.
#pragma once

#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace fiveg::sim {

/// Discrete-event simulation driver.
///
/// Typical use:
///   Simulator s;
///   s.schedule_in(10 * kMillisecond, [&] { ... });
///   s.run_until(2 * kSecond);
class Simulator {
 public:
  /// Current simulated time. Starts at 0.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `at` (clamped to `now()` if in the
  /// past, so zero-delay self-posts are safe).
  EventId schedule_at(Time at, std::function<void()> action);

  /// Schedules `action` to fire `delay` from now.
  EventId schedule_in(Time delay, std::function<void()> action);

  /// Cancels a pending event (no-op if already fired).
  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until the event set drains or `stop()` is called.
  void run();

  /// Runs events with time <= `deadline`, then advances the clock to
  /// `deadline` (even if idle), so measurements read a consistent clock.
  void run_until(Time deadline);

  /// Runs exactly one event if any is pending. Returns false when drained.
  bool step();

  /// Makes `run`/`run_until` return after the current event completes.
  void stop() noexcept { stopped_ = true; }

  /// Number of events executed so far (diagnostic / perf benches).
  [[nodiscard]] std::uint64_t executed_events() const noexcept {
    return executed_;
  }

 private:
  EventQueue queue_;
  Time now_ = 0;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
};

}  // namespace fiveg::sim

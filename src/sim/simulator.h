// The discrete-event simulator: a clock plus the pending-event set. All
// protocol machinery in this repository (radio, RAN, TCP, energy) advances
// exclusively through callbacks scheduled here, which makes every experiment
// deterministic for a given RNG seed.
//
// The simulator is also the root of the observability layer's profiling
// data: when the constructing thread has an obs::Scope installed (see
// obs/obs.h), every executed event is counted per label, timed on the wall
// clock into kWall histograms, and the queue-depth high-water mark is
// tracked. Without a scope (the default), each step pays a single branch.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sim/callable.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace fiveg::obs {
class Counter;
class Digest;
class Gauge;
class Histogram;
class MetricsRegistry;
class Tracer;
}  // namespace fiveg::obs

namespace fiveg::sim {

/// Discrete-event simulation driver.
///
/// Typical use:
///   Simulator s;
///   s.schedule_in(10 * kMillisecond, [&] { ... });
///   s.run_until(2 * kSecond);
class Simulator {
 public:
  /// Captures the calling thread's observability scope; with none
  /// installed, all instrumentation is disabled for this instance.
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Starts at 0.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `at` (clamped to `now()` if in the
  /// past, so zero-delay self-posts are safe).
  EventId schedule_at(Time at, Callable action) {
    return schedule_at(at, nullptr, std::move(action));
  }

  /// Labelled variant: `label` buckets this event in profiling reports and
  /// traces ("tcp.rto", "net.link_tx", ...). Must be a string literal or
  /// other storage outliving the simulator; unlabelled callers pay nothing.
  EventId schedule_at(Time at, const char* label, Callable action);

  /// Schedules `action` to fire `delay` from now.
  EventId schedule_in(Time delay, Callable action) {
    return schedule_in(delay, nullptr, std::move(action));
  }

  /// Labelled variant of `schedule_in` (see `schedule_at`).
  EventId schedule_in(Time delay, const char* label, Callable action);

  /// Cancels a pending event (no-op if already fired).
  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until the event set drains or `stop()` is called.
  void run();

  /// Runs events with time <= `deadline`, then advances the clock to
  /// `deadline` (even if idle), so measurements read a consistent clock.
  void run_until(Time deadline);

  /// Runs exactly one event if any is pending. Returns false when drained.
  bool step();

  /// Runs every runnable event with time strictly before `end_exclusive`,
  /// including events those events schedule back inside the window. Unlike
  /// `run_until`, it neither advances the clock past the last executed
  /// event nor publishes per-run profiling — the parallel driver
  /// (sim::ParSim) aggregates churn across lanes itself. Honors `stop()`.
  /// Returns the number of events executed.
  std::uint64_t run_window(Time end_exclusive);

  /// Advances the clock to `t` if it is ahead (idle catch-up at a window
  /// barrier); never moves time backwards.
  void advance_to(Time t) noexcept { now_ = std::max(now_, t); }

  /// Earliest runnable event time, or `fallback` when the set is empty.
  [[nodiscard]] Time next_event_time(Time fallback) const {
    return queue_.empty() ? fallback : queue_.next_time();
  }

  /// Makes `run`/`run_until` return after the current event completes.
  void stop() noexcept { stopped_ = true; }

  /// Whether `stop()` was requested and not yet cleared by `run`/
  /// `run_until`. A stopped lane is excluded from parallel window
  /// scheduling until restarted.
  [[nodiscard]] bool stop_requested() const noexcept { return stopped_; }

  /// Lifetime schedule()/cancel() totals from the pending-event set. The
  /// parallel driver sums these across lane simulators to publish the
  /// self-profiler churn counters exactly once per experiment.
  [[nodiscard]] std::uint64_t scheduled_total() const noexcept {
    return queue_.scheduled_count();
  }
  [[nodiscard]] std::uint64_t cancelled_total() const noexcept {
    return queue_.cancelled_count();
  }

  /// Overrides the queue-depth counter-track name. Must be called before
  /// the first traced event. The parallel driver renames each lane's track
  /// ("sim.queue_depth#p0", ...) because merged lane traces share one ring
  /// and fiveg_trace_check enforces per-track time monotonicity.
  void set_depth_track(std::string name) { depth_track_ = std::move(name); }

  /// Number of events executed so far (diagnostic / perf benches).
  [[nodiscard]] std::uint64_t executed_events() const noexcept {
    return executed_;
  }

  /// Pending-event-set occupancy (upper bound; see EventQueue::size).
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_.size();
  }

  /// Deepest the pending set has ever been. Only tracked while an
  /// observability scope is installed; 0 otherwise.
  [[nodiscard]] std::size_t queue_depth_high_water() const noexcept {
    return depth_hwm_;
  }

 private:
  // Cached per-label metric handles, keyed by label pointer identity.
  struct LabelStats {
    obs::Counter* count = nullptr;
    obs::Histogram* wall_us = nullptr;
  };

  // Out-of-line slow path: executes `e` with counting/timing/tracing.
  void observed_step(EventQueue::Popped& e);
  LabelStats& stats_for(const char* label);
  // Observes one completed run()/run_until() drain on the wall clock.
  void record_run(double wall_seconds, std::uint64_t events);

  EventQueue queue_;
  Time now_ = 0;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;

  // Observability (null when no scope was installed at construction).
  obs::Tracer* tracer_;
  obs::MetricsRegistry* metrics_;
  std::size_t depth_hwm_ = 0;
  obs::Counter* events_total_ = nullptr;
  obs::Gauge* depth_gauge_ = nullptr;
  std::map<const void*, LabelStats> label_stats_;
  double last_depth_traced_ = -1.0;
  // Self-profiler churn baselines: record_run() publishes the delta of
  // each source counter since the previous drain, so per-run numbers stay
  // correct when an experiment drives several run()/run_until() calls.
  std::uint64_t last_scheduled_ = 0;
  std::uint64_t last_cancelled_ = 0;
  std::uint64_t last_heap_allocs_ = 0;
  // Per-instance counter-track name; later instances in the same obs
  // scope get a "#<ordinal>" suffix so timelines never share a track.
  std::string depth_track_ = "sim.queue_depth";
};

}  // namespace fiveg::sim

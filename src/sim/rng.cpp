#include "sim/rng.h"

#include <algorithm>

namespace fiveg::sim {
namespace {

// 64-bit FNV-1a over a string, used to key named substreams.
std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

// splitmix64 finaliser: decorrelates adjacent seeds before feeding the
// Mersenne Twister, whose own seeding is weak for small seed deltas.
std::uint64_t Rng::mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

Rng::Rng(std::uint64_t seed) : seed_(seed), engine_(mix(seed)) {}

Rng Rng::fork(std::string_view name) const {
  return Rng(mix(seed_ ^ fnv1a(name)));
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::lognormal(double mu, double sigma) {
  return std::lognormal_distribution<double>(mu, sigma)(engine_);
}

double Rng::exponential(double rate) {
  return std::exponential_distribution<double>(rate)(engine_);
}

bool Rng::bernoulli(double p) {
  return std::bernoulli_distribution(std::clamp(p, 0.0, 1.0))(engine_);
}

}  // namespace fiveg::sim

#include "sim/parsim.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "fault/fault.h"
#include "obs/obs.h"
#include "obs/prof.h"
#include "sim/rng.h"

namespace fiveg::sim {

namespace {

using WallClock = std::chrono::steady_clock;

double seconds_since(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

constexpr Time kNever = std::numeric_limits<Time>::max();

Time saturating_add(Time a, Time b) noexcept {
  return a > kNever - b ? kNever : a + b;
}

}  // namespace

/// One partition: its own simulator plus the lane-local observability and
/// fault state installed around every window it executes.
struct ParSim::Lane {
  int index = 0;
  // Destruction order matters: the simulator's destructor talks to the
  // lane tracer (clear_clock), so the tracer/registry members must be
  // declared first (destroyed last).
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<fault::Runtime> fault;
  std::unique_ptr<Simulator> sim;

  // Staged cross-lane traffic, drained at the window barrier. Written
  // only by the one thread running this lane's current window; the
  // barrier's mutex hand-off orders it against the control thread.
  struct StagedSend {
    int src_lane = kNoLane;
    int to_lane = kNoLane;
    Time at = 0;
    const char* label = nullptr;
    Callable action;
    std::uint64_t ticket = 0;
  };
  struct StagedCancel {
    std::uint64_t seq = 0;
    CrossEventId id;
  };
  std::vector<StagedSend> outbox;
  std::vector<StagedCancel> cancels;
  std::uint64_t send_seq = 0;
  std::uint64_t cancel_seq = 0;

  // Aggregated on whichever worker ran each window; summed at finish().
  std::uint64_t heap_allocs = 0;
  std::exception_ptr error;
};

struct ParSim::Pool {
  std::vector<std::thread> workers;
  std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::uint64_t epoch = 0;
  Time window_end = 0;
  int done = 0;
  bool quit = false;
};

namespace {

// Which lane the current thread is executing for (see current_lane()).
// `staging` is true only inside a lane window, where cross-lane traffic
// must go through the mailbox instead of direct queue insertion.
struct TlsLane {
  ParSim* owner = nullptr;
  ParSim::Lane* lane = nullptr;
  int index = kNoLane;
  bool staging = false;
};
thread_local TlsLane tls_lane;

struct TlsLaneGuard {
  TlsLaneGuard(ParSim* owner, ParSim::Lane* lane, int index, bool staging) {
    prev = tls_lane;
    tls_lane = TlsLane{owner, lane, index, staging};
  }
  ~TlsLaneGuard() { tls_lane = prev; }
  TlsLaneGuard(const TlsLaneGuard&) = delete;
  TlsLaneGuard& operator=(const TlsLaneGuard&) = delete;
  TlsLane prev;
};

}  // namespace

int current_lane() noexcept { return tls_lane.index; }

ParSim::ParSim(const ParSimConfig& config) : config_(config) {
  if (config_.lanes < 1) {
    throw std::invalid_argument("parsim: lanes must be >= 1");
  }
  // A zero lookahead would make windows empty (no progress); one
  // nanosecond degenerates to time-step synchronisation, which is valid,
  // just slow.
  config_.lookahead = std::max<Time>(config_.lookahead, 1);

  parent_tracer_ = obs::tracer();
  parent_metrics_ = obs::metrics();
  fault::Runtime* parent_fault = fault::runtime();

  // Fallback rule: no parallel structure -> no worker pool. The inline
  // path runs the identical window schedule, so this only affects wall
  // clock, never output.
  int threads = config_.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::clamp(threads, 1, config_.lanes);
  if (config_.lanes == 1 ||
      config_.lookahead < config_.min_parallel_lookahead) {
    threads = 1;
  }
  effective_threads_ = threads;

  // Distinct trace-track namespace per ParSim within one experiment
  // ("sim.queue_depth#p0", "#1.p0", ...): merged lane rings share the
  // parent ring, and fiveg_trace_check wants one timeline per track.
  int ordinal = 0;
  if (parent_metrics_ != nullptr) {
    obs::Counter& instances = parent_metrics_->counter(
        "sim.parsim.instances", obs::MetricClock::kWall);
    ordinal = static_cast<int>(instances.value());
    instances.add();
  }

  control_ = std::make_unique<Simulator>();

  lanes_.reserve(static_cast<std::size_t>(config_.lanes));
  for (int k = 0; k < config_.lanes; ++k) {
    auto lane = std::make_unique<Lane>();
    lane->index = k;
    if (parent_metrics_ != nullptr) {
      lane->metrics = std::make_unique<obs::MetricsRegistry>();
    }
    if (parent_tracer_ != nullptr) {
      lane->tracer =
          std::make_unique<obs::Tracer>(parent_tracer_->capacity());
    }
    if (parent_fault != nullptr) {
      lane->fault = std::make_unique<fault::Runtime>(
          &parent_fault->plan(),
          Rng(parent_fault->seed())
              .fork("lane" + std::to_string(k))
              .seed());
    }
    {
      // The lane simulator must capture the lane scope (its fault arming
      // and cached handles are lane-local from birth).
      obs::ScopedObs scope(lane->tracer.get(), lane->metrics.get());
      fault::ScopedFaults faults(lane->fault.get());
      const std::uint64_t heap0 = Callable::heap_fallbacks();
      lane->sim = std::make_unique<Simulator>();
      lane->heap_allocs += Callable::heap_fallbacks() - heap0;
    }
    std::string track = "sim.queue_depth#";
    if (ordinal > 0) {
      track += std::to_string(ordinal);
      track += '.';
    }
    track += 'p';
    track += std::to_string(k);
    lane->sim->set_depth_track(std::move(track));
    lanes_.push_back(std::move(lane));
  }
}

ParSim::~ParSim() {
  try {
    finish();
  } catch (...) {
    // Destructors stay noexcept; finish() explicitly for error reporting.
  }
  shutdown_workers();
}

Simulator& ParSim::lane(int k) {
  if (k < 0 || k >= lanes()) {
    throw std::out_of_range("parsim: lane index out of range");
  }
  return *lanes_[static_cast<std::size_t>(k)]->sim;
}

std::uint64_t ParSim::executed_events() const {
  std::uint64_t n = control_->executed_events();
  for (const auto& lane : lanes_) n += lane->sim->executed_events();
  return n;
}

void ParSim::with_lane(int k, const std::function<void()>& fn) {
  if (k < 0 || k >= lanes()) {
    throw std::out_of_range("parsim: lane index out of range");
  }
  Lane& lane = *lanes_[static_cast<std::size_t>(k)];
  obs::ScopedObs scope(lane.tracer.get(), lane.metrics.get());
  fault::ScopedFaults faults(lane.fault.get());
  TlsLaneGuard tls(this, &lane, k, /*staging=*/false);
  const std::uint64_t heap0 = Callable::heap_fallbacks();
  fn();
  lane.heap_allocs += Callable::heap_fallbacks() - heap0;
}

CrossEventId ParSim::send(int to_lane, Time at, const char* label,
                          Callable action) {
  if (to_lane != kControlLane && (to_lane < 0 || to_lane >= lanes())) {
    throw std::out_of_range("parsim: send target lane out of range");
  }
  if (tls_lane.staging && tls_lane.owner == this) {
    Lane& src = *tls_lane.lane;
    const Time horizon = saturating_add(src.sim->now(), config_.lookahead);
    if (at < horizon) {
      std::string msg =
          "parsim: cross-lane send below the lookahead horizon (target ";
      msg += std::to_string(at);
      msg += " ns < sender now + lookahead = ";
      msg += std::to_string(horizon);
      msg += " ns); raise the delay or the partitioning is invalid";
      throw std::logic_error(msg);
    }
    const std::uint64_t ticket = ++src.send_seq;
    src.outbox.push_back(Lane::StagedSend{src.index, to_lane, at, label,
                                          std::move(action), ticket});
    return CrossEventId{src.index, ticket};
  }
  if (tls_lane.staging) {
    throw std::logic_error(
        "parsim: send() from a lane of a different ParSim");
  }
  // Control lane or outside run_until(): every lane is quiescent, insert
  // directly (no lookahead constraint — this is the serial region).
  Simulator& target = to_lane == kControlLane
                          ? *control_
                          : *lanes_[static_cast<std::size_t>(to_lane)]->sim;
  const std::uint64_t ticket = ++control_send_seq_;
  const EventId id = target.schedule_at(at, label, std::move(action));
  resolved_[{kControlLane, ticket}] = Resolved{to_lane, id, at};
  return CrossEventId{kControlLane, ticket};
}

void ParSim::cancel(const CrossEventId& id) {
  if (tls_lane.staging && tls_lane.owner == this) {
    Lane& src = *tls_lane.lane;
    src.cancels.push_back(Lane::StagedCancel{++src.cancel_seq, id});
    return;
  }
  if (tls_lane.staging) {
    throw std::logic_error(
        "parsim: cancel() from a lane of a different ParSim");
  }
  ++control_cancels_;
  const auto it = resolved_.find({id.src_lane, id.ticket});
  if (it == resolved_.end()) return;  // unknown / already cancelled
  Simulator& target =
      it->second.to_lane == kControlLane
          ? *control_
          : *lanes_[static_cast<std::size_t>(it->second.to_lane)]->sim;
  target.cancel(it->second.id);  // generation-checked: fired -> no-op
  resolved_.erase(it);
}

void ParSim::step_control() {
  TlsLaneGuard tls(this, nullptr, kControlLane, /*staging=*/false);
  const std::uint64_t heap0 = Callable::heap_fallbacks();
  control_->step();
  control_heap_allocs_ += Callable::heap_fallbacks() - heap0;
}

void ParSim::run_lane_window(Lane& lane, Time end_exclusive) {
  obs::ScopedObs scope(lane.tracer.get(), lane.metrics.get());
  fault::ScopedFaults faults(lane.fault.get());
  TlsLaneGuard tls(this, &lane, lane.index, /*staging=*/true);
  const std::uint64_t heap0 = Callable::heap_fallbacks();
  try {
    lane.sim->run_window(end_exclusive);
  } catch (...) {
    // Surface at the barrier (lowest lane index wins, deterministically);
    // stop the lane so no further windows run on a broken world.
    lane.error = std::current_exception();
    lane.sim->stop();
  }
  lane.heap_allocs += Callable::heap_fallbacks() - heap0;
}

void ParSim::run_lanes_window(Time end_exclusive) {
  if (effective_threads_ <= 1) {
    for (auto& lane : lanes_) run_lane_window(*lane, end_exclusive);
    return;
  }
  ensure_workers();
  {
    std::lock_guard<std::mutex> lock(pool_->mu);
    pool_->window_end = end_exclusive;
    pool_->done = 0;
    ++pool_->epoch;
  }
  pool_->work_cv.notify_all();
  std::unique_lock<std::mutex> lock(pool_->mu);
  pool_->done_cv.wait(lock, [this] {
    return pool_->done == static_cast<int>(pool_->workers.size());
  });
}

void ParSim::worker_main(int worker_id) {
  std::uint64_t seen_epoch = 0;
  const int stride = effective_threads_;
  for (;;) {
    Time end_exclusive = 0;
    {
      std::unique_lock<std::mutex> lock(pool_->mu);
      pool_->work_cv.wait(lock, [&] {
        return pool_->quit || pool_->epoch != seen_epoch;
      });
      if (pool_->quit) return;
      seen_epoch = pool_->epoch;
      end_exclusive = pool_->window_end;
    }
    for (int k = worker_id; k < lanes(); k += stride) {
      run_lane_window(*lanes_[static_cast<std::size_t>(k)], end_exclusive);
    }
    {
      std::lock_guard<std::mutex> lock(pool_->mu);
      ++pool_->done;
    }
    pool_->done_cv.notify_one();
  }
}

void ParSim::ensure_workers() {
  if (pool_ != nullptr) return;
  pool_ = std::make_unique<Pool>();
  pool_->workers.reserve(static_cast<std::size_t>(effective_threads_));
  for (int w = 0; w < effective_threads_; ++w) {
    pool_->workers.emplace_back([this, w] { worker_main(w); });
  }
}

void ParSim::shutdown_workers() {
  if (pool_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(pool_->mu);
    pool_->quit = true;
  }
  pool_->work_cv.notify_all();
  for (std::thread& t : pool_->workers) t.join();
  pool_.reset();
}

void ParSim::drain_mailbox(Time window_start) {
  // Canonical apply order — (time, source lane, ticket) for sends, then
  // (source lane, op ticket) for cancels — fixes the target-queue seq
  // numbers independent of which worker staged what first.
  std::vector<Lane::StagedSend*> sends;
  std::vector<std::pair<int, Lane::StagedCancel*>> cancels;
  for (auto& lane : lanes_) {
    for (auto& s : lane->outbox) sends.push_back(&s);
    for (auto& c : lane->cancels) cancels.push_back({lane->index, &c});
  }
  std::sort(sends.begin(), sends.end(),
            [](const Lane::StagedSend* a, const Lane::StagedSend* b) {
              if (a->at != b->at) return a->at < b->at;
              if (a->src_lane != b->src_lane) {
                return a->src_lane < b->src_lane;
              }
              return a->ticket < b->ticket;
            });
  std::sort(cancels.begin(), cancels.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second->seq < b.second->seq;
            });
  for (Lane::StagedSend* s : sends) {
    Simulator& target =
        s->to_lane == kControlLane
            ? *control_
            : *lanes_[static_cast<std::size_t>(s->to_lane)]->sim;
    const EventId id =
        target.schedule_at(s->at, s->label, std::move(s->action));
    resolved_[{s->src_lane, s->ticket}] = Resolved{s->to_lane, id, s->at};
  }
  for (const auto& [src, c] : cancels) {
    (void)src;
    const auto it = resolved_.find({c->id.src_lane, c->id.ticket});
    if (it == resolved_.end()) continue;
    Simulator& target =
        it->second.to_lane == kControlLane
            ? *control_
            : *lanes_[static_cast<std::size_t>(it->second.to_lane)]->sim;
    target.cancel(it->second.id);
    resolved_.erase(it);
  }
  for (auto& lane : lanes_) {
    lane->outbox.clear();
    lane->cancels.clear();
  }
  // Events before the current window start have fired or been cancelled;
  // a future cancel of them is a no-op either way, so their entries can
  // go. Only bother when the map has grown.
  if (resolved_.size() > 1024) {
    for (auto it = resolved_.begin(); it != resolved_.end();) {
      it = it->second.at < window_start ? resolved_.erase(it)
                                        : std::next(it);
    }
  }
}

void ParSim::rethrow_lane_error() {
  for (auto& lane : lanes_) {
    if (lane->error) {
      std::exception_ptr e = lane->error;
      lane->error = nullptr;
      std::rethrow_exception(e);
    }
  }
}

void ParSim::run_until(Time deadline) {
  if (finished_) {
    throw std::logic_error("parsim: run_until() after finish()");
  }
  const auto start = WallClock::now();
  const std::uint64_t before = executed_events();
  for (;;) {
    const Time t_control = control_->stop_requested()
                               ? kNever
                               : control_->next_event_time(kNever);
    Time t_min = kNever;
    for (const auto& lane : lanes_) {
      if (lane->sim->stop_requested()) continue;
      t_min = std::min(t_min, lane->sim->next_event_time(kNever));
    }
    const Time t_next = std::min(t_control, t_min);
    if (t_next == kNever || t_next > deadline) break;
    if (t_control <= t_min) {
      // Global events run serially between windows; at equal timestamps
      // the control lane goes first (the canonical order).
      step_control();
      continue;
    }
    Time end_exclusive = saturating_add(t_min, config_.lookahead);
    end_exclusive = std::min(end_exclusive, t_control);
    if (deadline < kNever) {
      end_exclusive = std::min(end_exclusive, deadline + 1);
    }
    run_lanes_window(end_exclusive);
    ++windows_;
    drain_mailbox(t_min);
    rethrow_lane_error();
  }
  control_->advance_to(deadline);
  for (auto& lane : lanes_) lane->sim->advance_to(deadline);
  record_run(seconds_since(start), executed_events() - before);
}

void ParSim::record_run(double wall_seconds, std::uint64_t events) {
  if (parent_metrics_ == nullptr || events == 0 || wall_seconds <= 0.0) {
    return;
  }
  parent_metrics_
      ->histogram("sim.wall_events_per_sec", obs::MetricClock::kWall)
      .observe(static_cast<double>(events) / wall_seconds);
  parent_metrics_
      ->histogram(obs::prof::kPhasePrefix + std::string("simulate"),
                  obs::MetricClock::kWall)
      .observe(wall_seconds * 1e3);
}

void ParSim::finish() {
  if (finished_) return;
  finished_ = true;
  shutdown_workers();

  if (parent_metrics_ != nullptr) {
    // Lane registries first (lane-index order), then the aggregate churn:
    // lane windows run on arbitrary worker threads, so the thread-local
    // Callable heap counter and the per-Simulator queue totals are
    // re-aggregated here instead of through Simulator::record_run, which
    // would attribute them to whichever OS thread happened to run last.
    for (const auto& lane : lanes_) {
      if (lane->metrics) parent_metrics_->merge_from(*lane->metrics);
    }
    std::uint64_t scheduled = control_->scheduled_total();
    std::uint64_t cancelled = control_->cancelled_total();
    std::uint64_t heap = control_heap_allocs_;
    for (const auto& lane : lanes_) {
      scheduled += lane->sim->scheduled_total();
      cancelled += lane->sim->cancelled_total();
      heap += lane->heap_allocs;
    }
    parent_metrics_
        ->counter(obs::prof::kScheduledMetric, obs::MetricClock::kWall)
        .add(scheduled);
    parent_metrics_
        ->counter(obs::prof::kCancelledMetric, obs::MetricClock::kWall)
        .add(cancelled);
    parent_metrics_
        ->counter(obs::prof::kHeapAllocMetric, obs::MetricClock::kWall)
        .add(heap);
    // Deterministic structure counters (identical for any thread count).
    // Cross-lane traffic is summed from the per-lane ticket counters —
    // each mutated only by the thread that ran the lane's window — plus
    // the control thread's, so no shared counter is touched inside a
    // window.
    std::uint64_t cross_sends = control_send_seq_;
    std::uint64_t cross_cancels = control_cancels_;
    for (const auto& lane : lanes_) {
      cross_sends += lane->send_seq;
      cross_cancels += lane->cancel_seq;
    }
    parent_metrics_->counter("sim.parsim.windows").add(windows_);
    parent_metrics_->counter("sim.parsim.cross_sends").add(cross_sends);
    parent_metrics_->counter("sim.parsim.cross_cancels").add(cross_cancels);
    parent_metrics_
        ->gauge("sim.parsim.threads", obs::MetricClock::kWall)
        .set(static_cast<double>(effective_threads_));
  }
  if (parent_tracer_ != nullptr) {
    for (const auto& lane : lanes_) {
      if (lane->tracer) parent_tracer_->append_from(*lane->tracer);
    }
  }
}

}  // namespace fiveg::sim

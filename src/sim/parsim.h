// Conservative-lookahead parallel discrete-event simulation. A ParSim
// partitions one experiment's timeline into `lanes` independent
// sub-simulators (sector / link domains) plus one control lane for global
// events, and advances the lanes in lock-step windows:
//
//   window = [t_min, min(t_min + lookahead, t_control, deadline+1))
//
// where t_min is the earliest pending lane event and `lookahead` is the
// minimum cross-lane influence delay derived from the scenario's physical
// structure (propagation + wireline delays bound how soon one partition
// can affect another). Inside a window every lane runs its own (time, seq)
// FIFO queue sequentially; windows from different lanes run on worker
// threads. Because a cross-lane send must land at least `lookahead` after
// its sender's clock, no event scheduled during a window can fall inside
// that same window on another lane — the conservative-synchronisation
// invariant that makes the parallel schedule equivalent to the serial one.
//
// Determinism contract: the merged output is a pure function of the event
// content, never of thread scheduling. Each lane gets its own
// obs::MetricsRegistry / obs::Tracer / fault::Runtime (installed
// thread-locally around every lane window, so handle-caching layers stay
// lane-local); finish() folds them into the creating scope in lane-index
// order. Cross-lane mailboxes are drained at window barriers in a
// canonical (time, source lane, ticket) order before seq numbers are
// assigned. Running with --sim-threads 1 executes the identical window
// schedule inline, which is why any thread count produces byte-identical
// KPIs, traces and goldens.
//
// Fallback rule: when the scenario gives no parallel structure (a single
// lane, a lookahead below `min_parallel_lookahead`, or threads <= 1) no
// worker pool is created and the same canonical schedule runs inline.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "sim/callable.h"
#include "sim/lane.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace fiveg::sim {

struct ParSimConfig {
  /// Number of event-timeline partitions (>= 1).
  int lanes = 1;
  /// Worker threads for lane windows; <= 0 means hardware concurrency.
  /// Clamped to `lanes`. The thread count never affects output.
  int threads = 1;
  /// Conservative cross-lane influence bound: a send() from inside a lane
  /// must target a time >= sender now + lookahead. Clamped to >= 1 ns.
  Time lookahead = kMillisecond;
  /// Below this lookahead the partitions couple too tightly for windows
  /// to amortise barrier cost; ParSim falls back to the inline schedule.
  Time min_parallel_lookahead = 100 * kMicrosecond;
};

/// Handle for a cross-lane event, usable with ParSim::cancel from any
/// lane. (source lane, per-source ticket) — stable across thread counts.
struct CrossEventId {
  int src_lane = kNoLane;
  std::uint64_t ticket = 0;
};

class ParSim {
 public:
  // Opaque partition state; defined in parsim.cpp (the thread-local lane
  // context needs to name it).
  struct Lane;

  /// Captures the calling thread's obs::Scope and fault::Runtime as the
  /// "parent" context, then builds per-lane registries/tracers/fault
  /// runtimes and one Simulator per lane (each lane's fault runtime is a
  /// deterministic "lane<k>" fork of the parent's seed, armed on that
  /// lane's timeline).
  explicit ParSim(const ParSimConfig& config);
  ~ParSim();
  ParSim(const ParSim&) = delete;
  ParSim& operator=(const ParSim&) = delete;

  [[nodiscard]] int lanes() const noexcept {
    return static_cast<int>(lanes_.size());
  }
  [[nodiscard]] Time lookahead() const noexcept { return config_.lookahead; }
  /// True when lane windows will run on worker threads (fallback not
  /// taken). Purely informational: output is identical either way.
  [[nodiscard]] bool parallel_active() const noexcept {
    return effective_threads_ > 1;
  }
  [[nodiscard]] int effective_threads() const noexcept {
    return effective_threads_;
  }
  /// Lock-step windows executed so far (a pure function of the event
  /// structure, identical for any thread count).
  [[nodiscard]] std::uint64_t windows() const noexcept { return windows_; }
  /// Events executed across the control lane and all partitions.
  [[nodiscard]] std::uint64_t executed_events() const;

  /// Lane simulators: build each partition's world against its own lane
  /// (inside with_lane(), so cached metric handles stay lane-local).
  [[nodiscard]] Simulator& lane(int k);
  /// The serial control lane for global events (reporting sweeps, phase
  /// changes). Control events run between windows, before any lane event
  /// at the same timestamp.
  [[nodiscard]] Simulator& control() noexcept { return *control_; }

  /// Runs `fn` with lane k's observability scope + fault runtime
  /// installed on the calling thread. All lane-world construction must
  /// happen here: layers cache registry handles at construction, and the
  /// cache must point into the lane's registry, not the experiment's.
  void with_lane(int k, const std::function<void()>& fn);

  /// Schedules `action` on `to_lane` (a lane index or kControlLane) at
  /// absolute time `at`. From inside a lane window the send is staged and
  /// applied at the next barrier, and `at` must be >= the sender's now()
  /// + lookahead (throws std::logic_error below the horizon — that is the
  /// conservative invariant, not a tunable). From the control lane or
  /// from outside run_until() the event is inserted immediately.
  CrossEventId send(int to_lane, Time at, const char* label,
                    Callable action);

  /// Cancels a cross-lane event. Staged like send() when called from a
  /// lane window; a cancel that reaches the barrier after its event fired
  /// is a deterministic no-op (events closer than the lookahead horizon
  /// cannot be recalled — same outcome for every thread count).
  void cancel(const CrossEventId& id);

  /// Advances every lane to `deadline` (inclusive, like
  /// Simulator::run_until) through the lock-step window schedule, then
  /// idle-advances all clocks to `deadline`. Rethrows the first lane
  /// exception (lowest lane index of the earliest failing window).
  void run_until(Time deadline);

  /// Folds every lane's metrics/trace into the parent scope in lane-index
  /// order and publishes the aggregated self-profiler churn
  /// (prof.events_scheduled / cancelled / callable_heap_allocs) exactly
  /// once, summed across lanes, control and every worker thread.
  /// Idempotent; the destructor calls it if the experiment did not.
  void finish();

 private:
  void run_lane_window(Lane& lane, Time end_exclusive);
  void run_lanes_window(Time end_exclusive);
  void step_control();
  void drain_mailbox(Time window_start);
  void rethrow_lane_error();
  void ensure_workers();
  void shutdown_workers();
  void worker_main(int worker_id);
  void record_run(double wall_seconds, std::uint64_t events);

  ParSimConfig config_;
  int effective_threads_ = 1;
  std::uint64_t windows_ = 0;
  std::uint64_t control_heap_allocs_ = 0;
  // Cancels issued from the serial region (control thread only). Staged
  // sends/cancels are counted on their Lane (send_seq / cancel_seq, each
  // mutated only by the thread running that lane's window) and the totals
  // are summed race-free in finish(); direct sends reuse control_send_seq_.
  std::uint64_t control_cancels_ = 0;
  bool finished_ = false;

  // Parent context captured at construction (all may be null).
  obs::Tracer* parent_tracer_ = nullptr;
  obs::MetricsRegistry* parent_metrics_ = nullptr;

  std::unique_ptr<Simulator> control_;
  std::vector<std::unique_ptr<Lane>> lanes_;

  // Worker pool state lives out-of-line so <thread>/<mutex> stay out of
  // this header (and out of every Simulator user).
  struct Pool;
  std::unique_ptr<Pool> pool_;

  // Cross-lane bookkeeping (control thread only, mutated at barriers).
  struct Resolved {
    int to_lane = kNoLane;
    EventId id = 0;
    Time at = 0;
  };
  std::map<std::pair<int, std::uint64_t>, Resolved> resolved_;
  std::uint64_t control_send_seq_ = 0;
};

}  // namespace fiveg::sim

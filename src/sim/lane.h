// Partition (lane) identity for the parallel event core — split out of
// parsim.h so domain-tagged components (ran::UeCohort, net::Link) can
// declare and verify their lane affinity without depending on the whole
// scheduler.
#pragma once

namespace fiveg::sim {

/// Lane id of code running outside any ParSim lane (the default).
inline constexpr int kNoLane = -2;
/// Lane id of the serial control lane (global events between windows).
inline constexpr int kControlLane = -1;

/// The lane the calling thread is currently executing for: a lane index,
/// kControlLane inside a control event, or kNoLane outside ParSim
/// entirely. Domain-tagged components use this to verify they only ever
/// run on their declared partition.
[[nodiscard]] int current_lane() noexcept;

}  // namespace fiveg::sim

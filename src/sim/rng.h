// Seeded random-number generation for experiments. Every stochastic model in
// the library draws through an `Rng`, and substreams are derived by name so
// that adding a new consumer never perturbs the draws of existing ones.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace fiveg::sim {

/// Deterministic random source wrapping a 64-bit Mersenne Twister with the
/// distribution helpers the models need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Derives an independent substream keyed by `name`. Forking the same
  /// (seed, name) pair always produces an identical stream, regardless of
  /// how many draws have been made from the parent.
  [[nodiscard]] Rng fork(std::string_view name) const;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Normal (Gaussian) draw.
  [[nodiscard]] double normal(double mean, double stddev);

  /// Log-normal draw parameterised by the underlying normal.
  [[nodiscard]] double lognormal(double mu, double sigma);

  /// Exponential draw with the given rate (events per unit).
  [[nodiscard]] double exponential(double rate);

  /// True with probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p);

  /// Raw 64-bit draw (for shuffles and hashing-style uses).
  [[nodiscard]] std::uint64_t next_u64() { return engine_(); }

  /// The seed this stream was created with.
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  static std::uint64_t mix(std::uint64_t x) noexcept;

  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace fiveg::sim

// Simulated time: a signed 64-bit count of nanoseconds since simulation
// start. Integer time keeps event ordering exact and runs bit-identical
// across platforms, which the experiment reproducibility story relies on.
#pragma once

#include <cstdint>

namespace fiveg::sim {

/// Simulated time in nanoseconds.
using Time = std::int64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1000 * kNanosecond;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;
inline constexpr Time kMinute = 60 * kSecond;

/// Converts a simulated time to floating-point seconds (for reporting).
[[nodiscard]] constexpr double to_seconds(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts a simulated time to floating-point milliseconds (for reporting).
[[nodiscard]] constexpr double to_millis(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/// Converts floating-point seconds to simulated time, truncating toward zero.
[[nodiscard]] constexpr Time from_seconds(double s) noexcept {
  return static_cast<Time>(s * static_cast<double>(kSecond));
}

/// Converts floating-point milliseconds to simulated time.
[[nodiscard]] constexpr Time from_millis(double ms) noexcept {
  return static_cast<Time>(ms * static_cast<double>(kMillisecond));
}

}  // namespace fiveg::sim

// Move-only type-erased `void()` callable with a small-buffer store.
// The event queue keeps one per pending event; std::function heap-allocates
// for all but the tiniest captures, and that allocation dominated
// schedule() in protocol-heavy runs. Captures up to kInlineBytes (enough
// for the repo's timer lambdas: a `this` pointer plus a few scalars) live
// in place; larger ones fall back to the heap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace fiveg::sim {

/// Move-only replacement for std::function<void()>.
class Callable {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  Callable() noexcept {}  // NOLINT: union member stays uninitialized

  template <class F, class Fn = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<Fn, Callable> &&
                                     std::is_invocable_r_v<void, Fn&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): lambdas convert implicitly
  Callable(F&& f) {
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::kOps;
    } else {
      ++heap_fallbacks();
      ptr_ = new Fn(std::forward<F>(f));
      ops_ = &HeapOps<Fn>::kOps;
    }
  }

  /// Running count of heap-fallback constructions on this thread (captures
  /// too big for the inline buffer). The self-profiler snapshots deltas of
  /// this to attribute event-core allocations per run; the inline fast path
  /// never touches it.
  static std::uint64_t& heap_fallbacks() noexcept {
    thread_local std::uint64_t count = 0;
    return count;
  }

  Callable(Callable&& other) noexcept { move_from(other); }
  Callable& operator=(Callable&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Callable(const Callable&) = delete;
  Callable& operator=(const Callable&) = delete;
  ~Callable() { reset(); }

  /// Destroys the target (releasing its captures); leaves *this empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(this);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// Invokes the target. Precondition: non-empty.
  void operator()() { ops_->invoke(this); }

 private:
  struct Ops {
    void (*invoke)(Callable*);
    void (*destroy)(Callable*);
    // Moves the target out of `from` into raw storage of `to` (which must
    // be empty); `from` is left with its target destroyed.
    void (*relocate)(Callable* from, Callable* to);
  };

  template <class Fn>
  struct InlineOps {
    static Fn* target(Callable* c) noexcept {
      return std::launder(reinterpret_cast<Fn*>(c->buf_));
    }
    static void invoke(Callable* c) { (*target(c))(); }
    static void destroy(Callable* c) { target(c)->~Fn(); }
    static void relocate(Callable* from, Callable* to) {
      ::new (static_cast<void*>(to->buf_)) Fn(std::move(*target(from)));
      target(from)->~Fn();
    }
    static constexpr Ops kOps{&invoke, &destroy, &relocate};
  };

  template <class Fn>
  struct HeapOps {
    static void invoke(Callable* c) { (*static_cast<Fn*>(c->ptr_))(); }
    static void destroy(Callable* c) { delete static_cast<Fn*>(c->ptr_); }
    static void relocate(Callable* from, Callable* to) {
      to->ptr_ = from->ptr_;
    }
    static constexpr Ops kOps{&invoke, &destroy, &relocate};
  };

  void move_from(Callable& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(&other, this);
      other.ops_ = nullptr;
    }
  }

  union {
    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    void* ptr_;
  };
  const Ops* ops_ = nullptr;
};

}  // namespace fiveg::sim

#include "radio/link_budget.h"

#include <cmath>

#include "radio/pathloss.h"

namespace fiveg::radio {
namespace {

double db_to_linear(double db) noexcept { return std::pow(10.0, db / 10.0); }
double linear_to_db(double lin) noexcept { return 10.0 * std::log10(lin); }

// Shadowing offsets so the two bands draw distinct fields from one seed.
constexpr std::uint64_t kLteFieldSalt = 0x17e'000;
constexpr std::uint64_t kNrFieldSalt = 0x5f9'000;

}  // namespace

RadioEnvironment::RadioEnvironment(const geo::CampusMap* campus,
                                   std::uint64_t seed, double sigma_db,
                                   double corr_dist_m)
    : campus_(campus),
      shadow_lte_(seed ^ kLteFieldSalt, sigma_db, corr_dist_m),
      shadow_nr_(seed ^ kNrFieldSalt, sigma_db, corr_dist_m) {}

const ShadowingField& RadioEnvironment::field_for(
    const CarrierConfig& c) const noexcept {
  return c.rat == Rat::kLte ? shadow_lte_ : shadow_nr_;
}

double RadioEnvironment::path_gain_db(const CarrierConfig& c, const TxSite& tx,
                                      const geo::Point& ue) const noexcept {
  const geo::Segment path{tx.pos, ue};
  const bool los = campus_->has_los(path);
  const double pl = campus_pathloss_db(path.length(), c.freq_ghz, los);
  // Outdoor blockage is statistically inside the NLoS fit; explicit
  // penetration applies only when the UE itself is indoors (O2I).
  const double pen = campus_->o2i_loss_db(ue, c.freq_ghz);
  // The shadowing field is sampled at the UE end; using one end keeps the
  // field consistent when comparing co-sited cells from the same spot.
  const double shadow = field_for(c).at(ue);
  return tx.antenna.gain_toward(tx.pos, ue) - pl - pen - shadow;
}

double RadioEnvironment::rsrp_dbm(const CarrierConfig& c, const TxSite& tx,
                                  const geo::Point& ue) const noexcept {
  return c.tx_re_power_dbm + path_gain_db(c, tx, ue);
}

double RadioEnvironment::sinr_db(const CarrierConfig& c, const TxSite& serving,
                                 const geo::Point& ue,
                                 const std::vector<TxSite>& interferers,
                                 double interferer_load) const noexcept {
  const double s = db_to_linear(rsrp_dbm(c, serving, ue));
  double denom = db_to_linear(c.noise_per_re_dbm());
  for (const TxSite& i : interferers) {
    denom += interferer_load * db_to_linear(rsrp_dbm(c, i, ue));
  }
  return linear_to_db(s / denom);
}

}  // namespace fiveg::radio

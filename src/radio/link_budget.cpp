#include "radio/link_budget.h"

#include <bit>
#include <cmath>

#include "radio/pathloss.h"
#include "radio/units.h"

namespace fiveg::radio {
namespace {

// Mixes key bit patterns into a memo slot index (same scheme as the campus
// memos: multiply-xorshift folds per 64-bit key part).
inline std::uint64_t mix_bits(std::uint64_t h) noexcept {
  h *= 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  return h;
}

inline std::uint64_t mix_key(std::uint64_t h, std::uint64_t k) noexcept {
  return mix_bits(h ^ k);
}

// Shadowing offsets so the two bands draw distinct fields from one seed.
constexpr std::uint64_t kLteFieldSalt = 0x17e'000;
constexpr std::uint64_t kNrFieldSalt = 0x5f9'000;

}  // namespace

RadioEnvironment::RadioEnvironment(const geo::CampusMap* campus,
                                   std::uint64_t seed, double sigma_db,
                                   double corr_dist_m)
    : campus_(campus),
      shadow_lte_(seed ^ kLteFieldSalt, sigma_db, corr_dist_m),
      shadow_nr_(seed ^ kNrFieldSalt, sigma_db, corr_dist_m),
      fault_(fault::runtime()) {
  // Sized for one coverage-grid sweep of the full deployment: ~2.3k grid
  // points times ~19 distinct mast positions over two bands.
  link_memo_.assign(65536, LinkSlot{});
  link_lru_.assign(link_memo_.size() / 2, 0);
}

const ShadowingField& RadioEnvironment::field_for(
    const CarrierConfig& c) const noexcept {
  return c.rat == Rat::kLte ? shadow_lte_ : shadow_nr_;
}

RadioEnvironment::LinkTerms RadioEnvironment::link_terms(
    const geo::Point& site, const geo::Point& ue,
    double freq_ghz) const noexcept {
  const auto px = std::bit_cast<std::uint64_t>(site.x);
  const auto py = std::bit_cast<std::uint64_t>(site.y);
  const auto ux = std::bit_cast<std::uint64_t>(ue.x);
  const auto uy = std::bit_cast<std::uint64_t>(ue.y);
  const auto fb = std::bit_cast<std::uint64_t>(freq_ghz);
  const std::uint64_t h =
      mix_key(mix_key(mix_key(mix_key(mix_bits(px), py), ux), uy), fb);
  const auto base = static_cast<std::size_t>(h) & (link_memo_.size() - 2);
  for (std::size_t w = 0; w < 2; ++w) {
    const LinkSlot& s = link_memo_[base + w];
    if (s.used != 0 && s.px == px && s.py == py && s.ux == ux && s.uy == uy &&
        s.fb == fb) {
      link_lru_[base >> 1] = static_cast<std::uint8_t>(1 - w);
      return s.terms;
    }
  }
  const geo::Segment path{site, ue};
  const bool los = campus_->has_los(path);
  const LinkTerms t{geo::azimuth_deg(site, ue),
                    campus_pathloss_db(path.length(), freq_ghz, los)};
  const std::size_t w = link_lru_[base >> 1];
  link_memo_[base + w] = LinkSlot{px, py, ux, uy, fb, t, 1};
  link_lru_[base >> 1] = static_cast<std::uint8_t>(1 - w);
  return t;
}

double RadioEnvironment::path_gain_db(const CarrierConfig& c, const TxSite& tx,
                                      const geo::Point& ue) const noexcept {
  const LinkTerms lt = link_terms(tx.pos, ue, c.freq_ghz);
  // Outdoor blockage is statistically inside the NLoS fit; explicit
  // penetration applies only when the UE itself is indoors (O2I).
  double pen = campus_->o2i_loss_db(ue, c.freq_ghz);
  // Coverage-hole fault windows add a flat offset here so every cell and
  // both bands see the same hole (same association as rsrp_dbm_all).
  if (fault_ != nullptr) pen += fault_->coverage_offset_db();
  // The shadowing field is sampled at the UE end; using one end keeps the
  // field consistent when comparing co-sited cells from the same spot.
  const double shadow = field_for(c).at(ue);
  // gain_toward(a, b) is gain_dbi(azimuth_deg(a, b)) by definition, so
  // applying the pattern to the memoized azimuth is the same value.
  return tx.antenna.gain_dbi(lt.az) - lt.pl - pen - shadow;
}

void RadioEnvironment::rsrp_dbm_all(const CarrierConfig& c,
                                    const std::vector<TxSite>& sites,
                                    const geo::Point& ue,
                                    std::vector<double>& out) const {
  rsrp_dbm_all(
      c, sites.begin(), sites.end(),
      [](const TxSite& s) -> const TxSite& { return s; }, ue, out);
}

void RadioEnvironment::rsrp_dbm_all_planned(const CarrierConfig& c,
                                            const SectorPlan& plan,
                                            const geo::Point& ue,
                                            double* out) const {
  double pen = campus_->o2i_loss_db(ue, c.freq_ghz);
  if (fault_ != nullptr) pen += fault_->coverage_offset_db();
  const double shadow = field_for(c).at(ue);
  LinkTerms lt{};
  std::size_t i = 0;
  for (const SectorPlan::Entry& e : plan.entries) {
    if (e.new_pos) lt = link_terms(e.pos, ue, c.freq_ghz);
    // Same association as rsrp_dbm_all(): tx power + (((gain - pl) - pen)
    // - shadow), so each value is bit-identical to the unplanned sweep.
    out[i++] = c.tx_re_power_dbm +
               (e.antenna.gain_dbi(lt.az) - lt.pl - pen - shadow);
  }
}

double RadioEnvironment::rsrp_dbm(const CarrierConfig& c, const TxSite& tx,
                                  const geo::Point& ue) const noexcept {
  return c.tx_re_power_dbm + path_gain_db(c, tx, ue);
}

double RadioEnvironment::sinr_db(const CarrierConfig& c, const TxSite& serving,
                                 const geo::Point& ue,
                                 const std::vector<TxSite>& interferers,
                                 double interferer_load) const noexcept {
  const double s = db_to_linear(rsrp_dbm(c, serving, ue));
  double denom = db_to_linear(c.noise_per_re_dbm());
  for (const TxSite& i : interferers) {
    denom += interferer_load * db_to_linear(rsrp_dbm(c, i, ue));
  }
  return linear_to_db(s / denom);
}

}  // namespace fiveg::radio

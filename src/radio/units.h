// dB <-> linear conversions shared across the radio and RAN layers. These
// used to be re-implemented inline at several call sites; every caller must
// use these exact expressions so memoized and recomputed link budgets stay
// bit-identical.
#pragma once

#include <cmath>

namespace fiveg::radio {

/// dB (or dBm) to linear power ratio (or mW).
[[nodiscard]] inline double db_to_linear(double db) noexcept {
  return std::pow(10.0, db / 10.0);
}

/// Linear power ratio (or mW) to dB (or dBm).
[[nodiscard]] inline double linear_to_db(double lin) noexcept {
  return 10.0 * std::log10(lin);
}

}  // namespace fiveg::radio

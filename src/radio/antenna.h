// Sectorised base-station antennas: the fan-shaped gain pattern whose
// limited field of view the paper identifies as one cause of coverage
// defects (its locations B and C fall outside any sector's FoV).
#pragma once

#include "geo/geometry.h"

namespace fiveg::radio {

/// Standard 3GPP parabolic sector pattern in azimuth.
class SectorAntenna {
 public:
  /// `azimuth_deg`: boresight direction; `beamwidth_deg`: 3 dB width
  /// (65 deg typical); `max_gain_dbi`; `front_back_db`: attenuation floor.
  SectorAntenna(double azimuth_deg, double beamwidth_deg = 65.0,
                double max_gain_dbi = 17.0, double front_back_db = 18.0);

  /// Gain toward absolute direction `toward_deg`, dBi.
  [[nodiscard]] double gain_dbi(double toward_deg) const noexcept;

  /// Gain from antenna at `from` toward point `to`, dBi.
  [[nodiscard]] double gain_toward(const geo::Point& from,
                                   const geo::Point& to) const noexcept;

  [[nodiscard]] double azimuth_deg() const noexcept { return azimuth_deg_; }
  [[nodiscard]] double beamwidth_deg() const noexcept { return beamwidth_deg_; }
  [[nodiscard]] double max_gain_dbi() const noexcept { return max_gain_dbi_; }

 private:
  double azimuth_deg_;
  double beamwidth_deg_;
  double max_gain_dbi_;
  double front_back_db_;
};

}  // namespace fiveg::radio

// Spatially correlated log-normal shadowing. The field is a deterministic
// function of (seed, position): lattice nodes get hashed Gaussian values and
// intermediate points interpolate bilinearly, giving an exponential-like
// correlation over the decorrelation distance without storing any state.
//
// `at()` runs once per (site, UE) link in every link budget, so each field
// keeps a small bounded memo keyed on the exact position bit pattern —
// coverage sweeps sample the same points once per KPI pass. The memo makes
// const queries NOT thread-safe on a shared instance (same contract as
// geo::CampusMap: one owner per thread).
#pragma once

#include <cstdint>
#include <vector>

#include "geo/geometry.h"

namespace fiveg::radio {

/// Test-only perturbation knob: every ShadowingField constructed while the
/// offset is non-zero gets `sigma_db + offset`. Drift-detector tests use it
/// to shift a radio-layer input without touching scenario code; production
/// paths never set it. Not thread-safe — set it before spawning workers (or
/// run --jobs 1) and restore it to 0 afterwards.
void set_shadowing_sigma_offset_db(double offset_db) noexcept;
[[nodiscard]] double shadowing_sigma_offset_db() noexcept;

/// Deterministic correlated shadowing field.
class ShadowingField {
 public:
  /// `sigma_db`: standard deviation of the field; `corr_dist_m`: lattice
  /// spacing (≈ decorrelation distance, 3GPP suggests ~50 m for UMa).
  ShadowingField(std::uint64_t seed, double sigma_db, double corr_dist_m);

  /// Shadowing in dB at a position (positive = extra loss).
  [[nodiscard]] double at(const geo::Point& p) const noexcept;

  [[nodiscard]] double sigma_db() const noexcept { return sigma_db_; }

 private:
  [[nodiscard]] double node_value(std::int64_t ix,
                                  std::int64_t iy) const noexcept;
  [[nodiscard]] double at_uncached(const geo::Point& p) const noexcept;

  std::uint64_t seed_;
  double sigma_db_;
  double corr_dist_m_;

  // 2-way set-associative LRU memo keyed on the exact coordinate bits; a
  // hit returns precisely what the lattice interpolation would recompute.
  struct Slot {
    std::uint64_t xb = 0, yb = 0;
    double val = 0.0;
    std::uint32_t used = 0;
  };
  mutable std::vector<Slot> memo_;
  mutable std::vector<std::uint8_t> lru_;  // one LRU way index per 2-slot set
};

}  // namespace fiveg::radio

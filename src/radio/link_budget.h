// Link budget: combines carrier, antenna, geometry, path loss, penetration
// and shadowing into the KPIs the paper measures — RSRP, SINR, RSRQ and
// achievable bit-rate — for any transmitter/UE position pair.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/campus.h"
#include "radio/antenna.h"
#include "radio/carrier.h"
#include "radio/shadowing.h"

namespace fiveg::radio {

/// One radiating sector: a position plus its antenna.
struct TxSite {
  geo::Point pos;
  SectorAntenna antenna;
};

/// Radio propagation environment over a campus. Holds per-band shadowing
/// fields (shadowing decorrelates across the 1.8 / 3.5 GHz bands).
class RadioEnvironment {
 public:
  /// `campus` must outlive the environment.
  RadioEnvironment(const geo::CampusMap* campus, std::uint64_t seed,
                   double sigma_db = 6.0, double corr_dist_m = 50.0);

  /// End-to-end channel gain in dB (negative): antenna gain minus path
  /// loss, wall penetration and shadowing.
  [[nodiscard]] double path_gain_db(const CarrierConfig& c, const TxSite& tx,
                                    const geo::Point& ue) const noexcept;

  /// Reference-signal received power at the UE, dBm.
  [[nodiscard]] double rsrp_dbm(const CarrierConfig& c, const TxSite& tx,
                                const geo::Point& ue) const noexcept;

  /// SINR with co-channel interference from `interferers` (all transmitting
  /// at `interferer_load` activity factor) plus thermal noise.
  [[nodiscard]] double sinr_db(const CarrierConfig& c, const TxSite& serving,
                               const geo::Point& ue,
                               const std::vector<TxSite>& interferers,
                               double interferer_load = 0.5) const noexcept;

  [[nodiscard]] const geo::CampusMap& campus() const noexcept {
    return *campus_;
  }

 private:
  [[nodiscard]] const ShadowingField& field_for(
      const CarrierConfig& c) const noexcept;

  const geo::CampusMap* campus_;
  ShadowingField shadow_lte_;
  ShadowingField shadow_nr_;
};

}  // namespace fiveg::radio

// Link budget: combines carrier, antenna, geometry, path loss, penetration
// and shadowing into the KPIs the paper measures — RSRP, SINR, RSRQ and
// achievable bit-rate — for any transmitter/UE position pair.
//
// The environment memoizes the site-geometry terms of each link (azimuth
// and path loss, keyed on the exact (site, UE, frequency) bit patterns) and
// offers a batched `rsrp_dbm_all` that computes the per-UE terms (O2I
// penetration, shadowing) once per call and shares the geometry terms
// between co-sited sectors. Both are exact: every memoized value is a pure
// function of its key, and sums are evaluated in the original expression
// order, so results are bit-identical to the one-site-at-a-time path. The
// memos make const queries NOT thread-safe on a shared instance (same
// contract as geo::CampusMap: one owner per thread).
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.h"
#include "geo/campus.h"
#include "radio/antenna.h"
#include "radio/carrier.h"
#include "radio/shadowing.h"

namespace fiveg::radio {

/// One radiating sector: a position plus its antenna.
struct TxSite {
  geo::Point pos;
  SectorAntenna antenna;
};

/// A precompiled sweep plan over a fixed sector list. Each entry carries
/// the sector's position and antenna plus whether it opens a new co-site
/// group (`new_pos`), decided with the same position-equality test
/// `rsrp_dbm_all` applies per call. Building the plan once per cohort
/// hoists those comparisons out of the per-UE loop; the planned sweep is
/// otherwise the identical computation, so results stay bit-identical.
struct SectorPlan {
  struct Entry {
    geo::Point pos;
    SectorAntenna antenna;
    bool new_pos = true;  // first entry of its co-site run in list order
  };
  std::vector<Entry> entries;

  [[nodiscard]] std::size_t size() const noexcept { return entries.size(); }

  /// Compiles the plan for [first, last): `proj` maps each element to a
  /// `const TxSite&`, exactly as in rsrp_dbm_all.
  template <class Iter, class Proj>
  [[nodiscard]] static SectorPlan build(Iter first, Iter last, Proj proj) {
    SectorPlan plan;
    const geo::Point* prev = nullptr;
    for (Iter it = first; it != last; ++it) {
      const TxSite& tx = proj(*it);
      Entry e{tx.pos, tx.antenna, prev == nullptr || !(tx.pos == *prev)};
      prev = &tx.pos;
      plan.entries.push_back(e);
    }
    return plan;
  }
};

/// Radio propagation environment over a campus. Holds per-band shadowing
/// fields (shadowing decorrelates across the 1.8 / 3.5 GHz bands).
class RadioEnvironment {
 public:
  /// `campus` must outlive the environment.
  RadioEnvironment(const geo::CampusMap* campus, std::uint64_t seed,
                   double sigma_db = 6.0, double corr_dist_m = 50.0);

  /// End-to-end channel gain in dB (negative): antenna gain minus path
  /// loss, wall penetration and shadowing.
  [[nodiscard]] double path_gain_db(const CarrierConfig& c, const TxSite& tx,
                                    const geo::Point& ue) const noexcept;

  /// Reference-signal received power at the UE, dBm.
  [[nodiscard]] double rsrp_dbm(const CarrierConfig& c, const TxSite& tx,
                                const geo::Point& ue) const noexcept;

  /// Batched RSRP toward every site in [first, last): `proj` maps each
  /// element to a `const TxSite&`. Appends one dBm value per site to `out`
  /// (cleared first), each bit-identical to the corresponding rsrp_dbm()
  /// call. Per-UE penetration and shadowing are evaluated once, and sites
  /// at one position (co-sited sectors) share one LoS + path-loss lookup.
  template <class Iter, class Proj>
  void rsrp_dbm_all(const CarrierConfig& c, Iter first, Iter last, Proj proj,
                    const geo::Point& ue, std::vector<double>& out) const {
    out.clear();
    double pen = campus_->o2i_loss_db(ue, c.freq_ghz);
    // Coverage-hole windows add a flat shadowing offset on top of the O2I
    // term; inert (and bit-identical) when no fault runtime is installed.
    if (fault_ != nullptr) pen += fault_->coverage_offset_db();
    const double shadow = field_for(c).at(ue);
    const geo::Point* prev = nullptr;
    LinkTerms lt{};
    for (Iter it = first; it != last; ++it) {
      const TxSite& tx = proj(*it);
      if (prev == nullptr || !(tx.pos == *prev)) {
        lt = link_terms(tx.pos, ue, c.freq_ghz);
        prev = &tx.pos;
      }
      // Same association as rsrp_dbm(): tx power + (((gain - pl) - pen) -
      // shadow), so each element is bit-identical to the scalar call.
      out.push_back(c.tx_re_power_dbm +
                    (tx.antenna.gain_dbi(lt.az) - lt.pl - pen - shadow));
    }
  }

  /// Batched RSRP over a plain site vector.
  void rsrp_dbm_all(const CarrierConfig& c, const std::vector<TxSite>& sites,
                    const geo::Point& ue, std::vector<double>& out) const;

  /// Batched RSRP along a precompiled SectorPlan: writes one dBm value per
  /// plan entry into `out` (capacity >= plan.size()), each bit-identical
  /// to the corresponding rsrp_dbm() / rsrp_dbm_all() value. Per-UE
  /// penetration and shadowing are hoisted exactly as in rsrp_dbm_all; the
  /// co-site sharing decision comes from the plan's `new_pos` flags.
  void rsrp_dbm_all_planned(const CarrierConfig& c, const SectorPlan& plan,
                            const geo::Point& ue, double* out) const;

  /// SINR with co-channel interference from `interferers` (all transmitting
  /// at `interferer_load` activity factor) plus thermal noise.
  [[nodiscard]] double sinr_db(const CarrierConfig& c, const TxSite& serving,
                               const geo::Point& ue,
                               const std::vector<TxSite>& interferers,
                               double interferer_load = 0.5) const noexcept;

  [[nodiscard]] const geo::CampusMap& campus() const noexcept {
    return *campus_;
  }

 private:
  [[nodiscard]] const ShadowingField& field_for(
      const CarrierConfig& c) const noexcept;

  // The site-geometry half of a link budget: azimuth toward the UE and the
  // LoS/NLoS path loss. Both depend only on (site position, UE, frequency);
  // the antenna pattern is applied per sector on top.
  struct LinkTerms {
    double az = 0.0;
    double pl = 0.0;
  };
  // Memoized lookup, keyed on the exact bit patterns of the five inputs;
  // 2-way set-associative with LRU replacement (see geo::CampusMap).
  [[nodiscard]] LinkTerms link_terms(const geo::Point& site,
                                     const geo::Point& ue,
                                     double freq_ghz) const noexcept;

  const geo::CampusMap* campus_;
  ShadowingField shadow_lte_;
  ShadowingField shadow_nr_;
  // Captured at construction; null when fault injection is off.
  fault::Runtime* fault_;

  struct LinkSlot {
    std::uint64_t px = 0, py = 0, ux = 0, uy = 0, fb = 0;
    LinkTerms terms;
    std::uint32_t used = 0;
  };
  mutable std::vector<LinkSlot> link_memo_;
  mutable std::vector<std::uint8_t> link_lru_;  // LRU way per 2-slot set
};

}  // namespace fiveg::radio

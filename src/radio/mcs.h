// Link adaptation: SINR -> CQI -> MCS -> spectral efficiency -> bit-rate.
// The tables follow the 3GPP 256-QAM CQI/MCS ladder; the paper's UEs report
// CQI/MCS through XCAL and typically ride MCS 27 (256-QAM, rate 0.925).
#pragma once

#include "radio/carrier.h"

namespace fiveg::radio {

/// One row of the MCS ladder.
struct McsEntry {
  int index;              // MCS index 0..27
  int modulation_bits;    // 2 = QPSK .. 8 = 256-QAM
  double code_rate;       // effective code rate
  double min_sinr_db;     // SINR needed to hold ~10% BLER at first HARQ tx

  /// Spectral efficiency per layer, bits/s/Hz.
  [[nodiscard]] double efficiency() const noexcept {
    return modulation_bits * code_rate;
  }
};

/// The full ladder, ascending by index.
[[nodiscard]] const McsEntry* mcs_table(int* size) noexcept;

/// Highest MCS whose SINR floor is met (the scheduler's pick). SINR below
/// the bottom entry returns MCS 0 — the link then relies on HARQ.
[[nodiscard]] McsEntry select_mcs(double sinr_db) noexcept;

/// CQI 1..15 report for a SINR (0 = out of range).
[[nodiscard]] int cqi_from_sinr(double sinr_db) noexcept;

/// Downlink MAC-level bit-rate for a UE at `sinr_db` holding `prb_fraction`
/// of the carrier's PRBs, in bits/s.
[[nodiscard]] double dl_bitrate_bps(const CarrierConfig& c, double sinr_db,
                                    double prb_fraction = 1.0) noexcept;

/// Uplink equivalent (single layer).
[[nodiscard]] double ul_bitrate_bps(const CarrierConfig& c, double sinr_db,
                                    double prb_fraction = 1.0) noexcept;

/// Reporting-layer RSRQ proxy: monotone map from SINR into the RSRQ range
/// the paper plots ([-25, -3] dB). Used only for hand-off comparisons, where
/// gaps in dB matter rather than absolute calibration.
[[nodiscard]] double rsrq_db_from_sinr(double sinr_db) noexcept;

/// Minimum RSRP to initiate service (Rel-15 TS 36.211 per the paper):
/// below -105 dBm the cell is a coverage hole.
inline constexpr double kServiceRsrpFloorDbm = -105.0;

}  // namespace fiveg::radio

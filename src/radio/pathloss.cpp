#include "radio/pathloss.h"

#include <algorithm>
#include <cmath>

namespace fiveg::radio {
namespace {

double clamp_d(double d_m) noexcept { return std::max(d_m, 1.0); }

}  // namespace

double fspl_db(double d_m, double freq_ghz) noexcept {
  const double d = clamp_d(d_m);
  return 32.45 + 20.0 * std::log10(d / 1000.0 * freq_ghz * 1000.0);
}

double uma_los_db(double d_m, double freq_ghz) noexcept {
  const double d = clamp_d(d_m);
  return 28.0 + 22.0 * std::log10(d) + 20.0 * std::log10(freq_ghz);
}

double uma_nlos_db(double d_m, double freq_ghz) noexcept {
  const double d = clamp_d(d_m);
  const double nlos =
      13.54 + 39.08 * std::log10(d) + 20.0 * std::log10(freq_ghz);
  return std::max(nlos, uma_los_db(d_m, freq_ghz));
}

double campus_pathloss_db(double d_m, double freq_ghz,
                          bool line_of_sight) noexcept {
  if (!line_of_sight) return uma_nlos_db(d_m, freq_ghz);
  // LoS street canyon with foliage/vehicle clutter: blend partially toward
  // NLoS with distance. The cap keeps the effective distance slope near
  // ~30 dB/decade, which reproduces the paper's Table 2 RSRP dispersion
  // (sigma ~9-12 dB over the campus).
  const double d = clamp_d(d_m);
  const double blend = std::clamp((d - 50.0) / 300.0, 0.0, 0.45);
  return (1.0 - blend) * uma_los_db(d, freq_ghz) +
         blend * uma_nlos_db(d, freq_ghz);
}

}  // namespace fiveg::radio

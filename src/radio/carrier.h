// Carrier configurations for the two measured networks: 4G LTE at 1.8 GHz
// (FDD, 20 MHz, band b3) and 5G NR at 3.5 GHz (TDD 3:1, 100 MHz, band n78),
// matching the paper's Table 1 and its ISP's Rel-15 TS 38.306 settings.
#pragma once

namespace fiveg::radio {

/// Radio access technology generation.
enum class Rat { kLte, kNr };

/// Duplexing scheme.
enum class Duplex { kFdd, kTdd };

/// Static physical-layer parameters of one carrier.
struct CarrierConfig {
  Rat rat = Rat::kNr;
  double freq_ghz = 3.5;       // carrier frequency
  double bandwidth_mhz = 100;  // channel bandwidth
  Duplex duplex = Duplex::kTdd;
  double dl_fraction = 0.75;   // DL share of airtime (1.0 per direction in FDD)
  int n_prb = 264;             // usable PRBs (paper observes 260-264 for NR)
  int mimo_layers = 4;
  double subcarrier_khz = 30;  // SCS: 15 kHz LTE, 30 kHz NR
  // Effective MAC-available fraction of raw PHY bits (control channels,
  // DMRS, guard periods, coding floor). Calibrated so the peak DL bit-rate
  // matches the paper: 1200.98 Mbps for NR, ~200 Mbps for LTE.
  double overhead = 0.54;
  // Transmit power per resource element at the antenna port, dBm. This is
  // a calibration constant chosen so the outdoor coverage radius matches
  // the paper (~230 m for 5G, ~520 m for 4G in dense urban clutter).
  double tx_re_power_dbm = -5.3;
  double noise_figure_db = 7.0;

  /// Peak downlink PHY bit-rate with all PRBs and the top MCS, bits/s.
  [[nodiscard]] double peak_dl_bitrate_bps() const noexcept;

  /// Peak uplink PHY bit-rate, bits/s.
  [[nodiscard]] double peak_ul_bitrate_bps() const noexcept;

  /// Thermal noise + noise figure per resource element, dBm.
  [[nodiscard]] double noise_per_re_dbm() const noexcept;
};

/// The paper's LTE carrier: 1840-1860 MHz, FDD, 20 MHz, 2x2 MIMO.
[[nodiscard]] CarrierConfig lte1800();

/// The paper's NR carrier: 3500-3600 MHz, TDD 3:1, 100 MHz, 4x4 MIMO.
[[nodiscard]] CarrierConfig nr3500();

}  // namespace fiveg::radio

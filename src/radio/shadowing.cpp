#include "radio/shadowing.h"

#include <bit>
#include <cmath>

namespace fiveg::radio {
namespace {

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Uniform (0,1) from a hash, avoiding exact 0 for the log below.
double to_unit(std::uint64_t h) noexcept {
  return (static_cast<double>(h >> 11) + 1.0) / 9007199254740994.0;
}

double g_sigma_offset_db = 0.0;

}  // namespace

void set_shadowing_sigma_offset_db(double offset_db) noexcept {
  g_sigma_offset_db = offset_db;
}

double shadowing_sigma_offset_db() noexcept { return g_sigma_offset_db; }

ShadowingField::ShadowingField(std::uint64_t seed, double sigma_db,
                               double corr_dist_m)
    : seed_(seed),
      sigma_db_(sigma_db + g_sigma_offset_db),
      corr_dist_m_(corr_dist_m) {
  // One coverage-grid KPI pass is ~2.3k distinct points; at 8192 sets the
  // expected 2-way set load stays low enough that repeat passes mostly hit.
  memo_.assign(16384, Slot{});
  lru_.assign(memo_.size() / 2, 0);
}

double ShadowingField::node_value(std::int64_t ix,
                                  std::int64_t iy) const noexcept {
  // Box-Muller on two decorrelated hashes of the node coordinates.
  const std::uint64_t a = static_cast<std::uint64_t>(ix) * 0x9e3779b97f4a7c15ull;
  const std::uint64_t b = static_cast<std::uint64_t>(iy) * 0xc2b2ae3d27d4eb4full;
  const double u1 = to_unit(mix64(seed_ ^ a ^ (b << 1)));
  const double u2 = to_unit(mix64(seed_ ^ b ^ (a << 1) ^ 0x1234567890abcdefull));
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double ShadowingField::at(const geo::Point& p) const noexcept {
  const auto xb = std::bit_cast<std::uint64_t>(p.x);
  const auto yb = std::bit_cast<std::uint64_t>(p.y);
  const std::uint64_t h = mix64(xb ^ mix64(yb));
  const auto base = static_cast<std::size_t>(h) & (memo_.size() - 2);
  for (std::size_t w = 0; w < 2; ++w) {
    const Slot& s = memo_[base + w];
    if (s.used != 0 && s.xb == xb && s.yb == yb) {
      lru_[base >> 1] = static_cast<std::uint8_t>(1 - w);
      return s.val;
    }
  }
  const double v = at_uncached(p);
  const std::size_t w = lru_[base >> 1];
  memo_[base + w] = Slot{xb, yb, v, 1};
  lru_[base >> 1] = static_cast<std::uint8_t>(1 - w);
  return v;
}

double ShadowingField::at_uncached(const geo::Point& p) const noexcept {
  const double gx = p.x / corr_dist_m_;
  const double gy = p.y / corr_dist_m_;
  const auto ix = static_cast<std::int64_t>(std::floor(gx));
  const auto iy = static_cast<std::int64_t>(std::floor(gy));
  const double fx = gx - static_cast<double>(ix);
  const double fy = gy - static_cast<double>(iy);

  const double v00 = node_value(ix, iy);
  const double v10 = node_value(ix + 1, iy);
  const double v01 = node_value(ix, iy + 1);
  const double v11 = node_value(ix + 1, iy + 1);

  const double w00 = (1 - fx) * (1 - fy);
  const double w10 = fx * (1 - fy);
  const double w01 = (1 - fx) * fy;
  const double w11 = fx * fy;
  const double v = v00 * w00 + v10 * w10 + v01 * w01 + v11 * w11;
  // Bilinear blending shrinks the variance mid-cell (to 1/4 at the centre);
  // renormalise by the weight vector's L2 norm so sigma holds everywhere.
  const double norm =
      std::sqrt(w00 * w00 + w10 * w10 + w01 * w01 + w11 * w11);
  return sigma_db_ * v / norm;
}

}  // namespace fiveg::radio

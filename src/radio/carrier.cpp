#include "radio/carrier.h"

#include <cmath>

namespace fiveg::radio {
namespace {

// Spectral efficiency of the top MCS per spatial layer: 256-QAM (8 bits)
// at code rate 0.925 — the paper observes MCS index 27 with exactly this
// code rate.
constexpr double kPeakEffPerLayer = 8.0 * 0.925;

// Uplink transmissions use a single layer on both networks under test.
constexpr int kUlLayers = 1;

}  // namespace

double CarrierConfig::peak_dl_bitrate_bps() const noexcept {
  return kPeakEffPerLayer * mimo_layers * bandwidth_mhz * 1e6 * overhead *
         dl_fraction;
}

double CarrierConfig::peak_ul_bitrate_bps() const noexcept {
  const double ul_fraction = duplex == Duplex::kFdd ? 1.0 : 1.0 - dl_fraction;
  // UL control overhead is lighter than DL (no PDCCH region), hence the
  // small calibration bump; yields ~130 Mbps NR / ~100 Mbps LTE peaks as
  // the paper reports.
  const double ul_overhead = rat == Rat::kNr ? overhead * 1.30 : overhead;
  return kPeakEffPerLayer * kUlLayers * bandwidth_mhz * 1e6 * ul_overhead *
         ul_fraction;
}

double CarrierConfig::noise_per_re_dbm() const noexcept {
  return -174.0 + 10.0 * std::log10(subcarrier_khz * 1e3) + noise_figure_db;
}

CarrierConfig lte1800() {
  CarrierConfig c;
  c.rat = Rat::kLte;
  c.freq_ghz = 1.85;
  c.bandwidth_mhz = 20.0;
  c.duplex = Duplex::kFdd;
  c.dl_fraction = 1.0;
  c.n_prb = 100;
  c.mimo_layers = 2;
  c.subcarrier_khz = 15.0;
  c.overhead = 0.68;          // -> 201 Mbps peak DL, the paper's night-time UDP cap
  c.tx_re_power_dbm = -2.0;   // calibrated to Table 2: ~1.8% coverage holes
  return c;
}

CarrierConfig nr3500() {
  CarrierConfig c;
  c.rat = Rat::kNr;
  c.freq_ghz = 3.5;
  c.bandwidth_mhz = 100.0;
  c.duplex = Duplex::kTdd;
  c.dl_fraction = 0.75;       // ISP's 3:1 DL:UL slot ratio
  c.n_prb = 264;
  c.mimo_layers = 4;
  c.subcarrier_khz = 30.0;
  c.overhead = 0.54;          // -> 1198.8 Mbps peak DL vs paper's 1200.98
  c.tx_re_power_dbm = 0.0;    // calibrated to Table 2: ~8% coverage holes, mean ~ -86
  return c;
}

}  // namespace fiveg::radio

#include "radio/antenna.h"

#include <algorithm>

namespace fiveg::radio {

SectorAntenna::SectorAntenna(double azimuth_deg, double beamwidth_deg,
                             double max_gain_dbi, double front_back_db)
    : azimuth_deg_(azimuth_deg),
      beamwidth_deg_(beamwidth_deg),
      max_gain_dbi_(max_gain_dbi),
      front_back_db_(front_back_db) {}

double SectorAntenna::gain_dbi(double toward_deg) const noexcept {
  // 3GPP TR 36.814 horizontal pattern: A(theta) = -min(12 (theta/bw)^2, Am).
  const double theta = geo::angle_diff_deg(toward_deg, azimuth_deg_);
  const double rel = theta / beamwidth_deg_;
  const double attenuation = std::min(12.0 * rel * rel, front_back_db_);
  return max_gain_dbi_ - attenuation;
}

double SectorAntenna::gain_toward(const geo::Point& from,
                                  const geo::Point& to) const noexcept {
  return gain_dbi(geo::azimuth_deg(from, to));
}

}  // namespace fiveg::radio

#include "radio/mcs.h"

#include <algorithm>
#include <cmath>
#include <iterator>

namespace fiveg::radio {
namespace {

// 28-entry 256-QAM ladder. SINR floors follow the usual ~1.1 dB/step pace
// of the 3GPP ladder, anchored at QPSK 1/8 ~ -6 dB and 256-QAM 0.925 ~ 24 dB.
constexpr McsEntry kTable[] = {
    {0, 2, 0.12, -6.0},  {1, 2, 0.16, -5.0},  {2, 2, 0.19, -4.0},
    {3, 2, 0.25, -3.0},  {4, 2, 0.31, -2.0},  {5, 2, 0.37, -1.0},
    {6, 2, 0.44, 0.0},   {7, 2, 0.51, 1.0},   {8, 2, 0.59, 2.0},
    {9, 2, 0.66, 3.0},   {10, 4, 0.34, 4.0},  {11, 4, 0.37, 5.0},
    {12, 4, 0.42, 6.0},  {13, 4, 0.48, 7.0},  {14, 4, 0.54, 8.0},
    {15, 4, 0.60, 9.0},  {16, 4, 0.64, 10.0}, {17, 6, 0.43, 11.0},
    {18, 6, 0.46, 12.0}, {19, 6, 0.50, 13.0}, {20, 6, 0.55, 14.0},
    {21, 6, 0.60, 15.0}, {22, 6, 0.65, 16.0}, {23, 6, 0.70, 17.0},
    {24, 6, 0.75, 18.5}, {25, 8, 0.60, 20.0}, {26, 8, 0.75, 22.0},
    {27, 8, 0.925, 24.0},
};
constexpr int kTableSize = static_cast<int>(std::size(kTable));

}  // namespace

const McsEntry* mcs_table(int* size) noexcept {
  if (size != nullptr) *size = kTableSize;
  return kTable;
}

McsEntry select_mcs(double sinr_db) noexcept {
  McsEntry best = kTable[0];
  for (const McsEntry& e : kTable) {
    if (sinr_db >= e.min_sinr_db) best = e;
  }
  return best;
}

int cqi_from_sinr(double sinr_db) noexcept {
  // 15 CQI levels spanning [-6, 22] dB, ~2 dB per level.
  if (sinr_db < -6.0) return 0;
  const int cqi = 1 + static_cast<int>((sinr_db + 6.0) / 2.0);
  return std::min(cqi, 15);
}

namespace {

double bitrate_bps(const CarrierConfig& c, double sinr_db, int layers,
                   double airtime_fraction, double overhead,
                   double prb_fraction) noexcept {
  if (sinr_db < kTable[0].min_sinr_db) return 0.0;
  prb_fraction = std::clamp(prb_fraction, 0.0, 1.0);
  const McsEntry mcs = select_mcs(sinr_db);
  return mcs.efficiency() * layers * c.bandwidth_mhz * 1e6 * overhead *
         airtime_fraction * prb_fraction;
}

}  // namespace

double dl_bitrate_bps(const CarrierConfig& c, double sinr_db,
                      double prb_fraction) noexcept {
  // High-order MIMO needs SINR headroom: rank collapses as SINR drops.
  int layers = c.mimo_layers;
  if (sinr_db < 20.0) layers = std::min(layers, 2);
  if (sinr_db < 10.0) layers = 1;
  return bitrate_bps(c, sinr_db, layers, c.dl_fraction, c.overhead,
                     prb_fraction);
}

double ul_bitrate_bps(const CarrierConfig& c, double sinr_db,
                      double prb_fraction) noexcept {
  const double ul_fraction =
      c.duplex == Duplex::kFdd ? 1.0 : 1.0 - c.dl_fraction;
  const double ul_overhead = c.rat == Rat::kNr ? c.overhead * 1.30 : c.overhead;
  return bitrate_bps(c, sinr_db, 1, ul_fraction, ul_overhead, prb_fraction);
}

double rsrq_db_from_sinr(double sinr_db) noexcept {
  // Linear map SINR [-10, 30] -> RSRQ [-25, -3]; clamped, monotone.
  const double t = std::clamp((sinr_db + 10.0) / 40.0, 0.0, 1.0);
  return -25.0 + t * 22.0;
}

}  // namespace fiveg::radio

// Path-loss models: free space and the 3GPP TR 38.901 urban-macro (UMa)
// LoS/NLoS fits used for both carriers (the paper's campus is a classic
// dense-urban macro deployment).
#pragma once

namespace fiveg::radio {

/// Free-space path loss, dB. `d_m` clamped to >= 1 m.
[[nodiscard]] double fspl_db(double d_m, double freq_ghz) noexcept;

/// 3GPP UMa line-of-sight path loss (below the breakpoint distance), dB.
[[nodiscard]] double uma_los_db(double d_m, double freq_ghz) noexcept;

/// 3GPP UMa non-line-of-sight path loss, dB (lower-bounded by LoS).
[[nodiscard]] double uma_nlos_db(double d_m, double freq_ghz) noexcept;

/// Path loss for a link on the campus: UMa LoS or NLoS picked by geometry.
/// Street-level clutter in the paper's environment adds a small
/// distance-dependent excess even on nominally LoS streets.
[[nodiscard]] double campus_pathloss_db(double d_m, double freq_ghz,
                                        bool line_of_sight) noexcept;

}  // namespace fiveg::radio

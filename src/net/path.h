// A duplex end-to-end path: a chain of hops (each a forward + reverse Link
// pair) between endpoint A (the UE side) and endpoint B (the server side),
// with TTL-expiry reflection so traceroute probes measure genuine per-hop
// round trips through the same queues that carry data.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/link.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace fiveg::net {

/// An A <-> B chain of hops.
class PathNetwork {
 public:
  /// One Config per hop; each is instantiated twice (forward + reverse).
  PathNetwork(sim::Simulator* simulator, std::vector<Link::Config> hops);

  ~PathNetwork();  // out-of-line: Relay is incomplete here

  PathNetwork(const PathNetwork&) = delete;
  PathNetwork& operator=(const PathNetwork&) = delete;

  /// Sinks for ordinary (non-probe) traffic reaching each endpoint.
  void attach_a(PacketSink* sink) noexcept { a_sink_ = sink; }
  void attach_b(PacketSink* sink) noexcept { b_sink_ = sink; }

  /// Injects a packet at an endpoint.
  void send_a_to_b(Packet p);
  void send_b_to_a(Packet p);

  /// Sends a traceroute-style probe that bounces at hop `hop` (1-based;
  /// hop == hop_count() reaches B itself) and reports the measured RTT.
  void probe(std::size_t hop, std::function<void(sim::Time rtt)> done);

  [[nodiscard]] std::size_t hop_count() const noexcept {
    return forward_.size();
  }
  [[nodiscard]] Link& forward_link(std::size_t i) { return *forward_.at(i); }
  [[nodiscard]] Link& reverse_link(std::size_t i) { return *reverse_.at(i); }

  /// Total packets tail-dropped anywhere on the path (both directions).
  [[nodiscard]] std::uint64_t total_drops() const noexcept;

 private:
  class Relay;

  void arrive_forward(std::size_t node, Packet p);
  void arrive_reverse(std::size_t node, Packet p);

  sim::Simulator* sim_;
  std::vector<std::unique_ptr<Link>> forward_;
  std::vector<std::unique_ptr<Link>> reverse_;
  std::vector<std::unique_ptr<Relay>> relays_;
  PacketSink* a_sink_ = nullptr;
  PacketSink* b_sink_ = nullptr;

  std::uint64_t next_probe_seq_ = 1;
  std::map<std::uint64_t, std::function<void(sim::Time)>> pending_probes_;
};

}  // namespace fiveg::net

#include "net/traceroute.h"

#include <memory>
#include <utility>

namespace fiveg::net {
namespace {

constexpr sim::Time kProbeTimeout = sim::kSecond;

}  // namespace

Traceroute::Traceroute(sim::Simulator* simulator, PathNetwork* path, int reps,
                       sim::Time gap)
    : sim_(simulator), path_(path), reps_(reps), gap_(gap) {
  results_.resize(path_->hop_count());
  for (std::size_t h = 0; h < results_.size(); ++h) results_[h].hop = h + 1;
}

void Traceroute::run(Done done) {
  done_ = std::move(done);
  send_round(0);
}

void Traceroute::send_round(int round) {
  if (round >= reps_) {
    all_sent_ = true;
    finish_if_done();
    return;
  }
  for (std::size_t h = 1; h <= path_->hop_count(); ++h) {
    ++outstanding_;
    // Shared flag: first of {reply, timeout} wins.
    auto answered = std::make_shared<bool>(false);
    const std::size_t idx = h - 1;
    path_->probe(h, [this, idx, answered](sim::Time rtt) {
      if (*answered) return;
      *answered = true;
      results_[idx].rtt_ms.add(sim::to_millis(rtt));
      --outstanding_;
      finish_if_done();
    });
    sim_->schedule_in(kProbeTimeout, [this, idx, answered] {
      if (*answered) return;
      *answered = true;
      ++results_[idx].lost;
      --outstanding_;
      finish_if_done();
    });
  }
  sim_->schedule_in(gap_, [this, round] { send_round(round + 1); });
}

void Traceroute::finish_if_done() {
  if (all_sent_ && outstanding_ == 0 && done_) {
    auto done = std::move(done_);
    done_ = nullptr;
    done(results_);
  }
}

double estimate_buffer_packets(const measure::RunningStats& rtt_ms,
                               double capacity_bps,
                               int packet_bytes) noexcept {
  if (rtt_ms.count() < 2) return 0.0;
  const double spread_s = (rtt_ms.max() - rtt_ms.min()) / 1000.0;
  return spread_s * capacity_bps / (8.0 * packet_bytes);
}

}  // namespace fiveg::net

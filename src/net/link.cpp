#include "net/link.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/obs.h"

namespace fiveg::net {
namespace {

// While blocked (hand-off outage) or rate-starved, poll again this often.
constexpr sim::Time kBlockedRetry = sim::from_millis(1);

}  // namespace

Link::Link(sim::Simulator* simulator, Config config, PacketSink* sink)
    : sim_(simulator),
      config_(std::move(config)),
      sink_(sink),
      qdisc_(make_qdisc(config_.qdisc, config_.queue_bytes, config_.name)) {
  tracer_ = obs::tracer();
  fault_ = fault::runtime();
  if (fault_ != nullptr) {
    // One private drop stream per link name: injected loss draws never
    // interleave with (or shift) any model stream, and the per-name fork
    // keeps the draw sequence independent of link construction order.
    fault_rng_ = std::make_unique<sim::Rng>(
        sim::Rng(fault_->seed()).fork("fault.link." + config_.name));
  }
  if (auto* m = obs::metrics()) {
    // The link name is a proper dimension, not a name suffix: canonical
    // `net.queue.drops{link=ran-nr}` groups all links under one KPI family.
    drops_ctr_ = &m->counter("net.queue.drops", {{"link", config_.name}});
    if (fault_ != nullptr) {
      fault_drops_ctr_ =
          &m->counter("fault.link_drops", {{"link", config_.name}});
    }
    queue_hwm_ = &m->gauge("net.queue.hwm_bytes", {{"link", config_.name}});
    sojourn_ms_ =
        &m->histogram("net.queue.sojourn_ms", {{"link", config_.name}});
    sojourn_d_ = &m->digest("net.queue.sojourn_ms", {{"link", config_.name}});
    if (config_.qdisc.kind != QdiscKind::kDropTail) {
      // AQM runs additionally break drops/marks out per discipline, so a
      // sweep over qdiscs lands each variant on its own labelled series.
      const std::string qd(qdisc_->kind_name());
      qdisc_drops_ctr_ = &m->counter(
          "net.qdisc.drops", {{"link", config_.name}, {"qdisc", qd}});
      qdisc_marks_ctr_ = &m->counter(
          "net.qdisc.marks", {{"link", config_.name}, {"qdisc", qd}});
    }
  }
}

void Link::sync_qdisc_stats() {
  const std::uint64_t drops = qdisc_->drops();
  if (drops != drops_synced_) {
    const std::uint64_t n = drops - drops_synced_;
    drops_synced_ = drops;
    if (drops_ctr_ != nullptr) drops_ctr_->add(n);
    if (qdisc_drops_ctr_ != nullptr) qdisc_drops_ctr_->add(n);
    if (tracer_ != nullptr) {
      tracer_->instant(sim_->now(), "net.queue_drop", "net",
                       {{"link", config_.name}, {"count", std::to_string(n)}});
    }
  }
  const std::uint64_t marks = qdisc_->marks();
  if (marks != marks_synced_) {
    const std::uint64_t n = marks - marks_synced_;
    marks_synced_ = marks;
    if (qdisc_marks_ctr_ != nullptr) qdisc_marks_ctr_->add(n);
    if (tracer_ != nullptr) {
      tracer_->instant(sim_->now(), "net.queue_mark", "net",
                       {{"link", config_.name}, {"count", std::to_string(n)}});
    }
  }
}

double Link::current_rate_bps() const {
  return config_.rate_fn ? config_.rate_fn() : config_.rate_bps;
}

void Link::send(Packet p) {
  // Domain-tagged links refuse traffic injected from a foreign partition
  // (see Config::domain): such a packet would mutate this lane's queue
  // state concurrently with its own window.
  if (config_.domain != sim::kNoLane &&
      sim::current_lane() != config_.domain) {
    std::string msg = "net: link '";
    msg += config_.name;
    msg += "' pinned to lane ";
    msg += std::to_string(config_.domain);
    msg += " offered a packet on lane ";
    msg += std::to_string(sim::current_lane());
    throw std::logic_error(msg);
  }
  ++offered_packets_;
  if (fault_ != nullptr) {
    const double loss = fault_->link_loss(config_.name);
    if (loss > 0.0 && fault_rng_->bernoulli(loss)) {
      ++fault_dropped_packets_;
      if (fault_drops_ctr_ != nullptr) fault_drops_ctr_->add();
      return;
    }
  }
  const bool accepted = qdisc_->push(std::move(p), sim_->now());
  sync_qdisc_stats();
  if (!accepted) return;  // dropped on entry
  if (queue_hwm_ != nullptr) {
    queue_hwm_->update_max(static_cast<double>(queue_bytes()));
  }
  if (!transmitting_) try_transmit();
}

void Link::try_transmit() {
  if (qdisc_->empty()) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  if (config_.blocked_fn && config_.blocked_fn()) {
    // Outage: head-of-line blocks; queue keeps absorbing arrivals.
    sim_->schedule_in(kBlockedRetry, "net.link_blocked_poll",
                      [this] { try_transmit(); });
    return;
  }
  const double rate = current_rate_bps();
  if (rate <= 0.0) {
    sim_->schedule_in(kBlockedRetry, "net.link_blocked_poll",
                      [this] { try_transmit(); });
    return;
  }
  // An AQM may shed (or CE-mark) part of its backlog while dequeuing.
  std::optional<Packet> popped = qdisc_->pop(sim_->now());
  sync_qdisc_stats();
  if (!popped) {
    transmitting_ = false;
    return;
  }
  Packet p = std::move(*popped);
  if (sojourn_ms_ != nullptr) {
    const double sojourn = sim::to_millis(qdisc_->last_sojourn());
    sojourn_ms_->observe(sojourn);
    if (sojourn_d_ != nullptr) sojourn_d_->observe(sojourn);
  }
  ++in_transit_packets_;
  const double bits = 8.0 * static_cast<double>(p.size_bytes);
  const auto tx_time = static_cast<sim::Time>(
      bits / rate * static_cast<double>(sim::kSecond));
  sim_->schedule_in(tx_time, "net.link_tx",
                    [this, p = std::move(p)]() mutable {
    finish_transmit(std::move(p));
  });
}

void Link::finish_transmit(Packet p) {
  sim::Time delay = config_.prop_delay;
  if (config_.extra_delay_fn) delay += config_.extra_delay_fn(p);
  if (fault_ != nullptr) delay += fault_->link_extra_delay(config_.name);
  --in_transit_packets_;
  ++delivered_packets_;
  delivered_bytes_ += p.size_bytes;
  if (sink_ != nullptr) {
    // In-order delivery: per-packet jitter (HARQ retransmissions) delays
    // followers too, exactly like an RLC reordering buffer would.
    const sim::Time at = std::max(sim_->now() + delay, last_delivery_at_);
    last_delivery_at_ = at;
    sim_->schedule_at(at, "net.link_deliver",
                      [this, p = std::move(p)]() mutable {
      if (sink_ != nullptr) sink_->deliver(std::move(p));
    });
  }
  try_transmit();
}

}  // namespace fiveg::net

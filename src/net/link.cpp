#include "net/link.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/obs.h"

namespace fiveg::net {
namespace {

// While blocked (hand-off outage) or rate-starved, poll again this often.
constexpr sim::Time kBlockedRetry = sim::from_millis(1);

}  // namespace

Link::Link(sim::Simulator* simulator, Config config, PacketSink* sink)
    : sim_(simulator),
      config_(std::move(config)),
      sink_(sink),
      queue_(config_.queue_bytes) {
  if (config_.use_codel) {
    CoDelQueue::Config ccfg;
    ccfg.target = config_.codel_target;
    ccfg.interval = config_.codel_interval;
    ccfg.capacity_bytes = config_.queue_bytes;
    codel_ = std::make_unique<CoDelQueue>(ccfg);
  }
  tracer_ = obs::tracer();
  fault_ = fault::runtime();
  if (fault_ != nullptr) {
    // One private drop stream per link name: injected loss draws never
    // interleave with (or shift) any model stream, and the per-name fork
    // keeps the draw sequence independent of link construction order.
    fault_rng_ = std::make_unique<sim::Rng>(
        sim::Rng(fault_->seed()).fork("fault.link." + config_.name));
  }
  if (auto* m = obs::metrics()) {
    // The link name is a proper dimension, not a name suffix: canonical
    // `net.queue.drops{link=ran-nr}` groups all links under one KPI family.
    drops_ctr_ = &m->counter("net.queue.drops", {{"link", config_.name}});
    if (fault_ != nullptr) {
      fault_drops_ctr_ =
          &m->counter("fault.link_drops", {{"link", config_.name}});
    }
    queue_hwm_ = &m->gauge("net.queue.hwm_bytes", {{"link", config_.name}});
    if (!codel_) {
      sojourn_ms_ =
          &m->histogram("net.queue.sojourn_ms", {{"link", config_.name}});
      sojourn_d_ = &m->digest("net.queue.sojourn_ms", {{"link", config_.name}});
    }
  }
}

void Link::record_drop(std::uint64_t n) {
  if (n == 0) return;
  if (drops_ctr_ != nullptr) drops_ctr_->add(n);
  if (tracer_ != nullptr) {
    tracer_->instant(sim_->now(), "net.queue_drop", "net",
                     {{"link", config_.name}, {"count", std::to_string(n)}});
  }
}

double Link::current_rate_bps() const {
  return config_.rate_fn ? config_.rate_fn() : config_.rate_bps;
}

void Link::send(Packet p) {
  ++offered_packets_;
  if (fault_ != nullptr) {
    const double loss = fault_->link_loss(config_.name);
    if (loss > 0.0 && fault_rng_->bernoulli(loss)) {
      ++fault_dropped_packets_;
      if (fault_drops_ctr_ != nullptr) fault_drops_ctr_->add();
      return;
    }
  }
  const bool accepted = codel_ ? codel_->push(std::move(p), sim_->now())
                               : queue_.push(std::move(p));
  if (!accepted) {  // dropped on entry
    record_drop(1);
    return;
  }
  if (queue_hwm_ != nullptr) {
    queue_hwm_->update_max(static_cast<double>(queue_bytes()));
  }
  if (sojourn_ms_ != nullptr && !codel_) enqueue_at_.push_back(sim_->now());
  if (!transmitting_) try_transmit();
}

void Link::try_transmit() {
  const bool empty = codel_ ? codel_->empty() : queue_.empty();
  if (empty) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  if (config_.blocked_fn && config_.blocked_fn()) {
    // Outage: head-of-line blocks; queue keeps absorbing arrivals.
    sim_->schedule_in(kBlockedRetry, "net.link_blocked_poll",
                      [this] { try_transmit(); });
    return;
  }
  const double rate = current_rate_bps();
  if (rate <= 0.0) {
    sim_->schedule_in(kBlockedRetry, "net.link_blocked_poll",
                      [this] { try_transmit(); });
    return;
  }
  Packet p;
  if (codel_) {
    // CoDel may shed its whole backlog while dequeuing.
    const std::uint64_t drops_before = codel_->drops();
    auto popped = codel_->pop(sim_->now());
    record_drop(codel_->drops() - drops_before);
    if (!popped) {
      transmitting_ = false;
      return;
    }
    p = std::move(*popped);
  } else {
    p = queue_.pop();
    if (sojourn_ms_ != nullptr && !enqueue_at_.empty()) {
      const double sojourn = sim::to_millis(sim_->now() - enqueue_at_.front());
      sojourn_ms_->observe(sojourn);
      if (sojourn_d_ != nullptr) sojourn_d_->observe(sojourn);
      enqueue_at_.pop_front();
    }
  }
  ++in_transit_packets_;
  const double bits = 8.0 * static_cast<double>(p.size_bytes);
  const auto tx_time = static_cast<sim::Time>(
      bits / rate * static_cast<double>(sim::kSecond));
  sim_->schedule_in(tx_time, "net.link_tx",
                    [this, p = std::move(p)]() mutable {
    finish_transmit(std::move(p));
  });
}

void Link::finish_transmit(Packet p) {
  sim::Time delay = config_.prop_delay;
  if (config_.extra_delay_fn) delay += config_.extra_delay_fn(p);
  if (fault_ != nullptr) delay += fault_->link_extra_delay(config_.name);
  --in_transit_packets_;
  ++delivered_packets_;
  delivered_bytes_ += p.size_bytes;
  if (sink_ != nullptr) {
    // In-order delivery: per-packet jitter (HARQ retransmissions) delays
    // followers too, exactly like an RLC reordering buffer would.
    const sim::Time at = std::max(sim_->now() + delay, last_delivery_at_);
    last_delivery_at_ = at;
    sim_->schedule_at(at, "net.link_deliver",
                      [this, p = std::move(p)]() mutable {
      if (sink_ != nullptr) sink_->deliver(std::move(p));
    });
  }
  try_transmit();
}

}  // namespace fiveg::net

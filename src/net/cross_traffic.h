// Bursty background traffic sharing a wireline bottleneck. The paper traces
// the 5G TCP anomaly to legacy core routers whose buffers overflow
// intermittently under 5G-scale load; the overflow happens when ambient
// Internet bursts ride on top of the probe flow. This source produces
// exponentially spaced ON bursts with heavy-tailed-ish burst rates.
#pragma once

#include <cstdint>

#include "net/link.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace fiveg::net {

/// ON/OFF burst source feeding a shared link.
class CrossTraffic {
 public:
  struct Config {
    std::uint32_t flow_id = 9999;
    double mean_off_s = 0.35;      // mean gap between bursts
    double mean_on_s = 0.025;      // mean burst duration
    double min_rate_bps = 200e6;   // burst rate drawn uniformly
    double max_rate_bps = 1200e6;
    std::uint32_t packet_bytes = 1500;
  };

  /// Emits into `link` (sharing its drop-tail queue with foreground flows).
  CrossTraffic(sim::Simulator* simulator, Link* link, Config config,
               sim::Rng rng);

  /// Starts the ON/OFF process; runs until `until`.
  void start(sim::Time until);

  [[nodiscard]] std::uint64_t packets_sent() const noexcept { return sent_; }
  /// Long-run average offered load in bits/s.
  [[nodiscard]] double mean_offered_bps() const noexcept;

 private:
  void begin_off();
  void begin_on();
  void emit(double rate_bps, sim::Time burst_end);

  sim::Simulator* sim_;
  Link* link_;
  Config config_;
  sim::Rng rng_;
  sim::Time until_ = 0;
  std::uint64_t sent_ = 0;
};

}  // namespace fiveg::net

#include "net/epc.h"

#include <string>

namespace fiveg::net {
namespace {

// Fibre propagation, one way: ~5 us/km in glass with a 2x route factor
// (real Chinese backbone routes are far from great circles).
constexpr double kFiberUsPerKm = 5.0 * 2.0;

}  // namespace

sim::Time epc_delay(radio::Rat rat) noexcept {
  return rat == radio::Rat::kNr ? sim::from_millis(1.2)
                                : sim::from_millis(11.2);
}

std::vector<Link::Config> make_cellular_path(const CellularPathOptions& options,
                                             sim::Rng rng) {
  std::vector<Link::Config> hops;

  // Hop 1: the radio access link.
  hops.push_back(make_ran_link_config(options.ran, rng.fork("ran")));

  // Hop 2: fronthaul + cellular core (the flat-architecture divide).
  Link::Config epc;
  epc.name = "epc";
  epc.rate_bps = options.rat == radio::Rat::kNr ? 25e9 : 10e9;
  epc.prop_delay = epc_delay(options.rat);
  epc.queue_bytes = options.core_buffer_bytes;
  hops.push_back(epc);

  // Wireline hops: the first is the metro bottleneck (1 Gbps tier with the
  // legacy buffer), the rest are over-provisioned core routers that split
  // the geographic distance.
  const int n = std::max(1, options.wired_hops);
  const double per_hop_us =
      options.server_distance_km * kFiberUsPerKm / static_cast<double>(n);
  for (int i = 0; i < n; ++i) {
    Link::Config w;
    const bool bottleneck = i == 0;
    w.name = bottleneck ? "metro-bottleneck" : "core-" + std::to_string(i);
    w.rate_bps = bottleneck ? options.wired_capacity_bps
                            : options.core_capacity_bps;
    w.queue_bytes = bottleneck ? options.bottleneck_buffer_bytes
                               : options.core_buffer_bytes;
    if (bottleneck) w.qdisc = options.bottleneck_qdisc;
    // Router processing/forwarding floor plus the distance share.
    w.prop_delay = sim::from_millis(0.6) +
                   static_cast<sim::Time>(per_hop_us * sim::kMicrosecond);
    hops.push_back(w);
  }
  return hops;
}

}  // namespace fiveg::net

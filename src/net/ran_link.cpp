#include "net/ran_link.h"

#include <algorithm>
#include <string>

#include "obs/obs.h"

namespace fiveg::net {

sim::Time ran_base_delay(radio::Rat rat) noexcept {
  // Calibration: probe RTT over the hop is 2*(base + E[slot jitter] +
  // E[HARQ extra for a 60 B block]). With the Fig. 10 HARQ points and the
  // slot jitter below this lands on the paper's hop-1 RTTs: 2.19 ms (5G)
  // and 2.6 ms (4G).
  return rat == radio::Rat::kNr ? sim::from_millis(0.46)
                                : sim::from_millis(1.175);
}

sim::Time slot_jitter_span(radio::Rat rat) noexcept {
  return rat == radio::Rat::kNr ? sim::from_millis(1.25)
                                : sim::from_millis(0.15);
}

Link::Config make_ran_link_config(const RanLinkOptions& options,
                                  sim::Rng rng) {
  Link::Config cfg;
  cfg.name = options.rat == radio::Rat::kNr ? "ran-nr" : "ran-lte";
  cfg.rate_bps = options.bitrate_bps;
  cfg.rate_fn = options.rate_fn;
  cfg.prop_delay = ran_base_delay(options.rat);
  cfg.blocked_fn = options.blocked_fn;
  cfg.queue_bytes = options.queue_bytes != 0
                        ? options.queue_bytes
                        : (options.rat == radio::Rat::kNr ? 3 * 1024 * 1024
                                                          : 768 * 1024);

  // HARQ: block error probability scales with transport-block size, so
  // tiny probes almost never retransmit while full MTU data sees the
  // Fig. 10 retransmission distribution.
  const ran::HarqConfig harq_cfg =
      options.rat == radio::Rat::kNr ? ran::nr_harq() : ran::lte_harq();
  auto harq = std::make_shared<ran::HarqProcess>(harq_cfg);
  auto shared_rng = std::make_shared<sim::Rng>(rng);
  const sim::Time jitter_span = slot_jitter_span(options.rat);
  // Capture observability handles once, at config time: metric handles are
  // stable for the registry's lifetime, so the per-packet path below never
  // does a name lookup.
  obs::Tracer* tracer = obs::tracer();
  obs::Histogram* attempts_h = nullptr;
  obs::Counter* retx_blocks = nullptr;
  obs::Digest* attempts_d = nullptr;
  obs::Digest* extra_delay_d = nullptr;
  const char* rat_name = options.rat == radio::Rat::kNr ? "nr" : "lte";
  if (auto* m = obs::metrics()) {
    attempts_h = &m->histogram("ran.harq.attempts");
    retx_blocks = &m->counter("ran.harq.retx_blocks");
    attempts_d = &m->digest("ran.harq.attempts", {{"rat", rat_name}});
    extra_delay_d = &m->digest("ran.extra_delay_ms", {{"rat", rat_name}});
  }
  cfg.extra_delay_fn = [harq, shared_rng, jitter_span, tracer, attempts_h,
                        retx_blocks, attempts_d, extra_delay_d,
                        rat_name](const Packet& p) -> sim::Time {
    // Slot-alignment wait (uniform over the pattern span).
    sim::Time extra = shared_rng->uniform_int(0, jitter_span);
    const double size_scale = std::min(1.0, p.size_bytes / 1500.0);
    // Thin the first-attempt failure by packet size; retransmission
    // dynamics beyond that follow the configured ladder.
    int attempts = 1;
    if (shared_rng->bernoulli(harq->config().first_bler * size_scale)) {
      // Already failed once; count the remaining attempts.
      attempts = 2;
      while (attempts < harq->config().max_attempts &&
             shared_rng->bernoulli(harq->config().subsequent_bler)) {
        ++attempts;
      }
      extra += harq->latency_for(attempts);
      if (retx_blocks != nullptr) retx_blocks->add();
      if (tracer != nullptr) {
        tracer->instant(tracer->clock_now(), "ran.harq_retx", "ran",
                        {{"rat", rat_name},
                         {"attempts", std::to_string(attempts)},
                         {"size_bytes", std::to_string(p.size_bytes)}});
      }
    }
    if (attempts_h != nullptr) attempts_h->observe(attempts);
    if (attempts_d != nullptr) attempts_d->observe(attempts);
    if (extra_delay_d != nullptr) {
      extra_delay_d->observe(sim::to_millis(extra));
    }
    return extra;
  };
  return cfg;
}

}  // namespace fiveg::net

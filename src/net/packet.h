// Packets and packet sinks: the currency of the wireline/RAN simulation.
// Packets are small value types; links and endpoints pass them by value.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace fiveg::net {

/// Transport-agnostic packet. TCP/UDP endpoints interpret the fields they
/// need; links only look at size and TTL.
struct Packet {
  std::uint32_t flow_id = 0;     // which flow this belongs to
  std::uint64_t seq = 0;         // byte offset (TCP) or datagram index (UDP)
  std::uint32_t size_bytes = 1500;
  sim::Time sent_at = 0;         // stamped by the sender
  bool is_ack = false;
  std::uint64_t ack_seq = 0;     // cumulative ACK (TCP)
  std::uint64_t sack_high = 0;   // highest byte held by the receiver (SACK)
  std::uint64_t rcv_total = 0;   // total distinct payload bytes the receiver holds
  sim::Time echo_ts = 0;         // sender timestamp echoed by the receiver
  int ttl = 64;                  // decremented per hop; 0 bounces (traceroute)
  bool is_probe = false;         // traceroute probe flag
  // Explicit congestion notification (RFC 3168). An ECN-capable sender
  // stamps data packets ECT; an ECN-enabled qdisc sets CE instead of
  // dropping; the receiver echoes ECE on the ACK stream.
  bool ect = false;              // ECN-capable transport (data packets)
  bool ce = false;               // congestion experienced (set by a qdisc)
  bool ece = false;              // ECN echo (ACKs)
};

/// Anything that can absorb packets.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(Packet p) = 0;
};

/// Adapts a callable into a PacketSink.
class LambdaSink final : public PacketSink {
 public:
  explicit LambdaSink(std::function<void(Packet)> fn) : fn_(std::move(fn)) {}
  void deliver(Packet p) override { fn_(std::move(p)); }

 private:
  std::function<void(Packet)> fn_;
};

/// Fans deliveries out to several sinks (a host running several flows —
/// each endpoint filters by flow id).
class FanoutSink final : public PacketSink {
 public:
  void add(PacketSink* sink) { sinks_.push_back(sink); }
  void deliver(Packet p) override {
    for (PacketSink* s : sinks_) s->deliver(p);
  }

 private:
  std::vector<PacketSink*> sinks_;
};

/// Sink that counts and otherwise swallows traffic (a /dev/null host).
class CountingSink final : public PacketSink {
 public:
  void deliver(Packet p) override {
    ++packets_;
    bytes_ += p.size_bytes;
  }
  [[nodiscard]] std::uint64_t packets() const noexcept { return packets_; }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }

 private:
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace fiveg::net

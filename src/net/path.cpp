#include "net/path.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace fiveg::net {

// Internal sink gluing a link's output to the path's node logic.
class PathNetwork::Relay final : public PacketSink {
 public:
  Relay(PathNetwork* net, std::size_t node, bool forward)
      : net_(net), node_(node), forward_(forward) {}

  void deliver(Packet p) override {
    if (forward_) {
      net_->arrive_forward(node_, std::move(p));
    } else {
      net_->arrive_reverse(node_, std::move(p));
    }
  }

 private:
  PathNetwork* net_;
  std::size_t node_;
  bool forward_;
};

PathNetwork::PathNetwork(sim::Simulator* simulator,
                         std::vector<Link::Config> hops)
    : sim_(simulator) {
  if (hops.empty()) throw std::invalid_argument("path needs at least one hop");
  const std::size_t n = hops.size();
  forward_.reserve(n);
  reverse_.reserve(n);
  // Forward link i: node i -> node i+1. Reverse link i: node i+1 -> node i.
  for (std::size_t i = 0; i < n; ++i) {
    relays_.push_back(std::make_unique<Relay>(this, i + 1, /*forward=*/true));
    forward_.push_back(
        std::make_unique<Link>(sim_, hops[i], relays_.back().get()));
    relays_.push_back(std::make_unique<Relay>(this, i, /*forward=*/false));
    reverse_.push_back(
        std::make_unique<Link>(sim_, hops[i], relays_.back().get()));
  }
}

PathNetwork::~PathNetwork() = default;

void PathNetwork::send_a_to_b(Packet p) { forward_.front()->send(std::move(p)); }

void PathNetwork::send_b_to_a(Packet p) { reverse_.back()->send(std::move(p)); }

void PathNetwork::probe(std::size_t hop,
                        std::function<void(sim::Time rtt)> done) {
  if (hop == 0 || hop > hop_count()) {
    throw std::invalid_argument("probe hop out of range");
  }
  Packet p;
  p.is_probe = true;
  p.ttl = static_cast<int>(hop);
  p.size_bytes = 60;  // the paper probes with minimum-size UDP datagrams
  p.seq = next_probe_seq_++;
  p.sent_at = sim_->now();
  pending_probes_[p.seq] = std::move(done);
  send_a_to_b(std::move(p));
}

void PathNetwork::arrive_forward(std::size_t node, Packet p) {
  assert(node >= 1 && node <= hop_count());
  --p.ttl;
  const bool at_host = node == hop_count();
  if (p.is_probe && (p.ttl <= 0 || at_host)) {
    // Bounce: ICMP-like reply re-enters the reverse chain at this node.
    reverse_[node - 1]->send(std::move(p));
    return;
  }
  if (p.ttl <= 0) return;  // expired transit traffic exits the path here
  if (at_host) {
    if (b_sink_ != nullptr) b_sink_->deliver(std::move(p));
    return;
  }
  forward_[node]->send(std::move(p));
}

void PathNetwork::arrive_reverse(std::size_t node, Packet p) {
  if (node == 0) {
    if (p.is_probe) {
      const auto it = pending_probes_.find(p.seq);
      if (it != pending_probes_.end()) {
        auto done = std::move(it->second);
        pending_probes_.erase(it);
        done(sim_->now() - p.sent_at);
      }
      return;
    }
    if (a_sink_ != nullptr) a_sink_->deliver(std::move(p));
    return;
  }
  reverse_[node - 1]->send(std::move(p));
}

std::uint64_t PathNetwork::total_drops() const noexcept {
  std::uint64_t total = 0;
  for (const auto& l : forward_) total += l->dropped_packets();
  for (const auto& l : reverse_) total += l->dropped_packets();
  return total;
}

}  // namespace fiveg::net

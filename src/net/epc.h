// End-to-end cellular path factories: RAN hop + fronthaul/EPC hop + wireline
// Internet hops to a server. Encodes the two architectural facts the paper
// measures: (i) the 5G flat core shaves ~20 ms of RTT off hop 2, and
// (ii) wireline buffers did not scale with 5G capacity (Table 3), which is
// where the TCP anomaly lives.
#pragma once

#include <cstdint>
#include <vector>

#include "net/link.h"
#include "net/ran_link.h"
#include "radio/carrier.h"
#include "sim/rng.h"

namespace fiveg::net {

/// Everything needed to stamp out a UE <-> server path.
struct CellularPathOptions {
  radio::Rat rat = radio::Rat::kNr;
  RanLinkOptions ran;               // hop 1
  double server_distance_km = 30.0;
  int wired_hops = 6;               // routers past the EPC (paper's Fig. 14 path has 8 hops total)
  double wired_capacity_bps = 1e9;  // bottleneck tier capacity
  /// Drop-tail capacity of the wireline bottleneck router: ~1.6 MB, the
  /// physical buffer behind Table 3's 5G wired estimate (26724 x 60 B).
  /// Deep enough for 4G's ~0.7 MB BDP, but ~1/3 of the 5G BDP — the
  /// mismatch the paper blames for the TCP anomaly.
  std::uint64_t bottleneck_buffer_bytes = 1638 * 1024;
  /// Non-bottleneck wired hop capacity and buffers.
  double core_capacity_bps = 10e9;
  std::uint64_t core_buffer_bytes = 4 * 1024 * 1024;
  /// Queue discipline managing the metro-bottleneck buffer (drop-tail by
  /// default, matching the measured networks; the AQM experiments swap in
  /// CoDel / FQ-CoDel / RED here).
  QdiscConfig bottleneck_qdisc;
};

/// Index of the wireline bottleneck hop in the built path (where cross
/// traffic should be injected): hop 0 = RAN, hop 1 = EPC, hop 2 = metro
/// bottleneck.
inline constexpr std::size_t kBottleneckHopIndex = 2;

/// Builds the hop configs for a full UE <-> server path.
[[nodiscard]] std::vector<Link::Config> make_cellular_path(
    const CellularPathOptions& options, sim::Rng rng);

/// One-way fronthaul+core delay of hop 2 for a RAT: ~1.2 ms for the 5G
/// flat core (functions sunk into the gNB, 25 Gbps fibre) vs ~11.2 ms for
/// the legacy 4G EPC chain — a 20 ms RTT difference (Fig. 14).
[[nodiscard]] sim::Time epc_delay(radio::Rat rat) noexcept;

}  // namespace fiveg::net

#include "net/topology.h"

#include <algorithm>
#include <cmath>

namespace fiveg::net {

const std::vector<ServerInfo>& speedtest_servers() {
  // Table 6 of the paper (Appendix C), verbatim.
  static const std::vector<ServerInfo> kServers = {
      {5145, "Beijing Unicom", "Beijing", 1.67},
      {27154, "China Unicom 5G", "Tianjin", 111.65},
      {5039, "China Unicom Jinan Branch", "Jinan", 366.42},
      {25728, "China Mobile Liaoning Branch Dalian", "Dalian", 462.77},
      {27100, "Shandong CMCC 5G", "Qingdao", 553.80},
      {5396, "China Telecom Jiangsu 5G", "Suzhou", 638.00},
      {16375, "China Mobile Jilin", "Changchun", 859.32},
      {5724, "China Unicom", "Hefei", 900.06},
      {5485, "China Unicom Hubei Branch", "Wuhan", 1056.52},
      {4690, "China Unicom Lanzhou Branch Co.Ltd", "Lanzhou", 1183.99},
      {6715, "China Mobile Zhejiang 5G", "Ningbo", 1213.23},
      {4870, "Changsha Hunan Unicom Server1", "Changsha", 1341.73},
      {5530, "CCN", "Chongqing", 1459.16},
      {4884, "China Unicom Fujian", "Fuzhou", 1563.93},
      {16398, "China Mobile Guizhou", "Guiyang", 1730.12},
      {26678, "Guangzhou Unicom 5G", "Guangzhou", 1890.52},
      {5674, "GX Unicom", "Nanning", 2048.98},
      {16503, "China Mobile Hainan", "Haikou", 2285.12},
      {27575, "Xinjiang Telecom Cloud", "Urumqi", 2404.00},
      {17245, "China Mobile Group Xinjiang", "Kashi", 3426.37},
  };
  return kServers;
}

CellularPathOptions make_server_path_options(radio::Rat rat,
                                             const ServerInfo& server) {
  CellularPathOptions opt;
  opt.rat = rat;
  opt.ran.rat = rat;
  opt.ran.bitrate_bps = rat == radio::Rat::kNr ? 880e6 : 130e6;
  opt.server_distance_km = server.distance_km;
  // Hop count grows with distance: metro (5-6 hops) through national
  // backbone (up to ~10), roughly log in distance like real traceroutes.
  opt.wired_hops = static_cast<int>(
      std::clamp(4.0 + std::log10(1.0 + server.distance_km) * 1.8, 5.0, 11.0));
  return opt;
}

}  // namespace fiveg::net

// Traceroute over a PathNetwork: repeated per-hop probes (UDP, minimum
// payload, exactly the paper's method) aggregated into per-hop RTT stats,
// plus the paper's "max-min delay" in-network buffer estimator.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "measure/stats.h"
#include "net/path.h"
#include "sim/simulator.h"

namespace fiveg::net {

/// RTT statistics for probes bouncing at one hop.
struct HopRtt {
  std::size_t hop = 0;             // 1-based hop index
  measure::RunningStats rtt_ms;    // over all replies received
  int lost = 0;                    // probes with no reply
};

/// Asynchronous traceroute: `reps` probes per hop, spaced `gap` apart,
/// hops probed concurrently round-robin (like `traceroute -q`).
class Traceroute {
 public:
  using Done = std::function<void(std::vector<HopRtt>)>;

  Traceroute(sim::Simulator* simulator, PathNetwork* path, int reps,
             sim::Time gap);

  /// Starts probing; `done` fires after every probe has answered or the
  /// per-probe timeout (1 s) has expired.
  void run(Done done);

 private:
  void send_round(int round);
  void finish_if_done();

  sim::Simulator* sim_;
  PathNetwork* path_;
  int reps_;
  sim::Time gap_;
  std::vector<HopRtt> results_;
  int outstanding_ = 0;
  bool all_sent_ = false;
  Done done_;
};

/// The paper's buffer estimator: buffered packets ~= (RTTmax - RTTmin) * C
/// / packet size, with C the assumed path capacity and 60-byte packets.
[[nodiscard]] double estimate_buffer_packets(const measure::RunningStats& rtt_ms,
                                             double capacity_bps = 1e9,
                                             int packet_bytes = 60) noexcept;

}  // namespace fiveg::net

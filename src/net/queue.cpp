#include "net/queue.h"

#include <algorithm>
#include <cassert>

namespace fiveg::net {

bool DropTailQueue::push(Packet p) {
  if (bytes_ + p.size_bytes > capacity_bytes_) {
    ++drops_;
    return false;
  }
  bytes_ += p.size_bytes;
  max_depth_bytes_ = std::max(max_depth_bytes_, bytes_);
  q_.push_back(std::move(p));
  return true;
}

Packet DropTailQueue::pop() {
  assert(!q_.empty());
  Packet p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= p.size_bytes;
  return p;
}

}  // namespace fiveg::net

// A simplex link: serialisation at a (possibly time-varying) rate, a
// pluggable queue discipline (drop-tail by default; CoDel / FQ-CoDel /
// RED for the AQM experiments), propagation delay, optional per-packet
// extra delay (HARQ retransmissions) and an optional outage predicate
// (hand-off interruptions). Two Links back-to-back make a duplex hop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "fault/fault.h"
#include "net/aqm.h"
#include "net/packet.h"
#include "sim/lane.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace fiveg::net {

/// One direction of a network hop.
class Link {
 public:
  struct Config {
    double rate_bps = 1e9;                    // fixed rate when rate_fn empty
    std::function<double()> rate_fn;          // dynamic rate (RAN links)
    sim::Time prop_delay = sim::from_millis(0.1);
    std::uint64_t queue_bytes = 512 * 1024;   // buffer capacity
    // Which discipline manages the buffer (default: drop-tail, the
    // measured status quo — every golden baseline assumes it).
    QdiscConfig qdisc;
    // Per-packet extra delivery delay (HARQ retransmissions); sees the
    // packet so the model can scale block error rate with size.
    std::function<sim::Time(const Packet&)> extra_delay_fn;
    std::function<bool()> blocked_fn;         // true while link is in outage
    std::string name = "link";
    // Partition affinity (sim::ParSim lane index; sim::kNoLane =
    // unpinned). A pinned link verifies on every send() that it is
    // executing on its declared lane — cross-partition packets must go
    // through ParSim::send with the lookahead delay, never through a
    // direct sink call into a foreign lane's link.
    int domain = sim::kNoLane;
  };

  /// `sink` receives delivered packets; may be changed later.
  Link(sim::Simulator* simulator, Config config, PacketSink* sink = nullptr);

  void set_sink(PacketSink* sink) noexcept { sink_ = sink; }

  /// Offers a packet: queued for transmission or dropped by the qdisc.
  void send(Packet p);

  /// Instantaneous transmit rate in bits/s.
  [[nodiscard]] double current_rate_bps() const;

  // --- statistics ---
  [[nodiscard]] std::uint64_t delivered_packets() const noexcept {
    return delivered_packets_;
  }
  [[nodiscard]] std::uint64_t delivered_bytes() const noexcept {
    return delivered_bytes_;
  }
  [[nodiscard]] std::uint64_t dropped_packets() const noexcept {
    return qdisc_->drops();
  }
  [[nodiscard]] std::uint64_t max_queue_bytes() const noexcept {
    return qdisc_->max_depth_bytes();
  }
  [[nodiscard]] std::uint64_t queue_bytes() const noexcept {
    return qdisc_->size_bytes();
  }
  [[nodiscard]] std::uint64_t queue_packets() const noexcept {
    return qdisc_->size_packets();
  }
  // Packet-conservation ledger (see fault::InvariantChecker): every packet
  // offered to send() is exactly one of fault-dropped, queue-dropped,
  // delivered, still queued, or in flight between pop and delivery.
  // CE-marked packets are a sub-population of the delivered/queued/
  // in-transit buckets — marked means signalled, never lost.
  [[nodiscard]] std::uint64_t offered_packets() const noexcept {
    return offered_packets_;
  }
  [[nodiscard]] std::uint64_t fault_dropped_packets() const noexcept {
    return fault_dropped_packets_;
  }
  [[nodiscard]] std::uint64_t in_transit_packets() const noexcept {
    return in_transit_packets_;
  }
  [[nodiscard]] std::uint64_t marked_packets() const noexcept {
    return qdisc_->marks();
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] const QueueDiscipline& qdisc() const noexcept {
    return *qdisc_;
  }

 private:
  void try_transmit();
  void finish_transmit(Packet p);
  /// Folds any drop/mark counter movement since the last call into the
  /// metrics and the trace (one event per batch, like the old per-push
  /// accounting).
  void sync_qdisc_stats();

  sim::Simulator* sim_;
  Config config_;
  PacketSink* sink_;
  std::unique_ptr<QueueDiscipline> qdisc_;
  bool transmitting_ = false;

  // Observability handles, resolved once at construction (null without a
  // scope). Every discipline reports the sojourn of each delivered packet
  // through the shared net.queue.sojourn_ms family; AQMs additionally get
  // qdisc-labelled drop/mark counters.
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* drops_ctr_ = nullptr;
  obs::Counter* qdisc_drops_ctr_ = nullptr;  // AQM only (qdisc-labelled)
  obs::Counter* qdisc_marks_ctr_ = nullptr;  // AQM only (qdisc-labelled)
  obs::Histogram* sojourn_ms_ = nullptr;
  obs::Digest* sojourn_d_ = nullptr;
  obs::Gauge* queue_hwm_ = nullptr;
  std::uint64_t drops_synced_ = 0;  // qdisc drops already counted
  std::uint64_t marks_synced_ = 0;  // qdisc marks already counted
  // Deliveries never reorder (RLC-style in-order delivery): a packet held
  // up by HARQ also holds back its successors.
  sim::Time last_delivery_at_ = 0;

  std::uint64_t delivered_packets_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t offered_packets_ = 0;
  std::uint64_t in_transit_packets_ = 0;

  // Fault injection (null / unused when no fault::Runtime is installed at
  // construction). The drop RNG is a private per-link fork of the fault
  // seed, so injected loss never perturbs any other random stream.
  fault::Runtime* fault_ = nullptr;
  std::unique_ptr<sim::Rng> fault_rng_;
  obs::Counter* fault_drops_ctr_ = nullptr;
  std::uint64_t fault_dropped_packets_ = 0;
};

}  // namespace fiveg::net

// The radio-access hop as a Link::Config: rate from the link adaptation
// model (static operating point or a live callback), deep RAN buffers,
// HARQ retransmission delay that scales with transport-block size, and an
// optional hand-off outage hook.
#pragma once

#include <functional>
#include <memory>

#include "net/link.h"
#include "radio/carrier.h"
#include "ran/harq.h"
#include "sim/rng.h"

namespace fiveg::net {

/// Operating point / hooks for building a RAN hop.
struct RanLinkOptions {
  radio::Rat rat = radio::Rat::kNr;
  /// Static bit-rate of the hop; ignored when `rate_fn` is set.
  double bitrate_bps = 880e6;
  std::function<double()> rate_fn;
  /// Outage predicate (e.g. HandoffEngine::data_interrupted at now()).
  std::function<bool()> blocked_fn;
  /// Queue depth: RAN buffers are deep (HARQ hides loss; the paper shows
  /// the RAN is never the drop bottleneck).
  std::uint64_t queue_bytes = 0;  // 0 -> RAT default
};

/// Worst-case slot-alignment wait on the hop. TDD NR packets wait for a
/// slot in their direction (2.5 ms pattern, 3:1 split) — the dominant
/// source of the 5G RAN hop's RTT spread in Table 3; FDD LTE only jitters
/// by scheduling-grant noise.
[[nodiscard]] sim::Time slot_jitter_span(radio::Rat rat) noexcept;

/// One-way propagation + processing delay of the RAN hop, calibrated so
/// the probe RTT of hop 1 matches the paper's Fig. 14 (2.19 ms for 5G,
/// 2.6 ms for 4G including the HARQ expectation).
[[nodiscard]] sim::Time ran_base_delay(radio::Rat rat) noexcept;

/// Builds the Link::Config for a RAN hop. The returned config owns shared
/// state (an RNG and HARQ process) via its callbacks.
[[nodiscard]] Link::Config make_ran_link_config(const RanLinkOptions& options,
                                                sim::Rng rng);

}  // namespace fiveg::net

#include "net/aqm.h"

#include <algorithm>
#include <cmath>

namespace fiveg::net {

bool CoDelQueue::push(Packet p, sim::Time now) {
  if (bytes_ + p.size_bytes > config_.capacity_bytes) {
    ++drops_;
    return false;
  }
  bytes_ += p.size_bytes;
  max_depth_bytes_ = std::max(max_depth_bytes_, bytes_);
  q_.push_back({std::move(p), now});
  return true;
}

bool CoDelQueue::over_target(const Entry& e, sim::Time now) const {
  return now - e.enqueued_at > config_.target;
}

sim::Time CoDelQueue::control_law(sim::Time t) const {
  // interval / sqrt(drop_count): drops accelerate while congestion holds.
  return t + static_cast<sim::Time>(
                 static_cast<double>(config_.interval) /
                 std::sqrt(static_cast<double>(std::max(drop_count_, 1u))));
}

std::optional<Packet> CoDelQueue::pop(sim::Time now) {
  while (!q_.empty()) {
    Entry e = std::move(q_.front());
    q_.pop_front();
    bytes_ -= e.packet.size_bytes;

    const bool above = over_target(e, now);
    if (!dropping_) {
      if (!above) {
        first_above_time_ = 0;
        return std::move(e.packet);
      }
      if (first_above_time_ == 0) {
        first_above_time_ = now + config_.interval;
        return std::move(e.packet);
      }
      if (now < first_above_time_) return std::move(e.packet);
      // Sojourn has exceeded target for a full interval: enter dropping.
      dropping_ = true;
      ++drops_;  // drop this packet
      drop_count_ = drop_count_ > last_drop_count_ + 1 &&
                            now - drop_next_ < 8 * config_.interval
                        ? drop_count_ - last_drop_count_
                        : 1;
      drop_next_ = control_law(now);
      last_drop_count_ = drop_count_;
      continue;
    }

    // Dropping state.
    if (!above) {
      dropping_ = false;
      first_above_time_ = 0;
      return std::move(e.packet);
    }
    if (now >= drop_next_) {
      ++drops_;
      ++drop_count_;
      drop_next_ = control_law(drop_next_);
      continue;
    }
    return std::move(e.packet);
  }
  if (q_.empty()) {
    dropping_ = false;
    first_above_time_ = 0;
  }
  return std::nullopt;
}

}  // namespace fiveg::net

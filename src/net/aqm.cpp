#include "net/aqm.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace fiveg::net {

std::string_view to_string(QdiscKind kind) noexcept {
  switch (kind) {
    case QdiscKind::kDropTail:
      return "droptail";
    case QdiscKind::kCoDel:
      return "codel";
    case QdiscKind::kFqCoDel:
      return "fq_codel";
    case QdiscKind::kRed:
      return "red";
  }
  return "droptail";
}

bool parse_qdisc_spec(std::string_view spec, QdiscConfig* out) {
  QdiscConfig cfg;
  if (spec.size() >= 4 && spec.substr(spec.size() - 4) == "+ecn") {
    cfg.ecn = true;
    spec.remove_suffix(4);
  }
  if (spec == "droptail") {
    cfg.kind = QdiscKind::kDropTail;
  } else if (spec == "codel") {
    cfg.kind = QdiscKind::kCoDel;
  } else if (spec == "fq_codel") {
    cfg.kind = QdiscKind::kFqCoDel;
  } else if (spec == "red") {
    cfg.kind = QdiscKind::kRed;
  } else {
    return false;
  }
  *out = cfg;
  return true;
}

std::unique_ptr<QueueDiscipline> make_qdisc(const QdiscConfig& config,
                                            std::uint64_t capacity_bytes,
                                            std::string_view link_name) {
  switch (config.kind) {
    case QdiscKind::kDropTail:
      return std::make_unique<DropTailQdisc>(capacity_bytes);
    case QdiscKind::kCoDel: {
      CoDelQueue::Config c;
      c.target = config.target;
      c.interval = config.interval;
      c.capacity_bytes = capacity_bytes;
      c.ecn = config.ecn;
      return std::make_unique<CoDelQueue>(c);
    }
    case QdiscKind::kFqCoDel: {
      FqCoDelQueue::Config c;
      c.target = config.target;
      c.interval = config.interval;
      c.capacity_bytes = capacity_bytes;
      c.quantum_bytes = config.quantum_bytes;
      c.flows = config.flows;
      c.ecn = config.ecn;
      return std::make_unique<FqCoDelQueue>(c);
    }
    case QdiscKind::kRed: {
      RedQueue::Config c;
      c.capacity_bytes = capacity_bytes;
      c.min_bytes = config.red_min_bytes;
      c.max_bytes = config.red_max_bytes;
      c.max_p = config.red_max_p;
      c.weight = config.red_weight;
      c.ecn = config.ecn;
      // A per-link fork keeps RED's probabilistic drops independent of
      // every model stream and of link construction order.
      c.seed = sim::Rng(c.seed).fork(std::string("red.") +
                                     std::string(link_name)).seed();
      return std::make_unique<RedQueue>(c);
    }
  }
  return std::make_unique<DropTailQdisc>(capacity_bytes);
}

// --- DropTailQdisc ---------------------------------------------------------

bool DropTailQdisc::push(Packet p, sim::Time now) {
  if (bytes_ + p.size_bytes > capacity_bytes_) {
    ++drops_;
    return false;
  }
  bytes_ += p.size_bytes;
  max_depth_bytes_ = std::max(max_depth_bytes_, bytes_);
  q_.push_back({std::move(p), now});
  return true;
}

std::optional<Packet> DropTailQdisc::pop(sim::Time now) {
  if (q_.empty()) return std::nullopt;
  Entry e = std::move(q_.front());
  q_.pop_front();
  bytes_ -= e.packet.size_bytes;
  last_sojourn_ = now - e.enqueued_at;
  return std::move(e.packet);
}

// --- CoDelQueue ------------------------------------------------------------

bool CoDelQueue::push(Packet p, sim::Time now) {
  if (bytes_ + p.size_bytes > config_.capacity_bytes) {
    ++drops_;
    return false;
  }
  bytes_ += p.size_bytes;
  max_depth_bytes_ = std::max(max_depth_bytes_, bytes_);
  q_.push_back({std::move(p), now});
  return true;
}

bool CoDelQueue::over_target(const Entry& e, sim::Time now) const {
  return now - e.enqueued_at > config_.target;
}

sim::Time CoDelQueue::control_law(sim::Time t) const {
  // interval / sqrt(drop_count): drops accelerate while congestion holds.
  return t + static_cast<sim::Time>(
                 static_cast<double>(config_.interval) /
                 std::sqrt(static_cast<double>(std::max(drop_count_, 1u))));
}

bool CoDelQueue::shed(Entry* e) {
  if (config_.ecn && e->packet.ect) {
    // RFC 3168: signal instead of shoot. The state machine advances as if
    // the packet had dropped, but the bytes still reach the receiver.
    e->packet.ce = true;
    ++marks_;
    return false;
  }
  ++drops_;
  return true;
}

std::optional<Packet> CoDelQueue::pop(sim::Time now) {
  while (!q_.empty()) {
    Entry e = std::move(q_.front());
    q_.pop_front();
    bytes_ -= e.packet.size_bytes;
    last_sojourn_ = now - e.enqueued_at;

    const bool above = over_target(e, now);
    if (!dropping_) {
      if (!above) {
        first_above_time_ = 0;
        return std::move(e.packet);
      }
      if (first_above_time_ == 0) {
        first_above_time_ = now + config_.interval;
        return std::move(e.packet);
      }
      if (now < first_above_time_) return std::move(e.packet);
      // Sojourn has exceeded target for a full interval: enter dropping.
      dropping_ = true;
      drop_count_ = drop_count_ > last_drop_count_ + 1 &&
                            now - drop_next_ < 8 * config_.interval
                        ? drop_count_ - last_drop_count_
                        : 1;
      drop_next_ = control_law(now);
      last_drop_count_ = drop_count_;
      if (shed(&e)) continue;
      return std::move(e.packet);  // CE-marked instead of dropped
    }

    // Dropping state.
    if (!above) {
      dropping_ = false;
      first_above_time_ = 0;
      return std::move(e.packet);
    }
    if (now >= drop_next_) {
      ++drop_count_;
      drop_next_ = control_law(drop_next_);
      if (shed(&e)) continue;
      return std::move(e.packet);  // CE-marked instead of dropped
    }
    return std::move(e.packet);
  }
  if (q_.empty()) {
    dropping_ = false;
    first_above_time_ = 0;
  }
  return std::nullopt;
}

// --- FqCoDelQueue ----------------------------------------------------------

FqCoDelQueue::FqCoDelQueue(const Config& config)
    : config_(config), buckets_(std::max(config.flows, 1u)) {}

std::uint32_t FqCoDelQueue::bucket_of(std::uint32_t flow_id) const {
  // Knuth multiplicative hash: spreads small consecutive flow ids without
  // needing a keyed hash (there is no adversary inside the simulation).
  return (flow_id * 2654435761u) % static_cast<std::uint32_t>(buckets_.size());
}

bool FqCoDelQueue::push(Packet p, sim::Time now) {
  if (bytes_ + p.size_bytes > config_.capacity_bytes) {
    // Linux sheds from the fattest flow on overflow; dropping the arrival
    // is simpler and deterministic, and the AQM keeps queues far below
    // capacity in every scenario we run.
    ++drops_;
    return false;
  }
  const std::uint32_t idx = bucket_of(p.flow_id);
  Bucket& b = buckets_[idx];
  bytes_ += p.size_bytes;
  ++packets_;
  max_depth_bytes_ = std::max(max_depth_bytes_, bytes_);
  b.bytes += p.size_bytes;
  b.q.push_back({std::move(p), now});
  if (!b.queued) {
    // A flow that was idle re-enters through the priority list with a
    // fresh quantum: sparse flows jump the heavy ones.
    b.queued = true;
    b.deficit = static_cast<int>(config_.quantum_bytes);
    new_flows_.push_back(idx);
  }
  return true;
}

sim::Time FqCoDelQueue::control_law(const Bucket& b, sim::Time t) const {
  return t + static_cast<sim::Time>(
                 static_cast<double>(config_.interval) /
                 std::sqrt(static_cast<double>(std::max(b.drop_count, 1u))));
}

bool FqCoDelQueue::shed(Bucket* b, Entry* e) {
  if (config_.ecn && e->packet.ect) {
    e->packet.ce = true;
    ++marks_;
    return false;
  }
  ++drops_;
  return true;
}

std::optional<Packet> FqCoDelQueue::bucket_pop(Bucket* b, sim::Time now) {
  // The per-bucket CoDel dequeue: identical state machine to CoDelQueue,
  // but sojourn builds per flow, so only the flow at fault gets throttled.
  while (!b->q.empty()) {
    Entry e = std::move(b->q.front());
    b->q.pop_front();
    b->bytes -= e.packet.size_bytes;
    bytes_ -= e.packet.size_bytes;
    --packets_;
    last_sojourn_ = now - e.enqueued_at;

    const bool above = now - e.enqueued_at > config_.target;
    if (!b->dropping) {
      if (!above) {
        b->first_above_time = 0;
        return std::move(e.packet);
      }
      if (b->first_above_time == 0) {
        b->first_above_time = now + config_.interval;
        return std::move(e.packet);
      }
      if (now < b->first_above_time) return std::move(e.packet);
      b->dropping = true;
      b->drop_count = b->drop_count > b->last_drop_count + 1 &&
                              now - b->drop_next < 8 * config_.interval
                          ? b->drop_count - b->last_drop_count
                          : 1;
      b->drop_next = control_law(*b, now);
      b->last_drop_count = b->drop_count;
      if (shed(b, &e)) continue;
      return std::move(e.packet);
    }
    if (!above) {
      b->dropping = false;
      b->first_above_time = 0;
      return std::move(e.packet);
    }
    if (now >= b->drop_next) {
      ++b->drop_count;
      b->drop_next = control_law(*b, b->drop_next);
      if (shed(b, &e)) continue;
      return std::move(e.packet);
    }
    return std::move(e.packet);
  }
  b->dropping = false;
  b->first_above_time = 0;
  return std::nullopt;
}

std::optional<Packet> FqCoDelQueue::pop(sim::Time now) {
  while (true) {
    const bool from_new = !new_flows_.empty();
    std::deque<std::uint32_t>& list = from_new ? new_flows_ : old_flows_;
    if (list.empty()) return std::nullopt;
    const std::uint32_t idx = list.front();
    Bucket& b = buckets_[idx];
    if (b.deficit <= 0) {
      // Quantum exhausted: recharge and rotate to the back of the old
      // list (DRR proper).
      b.deficit += static_cast<int>(config_.quantum_bytes);
      list.pop_front();
      old_flows_.push_back(idx);
      continue;
    }
    std::optional<Packet> p = bucket_pop(&b, now);
    if (!p) {
      // Bucket ran dry. A new flow parks on the old list first (RFC 8290:
      // it must survive one rotation before leaving, or a sparse flow
      // that sends exactly one packet per quantum keeps "new" priority
      // forever); an old flow leaves the scheduler.
      list.pop_front();
      if (from_new) {
        old_flows_.push_back(idx);
      } else {
        b.queued = false;
      }
      continue;
    }
    b.deficit -= static_cast<int>(p->size_bytes);
    return p;
  }
}

// --- RedQueue --------------------------------------------------------------

RedQueue::RedQueue(const Config& config)
    : config_(config), rng_(config.seed) {
  if (config_.min_bytes == 0) {
    config_.min_bytes =
        static_cast<std::uint64_t>(0.15 * static_cast<double>(
                                              config_.capacity_bytes));
  }
  if (config_.max_bytes == 0) {
    config_.max_bytes =
        static_cast<std::uint64_t>(0.45 * static_cast<double>(
                                              config_.capacity_bytes));
  }
}

bool RedQueue::push(Packet p, sim::Time now) {
  // EWMA of the instantaneous depth, updated per arrival. (The classic
  // idle-time correction is omitted: arrivals on an idle link find
  // avg ~ 0 anyway at these weights, and the omission keeps the estimator
  // trivially deterministic.)
  avg_bytes_ = (1.0 - config_.weight) * avg_bytes_ +
               config_.weight * static_cast<double>(bytes_);

  if (bytes_ + p.size_bytes > config_.capacity_bytes) {
    ++drops_;  // physical tail drop: ECN cannot conjure buffer space
    return false;
  }
  const auto min_th = static_cast<double>(config_.min_bytes);
  const auto max_th = static_cast<double>(config_.max_bytes);
  if (avg_bytes_ >= max_th) {
    // Above max the estimator says sustained congestion: force a drop
    // even for ECT traffic (RFC 3168 Sec. 19.1 guidance).
    ++drops_;
    count_ = 0;
    return false;
  }
  if (avg_bytes_ > min_th) {
    ++count_;
    const double pb =
        config_.max_p * (avg_bytes_ - min_th) / (max_th - min_th);
    // Spread early decisions out (Floyd & Jacobson's 1/(1 - count*pb)
    // correction makes inter-decision gaps uniform, not geometric).
    const double pa = pb / std::max(1.0 - static_cast<double>(count_) * pb,
                                    1e-9);
    if (rng_.bernoulli(std::min(pa, 1.0))) {
      count_ = 0;
      if (config_.ecn && p.ect) {
        p.ce = true;
        ++marks_;
        // marked arrivals still enqueue below
      } else {
        ++drops_;
        return false;
      }
    }
  } else {
    count_ = -1;
  }
  bytes_ += p.size_bytes;
  max_depth_bytes_ = std::max(max_depth_bytes_, bytes_);
  q_.push_back({std::move(p), now});
  return true;
}

std::optional<Packet> RedQueue::pop(sim::Time now) {
  if (q_.empty()) return std::nullopt;
  Entry e = std::move(q_.front());
  q_.pop_front();
  bytes_ -= e.packet.size_bytes;
  last_sojourn_ = now - e.enqueued_at;
  return std::move(e.packet);
}

}  // namespace fiveg::net

#include "net/udp.h"

#include <utility>

namespace fiveg::net {

UdpSource::UdpSource(sim::Simulator* simulator, Config config,
                     std::function<void(Packet)> emit)
    : sim_(simulator), config_(config), emit_(std::move(emit)) {}

void UdpSource::start(sim::Time duration) {
  stop_at_ = sim_->now() + duration;
  emit_next();
}

void UdpSource::emit_next() {
  if (sim_->now() >= stop_at_) return;
  Packet p;
  p.flow_id = config_.flow_id;
  p.seq = sent_;
  p.size_bytes = config_.packet_bytes;
  p.sent_at = sim_->now();
  emit_(std::move(p));
  ++sent_;
  const double bits = 8.0 * config_.packet_bytes;
  const auto gap = static_cast<sim::Time>(
      bits / config_.rate_bps * static_cast<double>(sim::kSecond));
  sim_->schedule_in(gap, [this] { emit_next(); });
}

void UdpSink::deliver(Packet p) {
  if (p.flow_id != flow_id_) return;  // cross traffic shares the sink host
  ++received_;
  bytes_ += p.size_bytes;
  arrival_seqs_.push_back(p.seq);
  byte_log_.add(sim_->now(), 8.0 * p.size_bytes);
}

double UdpSink::loss_ratio(std::uint64_t sent) const noexcept {
  if (sent == 0) return 0.0;
  if (received_ >= sent) return 0.0;
  return static_cast<double>(sent - received_) / static_cast<double>(sent);
}

double UdpSink::mean_throughput_bps(sim::Time from, sim::Time to) const {
  if (to <= from) return 0.0;
  double bits = 0.0;
  for (const measure::TimePoint& pt : byte_log_.points()) {
    if (pt.at >= from && pt.at <= to) bits += pt.value;
  }
  return bits / sim::to_seconds(to - from);
}

}  // namespace fiveg::net

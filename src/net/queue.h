// Drop-tail FIFO queue measured in bytes — the paper's buffer-sizing
// analysis (Table 3) is in buffered bytes (60-byte probe packets), and the
// TCP anomaly hinges on byte capacity vs the path's bandwidth-delay product.
#pragma once

#include <cstdint>
#include <deque>

#include "net/packet.h"

namespace fiveg::net {

/// Bounded FIFO with tail drop.
class DropTailQueue {
 public:
  explicit DropTailQueue(std::uint64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// Enqueues if it fits; returns false (and drops) otherwise.
  bool push(Packet p);

  /// Pops the head. Precondition: !empty().
  [[nodiscard]] Packet pop();

  [[nodiscard]] bool empty() const noexcept { return q_.empty(); }
  [[nodiscard]] std::size_t size_packets() const noexcept { return q_.size(); }
  [[nodiscard]] std::uint64_t size_bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t capacity_bytes() const noexcept {
    return capacity_bytes_;
  }

  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  [[nodiscard]] std::uint64_t max_depth_bytes() const noexcept {
    return max_depth_bytes_;
  }

 private:
  std::uint64_t capacity_bytes_;
  std::deque<Packet> q_;
  std::uint64_t bytes_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t max_depth_bytes_ = 0;
};

}  // namespace fiveg::net

// UDP load generation and measurement: the iperf3-style constant-rate
// source used for the paper's baseline-bandwidth and loss-vs-load
// experiments, plus a sink that reconstructs loss patterns (Fig. 11) and
// windowed throughput.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "measure/timeseries.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace fiveg::net {

/// Constant-bit-rate UDP sender (iperf3 -u).
class UdpSource {
 public:
  struct Config {
    std::uint32_t flow_id = 1;
    double rate_bps = 100e6;
    std::uint32_t packet_bytes = 1500;
  };

  /// `emit` injects each packet into the network (e.g. path.send_a_to_b).
  UdpSource(sim::Simulator* simulator, Config config,
            std::function<void(Packet)> emit);

  /// Starts emitting now; stops after `duration`.
  void start(sim::Time duration);

  [[nodiscard]] std::uint64_t packets_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return sent_ * config_.packet_bytes;
  }

 private:
  void emit_next();

  sim::Simulator* sim_;
  Config config_;
  std::function<void(Packet)> emit_;
  sim::Time stop_at_ = 0;
  std::uint64_t sent_ = 0;
};

/// Receiver-side accounting for one UDP flow.
class UdpSink final : public PacketSink {
 public:
  explicit UdpSink(sim::Simulator* simulator, std::uint32_t flow_id)
      : sim_(simulator), flow_id_(flow_id) {}

  void deliver(Packet p) override;

  [[nodiscard]] std::uint64_t packets_received() const noexcept {
    return received_;
  }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept {
    return bytes_;
  }

  /// Loss ratio given how many packets the source sent.
  [[nodiscard]] double loss_ratio(std::uint64_t sent) const noexcept;

  /// Sequence numbers seen, in arrival order (Fig. 11's x/y data).
  [[nodiscard]] const std::vector<std::uint64_t>& arrival_seqs()
      const noexcept {
    return arrival_seqs_;
  }

  /// Per-packet byte log for windowed-throughput plots.
  [[nodiscard]] const measure::TimeSeries& byte_log() const noexcept {
    return byte_log_;
  }

  /// Mean goodput over [from, to], bits/s.
  [[nodiscard]] double mean_throughput_bps(sim::Time from,
                                           sim::Time to) const;

 private:
  sim::Simulator* sim_;
  std::uint32_t flow_id_;
  std::uint64_t received_ = 0;
  std::uint64_t bytes_ = 0;
  std::vector<std::uint64_t> arrival_seqs_;
  measure::TimeSeries byte_log_;
};

}  // namespace fiveg::net

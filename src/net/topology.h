// The paper's wide-area measurement endpoints: the 20 SPEEDTEST servers of
// Table 6 (Appendix C), used for the RTT-vs-distance study (Fig. 15), plus
// a helper that stamps out a path to one of them.
#pragma once

#include <string>
#include <vector>

#include "net/epc.h"

namespace fiveg::net {

/// One Table-6 server.
struct ServerInfo {
  int id;
  std::string name;
  std::string city;
  double distance_km;  // geographic distance from the campus
};

/// The 20 servers of Table 6, ordered by distance (1.67 km .. 3426 km).
[[nodiscard]] const std::vector<ServerInfo>& speedtest_servers();

/// Path options for reaching `server` over `rat`: hop count grows slowly
/// with distance (regional vs national backbone).
[[nodiscard]] CellularPathOptions make_server_path_options(
    radio::Rat rat, const ServerInfo& server);

}  // namespace fiveg::net

// Queue disciplines. The paper's buffer-sizing discussion (Sec. 4.2) pits
// two fixes against each other: grow drop-tail buffers (cheap, but invites
// bufferbloat) or deploy smarter queues. CoDel is the canonical
// bufferbloat-era AQM, implemented here per RFC 8289 for the ablation.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "net/packet.h"
#include "sim/time.h"

namespace fiveg::net {

/// Queue discipline interface used by Link.
class QueueDiscipline {
 public:
  virtual ~QueueDiscipline() = default;

  /// Offers a packet at time `now`; false = dropped on entry.
  virtual bool push(Packet p, sim::Time now) = 0;

  /// Dequeues the next packet to transmit at time `now`, or nullopt when
  /// empty (CoDel may drop internally while dequeuing).
  virtual std::optional<Packet> pop(sim::Time now) = 0;

  [[nodiscard]] virtual bool empty() const = 0;
  [[nodiscard]] virtual std::uint64_t size_packets() const = 0;
  [[nodiscard]] virtual std::uint64_t size_bytes() const = 0;
  [[nodiscard]] virtual std::uint64_t drops() const = 0;
  [[nodiscard]] virtual std::uint64_t max_depth_bytes() const = 0;
};

/// RFC 8289 CoDel on top of a byte-bounded FIFO.
class CoDelQueue final : public QueueDiscipline {
 public:
  struct Config {
    sim::Time target = 5 * sim::kMillisecond;     // acceptable sojourn
    sim::Time interval = 100 * sim::kMillisecond; // initial drop spacing
    std::uint64_t capacity_bytes = 4 * 1024 * 1024;
  };

  CoDelQueue() : CoDelQueue(Config{}) {}
  explicit CoDelQueue(const Config& config) : config_(config) {}

  bool push(Packet p, sim::Time now) override;
  std::optional<Packet> pop(sim::Time now) override;

  [[nodiscard]] bool empty() const override { return q_.empty(); }
  [[nodiscard]] std::uint64_t size_packets() const override {
    return q_.size();
  }
  [[nodiscard]] std::uint64_t size_bytes() const override { return bytes_; }
  [[nodiscard]] std::uint64_t drops() const override { return drops_; }
  [[nodiscard]] std::uint64_t max_depth_bytes() const override {
    return max_depth_bytes_;
  }

 private:
  struct Entry {
    Packet packet;
    sim::Time enqueued_at;
  };

  [[nodiscard]] bool over_target(const Entry& e, sim::Time now) const;
  [[nodiscard]] sim::Time control_law(sim::Time t) const;

  Config config_;
  std::deque<Entry> q_;
  std::uint64_t bytes_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t max_depth_bytes_ = 0;

  // CoDel state machine.
  bool dropping_ = false;
  sim::Time first_above_time_ = 0;
  sim::Time drop_next_ = 0;
  std::uint32_t drop_count_ = 0;
  std::uint32_t last_drop_count_ = 0;
};

}  // namespace fiveg::net

// Queue disciplines. The paper's buffer-sizing discussion (Sec. 4.2) pits
// two fixes against each other: grow drop-tail buffers (cheap, but invites
// bufferbloat) or deploy smarter queues. This module implements the
// bufferbloat-era toolbox behind one pluggable interface: drop-tail (the
// measured status quo), CoDel (RFC 8289), FQ-CoDel (flow hashing + DRR
// across per-flow CoDel queues, RFC 8290 shape) and RED (EWMA average
// queue with min/max thresholds). Every AQM can CE-mark ECT packets
// instead of dropping (RFC 3168 ECN).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/packet.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace fiveg::net {

/// Queue discipline interface used by Link.
class QueueDiscipline {
 public:
  virtual ~QueueDiscipline() = default;

  /// Offers a packet at time `now`; false = dropped on entry.
  virtual bool push(Packet p, sim::Time now) = 0;

  /// Dequeues the next packet to transmit at time `now`, or nullopt when
  /// empty (AQMs may drop internally while dequeuing).
  virtual std::optional<Packet> pop(sim::Time now) = 0;

  [[nodiscard]] virtual bool empty() const = 0;
  [[nodiscard]] virtual std::uint64_t size_packets() const = 0;
  [[nodiscard]] virtual std::uint64_t size_bytes() const = 0;
  [[nodiscard]] virtual std::uint64_t drops() const = 0;
  [[nodiscard]] virtual std::uint64_t max_depth_bytes() const = 0;
  /// Packets CE-marked instead of dropped (0 unless ECN is enabled).
  [[nodiscard]] virtual std::uint64_t marks() const = 0;
  /// Queueing delay of the most recently popped packet (enqueue -> pop).
  [[nodiscard]] virtual sim::Time last_sojourn() const = 0;
  /// Short stable id for metric labels: "droptail", "codel", ...
  [[nodiscard]] virtual std::string_view kind_name() const = 0;
};

/// Which discipline a link runs, plus every tuning knob. One struct (not a
/// variant) so experiment sweeps can tweak a field without re-dispatching.
enum class QdiscKind { kDropTail, kCoDel, kFqCoDel, kRed };

[[nodiscard]] std::string_view to_string(QdiscKind kind) noexcept;

struct QdiscConfig {
  QdiscKind kind = QdiscKind::kDropTail;
  /// CE-mark ECT packets instead of dropping (AQM decisions only; a full
  /// buffer still tail-drops — ECN cannot conjure space).
  bool ecn = false;
  // CoDel / FQ-CoDel.
  sim::Time target = 5 * sim::kMillisecond;      // acceptable sojourn
  sim::Time interval = 100 * sim::kMillisecond;  // initial drop spacing
  // FQ-CoDel.
  std::uint32_t quantum_bytes = 1514;  // DRR quantum (one full-size frame)
  std::uint32_t flows = 64;            // hash buckets
  // RED. 0 thresholds = derive from capacity (min = 15%, max = 45%).
  std::uint64_t red_min_bytes = 0;
  std::uint64_t red_max_bytes = 0;
  double red_max_p = 0.1;      // drop probability at max threshold
  double red_weight = 0.002;   // EWMA weight for the average queue
};

/// Builds a discipline over `capacity_bytes` of buffer. `link_name` seeds
/// RED's private drop stream so probabilistic drops are deterministic per
/// link and independent of construction order.
[[nodiscard]] std::unique_ptr<QueueDiscipline> make_qdisc(
    const QdiscConfig& config, std::uint64_t capacity_bytes,
    std::string_view link_name);

/// Parses a CLI spec like "codel", "fq_codel+ecn", "red", "droptail".
/// Returns false (out untouched) on an unknown spec.
[[nodiscard]] bool parse_qdisc_spec(std::string_view spec, QdiscConfig* out);

/// The measured status quo: a byte-bounded FIFO that tail-drops, plus the
/// per-packet timestamps the sojourn metrics need. Behaviour (and the
/// drop/depth accounting) matches net::DropTailQueue exactly.
class DropTailQdisc final : public QueueDiscipline {
 public:
  explicit DropTailQdisc(std::uint64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  bool push(Packet p, sim::Time now) override;
  std::optional<Packet> pop(sim::Time now) override;

  [[nodiscard]] bool empty() const override { return q_.empty(); }
  [[nodiscard]] std::uint64_t size_packets() const override {
    return q_.size();
  }
  [[nodiscard]] std::uint64_t size_bytes() const override { return bytes_; }
  [[nodiscard]] std::uint64_t drops() const override { return drops_; }
  [[nodiscard]] std::uint64_t max_depth_bytes() const override {
    return max_depth_bytes_;
  }
  [[nodiscard]] std::uint64_t marks() const override { return 0; }
  [[nodiscard]] sim::Time last_sojourn() const override {
    return last_sojourn_;
  }
  [[nodiscard]] std::string_view kind_name() const override {
    return "droptail";
  }

 private:
  struct Entry {
    Packet packet;
    sim::Time enqueued_at;
  };

  std::uint64_t capacity_bytes_;
  std::deque<Entry> q_;
  std::uint64_t bytes_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t max_depth_bytes_ = 0;
  sim::Time last_sojourn_ = 0;
};

/// RFC 8289 CoDel on top of a byte-bounded FIFO. With `ecn` on, a
/// control-law "drop" of an ECT packet becomes a CE mark and the packet is
/// delivered; the state machine advances exactly as if it had dropped.
class CoDelQueue final : public QueueDiscipline {
 public:
  struct Config {
    sim::Time target = 5 * sim::kMillisecond;     // acceptable sojourn
    sim::Time interval = 100 * sim::kMillisecond; // initial drop spacing
    std::uint64_t capacity_bytes = 4 * 1024 * 1024;
    bool ecn = false;
  };

  CoDelQueue() : CoDelQueue(Config{}) {}
  explicit CoDelQueue(const Config& config) : config_(config) {}

  bool push(Packet p, sim::Time now) override;
  std::optional<Packet> pop(sim::Time now) override;

  [[nodiscard]] bool empty() const override { return q_.empty(); }
  [[nodiscard]] std::uint64_t size_packets() const override {
    return q_.size();
  }
  [[nodiscard]] std::uint64_t size_bytes() const override { return bytes_; }
  [[nodiscard]] std::uint64_t drops() const override { return drops_; }
  [[nodiscard]] std::uint64_t max_depth_bytes() const override {
    return max_depth_bytes_;
  }
  [[nodiscard]] std::uint64_t marks() const override { return marks_; }
  [[nodiscard]] sim::Time last_sojourn() const override {
    return last_sojourn_;
  }
  [[nodiscard]] std::string_view kind_name() const override {
    return "codel";
  }

 private:
  struct Entry {
    Packet packet;
    sim::Time enqueued_at;
  };

  [[nodiscard]] bool over_target(const Entry& e, sim::Time now) const;
  [[nodiscard]] sim::Time control_law(sim::Time t) const;
  /// True when the entry should be shed: ECT packets get CE-marked and the
  /// caller must deliver them; others are dropped (caller discards).
  [[nodiscard]] bool shed(Entry* e);

  Config config_;
  std::deque<Entry> q_;
  std::uint64_t bytes_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t marks_ = 0;
  std::uint64_t max_depth_bytes_ = 0;
  sim::Time last_sojourn_ = 0;

  // CoDel state machine.
  bool dropping_ = false;
  sim::Time first_above_time_ = 0;
  sim::Time drop_next_ = 0;
  std::uint32_t drop_count_ = 0;
  std::uint32_t last_drop_count_ = 0;
};

/// FQ-CoDel (RFC 8290 shape): packets hash by flow id into buckets, each
/// bucket runs its own CoDel state machine, and a deficit-round-robin
/// scheduler with a new-flow priority list serves the buckets. Heavy flows
/// build sojourn (and get throttled) in their own bucket; sparse flows
/// pass through untouched — the flow-isolation property the incast and
/// mixed-RTT experiments measure.
class FqCoDelQueue final : public QueueDiscipline {
 public:
  struct Config {
    sim::Time target = 5 * sim::kMillisecond;
    sim::Time interval = 100 * sim::kMillisecond;
    std::uint64_t capacity_bytes = 4 * 1024 * 1024;  // shared across flows
    std::uint32_t quantum_bytes = 1514;
    std::uint32_t flows = 64;
    bool ecn = false;
  };

  FqCoDelQueue() : FqCoDelQueue(Config{}) {}
  explicit FqCoDelQueue(const Config& config);

  bool push(Packet p, sim::Time now) override;
  std::optional<Packet> pop(sim::Time now) override;

  [[nodiscard]] bool empty() const override { return packets_ == 0; }
  [[nodiscard]] std::uint64_t size_packets() const override {
    return packets_;
  }
  [[nodiscard]] std::uint64_t size_bytes() const override { return bytes_; }
  [[nodiscard]] std::uint64_t drops() const override { return drops_; }
  [[nodiscard]] std::uint64_t max_depth_bytes() const override {
    return max_depth_bytes_;
  }
  [[nodiscard]] std::uint64_t marks() const override { return marks_; }
  [[nodiscard]] sim::Time last_sojourn() const override {
    return last_sojourn_;
  }
  [[nodiscard]] std::string_view kind_name() const override {
    return "fq_codel";
  }

  /// Which bucket a flow hashes to (exposed so tests can build collision-
  /// free flow sets).
  [[nodiscard]] std::uint32_t bucket_of(std::uint32_t flow_id) const;

 private:
  struct Entry {
    Packet packet;
    sim::Time enqueued_at;
  };
  // One hash bucket: its own FIFO, CoDel state and DRR deficit.
  struct Bucket {
    std::deque<Entry> q;
    std::uint64_t bytes = 0;
    int deficit = 0;
    bool queued = false;  // on new_flows_ or old_flows_
    // Per-bucket CoDel state machine.
    bool dropping = false;
    sim::Time first_above_time = 0;
    sim::Time drop_next = 0;
    std::uint32_t drop_count = 0;
    std::uint32_t last_drop_count = 0;
  };

  [[nodiscard]] sim::Time control_law(const Bucket& b, sim::Time t) const;
  /// CoDel dequeue for one bucket; nullopt when the bucket ran dry.
  std::optional<Packet> bucket_pop(Bucket* b, sim::Time now);
  [[nodiscard]] bool shed(Bucket* b, Entry* e);

  Config config_;
  std::vector<Bucket> buckets_;
  std::deque<std::uint32_t> new_flows_;  // bucket indices, served first
  std::deque<std::uint32_t> old_flows_;
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t marks_ = 0;
  std::uint64_t max_depth_bytes_ = 0;
  sim::Time last_sojourn_ = 0;
};

/// Random Early Detection (Floyd & Jacobson 1993): an EWMA of the queue
/// depth gates probabilistic early drops between a min and max threshold;
/// above max every arrival drops. With `ecn` on, an early "drop" of an ECT
/// packet becomes a CE mark (forced drops above max still drop).
class RedQueue final : public QueueDiscipline {
 public:
  struct Config {
    std::uint64_t capacity_bytes = 4 * 1024 * 1024;
    std::uint64_t min_bytes = 0;  // 0 = 15% of capacity
    std::uint64_t max_bytes = 0;  // 0 = 45% of capacity
    double max_p = 0.1;           // early-drop probability at max_bytes
    double weight = 0.002;        // EWMA weight
    bool ecn = false;
    std::uint64_t seed = 0x8ed;   // private drop stream
  };

  RedQueue() : RedQueue(Config{}) {}
  explicit RedQueue(const Config& config);

  bool push(Packet p, sim::Time now) override;
  std::optional<Packet> pop(sim::Time now) override;

  [[nodiscard]] bool empty() const override { return q_.empty(); }
  [[nodiscard]] std::uint64_t size_packets() const override {
    return q_.size();
  }
  [[nodiscard]] std::uint64_t size_bytes() const override { return bytes_; }
  [[nodiscard]] std::uint64_t drops() const override { return drops_; }
  [[nodiscard]] std::uint64_t max_depth_bytes() const override {
    return max_depth_bytes_;
  }
  [[nodiscard]] std::uint64_t marks() const override { return marks_; }
  [[nodiscard]] sim::Time last_sojourn() const override {
    return last_sojourn_;
  }
  [[nodiscard]] std::string_view kind_name() const override { return "red"; }

  /// Current EWMA of the queue depth in bytes (for tests).
  [[nodiscard]] double avg_bytes() const noexcept { return avg_bytes_; }

 private:
  struct Entry {
    Packet packet;
    sim::Time enqueued_at;
  };

  Config config_;
  sim::Rng rng_;
  std::deque<Entry> q_;
  std::uint64_t bytes_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t marks_ = 0;
  std::uint64_t max_depth_bytes_ = 0;
  sim::Time last_sojourn_ = 0;

  double avg_bytes_ = 0.0;  // EWMA of the instantaneous depth
  int count_ = -1;          // arrivals since the last early drop/mark
};

}  // namespace fiveg::net

#include "net/cross_traffic.h"

namespace fiveg::net {

CrossTraffic::CrossTraffic(sim::Simulator* simulator, Link* link,
                           Config config, sim::Rng rng)
    : sim_(simulator), link_(link), config_(config), rng_(rng) {}

void CrossTraffic::start(sim::Time until) {
  until_ = until;
  begin_off();
}

double CrossTraffic::mean_offered_bps() const noexcept {
  const double duty =
      config_.mean_on_s / (config_.mean_on_s + config_.mean_off_s);
  return duty * 0.5 * (config_.min_rate_bps + config_.max_rate_bps);
}

void CrossTraffic::begin_off() {
  if (sim_->now() >= until_) return;
  const double gap_s = rng_.exponential(1.0 / config_.mean_off_s);
  sim_->schedule_in(sim::from_seconds(gap_s), [this] { begin_on(); });
}

void CrossTraffic::begin_on() {
  if (sim_->now() >= until_) return;
  const double rate =
      rng_.uniform(config_.min_rate_bps, config_.max_rate_bps);
  const double on_s = rng_.exponential(1.0 / config_.mean_on_s);
  const sim::Time burst_end = sim_->now() + sim::from_seconds(on_s);
  emit(rate, burst_end);
  sim_->schedule_at(burst_end, [this] { begin_off(); });
}

void CrossTraffic::emit(double rate_bps, sim::Time burst_end) {
  if (sim_->now() >= burst_end || sim_->now() >= until_) return;
  Packet p;
  p.flow_id = config_.flow_id;
  p.seq = sent_++;
  p.size_bytes = config_.packet_bytes;
  p.sent_at = sim_->now();
  // Ambient traffic shares only this router: it exits the measured path
  // right after the contended link (TTL expires at the next node).
  p.ttl = 1;
  link_->send(std::move(p));
  const double bits = 8.0 * config_.packet_bytes;
  const auto gap =
      static_cast<sim::Time>(bits / rate_bps * static_cast<double>(sim::kSecond));
  sim_->schedule_in(gap, [this, rate_bps, burst_end] {
    emit(rate_bps, burst_end);
  });
}

}  // namespace fiveg::net

// The measurement campus: a 0.5 km x 0.92 km urban block with brick/concrete
// buildings, matching the paper's survey area. The map answers the radio
// model's questions: is a point indoor, is a path line-of-sight, and how much
// penetration loss does a path accumulate.
//
// Queries are served by a uniform-grid spatial index over the building
// footprints, so each lookup visits only the grid cells a point or segment
// touches instead of scanning every building. The index is a pure
// acceleration structure: candidate buildings are evaluated with the same
// predicates in the same (ascending) order as the original brute-force
// scans, so every result — including floating-point penetration sums — is
// bit-identical to the unindexed implementation. On top of the index,
// small bounded memos keyed on the exact coordinate bit patterns absorb the
// repeat lookups coverage sweeps generate (co-sited sectors share one
// mast->UE segment; successive KPI passes revisit the same sample points).
//
// Thread-safety: point lookups go through a small internal memo, so const
// queries are NOT safe to call concurrently on one CampusMap instance. Every
// user of the map (Scenario, experiments, benchmarks) constructs its own
// instance per thread, matching the RadioEnvironment memo contract.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "geo/building.h"
#include "geo/geometry.h"
#include "sim/rng.h"

namespace fiveg::geo {

/// Immutable campus map.
class CampusMap {
 public:
  CampusMap(Rect bounds, std::vector<Building> buildings);

  [[nodiscard]] const Rect& bounds() const noexcept { return bounds_; }
  [[nodiscard]] const std::vector<Building>& buildings() const noexcept {
    return buildings_;
  }

  /// True when the point lies inside any building footprint.
  [[nodiscard]] bool is_indoor(const Point& p) const noexcept;

  /// The first building (in construction order) whose footprint contains
  /// `p`, or nullptr when the point is outdoors.
  [[nodiscard]] const Building* containing_building(
      const Point& p) const noexcept;

  /// True when no building blocks the direct path.
  [[nodiscard]] bool has_los(const Segment& path) const noexcept;

  /// Total wall penetration loss along the direct path, in dB at `freq_ghz`.
  [[nodiscard]] double penetration_db(const Segment& path,
                                      double freq_ghz) const noexcept;

  /// Outdoor-to-indoor loss for a UE at `p`: one exterior wall of the
  /// containing building plus a small interior-clutter term; 0 outdoors.
  /// (Outdoor NLoS blockage is already part of the UMa NLoS fit, so only
  /// indoor endpoints take explicit penetration.)
  [[nodiscard]] double o2i_loss_db(const Point& p,
                                   double freq_ghz) const noexcept;

  /// A uniformly random outdoor point (rejection sampling).
  [[nodiscard]] Point random_outdoor_point(sim::Rng& rng) const;

  /// A uniformly random point anywhere in bounds.
  [[nodiscard]] Point random_point(sim::Rng& rng) const;

 private:
  // Builds the uniform grid over the union of `bounds_` and all footprints
  // (so clamped cell coordinates can never miss a building).
  void build_index();

  [[nodiscard]] int col(double x) const noexcept;
  [[nodiscard]] int row(double y) const noexcept;
  // [first, last) building indices (ascending) registered in cell (ix, iy).
  [[nodiscard]] std::pair<const std::uint32_t*, const std::uint32_t*>
  cell_items(int ix, int iy) const noexcept;

  // Invokes `f(ix, iy)` for every grid cell a segment may touch (a small
  // conservative superset); stops early when `f` returns false.
  template <class F>
  bool for_each_segment_cell(const Segment& s, F&& f) const;

  // Union of candidate bitmasks over every cell the segment may touch
  // (only valid when cell_mask_ is populated, i.e. <= 64 buildings).
  [[nodiscard]] std::uint64_t segment_mask(const Segment& s) const noexcept;

  Rect bounds_;
  std::vector<Building> buildings_;

  // Uniform grid (CSR layout): cell (ix, iy) holds the ascending indices of
  // buildings whose footprint overlaps it.
  Point grid_min_;
  double cell_w_ = 1.0, cell_h_ = 1.0;
  double inv_cell_w_ = 1.0, inv_cell_h_ = 1.0;
  int nx_ = 1, ny_ = 1;
  std::vector<std::uint32_t> cell_start_;
  std::vector<std::uint32_t> cell_items_;
  // When the map has <= 64 buildings (every paper campus), each cell also
  // carries a bitmask of its candidates so segment traversal is one OR per
  // cell instead of an item loop.
  std::vector<std::uint64_t> cell_mask_;

  // Direct-mapped memos keyed on the exact bit patterns of the query
  // coordinates. Coverage grids and KPI passes revisit the same sample
  // points, and co-sited sectors ask for the same mast->UE segment several
  // times per sample. Bounded (fixed slot count, deterministic eviction)
  // and exact: values are pure functions of the keys, so a hit returns
  // precisely what the scan would have recomputed.
  struct PointSlot {
    std::uint64_t xb = 0, yb = 0;
    std::uint32_t val = 0;  // 0 = empty, 1 = outdoor, i + 2 = buildings_[i]
  };
  struct LosSlot {
    std::uint64_t ax = 0, ay = 0, bx = 0, by = 0;
    std::uint32_t val = 0;  // 0 = empty, 1 = blocked, 2 = line-of-sight
  };
  struct PenSlot {
    std::uint64_t ax = 0, ay = 0, bx = 0, by = 0, fb = 0;
    double val = 0.0;
    std::uint32_t used = 0;
  };
  // Each memo is 2-way set-associative with LRU replacement. Replacement
  // state evolves as a pure function of the (deterministic) query sequence,
  // and hits return exactly what a fresh scan would recompute, so results
  // are identical whatever the hit pattern.
  mutable std::vector<PointSlot> point_memo_;
  mutable std::vector<LosSlot> los_memo_;
  mutable std::vector<PenSlot> pen_memo_;
  // One LRU way index per 2-slot set.
  mutable std::vector<std::uint8_t> point_lru_;
  mutable std::vector<std::uint8_t> los_lru_;
  mutable std::vector<std::uint8_t> pen_lru_;

  [[nodiscard]] bool has_los_uncached(const Segment& path) const noexcept;
  [[nodiscard]] double penetration_db_uncached(const Segment& path,
                                               double freq_ghz) const noexcept;
};

/// Builds the paper's campus: `bounds` 500 m x 920 m, a street grid with
/// rectangular concrete buildings on most blocks and some open areas
/// (sports fields, lawns). Deterministic for a given rng stream.
[[nodiscard]] CampusMap make_campus(sim::Rng rng);

/// Generalized city builder: the same street-grid generator over a
/// `width_m` x `height_m` extent with `open_fraction` of blocks left as
/// open space. make_campus(rng) is exactly
/// make_city_campus(rng, 500, 920, 0.2) — identical draw order, so the
/// paper campus (and every golden derived from it) is unchanged.
[[nodiscard]] CampusMap make_city_campus(sim::Rng rng, double width_m,
                                         double height_m,
                                         double open_fraction = 0.25);

}  // namespace fiveg::geo

// The measurement campus: a 0.5 km x 0.92 km urban block with brick/concrete
// buildings, matching the paper's survey area. The map answers the radio
// model's questions: is a point indoor, is a path line-of-sight, and how much
// penetration loss does a path accumulate.
#pragma once

#include <vector>

#include "geo/building.h"
#include "geo/geometry.h"
#include "sim/rng.h"

namespace fiveg::geo {

/// Immutable campus map.
class CampusMap {
 public:
  CampusMap(Rect bounds, std::vector<Building> buildings);

  [[nodiscard]] const Rect& bounds() const noexcept { return bounds_; }
  [[nodiscard]] const std::vector<Building>& buildings() const noexcept {
    return buildings_;
  }

  /// True when the point lies inside any building footprint.
  [[nodiscard]] bool is_indoor(const Point& p) const noexcept;

  /// True when no building blocks the direct path.
  [[nodiscard]] bool has_los(const Segment& path) const noexcept;

  /// Total wall penetration loss along the direct path, in dB at `freq_ghz`.
  [[nodiscard]] double penetration_db(const Segment& path,
                                      double freq_ghz) const noexcept;

  /// Outdoor-to-indoor loss for a UE at `p`: one exterior wall of the
  /// containing building plus a small interior-clutter term; 0 outdoors.
  /// (Outdoor NLoS blockage is already part of the UMa NLoS fit, so only
  /// indoor endpoints take explicit penetration.)
  [[nodiscard]] double o2i_loss_db(const Point& p,
                                   double freq_ghz) const noexcept;

  /// A uniformly random outdoor point (rejection sampling).
  [[nodiscard]] Point random_outdoor_point(sim::Rng& rng) const;

  /// A uniformly random point anywhere in bounds.
  [[nodiscard]] Point random_point(sim::Rng& rng) const;

 private:
  Rect bounds_;
  std::vector<Building> buildings_;
};

/// Builds the paper's campus: `bounds` 500 m x 920 m, a street grid with
/// rectangular concrete buildings on most blocks and some open areas
/// (sports fields, lawns). Deterministic for a given rng stream.
[[nodiscard]] CampusMap make_campus(sim::Rng rng);

}  // namespace fiveg::geo

// Buildings: rectangular footprints with a material that sets per-wall
// penetration loss. The paper's campus has brick-and-concrete construction,
// which drives its 50.59% indoor bit-rate drop at 3.5 GHz. Penetration is
// defined inline: it runs once per candidate building per radio sample.
#pragma once

#include <string>

#include "geo/geometry.h"

namespace fiveg::geo {

/// Wall material: penetration loss grows with carrier frequency at a
/// material-specific slope (values in line with 3GPP TR 38.901 O2I and the
/// 2.4 GHz construction-material sounding the paper cites).
enum class Material {
  kConcrete,  // campus default: heavy loss
  kBrick,
  kDrywall,   // light US-style construction, noted in the paper as lossless-ish
  kGlass,
};

/// Per-wall penetration loss in dB for a material at carrier `freq_ghz`.
[[nodiscard]] inline double wall_loss_db(Material m, double freq_ghz) noexcept {
  // Linear-in-frequency per-wall models, anchored so concrete gives
  // ~10 dB at 1.8 GHz and ~16.5 dB at 3.5 GHz — the gap that produces the
  // paper's 20% (4G) vs 51% (5G) indoor bit-rate drop.
  switch (m) {
    case Material::kConcrete:
      return 3.0 + 3.85 * freq_ghz;
    case Material::kBrick:
      return 2.0 + 3.0 * freq_ghz;
    case Material::kDrywall:
      return 1.0 + 0.8 * freq_ghz;
    case Material::kGlass:
      return 0.5 + 0.6 * freq_ghz;
  }
  return 0.0;
}

/// A building footprint.
struct Building {
  Rect footprint;
  Material material = Material::kConcrete;
  std::string name;

  [[nodiscard]] bool contains(const Point& p) const noexcept {
    return footprint.contains(p);
  }

  /// Total penetration loss a direct path through/into this building
  /// accumulates, in dB at `freq_ghz`.
  [[nodiscard]] double penetration_db(const Segment& path,
                                      double freq_ghz) const noexcept {
    const int walls = footprint.crossings(path);
    if (walls == 0 && contains(path.a) && contains(path.b)) {
      // Fully-indoor short hop: attenuate by interior clutter, not walls.
      return 0.4 * wall_loss_db(material, freq_ghz);
    }
    return walls * wall_loss_db(material, freq_ghz);
  }
};

}  // namespace fiveg::geo

// Buildings: rectangular footprints with a material that sets per-wall
// penetration loss. The paper's campus has brick-and-concrete construction,
// which drives its 50.59% indoor bit-rate drop at 3.5 GHz.
#pragma once

#include <string>

#include "geo/geometry.h"

namespace fiveg::geo {

/// Wall material: penetration loss grows with carrier frequency at a
/// material-specific slope (values in line with 3GPP TR 38.901 O2I and the
/// 2.4 GHz construction-material sounding the paper cites).
enum class Material {
  kConcrete,  // campus default: heavy loss
  kBrick,
  kDrywall,   // light US-style construction, noted in the paper as lossless-ish
  kGlass,
};

/// Per-wall penetration loss in dB for a material at carrier `freq_ghz`.
[[nodiscard]] double wall_loss_db(Material m, double freq_ghz) noexcept;

/// A building footprint.
struct Building {
  Rect footprint;
  Material material = Material::kConcrete;
  std::string name;

  [[nodiscard]] bool contains(const Point& p) const noexcept {
    return footprint.contains(p);
  }

  /// Total penetration loss a direct path through/into this building
  /// accumulates, in dB at `freq_ghz`.
  [[nodiscard]] double penetration_db(const Segment& path,
                                      double freq_ghz) const noexcept;
};

}  // namespace fiveg::geo

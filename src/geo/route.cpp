#include "geo/route.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace fiveg::geo {

Route::Route(std::vector<Point> waypoints) : waypoints_(std::move(waypoints)) {
  if (waypoints_.size() < 2) {
    throw std::invalid_argument("Route needs at least two waypoints");
  }
  cumulative_.reserve(waypoints_.size());
  cumulative_.push_back(0.0);
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    total_length_ += distance(waypoints_[i - 1], waypoints_[i]);
    cumulative_.push_back(total_length_);
  }
}

Point Route::position_at(double d) const noexcept {
  if (d <= 0.0) return waypoints_.front();
  if (d >= total_length_) return waypoints_.back();
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), d);
  const auto idx = static_cast<std::size_t>(it - cumulative_.begin());
  // idx >= 1 because cumulative_[0] == 0 <= d.
  const double seg_start = cumulative_[idx - 1];
  const double seg_len = cumulative_[idx] - seg_start;
  const double t = seg_len > 0.0 ? (d - seg_start) / seg_len : 0.0;
  return Segment{waypoints_[idx - 1], waypoints_[idx]}.at(t);
}

std::vector<Point> Route::samples(double spacing_m) const {
  if (spacing_m <= 0.0) {
    throw std::invalid_argument("sample spacing must be positive");
  }
  std::vector<Point> out;
  for (double d = 0.0; d < total_length_; d += spacing_m) {
    out.push_back(position_at(d));
  }
  out.push_back(waypoints_.back());
  return out;
}

Route make_waypoint_route(const CampusMap& campus, sim::Rng& rng,
                          int n_waypoints) {
  const int n = std::max(n_waypoints, 2);
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back(campus.random_outdoor_point(rng));
  }
  return Route(std::move(pts));
}

Route make_survey_route(const CampusMap& campus, double lane_spacing_m) {
  const Rect& b = campus.bounds();
  std::vector<Point> pts;
  bool up = true;
  for (double x = b.min.x + 5.0; x <= b.max.x - 5.0; x += lane_spacing_m) {
    const double y0 = up ? b.min.y + 5.0 : b.max.y - 5.0;
    const double y1 = up ? b.max.y - 5.0 : b.min.y + 5.0;
    pts.push_back({x, y0});
    pts.push_back({x, y1});
    up = !up;
  }
  return Route(std::move(pts));
}

}  // namespace fiveg::geo

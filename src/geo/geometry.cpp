#include "geo/geometry.h"

#include <cmath>

namespace fiveg::geo {

double distance(const Point& a, const Point& b) noexcept {
  return std::hypot(a.x - b.x, a.y - b.y);
}

double azimuth_deg(const Point& from, const Point& to) noexcept {
  const double rad = std::atan2(to.y - from.y, to.x - from.x);
  double deg = rad * 180.0 / M_PI;
  if (deg < 0) deg += 360.0;
  return deg;
}

double angle_diff_deg(double a_deg, double b_deg) noexcept {
  double d = std::fmod(std::fabs(a_deg - b_deg), 360.0);
  return d > 180.0 ? 360.0 - d : d;
}

}  // namespace fiveg::geo

#include "geo/geometry.h"

#include <algorithm>
#include <cmath>

namespace fiveg::geo {

double distance(const Point& a, const Point& b) noexcept {
  return std::hypot(a.x - b.x, a.y - b.y);
}

double azimuth_deg(const Point& from, const Point& to) noexcept {
  const double rad = std::atan2(to.y - from.y, to.x - from.x);
  double deg = rad * 180.0 / M_PI;
  if (deg < 0) deg += 360.0;
  return deg;
}

double angle_diff_deg(double a_deg, double b_deg) noexcept {
  double d = std::fmod(std::fabs(a_deg - b_deg), 360.0);
  return d > 180.0 ? 360.0 - d : d;
}

Point Segment::at(double t) const noexcept {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

bool Rect::contains(const Point& p) const noexcept {
  return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
}

Point Rect::center() const noexcept {
  return {(min.x + max.x) / 2.0, (min.y + max.y) / 2.0};
}

namespace {

// Liang-Barsky clipping: returns the [t_enter, t_exit] parameter range of
// the segment inside the rect, or nullopt when it misses entirely.
std::optional<std::pair<double, double>> clip(const Rect& r,
                                              const Segment& s) noexcept {
  const double dx = s.b.x - s.a.x;
  const double dy = s.b.y - s.a.y;
  double t0 = 0.0, t1 = 1.0;

  const auto clip_axis = [&](double p, double q) {
    // Moving by p along this axis; q is the distance to the boundary.
    if (p == 0.0) return q >= 0.0;  // parallel: inside iff q non-negative
    const double t = q / p;
    if (p < 0.0) {
      if (t > t1) return false;
      t0 = std::max(t0, t);
    } else {
      if (t < t0) return false;
      t1 = std::min(t1, t);
    }
    return true;
  };

  if (!clip_axis(-dx, s.a.x - r.min.x)) return std::nullopt;
  if (!clip_axis(dx, r.max.x - s.a.x)) return std::nullopt;
  if (!clip_axis(-dy, s.a.y - r.min.y)) return std::nullopt;
  if (!clip_axis(dy, r.max.y - s.a.y)) return std::nullopt;
  if (t0 > t1) return std::nullopt;
  return std::make_pair(t0, t1);
}

}  // namespace

bool Rect::intersects(const Segment& s) const noexcept {
  return clip(*this, s).has_value();
}

int Rect::crossings(const Segment& s) const noexcept {
  if (!clip(*this, s)) return 0;
  const bool a_in = contains(s.a);
  const bool b_in = contains(s.b);
  if (a_in && b_in) return 0;  // fully indoor: no wall on the path
  if (a_in || b_in) return 1;  // enters or leaves once
  return 2;                    // passes through
}

}  // namespace fiveg::geo

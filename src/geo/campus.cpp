#include "geo/campus.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace fiveg::geo {

CampusMap::CampusMap(Rect bounds, std::vector<Building> buildings)
    : bounds_(bounds), buildings_(std::move(buildings)) {
  if (bounds_.width() <= 0 || bounds_.height() <= 0) {
    throw std::invalid_argument("CampusMap bounds must be non-degenerate");
  }
  build_index();
}

void CampusMap::build_index() {
  // Grid domain: bounds plus every footprint, so clamped coordinates are
  // always conservative (a building outside `bounds_` still lands in an
  // edge cell, as does any query point beyond it).
  Point lo = bounds_.min, hi = bounds_.max;
  for (const Building& b : buildings_) {
    lo.x = std::min(lo.x, b.footprint.min.x);
    lo.y = std::min(lo.y, b.footprint.min.y);
    hi.x = std::max(hi.x, b.footprint.max.x);
    hi.y = std::max(hi.y, b.footprint.max.y);
  }
  grid_min_ = lo;

  // Aim for ~1 cell per building: segment traversal pays per column it
  // crosses, and with per-cell candidate bitmasks a slightly denser cell is
  // cheaper than extra columns.
  const double w = hi.x - lo.x, h = hi.y - lo.y;
  const double target_cells =
      std::max(16.0, 1.0 * static_cast<double>(buildings_.size()));
  const double edge = std::sqrt(w * h / target_cells);
  nx_ = std::clamp(static_cast<int>(std::ceil(w / std::max(edge, 1e-9))), 1,
                   256);
  ny_ = std::clamp(static_cast<int>(std::ceil(h / std::max(edge, 1e-9))), 1,
                   256);
  cell_w_ = w / nx_;
  cell_h_ = h / ny_;
  inv_cell_w_ = 1.0 / cell_w_;
  inv_cell_h_ = 1.0 / cell_h_;

  // CSR fill: count, prefix-sum, then place. Iterating buildings in
  // ascending index order keeps each cell's candidate list ascending, which
  // preserves the brute-force scan order (first-match and summation order).
  const auto n_cells = static_cast<std::size_t>(nx_) * ny_;
  std::vector<std::uint32_t> counts(n_cells, 0);
  const auto cell_range = [&](const Rect& f) {
    return std::array<int, 4>{col(f.min.x), col(f.max.x), row(f.min.y),
                              row(f.max.y)};
  };
  for (const Building& b : buildings_) {
    const auto [x0, x1, y0, y1] = cell_range(b.footprint);
    for (int iy = y0; iy <= y1; ++iy) {
      for (int ix = x0; ix <= x1; ++ix) {
        ++counts[static_cast<std::size_t>(iy) * nx_ + ix];
      }
    }
  }
  cell_start_.assign(n_cells + 1, 0);
  for (std::size_t i = 0; i < n_cells; ++i) {
    cell_start_[i + 1] = cell_start_[i] + counts[i];
  }
  cell_items_.resize(cell_start_.back());
  std::vector<std::uint32_t> fill(cell_start_.begin(),
                                  cell_start_.end() - 1);
  for (std::uint32_t i = 0; i < buildings_.size(); ++i) {
    const auto [x0, x1, y0, y1] = cell_range(buildings_[i].footprint);
    for (int iy = y0; iy <= y1; ++iy) {
      for (int ix = x0; ix <= x1; ++ix) {
        cell_items_[fill[static_cast<std::size_t>(iy) * nx_ + ix]++] = i;
      }
    }
  }
  if (buildings_.size() <= 64) {
    cell_mask_.assign(n_cells, 0);
    for (std::size_t c = 0; c < n_cells; ++c) {
      for (std::uint32_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
        cell_mask_[c] |= std::uint64_t{1} << cell_items_[k];
      }
    }
  }
  // Memo capacities cover one coverage-grid KPI pass: a 50x46 grid is 2300
  // point keys, and times ~20 distinct mast positions ~46k segment keys.
  // Sets are 2-way, so at these sizes the expected set load stays below
  // ~0.3 and hits dominate. Sizes must be powers of two (index is masked).
  point_memo_.assign(8192, PointSlot{});
  los_memo_.assign(131072, LosSlot{});
  pen_memo_.assign(16384, PenSlot{});
  point_lru_.assign(point_memo_.size() / 2, 0);
  los_lru_.assign(los_memo_.size() / 2, 0);
  pen_lru_.assign(pen_memo_.size() / 2, 0);
}

namespace {

// Mixes coordinate bit patterns into a memo slot index.
inline std::uint64_t mix_bits(std::uint64_t h) noexcept {
  h *= 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  return h;
}

// Folds another coordinate's bit pattern into a running hash.
inline std::uint64_t mix_key(std::uint64_t h, std::uint64_t k) noexcept {
  return mix_bits(h ^ k);
}

}  // namespace

int CampusMap::col(double x) const noexcept {
  const auto ix =
      static_cast<int>(std::floor((x - grid_min_.x) * inv_cell_w_));
  return std::clamp(ix, 0, nx_ - 1);
}

int CampusMap::row(double y) const noexcept {
  const auto iy =
      static_cast<int>(std::floor((y - grid_min_.y) * inv_cell_h_));
  return std::clamp(iy, 0, ny_ - 1);
}

std::pair<const std::uint32_t*, const std::uint32_t*> CampusMap::cell_items(
    int ix, int iy) const noexcept {
  const auto c = static_cast<std::size_t>(iy) * nx_ + ix;
  return {cell_items_.data() + cell_start_[c],
          cell_items_.data() + cell_start_[c + 1]};
}

namespace {

// Fractional margin (in cell units) by which segment row ranges are widened.
// Column and point lookups need no margin: the index registration and the
// query evaluate the *same* monotone expression on the *same* coordinates,
// so their roundings agree. Only the per-column slab intersection computes
// *new* y values (two FP ops off the exact ones, ~1e-13 relative); 1e-9
// cell-widths dwarfs that error while visiting an extra row only when the
// segment grazes a cell boundary.
constexpr double kRowMargin = 1e-9;

}  // namespace

// Column-slab traversal: for each grid column the segment's x-range covers,
// visit the rows its y-range within that slab covers. The visited set is a
// conservative superset of the cells the segment passes through (see
// kRowMargin); superset visits only cost a few extra (exact) candidate
// tests, so results cannot change.
template <class F>
bool CampusMap::for_each_segment_cell(const Segment& s, F&& f) const {
  const int ix0 = col(std::min(s.a.x, s.b.x));
  const int ix1 = col(std::max(s.a.x, s.b.x));
  const double dx = s.b.x - s.a.x;
  const double dy = s.b.y - s.a.y;

  const auto row_lo = [&](double y) {
    const double g = (y - grid_min_.y) * inv_cell_h_;
    double fl = std::floor(g);
    if (g - fl < kRowMargin) fl -= 1.0;
    return std::clamp(static_cast<int>(fl), 0, ny_ - 1);
  };
  const auto row_hi = [&](double y) {
    const double g = (y - grid_min_.y) * inv_cell_h_;
    double fl = std::floor(g);
    if (fl + 1.0 - g < kRowMargin) fl += 1.0;
    return std::clamp(static_cast<int>(fl), 0, ny_ - 1);
  };

  if (ix0 == ix1 || dx == 0.0) {
    const int ix = ix0;
    const int iy0 = row_lo(std::min(s.a.y, s.b.y));
    const int iy1 = row_hi(std::max(s.a.y, s.b.y));
    for (int iy = iy0; iy <= iy1; ++iy) {
      if (!f(ix, iy)) return false;
    }
    return true;
  }

  // One division for the whole walk; per column the slab's two boundary
  // y values advance by the constant y_step.
  const double inv_dx = 1.0 / dx;
  const double y_step = dy * (cell_w_ * inv_dx);  // dy per column width
  double y_at_lo =
      s.a.y + dy * ((grid_min_.x + ix0 * cell_w_ - s.a.x) * inv_dx);
  const double y_a = s.a.y, y_b = s.b.y;
  const double y_min = std::min(y_a, y_b), y_max = std::max(y_a, y_b);
  for (int ix = ix0; ix <= ix1; ++ix, y_at_lo += y_step) {
    // Clamp the slab's y interval to the segment's own y extent (the first
    // and last slabs extend past the endpoints).
    const double y_next = y_at_lo + y_step;
    const double lo =
        std::clamp(std::min(y_at_lo, y_next), y_min, y_max);
    const double hi =
        std::clamp(std::max(y_at_lo, y_next), y_min, y_max);
    const int iy0 = row_lo(lo);
    const int iy1 = row_hi(hi);
    for (int iy = iy0; iy <= iy1; ++iy) {
      if (!f(ix, iy)) return false;
    }
  }
  return true;
}

// Gathers the union of candidate bitmasks over every cell the segment may
// touch. Only valid when cell_mask_ is populated (<= 64 buildings).
std::uint64_t CampusMap::segment_mask(const Segment& s) const noexcept {
  std::uint64_t mask = 0;
  for_each_segment_cell(s, [&](int ix, int iy) {
    mask |= cell_mask_[static_cast<std::size_t>(iy) * nx_ + ix];
    return true;
  });
  return mask;
}

bool CampusMap::is_indoor(const Point& p) const noexcept {
  return containing_building(p) != nullptr;
}

const Building* CampusMap::containing_building(const Point& p) const noexcept {
  // Memo hit: same exact coordinates resolve to the same building, so the
  // cached answer is identical to a fresh scan.
  const auto xb = std::bit_cast<std::uint64_t>(p.x);
  const auto yb = std::bit_cast<std::uint64_t>(p.y);
  const std::uint64_t h = mix_key(mix_bits(xb), yb);
  const std::size_t base = h & (point_memo_.size() - 2);
  for (std::size_t w = 0; w < 2; ++w) {
    const PointSlot& slot = point_memo_[base + w];
    if (slot.val != 0 && slot.xb == xb && slot.yb == yb) {
      point_lru_[base >> 1] = static_cast<std::uint8_t>(1 - w);
      return slot.val == 1 ? nullptr : &buildings_[slot.val - 2];
    }
  }
  const Building* found = nullptr;
  const auto [it, end] = cell_items(col(p.x), row(p.y));
  for (const std::uint32_t* i = it; i != end; ++i) {
    if (buildings_[*i].contains(p)) {
      found = &buildings_[*i];
      break;
    }
  }
  const std::uint8_t w = point_lru_[base >> 1];
  point_memo_[base + w] = PointSlot{
      xb, yb,
      found == nullptr
          ? 1
          : static_cast<std::uint32_t>(found - buildings_.data()) + 2};
  point_lru_[base >> 1] = static_cast<std::uint8_t>(1 - w);
  return found;
}

bool CampusMap::has_los(const Segment& path) const noexcept {
  const auto axb = std::bit_cast<std::uint64_t>(path.a.x);
  const auto ayb = std::bit_cast<std::uint64_t>(path.a.y);
  const auto bxb = std::bit_cast<std::uint64_t>(path.b.x);
  const auto byb = std::bit_cast<std::uint64_t>(path.b.y);
  const std::uint64_t h =
      mix_key(mix_key(mix_key(mix_bits(axb), ayb), bxb), byb);
  const std::size_t base = h & (los_memo_.size() - 2);
  for (std::size_t w = 0; w < 2; ++w) {
    const LosSlot& slot = los_memo_[base + w];
    if (slot.val != 0 && slot.ax == axb && slot.ay == ayb &&
        slot.bx == bxb && slot.by == byb) {
      los_lru_[base >> 1] = static_cast<std::uint8_t>(1 - w);
      return slot.val == 2;
    }
  }
  const bool los = has_los_uncached(path);
  const std::uint8_t w = los_lru_[base >> 1];
  los_memo_[base + w] = {axb, ayb, bxb, byb, los ? 2u : 1u};
  los_lru_[base >> 1] = static_cast<std::uint8_t>(1 - w);
  return los;
}

bool CampusMap::has_los_uncached(const Segment& path) const noexcept {
  // Candidates already seen in an earlier cell are skipped via the running
  // mask; the walk stops at the first blocking building, and the predicate
  // is the unmodified Rect::intersects, so the boolean matches the
  // brute-force scan exactly.
  if (!cell_mask_.empty()) {
    std::uint64_t seen = 0;
    return for_each_segment_cell(path, [&](int ix, int iy) {
      std::uint64_t m =
          cell_mask_[static_cast<std::size_t>(iy) * nx_ + ix] & ~seen;
      seen |= m;
      while (m != 0) {
        const auto i = static_cast<std::size_t>(std::countr_zero(m));
        m &= m - 1;
        if (buildings_[i].footprint.intersects(path)) return false;
      }
      return true;
    });
  }
  return for_each_segment_cell(path, [&](int ix, int iy) {
    const auto [it, end] = cell_items(ix, iy);
    for (const std::uint32_t* i = it; i != end; ++i) {
      if (buildings_[*i].footprint.intersects(path)) return false;
    }
    return true;
  });
}

double CampusMap::penetration_db(const Segment& path,
                                 double freq_ghz) const noexcept {
  const auto axb = std::bit_cast<std::uint64_t>(path.a.x);
  const auto ayb = std::bit_cast<std::uint64_t>(path.a.y);
  const auto bxb = std::bit_cast<std::uint64_t>(path.b.x);
  const auto byb = std::bit_cast<std::uint64_t>(path.b.y);
  const auto fb = std::bit_cast<std::uint64_t>(freq_ghz);
  const std::uint64_t h = mix_key(
      mix_key(mix_key(mix_key(mix_bits(axb), ayb), bxb), byb), fb);
  const std::size_t base = h & (pen_memo_.size() - 2);
  for (std::size_t w = 0; w < 2; ++w) {
    const PenSlot& slot = pen_memo_[base + w];
    if (slot.used != 0 && slot.ax == axb && slot.ay == ayb &&
        slot.bx == bxb && slot.by == byb && slot.fb == fb) {
      pen_lru_[base >> 1] = static_cast<std::uint8_t>(1 - w);
      return slot.val;
    }
  }
  const double pen = penetration_db_uncached(path, freq_ghz);
  const std::uint8_t w = pen_lru_[base >> 1];
  pen_memo_[base + w] = {axb, ayb, bxb, byb, fb, pen, 1u};
  pen_lru_[base >> 1] = static_cast<std::uint8_t>(1 - w);
  return pen;
}

double CampusMap::penetration_db_uncached(const Segment& path,
                                          double freq_ghz) const noexcept {
  // Candidates are deduplicated and then summed in ascending index order —
  // the exact addition sequence of the brute-force scan (non-candidates
  // contribute exactly +0.0 there, which never changes the running total).
  double total = 0.0;
  if (!cell_mask_.empty()) {
    std::uint64_t mask = segment_mask(path);
    while (mask != 0) {
      const auto i = static_cast<std::size_t>(std::countr_zero(mask));
      mask &= mask - 1;
      total += buildings_[i].penetration_db(path, freq_ghz);
    }
    return total;
  }
  // Large maps: gather, sort, dedup.
  std::uint32_t buf[256];
  std::size_t n = 0;
  bool overflow = false;
  for_each_segment_cell(path, [&](int ix, int iy) {
    const auto [it, end] = cell_items(ix, iy);
    for (const std::uint32_t* i = it; i != end; ++i) {
      if (n == std::size(buf)) {
        overflow = true;
        return false;
      }
      buf[n++] = *i;
    }
    return true;
  });
  if (overflow) {  // degenerate dense map: fall back to the full scan
    for (const Building& b : buildings_) {
      total += b.penetration_db(path, freq_ghz);
    }
    return total;
  }
  std::sort(buf, buf + n);
  const std::uint32_t* last = std::unique(buf, buf + n);
  for (const std::uint32_t* i = buf; i != last; ++i) {
    total += buildings_[*i].penetration_db(path, freq_ghz);
  }
  return total;
}

double CampusMap::o2i_loss_db(const Point& p, double freq_ghz) const noexcept {
  if (const Building* b = containing_building(p)) {
    // One exterior wall plus interior clutter growing with depth from
    // the nearest wall (3GPP O2I spirit, linear-depth variant).
    const Rect& f = b->footprint;
    const double depth =
        std::min(std::min(p.x - f.min.x, f.max.x - p.x),
                 std::min(p.y - f.min.y, f.max.y - p.y));
    return wall_loss_db(b->material, freq_ghz) + 0.3 * depth;
  }
  return 0.0;
}

Point CampusMap::random_point(sim::Rng& rng) const {
  return {rng.uniform(bounds_.min.x, bounds_.max.x),
          rng.uniform(bounds_.min.y, bounds_.max.y)};
}

Point CampusMap::random_outdoor_point(sim::Rng& rng) const {
  // Street grid keeps >40% of the area outdoor, so rejection terminates fast.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const Point p = random_point(rng);
    if (!is_indoor(p)) return p;
  }
  return bounds_.min;  // unreachable for any sane map; keeps noexcept callers simple
}

CampusMap make_campus(sim::Rng rng) {
  // Paper: 0.5 km x 0.92 km, dense urban campus, brick/concrete buildings,
  // surrounded by tall buildings and open areas. ~1 in 5 blocks is open.
  return make_city_campus(std::move(rng), 500.0, 920.0, 0.2);
}

CampusMap make_city_campus(sim::Rng rng, double width_m, double height_m,
                           double open_fraction) {
  const Rect bounds{{0.0, 0.0}, {width_m, height_m}};

  std::vector<Building> buildings;
  // Street grid: blocks of 100 m x 115 m separated by 20 m streets. Each
  // block hosts a building with jittered size/position; some blocks stay
  // open (quads, sports fields). The draw sequence per block is fixed, so
  // the paper parameters reproduce the original make_campus map exactly.
  const double block_w = 100.0, block_h = 115.0;
  int id = 0;
  for (double bx = 10.0; bx + block_w < bounds.max.x; bx += block_w + 20.0) {
    for (double by = 10.0; by + block_h < bounds.max.y; by += block_h + 20.0) {
      if (rng.bernoulli(open_fraction)) continue;
      const double w = rng.uniform(0.55, 0.8) * block_w;
      const double h = rng.uniform(0.55, 0.8) * block_h;
      const double ox = bx + rng.uniform(0.0, block_w - w);
      const double oy = by + rng.uniform(0.0, block_h - h);
      const Material m =
          rng.bernoulli(0.7) ? Material::kConcrete : Material::kBrick;
      buildings.push_back(
          Building{Rect{{ox, oy}, {ox + w, oy + h}}, m,
                   "bldg-" + std::to_string(id++)});
    }
  }
  return CampusMap(bounds, std::move(buildings));
}

}  // namespace fiveg::geo

#include "geo/campus.h"

#include <stdexcept>
#include <string>
#include <utility>

namespace fiveg::geo {

CampusMap::CampusMap(Rect bounds, std::vector<Building> buildings)
    : bounds_(bounds), buildings_(std::move(buildings)) {
  if (bounds_.width() <= 0 || bounds_.height() <= 0) {
    throw std::invalid_argument("CampusMap bounds must be non-degenerate");
  }
}

bool CampusMap::is_indoor(const Point& p) const noexcept {
  for (const Building& b : buildings_) {
    if (b.contains(p)) return true;
  }
  return false;
}

bool CampusMap::has_los(const Segment& path) const noexcept {
  for (const Building& b : buildings_) {
    if (b.footprint.intersects(path)) return false;
  }
  return true;
}

double CampusMap::penetration_db(const Segment& path,
                                 double freq_ghz) const noexcept {
  double total = 0.0;
  for (const Building& b : buildings_) {
    total += b.penetration_db(path, freq_ghz);
  }
  return total;
}

double CampusMap::o2i_loss_db(const Point& p, double freq_ghz) const noexcept {
  for (const Building& b : buildings_) {
    if (b.contains(p)) {
      // One exterior wall plus interior clutter growing with depth from
      // the nearest wall (3GPP O2I spirit, linear-depth variant).
      const Rect& f = b.footprint;
      const double depth =
          std::min(std::min(p.x - f.min.x, f.max.x - p.x),
                   std::min(p.y - f.min.y, f.max.y - p.y));
      return wall_loss_db(b.material, freq_ghz) + 0.3 * depth;
    }
  }
  return 0.0;
}

Point CampusMap::random_point(sim::Rng& rng) const {
  return {rng.uniform(bounds_.min.x, bounds_.max.x),
          rng.uniform(bounds_.min.y, bounds_.max.y)};
}

Point CampusMap::random_outdoor_point(sim::Rng& rng) const {
  // Street grid keeps >40% of the area outdoor, so rejection terminates fast.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const Point p = random_point(rng);
    if (!is_indoor(p)) return p;
  }
  return bounds_.min;  // unreachable for any sane map; keeps noexcept callers simple
}

CampusMap make_campus(sim::Rng rng) {
  // Paper: 0.5 km x 0.92 km, dense urban campus, brick/concrete buildings,
  // surrounded by tall buildings and open areas.
  const Rect bounds{{0.0, 0.0}, {500.0, 920.0}};

  std::vector<Building> buildings;
  // Street grid: blocks of 100 m x 115 m separated by 20 m streets. Each
  // block hosts a building with jittered size/position; some blocks stay
  // open (quads, sports fields).
  const double block_w = 100.0, block_h = 115.0;
  int id = 0;
  for (double bx = 10.0; bx + block_w < bounds.max.x; bx += block_w + 20.0) {
    for (double by = 10.0; by + block_h < bounds.max.y; by += block_h + 20.0) {
      // ~1 in 5 blocks is open space.
      if (rng.bernoulli(0.2)) continue;
      const double w = rng.uniform(0.55, 0.8) * block_w;
      const double h = rng.uniform(0.55, 0.8) * block_h;
      const double ox = bx + rng.uniform(0.0, block_w - w);
      const double oy = by + rng.uniform(0.0, block_h - h);
      const Material m =
          rng.bernoulli(0.7) ? Material::kConcrete : Material::kBrick;
      buildings.push_back(
          Building{Rect{{ox, oy}, {ox + w, oy + h}}, m,
                   "bldg-" + std::to_string(id++)});
    }
  }
  return CampusMap(bounds, std::move(buildings));
}

}  // namespace fiveg::geo

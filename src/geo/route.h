// Drive-test routes: the paper's blanket survey walks every street segment
// (6.019 km at 4-5 km/h). A route is a polyline with positions addressable
// by distance travelled, so callers can sample it at any cadence.
#pragma once

#include <vector>

#include "geo/campus.h"
#include "geo/geometry.h"

namespace fiveg::geo {

/// A polyline walked at constant speed.
class Route {
 public:
  /// `waypoints` needs at least two points.
  explicit Route(std::vector<Point> waypoints);

  [[nodiscard]] double length_m() const noexcept { return total_length_; }
  [[nodiscard]] const std::vector<Point>& waypoints() const noexcept {
    return waypoints_;
  }

  /// Position after walking `d` metres from the start (clamped to the ends).
  [[nodiscard]] Point position_at(double d) const noexcept;

  /// Evenly spaced samples every `spacing_m` metres (includes both ends).
  [[nodiscard]] std::vector<Point> samples(double spacing_m) const;

 private:
  std::vector<Point> waypoints_;
  std::vector<double> cumulative_;  // cumulative length at each waypoint
  double total_length_ = 0.0;
};

/// Serpentine sweep over the street grid of `campus`: north-south passes
/// every `lane_spacing_m`, emulating the paper's full-coverage walk.
[[nodiscard]] Route make_survey_route(const CampusMap& campus,
                                      double lane_spacing_m = 60.0);

/// Random waypoint route: `n_waypoints` uniformly random outdoor points
/// joined into a polyline — the city-scale mobility model (the caller's
/// speed makes it a walking or driving trip). Deterministic per rng
/// state; at least two waypoints are drawn.
[[nodiscard]] Route make_waypoint_route(const CampusMap& campus,
                                        sim::Rng& rng, int n_waypoints = 6);

}  // namespace fiveg::geo

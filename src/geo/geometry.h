// 2-D geometry primitives for the campus model: points in metres, segments
// (radio paths), and axis-aligned rectangles (building footprints).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace fiveg::geo {

/// A position on the campus plane, in metres.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

[[nodiscard]] double distance(const Point& a, const Point& b) noexcept;

/// Azimuth of b as seen from a, in degrees in [0, 360): 0 = +x ("east"),
/// counter-clockwise positive.
[[nodiscard]] double azimuth_deg(const Point& from, const Point& to) noexcept;

/// Smallest absolute angular difference between two azimuths, in [0, 180].
[[nodiscard]] double angle_diff_deg(double a_deg, double b_deg) noexcept;

/// A straight path between two points (transmitter -> receiver).
struct Segment {
  Point a;
  Point b;

  [[nodiscard]] double length() const noexcept { return distance(a, b); }
  /// Point at parameter t in [0,1] along the segment.
  [[nodiscard]] Point at(double t) const noexcept;
};

/// Axis-aligned rectangle, min corner inclusive / max corner inclusive.
struct Rect {
  Point min;
  Point max;

  [[nodiscard]] bool contains(const Point& p) const noexcept;
  [[nodiscard]] double width() const noexcept { return max.x - min.x; }
  [[nodiscard]] double height() const noexcept { return max.y - min.y; }
  [[nodiscard]] Point center() const noexcept;

  /// Number of rectangle edges a segment crosses: 0 (misses), 1 (one end
  /// inside), or 2 (passes through). Each crossing is one wall for the
  /// penetration-loss model.
  [[nodiscard]] int crossings(const Segment& s) const noexcept;

  /// True if the segment intersects the rectangle's interior at all.
  [[nodiscard]] bool intersects(const Segment& s) const noexcept;
};

}  // namespace fiveg::geo

// 2-D geometry primitives for the campus model: points in metres, segments
// (radio paths), and axis-aligned rectangles (building footprints). The
// rectangle/segment predicates are defined inline: they are the innermost
// loop of every coverage sweep, and call overhead was measurable there.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

namespace fiveg::geo {

/// A position on the campus plane, in metres.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

[[nodiscard]] double distance(const Point& a, const Point& b) noexcept;

/// Azimuth of b as seen from a, in degrees in [0, 360): 0 = +x ("east"),
/// counter-clockwise positive.
[[nodiscard]] double azimuth_deg(const Point& from, const Point& to) noexcept;

/// Smallest absolute angular difference between two azimuths, in [0, 180].
[[nodiscard]] double angle_diff_deg(double a_deg, double b_deg) noexcept;

/// A straight path between two points (transmitter -> receiver).
struct Segment {
  Point a;
  Point b;

  [[nodiscard]] double length() const noexcept { return distance(a, b); }
  /// Point at parameter t in [0,1] along the segment.
  [[nodiscard]] Point at(double t) const noexcept {
    return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
  }
};

/// Axis-aligned rectangle, min corner inclusive / max corner inclusive.
struct Rect {
  Point min;
  Point max;

  [[nodiscard]] bool contains(const Point& p) const noexcept {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  [[nodiscard]] double width() const noexcept { return max.x - min.x; }
  [[nodiscard]] double height() const noexcept { return max.y - min.y; }
  [[nodiscard]] Point center() const noexcept {
    return {(min.x + max.x) / 2.0, (min.y + max.y) / 2.0};
  }

  /// Number of rectangle edges a segment crosses: 0 (misses), 1 (one end
  /// inside), or 2 (passes through). Each crossing is one wall for the
  /// penetration-loss model.
  [[nodiscard]] int crossings(const Segment& s) const noexcept;

  /// True if the segment intersects the rectangle's interior at all.
  [[nodiscard]] bool intersects(const Segment& s) const noexcept;
};

namespace detail {

// Liang-Barsky clipping: returns the [t_enter, t_exit] parameter range of
// the segment inside the rect, or nullopt when it misses entirely.
inline std::optional<std::pair<double, double>> clip(const Rect& r,
                                                     const Segment& s) noexcept {
  const double dx = s.b.x - s.a.x;
  const double dy = s.b.y - s.a.y;
  double t0 = 0.0, t1 = 1.0;

  const auto clip_axis = [&](double p, double q) {
    // Moving by p along this axis; q is the distance to the boundary.
    if (p == 0.0) return q >= 0.0;  // parallel: inside iff q non-negative
    const double t = q / p;
    if (p < 0.0) {
      if (t > t1) return false;
      t0 = std::max(t0, t);
    } else {
      if (t < t0) return false;
      t1 = std::min(t1, t);
    }
    return true;
  };

  if (!clip_axis(-dx, s.a.x - r.min.x)) return std::nullopt;
  if (!clip_axis(dx, r.max.x - s.a.x)) return std::nullopt;
  if (!clip_axis(-dy, s.a.y - r.min.y)) return std::nullopt;
  if (!clip_axis(dy, r.max.y - s.a.y)) return std::nullopt;
  if (t0 > t1) return std::nullopt;
  return std::make_pair(t0, t1);
}

}  // namespace detail

inline bool Rect::intersects(const Segment& s) const noexcept {
  return detail::clip(*this, s).has_value();
}

inline int Rect::crossings(const Segment& s) const noexcept {
  if (!detail::clip(*this, s)) return 0;
  const bool a_in = contains(s.a);
  const bool b_in = contains(s.b);
  if (a_in && b_in) return 0;  // fully indoor: no wall on the path
  if (a_in || b_in) return 1;  // enters or leaves once
  return 2;                    // passes through
}

}  // namespace fiveg::geo

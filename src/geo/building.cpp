#include "geo/building.h"

namespace fiveg::geo {

double wall_loss_db(Material m, double freq_ghz) noexcept {
  // Linear-in-frequency per-wall models, anchored so concrete gives
  // ~10 dB at 1.8 GHz and ~16.5 dB at 3.5 GHz — the gap that produces the
  // paper's 20% (4G) vs 51% (5G) indoor bit-rate drop.
  switch (m) {
    case Material::kConcrete:
      return 3.0 + 3.85 * freq_ghz;
    case Material::kBrick:
      return 2.0 + 3.0 * freq_ghz;
    case Material::kDrywall:
      return 1.0 + 0.8 * freq_ghz;
    case Material::kGlass:
      return 0.5 + 0.6 * freq_ghz;
  }
  return 0.0;
}

double Building::penetration_db(const Segment& path,
                                double freq_ghz) const noexcept {
  const int walls = footprint.crossings(path);
  if (walls == 0 && contains(path.a) && contains(path.b)) {
    // Fully-indoor short hop: attenuate by interior clutter, not walls.
    return 0.4 * wall_loss_db(material, freq_ghz);
  }
  return walls * wall_loss_db(material, freq_ghz);
}

}  // namespace fiveg::geo

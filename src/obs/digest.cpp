#include "obs/digest.h"

#include <algorithm>
#include <cmath>

namespace fiveg::obs {

namespace {

// gamma = (1+a)/(1-a); keys are ceil(log_gamma |v|).
const double kGamma = (1.0 + Digest::kAlpha) / (1.0 - Digest::kAlpha);
const double kInvLogGamma = 1.0 / std::log(kGamma);
// Key span that covers every double magnitude in [kZeroEpsilon, 1e300];
// clamping keeps extreme outliers finite instead of overflowing the key.
constexpr std::int32_t kMaxKey = 40000;

}  // namespace

std::int32_t Digest::bucket_key(double magnitude) noexcept {
  const double k = std::ceil(std::log(magnitude) * kInvLogGamma);
  if (k >= kMaxKey) return kMaxKey;
  if (k <= -kMaxKey) return -kMaxKey;
  return static_cast<std::int32_t>(k);
}

double Digest::bucket_value(std::int32_t key) noexcept {
  // Midpoint of (gamma^(key-1), gamma^key]: relative error <= kAlpha.
  return 2.0 * std::pow(kGamma, key) / (kGamma + 1.0);
}

void Digest::observe(double v) noexcept {
  if (std::isnan(v)) return;
  ++count_;
  sum_ += v;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
  const double mag = std::abs(v);
  if (mag < kZeroEpsilon) {
    ++zero_;
  } else if (v > 0.0) {
    ++pos_[bucket_key(mag)];
  } else {
    ++neg_[bucket_key(mag)];
  }
}

Digest Digest::restore(std::uint64_t zero_count, double sum, double min,
                       double max,
                       std::map<std::int32_t, std::uint64_t> positive_bins,
                       std::map<std::int32_t, std::uint64_t> negative_bins) {
  Digest d;
  d.zero_ = zero_count;
  d.count_ = zero_count;
  for (const auto& [k, c] : positive_bins) {
    (void)k;
    d.count_ += c;
  }
  for (const auto& [k, c] : negative_bins) {
    (void)k;
    d.count_ += c;
  }
  d.pos_ = std::move(positive_bins);
  d.neg_ = std::move(negative_bins);
  if (d.count_ > 0) {
    d.sum_ = sum;
    d.min_ = min;
    d.max_ = max;
  }
  return d;
}

void Digest::merge(const Digest& other) {
  if (other.count_ == 0) return;
  count_ += other.count_;
  zero_ += other.zero_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  for (const auto& [k, c] : other.pos_) pos_[k] += c;
  for (const auto& [k, c] : other.neg_) neg_[k] += c;
}

double Digest::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Pinned endpoints (same convention as measure::Cdf): the extremes are
  // tracked exactly, so don't settle for a bucket midpoint there.
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  const auto clamp_range = [this](double v) noexcept {
    return std::clamp(v, min_, max_);
  };
  std::uint64_t seen = 0;
  // Ascending value order: most-negative first (negative bins by
  // descending magnitude key), then zeros, then positives ascending.
  for (auto it = neg_.rbegin(); it != neg_.rend(); ++it) {
    seen += it->second;
    if (seen > rank) return clamp_range(-bucket_value(it->first));
  }
  seen += zero_;
  if (seen > rank) return clamp_range(0.0);
  for (const auto& [k, c] : pos_) {
    seen += c;
    if (seen > rank) return clamp_range(bucket_value(k));
  }
  return max();
}

}  // namespace fiveg::obs

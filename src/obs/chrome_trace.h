// Chrome trace_event exporter: serialises Tracer ring buffers into the
// "JSON Object Format" that chrome://tracing and Perfetto load directly.
// A campaign maps naturally onto the format: one pid per experiment (with a
// process_name metadata record), one tid per layer category, simulated
// nanoseconds mapped onto the viewer's microsecond timeline.
//
// With include_wall off the document is a pure function of simulated time —
// byte-identical across --jobs values — which is what the determinism tier
// diffs. Wall-clock annotations (per-process wall_ms) only ever appear in
// the top-level "otherData" object, never in trace events.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace fiveg::obs {

struct ChromeTraceOptions {
  /// Emit wall-clock fields into "otherData". Off => byte-stable output.
  bool include_wall = true;
};

/// One trace-producing process (an experiment run) in the merged document.
struct ChromeProcess {
  std::string name;             // shown as the process name in the viewer
  const Tracer* tracer = nullptr;
  double wall_ms = 0.0;         // emitted only when include_wall
};

/// Writes the merged campaign trace. Processes are emitted in the given
/// order with pid = index; keep the order sorted for determinism.
void write_chrome_trace(const std::vector<ChromeProcess>& processes,
                        std::ostream& os,
                        const ChromeTraceOptions& options = {});

/// Single-tracer convenience (pid 0, process name "fiveg").
void write_chrome_trace(const Tracer& tracer, std::ostream& os,
                        const ChromeTraceOptions& options = {});

}  // namespace fiveg::obs

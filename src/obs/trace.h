// Structured tracing for the simulated stack — the reproduction's answer to
// the paper's XCAL-Mobile timeline. Layers emit spans (begin/end), instant
// events and counter tracks into a TraceSink; the default sink is a
// ring-buffered Tracer whose contents export to the Chrome trace_event JSON
// format (chrome://tracing, Perfetto) via obs/chrome_trace.h.
//
// Every event is stamped in *simulated* time, so a trace is a pure function
// of the experiment seed: byte-identical across --jobs values and safe to
// diff in CI. Wall-clock profiling lives in obs::MetricsRegistry (kWall
// metrics), never in trace events.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace fiveg::obs {

class Counter;

/// Key/value annotations attached to an event. Values are emitted as JSON
/// strings (the Chrome writer escapes them).
using TraceArgs = std::vector<std::pair<std::string, std::string>>;

/// One structured trace record.
struct TraceEvent {
  enum class Phase : std::uint8_t {
    kBegin,    // span open  -> Chrome "B"
    kEnd,      // span close -> Chrome "E"
    kInstant,  // point event -> Chrome "i"
    kCounter,  // counter-track sample -> Chrome "C"
  };

  Phase phase = Phase::kInstant;
  sim::Time at = 0;    // simulated time
  std::string name;    // e.g. "ran.handoff", or the track name for counters
  std::string cat;     // layer track: "sim", "ran", "tcp", "net", "energy"
  double value = 0.0;  // counter tracks only
  TraceArgs args;
};

/// Destination for trace events. The ring-buffered Tracer below is the
/// default; tests substitute capturing sinks.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(TraceEvent e) = 0;
};

/// Ring-buffered tracer: keeps the most recent `capacity` events, counts
/// what it had to drop. Single-threaded, like everything else in one
/// experiment run.
class Tracer final : public TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 18;  // events

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  /// Installs the simulated-clock source used by the RAII span() overload
  /// (sim::Simulator installs itself on construction). Without a clock,
  /// clock-less emissions stamp time 0. `owner` identifies the installer so
  /// its destructor can release the clock without clobbering a newer one.
  void set_clock(std::function<sim::Time()> clock,
                 const void* owner = nullptr) {
    clock_ = std::move(clock);
    clock_owner_ = owner;
  }

  /// Drops the clock iff `owner` still owns it (dangling-callback guard).
  void clear_clock(const void* owner) {
    if (clock_owner_ == owner) {
      clock_ = nullptr;
      clock_owner_ = nullptr;
    }
  }

  [[nodiscard]] sim::Time clock_now() const {
    return clock_ ? clock_() : 0;
  }

  void emit(TraceEvent e) override;

  void begin(sim::Time at, std::string_view name, std::string_view cat,
             TraceArgs args = {});
  void end(sim::Time at, std::string_view name, std::string_view cat);
  void instant(sim::Time at, std::string_view name, std::string_view cat,
               TraceArgs args = {});
  /// Samples a counter track (e.g. queue depth, cwnd). `track` doubles as
  /// the event name.
  void counter(sim::Time at, std::string_view track, std::string_view cat,
               double value);

  /// RAII span on the installed clock: begin at construction, end at
  /// destruction. Spans must nest within one category (Chrome B/E rule);
  /// use explicit begin()/end() for spans that cross simulator callbacks.
  class Span {
   public:
    Span(Tracer* tracer, std::string name, std::string cat);
    Span(Span&& other) noexcept;
    Span& operator=(Span&&) = delete;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span();

   private:
    Tracer* tracer_;  // null after move-from
    std::string name_;
    std::string cat_;
  };
  [[nodiscard]] Span span(std::string_view name, std::string_view cat,
                          TraceArgs args = {});

  /// Replays another tracer's buffered events into this ring (oldest
  /// first) and inherits its drop count. sim::ParSim concatenates lane
  /// rings in lane-index order after the lanes have quiesced, so the
  /// merged stream is identical for any worker-thread count.
  void append_from(const Tracer& other);

  /// Buffered events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  /// Visits buffered events oldest-first without copying.
  void for_each(const std::function<void(const TraceEvent&)>& fn) const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t buffered() const noexcept { return ring_.size(); }
  /// Total events ever emitted (>= buffered()).
  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }
  /// Events lost to ring wraparound, including drops inherited from
  /// appended lane tracers.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return emitted_ - ring_.size() + inherited_drops_;
  }

 private:
  // First-wrap slow path: warns once on stderr and resolves the
  // obs.trace.dropped_events counter (kWall domain, so the deterministic
  // counters object never depends on trace capacity).
  void on_drop();

  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // next overwrite slot once the ring is full
  std::uint64_t emitted_ = 0;
  std::uint64_t inherited_drops_ = 0;
  std::function<sim::Time()> clock_;
  const void* clock_owner_ = nullptr;
  bool warned_wrap_ = false;
  bool drop_counter_resolved_ = false;
  Counter* drop_counter_ = nullptr;
};

}  // namespace fiveg::obs

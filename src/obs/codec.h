// Binary codec for the observability data model: LEB128 varints, zigzag
// signed varints, raw little-endian IEEE-754 doubles, and on top of them
// exact encoders/decoders for obs::Digest, obs::Histogram and whole
// MetricSnapshot sets. This is the serialization layer of the columnar
// result store (core/store.h): a digest decoded from its encoded bucket
// columns is indistinguishable from the original — encode(decode(x)) ==
// x byte-for-byte, and every derived statistic (mean, quantiles) matches
// bit-for-bit because the restore path rebuilds the exact internal state.
//
// Strings are NOT encoded here: callers that need them (the store's
// file-wide dictionary) provide intern/resolve callbacks, so the same
// snapshot codec serves both dictionary-compressed shard files and
// self-contained test fixtures.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/digest.h"
#include "obs/metrics.h"

namespace fiveg::obs::codec {

// --- primitives ------------------------------------------------------------

/// Appends an unsigned LEB128 varint (1–10 bytes).
void put_varint(std::string* out, std::uint64_t v);

/// Appends a zigzag-mapped signed varint.
void put_svarint(std::string* out, std::int64_t v);

/// Appends the 8 raw little-endian bytes of the IEEE-754 bit pattern, so
/// every double (including NaN payloads and signed zero) round-trips
/// exactly.
void put_f64(std::string* out, double v);

/// Appends a length-prefixed byte string.
void put_string(std::string* out, std::string_view s);

/// Bounds-checked sequential reader over an encoded buffer. Every get_*
/// returns false (and poisons the reader) on truncation or overflow;
/// callers check ok() once at the end instead of after every field.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool done() const noexcept {
    return ok_ && pos_ == data_.size();
  }
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }

  bool get_varint(std::uint64_t* v);
  bool get_svarint(std::int64_t* v);
  bool get_f64(double* v);
  bool get_string(std::string* s);
  bool get_byte(std::uint8_t* b);

 private:
  bool fail() noexcept {
    ok_ = false;
    return false;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- digest / histogram ----------------------------------------------------

/// Encodes a digest as (zero, sum, min, max, pos bins, neg bins); the
/// count is implied by the bucket totals. ~10 bytes + ~3–6 bytes per
/// touched bucket, vs ~30 bytes per bucket in the JSON form.
void encode_digest(std::string* out, const Digest& d);

/// Decodes a digest; false on truncation, a zero-count bin (which a live
/// digest can never hold — rejecting it keeps encode∘decode a fixed
/// point), or a duplicate bin key.
[[nodiscard]] bool decode_digest(Reader* r, Digest* out);

/// Encodes a histogram as (sum, min, max, sparse non-empty log2 buckets).
void encode_histogram(std::string* out, const Histogram& h);

/// Decodes a histogram; false on truncation, an out-of-range or duplicate
/// bucket key, or a zero bucket count.
[[nodiscard]] bool decode_histogram(Reader* r, Histogram* out);

// --- snapshot sets ---------------------------------------------------------

/// String interning callback: returns the dictionary id for `s`, assigning
/// one if unseen (the store writer's file-wide dictionary).
using StringIntern = std::function<std::uint64_t(std::string_view)>;
/// Reverse lookup: resolves a dictionary id; false on an unknown id.
using StringResolve = std::function<bool(std::uint64_t, std::string*)>;

/// Encodes one clock domain's snapshot vector as per-kind column blocks
/// (counters, then gauges, then histograms, then digests), each block
/// name-sorted. Only the raw columns are written — means and quantiles
/// are recomputed on decode through the same obs::snapshot_of path the
/// registry uses, so they cost nothing on disk and still match
/// bit-for-bit.
void encode_snapshots(std::string* out,
                      const std::vector<MetricSnapshot>& snaps,
                      const StringIntern& intern);

/// Decodes a snapshot set encoded by encode_snapshots into (name, kind)-
/// sorted MetricSnapshot structs with every derived field recomputed.
/// Returns false on malformed input.
[[nodiscard]] bool decode_snapshots(Reader* r, MetricClock clock,
                                    const StringResolve& resolve,
                                    std::vector<MetricSnapshot>* out);

}  // namespace fiveg::obs::codec

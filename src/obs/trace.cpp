#include "obs/trace.h"

#include <cstdio>
#include <utility>

#include "obs/obs.h"

namespace fiveg::obs {

Tracer::Tracer(std::size_t capacity) : capacity_(capacity > 0 ? capacity : 1) {
  // Reserve lazily: most runs never enable tracing, and a Tracer is only
  // constructed when they do.
  ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

void Tracer::emit(TraceEvent e) {
  ++emitted_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    return;
  }
  on_drop();
  ring_[head_] = std::move(e);
  head_ = (head_ + 1) % capacity_;
}

// Silent truncation is worse than a noisy ring: wrapping is legitimate
// (the ring bounds memory by design) but the operator must be able to see
// it happened. One stderr line on the first wrap, a kWall counter for the
// profile/ledger, and the Chrome exporter's events_dropped field carry the
// exact count downstream (fiveg_trace_check reports it, never fails on it).
void Tracer::on_drop() {
  if (!warned_wrap_) {
    warned_wrap_ = true;
    std::fprintf(stderr,
                 "obs: trace ring wrapped at %zu events; oldest events are "
                 "dropping (raise --trace-capacity to keep them)\n",
                 capacity_);
  }
  if (!drop_counter_resolved_) {
    drop_counter_resolved_ = true;
    if (MetricsRegistry* m = metrics()) {
      drop_counter_ =
          &m->counter("obs.trace.dropped_events", MetricClock::kWall);
    }
  }
  if (drop_counter_ != nullptr) drop_counter_->add();
}

void Tracer::begin(sim::Time at, std::string_view name, std::string_view cat,
                   TraceArgs args) {
  TraceEvent e;
  e.phase = TraceEvent::Phase::kBegin;
  e.at = at;
  e.name = name;
  e.cat = cat;
  e.args = std::move(args);
  emit(std::move(e));
}

void Tracer::end(sim::Time at, std::string_view name, std::string_view cat) {
  TraceEvent e;
  e.phase = TraceEvent::Phase::kEnd;
  e.at = at;
  e.name = name;
  e.cat = cat;
  emit(std::move(e));
}

void Tracer::instant(sim::Time at, std::string_view name,
                     std::string_view cat, TraceArgs args) {
  TraceEvent e;
  e.phase = TraceEvent::Phase::kInstant;
  e.at = at;
  e.name = name;
  e.cat = cat;
  e.args = std::move(args);
  emit(std::move(e));
}

void Tracer::counter(sim::Time at, std::string_view track,
                     std::string_view cat, double value) {
  TraceEvent e;
  e.phase = TraceEvent::Phase::kCounter;
  e.at = at;
  e.name = track;
  e.cat = cat;
  e.value = value;
  emit(std::move(e));
}

Tracer::Span::Span(Tracer* tracer, std::string name, std::string cat)
    : tracer_(tracer), name_(std::move(name)), cat_(std::move(cat)) {}

Tracer::Span::Span(Span&& other) noexcept
    : tracer_(std::exchange(other.tracer_, nullptr)),
      name_(std::move(other.name_)),
      cat_(std::move(other.cat_)) {}

Tracer::Span::~Span() {
  if (tracer_ != nullptr) tracer_->end(tracer_->clock_now(), name_, cat_);
}

Tracer::Span Tracer::span(std::string_view name, std::string_view cat,
                          TraceArgs args) {
  begin(clock_now(), name, cat, std::move(args));
  return Span(this, std::string(name), std::string(cat));
}

void Tracer::append_from(const Tracer& other) {
  other.for_each([this](const TraceEvent& e) { emit(e); });
  inherited_drops_ += other.dropped();
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for_each([&out](const TraceEvent& e) { out.push_back(e); });
  return out;
}

void Tracer::for_each(
    const std::function<void(const TraceEvent&)>& fn) const {
  if (ring_.size() < capacity_) {
    // Never wrapped: in-order from the start.
    for (const TraceEvent& e : ring_) fn(e);
    return;
  }
  // Wrapped: head_ is the oldest slot.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    fn(ring_[(head_ + i) % capacity_]);
  }
}

}  // namespace fiveg::obs

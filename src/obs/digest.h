// Streaming quantile digest with a fixed relative-error guarantee, the
// distribution-shaped sibling of obs::Histogram. Buckets are logarithmic
// with ratio gamma = (1+a)/(1-a) for accuracy a = 1% (the DDSketch
// construction): any reported quantile lies within 1% of the true sample
// value. Bucket counts are a pure function of the observed multiset — no
// reservoirs, no interpolation state — so two runs that observe the same
// values in any order serialise byte-identically, which is what lets the
// fiveg-runall determinism tier diff digest exports across --jobs values.
//
// Negative values land in a mirrored bucket map and near-zero values in a
// dedicated zero bucket, so signed KPIs (RSRP in dBm, RSRQ in dB) keep the
// same error bound as latencies and rates.
#pragma once

#include <cstdint>
#include <limits>
#include <map>

namespace fiveg::obs {

/// Fixed-relative-error streaming quantile sketch (mergeable, ordered
/// deterministically). Memory is O(distinct buckets touched): with 1%
/// accuracy a series spanning six decades needs ~700 buckets.
class Digest {
 public:
  /// Relative accuracy: quantiles are within this fraction of the true
  /// order statistic (for |v| >= kZeroEpsilon).
  static constexpr double kAlpha = 0.01;
  /// Magnitudes below this collapse into the zero bucket.
  static constexpr double kZeroEpsilon = 1e-12;

  /// Adds one observation. NaN is ignored.
  void observe(double v) noexcept;

  /// Adds every bucket of `other` (exact: the merge of the two multisets).
  void merge(const Digest& other);

  /// Rebuilds a digest from its export surface (the inverse of
  /// positive_bins/negative_bins/zero_count plus the exact sum/min/max).
  /// `count` is implied: every observation lands in exactly one bucket, so
  /// it is the bucket-count total. A restored digest is indistinguishable
  /// from the original — same quantiles bit-for-bit, same serialization —
  /// which is what lets the columnar result store drop everything else.
  /// When the bucket total is zero, sum/min/max are ignored (empty digest).
  [[nodiscard]] static Digest restore(
      std::uint64_t zero_count, double sum, double min, double max,
      std::map<std::int32_t, std::uint64_t> positive_bins,
      std::map<std::int32_t, std::uint64_t> negative_bins);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double mean() const noexcept {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Value at quantile q in [0,1] (rank floor(q*(count-1)) over the sorted
  /// multiset), within kAlpha relative error, clamped to [min, max]. The
  /// endpoints are pinned exactly — quantile(0) == min(), quantile(1) ==
  /// max(), the measure::Cdf convention — and q outside [0,1] is clamped.
  /// Returns 0 for an empty digest.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Export surface for the JSON emitters: sparse (bucket key, count)
  /// pairs. A positive value v maps to key ceil(log(v) / log(gamma));
  /// negative values mirror into `negative_bins` by magnitude.
  [[nodiscard]] const std::map<std::int32_t, std::uint64_t>& positive_bins()
      const noexcept {
    return pos_;
  }
  [[nodiscard]] const std::map<std::int32_t, std::uint64_t>& negative_bins()
      const noexcept {
    return neg_;
  }
  [[nodiscard]] std::uint64_t zero_count() const noexcept { return zero_; }

  /// Midpoint value represented by bucket `key` (positive side).
  [[nodiscard]] static double bucket_value(std::int32_t key) noexcept;
  /// Bucket key for a positive magnitude.
  [[nodiscard]] static std::int32_t bucket_key(double magnitude) noexcept;

 private:
  std::uint64_t count_ = 0;
  std::uint64_t zero_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::map<std::int32_t, std::uint64_t> pos_;
  std::map<std::int32_t, std::uint64_t> neg_;
};

}  // namespace fiveg::obs
